(* VLSI design: the paper's motivating domain (ch. 1).  A cell library
   with a design hierarchy over the reflexive n:m 'instantiates' link
   type: standard cells are shared subobjects of every module using
   them; the hierarchy is flattened recursively and cross-referenced
   with where-used — both views over the same symmetric links.

   Run with: dune exec examples/vlsi_design.exe *)

open Mad_store
open Workloads
module R = Mad_recursive.Recursive

let rule title =
  Format.printf "@.=== %s %s@." title
    (String.make (max 0 (66 - String.length title)) '=')

let () =
  let design = Vlsi_gen.build Vlsi_gen.default in
  let db = design.Vlsi_gen.db in
  Format.printf "%a@." Database.pp_summary db;

  rule "cell interfaces as molecules (cell - pin)";
  let session = Mad_mql.Session.create db in
  let run src =
    Format.printf ">> %s@.%s@." src (Mad_mql.Session.run_to_string session src)
  in
  run "SELECT ALL FROM iface(cell-pin) WHERE cell.cname = 'NAND';";

  rule "flatten: recursive cell explosion of TOP";
  let sub = R.v db ~root_type:"cell" ~link:"instantiates" () in
  let m = R.derive_one db sub design.Vlsi_gen.top in
  let t = { R.name = "flatten"; desc = sub; occ = [ m ] } in
  Format.printf "%a@." (R.pp_molecule db t) m;
  Format.printf "TOP flattens to %d distinct cells (shared standard cells \
                 appear once)@."
    (Aid.Set.cardinal m.R.members - 1);

  rule "where-used: which modules use NAND?";
  run "SELECT ALL FROM cell RECURSIVE BY instantiates SUPER WHERE cell.cname = 'NAND';";

  rule "sharing report across module molecules";
  let mt =
    Mad.Molecule_algebra.define' db ~name:"mod_cells"
      ~nodes:[ "cell" ] ~edges:[] ()
  in
  ignore mt;
  let one_level =
    R.v db ~root_type:"cell" ~link:"instantiates" ~max_depth:1 ()
  in
  let occ = R.m_dom db one_level in
  let owners = Hashtbl.create 64 in
  List.iter
    (fun (m : R.molecule) ->
      Aid.Set.iter
        (fun id ->
          if not (Aid.equal id m.R.root) then
            Hashtbl.replace owners id
              (m.R.root :: Option.value ~default:[] (Hashtbl.find_opt owners id)))
        m.R.members)
    occ;
  let shared =
    Hashtbl.fold (fun id os acc -> if List.length os > 1 then (id, os) :: acc else acc) owners []
  in
  Format.printf "%d cells are instantiated by more than one parent:@."
    (List.length shared);
  List.iter
    (fun (id, os) ->
      Format.printf "  %s used by %d parents@."
        (R.atom_label db "cell" id) (List.length os))
    (List.sort compare shared |> List.filteri (fun i _ -> i < 6));

  rule "engineering change through MOL DML";
  run "MODIFY cell.area = 2 FROM iface WHERE cell.cname = 'INV';";
  run "SELECT ALL FROM iface WHERE cell.cname = 'INV';";

  rule "net connectivity (n:m over pins)";
  run "SELECT ALL FROM net-pin-cell WHERE net.nname = 'n0';";

  rule "cycle recursion: cells transitively connected through nets";
  (* ch. 5: recursion over 'other cycles in the database schema' —
     cell -> pin -> net -> pin -> cell iterated to a fixpoint *)
  let d =
    R.cycle db ~root_type:"cell"
      ~steps:
        [
          ("cell-pin", `Fwd); ("net-pin", `Bwd); ("net-pin", `Fwd);
          ("cell-pin", `Bwd);
        ]
      ()
  in
  let occ = R.cycle_m_dom db d in
  let nand =
    List.find
      (fun (m : R.cycle_molecule) ->
        Aid.equal m.R.c_root_atom design.Vlsi_gen.leaves.(1))
      occ
  in
  Format.printf "cells electrically reachable from %s: %d (via %d nets)@."
    (R.atom_label db "cell" nand.R.c_root_atom)
    (Aid.Set.cardinal nand.R.c_members - 1)
    (Aid.Set.cardinal
       (Option.value ~default:Aid.Set.empty
          (R.Smap.find_opt "net" nand.R.c_intermediates)))
