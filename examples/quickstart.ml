(* Quickstart: define a small MAD database, link atoms, define a
   molecule type dynamically, and query it in MOL.

   Run with: dune exec examples/quickstart.exe *)

open Mad_store

let () =
  (* 1. schema: atom types and (bidirectional) link types *)
  let db = Database.create () in
  ignore
    (Database.declare_atom_type db "author"
       [ Schema.Attr.v "name" Domain.String ]);
  ignore
    (Database.declare_atom_type db "paper"
       [ Schema.Attr.v "title" Domain.String; Schema.Attr.v "year" Domain.Int ]);
  ignore
    (Database.declare_atom_type db "venue"
       [ Schema.Attr.v "name" Domain.String ]);
  (* n:m — papers share authors, the MAD model's home turf *)
  ignore (Database.declare_link_type db "wrote" ("author", "paper"));
  ignore
    (Database.declare_link_type db ~card:(Some 1, None) "appeared"
       ("venue", "paper"));

  (* 2. occurrence: atoms and links *)
  let author name = Database.insert_atom db ~atype:"author" [ Value.String name ] in
  let paper title year =
    Database.insert_atom db ~atype:"paper"
      [ Value.String title; Value.Int year ]
  in
  let venue name = Database.insert_atom db ~atype:"venue" [ Value.String name ] in
  let mitschang = author "Mitschang" in
  let haerder = author "Haerder" in
  let meyer = author "Meyer-Wegener" in
  let p1 = paper "The MAD model" 1988 in
  let p2 = paper "PRIMA - a DBMS prototype" 1987 in
  let p3 = paper "Molecule algebra" 1989 in
  let vldb = venue "VLDB" in
  let edbs = venue "Expert DB Systems" in
  List.iter
    (fun (a, p) -> Database.add_link db "wrote" ~left:a ~right:p)
    [
      (mitschang.Atom.id, p1.Atom.id);
      (mitschang.Atom.id, p2.Atom.id);
      (mitschang.Atom.id, p3.Atom.id);
      (haerder.Atom.id, p2.Atom.id);
      (meyer.Atom.id, p2.Atom.id);
    ];
  List.iter
    (fun (v, p) -> Database.add_link db "appeared" ~left:v ~right:p)
    [
      (edbs.Atom.id, p1.Atom.id);
      (vldb.Atom.id, p2.Atom.id);
      (vldb.Atom.id, p3.Atom.id);
    ];
  Format.printf "%a@.@." Database.pp_summary db;

  (* 3. dynamic molecule definition + MOL queries *)
  let session = Mad_mql.Session.create db in
  let run src =
    Format.printf ">> %s@.%s@." src (Mad_mql.Session.run_to_string session src)
  in
  run "SELECT ALL FROM bibliography(author-paper-venue);";
  run "SELECT ALL FROM bibliography WHERE paper.year >= 1988;";
  (* the same links traversed the other way round: which papers share
     which authors (symmetric use, Fig. 2 style) *)
  run "SELECT ALL FROM paper-(author,venue) WHERE venue.name = 'VLDB';";

  (* 4. molecules can share subobjects: papers share authors *)
  let mt =
    match Mad_mql.Session.lookup session "bibliography" with
    | Some mt -> mt
    | None -> assert false
  in
  Format.printf "%a"
    (fun ppf () -> Mad.Render.pp_shared db ppf mt)
    ()
