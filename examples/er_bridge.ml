(* The ER correspondence of ch. 2 and ch. 5: the geographic ER schema
   of Fig. 1 mapped one-to-one onto MAD (no auxiliary structures) and
   classically onto the relational model (auxiliary relations for every
   n:m relationship type), with the query cost consequences.

   Run with: dune exec examples/er_bridge.exe *)

open Mad_store
module ER = Er_model.Er

let rule title =
  Format.printf "@.=== %s %s@." title
    (String.make (max 0 (66 - String.length title)) '=')

let () =
  let er = ER.geographic () in
  rule "the ER schema (Fig. 1, upper part)";
  Format.printf "%a@." ER.pp er;

  rule "ER -> MAD: one-to-one";
  let db = ER.to_mad er in
  Format.printf "atom types: %d (= entity types), link types: %d (= \
                 relationship types), auxiliary structures: %d@."
    (List.length (Database.atom_type_names db))
    (List.length (Database.link_type_names db))
    (ER.mad_auxiliary_count er);

  rule "ER -> relational: auxiliary relations appear";
  let m = ER.to_relational er in
  List.iter
    (fun (name, attrs) ->
      let aux = if List.mem name m.ER.auxiliary then "  (auxiliary)" else "" in
      Format.printf "  %s(%s)%s@." name
        (String.concat ", "
           (List.map (fun (a : Schema.Attr.t) -> a.Schema.Attr.name) attrs))
        aux)
    m.ER.schema;
  Format.printf "auxiliary relations: %d, foreign keys: %d@."
    (List.length m.ER.auxiliary)
    (List.length m.ER.foreign_keys);

  rule "the cost of the auxiliary relations on a real query";
  (* populate both images with the Brazil occurrence and compare the
     work to assemble every state object *)
  let brazil = Workloads.Geo_brazil.build () in
  let gdb = Workloads.Geo_brazil.db brazil in
  let desc = Workloads.Geo_brazil.mt_state_desc brazil in
  let mstats = Mad.Derive.stats () in
  ignore (Mad.Derive.m_dom ~stats:mstats gdb desc);
  let map = Relational.Mapping.of_database gdb in
  let rstats = Relational.Rel_algebra.stats () in
  ignore (Relational.Emulate.derive ~stats:rstats map gdb desc);
  Format.printf "MAD (links are first-class):   %d links traversed@."
    (Mad.Derive.links_traversed mstats);
  Format.printf
    "relational (via auxiliaries):  %d tuples scanned, %d emitted@."
    rstats.Relational.Rel_algebra.tuples_scanned
    rstats.Relational.Rel_algebra.tuples_emitted;
  Format.printf
    "every '-' in a MOL structure costs the relational image one or two \
     joins through an auxiliary relation.@."
