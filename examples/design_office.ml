(* Disjoint hierarchical objects (office documents): the degenerate
   case where NF² models suffice — "disjoint objects showing only
   hierarchical (graph) structures are just special cases" of
   molecules.  MAD and NF² are compared side by side on it; the
   cartographic workload then shows where NF² starts paying for the
   missing sharing.

   Run with: dune exec examples/design_office.exe *)

open Mad_store
open Workloads

let rule title =
  Format.printf "@.=== %s %s@." title
    (String.make (max 0 (66 - String.length title)) '=')

let () =
  let db = Office_gen.build { Office_gen.default with Office_gen.docs = 3 } in
  Format.printf "%a@." Database.pp_summary db;

  rule "documents as molecules";
  let mt =
    Mad.Molecule_algebra.define db ~name:"documents"
      (Office_gen.document_desc db)
  in
  Format.printf "%a@." Mad.Molecule_type.pp_summary mt;
  (match Mad.Molecule_type.occ mt with
   | m :: _ -> Format.printf "%a@." (Mad.Render.pp_molecule db mt) m
   | [] -> ());
  Format.printf "shared subobjects: %d (disjoint hierarchy)@."
    (List.length (Mad.Render.shared_subobjects mt));

  rule "the same documents as one NF2 nested relation";
  let e = Nf2.Embed.of_molecule_type db mt in
  Format.printf "nested relation: %d rows, weight %d, duplication %.2f@."
    (Nf2.Nested.cardinality e.Nf2.Embed.nrel)
    (Nf2.Nested.weight e.Nf2.Embed.nrel)
    (Nf2.Embed.duplication e);
  (match e.Nf2.Embed.nrel.Nf2.Nested.rows with
   | row :: _ ->
     Format.printf "first row: %a@."
       (fun ppf () -> Nf2.Nested.pp_row ppf row)
       ()
   | [] -> ());

  rule "nest/unnest round trip on the flat view";
  let flat =
    let r =
      Nf2.Nested.create
        [
          ("doc", Nf2.Nested.Scalar Domain.String);
          ("sec", Nf2.Nested.Scalar Domain.String);
        ]
    in
    List.iter
      (fun (at : Atom.t) ->
        let sec_at = Database.atom_type db "section" in
        Aid.Set.iter
          (fun sid ->
            let s = Database.get_atom db ~atype:"section" sid in
            Nf2.Nested.insert r
              [
                Nf2.Nested.Atom at.values.(0);
                Nf2.Nested.Atom (Atom.value s sec_at "heading");
              ])
          (Database.neighbors db "doc-sec" ~dir:`Fwd at.id))
      (Database.atoms db "document");
    r
  in
  let nested = Nf2.Nested.nest flat ~attrs:[ "sec" ] ~as_name:"secs" in
  let back = Nf2.Nested.unnest nested ~attr:"secs" in
  Format.printf "flat %d rows -> nest %d rows -> unnest %d rows (law: mu(nu(r)) = r: %b)@."
    (Nf2.Nested.cardinality flat)
    (Nf2.Nested.cardinality nested)
    (Nf2.Nested.cardinality back)
    (Nf2.Nested.compare_rows flat.Nf2.Nested.rows back.Nf2.Nested.rows = 0);

  rule "where NF2 stops: the cartographic sharing workload";
  let brazil = Geo_brazil.build () in
  let gdb = Geo_brazil.db brazil in
  let mt_state =
    Mad.Molecule_algebra.define gdb ~name:"mt_state"
      (Geo_brazil.mt_state_desc brazil)
  in
  let ge = Nf2.Embed.of_molecule_type gdb mt_state in
  Format.printf
    "mt_state: %d distinct atoms; NF2 embeds %d instances (duplication %.2f)@."
    ge.Nf2.Embed.atoms_distinct ge.Nf2.Embed.atoms_embedded
    (Nf2.Embed.duplication ge);
  Format.printf
    "MAD keeps one copy of every shared border edge and point; NF2 cannot.@."
