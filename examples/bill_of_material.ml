(* Bill of material: the paper's example for reflexive link types
   (ch. 3.1) and recursive molecule types (ch. 5 outlook).  One
   reflexive 'composition' link type gives both the sub-component view
   (parts explosion) and the super-component view (where-used), thanks
   to link symmetry.

   Run with: dune exec examples/bill_of_material.exe *)

open Mad_store
open Workloads
module R = Mad_recursive.Recursive

let rule title =
  Format.printf "@.=== %s %s@." title
    (String.make (max 0 (66 - String.length title)) '=')

let () =
  let bom =
    Bom_gen.build { Bom_gen.default with Bom_gen.depth = 4; width = 5; fanout = 2; share = 0.4 }
  in
  let db = bom.Bom_gen.db in
  Format.printf "%a@." Database.pp_summary db;

  rule "parts explosion (sub-component view)";
  let root = bom.Bom_gen.levels.(0).(0) in
  let sub = R.v db ~root_type:"part" ~link:"composition" () in
  let m = R.derive_one db sub root in
  let t = { R.name = "explosion"; desc = sub; occ = [ m ] } in
  Format.printf "%a@." (R.pp_molecule db t) m;
  Format.printf "explosion of %s: %d parts over %d links@."
    (R.atom_label db "part" root)
    (Aid.Set.cardinal m.R.members)
    (Link.Set.cardinal m.R.links);

  rule "where-used (super-component view), same link type";
  let leaf = bom.Bom_gen.levels.(3).(2) in
  let super = R.v db ~root_type:"part" ~link:"composition" ~view:R.Super () in
  let w = R.derive_one db super leaf in
  let tw = { R.name = "where_used"; desc = super; occ = [ w ] } in
  Format.printf "%a@." (R.pp_molecule db tw) w;

  rule "depth-bounded explosion (DEPTH 1 = direct components)";
  let one = R.v db ~root_type:"part" ~link:"composition" ~max_depth:1 () in
  let m1 = R.derive_one db one root in
  Format.printf "direct components of %s: %d@."
    (R.atom_label db "part" root)
    (Aid.Set.cardinal m1.R.members - 1);

  rule "the same through MOL";
  let session = Mad_mql.Session.create db in
  let run src =
    Format.printf ">> %s@.%s@." src (Mad_mql.Session.run_to_string session src)
  in
  run "SELECT ALL FROM part RECURSIVE BY composition DEPTH 1 WHERE part.pname = 'P0_0';";
  run "SELECT ALL FROM part RECURSIVE BY composition SUPER WHERE part.pname = 'P3_2';";

  rule "cost comparison: MAD recursion vs iterated relational self-joins";
  let mstats = Mad.Derive.stats () in
  ignore (R.m_dom ~stats:mstats db sub);
  let map = Relational.Mapping.of_database db in
  let rstats = Relational.Rel_algebra.stats () in
  (* iterated self-join of the auxiliary 'composition' relation until
     fixpoint, per root — the relational way to compute the closure *)
  let aux = Relational.Mapping.relation map "composition" in
  let closure root =
    let rec go frontier members =
      let joined =
        Relational.Rel_algebra.hash_join ~stats:rstats frontier aux
          ~lkey:"member" ~rkey:"part_id"
      in
      let next =
        Relational.Rel_algebra.project ~stats:rstats [ "root"; "part_id2" ]
          joined
        |> Relational.Rel_algebra.rename [ ("part_id2", "member") ]
      in
      let fresh =
        Relational.Rel_algebra.diff ~stats:rstats next members
      in
      if Relational.Relation.cardinality fresh = 0 then members
      else go fresh (Relational.Rel_algebra.union ~stats:rstats members fresh)
    in
    let f0 = Relational.Emulate.frontier "f0" [ (root, root) ] in
    go f0 f0
  in
  List.iter
    (fun (a : Atom.t) -> ignore (closure a.id))
    (Database.atoms db "part");
  Format.printf "MAD:        %d atoms visited, %d links traversed@."
    (Mad.Derive.atoms_visited mstats)
    (Mad.Derive.links_traversed mstats);
  Format.printf "relational: %d tuples scanned, %d emitted, %d probes@."
    rstats.Relational.Rel_algebra.tuples_scanned
    rstats.Relational.Rel_algebra.tuples_emitted
    rstats.Relational.Rel_algebra.probes
