(* The paper's running example end to end: the Brazil database of
   Fig. 1, its formal specification (Fig. 4), the two molecule types of
   Fig. 2 with their shared subobjects, and the two MOL queries of
   ch. 4 — each shown as MOL text, compiled algebra plan, and result.

   Run with: dune exec examples/geography.exe *)

open Mad_store
open Workloads

let rule title =
  Format.printf "@.=== %s %s@."
    title
    (String.make (max 0 (66 - String.length title)) '=')

let () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in

  rule "Fig. 1 - the geographic database (MAD diagram + atom networks)";
  Format.printf "%a@.@." Database.pp_summary db;
  List.iter
    (fun at ->
      Format.printf "  atom type %-6s : %3d atoms@." at (Database.count_atoms db at))
    (Database.atom_type_names db);
  List.iter
    (fun lt ->
      let l = Database.link_type db lt in
      Format.printf "  link type %-12s {%s,%s} : %3d links@." lt
        (fst l.Schema.Link_type.ends) (snd l.Schema.Link_type.ends)
        (Database.count_links db lt))
    (Database.link_type_names db);

  rule "Fig. 4 - formal specification (excerpt)";
  Format.printf "%s@." (Notation.database_to_string ~name:"GEO_DB" db);

  rule "Fig. 2 - molecule type 'mt state'";
  let session = Mad_mql.Session.create db in
  let q1 = "SELECT ALL FROM mt_state(state-area-edge-point);" in
  Format.printf "MOL>  %s@." q1;
  Format.printf "plan: %s@.@." (Mad_mql.Session.explain session q1);
  (match Mad_mql.Session.run session q1 with
   | Mad_mql.Session.Result (Mad_mql.Translate.Molecules mt) ->
     (* print the two molecules the figure shows: SP and MG *)
     List.iter
       (fun wanted ->
         match
           Mad.Molecule_type.find_by_root mt (Geo_brazil.state brazil wanted)
         with
         | Some m -> Format.printf "%a@." (Mad.Render.pp_molecule db mt) m
         | None -> ())
       [ "SP"; "MG" ];
     Format.printf "%a@." (fun ppf () -> Mad.Render.pp_shared db ppf mt) ();
     Format.printf "duplication factor without sharing: %.2f@."
       (Mad.Render.duplication_factor mt)
   | _ -> assert false);

  rule "Fig. 2 / ch. 4 - 'point neighborhood' (symmetric link use)";
  let q2 =
    "SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.name='pn';"
  in
  Format.printf "MOL>  %s@." q2;
  Format.printf "plan: %s@.@." (Mad_mql.Session.explain session q2);
  Format.printf "%s@." (Mad_mql.Session.run_to_string session q2);

  rule "ch. 3 - atom-type algebra (the border example)";
  let border = Mad.Atom_algebra.product db ~name:"border" "area" "edge" in
  Format.printf
    "x(area,edge) = border: %d atoms, %d inherited link types@."
    (Database.count_atoms db "border")
    (List.length border.Mad.Atom_algebra.inherited);
  let big =
    Mad.Atom_algebra.restrict db ~name:"big_border"
      ~pred:Mad.Qual.(attr "border" "size" >=% int 1)
      "border"
  in
  Format.printf "sigma[size>=1](border) = %d atoms@."
    (Aid.Set.cardinal (Mad.Atom_algebra.result_ids big));

  rule "ch. 3 - molecule algebra composition (closure, Thm. 3)";
  let mt =
    match Mad_mql.Session.lookup session "mt_state" with
    | Some mt -> mt
    | None -> assert false
  in
  let big_states =
    Mad.Molecule_algebra.restrict db
      Mad.Qual.(attr "state" "hectare" >% int 900)
      mt
  in
  let touching =
    Mad.Molecule_algebra.restrict db
      Mad.Qual.(attr "point" "name" =% str "pn")
      mt
  in
  let both = Mad.Molecule_algebra.intersect db big_states touching in
  Format.printf
    "Sigma[hectare>900]: %d, Sigma[touches pn]: %d, Psi(intersection): %d@."
    (Mad.Molecule_type.cardinality big_states)
    (Mad.Molecule_type.cardinality touching)
    (Mad.Molecule_type.cardinality both);
  let report = Mad.Closure.check_molecule_type db both in
  Format.printf "%a@." Mad.Closure.pp_report report;

  rule "EXPLAIN - PRIMA's optimized plan for the pn query";
  let q =
    {
      Prima.Planner.name = "pn_query";
      desc = Geo_brazil.point_neighborhood_desc brazil;
      where = Some Mad.Qual.(attr "point" "name" =% str "pn");
      select = None;
    }
  in
  print_string (Prima.Executor.explain q);
  let naive, optimized = Prima.Executor.compare_plans db q in
  Format.printf "naive:     %a@." Prima.Atom_interface.pp_counters
    naive.Prima.Executor.counters;
  Format.printf "optimized: %a@." Prima.Atom_interface.pp_counters
    optimized.Prima.Executor.counters
