(* The observability layer: registry get-or-create semantics, span
   nesting under a deterministic clock, JSON sink round-trips, and
   EXPLAIN ANALYZE's estimate-vs-actual wiring on the Fig. 1 brazil
   database. *)

open Workloads
module Obs = Mad_obs.Obs
module Registry = Mad_obs.Registry
module Metric = Mad_obs.Metric
module Span = Mad_obs.Span
module Sink = Mad_obs.Sink
module Json = Mad_obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)

let test_registry_get_or_create () =
  let reg = Registry.create () in
  let c = Registry.counter reg "requests" in
  Metric.incr c;
  Metric.add c 4;
  (* same (name, labels) -> same instrument *)
  let c' = Registry.counter reg "requests" in
  Metric.incr c';
  check_int "shared cell" 6 (Metric.value c);
  check_int "counter_value" 6 (Registry.counter_value reg "requests");
  check_int "absent counter reads 0" 0 (Registry.counter_value reg "nope")

let test_registry_labels_distinguish () =
  let reg = Registry.create () in
  let a = Registry.counter reg ~labels:[ ("node", "state") ] "derive.atoms" in
  let b = Registry.counter reg ~labels:[ ("node", "area") ] "derive.atoms" in
  Metric.add a 3;
  Metric.incr b;
  check_int "state" 3
    (Registry.counter_value reg ~labels:[ ("node", "state") ] "derive.atoms");
  check_int "area" 1
    (Registry.counter_value reg ~labels:[ ("node", "area") ] "derive.atoms");
  check_int "two samples" 2 (List.length (Registry.to_list reg))

let test_registry_kind_clash () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "x");
  check "kind clash rejected" true
    (match Registry.gauge reg "x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_registry_reset () =
  let reg = Registry.create () in
  let c = Registry.counter reg "n" in
  let g = Registry.gauge reg "depth" in
  Metric.add c 7;
  Metric.set g 3.5;
  Registry.reset reg;
  check_int "counter reset" 0 (Metric.value c);
  check "gauge reset" true (Metric.get g = 0.0)

let test_histogram () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~bounds:[| 1.0; 10.0; 100.0 |] "lat" in
  List.iter (Metric.observe h) [ 0.5; 5.0; 50.0; 500.0 ];
  check "mean" true (abs_float (Metric.mean h -. 138.875) < 1e-6);
  check "median in second bucket" true
    (Metric.quantile h 0.5 <= 10.0 && Metric.quantile h 0.5 >= 1.0)

let test_histogram_stats () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~bounds:[| 10.0; 20.0; 50.0 |] "lat" in
  check "empty quantile is 0" true (Metric.quantile h 0.5 = 0.0);
  check "empty min/max are 0" true
    (Metric.min_value h = 0.0 && Metric.max_value h = 0.0);
  List.iter (Metric.observe h) [ 5.0; 15.0; 15.0; 100.0 ];
  check "min tracked" true (Metric.min_value h = 5.0);
  check "max tracked" true (Metric.max_value h = 100.0);
  check "sum tracked" true (h.Metric.sum = 135.0);
  (* rank 2 of 4 lands mid-bucket (10, 20]: interpolates to exactly 15 *)
  check "median interpolated" true
    (abs_float (Metric.quantile h 0.5 -. 15.0) < 1e-9);
  (* the top quantile reports the tracked maximum, not a bucket bound *)
  check "p100 is the tracked max" true (Metric.quantile h 1.0 = 100.0);
  check "quantiles clamped to min" true (Metric.quantile h 0.0 >= 5.0)

let test_expose_golden () =
  let reg = Registry.create () in
  Metric.add (Registry.counter reg ~labels:[ ("node", "state") ] "derive.atoms") 3;
  Metric.set (Registry.gauge reg "depth") 2.5;
  Metric.add (Registry.counter reg ~labels:[ ("q", "a\"b") ] "esc") 1;
  let h =
    Registry.histogram reg
      ~labels:[ ("op", "mql.statement") ]
      ~bounds:[| 1.0; 10.0 |] "op.latency_us"
  in
  List.iter (Metric.observe h) [ 0.5; 5.0; 100.0 ];
  check_str "prometheus text"
    "# TYPE derive_atoms counter\n\
     derive_atoms{node=\"state\"} 3\n\
     # TYPE depth gauge\n\
     depth 2.5\n\
     # TYPE esc counter\n\
     esc{q=\"a\\\"b\"} 1\n\
     # TYPE op_latency_us histogram\n\
     op_latency_us_bucket{op=\"mql.statement\",le=\"1\"} 1\n\
     op_latency_us_bucket{op=\"mql.statement\",le=\"10\"} 2\n\
     op_latency_us_bucket{op=\"mql.statement\",le=\"+Inf\"} 3\n\
     op_latency_us_sum{op=\"mql.statement\"} 105.5\n\
     op_latency_us_count{op=\"mql.statement\"} 3\n"
    (Registry.expose reg)

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

(* run [f] under a fake clock advancing [step] seconds per reading *)
let with_fake_clock step f =
  let saved = !Span.clock in
  let t = ref 0.0 in
  Span.clock :=
    (fun () ->
      let now = !t in
      t := now +. step;
      now);
  Fun.protect ~finally:(fun () -> Span.clock := saved) f

let capture_ctx () =
  let spans = ref [] in
  let sink = { Sink.noop with Sink.emit_span = (fun sp -> spans := sp :: !spans) } in
  (Obs.create ~tracing:true ~sink (), spans)

let test_span_nesting () =
  with_fake_clock 0.001 @@ fun () ->
  let obs, spans = capture_ctx () in
  let result =
    Obs.with_span obs "outer" ~attrs:[ ("q", Span.Str "v") ] @@ fun outer ->
    ignore (Obs.with_span obs "inner" (fun _ -> 1));
    Span.set outer "out" (Span.Int 42);
    "done"
  in
  check_str "value returned" "done" result;
  (* only the root emits, carrying the child *)
  check_int "one root span" 1 (List.length !spans);
  let root = List.hd !spans in
  check_str "root name" "outer" root.Span.name;
  check "root finished" true (Span.finished root);
  check_int "one child" 1 (List.length (Span.children root));
  check_str "child name" "inner" (List.hd (Span.children root)).Span.name;
  check "child shorter than root" true
    (Span.duration_ms (List.hd (Span.children root)) < Span.duration_ms root);
  check "attrs recorded" true
    (List.mem_assoc "q" (Span.attrs root)
    && List.assoc "out" (Span.attrs root) = Span.Int 42)

let test_span_noop () =
  let count = ref 0 in
  let sink = { Sink.noop with Sink.emit_span = (fun _ -> incr count) } in
  let obs = Obs.create ~tracing:false ~sink () in
  Obs.with_span obs "quiet" (fun sp ->
      check "noop span handed out" true (sp == Span.none);
      Span.set sp "ignored" (Span.Int 1));
  check_int "nothing emitted" 0 !count;
  Obs.with_span Obs.noop "also quiet" (fun sp ->
      check "shared noop context" true (sp == Span.none))

let test_span_exception_safe () =
  with_fake_clock 0.001 @@ fun () ->
  let obs, spans = capture_ctx () in
  (try Obs.with_span obs "boom" (fun _ -> failwith "expected") with
  | Failure _ -> ());
  check_int "span still emitted" 1 (List.length !spans);
  let root = List.hd !spans in
  check "error attribute" true (List.mem_assoc "error" (Span.attrs root));
  (* the stack unwound: a fresh root nests correctly again *)
  Obs.with_span obs "next" (fun _ -> ());
  check_int "fresh root" 2 (List.length !spans);
  check_str "not nested under boom" "next" (List.hd !spans).Span.name

(* ------------------------------------------------------------------ *)
(* Span sampling                                                        *)

let sampled_ctx ?slow_ms rate seed =
  let spans = ref [] in
  let sink =
    { Sink.noop with Sink.emit_span = (fun sp -> spans := sp :: !spans) }
  in
  (Obs.create ~tracing:true ~sink ~sample:rate ?slow_ms ~seed (), spans)

let run_roots obs n =
  for i = 1 to n do
    Obs.with_span obs (Printf.sprintf "s%d" i) (fun _ -> ())
  done

let kept spans = List.rev_map (fun (sp : Span.t) -> sp.Span.name) !spans

let test_sampling_deterministic () =
  let obs1, s1 = sampled_ctx 0.5 42 in
  let obs2, s2 = sampled_ctx 0.5 42 in
  run_roots obs1 40;
  run_roots obs2 40;
  let k1 = kept s1 and k2 = kept s2 in
  check "same seed keeps the same roots" true (k1 = k2);
  check "some kept" true (List.length k1 > 0);
  check "some dropped" true (List.length k1 < 40);
  let obs3, s3 = sampled_ctx 0.5 43 in
  run_roots obs3 40;
  check "a different seed draws differently" true (kept s3 <> k1)

let test_sampling_always_keeps_errors_and_slow () =
  let obs, spans = sampled_ctx 0.0 7 in
  run_roots obs 10;
  check_int "rate 0 drops everything" 0 (List.length !spans);
  (* an errored root beats the coin flip *)
  (try Obs.with_span obs "boom" (fun _ -> failwith "expected") with
  | Failure _ -> ());
  check_int "errored root still emitted" 1 (List.length !spans);
  check_str "errored root" "boom" (List.hd !spans).Span.name;
  (* and so does a root slower than the threshold: the fake clock makes
     every span take ~20 ms against a 10 ms threshold *)
  with_fake_clock 0.02 @@ fun () ->
  let obs, spans = sampled_ctx ~slow_ms:10.0 0.0 7 in
  Obs.with_span obs "slow" (fun _ -> ());
  check_int "slow root emitted" 1 (List.length !spans)

let test_sampling_metrics_stay_exact () =
  let obs, spans = sampled_ctx 0.0 7 in
  for _ = 1 to 5 do
    Obs.timed obs "work" (fun _ -> ())
  done;
  check_int "all spans dropped" 0 (List.length !spans);
  match
    Registry.find (Obs.registry obs) ~labels:[ ("op", "work") ] "op.latency_us"
  with
  | Some (Metric.Histogram h) ->
    check_int "histogram counted every run" 5 h.Metric.n
  | _ -> Alcotest.fail "op.latency_us{op=work} histogram missing"

let test_timed_without_tracing () =
  let obs = Obs.create ~tracing:false () in
  let v =
    Obs.timed obs "op.x" (fun sp ->
        check "timed hands out the noop span" true (sp == Span.none);
        7)
  in
  check_int "value returned" 7 v;
  (match
     Registry.find (Obs.registry obs) ~labels:[ ("op", "op.x") ] "op.latency_us"
   with
  | Some (Metric.Histogram h) -> check_int "latency recorded" 1 h.Metric.n
  | _ -> Alcotest.fail "op.latency_us{op=op.x} histogram missing");
  (* only the shared noop context skips the record entirely *)
  ignore (Obs.timed Obs.noop "noop.probe" (fun _ -> ()));
  check "noop context records nothing" true
    (Registry.find (Obs.registry Obs.noop)
       ~labels:[ ("op", "noop.probe") ]
       "op.latency_us"
    = None)

(* ------------------------------------------------------------------ *)
(* JSON sink round-trip                                                 *)

let parse_line line =
  match Json.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable sink line %S: %s" line e

let test_json_sink_roundtrip () =
  with_fake_clock 0.001 @@ fun () ->
  let lines = ref [] in
  let obs =
    Obs.create ~tracing:true
      ~sink:(Sink.json_lines (fun l -> lines := l :: !lines))
      ()
  in
  Obs.with_span obs "root" ~attrs:[ ("n", Span.Int 3) ] (fun _ ->
      Obs.with_span obs "child" (fun _ -> ()));
  Obs.event obs "bench" [ ("ns", Span.Float 12.5) ];
  Metric.add (Obs.counter obs "hits") 9;
  Obs.flush obs;
  let jsons = List.rev_map parse_line !lines in
  check "every line parses" true (List.length jsons >= 3);
  let span_json =
    List.find
      (fun j -> Json.member "kind" j = Some (Json.Str "span"))
      jsons
  in
  check "span name" true (Json.member "name" span_json = Some (Json.Str "root"));
  check "span attr" true
    (Option.bind (Json.member "attrs" span_json) (Json.member "n")
    = Some (Json.Num 3.0));
  check "span child present" true
    (match Json.member "children" span_json with
    | Some (Json.List [ c ]) -> Json.member "name" c = Some (Json.Str "child")
    | _ -> false);
  let event_json =
    List.find
      (fun j -> Json.member "kind" j = Some (Json.Str "bench"))
      jsons
  in
  check "event field" true (Json.member "ns" event_json = Some (Json.Num 12.5));
  let metric_json =
    List.find
      (fun j -> Json.member "name" j = Some (Json.Str "hits"))
      jsons
  in
  check "metric value" true
    (Json.member "value" metric_json = Some (Json.Num 9.0))

(* ------------------------------------------------------------------ *)
(* Estimate vs. actual on Fig. 1                                        *)

let brazil () =
  let b = Geo_brazil.build () in
  (b, Geo_brazil.db b)

let test_profile_actuals_match_ground_truth () =
  let b, db = brazil () in
  let desc = Geo_brazil.mt_state_desc b in
  let q = { Prima.Planner.name = "q"; desc; where = None; select = None } in
  let r = Prima.Profile.analyze db q in
  (* ground truth: a plain derivation with fresh counters *)
  let stats = Mad.Derive.stats () in
  let molecules = Mad.Derive.m_dom ~stats db desc in
  check_int "actual roots" (List.length molecules) r.Prima.Profile.actual_roots;
  check_int "actual atoms" (Mad.Derive.atoms_visited stats)
    r.Prima.Profile.actual_atoms;
  check_int "actual links" (Mad.Derive.links_traversed stats)
    r.Prima.Profile.actual_links;
  (* the per-node actuals partition the totals *)
  check_int "node atoms sum to total" r.Prima.Profile.actual_atoms
    (List.fold_left
       (fun acc nr -> acc + nr.Prima.Profile.nr_atoms)
       0 r.Prima.Profile.nodes);
  check_int "node links sum to total" r.Prima.Profile.actual_links
    (List.fold_left
       (fun acc nr -> acc + nr.Prima.Profile.nr_links)
       0 r.Prima.Profile.nodes);
  (* with uniform synthetic stats the estimator is exact on roots *)
  check "root estimate exact" true
    (int_of_float r.Prima.Profile.est.Prima.Stats.est_roots
    = r.Prima.Profile.actual_roots);
  (* one report per structure node *)
  check_int "one report per node" (List.length (Mad.Mdesc.nodes desc))
    (List.length r.Prima.Profile.nodes)

let test_explain_analyze_via_session () =
  Prima.Profile.install ();
  let _, db = brazil () in
  let session = Mad_mql.Session.create db in
  let report =
    Mad_mql.Session.run_to_string session
      "EXPLAIN ANALYZE SELECT ALL FROM state-area WHERE state.name = 'SP';"
  in
  let has_substr s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "mentions estimates" true (has_substr report "est=");
  check "mentions actuals" true (has_substr report "actual=");
  check "per-node tree includes area" true (has_substr report "-[state-area]-");
  (* EXPLAIN (without ANALYZE) never executes *)
  let explained =
    Mad_mql.Session.run_to_string session
      "EXPLAIN SELECT ALL FROM state-area;"
  in
  check "plain explain shows algebra" true (has_substr explained "root state")

let has_substr s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* the full loop at the session layer: per-statement latency histograms
   land in the session's registry, repeated EXPLAIN ANALYZE runs refine
   the adaptive catalog, and both the report and the registry expose it *)
let test_adaptive_session () =
  Prima.Adaptive.install ();
  let _, db = brazil () in
  let obs = Obs.create ~tracing:true () in
  let session = Mad_mql.Session.create ~obs db in
  ignore (Mad_mql.Session.run_to_string session "SELECT ALL FROM state-area;");
  (match
     Registry.find (Obs.registry obs)
       ~labels:[ ("op", "mql.statement") ]
       "op.latency_us"
   with
  | Some (Metric.Histogram h) ->
    check "statement latency recorded" true (h.Metric.n >= 1)
  | _ -> Alcotest.fail "op.latency_us{op=mql.statement} missing");
  check "exposition carries the latency histogram" true
    (has_substr (Registry.expose (Obs.registry obs)) "op_latency_us_bucket");
  let stmt = "EXPLAIN ANALYZE SELECT ALL FROM state-area-edge-point;" in
  let r1 = Mad_mql.Session.run_to_string session stmt in
  let r2 = Mad_mql.Session.run_to_string session stmt in
  check "adaptive section present" true (has_substr r1 "adaptive:");
  check "refinements counted across runs" true (has_substr r2 "2 run(s)");
  (match session.Mad_mql.Session.ext with
  | Some (Prima.Adaptive.Adaptive st) ->
    check_int "two refinements recorded" 2 st.Prima.Adaptive.refinements
  | _ -> Alcotest.fail "adaptive state missing from session");
  check "drift report renders" true
    (has_substr (Prima.Adaptive.report session) "refinement")

let suite =
  [
    Alcotest.test_case "registry get-or-create" `Quick test_registry_get_or_create;
    Alcotest.test_case "registry labels" `Quick test_registry_labels_distinguish;
    Alcotest.test_case "registry kind clash" `Quick test_registry_kind_clash;
    Alcotest.test_case "registry reset" `Quick test_registry_reset;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram stats and quantiles" `Quick
      test_histogram_stats;
    Alcotest.test_case "prometheus exposition" `Quick test_expose_golden;
    Alcotest.test_case "sampling is deterministic" `Quick
      test_sampling_deterministic;
    Alcotest.test_case "sampling keeps errors and slow roots" `Quick
      test_sampling_always_keeps_errors_and_slow;
    Alcotest.test_case "sampling leaves metrics exact" `Quick
      test_sampling_metrics_stay_exact;
    Alcotest.test_case "timed without tracing" `Quick
      test_timed_without_tracing;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span noop" `Quick test_span_noop;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "json sink round-trip" `Quick test_json_sink_roundtrip;
    Alcotest.test_case "profile estimate vs actual" `Quick
      test_profile_actuals_match_ground_truth;
    Alcotest.test_case "explain analyze via session" `Quick
      test_explain_analyze_via_session;
    Alcotest.test_case "adaptive session loop" `Quick test_adaptive_session;
  ]
