(* The observability layer: registry get-or-create semantics, span
   nesting under a deterministic clock, JSON sink round-trips, and
   EXPLAIN ANALYZE's estimate-vs-actual wiring on the Fig. 1 brazil
   database. *)

open Workloads
module Obs = Mad_obs.Obs
module Registry = Mad_obs.Registry
module Metric = Mad_obs.Metric
module Span = Mad_obs.Span
module Sink = Mad_obs.Sink
module Json = Mad_obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)

let test_registry_get_or_create () =
  let reg = Registry.create () in
  let c = Registry.counter reg "requests" in
  Metric.incr c;
  Metric.add c 4;
  (* same (name, labels) -> same instrument *)
  let c' = Registry.counter reg "requests" in
  Metric.incr c';
  check_int "shared cell" 6 (Metric.value c);
  check_int "counter_value" 6 (Registry.counter_value reg "requests");
  check_int "absent counter reads 0" 0 (Registry.counter_value reg "nope")

let test_registry_labels_distinguish () =
  let reg = Registry.create () in
  let a = Registry.counter reg ~labels:[ ("node", "state") ] "derive.atoms" in
  let b = Registry.counter reg ~labels:[ ("node", "area") ] "derive.atoms" in
  Metric.add a 3;
  Metric.incr b;
  check_int "state" 3
    (Registry.counter_value reg ~labels:[ ("node", "state") ] "derive.atoms");
  check_int "area" 1
    (Registry.counter_value reg ~labels:[ ("node", "area") ] "derive.atoms");
  check_int "two samples" 2 (List.length (Registry.to_list reg))

let test_registry_kind_clash () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "x");
  check "kind clash rejected" true
    (match Registry.gauge reg "x" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_registry_reset () =
  let reg = Registry.create () in
  let c = Registry.counter reg "n" in
  let g = Registry.gauge reg "depth" in
  Metric.add c 7;
  Metric.set g 3.5;
  Registry.reset reg;
  check_int "counter reset" 0 (Metric.value c);
  check "gauge reset" true (Metric.get g = 0.0)

let test_histogram () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~bounds:[| 1.0; 10.0; 100.0 |] "lat" in
  List.iter (Metric.observe h) [ 0.5; 5.0; 50.0; 500.0 ];
  check "mean" true (abs_float (Metric.mean h -. 138.875) < 1e-6);
  let p50 = Option.get (Metric.quantile h 0.5) in
  check "median in second bucket" true (p50 <= 10.0 && p50 >= 1.0)

let test_histogram_stats () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~bounds:[| 10.0; 20.0; 50.0 |] "lat" in
  let qv h p = Option.get (Metric.quantile h p) in
  check "empty quantile is None" true (Metric.quantile h 0.5 = None);
  check "empty min/max are 0" true
    (Metric.min_value h = 0.0 && Metric.max_value h = 0.0);
  (* empty histograms render "-" instead of a non-finite quantile *)
  check "empty pp prints dash" true
    (let s = Format.asprintf "%a" Metric.pp (Metric.Histogram h) in
     contains s "p50=-");
  List.iter (Metric.observe h) [ 5.0; 15.0; 15.0; 100.0 ];
  check "min tracked" true (Metric.min_value h = 5.0);
  check "max tracked" true (Metric.max_value h = 100.0);
  check "sum tracked" true (Metric.sum h = 135.0);
  (* rank 2 of 4 lands mid-bucket (10, 20]: interpolates to exactly 15 *)
  check "median interpolated" true (abs_float (qv h 0.5 -. 15.0) < 1e-9);
  (* the top quantile reports the tracked maximum, not a bucket bound *)
  check "p100 is the tracked max" true (qv h 1.0 = 100.0);
  check "quantiles clamped to min" true (qv h 0.0 >= 5.0)

let test_expose_golden () =
  let reg = Registry.create () in
  Metric.add (Registry.counter reg ~labels:[ ("node", "state") ] "derive.atoms") 3;
  Metric.set (Registry.gauge reg "depth") 2.5;
  Metric.add (Registry.counter reg ~labels:[ ("q", "a\"b") ] "esc") 1;
  let h =
    Registry.histogram reg
      ~labels:[ ("op", "mql.statement") ]
      ~bounds:[| 1.0; 10.0 |] "op.latency_us"
  in
  List.iter (Metric.observe h) [ 0.5; 5.0; 100.0 ];
  check_str "prometheus text"
    "# TYPE derive_atoms counter\n\
     derive_atoms{node=\"state\"} 3\n\
     # TYPE depth gauge\n\
     depth 2.5\n\
     # TYPE esc counter\n\
     esc{q=\"a\\\"b\"} 1\n\
     # TYPE op_latency_us histogram\n\
     op_latency_us_bucket{op=\"mql.statement\",le=\"1\"} 1\n\
     op_latency_us_bucket{op=\"mql.statement\",le=\"10\"} 2\n\
     op_latency_us_bucket{op=\"mql.statement\",le=\"+Inf\"} 3\n\
     op_latency_us_sum{op=\"mql.statement\"} 105.5\n\
     op_latency_us_count{op=\"mql.statement\"} 3\n"
    (Registry.expose reg)

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

(* run [f] under a fake clock advancing [step] seconds per reading *)
let with_fake_clock step f =
  let saved = !Span.clock in
  let t = ref 0.0 in
  Span.clock :=
    (fun () ->
      let now = !t in
      t := now +. step;
      now);
  Fun.protect ~finally:(fun () -> Span.clock := saved) f

let capture_ctx () =
  let spans = ref [] in
  let sink = { Sink.noop with Sink.emit_span = (fun sp -> spans := sp :: !spans) } in
  (Obs.create ~tracing:true ~sink (), spans)

let test_span_nesting () =
  with_fake_clock 0.001 @@ fun () ->
  let obs, spans = capture_ctx () in
  let result =
    Obs.with_span obs "outer" ~attrs:[ ("q", Span.Str "v") ] @@ fun outer ->
    ignore (Obs.with_span obs "inner" (fun _ -> 1));
    Span.set outer "out" (Span.Int 42);
    "done"
  in
  check_str "value returned" "done" result;
  (* only the root emits, carrying the child *)
  check_int "one root span" 1 (List.length !spans);
  let root = List.hd !spans in
  check_str "root name" "outer" root.Span.name;
  check "root finished" true (Span.finished root);
  check_int "one child" 1 (List.length (Span.children root));
  check_str "child name" "inner" (List.hd (Span.children root)).Span.name;
  check "child shorter than root" true
    (Span.duration_ms (List.hd (Span.children root)) < Span.duration_ms root);
  check "attrs recorded" true
    (List.mem_assoc "q" (Span.attrs root)
    && List.assoc "out" (Span.attrs root) = Span.Int 42)

let test_span_noop () =
  let count = ref 0 in
  let sink = { Sink.noop with Sink.emit_span = (fun _ -> incr count) } in
  let obs = Obs.create ~tracing:false ~sink () in
  Obs.with_span obs "quiet" (fun sp ->
      check "noop span handed out" true (sp == Span.none);
      Span.set sp "ignored" (Span.Int 1));
  check_int "nothing emitted" 0 !count;
  Obs.with_span Obs.noop "also quiet" (fun sp ->
      check "shared noop context" true (sp == Span.none))

let test_span_exception_safe () =
  with_fake_clock 0.001 @@ fun () ->
  let obs, spans = capture_ctx () in
  (try Obs.with_span obs "boom" (fun _ -> failwith "expected") with
  | Failure _ -> ());
  check_int "span still emitted" 1 (List.length !spans);
  let root = List.hd !spans in
  check "error attribute" true (List.mem_assoc "error" (Span.attrs root));
  (* the stack unwound: a fresh root nests correctly again *)
  Obs.with_span obs "next" (fun _ -> ());
  check_int "fresh root" 2 (List.length !spans);
  check_str "not nested under boom" "next" (List.hd !spans).Span.name

(* ------------------------------------------------------------------ *)
(* Span sampling                                                        *)

let sampled_ctx ?slow_ms rate seed =
  let spans = ref [] in
  let sink =
    { Sink.noop with Sink.emit_span = (fun sp -> spans := sp :: !spans) }
  in
  (Obs.create ~tracing:true ~sink ~sample:rate ?slow_ms ~seed (), spans)

let run_roots obs n =
  for i = 1 to n do
    Obs.with_span obs (Printf.sprintf "s%d" i) (fun _ -> ())
  done

let kept spans = List.rev_map (fun (sp : Span.t) -> sp.Span.name) !spans

let test_sampling_deterministic () =
  let obs1, s1 = sampled_ctx 0.5 42 in
  let obs2, s2 = sampled_ctx 0.5 42 in
  run_roots obs1 40;
  run_roots obs2 40;
  let k1 = kept s1 and k2 = kept s2 in
  check "same seed keeps the same roots" true (k1 = k2);
  check "some kept" true (List.length k1 > 0);
  check "some dropped" true (List.length k1 < 40);
  let obs3, s3 = sampled_ctx 0.5 43 in
  run_roots obs3 40;
  check "a different seed draws differently" true (kept s3 <> k1)

let test_sampling_always_keeps_errors_and_slow () =
  let obs, spans = sampled_ctx 0.0 7 in
  run_roots obs 10;
  check_int "rate 0 drops everything" 0 (List.length !spans);
  (* an errored root beats the coin flip *)
  (try Obs.with_span obs "boom" (fun _ -> failwith "expected") with
  | Failure _ -> ());
  check_int "errored root still emitted" 1 (List.length !spans);
  check_str "errored root" "boom" (List.hd !spans).Span.name;
  (* and so does a root slower than the threshold: the fake clock makes
     every span take ~20 ms against a 10 ms threshold *)
  with_fake_clock 0.02 @@ fun () ->
  let obs, spans = sampled_ctx ~slow_ms:10.0 0.0 7 in
  Obs.with_span obs "slow" (fun _ -> ());
  check_int "slow root emitted" 1 (List.length !spans)

let test_sampling_metrics_stay_exact () =
  let obs, spans = sampled_ctx 0.0 7 in
  for _ = 1 to 5 do
    Obs.timed obs "work" (fun _ -> ())
  done;
  check_int "all spans dropped" 0 (List.length !spans);
  match
    Registry.find (Obs.registry obs) ~labels:[ ("op", "work") ] "op.latency_us"
  with
  | Some (Metric.Histogram h) ->
    check_int "histogram counted every run" 5 (Metric.count h)
  | _ -> Alcotest.fail "op.latency_us{op=work} histogram missing"

let test_timed_without_tracing () =
  let obs = Obs.create ~tracing:false () in
  let v =
    Obs.timed obs "op.x" (fun sp ->
        check "timed hands out the noop span" true (sp == Span.none);
        7)
  in
  check_int "value returned" 7 v;
  (match
     Registry.find (Obs.registry obs) ~labels:[ ("op", "op.x") ] "op.latency_us"
   with
  | Some (Metric.Histogram h) -> check_int "latency recorded" 1 (Metric.count h)
  | _ -> Alcotest.fail "op.latency_us{op=op.x} histogram missing");
  (* only the shared noop context skips the record entirely *)
  ignore (Obs.timed Obs.noop "noop.probe" (fun _ -> ()));
  check "noop context records nothing" true
    (Registry.find (Obs.registry Obs.noop)
       ~labels:[ ("op", "noop.probe") ]
       "op.latency_us"
    = None)

(* ------------------------------------------------------------------ *)
(* JSON sink round-trip                                                 *)

let parse_line line =
  match Json.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable sink line %S: %s" line e

let test_json_sink_roundtrip () =
  with_fake_clock 0.001 @@ fun () ->
  let lines = ref [] in
  let obs =
    Obs.create ~tracing:true
      ~sink:(Sink.json_lines (fun l -> lines := l :: !lines))
      ()
  in
  Obs.with_span obs "root" ~attrs:[ ("n", Span.Int 3) ] (fun _ ->
      Obs.with_span obs "child" (fun _ -> ()));
  Obs.event obs "bench" [ ("ns", Span.Float 12.5) ];
  Metric.add (Obs.counter obs "hits") 9;
  Obs.flush obs;
  let jsons = List.rev_map parse_line !lines in
  check "every line parses" true (List.length jsons >= 3);
  let span_json =
    List.find
      (fun j -> Json.member "kind" j = Some (Json.Str "span"))
      jsons
  in
  check "span name" true (Json.member "name" span_json = Some (Json.Str "root"));
  check "span attr" true
    (Option.bind (Json.member "attrs" span_json) (Json.member "n")
    = Some (Json.Num 3.0));
  check "span child present" true
    (match Json.member "children" span_json with
    | Some (Json.List [ c ]) -> Json.member "name" c = Some (Json.Str "child")
    | _ -> false);
  let event_json =
    List.find
      (fun j -> Json.member "kind" j = Some (Json.Str "bench"))
      jsons
  in
  check "event field" true (Json.member "ns" event_json = Some (Json.Num 12.5));
  let metric_json =
    List.find
      (fun j -> Json.member "name" j = Some (Json.Str "hits"))
      jsons
  in
  check "metric value" true
    (Json.member "value" metric_json = Some (Json.Num 9.0))

(* ------------------------------------------------------------------ *)
(* Estimate vs. actual on Fig. 1                                        *)

let brazil () =
  let b = Geo_brazil.build () in
  (b, Geo_brazil.db b)

let test_profile_actuals_match_ground_truth () =
  let b, db = brazil () in
  let desc = Geo_brazil.mt_state_desc b in
  let q = { Prima.Planner.name = "q"; desc; where = None; select = None } in
  let r = Prima.Profile.analyze db q in
  (* ground truth: a plain derivation with fresh counters *)
  let stats = Mad.Derive.stats () in
  let molecules = Mad.Derive.m_dom ~stats db desc in
  check_int "actual roots" (List.length molecules) r.Prima.Profile.actual_roots;
  check_int "actual atoms" (Mad.Derive.atoms_visited stats)
    r.Prima.Profile.actual_atoms;
  check_int "actual links" (Mad.Derive.links_traversed stats)
    r.Prima.Profile.actual_links;
  (* the per-node actuals partition the totals *)
  check_int "node atoms sum to total" r.Prima.Profile.actual_atoms
    (List.fold_left
       (fun acc nr -> acc + nr.Prima.Profile.nr_atoms)
       0 r.Prima.Profile.nodes);
  check_int "node links sum to total" r.Prima.Profile.actual_links
    (List.fold_left
       (fun acc nr -> acc + nr.Prima.Profile.nr_links)
       0 r.Prima.Profile.nodes);
  (* with uniform synthetic stats the estimator is exact on roots *)
  check "root estimate exact" true
    (int_of_float r.Prima.Profile.est.Prima.Stats.est_roots
    = r.Prima.Profile.actual_roots);
  (* one report per structure node *)
  check_int "one report per node" (List.length (Mad.Mdesc.nodes desc))
    (List.length r.Prima.Profile.nodes)

let test_explain_analyze_via_session () =
  Prima.Profile.install ();
  let _, db = brazil () in
  let session = Mad_mql.Session.create db in
  let report =
    Mad_mql.Session.run_to_string session
      "EXPLAIN ANALYZE SELECT ALL FROM state-area WHERE state.name = 'SP';"
  in
  let has_substr s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "mentions estimates" true (has_substr report "est=");
  check "mentions actuals" true (has_substr report "actual=");
  check "per-node tree includes area" true (has_substr report "-[state-area]-");
  (* EXPLAIN (without ANALYZE) never executes *)
  let explained =
    Mad_mql.Session.run_to_string session
      "EXPLAIN SELECT ALL FROM state-area;"
  in
  check "plain explain shows algebra" true (has_substr explained "root state")

let has_substr s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* the full loop at the session layer: per-statement latency histograms
   land in the session's registry, repeated EXPLAIN ANALYZE runs refine
   the adaptive catalog, and both the report and the registry expose it *)
let test_adaptive_session () =
  Prima.Adaptive.install ();
  let _, db = brazil () in
  let obs = Obs.create ~tracing:true () in
  let session = Mad_mql.Session.create ~obs db in
  ignore (Mad_mql.Session.run_to_string session "SELECT ALL FROM state-area;");
  (match
     Registry.find (Obs.registry obs)
       ~labels:[ ("op", "mql.statement") ]
       "op.latency_us"
   with
  | Some (Metric.Histogram h) ->
    check "statement latency recorded" true (Metric.count h >= 1)
  | _ -> Alcotest.fail "op.latency_us{op=mql.statement} missing");
  check "exposition carries the latency histogram" true
    (has_substr (Registry.expose (Obs.registry obs)) "op_latency_us_bucket");
  let stmt = "EXPLAIN ANALYZE SELECT ALL FROM state-area-edge-point;" in
  let r1 = Mad_mql.Session.run_to_string session stmt in
  let r2 = Mad_mql.Session.run_to_string session stmt in
  check "adaptive section present" true (has_substr r1 "adaptive:");
  check "refinements counted across runs" true (has_substr r2 "2 run(s)");
  (match session.Mad_mql.Session.ext with
  | Some (Prima.Adaptive.Adaptive st) ->
    check_int "two refinements recorded" 2 st.Prima.Adaptive.refinements
  | _ -> Alcotest.fail "adaptive state missing from session");
  check "drift report renders" true
    (has_substr (Prima.Adaptive.report session) "refinement")

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)

module Recorder = Mad_obs.Recorder

let test_recorder_ring_wrap () =
  let r = Recorder.create 8 in
  check_int "capacity rounds to a power of two" 8 (Recorder.capacity r);
  for i = 0 to 11 do
    ignore (Recorder.record r Recorder.Wal_append ~a:i ())
  done;
  check_int "cursor counts every event" 12 (Recorder.recorded r);
  let evs = Recorder.drain r in
  check_int "ring retains the newest window" 8 (List.length evs);
  let seqs = List.map (fun e -> e.Recorder.e_seq) evs in
  check "oldest first, newest last" true (seqs = [ 4; 5; 6; 7; 8; 9; 10; 11 ]);
  check "payloads line up with seqs" true
    (List.map (fun e -> e.Recorder.e_a) evs = seqs);
  (* disabling the global ring drops events without consuming seqs *)
  let g = Recorder.global () in
  let before = Recorder.recorded g in
  Recorder.set_enabled false;
  Recorder.note Recorder.Wal_append ~label:"t_obs.disabled" ();
  Recorder.set_enabled true;
  check_int "disabled ring records nothing" before (Recorder.recorded g)

(* the acceptance bar: concurrent recording from 4 domains loses no
   events when the ring is large enough for the burst — fetch_and_add
   hands every event its own slot *)
let test_recorder_concurrent_domains () =
  let per = 400 and doms = 4 in
  let r = Recorder.create 2048 in
  let worker k () =
    for i = 0 to per - 1 do
      ignore
        (Recorder.record r Recorder.Kernel_chunk
           ~label:(Printf.sprintf "d%d" k)
           ~a:i ())
    done
  in
  let ds = List.init doms (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join ds;
  check_int "every event recorded" (per * doms) (Recorder.recorded r);
  let evs = Recorder.drain r in
  check_int "no event lost" (per * doms) (List.length evs);
  let seqs = List.map (fun e -> e.Recorder.e_seq) evs in
  check_int "seqs all distinct" (per * doms)
    (List.length (List.sort_uniq compare seqs));
  List.iter
    (fun k ->
      let lbl = Printf.sprintf "d%d" k in
      check_int (lbl ^ " complete") per
        (List.length (List.filter (fun e -> e.Recorder.e_label = lbl) evs)))
    (List.init doms Fun.id)

let test_recorder_chrome_export () =
  with_fake_clock 0.001 @@ fun () ->
  let r = Recorder.create 64 in
  ignore (Recorder.record r Recorder.Span_begin ~label:"prima.plan" ());
  ignore
    (Recorder.record r Recorder.Span_end ~label:"mql.statement"
       ~dur_ns:500_000 ~a:0 ());
  ignore (Recorder.record r Recorder.Wal_append ~label:"wal.log" ~a:32 ());
  ignore
    (Recorder.record r Recorder.Wal_fsync ~label:"wal.log" ~dur_ns:2_000_000 ());
  ignore
    (Recorder.record r Recorder.Kernel_run ~label:"part" ~a:10 ~b:3
       ~dur_ns:1_000_000 ());
  ignore
    (Recorder.record r Recorder.Snapshot_build ~label:"composition" ~a:100
       ~b:400 ());
  let text = Json.to_string (Recorder.to_chrome r) in
  let parsed =
    match Json.of_string text with
    | Ok j -> j
    | Error e -> Alcotest.failf "trace does not parse: %s" e
  in
  let events =
    match Json.member "traceEvents" parsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let names =
    List.filter_map (fun e -> Option.bind (Json.member "name" e) Json.to_str)
      events
  in
  List.iter
    (fun n -> check ("event " ^ n) true (List.mem n names))
    [ "mql.statement"; "wal.append"; "wal.fsync"; "kernel.run";
      "snapshot.build"; "prima.plan"; "thread_name" ];
  (* the WAL and the planner get their own named tracks *)
  let thread_names =
    List.filter_map
      (fun e ->
        if Json.member "name" e = Some (Json.Str "thread_name") then
          Option.bind (Json.member "args" e) (fun a ->
              Option.bind (Json.member "name" a) Json.to_str)
        else None)
      events
  in
  check "wal track" true (List.mem "wal" thread_names);
  check "planner track" true (List.mem "planner" thread_names);
  (* events with a duration export as complete ("X") slices in µs *)
  let fsync =
    List.find (fun e -> Json.member "name" e = Some (Json.Str "wal.fsync")) events
  in
  check "fsync is a complete event" true
    (Json.member "ph" fsync = Some (Json.Str "X"));
  check "fsync duration in us" true
    (Json.member "dur" fsync = Some (Json.Num 2000.0))

(* spans journal to the global ring even on a non-tracing context —
   the "always on" half of the flight-recorder contract *)
let test_recorder_span_journal () =
  Recorder.set_enabled true;
  let g = Recorder.global () in
  let obs = Obs.create ~tracing:false () in
  Obs.with_span obs "t_obs.journal" (fun _ -> ());
  (try Obs.with_span obs "t_obs.journal_err" (fun _ -> failwith "expected")
   with Failure _ -> ());
  let evs = Recorder.drain g in
  let ends l =
    List.filter
      (fun e ->
        e.Recorder.e_kind = Recorder.Span_end && e.Recorder.e_label = l)
      evs
  in
  check_int "untraced span journaled" 1 (List.length (ends "t_obs.journal"));
  (match ends "t_obs.journal_err" with
   | [ e ] -> check "error flagged on the end event" true (e.Recorder.e_b = 1)
   | _ -> Alcotest.fail "errored span not journaled");
  check "noop journals nothing" true
    (Obs.with_span Obs.noop "t_obs.noop_probe" (fun _ -> ());
     List.for_all
       (fun e -> e.Recorder.e_label <> "t_obs.noop_probe")
       (Recorder.drain g))

(* the integration bar: driving the durable engine and the kernel puts
   span, WAL, group-commit, kernel-run, snapshot-build and
   recovery-replay events into the one global ring, and the dumped
   Chrome trace parses *)
let test_recorder_engine_events () =
  Recorder.set_enabled true;
  let g = Recorder.global () in
  (* kernel + snapshot: BOM part explosion through the closure kernel *)
  let bom = Workloads.Bom_gen.build Workloads.Bom_gen.default in
  let kdb = bom.Workloads.Bom_gen.db in
  let d =
    Mad_recursive.Recursive.v kdb ~root_type:"part" ~link:"composition" ()
  in
  ignore (Mad_recursive.Recursive.m_dom ~kernel:true kdb d);
  (* durable: journal + group commit, close, reopen (replay) *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "t_obs_recorder"
  in
  Mad_durable.Harness.rm_rf dir;
  Fun.protect
    ~finally:(fun () -> Mad_durable.Harness.rm_rf dir)
    (fun () ->
      let _, db = brazil () in
      let h = Mad_durable.Durable.open_dir ~seed:db dir in
      let session =
        Mad_mql.Session.create
          ~obs:(Obs.create ~tracing:false ())
          (Mad_durable.Durable.db h)
      in
      ignore
        (Mad_mql.Session.add_on_commit session (fun () ->
             Mad_durable.Durable.commit h));
      ignore
        (Mad_mql.Session.run session
           "INSERT INTO city VALUES ('Trace City', 3);");
      Mad_durable.Durable.close h;
      let h2 = Mad_durable.Durable.open_dir dir in
      check "reopen replays the insert" true
        ((Mad_durable.Durable.recovery h2).Mad_durable.Durable.replayed_records
        >= 1);
      Mad_durable.Durable.close h2);
  let evs = Recorder.drain g in
  let has k = List.exists (fun e -> e.Recorder.e_kind = k) evs in
  List.iter
    (fun (k, name) -> check name true (has k))
    [
      (Recorder.Span_end, "span event present");
      (Recorder.Wal_append, "wal append present");
      (Recorder.Wal_fsync, "wal fsync present");
      (Recorder.Group_commit, "group commit present");
      (Recorder.Kernel_run, "kernel run present");
      (Recorder.Snapshot_build, "snapshot build present");
      (Recorder.Recovery_replay, "recovery replay present");
    ];
  let trace = Filename.temp_file "t_obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove trace)
    (fun () ->
      Recorder.dump g trace;
      let ic = open_in trace in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> In_channel.input_all ic)
      in
      match Json.of_string text with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "dumped trace does not parse: %s" e)

(* ------------------------------------------------------------------ *)
(* Domain-safe gauges, exemplars, exposition escaping                   *)

let test_gauge_domain_safe () =
  let g = Metric.gauge "pool.busy_us" in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Metric.add_gauge g 1.0
            done))
  in
  List.iter Domain.join ds;
  check "40000 concurrent adds survive" true (Metric.get g = 40000.0);
  Metric.set g 2.0;
  check "set still wins" true (Metric.get g = 2.0)

let test_exemplars () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~bounds:[| 1.0; 10.0 |] "lat" in
  Metric.observe h 0.5 (* no exemplar *);
  Metric.observe ~exemplar:42 h 5.0;
  Metric.observe ~exemplar:99 h 7.0 (* same bucket: last writer wins *);
  Metric.observe ~exemplar:7 h 100.0 (* overflow bucket *);
  check_int "bucket exemplar overwritten" 99 (Metric.exemplar_seq h 1);
  check "exemplar value kept" true (Metric.exemplar_value h 1 = 7.0);
  check_int "no exemplar where none landed" (-1) (Metric.exemplar_seq h 0);
  let text = Registry.expose reg in
  check "bucket line carries its exemplar" true
    (contains text "lat_bucket{le=\"10\"} 3 # {span_seq=\"99\"} 7");
  check "+Inf bucket too" true
    (contains text "lat_bucket{le=\"+Inf\"} 4 # {span_seq=\"7\"} 100");
  Registry.reset reg;
  check "reset clears exemplars" true
    (not (contains (Registry.expose reg) "span_seq"));
  (* the timed path wires the span's recorder seq in automatically *)
  Recorder.set_enabled true;
  let obs = Obs.create ~tracing:true () in
  Obs.timed obs "probe" (fun _ -> ());
  check "timed observation carries an exemplar" true
    (contains (Registry.expose (Obs.registry obs)) "# {span_seq=")

let test_prom_escaping () =
  let reg = Registry.create () in
  Metric.incr (Registry.counter reg ~labels:[ ("q", "a\"b\\c\nd") ] "esc.full");
  Metric.set (Registry.gauge reg ~labels:[ ("p", "x\\\"y") ] "esc.g") 1.0;
  let text = Registry.expose reg in
  check "quote, backslash and newline escaped" true
    (contains text "esc_full{q=\"a\\\"b\\\\c\\nd\"} 1");
  check "adjacent backslash-quote escaped" true
    (contains text "esc_g{p=\"x\\\\\\\"y\"} 1")

(* MAD_OBS_SAMPLE=0.0 / =1.0 edge cases ([create ~sample] is the same
   code path as the env knob), each with an errored root span *)
let test_sampling_rate_edges () =
  let obs, spans = sampled_ctx 1.0 7 in
  run_roots obs 40;
  check_int "rate 1 keeps everything" 40 (List.length !spans);
  (try Obs.with_span obs "boom" (fun _ -> failwith "expected")
   with Failure _ -> ());
  check_int "errored root emitted exactly once" 41 (List.length !spans);
  let obs0, spans0 = sampled_ctx 0.0 7 in
  run_roots obs0 40;
  (try Obs.with_span obs0 "boom" (fun _ -> failwith "expected")
   with Failure _ -> ());
  check_int "rate 0 keeps only the error" 1 (List.length !spans0);
  check_str "the survivor is the errored root" "boom"
    (List.hd !spans0).Span.name

(* drain and Chrome export racing a ring that wraps under a concurrent
   writer: readers must never see a torn or malformed event, only a
   consistent (possibly shorter) window *)
let test_recorder_drain_races_wrap () =
  let r = Recorder.create 64 in
  let total = 20_000 in
  let writer () =
    for i = 0 to total - 1 do
      ignore
        (Recorder.record r Recorder.Kernel_chunk ~label:"race" ~a:i
           ~dur_ns:(i * 3) ())
    done
  in
  let d = Domain.spawn writer in
  for _ = 1 to 200 do
    let evs = Recorder.drain r in
    check "window within capacity" true
      (List.length evs <= Recorder.capacity r);
    List.iter
      (fun e ->
        check "event intact" true
          (e.Recorder.e_seq >= 0
          && e.Recorder.e_kind = Recorder.Kernel_chunk
          && String.equal e.Recorder.e_label "race"
          && e.Recorder.e_dur_ns = e.Recorder.e_a * 3))
      evs;
    (* seqs strictly increasing inside one drained window *)
    let rec mono = function
      | a :: (b :: _ as rest) ->
        check "drain ordered" true (a.Recorder.e_seq < b.Recorder.e_seq);
        mono rest
      | _ -> ()
    in
    mono evs;
    (* the export path runs the same snapshot logic *)
    ignore (Json.to_string (Recorder.to_chrome r))
  done;
  Domain.join d;
  check_int "no event lost by the writer" total (Recorder.recorded r);
  check "final drain full" true (List.length (Recorder.drain r) > 0)

(* satellite of the digest PR: with the ring disabled, [expose] must
   not render exemplars at all — the stored seqs go stale the moment
   no new ones are issued *)
let test_expose_exemplars_gated_on_ring () =
  Recorder.set_enabled true;
  let obs = Obs.create ~tracing:true () in
  Obs.timed obs "probe" (fun _ -> ());
  let text = Registry.expose (Obs.registry obs) in
  check "ring on: exemplar rendered" true (contains text "# {span_seq=");
  Recorder.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Recorder.set_enabled true)
    (fun () ->
      let text = Registry.expose (Obs.registry obs) in
      check "ring off: no exemplars rendered" true
        (not (contains text "span_seq")))

let suite =
  [
    Alcotest.test_case "registry get-or-create" `Quick test_registry_get_or_create;
    Alcotest.test_case "registry labels" `Quick test_registry_labels_distinguish;
    Alcotest.test_case "registry kind clash" `Quick test_registry_kind_clash;
    Alcotest.test_case "registry reset" `Quick test_registry_reset;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram stats and quantiles" `Quick
      test_histogram_stats;
    Alcotest.test_case "prometheus exposition" `Quick test_expose_golden;
    Alcotest.test_case "sampling is deterministic" `Quick
      test_sampling_deterministic;
    Alcotest.test_case "sampling keeps errors and slow roots" `Quick
      test_sampling_always_keeps_errors_and_slow;
    Alcotest.test_case "sampling leaves metrics exact" `Quick
      test_sampling_metrics_stay_exact;
    Alcotest.test_case "timed without tracing" `Quick
      test_timed_without_tracing;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span noop" `Quick test_span_noop;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "json sink round-trip" `Quick test_json_sink_roundtrip;
    Alcotest.test_case "profile estimate vs actual" `Quick
      test_profile_actuals_match_ground_truth;
    Alcotest.test_case "explain analyze via session" `Quick
      test_explain_analyze_via_session;
    Alcotest.test_case "adaptive session loop" `Quick test_adaptive_session;
    Alcotest.test_case "recorder ring wrap" `Quick test_recorder_ring_wrap;
    Alcotest.test_case "recorder concurrent domains" `Quick
      test_recorder_concurrent_domains;
    Alcotest.test_case "recorder drain races wrap" `Quick
      test_recorder_drain_races_wrap;
    Alcotest.test_case "expose exemplars gated on ring" `Quick
      test_expose_exemplars_gated_on_ring;
    Alcotest.test_case "recorder chrome export" `Quick
      test_recorder_chrome_export;
    Alcotest.test_case "recorder span journal" `Quick
      test_recorder_span_journal;
    Alcotest.test_case "recorder engine events" `Quick
      test_recorder_engine_events;
    Alcotest.test_case "gauge domain safety" `Quick test_gauge_domain_safe;
    Alcotest.test_case "histogram exemplars" `Quick test_exemplars;
    Alcotest.test_case "prometheus escaping" `Quick test_prom_escaping;
    Alcotest.test_case "sampling rate edges" `Quick test_sampling_rate_edges;
  ]
