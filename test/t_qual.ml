(* Qualification formulas: evaluation semantics (atom and molecule
   contexts), typechecking, arithmetic and quantifiers. *)

open Mad_store
open Workloads
module Q = Mad.Qual
module MA = Mad.Molecule_algebra
module MT = Mad.Molecule_type

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setting () =
  let b = Geo_brazil.build () in
  let db = Geo_brazil.db b in
  let mt = MA.define db ~name:"mt_state" (Geo_brazil.mt_state_desc b) in
  (b, db, mt)

let count db mt pred =
  List.length
    (List.filter (fun m -> MA.molecule_satisfies db mt m pred) (MT.occ mt))

let test_atom_context () =
  let _, db, _ = setting () in
  let at = Database.atom_type db "state" in
  let sp =
    List.find
      (fun (a : Atom.t) ->
        Value.equal (Atom.value a at "name") (Value.String "SP"))
      (Database.atoms db "state")
  in
  check "eq" true (Q.eval_atom at sp Q.(attr "state" "name" =% str "SP"));
  check "gt" true (Q.eval_atom at sp Q.(attr "state" "hectare" >% int 1999));
  check "and/or/not" true
    (Q.eval_atom at sp
       Q.(
         (attr "state" "name" =% str "SP" &&% (attr "state" "hectare" >% int 0))
         ||% Not True));
  (* wrong node rejected *)
  match Q.eval_atom at sp Q.(attr "area" "name" =% str "x") with
  | _ -> Alcotest.fail "expected error"
  | exception Err.Mad_error _ -> ()

let test_molecule_implicit_exists () =
  let _, db, mt = setting () in
  (* point.name = 'pn' holds for the four states around pn *)
  check_int "implicit exists" 4 (count db mt Q.(attr "point" "name" =% str "pn"))

let test_molecule_forall () =
  let _, db, mt = setting () in
  (* every edge has length 1 in every molecule *)
  check_int "forall edges" 10
    (count db mt Q.(Forall ("edge", attr "edge" "length" =% int 1)));
  (* no molecule has all points named pn *)
  check_int "forall points pn" 0
    (count db mt Q.(Forall ("point", attr "point" "name" =% str "pn")))

let test_molecule_exists_explicit () =
  let _, db, mt = setting () in
  check_int "exists = implicit" 4
    (count db mt Q.(Exists ("point", attr "point" "name" =% str "pn")))

let test_count () =
  let _, db, mt = setting () in
  check_int "all states have 4 points" 10 (count db mt Q.(Count "point" =% int 4));
  check_int "none has 5" 0 (count db mt Q.(Count "point" =% int 5))

let test_arithmetic () =
  let _, db, mt = setting () in
  (* hectare of the root state doubled *)
  check_int "SP only: hectare*2 > 3000" 1
    (count db mt Q.(Mul (attr "state" "hectare", int 2) >% int 3000));
  check_int "int/float comparison" 1
    (count db mt Q.(attr "state" "hectare" =% flt 2000.0));
  (* division by zero is a user error *)
  match count db mt Q.(Div (attr "state" "hectare", int 0) >% int 1) with
  | _ -> Alcotest.fail "expected division error"
  | exception Err.Mad_error _ -> ()

let test_cross_node_comparison () =
  let _, db, mt = setting () in
  (* a state whose hectare equals 500 * one of its edge lengths * 4:
     hectare = 2000 -> SP via edge length 1 *)
  check_int "cross-node compare" 1
    (count db mt
       Q.(attr "state" "hectare" =% Mul (int 2000, attr "edge" "length")))

let test_typecheck () =
  let _, db, mt = setting () in
  let bad pred =
    match MA.restrict db pred mt with
    | _ -> Alcotest.fail "expected typecheck failure"
    | exception Err.Mad_error _ -> ()
  in
  bad Q.(attr "state" "nonexistent" =% int 1);
  bad Q.(attr "river" "name" =% str "x") (* river not in mt_state *);
  bad Q.(Exists ("river", True))

let suite =
  [
    Alcotest.test_case "atom context" `Quick test_atom_context;
    Alcotest.test_case "implicit exists" `Quick test_molecule_implicit_exists;
    Alcotest.test_case "forall" `Quick test_molecule_forall;
    Alcotest.test_case "explicit exists" `Quick test_molecule_exists_explicit;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "cross-node comparison" `Quick
      test_cross_node_comparison;
    Alcotest.test_case "typecheck" `Quick test_typecheck;
  ]
