(* Odds and ends: value/domain edges, forced propagation strategies,
   executor materialization, session rendering. *)

open Mad_store
open Workloads
module MA = Mad.Molecule_algebra
module MT = Mad.Molecule_type

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_value_edges () =
  check "id values" true (Domain.mem (Value.Id 7) (Domain.Id_of "state"));
  check "id not int" false (Domain.mem (Value.Id 7) Domain.Int);
  check "nested lists" true
    (Domain.mem
       (Value.List [ Value.List [ Value.Int 1 ] ])
       (Domain.List_of (Domain.List_of Domain.Int)));
  check "default enum" true
    (Value.equal (Domain.default (Domain.Enum [ "a"; "b" ])) (Value.String "a"));
  check "default list" true
    (Value.equal (Domain.default (Domain.List_of Domain.Int)) (Value.List []));
  (* semantic vs structural comparison *)
  check "sem eq across kinds" true
    (Value.equal_sem (Value.Float 3.0) (Value.Int 3));
  check "sem order mixes numerics" true
    (Value.compare_sem (Value.Int 2) (Value.Float 2.5) < 0)

let test_forced_prop_strategies () =
  let b = Geo_brazil.build () in
  let db = Geo_brazil.db b in
  let desc = Geo_brazil.mt_state_desc b in
  let occ = Mad.Derive.m_dom db desc in
  let shared =
    Mad.Propagate.prop ~strategy:`Shared db ~name:"fs" ~desc
      ~attr_proj:MT.Smap.empty occ
  in
  let copied =
    Mad.Propagate.prop ~strategy:`Copied db ~name:"fc" ~desc
      ~attr_proj:MT.Smap.empty occ
  in
  check "shared exact" true
    (Mad.Propagate.exact db shared.MT.mdesc shared.MT.mocc);
  check "copied exact" true
    (Mad.Propagate.exact db copied.MT.mdesc copied.MT.mocc);
  (* copied materializes strictly more atoms than shared (shared borders) *)
  let atoms_of (m : MT.materialization) =
    MT.Smap.fold
      (fun _ tname acc -> acc + Database.count_atoms db tname)
      m.MT.node_map 0
  in
  check "copied > shared" true (atoms_of copied > atoms_of shared);
  check "db still valid" true (Integrity.is_valid db)

let test_executor_materialize_option () =
  let b = Geo_brazil.build () in
  let db = Geo_brazil.db b in
  let q =
    {
      Prima.Planner.name = "q";
      desc = Geo_brazil.mt_state_desc b;
      where = Some Mad.Qual.(attr "state" "hectare" >% int 900);
      select = Some [ ("state", None); ("area", None) ];
    }
  in
  let pipelined = Prima.Executor.run ~materialize:false db q in
  let materialized = Prima.Executor.run ~materialize:true db q in
  check_int "same cardinality"
    (MT.cardinality pipelined.Prima.Executor.mt)
    (MT.cardinality materialized.Prima.Executor.mt);
  (* materialized result carries a propagation, pipelined does not *)
  check "materialized has prop" true
    (materialized.Prima.Executor.mt.MT.materialized <> None);
  check "pipelined has none" true
    (pipelined.Prima.Executor.mt.MT.materialized = None)

let test_session_rendering () =
  let b = Geo_brazil.build () in
  let s = Mad_mql.Session.create (Geo_brazil.db b) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "insert rendering" true
    (contains
       (Mad_mql.Session.run_to_string s "INSERT INTO city VALUES ('T', 1);")
       "inserted city");
  check "dml rendering" true
    (contains
       (Mad_mql.Session.run_to_string s
          "MODIFY state.hectare = 7 FROM state-area WHERE state.name='SP';")
       "modified state.hectare");
  check "define rendering" true
    (contains
       (Mad_mql.Session.run_to_string s "DEFINE MOLECULE m1 AS state-area;")
       "defined molecule type m1")

let test_atom_pp_named () =
  let b = Geo_brazil.build () in
  let db = Geo_brazil.db b in
  let at = Database.atom_type db "state" in
  let a = List.hd (Database.atoms db "state") in
  let s = Format.asprintf "%a" (Atom.pp_named at) a in
  check "named attrs" true
    (String.length s > 0
     &&
     let rec go i =
       i + 5 <= String.length s && (String.sub s i 5 = "name=" || go (i + 1))
     in
     go 0)

let test_link_type_helpers () =
  let lt = Schema.Link_type.v "ab" ("a", "b") in
  check "other end a->b" true (String.equal (Schema.Link_type.other_end lt "a") "b");
  check "other end b->a" true (String.equal (Schema.Link_type.other_end lt "b") "a");
  check "role left" true (Schema.Link_type.role_of lt "a" = `Left);
  let refl = Schema.Link_type.v "cc" ("c", "c") in
  check "reflexive" true (Schema.Link_type.reflexive refl);
  check "role both" true (Schema.Link_type.role_of refl "c" = `Both);
  (match Schema.Link_type.other_end lt "z" with
   | _ -> Alcotest.fail "expected failure"
   | exception Err.Mad_error _ -> ())

let test_qual_pp_roundtrip_operators () =
  (* the DSL builders produce what the printer says they do *)
  let open Mad.Qual in
  Alcotest.(check string)
    "pp" "(state.hectare > 900 AND COUNT(edge) = 4)"
    (to_string (And (attr "state" "hectare" >% int 900, Count "edge" =% int 4)));
  check "agg pp" true
    (to_string (Agg (Sum, "edge", "length") >=% int 4) |> fun s ->
     String.length s > 0 && String.sub s 0 3 = "SUM")

let suite =
  [
    Alcotest.test_case "value/domain edges" `Quick test_value_edges;
    Alcotest.test_case "forced prop strategies" `Quick
      test_forced_prop_strategies;
    Alcotest.test_case "executor materialize option" `Quick
      test_executor_materialize_option;
    Alcotest.test_case "session rendering" `Quick test_session_rendering;
    Alcotest.test_case "atom pp_named" `Quick test_atom_pp_named;
    Alcotest.test_case "link-type helpers" `Quick test_link_type_helpers;
    Alcotest.test_case "qual printing" `Quick test_qual_pp_roundtrip_operators;
  ]
