(* The PRIMA engine: plan correctness (optimized = naive results) and
   the effectiveness of pushdown/pruning on the access counters. *)

open Mad_store
open Workloads
module P = Prima.Planner
module X = Prima.Executor
module AI = Prima.Atom_interface

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let brazil () =
  let b = Geo_brazil.build () in
  (b, Geo_brazil.db b)

let q2 b =
  {
    P.name = "q2";
    desc = Geo_brazil.point_neighborhood_desc b;
    where = Some Mad.Qual.(attr "point" "name" =% str "pn");
    select = None;
  }

let same_molecules a b =
  Mad.Molecule.Set.equal
    (Mad.Molecule_type.molecule_set a)
    (Mad.Molecule_type.molecule_set b)

let test_optimized_equals_naive () =
  let b, db = brazil () in
  let naive, optimized = X.compare_plans db (q2 b) in
  check "same result" true (same_molecules naive.X.mt optimized.X.mt);
  check_int "one molecule" 1 (Mad.Molecule_type.cardinality optimized.X.mt)

let test_pushdown_reduces_work () =
  let b, db = brazil () in
  let naive, optimized = X.compare_plans db (q2 b) in
  let f (c : AI.counters) = c.AI.fetches + c.AI.links_followed in
  check "optimized does less work" true
    (f optimized.X.counters < f naive.X.counters);
  (* the naive plan derives all 18 point molecules; optimized derives 1 *)
  check "at least 5x less" true
    (f naive.X.counters >= 5 * f optimized.X.counters)

let test_pushdown_plan_shape () =
  let b, _ = brazil () in
  let plan = P.plan ~optimize:true (q2 b) in
  check "root predicate pushed" true (plan.P.root_pred <> None);
  check "no residual" true (plan.P.residual = None)

let test_non_root_predicate_not_pushed () =
  let b, _ = brazil () in
  let q =
    {
      P.name = "q";
      desc = Geo_brazil.mt_state_desc b;
      where = Some Mad.Qual.(attr "point" "name" =% str "pn");
      select = None;
    }
  in
  let plan = P.plan ~optimize:true q in
  check "not pushed" true (plan.P.root_pred = None);
  check "residual kept" true (plan.P.residual <> None)

let test_mixed_predicate_split () =
  let b, db = brazil () in
  let q =
    {
      P.name = "q";
      desc = Geo_brazil.mt_state_desc b;
      where =
        Some
          Mad.Qual.(
            attr "state" "hectare" >% int 500
            &&% (attr "point" "name" =% str "pn"));
      select = None;
    }
  in
  let plan = P.plan ~optimize:true q in
  check "root part pushed" true (plan.P.root_pred <> None);
  check "non-root residual" true (plan.P.residual <> None);
  let naive, optimized = X.compare_plans db q in
  check "same result" true (same_molecules naive.X.mt optimized.X.mt);
  (* hectare > 500 and touching pn: GO(800) MS(700) SP(2000) MG(900) *)
  check_int "four states" 4 (Mad.Molecule_type.cardinality optimized.X.mt)

let test_pruning () =
  let b, db = brazil () in
  let q =
    {
      P.name = "q";
      desc = Geo_brazil.mt_state_desc b;
      where = Some Mad.Qual.(attr "state" "hectare" >% int 900);
      select = Some [ ("state", None); ("area", None) ];
    }
  in
  let plan = P.plan ~optimize:true q in
  check_int "pruned to 2 nodes" 2
    (List.length (Mad.Mdesc.nodes plan.P.derive_desc));
  let naive, optimized = X.compare_plans db q in
  check_int "same cardinality"
    (Mad.Molecule_type.cardinality naive.X.mt)
    (Mad.Molecule_type.cardinality optimized.X.mt);
  (* pruned derivation never touches edges/points *)
  let f (c : AI.counters) = c.AI.links_followed in
  check "pruning cuts traversals" true
    (f optimized.X.counters < f naive.X.counters);
  (* the projected components agree molecule by molecule *)
  List.iter2
    (fun (m1 : Mad.Molecule.t) (m2 : Mad.Molecule.t) ->
      check "same state" true (Aid.equal m1.Mad.Molecule.root m2.Mad.Molecule.root);
      check "same area" true
        (Aid.Set.equal
           (Mad.Molecule.component m1 "area")
           (Mad.Molecule.component m2 "area")))
    (List.sort Mad.Molecule.compare (Mad.Molecule_type.occ naive.X.mt))
    (List.sort Mad.Molecule.compare (Mad.Molecule_type.occ optimized.X.mt))

let test_statistics () =
  let _, db = brazil () in
  let t = Prima.Stats.collect db in
  Alcotest.(check int)
    "state count" 10
    (Prima.Stats.Smap.find "state" t.Prima.Stats.atom_counts);
  (* every state name distinct *)
  Alcotest.(check int)
    "state.name ndv" 10
    (Prima.Stats.Smap.find "state.name" t.Prima.Stats.distinct);
  (* area-edge: 40 links over 10 areas -> fanout 4 forward *)
  let ls = Prima.Stats.Smap.find "area-edge" t.Prima.Stats.link_stats in
  check "area fanout 4" true (abs_float (ls.Prima.Stats.fanout_fwd -. 4.0) < 0.01)

let test_selectivity_rules () =
  let _, db = brazil () in
  let t = Prima.Stats.collect db in
  let s_eq = Prima.Stats.selectivity t Mad.Qual.(attr "state" "name" =% str "SP") in
  check "eq = 1/ndv" true (abs_float (s_eq -. 0.1) < 0.001);
  let s_and =
    Prima.Stats.selectivity t
      Mad.Qual.(
        attr "state" "name" =% str "SP" &&% (attr "state" "hectare" >% int 0))
  in
  check "and multiplies" true (s_and < s_eq);
  check "true is 1" true (Prima.Stats.selectivity t Mad.Qual.True = 1.0);
  check "false is 0" true (Prima.Stats.selectivity t Mad.Qual.False = 0.0);
  let s_not = Prima.Stats.selectivity t Mad.Qual.(Not (attr "state" "name" =% str "SP")) in
  check "not complements" true (abs_float (s_not -. 0.9) < 0.001)

let test_estimates_track_counters () =
  (* the optimizer's estimates must rank naive above optimized, and be
     within an order of magnitude of the real counters *)
  let b, db = brazil () in
  let t = Prima.Stats.collect db in
  let q = q2 b in
  let naive_est = Prima.Stats.estimate t (P.plan ~optimize:false q) in
  let opt_est = Prima.Stats.estimate t (P.plan ~optimize:true q) in
  check "naive estimated costlier" true
    (naive_est.Prima.Stats.est_links > opt_est.Prima.Stats.est_links);
  let naive, optimized = X.compare_plans db q in
  let within_10x est actual =
    actual = 0 || (est > float_of_int actual /. 10.0 && est < float_of_int actual *. 10.0)
  in
  check "naive links within 10x" true
    (within_10x naive_est.Prima.Stats.est_links
       naive.X.counters.AI.links_followed);
  check "optimized links within 10x" true
    (within_10x opt_est.Prima.Stats.est_links
       optimized.X.counters.AI.links_followed)

(* ------------------------------------------------------------------ *)
(* Adaptive statistics: refining with recorded actuals closes the gap   *)

(* one EXPLAIN ANALYZE / refine round trip on [q]: the estimate error
   of the refined catalog must be strictly below the static catalog's *)
let refine_shrinks_error db q =
  let stats0 = Prima.Stats.collect db in
  let r0 = Prima.Profile.analyze ~stats:stats0 db q in
  let e0 = Prima.Profile.error r0 in
  check "static catalog has error to close" true (e0 > 0.0);
  let stats1 = Prima.Profile.refine stats0 r0 in
  let r1 = Prima.Profile.analyze ~stats:stats1 db q in
  let e1 = Prima.Profile.error r1 in
  check
    (Printf.sprintf "refined error %.2f < static %.2f" e1 e0)
    true (e1 < e0)

let test_refine_brazil () =
  let b, db = brazil () in
  refine_shrinks_error db
    {
      P.name = "brazil";
      desc = Geo_brazil.mt_state_desc b;
      where = None;
      select = None;
    }

let test_refine_geo_grid () =
  let g = Geo_gen.build Geo_gen.default in
  let db = g.Geo_grid.db in
  refine_shrinks_error db
    {
      P.name = "geo";
      desc = Geo_schema.mt_state_desc db;
      where = None;
      select = None;
    }

(* refinement converges: repeating the same query stops drifting — the
   second refined round is no worse than the first, and drift entries
   over the default factor disappear once the catalog has learned *)
let test_refine_converges () =
  let b, db = brazil () in
  let q =
    {
      P.name = "q";
      desc = Geo_brazil.mt_state_desc b;
      where = None;
      select = None;
    }
  in
  let stats0 = Prima.Stats.collect db in
  let r0 = Prima.Profile.analyze ~stats:stats0 db q in
  let stats1 = Prima.Profile.refine stats0 r0 in
  let r1 = Prima.Profile.analyze ~stats:stats1 db q in
  let stats2 = Prima.Profile.refine stats1 r1 in
  let r2 = Prima.Profile.analyze ~stats:stats2 db q in
  check "second round no worse" true
    (Prima.Profile.error r2 <= Prima.Profile.error r1);
  check "learned catalog under drift factor" true
    (List.length (Prima.Profile.drift r2)
    <= List.length (Prima.Profile.drift r0))

let test_explain_mentions_rewrites () =
  let b, _ = brazil () in
  let text = X.explain (q2 b) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "mentions pushdown" true (contains text "pushdown")

let suite =
  [
    Alcotest.test_case "optimized = naive (Q2)" `Quick
      test_optimized_equals_naive;
    Alcotest.test_case "pushdown reduces work" `Quick
      test_pushdown_reduces_work;
    Alcotest.test_case "pushdown plan shape" `Quick test_pushdown_plan_shape;
    Alcotest.test_case "non-root predicate stays residual" `Quick
      test_non_root_predicate_not_pushed;
    Alcotest.test_case "mixed predicate splits" `Quick
      test_mixed_predicate_split;
    Alcotest.test_case "projection pruning" `Quick test_pruning;
    Alcotest.test_case "explain mentions rewrites" `Quick
      test_explain_mentions_rewrites;
    Alcotest.test_case "statistics collection" `Quick test_statistics;
    Alcotest.test_case "selectivity rules" `Quick test_selectivity_rules;
    Alcotest.test_case "estimates track counters" `Quick
      test_estimates_track_counters;
    Alcotest.test_case "refine shrinks error (brazil)" `Quick
      test_refine_brazil;
    Alcotest.test_case "refine shrinks error (geo grid)" `Quick
      test_refine_geo_grid;
    Alcotest.test_case "refine converges" `Quick test_refine_converges;
  ]
