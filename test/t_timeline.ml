(* The telemetry timeline: frame ring semantics, counter-reset-safe
   deltas, probe hysteresis, runtime gauges, timeline.mad round-trips,
   and the latency probe end-to-end through a fault-injected MOL
   session. *)

open Workloads
module Obs = Mad_obs.Obs
module Registry = Mad_obs.Registry
module Metric = Mad_obs.Metric
module Span = Mad_obs.Span
module Probe = Mad_obs.Probe
module Timeline = Mad_obs.Timeline
module Recorder = Mad_obs.Recorder
module Json = Mad_obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* run [f] with [Span.clock] pinned to a settable instant *)
let with_set_clock f =
  let saved = !Span.clock in
  let now = ref 0.0 in
  Span.clock := (fun () -> !now);
  Fun.protect ~finally:(fun () -> Span.clock := saved) (fun () -> f now)

(* ------------------------------------------------------------------ *)
(* Frame ring                                                           *)

let test_ring_wrap () =
  let tl = Timeline.create ~capacity:4 () in
  let reg = Registry.create () in
  let c = Registry.counter reg "n" in
  for _ = 1 to 10 do
    Metric.incr c;
    ignore (Timeline.tick tl reg)
  done;
  check_int "sampled counts every tick" 10 (Timeline.sampled tl);
  let frames = Timeline.frames tl in
  check_int "ring retains capacity frames" 4 (List.length frames);
  check_int "oldest retained seq" 6 (List.hd frames).Timeline.f_seq;
  (match Timeline.last tl with
   | Some f -> check_int "last seq" 9 f.Timeline.f_seq
   | None -> Alcotest.fail "no last frame");
  (* frame seqs are strictly increasing oldest-first *)
  let seqs = List.map (fun f -> f.Timeline.f_seq) frames in
  check "ordered" true (List.sort compare seqs = seqs)

let find_delta key deltas =
  match List.assoc_opt key deltas with
  | Some v -> v
  | None -> Alcotest.failf "no delta for %s" key

let test_delta_counter_reset () =
  let tl = Timeline.create () in
  let reg = Registry.create () in
  let c = Registry.counter reg "requests" in
  let h = Registry.histogram reg "lat" in
  Metric.add c 7;
  Metric.observe h 10.0;
  let f1 = Timeline.tick tl reg in
  Metric.add c 5;
  Metric.observe h 20.0;
  let f2 = Timeline.tick tl reg in
  check_int "plain increase" 5
    (int_of_float (find_delta "requests" (Timeline.delta ~prev:f1 f2)));
  check_int "hist count increase" 1
    (int_of_float (find_delta "lat" (Timeline.delta ~prev:f1 f2)));
  (* a reset (value goes backwards) contributes the current value,
     never a negative — the Prometheus rate() clamp *)
  Registry.reset reg;
  Metric.add c 2;
  let f3 = Timeline.tick tl reg in
  check_int "reset clamps to current" 2
    (int_of_float (find_delta "requests" (Timeline.delta ~prev:f2 f3)));
  (* gauges never contribute deltas *)
  let g = Registry.gauge reg "level" in
  Metric.set g 3.0;
  let f4 = Timeline.tick tl reg in
  check "gauge absent from delta" true
    (List.assoc_opt "level" (Timeline.delta ~prev:f3 f4) = None)

(* ------------------------------------------------------------------ *)
(* Probe hysteresis                                                     *)

let test_probe_single_spike_no_flap () =
  let p = Probe.create ~factor:3.0 ~trip:3 ~clear:3 ~probe:"latency" () in
  (* seed the baseline *)
  check "seed is normal" false (Probe.observe p 100.0);
  check "no fire on 2nd normal" false (Probe.observe p 110.0);
  (* one spike: anomalous but below the trip streak *)
  check "single spike does not fire" false (Probe.observe p 5000.0);
  check "not firing" false (Probe.firing p);
  (* a normal frame resets the hot streak *)
  check "back to normal" false (Probe.observe p 105.0);
  check "spike after reset still no fire" false (Probe.observe p 5000.0);
  check "still not firing" false (Probe.firing p)

let test_probe_trip_and_clear () =
  let p = Probe.create ~factor:3.0 ~trip:3 ~clear:3 ~probe:"latency" () in
  ignore (Probe.observe p 100.0);
  ignore (Probe.observe p 100.0);
  check "1st anomalous" false (Probe.observe p 4000.0);
  check "2nd anomalous" false (Probe.observe p 4100.0);
  (* the trip streak completes: observe returns true exactly once *)
  check "3rd anomalous fires" true (Probe.observe p 3900.0);
  check "firing" true (Probe.firing p);
  check "no re-fire while firing" false (Probe.observe p 4200.0);
  check_int "fired once" 1 p.Probe.p_fired;
  (* the anomalous stretch did not teach the baseline *)
  check "baseline unpolluted" true (p.Probe.p_baseline < 150.0);
  (* clearing needs [clear] consecutive normals *)
  ignore (Probe.observe p 100.0);
  ignore (Probe.observe p 100.0);
  check "still firing mid-cool" true (Probe.firing p);
  ignore (Probe.observe p 100.0);
  check "cleared after clear streak" false (Probe.firing p)

let test_probe_skip_zero () =
  let p =
    Probe.create ~factor:2.0 ~min_fire:16.0 ~trip:3 ~skip_zero:true
      ~probe:"invalidation" ()
  in
  (* idle frames must not seed (or drag) the baseline *)
  ignore (Probe.observe p 0.0);
  check "zero does not seed" true (Float.is_nan p.Probe.p_baseline);
  ignore (Probe.observe p 30.0);
  ignore (Probe.observe p 30.0);
  ignore (Probe.observe p 30.0);
  ignore (Probe.observe p 30.0);
  check "steady activity is normal" false (Probe.firing p);
  (* a genuine storm over the learned activity level still fires *)
  ignore (Probe.observe p 200.0);
  ignore (Probe.observe p 200.0);
  check "storm fires" true (Probe.observe p 200.0)

(* ------------------------------------------------------------------ *)
(* Tick-driven probes                                                   *)

let test_plan_switch_probe_via_tick () =
  let tl = Timeline.create () in
  let reg = Registry.create () in
  let c = Registry.counter reg "plan.switch" in
  ignore (Timeline.tick tl reg);
  (* normal replan activity: 1 switch per frame seeds the baseline *)
  Metric.incr c;
  ignore (Timeline.tick tl reg);
  Metric.incr c;
  ignore (Timeline.tick tl reg);
  check "no firing on steady replans" true
    (Timeline.health tl = Timeline.Ok);
  (* a storm: 4 switches per frame for two frames trips it *)
  Metric.add c 4;
  ignore (Timeline.tick tl reg);
  Metric.add c 4;
  ignore (Timeline.tick tl reg);
  check "plan-switch storm degrades health" true
    (Timeline.health tl = Timeline.Degraded);
  check "exit code contract" true
    (Timeline.health_exit (Timeline.health tl) = 1);
  let firing =
    List.filter Probe.firing (Timeline.probes tl) |> List.map Probe.id
  in
  check "the plan-switch probe is the one firing" true
    (firing = [ "plan-switch" ]);
  (* the tick published the verdict gauge *)
  (match Registry.find reg "health.state" with
   | Some (Metric.Gauge g) ->
     check "health.state gauge" true (Metric.get g = 1.0)
   | _ -> Alcotest.fail "health.state gauge missing")

let test_maybe_tick_interval_gating () =
  with_set_clock @@ fun now ->
  let tl = Timeline.create ~interval:1.0 () in
  let reg = Registry.create () in
  check "first call samples" true (Timeline.maybe_tick tl reg);
  now := 0.5;
  check "inside the interval: no frame" false (Timeline.maybe_tick tl reg);
  now := 1.5;
  check "past the interval: samples" true (Timeline.maybe_tick tl reg);
  check_int "two frames" 2 (Timeline.sampled tl)

let test_update_runtime_gauges () =
  let reg = Registry.create () in
  Timeline.update_runtime ~epoch:42 reg;
  let text = Registry.expose reg in
  List.iter
    (fun name -> check (name ^ " exposed") true (contains text name))
    [
      "runtime_heap_words"; "runtime_minor_words";
      "runtime_gc_minor_collections"; "runtime_gc_major_collections";
      "runtime_db_epoch 42";
    ];
  (* a fresh Obs context registers them without any timeline *)
  let obs = Obs.create () in
  check "Obs.create registers runtime gauges" true
    (contains (Registry.expose (Obs.registry obs)) "runtime_heap_words")

(* ------------------------------------------------------------------ *)
(* Persistence                                                          *)

let test_timeline_mad_roundtrip () =
  let tl = Timeline.create () in
  let reg = Registry.create () in
  let c = Registry.counter reg ~labels:[ ("op", "q1") ] "calls" in
  let g = Registry.gauge reg "level" in
  let h = Registry.histogram reg "lat" in
  Metric.add c 3;
  Metric.set g 2.5;
  Metric.observe h 10.0;
  Metric.observe h 30.0;
  ignore (Timeline.tick tl reg);
  Metric.add c 2;
  ignore (Timeline.tick tl reg);
  (* give it a probe with a learned baseline *)
  let p = Probe.create ~probe:"latency" ~label:"abc" () in
  ignore p;
  let path = Filename.temp_file "t_timeline" ".mad" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Timeline.save tl path;
      let tl2 = Timeline.create () in
      check "load finds the file" true (Timeline.load tl2 path);
      check_int "frames restored" 2 (List.length (Timeline.frames tl2));
      let f1, f2 =
        match Timeline.frames tl2 with
        | [ a; b ] -> (a, b)
        | _ -> Alcotest.fail "expected 2 frames"
      in
      check_int "seqs preserved" 0 f1.Timeline.f_seq;
      check_int "seqs preserved" 1 f2.Timeline.f_seq;
      (* point payloads survive: the labeled counter and the histogram
         count/sum *)
      check_int "counter value" 5
        (int_of_float (find_delta "calls{op=q1}" (Timeline.delta ~prev:f1 f2))
        + 3);
      let hist_pt =
        List.find
          (fun pt -> pt.Timeline.p_name = "lat")
          (Array.to_list f2.Timeline.f_points)
      in
      check "hist kind" true (hist_pt.Timeline.p_kind = Timeline.Hist);
      check "hist sum" true (hist_pt.Timeline.p_sum = 40.0);
      (* new ticks continue the sequence after the merged history *)
      ignore (Timeline.tick tl2 reg);
      match Timeline.last tl2 with
      | Some f -> check_int "seq continues" 2 f.Timeline.f_seq
      | None -> Alcotest.fail "no frame after merge")

let test_timeline_mad_probe_state_and_garbage () =
  let text =
    String.concat "\n"
      [
        "# MAD timeline v1";
        "frame 4 12.5 12500 1";
        "pt c 9 0 requests svc=api";
        "probe latency abc 250.5 2 1";
        "this line is garbage and must be skipped";
        "pt g 1 0 orphaned.point.without.frame";
        "";
      ]
  in
  let tl = Timeline.create () in
  (match Timeline.merge_string tl text with
   | Ok () -> ()
   | Error e -> Alcotest.failf "merge failed: %s" e);
  check_int "one frame" 1 (List.length (Timeline.frames tl));
  let f = List.hd (Timeline.frames tl) in
  check_int "frame seq" 4 f.Timeline.f_seq;
  check_int "one point" 1 (Array.length f.Timeline.f_points);
  check "labels parsed" true
    (Timeline.flat_key f.Timeline.f_points.(0) = "requests{svc=api}");
  (* the probe line restored baseline / fired / firing *)
  (match Timeline.probes tl with
   | [ p ] ->
     check "probe id" true (Probe.id p = "latency:abc");
     check "baseline restored" true (p.Probe.p_baseline = 250.5);
     check_int "fired restored" 2 p.Probe.p_fired;
     check "firing restored" true (Probe.firing p)
   | ps -> Alcotest.failf "expected 1 probe, got %d" (List.length ps));
  (* a restored firing probe counts toward health until live evidence
     clears it *)
  check "restored probe degrades health" true
    (Timeline.health tl = Timeline.Degraded);
  (* bad header is an error, not a crash *)
  check "bad header rejected" true
    (match Timeline.merge_string (Timeline.create ()) "# nonsense" with
     | Error _ -> true
     | Ok () -> false)

(* names and label values carrying the format's structural characters
   (space, comma, equals, percent) must round-trip through the
   percent-encoding, and a literal "-" probe label must stay distinct
   from the empty-label marker *)
let test_timeline_mad_escaping () =
  let tl = Timeline.create () in
  let reg = Registry.create () in
  let c =
    Registry.counter reg ~labels:[ ("q", "a=1, b=2 % done") ] "odd name"
  in
  Metric.add c 7;
  ignore (Timeline.tick tl reg);
  let tl2 = Timeline.create () in
  (match Timeline.merge_string tl2 (Timeline.to_string tl) with
   | Ok () -> ()
   | Error e -> Alcotest.failf "merge failed: %s" e);
  let f = List.hd (Timeline.frames tl2) in
  let pt =
    match
      List.find_opt
        (fun pt -> pt.Timeline.p_name = "odd name")
        (Array.to_list f.Timeline.f_points)
    with
    | Some pt -> pt
    | None -> Alcotest.fail "escaped point not restored"
  in
  check "label value round-trips" true
    (pt.Timeline.p_labels = [ ("q", "a=1, b=2 % done") ]);
  check "value preserved" true (pt.Timeline.p_value = 7.0);
  let tl3 = Timeline.create () in
  (match
     Timeline.merge_string tl3 "# MAD timeline v1\nprobe latency %2D 5.0 1 0\n"
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "merge failed: %s" e);
  (match Timeline.probes tl3 with
   | [ p ] -> check "dash label decoded" true (p.Probe.p_label = "-")
   | ps -> Alcotest.failf "expected 1 probe, got %d" (List.length ps));
  let tl4 = Timeline.create () in
  (match Timeline.merge_string tl4 (Timeline.to_string tl3) with
   | Ok () -> ()
   | Error e -> Alcotest.failf "merge failed: %s" e);
  match Timeline.probes tl4 with
  | [ p ] -> check "dash label re-round-trips" true (p.Probe.p_label = "-")
  | ps -> Alcotest.failf "expected 1 probe, got %d" (List.length ps)

let test_exports_parse () =
  let tl = Timeline.create () in
  let reg = Registry.create () in
  let c = Registry.counter reg "n" in
  Metric.incr c;
  ignore (Timeline.tick tl reg);
  Metric.incr c;
  ignore (Timeline.tick tl reg);
  (match Json.of_string (Json.to_string (Timeline.to_json tl)) with
   | Ok json ->
     check "frames in json" true (Json.member "frames" json <> None)
   | Error e -> Alcotest.failf "to_json does not parse: %s" e);
  (match Json.of_string (Json.to_string (Timeline.health_json tl)) with
   | Ok json -> begin
     match Json.member "state" json with
     | Some (Json.Str s) -> check "state ok" true (s = "ok")
     | _ -> Alcotest.fail "health_json lacks state"
   end
   | Error e -> Alcotest.failf "health_json does not parse: %s" e);
  let csv = Timeline.to_csv tl in
  check "csv header" true
    (contains csv "frame,unix,ticks,kind,name,labels,value,sum");
  check "csv row" true (contains csv "c,n,");
  (* the dashboard renders without a crash and mentions health *)
  let dash = Format.asprintf "%a" Timeline.pp_dashboard tl in
  check "dashboard mentions health" true (contains dash "health: ok")

(* ------------------------------------------------------------------ *)
(* End-to-end: the latency probe through a fault-injected session       *)

let test_latency_probe_end_to_end () =
  Recorder.set_enabled true;
  let seen0 = Recorder.recorded (Recorder.global ()) in
  let obs = Obs.create ~tracing:false () in
  let session = Mad_mql.Session.create ~obs (Geo_brazil.db (Geo_brazil.build ())) in
  ignore (Mad_mql.Session.enable_digest session);
  let tl = Timeline.create () in
  let reg = Obs.registry obs in
  let stmt = "SELECT ALL FROM state WHERE state.hectare > 0;" in
  let epoch () = Mad_store.Database.epoch session.Mad_mql.Session.db in
  let run_one () =
    ignore (Mad_mql.Session.run session stmt);
    ignore (Timeline.tick ~epoch:(epoch ()) tl reg)
  in
  Fun.protect
    ~finally:(fun () -> Mad_mql.Session.fault_spin_ms := None)
    (fun () ->
      (* normal phase: learn the baseline *)
      for _ = 1 to 6 do run_one () done;
      check "healthy after warmup" true (Timeline.health tl = Timeline.Ok);
      (* fault phase: every statement spins 5 ms inside its timed
         block — far over both the 1 ms floor and 3x the baseline *)
      Mad_mql.Session.fault_spin_ms := Some 5.0;
      for _ = 1 to 6 do run_one () done);
  check "latency regression degrades health" true
    (Timeline.health tl = Timeline.Degraded);
  let firing = List.filter Probe.firing (Timeline.probes tl) in
  check "a latency probe is firing" true
    (List.exists
       (fun p -> p.Probe.p_probe = "latency" && p.Probe.p_label <> "")
       firing);
  (* the transition journaled a Probe_fired event... *)
  let fired_events =
    List.filter
      (fun e ->
        e.Recorder.e_seq >= seen0 && e.Recorder.e_kind = Recorder.Probe_fired)
      (Recorder.drain (Recorder.global ()))
  in
  check "Probe_fired journaled" true (fired_events <> []);
  check "event labeled with the probe id" true
    (List.exists
       (fun e -> contains e.Recorder.e_label "latency:")
       fired_events);
  (* ...and bumped the registry's probe.fired counter *)
  let fired_total =
    List.fold_left
      (fun acc s ->
        match s with
        | Metric.Counter c when c.Metric.c_name = "probe.fired" ->
          acc + Metric.value c
        | _ -> acc)
      0 (Registry.to_list reg)
  in
  check "probe.fired counter bumped" true (fired_total >= 1)

(* ------------------------------------------------------------------ *)
(* Serving saturation: the queue/lock probes and the dashboard panel    *)

let test_saturation_probes_fire () =
  let tl = Timeline.create () in
  let reg = Registry.create () in
  let peak = Registry.gauge reg "serve.queue_peak_pct" in
  let wait =
    Registry.histogram
      ~labels:[ ("class", "insert") ]
      reg "serve.lock.wait_us"
  in
  let hold =
    Registry.histogram
      ~labels:[ ("class", "insert") ]
      reg "serve.lock.hold_us"
  in
  (* idle ticks teach both probes a ~0 baseline (the first observation
     never fires; these probes feed zero frames by design) *)
  ignore (Timeline.tick tl reg);
  ignore (Timeline.tick tl reg);
  check "healthy while idle" true (Timeline.health tl = Timeline.Ok);
  (* a saturated window: the admission queue latched an 80% peak and
     waiting dwarfed useful lock work — both must trip on one frame *)
  Metric.set peak 80.0;
  Metric.observe wait 5000.0;
  Metric.observe hold 10.0;
  ignore (Timeline.tick tl reg);
  let firing p =
    List.exists
      (fun q -> q.Probe.p_probe = p && Probe.firing q)
      (Timeline.probes tl)
  in
  check "queue-saturation fires" true (firing "queue-saturation");
  check "lock-contention fires" true (firing "lock-contention");
  (* the tick read-and-rearmed the peak gauge for the next window *)
  check "queue peak re-armed" true (Metric.get peak = 0.0);
  (* back to idle: the peak stays re-armed and the lock window is
     empty, so both probes clear after their hysteresis *)
  for _ = 1 to 3 do ignore (Timeline.tick tl reg) done;
  check "queue-saturation clears" false (firing "queue-saturation");
  check "lock-contention clears" false (firing "lock-contention")

let test_dashboard_contention_panel () =
  let tl = Timeline.create () in
  let reg = Registry.create () in
  let wait =
    Registry.histogram
      ~labels:[ ("class", "insert") ]
      reg "serve.lock.wait_us"
  in
  let hold =
    Registry.histogram
      ~labels:[ ("class", "insert") ]
      reg "serve.lock.hold_us"
  in
  let contended = Registry.counter reg "serve.lock.contended" in
  ignore (Registry.gauge reg "serve.lock.waiters");
  ignore (Registry.gauge reg "serve.group.waiters");
  ignore (Registry.gauge reg "serve.queue_peak_pct");
  ignore (Timeline.tick tl reg);
  (* before any lock activity lands in the window, the panel is absent *)
  Metric.incr contended;
  ignore (Timeline.tick tl reg);
  let quiet = Format.asprintf "%a" Timeline.pp_dashboard tl in
  check "no per-class table without lock activity" false
    (contains quiet "lock contention (window):");
  check "gauges line still renders" true (contains quiet "contention: contended");
  Metric.observe wait 250.0;
  Metric.observe hold 80.0;
  Metric.incr contended;
  ignore (Timeline.tick tl reg);
  let dash = Format.asprintf "%a" Timeline.pp_dashboard tl in
  check "panel header" true (contains dash "lock contention (window):");
  check "class row" true (contains dash "insert");
  check "contended delta" true (contains dash "contention: contended +1")

let suite =
  [
    Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
    Alcotest.test_case "delta across counter reset" `Quick
      test_delta_counter_reset;
    Alcotest.test_case "probe: single spike no flap" `Quick
      test_probe_single_spike_no_flap;
    Alcotest.test_case "probe: trip and clear" `Quick test_probe_trip_and_clear;
    Alcotest.test_case "probe: skip_zero rate baseline" `Quick
      test_probe_skip_zero;
    Alcotest.test_case "plan-switch probe via tick" `Quick
      test_plan_switch_probe_via_tick;
    Alcotest.test_case "maybe_tick interval gating" `Quick
      test_maybe_tick_interval_gating;
    Alcotest.test_case "runtime gauges" `Quick test_update_runtime_gauges;
    Alcotest.test_case "timeline.mad round-trip" `Quick
      test_timeline_mad_roundtrip;
    Alcotest.test_case "timeline.mad probe state and garbage" `Quick
      test_timeline_mad_probe_state_and_garbage;
    Alcotest.test_case "timeline.mad escaping" `Quick
      test_timeline_mad_escaping;
    Alcotest.test_case "exports parse" `Quick test_exports_parse;
    Alcotest.test_case "saturation probes fire and clear" `Quick
      test_saturation_probes_fire;
    Alcotest.test_case "dashboard contention panel" `Quick
      test_dashboard_contention_panel;
    Alcotest.test_case "latency probe end-to-end" `Quick
      test_latency_probe_end_to_end;
  ]
