(* MOL: lexer/parser round-trips, the two ch. 4 queries, set operators,
   recursion syntax and error diagnostics. *)

open Mad_store
open Workloads
module S = Mad_mql.Session
module P = Mad_mql.Parser
module A = Mad_mql.Ast
module T = Mad_mql.Translate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let session () =
  let b = Geo_brazil.build () in
  (b, S.create (Geo_brazil.db b))

let molecules = function
  | S.Result (T.Molecules mt) -> mt
  | S.Defined mt -> mt
  | S.Result (T.Recursive _ | T.Cycles _)
  | S.Inserted _ | S.Dml _ | S.Explained _ ->
    Alcotest.fail "expected molecules"

let recursive = function
  | S.Result (T.Recursive r) -> r
  | S.Result (T.Molecules _ | T.Cycles _) | S.Defined _ | S.Inserted _
  | S.Dml _ | S.Explained _ ->
    Alcotest.fail "expected recursive result"

(* --- parsing ------------------------------------------------------- *)

let test_parse_q1 () =
  match P.parse "SELECT ALL FROM mt_state(state-area-edge-point);" with
  | A.Query (A.Q { select = A.All; from = A.From_named_def (n, s); where = None })
    ->
    Alcotest.(check string) "name" "mt_state" n;
    check_int "4 nodes" 4 (List.length s.A.s_nodes);
    check_int "3 edges" 3 (List.length s.A.s_edges)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_q2 () =
  match
    P.parse
      "SELECT ALL FROM point-edge-(area-state,net-river) WHERE \
       point.name='pn';"
  with
  | A.Query (A.Q { select = A.All; from = A.From_anon s; where = Some _ }) ->
    check_int "6 nodes" 6 (List.length s.A.s_nodes);
    check_int "5 edges" 5 (List.length s.A.s_edges)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_explicit_link () =
  match P.parse "SELECT ALL FROM state-[state-area]-area;" with
  | A.Query (A.Q { from = A.From_anon s; _ }) -> begin
    match s.A.s_edges with
    | [ (A.Via "state-area", "state", "area") ] -> ()
    | _ -> Alcotest.fail "explicit link not recorded"
  end
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_diamond () =
  (* node repetition expresses a diamond *)
  match P.parse "SELECT ALL FROM r-(x-z,y-z);" with
  | A.Query (A.Q { from = A.From_anon s; _ }) ->
    check_int "4 nodes" 4 (List.length s.A.s_nodes);
    check_int "4 edges" 4 (List.length s.A.s_edges)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_pred_precedence () =
  match P.parse "SELECT ALL FROM state WHERE state.hectare > 100 AND state.hectare < 500 OR NOT state.name = 'SP';" with
  | A.Query (A.Q { where = Some (Mad.Qual.Or (Mad.Qual.And _, Mad.Qual.Not _)); _ })
    -> ()
  | A.Query (A.Q { where = Some p; _ }) ->
    Alcotest.failf "precedence wrong: %s" (Mad.Qual.to_string p)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_errors () =
  let bad s =
    match P.parse s with
    | _ -> Alcotest.failf "expected parse error for %s" s
    | exception Err.Mad_error _ -> ()
  in
  bad "SELECT";
  bad "SELECT ALL FROM";
  bad "SELECT ALL FROM a-(b,c";
  bad "SELECT ALL FROM a WHERE";
  bad "SELECT ALL FROM a WHERE a.x = ";
  bad "SELECT ALL FROM a; garbage"

let test_roundtrip () =
  let sources =
    [
      "SELECT ALL FROM mt_state(state-area-edge-point);";
      "SELECT ALL FROM point-edge-(area-state,net-river) WHERE \
       point.name='pn';";
      "SELECT state(name), area FROM mt_state(state-area-edge-point);";
      "SELECT ALL FROM state WHERE state.hectare >= 400 AND (COUNT(state) = \
       1 OR NOT state.name <> 'SP');";
      "DEFINE MOLECULE pn AS point-edge-(area-state,net-river);";
      "SELECT ALL FROM part RECURSIVE BY composition DEPTH 3;";
      "SELECT ALL FROM part RECURSIVE BY composition SUPER;";
      "SELECT ALL FROM cell RECURSIVE BY instantiates WITH cell-pin;";
      "INSERT INTO city VALUES ('X', 1) LINK city-point @2;";
      "DELETE FROM state-area WHERE state.name = 'SP' DETACH;";
      "MODIFY state.hectare = 5 FROM mts WHERE SUM(edge.length) = 4;";
      "LINK city-point @1 @2;";
      "UNLINK city-point @1 @2;";
      "SELECT ALL FROM a-b UNION SELECT ALL FROM a-b DIFF SELECT ALL FROM \
       a-b;";
      "SELECT ALL FROM cell RECURSIVE BY (cell-pin, ~net-pin, net-pin, \
       ~cell-pin) DEPTH 2;";
      "SELECT ALL FROM rv(river-net), st(state-area);";
    ]
  in
  List.iter
    (fun src ->
      let ast = P.parse src in
      let printed = A.to_string ast in
      let ast2 =
        try P.parse printed
        with Err.Mad_error m ->
          Alcotest.failf "re-parse of %S failed: %s" printed m
      in
      if A.to_string ast2 <> printed then
        Alcotest.failf "round-trip diverges for %S: %S" src printed)
    sources

(* --- evaluation: the paper's queries ------------------------------- *)

let test_q1_eval () =
  let _, s = session () in
  let mt = molecules (S.run s "SELECT ALL FROM mt_state(state-area-edge-point);") in
  check_int "10 state molecules" 10 (Mad.Molecule_type.cardinality mt);
  (* and the named type is now in the session catalog *)
  let again = molecules (S.run s "SELECT ALL FROM mt_state;") in
  check "same occurrence" true
    (Mad.Molecule.Set.equal
       (Mad.Molecule_type.molecule_set mt)
       (Mad.Molecule_type.molecule_set again))

let test_q2_eval () =
  let b, s = session () in
  let mt =
    molecules
      (S.run s
         "SELECT ALL FROM point-edge-(area-state,net-river) WHERE \
          point.name='pn';")
  in
  check_int "exactly the pn molecule" 1 (Mad.Molecule_type.cardinality mt);
  let m = List.hd (Mad.Molecule_type.occ mt) in
  check "rooted at pn" true (Aid.equal m.Mad.Molecule.root b.Geo_brazil.pn);
  check_int "4 states (GO MG MS SP)" 4
    (Aid.Set.cardinal (Mad.Molecule.component m "state"));
  check_int "1 river (Parana)" 1
    (Aid.Set.cardinal (Mad.Molecule.component m "river"))

let test_mql_equals_algebra () =
  (* ch. 4: the MOL statement and the algebra expression Σ ∘ α must
     yield the same molecule set *)
  let b, s = session () in
  let via_mql =
    molecules
      (S.run s
         "SELECT ALL FROM point-edge-(area-state,net-river) WHERE \
          point.name='pn';")
  in
  let db = s.S.db in
  let pn_mt =
    Mad.Molecule_algebra.define db ~name:"pnhood"
      (Geo_brazil.point_neighborhood_desc b)
  in
  let via_algebra =
    Mad.Molecule_algebra.restrict db
      Mad.Qual.(attr "point" "name" =% str "pn")
      pn_mt
  in
  check "same molecule set" true
    (Mad.Molecule.Set.equal
       (Mad.Molecule_type.molecule_set via_mql)
       (Mad.Molecule_type.molecule_set via_algebra))

let test_define_then_query () =
  let _, s = session () in
  (match S.run s "DEFINE MOLECULE mts AS state-area-edge-point;" with
   | S.Defined _ -> ()
   | _ -> Alcotest.fail "expected Defined");
  let big =
    molecules (S.run s "SELECT ALL FROM mts WHERE state.hectare > 900;")
  in
  check_int "three big states" 3 (Mad.Molecule_type.cardinality big)

let test_projection_select () =
  let _, s = session () in
  let mt =
    molecules
      (S.run s
         "SELECT state(name), area FROM mt_state(state-area-edge-point);")
  in
  check_int "still ten molecules" 10 (Mad.Molecule_type.cardinality mt);
  check_int "two nodes left" 2 (List.length (Mad.Mdesc.nodes (Mad.Molecule_type.desc mt)))

let test_set_operators () =
  let _, s = session () in
  let u =
    molecules
      (S.run s
         "SELECT ALL FROM mta(state-area-edge-point) WHERE state.hectare > \
          900 UNION SELECT ALL FROM mtb(state-area-edge-point) WHERE \
          point.name = 'pn';")
  in
  check_int "union cardinality" 6 (Mad.Molecule_type.cardinality u);
  let i =
    molecules
      (S.run s
         "SELECT ALL FROM mta INTERSECT SELECT ALL FROM mtb WHERE point.name \
          = 'pn';")
  in
  ignore i;
  ()

let test_from_product_simple () =
  let _, s = session () in
  (* product of two named definitions: 3 rivers x 10 states *)
  let x =
    molecules (S.run s "SELECT ALL FROM rv(river-net), st(state-area);")
  in
  check_int "30 pairs" 30 (Mad.Molecule_type.cardinality x);
  (* both operand types entered the catalog *)
  check "rv defined" true (S.lookup s "rv" <> None);
  check "st defined" true (S.lookup s "st" <> None)

let test_cycle_recursion_via_mql () =
  let design = Vlsi_gen.build Vlsi_gen.default in
  let s = S.create design.Vlsi_gen.db in
  let src =
    "SELECT ALL FROM cell RECURSIVE BY (cell-pin, ~net-pin, net-pin, \
     ~cell-pin) WHERE cell.cname = 'NAND';"
  in
  (* round-trips *)
  let printed = Mad_mql.Ast.to_string (S.parse s src) in
  Alcotest.(check string)
    "round-trip" printed
    (Mad_mql.Ast.to_string (Mad_mql.Parser.parse printed));
  match S.run s src with
  | S.Result (T.Cycles c) ->
    check_int "one NAND closure" 1 (List.length c.Mad_recursive.Recursive.cocc);
    let m = List.hd c.Mad_recursive.Recursive.cocc in
    check "reaches other cells" true
      (Aid.Set.cardinal m.Mad_recursive.Recursive.c_members > 1)
  | _ -> Alcotest.fail "expected cycle result"

let test_recursion_via_mql () =
  let bom = Bom_gen.build Bom_gen.default in
  let s = S.create bom.Bom_gen.db in
  let r =
    recursive
      (S.run s "SELECT ALL FROM part RECURSIVE BY composition WHERE part.pname = 'P0_0';")
  in
  check_int "single root" 1 (List.length r.Mad_recursive.Recursive.occ);
  let m = List.hd r.Mad_recursive.Recursive.occ in
  let expected =
    Bom_gen.explosion_reference bom m.Mad_recursive.Recursive.root
  in
  check "matches reference closure" true
    (Aid.Set.equal m.Mad_recursive.Recursive.members expected)

let test_unknown_names_diagnosed () =
  let _, s = session () in
  let bad src =
    match S.run s src with
    | _ -> Alcotest.failf "expected error for %s" src
    | exception Err.Mad_error _ -> ()
  in
  bad "SELECT ALL FROM nosuchtype;";
  bad "SELECT ALL FROM state-nosuchtype;";
  bad "SELECT ALL FROM state-city;" (* no link type between them *);
  bad "SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.badattr = 1;";
  bad "SELECT ALL FROM edge-point RECURSIVE BY edge-point;"

let test_explain () =
  let _, s = session () in
  let plan =
    S.explain s
      "SELECT ALL FROM point-edge-(area-state,net-river) WHERE \
       point.name='pn';"
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "plan mentions restriction and definition" true
    (contains plan "point.name" && contains plan "pnhood" = false)

let suite =
  [
    Alcotest.test_case "parse Q1" `Quick test_parse_q1;
    Alcotest.test_case "parse Q2" `Quick test_parse_q2;
    Alcotest.test_case "parse explicit link" `Quick test_parse_explicit_link;
    Alcotest.test_case "parse diamond" `Quick test_parse_diamond;
    Alcotest.test_case "predicate precedence" `Quick
      test_parse_pred_precedence;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse round-trip" `Quick test_roundtrip;
    Alcotest.test_case "Q1 evaluates (ch. 4)" `Quick test_q1_eval;
    Alcotest.test_case "Q2 evaluates (ch. 4)" `Quick test_q2_eval;
    Alcotest.test_case "MOL = algebra (ch. 4)" `Quick test_mql_equals_algebra;
    Alcotest.test_case "DEFINE then query" `Quick test_define_then_query;
    Alcotest.test_case "SELECT projection" `Quick test_projection_select;
    Alcotest.test_case "set operators" `Quick test_set_operators;
    Alcotest.test_case "FROM product (X)" `Quick test_from_product_simple;
    Alcotest.test_case "recursion via MOL" `Quick test_recursion_via_mql;
    Alcotest.test_case "cycle recursion via MOL" `Quick
      test_cycle_recursion_via_mql;
    Alcotest.test_case "unknown names diagnosed" `Quick
      test_unknown_names_diagnosed;
    Alcotest.test_case "explain" `Quick test_explain;
  ]
