(* Molecule derivation against the Brazil database: the Fig. 2
   expectations (mt state, point neighborhood, shared subobjects) and
   the verbatim specification predicates of Def. 6. *)

open Mad_store
open Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let string_attr db atype id attr =
  let at = Database.atom_type db atype in
  match Atom.value (Database.get_atom db ~atype id) at attr with
  | Value.String s -> s
  | v -> Alcotest.failf "expected string, got %s" (Value.to_string v)

let names db atype ids =
  Aid.Set.elements ids
  |> List.map (fun id -> string_attr db atype id "name")
  |> List.sort String.compare

let test_mt_state_shape () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in
  let occ = Mad.Derive.m_dom db desc in
  check_int "one molecule per state" 10 (List.length occ);
  (* the SP molecule: 1 state, 1 area, 4 edges, 4 points *)
  let sp = Geo_brazil.state brazil "SP" in
  let m =
    List.find (fun (m : Mad.Molecule.t) -> Aid.equal m.root sp) occ
  in
  check_int "SP area" 1 (Aid.Set.cardinal (Mad.Molecule.component m "area"));
  check_int "SP edges" 4 (Aid.Set.cardinal (Mad.Molecule.component m "edge"));
  check_int "SP points" 4 (Aid.Set.cardinal (Mad.Molecule.component m "point"));
  (* pn is one of SP's corner points *)
  check "pn in SP molecule" true
    (Aid.Set.mem brazil.Geo_brazil.pn (Mad.Molecule.component m "point"))

let test_mt_state_shared_subobjects () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in
  let occ = Mad.Derive.m_dom db desc in
  let find name =
    List.find
      (fun (m : Mad.Molecule.t) ->
        Aid.equal m.root (Geo_brazil.state brazil name))
      occ
  in
  let sp = find "SP" and mg = find "MG" in
  let shared = Mad.Molecule.shared sp mg in
  (* MG and SP are vertically adjacent: they share their border edge and
     its two endpoints (Fig. 2's "shared subobjects") *)
  check "border shared" true (Aid.Set.cardinal shared >= 3);
  check "pn among shared" true (Aid.Set.mem brazil.Geo_brazil.pn shared);
  (* non-adjacent states share nothing *)
  let rs = find "RS" in
  check "GO and RS disjoint" true
    (Aid.Set.is_empty (Mad.Molecule.shared (find "GO") rs))

let test_point_neighborhood () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.point_neighborhood_desc brazil in
  let occ = Mad.Derive.m_dom db desc in
  let m =
    List.find
      (fun (m : Mad.Molecule.t) -> Aid.equal m.root brazil.Geo_brazil.pn)
      occ
  in
  (* Fig. 2 upper part: pn's neighborhood reaches areas of SP MS MG GO
     and the river Parana *)
  check_int "four incident edges" 4
    (Aid.Set.cardinal (Mad.Molecule.component m "edge"));
  Alcotest.(check (list string))
    "states" [ "GO"; "MG"; "MS"; "SP" ]
    (names db "state" (Mad.Molecule.component m "state"));
  Alcotest.(check (list string))
    "rivers" [ "Parana" ]
    (names db "river" (Mad.Molecule.component m "river"))

let test_derivation_satisfies_spec () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  List.iter
    (fun desc ->
      let occ = Mad.Derive.m_dom db desc in
      List.iter
        (fun m ->
          check "mv_graph holds" true (Mad.Molecule.mv_graph db desc m))
        occ)
    [ Geo_brazil.mt_state_desc brazil; Geo_brazil.point_neighborhood_desc brazil ]

let test_spec_rejects_non_maximal () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in
  let occ = Mad.Derive.m_dom db desc in
  let m = List.hd occ in
  (* drop one point: no longer total *)
  let smaller =
    let p = Aid.Set.min_elt (Mad.Molecule.component m "point") in
    Mad.Molecule.v ~root:m.Mad.Molecule.root
      ~by_node:
        (Mad.Molecule.Smap.update "point"
           (Option.map (fun s -> Aid.Set.remove p s))
           m.Mad.Molecule.by_node)
      ~links:
        (Link.Set.filter
           (fun (l : Link.t) ->
             not (Aid.equal l.right p || Aid.equal l.left p))
           m.Mad.Molecule.links)
  in
  check "smaller molecule is not total" false
    (Mad.Molecule.total db desc smaller)

let test_spec_rejects_foreign_atom () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in
  let occ = Mad.Derive.m_dom db desc in
  let m = List.hd occ and m2 = List.nth occ 5 in
  (* graft a foreign area atom without its links: contained fails *)
  let foreign_area = Aid.Set.min_elt (Mad.Molecule.component m2 "area") in
  let bigger =
    Mad.Molecule.v ~root:m.Mad.Molecule.root
      ~by_node:
        (Mad.Molecule.Smap.update "area"
           (Option.map (fun s -> Aid.Set.add foreign_area s))
           m.Mad.Molecule.by_node)
      ~links:m.Mad.Molecule.links
  in
  check "foreign atom breaks containment" false
    (Mad.Molecule.total db desc bigger)

let test_office_disjoint () =
  let db = Office_gen.build Office_gen.default in
  let desc = Office_gen.document_desc db in
  let occ = Mad.Derive.m_dom db desc in
  check_int "one molecule per document" 5 (List.length occ);
  (* strictly hierarchical: no sharing at all *)
  let rec pairwise = function
    | [] | [ _ ] -> true
    | m :: rest ->
      List.for_all
        (fun m' -> Aid.Set.is_empty (Mad.Molecule.shared m m'))
        rest
      && pairwise rest
  in
  check "documents are disjoint" true (pairwise occ)

let test_empty_component_propagates () =
  let db = Database.create () in
  ignore (Database.declare_atom_type db "a" [ Schema.Attr.v "n" Domain.Int ]);
  ignore (Database.declare_atom_type db "b" [ Schema.Attr.v "m" Domain.Int ]);
  ignore (Database.declare_atom_type db "c" [ Schema.Attr.v "k" Domain.Int ]);
  ignore (Database.declare_link_type db "ab" ("a", "b"));
  ignore (Database.declare_link_type db "bc" ("b", "c"));
  let a1 = Database.insert_atom db ~atype:"a" [ Value.Int 1 ] in
  ignore (Database.insert_atom db ~atype:"c" [ Value.Int 3 ]);
  let desc =
    Mad.Mdesc.v db ~nodes:[ "a"; "b"; "c" ]
      ~edges:[ ("ab", "a", "b"); ("bc", "b", "c") ]
  in
  let occ = Mad.Derive.m_dom db desc in
  check_int "one molecule" 1 (List.length occ);
  let m = List.hd occ in
  check "root only" true (Aid.Set.equal (Mad.Molecule.atoms m) (Aid.Set.singleton a1.id));
  check "still satisfies spec" true (Mad.Molecule.mv_graph db desc m)

let test_diamond_requires_all_parents () =
  (* root -> x, root -> y, x -> z, y -> z : z atoms need both parents *)
  let db = Database.create () in
  List.iter
    (fun n ->
      ignore (Database.declare_atom_type db n [ Schema.Attr.v "v" Domain.Int ]))
    [ "r"; "x"; "y"; "z" ];
  ignore (Database.declare_link_type db "rx" ("r", "x"));
  ignore (Database.declare_link_type db "ry" ("r", "y"));
  ignore (Database.declare_link_type db "xz" ("x", "z"));
  ignore (Database.declare_link_type db "yz" ("y", "z"));
  let r = Database.insert_atom db ~atype:"r" [ Value.Int 0 ] in
  let x = Database.insert_atom db ~atype:"x" [ Value.Int 1 ] in
  let y = Database.insert_atom db ~atype:"y" [ Value.Int 2 ] in
  let z_both = Database.insert_atom db ~atype:"z" [ Value.Int 3 ] in
  let z_x_only = Database.insert_atom db ~atype:"z" [ Value.Int 4 ] in
  Database.add_link db "rx" ~left:r.id ~right:x.id;
  Database.add_link db "ry" ~left:r.id ~right:y.id;
  Database.add_link db "xz" ~left:x.id ~right:z_both.id;
  Database.add_link db "yz" ~left:y.id ~right:z_both.id;
  Database.add_link db "xz" ~left:x.id ~right:z_x_only.id;
  let desc =
    Mad.Mdesc.v db ~nodes:[ "r"; "x"; "y"; "z" ]
      ~edges:
        [ ("rx", "r", "x"); ("ry", "r", "y"); ("xz", "x", "z"); ("yz", "y", "z") ]
  in
  let occ = Mad.Derive.m_dom db desc in
  let m = List.hd occ in
  check "z with both parents included" true
    (Aid.Set.mem z_both.id (Mad.Molecule.component m "z"));
  check "z with one parent excluded" false
    (Aid.Set.mem z_x_only.id (Mad.Molecule.component m "z"));
  check "spec agrees" true (Mad.Molecule.mv_graph db desc m)

let suite =
  [
    Alcotest.test_case "mt state shape (Fig. 2)" `Quick test_mt_state_shape;
    Alcotest.test_case "mt state shared subobjects (Fig. 2)" `Quick
      test_mt_state_shared_subobjects;
    Alcotest.test_case "point neighborhood (Fig. 2)" `Quick
      test_point_neighborhood;
    Alcotest.test_case "derivation satisfies mv_graph spec" `Quick
      test_derivation_satisfies_spec;
    Alcotest.test_case "spec rejects non-maximal molecule" `Quick
      test_spec_rejects_non_maximal;
    Alcotest.test_case "spec rejects grafted foreign atom" `Quick
      test_spec_rejects_foreign_atom;
    Alcotest.test_case "office documents disjoint" `Quick test_office_disjoint;
    Alcotest.test_case "empty component propagates" `Quick
      test_empty_component_propagates;
    Alcotest.test_case "diamond needs all parents" `Quick
      test_diamond_requires_all_parents;
  ]
