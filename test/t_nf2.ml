(* The NF² baseline: nest/unnest laws, molecule embedding, rejection of
   network structures, duplication of shared subobjects. *)

open Mad_store
open Workloads
module N = Nf2.Nested
module Em = Nf2.Embed

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let flat () =
  let r =
    N.create
      [ ("dept", N.Scalar Domain.String); ("emp", N.Scalar Domain.String) ]
  in
  List.iter
    (fun (d, e) -> N.insert r [ N.Atom (Value.String d); N.Atom (Value.String e) ])
    [ ("a", "x"); ("a", "y"); ("b", "z") ];
  r

let test_nest_groups () =
  let r = flat () in
  let nested = N.nest r ~attrs:[ "emp" ] ~as_name:"emps" in
  check_int "two groups" 2 (N.cardinality nested);
  let row_a =
    List.find
      (fun row -> N.compare_nvalue (List.hd row) (N.Atom (Value.String "a")) = 0)
      nested.N.rows
  in
  match List.nth row_a 1 with
  | N.Rel sub -> check_int "a has two emps" 2 (N.cardinality sub)
  | N.Atom _ -> Alcotest.fail "expected nested relation"

let test_unnest_inverts_nest () =
  let r = flat () in
  let nested = N.nest r ~attrs:[ "emp" ] ~as_name:"emps" in
  let back = N.unnest nested ~attr:"emps" in
  (* same rows as the original, modulo column order (dept, emp) *)
  check_int "same cardinality" (N.cardinality r) (N.cardinality back);
  check "same content" true
    (N.compare_rows r.N.rows back.N.rows = 0)

let test_select_union_diff () =
  let r = flat () in
  let a_rows =
    N.select
      (fun row -> N.compare_nvalue (List.hd row) (N.Atom (Value.String "a")) = 0)
      r
  in
  check_int "selected" 2 (N.cardinality a_rows);
  let u = N.union a_rows a_rows in
  check_int "idempotent union" 2 (N.cardinality u);
  check_int "diff to empty" 0 (N.cardinality (N.diff a_rows a_rows))

let test_embed_office () =
  (* strictly hierarchical documents embed exactly, no duplication *)
  let db = Office_gen.build Office_gen.default in
  let desc = Office_gen.document_desc db in
  let mt = Mad.Molecule_algebra.define db ~name:"docs" desc in
  let e = Em.of_molecule_type db mt in
  check_int "five rows" 5 (N.cardinality e.Em.nrel);
  check "no duplication" true (Em.duplication e = 1.0);
  (* weight = all atoms' values embedded once *)
  check_int "distinct atoms" (5 + 20 + 60) e.Em.atoms_distinct

let test_embed_mt_state_duplicates () =
  (* the cartographic mt_state shares edges/points between neighbours:
     NF² must duplicate them *)
  let b = Geo_brazil.build () in
  let db = Geo_brazil.db b in
  let mt = Mad.Molecule_algebra.define db ~name:"mt_state" (Geo_brazil.mt_state_desc b) in
  let e = Em.of_molecule_type db mt in
  check "duplication factor > 1.6" true (Em.duplication e > 1.6);
  check_int "ten rows" 10 (N.cardinality e.Em.nrel)

let test_embed_rejects_diamond () =
  let b = Geo_brazil.build () in
  let db = Geo_brazil.db b in
  let mt =
    Mad.Molecule_algebra.define db ~name:"pn"
      (Geo_brazil.point_neighborhood_desc b)
  in
  (* point neighborhood is a tree actually (point->edge->(area,net));
     build a genuine diamond instead *)
  ignore mt;
  let ddb = Database.create () in
  List.iter
    (fun n ->
      ignore (Database.declare_atom_type ddb n [ Schema.Attr.v "v" Domain.Int ]))
    [ "r"; "x"; "y"; "z" ];
  ignore (Database.declare_link_type ddb "rx" ("r", "x"));
  ignore (Database.declare_link_type ddb "ry" ("r", "y"));
  ignore (Database.declare_link_type ddb "xz" ("x", "z"));
  ignore (Database.declare_link_type ddb "yz" ("y", "z"));
  let desc =
    Mad.Mdesc.v ddb ~nodes:[ "r"; "x"; "y"; "z" ]
      ~edges:[ ("rx", "r", "x"); ("ry", "r", "y"); ("xz", "x", "z"); ("yz", "y", "z") ]
  in
  let dmt = Mad.Molecule_algebra.define ddb ~name:"diamond" desc in
  match Em.of_molecule_type ddb dmt with
  | _ -> Alcotest.fail "diamond must not embed into NF2"
  | exception Err.Mad_error _ -> ()

let test_embedded_query_agrees () =
  (* selecting documents by title in NF² agrees with MAD restriction *)
  let db = Office_gen.build Office_gen.default in
  let desc = Office_gen.document_desc db in
  let mt = Mad.Molecule_algebra.define db ~name:"docs2" desc in
  let e = Em.of_molecule_type db mt in
  let selected =
    N.select
      (fun row ->
        N.compare_nvalue (List.hd row) (N.Atom (Value.String "Doc3")) = 0)
      e.Em.nrel
  in
  let mad =
    Mad.Molecule_algebra.restrict db
      Mad.Qual.(attr "document" "title" =% str "Doc3")
      mt
  in
  check_int "both select one" (Mad.Molecule_type.cardinality mad)
    (N.cardinality selected)

let test_nested_path_queries () =
  let db = Office_gen.build Office_gen.default in
  let desc = Office_gen.document_desc db in
  let mt = Mad.Molecule_algebra.define db ~name:"docsq" desc in
  let e = Em.of_molecule_type db mt in
  (* documents having a section numbered 3 — all of them *)
  let r =
    Nf2.Query.select_exists e.Em.nrel ~path:[ "sections" ] ~attr:"number"
      (fun v -> Value.equal_sem v (Value.Int 3))
  in
  check_int "every doc has section 3" 5 (N.cardinality r);
  (* documents with a paragraph named D2.S1.P2: exactly one *)
  let r2 =
    Nf2.Query.select_exists e.Em.nrel
      ~path:[ "sections"; "paragraphs" ]
      ~attr:"text"
      (fun v -> Value.equal_sem v (Value.String "D2.S1.P2"))
  in
  check_int "one doc" 1 (N.cardinality r2);
  (* universal: every paragraph has at least 20 words *)
  let r3 =
    Nf2.Query.select_forall e.Em.nrel
      ~path:[ "sections"; "paragraphs" ]
      ~attr:"words"
      (fun v -> Value.compare_sem v (Value.Int 20) >= 0)
  in
  check_int "all docs qualify" 5 (N.cardinality r3);
  (* counting: 5 docs x 4 sections x 3 paragraphs *)
  check_int "paragraph count" 60
    (Nf2.Query.count_path e.Em.nrel ~path:[ "sections"; "paragraphs" ]);
  (* agreement with MAD restriction *)
  let mad =
    Mad.Molecule_algebra.restrict db
      Mad.Qual.(attr "paragraph" "text" =% str "D2.S1.P2")
      mt
  in
  check_int "NF2 = MAD" (Mad.Molecule_type.cardinality mad) (N.cardinality r2)

let test_structured_operators () =
  let r = flat () in
  let nested = N.nest r ~attrs:[ "emp" ] ~as_name:"emps" in
  (* nested selection: keep only employee 'x' inside each group *)
  let only_x =
    N.select_nested nested ~attr:"emps" (fun row ->
        N.compare_nvalue (List.hd row) (N.Atom (Value.String "x")) = 0)
  in
  check_int "outer rows kept" 2 (N.cardinality only_x);
  let row_a =
    List.find
      (fun row -> N.compare_nvalue (List.hd row) (N.Atom (Value.String "a")) = 0)
      only_x.N.rows
  in
  (match List.nth row_a 1 with
   | N.Rel sub -> check_int "a keeps x only" 1 (N.cardinality sub)
   | N.Atom _ -> Alcotest.fail "expected nested relation");
  let row_b =
    List.find
      (fun row -> N.compare_nvalue (List.hd row) (N.Atom (Value.String "b")) = 0)
      only_x.N.rows
  in
  (match List.nth row_b 1 with
   | N.Rel sub -> check_int "b emptied" 0 (N.cardinality sub)
   | N.Atom _ -> Alcotest.fail "expected nested relation");
  (* nested projection keeps the schema shape with fewer columns *)
  let wide =
    N.create
      [ ("dept", N.Scalar Domain.String); ("emp", N.Scalar Domain.String);
        ("age", N.Scalar Domain.Int) ]
  in
  List.iter
    (fun (d, e, a) ->
      N.insert wide
        [ N.Atom (Value.String d); N.Atom (Value.String e); N.Atom (Value.Int a) ])
    [ ("a", "x", 30); ("a", "y", 40); ("b", "z", 20) ];
  let nested2 = N.nest wide ~attrs:[ "emp"; "age" ] ~as_name:"staff" in
  let projected = N.project_nested nested2 ~attr:"staff" ~inner:[ "emp" ] in
  let row = List.hd projected.N.rows in
  (match List.nth row 1 with
   | N.Rel sub -> check_int "one inner column" 1 (List.length sub.N.schema)
   | N.Atom _ -> Alcotest.fail "expected nested relation");
  (* scalar attribute rejected *)
  match N.project_nested nested2 ~attr:"dept" ~inner:[] with
  | _ -> Alcotest.fail "scalar projection accepted"
  | exception Err.Mad_error _ -> ()

let suite =
  [
    Alcotest.test_case "structured sigma/pi (SS86)" `Quick
      test_structured_operators;
    Alcotest.test_case "nested path queries" `Quick test_nested_path_queries;
    Alcotest.test_case "nest groups" `Quick test_nest_groups;
    Alcotest.test_case "unnest inverts nest" `Quick test_unnest_inverts_nest;
    Alcotest.test_case "select/union/diff" `Quick test_select_union_diff;
    Alcotest.test_case "office embeds exactly" `Quick test_embed_office;
    Alcotest.test_case "mt_state duplicates shared atoms" `Quick
      test_embed_mt_state_duplicates;
    Alcotest.test_case "diamond rejected" `Quick test_embed_rejects_diamond;
    Alcotest.test_case "NF2 query agrees with MAD" `Quick
      test_embedded_query_agrees;
  ]
