(* The ER bridge: Fig. 1's one-to-one ER->MAD mapping versus the
   auxiliary-relation-laden ER->relational mapping. *)

open Mad_store
module ER = Er_model.Er

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_geographic_schema_valid () =
  let er = ER.geographic () in
  check_int "7 entity types" 7 (List.length er.ER.entities);
  check_int "6 relationship types" 6 (List.length er.ER.relationships)

let test_validation () =
  match
    ER.v
      ~entities:[ { ER.e_name = "a"; e_attrs = [] } ]
      ~relationships:
        [ { ER.r_name = "r"; r_from = "a"; r_to = "nonexistent"; r_card = (ER.One, ER.One) } ]
  with
  | _ -> Alcotest.fail "expected validation error"
  | exception Err.Mad_error _ -> ()

let test_to_mad_one_to_one () =
  let er = ER.geographic () in
  let db = ER.to_mad er in
  check_int "atom types = entity types" (List.length er.ER.entities)
    (List.length (Database.atom_type_names db));
  check_int "link types = relationship types"
    (List.length er.ER.relationships)
    (List.length (Database.link_type_names db));
  check_int "no auxiliary structures" 0 (ER.mad_auxiliary_count er);
  (* cardinalities carried over *)
  let sa = Database.link_type db "state-area" in
  check "1:1 carried" true (sa.Schema.Link_type.card = (Some 1, Some 1))

let test_to_relational_needs_auxiliaries () =
  let er = ER.geographic () in
  let m = ER.to_relational er in
  (* the three n:m relationships need auxiliary relations *)
  check_int "3 auxiliary relations" 3 (List.length m.ER.auxiliary);
  check_int "3 foreign keys" 3 (List.length m.ER.foreign_keys);
  (* total relations: 7 entities + 3 auxiliary *)
  check_int "10 relations" 10 (List.length m.ER.schema);
  check "MAD needs fewer structures" true
    (ER.relational_auxiliary_count er > ER.mad_auxiliary_count er)

let test_mad_image_matches_brazil_schema () =
  (* the ER->MAD image of the geographic schema is exactly the schema
     Geo_brazil uses *)
  let er_db = ER.to_mad (ER.geographic ()) in
  let brazil = Workloads.Geo_brazil.build () in
  let db = Workloads.Geo_brazil.db brazil in
  Alcotest.(check (list string))
    "atom types" (Database.atom_type_names db)
    (Database.atom_type_names er_db);
  Alcotest.(check (list string))
    "link types" (Database.link_type_names db)
    (Database.link_type_names er_db)

let test_er_dot () =
  let s = ER.to_dot (ER.geographic ()) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "graph" true (contains s "graph er_diagram");
  check "entity box" true (contains s "\"state\" [shape=box]");
  check "relationship diamond" true (contains s "\"area-edge\" [shape=diamond]");
  check "cardinality label" true (contains s "[label=\"n\"]")

let suite =
  [
    Alcotest.test_case "ER DOT diagram" `Quick test_er_dot;
    Alcotest.test_case "geographic ER schema" `Quick
      test_geographic_schema_valid;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "ER->MAD one-to-one (Fig. 1)" `Quick
      test_to_mad_one_to_one;
    Alcotest.test_case "ER->relational auxiliaries" `Quick
      test_to_relational_needs_auxiliaries;
    Alcotest.test_case "ER image = Brazil schema" `Quick
      test_mad_image_matches_brazil_schema;
  ]
