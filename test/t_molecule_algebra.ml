(* Molecule algebra: α Σ Π X Ω Δ Ψ with propagation and the closure
   theorems (Defs. 8-10, Theorems 2-3). *)

open Mad_store
open Workloads
module MA = Mad.Molecule_algebra
module MT = Mad.Molecule_type

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let brazil () =
  let b = Geo_brazil.build () in
  (b, Geo_brazil.db b)

let mt_state b db = MA.define db ~name:"mt_state" (Geo_brazil.mt_state_desc b)

let closure_ok db mt =
  let report = Mad.Closure.check_molecule_type db mt in
  if not (Mad.Closure.ok report) then
    Alcotest.failf "%s" (Format.asprintf "%a" Mad.Closure.pp_report report);
  true

let test_define_alpha () =
  let b, db = brazil () in
  let mt = mt_state b db in
  check_int "10 molecules" 10 (MT.cardinality mt);
  check "closure" true (closure_ok db mt)

let test_restrict_sigma () =
  let b, db = brazil () in
  let mt = mt_state b db in
  let big =
    MA.restrict ~name:"big_states" db
      Mad.Qual.(attr "state" "hectare" >% int 900)
      mt
  in
  (* hectare > 900: BA=1000, SP=2000, RS=1500 *)
  check_int "three big states" 3 (MT.cardinality big);
  check "closure" true (closure_ok db big);
  (match big.MT.materialized with
   | Some m -> check "shared propagation suffices" true (m.MT.strategy = `Shared)
   | None -> Alcotest.fail "Σ must propagate");
  (* restriction referencing a non-root node: states bordered by the
     Parana's net — via implicit existential semantics over point *)
  let sigma_pn =
    MA.restrict ~name:"touch_pn" db
      Mad.Qual.(attr "point" "name" =% str "pn")
      mt
  in
  check_int "four states touch pn" 4 (MT.cardinality sigma_pn)

let test_restrict_empty_and_full () =
  let b, db = brazil () in
  let mt = mt_state b db in
  let none = MA.restrict db Mad.Qual.False mt in
  check_int "empty restriction" 0 (MT.cardinality none);
  check "closure of empty" true (closure_ok db none);
  let all = MA.restrict db Mad.Qual.True mt in
  check_int "full restriction" 10 (MT.cardinality all)

let test_project_pi () =
  let b, db = brazil () in
  let mt = mt_state b db in
  let proj =
    MA.project ~name:"state_area" db
      [ ("state", Some [ "name" ]); ("area", None) ]
      mt
  in
  check_int "still 10 molecules" 10 (MT.cardinality proj);
  check "closure" true (closure_ok db proj);
  (* projected-away node rejected downstream *)
  (match
     MA.restrict db Mad.Qual.(attr "edge" "length" >% int 0) proj
   with
  | _ -> Alcotest.fail "restriction on projected-away node must fail"
  | exception Err.Mad_error _ -> ());
  (* projected-away attribute rejected *)
  match MA.restrict db Mad.Qual.(attr "state" "hectare" >% int 0) proj with
  | _ -> Alcotest.fail "restriction on projected-away attribute must fail"
  | exception Err.Mad_error _ -> ()

let test_project_invalid () =
  let b, db = brazil () in
  let mt = mt_state b db in
  (* dropping an inner node disconnects the structure *)
  match MA.project db [ ("state", None); ("edge", None) ] mt with
  | _ -> Alcotest.fail "disconnected projection must fail"
  | exception Err.Mad_error _ -> ()

let test_union_diff_intersect () =
  let b, db = brazil () in
  let mt = mt_state b db in
  let big = MA.restrict db Mad.Qual.(attr "state" "hectare" >% int 900) mt in
  let touches =
    MA.restrict db Mad.Qual.(attr "point" "name" =% str "pn") mt
  in
  let u = MA.union db big touches in
  (* big: BA SP RS; touches: GO MG MS SP; SP common *)
  check_int "union" 6 (MT.cardinality u);
  check "closure union" true (closure_ok db u);
  let d = MA.diff db big touches in
  check_int "difference" 2 (MT.cardinality d);
  check "closure diff" true (closure_ok db d);
  let i = MA.intersect db big touches in
  check_int "intersection" 1 (MT.cardinality i);
  check "closure intersect" true (closure_ok db i);
  (* Ψ = Δ(mt1, Δ(mt1, mt2)) is exactly the intersection *)
  let i' = MA.diff db big (MA.diff db big touches) in
  check "psi = delta twice" true
    (Mad.Molecule.Set.equal (MT.molecule_set i) (MT.molecule_set i'))

let test_union_incompatible () =
  let b, db = brazil () in
  let mt = mt_state b db in
  let pn = MA.define db ~name:"pn_mt" (Geo_brazil.point_neighborhood_desc b) in
  match MA.union db mt pn with
  | _ -> Alcotest.fail "union of different structures must fail"
  | exception Err.Mad_error _ -> ()

let test_product_x () =
  let b, db = brazil () in
  let mt = mt_state b db in
  let big = MA.restrict db Mad.Qual.(attr "state" "hectare" >% int 1400) mt in
  (* SP, RS *)
  let small = MA.restrict db Mad.Qual.(attr "state" "hectare" <% int 300) mt in
  (* ES *)
  let x = MA.product ~name:"bigxsmall" db big small in
  check_int "2 x 1 pairs" 2 (MT.cardinality x);
  (* the product is itself a valid molecule type over the enlarged db *)
  List.iter
    (fun m ->
      check "pair molecule satisfies spec" true
        (Mad.Molecule.mv_graph db x.MT.desc m))
    x.MT.occ

let test_operator_pipeline_stays_closed () =
  let b, db = brazil () in
  let mt = mt_state b db in
  (* Σ ∘ Π ∘ Σ — every stage a valid molecule type *)
  let s1 = MA.restrict db Mad.Qual.(attr "state" "hectare" >=% int 400) mt in
  let p1 = MA.project db [ ("state", None); ("area", None); ("edge", None) ] s1 in
  let s2 = MA.restrict db Mad.Qual.(Count "edge" >=% int 4) p1 in
  check "pipeline closure" true (closure_ok db s2);
  check_int "hectare>=400 states with >=4 edges" 8 (MT.cardinality s2);
  check "db still valid" true (Integrity.is_valid db)

let test_propagated_types_are_queryable () =
  (* The outcome of propagation is a first-class molecule type over the
     enlarged database: deriving it again must work (Def. 9). *)
  let b, db = brazil () in
  let mt = mt_state b db in
  let big = MA.restrict ~name:"bigp" db Mad.Qual.(attr "state" "hectare" >% int 900) mt in
  match big.MT.materialized with
  | None -> Alcotest.fail "expected materialization"
  | Some m ->
    let re = MA.define db ~name:"re_derived" m.MT.mdesc in
    check "re-derivation equals propagated occurrence" true
      (Mad.Molecule.Set.equal (MT.molecule_set re)
         (Mad.Molecule.Set.of_list m.MT.mocc))

let suite =
  [
    Alcotest.test_case "alpha (define)" `Quick test_define_alpha;
    Alcotest.test_case "sigma (restrict)" `Quick test_restrict_sigma;
    Alcotest.test_case "sigma empty/full" `Quick test_restrict_empty_and_full;
    Alcotest.test_case "pi (project)" `Quick test_project_pi;
    Alcotest.test_case "pi rejects disconnection" `Quick test_project_invalid;
    Alcotest.test_case "omega/delta/psi" `Quick test_union_diff_intersect;
    Alcotest.test_case "omega rejects incompatible" `Quick
      test_union_incompatible;
    Alcotest.test_case "x (product)" `Quick test_product_x;
    Alcotest.test_case "pipeline stays closed" `Quick
      test_operator_pipeline_stays_closed;
    Alcotest.test_case "propagated types queryable" `Quick
      test_propagated_types_are_queryable;
  ]
