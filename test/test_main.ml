let () =
  Alcotest.run "mad-repro"
    [
      ("store", T_store.suite);
      ("serialize", T_serialize.suite);
      ("mdesc", T_mdesc.suite);
      ("derive", T_derive.suite);
      ("kernel", T_kernel.suite);
      ("delta", T_delta.suite);
      ("qual", T_qual.suite);
      ("atom-algebra", T_atom_algebra.suite);
      ("molecule-algebra", T_molecule_algebra.suite);
      ("closure", T_closure.suite);
      ("mql", T_mql.suite);
      ("recursive", T_recursive.suite);
      ("dml", T_dml.suite);
      ("relational", T_relational.suite);
      ("nf2", T_nf2.suite);
      ("er", T_er.suite);
      ("prima", T_prima.suite);
      ("paged", T_paged.suite);
      ("workloads", T_workloads.suite);
      ("render", T_render.suite);
      ("obs", T_obs.suite);
      ("timeline", T_timeline.suite);
      ("digest", T_digest.suite);
      ("durable", T_durable.suite);
      ("serve", T_serve.suite);
      ("misc", T_misc.suite);
      ("properties", T_props.suite);
    ]
