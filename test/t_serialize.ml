(* Persistence: dump/load round-trips preserving identity, schema,
   occurrence and derived molecules; diagnostics on malformed input. *)

open Mad_store
open Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let same_db a b =
  Alcotest.(check (list string))
    "atom types" (Database.atom_type_names a) (Database.atom_type_names b);
  Alcotest.(check (list string))
    "link types" (Database.link_type_names a) (Database.link_type_names b);
  List.iter
    (fun at ->
      check_int ("atoms of " ^ at) (Database.count_atoms a at)
        (Database.count_atoms b at);
      List.iter2
        (fun (x : Atom.t) (y : Atom.t) ->
          check "same id" true (Aid.equal x.id y.id);
          check "same values" true (Atom.same_values x y))
        (Database.atoms a at) (Database.atoms b at))
    (Database.atom_type_names a);
  List.iter
    (fun lt ->
      check_int ("links of " ^ lt) (Database.count_links a lt)
        (Database.count_links b lt))
    (Database.link_type_names a)

let test_roundtrip_brazil () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let db' = Serialize.load (Serialize.dump db) in
  same_db db db';
  check "loaded db valid" true (Integrity.is_valid db');
  (* derivations agree molecule for molecule *)
  let desc = Geo_brazil.mt_state_desc brazil in
  let desc' = Geo_schema.mt_state_desc db' in
  let occ = Mad.Derive.m_dom db desc and occ' = Mad.Derive.m_dom db' desc' in
  check "same molecules" true
    (List.equal Mad.Molecule.equal occ occ')

let test_roundtrip_bom () =
  let bom = Bom_gen.build Bom_gen.default in
  let db' = Serialize.load (Serialize.dump bom.Bom_gen.db) in
  same_db bom.Bom_gen.db db';
  (* the reflexive link type's roles survive: explosions agree *)
  let d = Mad_recursive.Recursive.v db' ~root_type:"part" ~link:"composition" () in
  let root = bom.Bom_gen.levels.(0).(0) in
  let m = Mad_recursive.Recursive.derive_one db' d root in
  check "explosion preserved" true
    (Aid.Set.equal m.Mad_recursive.Recursive.members
       (Bom_gen.explosion_reference bom root))

let test_fresh_ids_after_load () =
  let db = Office_gen.build Office_gen.default in
  let db' = Serialize.load (Serialize.dump db) in
  let a = Database.insert_atom db' ~atype:"document"
      [ Value.String "New"; Value.Int 2000 ]
  in
  (* the fresh id must not collide with any loaded atom *)
  check "unique new id" true
    (List.for_all
       (fun at ->
         List.for_all
           (fun (b : Atom.t) -> (not (Aid.equal a.Atom.id b.id)) || at = "document")
           (Database.atoms db' at))
       (Database.atom_type_names db'))

let test_tricky_values () =
  let db = Database.create () in
  ignore
    (Database.declare_atom_type db "t"
       [
         Schema.Attr.v "s" Domain.String;
         Schema.Attr.v "f" Domain.Float;
         Schema.Attr.v "b" Domain.Bool;
         Schema.Attr.v "l" (Domain.List_of Domain.Int);
         Schema.Attr.v "e" (Domain.Enum [ "red"; "blue" ]);
       ]);
  ignore
    (Database.insert_atom db ~atype:"t"
       [
         Value.String "it's a 'quoted' string with spaces";
         Value.Float 3.25;
         Value.Bool true;
         Value.List [ Value.Int 1; Value.Int 2; Value.Int 3 ];
         Value.String "blue";
       ]);
  ignore
    (Database.insert_atom db ~atype:"t"
       [
         Value.String "";
         Value.Float (-0.5);
         Value.Bool false;
         Value.List [];
         Value.String "red";
       ]);
  let db' = Serialize.load (Serialize.dump db) in
  same_db db db'

let test_malformed_rejected () =
  let bad text =
    match Serialize.load text with
    | _ -> Alcotest.failf "expected load failure for %S" text
    | exception Err.Mad_error _ -> ()
  in
  bad "frobnicate x y";
  bad "atomtype t broken-attr-spec";
  bad "atom nosuchtype @1 1";
  bad "atomtype t n:INT\natom t @1 'wrong type'";
  bad "atomtype t n:INT\natom t @1 1\natom t @1 2" (* duplicate id *);
  bad "atomtype a n:INT\natomtype b m:INT\nlinktype ab a b 1:1\nlink ab @1 @2"
    (* dangling link *)

let test_error_names_file () =
  (* diagnostics from a named source (load_file, the durability
     engine's snapshots) lead with the file name *)
  match Serialize.load ~file:"snapshot.mad" "frobnicate x y" with
  | _ -> Alcotest.fail "expected load failure"
  | exception Err.Mad_error msg ->
    check "file named" true
      (String.length msg > 13 && String.sub msg 0 13 = "snapshot.mad:")

let suite =
  [
    Alcotest.test_case "round-trip Brazil" `Quick test_roundtrip_brazil;
    Alcotest.test_case "round-trip BOM (reflexive roles)" `Quick
      test_roundtrip_bom;
    Alcotest.test_case "fresh ids after load" `Quick test_fresh_ids_after_load;
    Alcotest.test_case "tricky values" `Quick test_tricky_values;
    Alcotest.test_case "malformed input rejected" `Quick
      test_malformed_rejected;
    Alcotest.test_case "errors name their file" `Quick test_error_names_file;
  ]
