(* The paged storage simulation: buffer-pool mechanics, placement
   strategies, and the molecule-clustering effect. *)

open Mad_store
open Workloads
module Pg = Prima.Paged

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_pool_lru () =
  let p = Pg.Pool.create 2 in
  Pg.Pool.fix p 1;
  Pg.Pool.fix p 2;
  check_int "two misses" 2 p.Pg.Pool.physical_reads;
  Pg.Pool.fix p 1;
  check_int "hit" 2 p.Pg.Pool.physical_reads;
  (* 2 is now LRU; 3 evicts it *)
  Pg.Pool.fix p 3;
  check_int "eviction" 1 p.Pg.Pool.evictions;
  Pg.Pool.fix p 2;
  check_int "2 was evicted, refetch" 4 p.Pg.Pool.physical_reads;
  check_int "logical counts all" 5 p.Pg.Pool.logical_reads

let test_placement_covers_all_atoms () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  List.iter
    (fun placement ->
      let s = Pg.load ~placement ~page_size:4 ~buffer_pages:8 db in
      (* every atom is stored on some page *)
      List.iter
        (fun at ->
          List.iter
            (fun (a : Atom.t) -> ignore (Pg.page_of s a.id))
            (Database.atoms db at))
        (Database.atom_type_names db);
      (* pages hold at most page_size atoms *)
      let fill = Hashtbl.create 32 in
      Hashtbl.iter
        (fun _ p ->
          Hashtbl.replace fill p (1 + Option.value ~default:0 (Hashtbl.find_opt fill p)))
        s.Pg.page_of;
      Hashtbl.iter (fun _ n -> check "page fill" true (n <= 4)) fill)
    [ `By_type; `By_molecule (Geo_brazil.mt_state_desc brazil) ]

let test_paged_derivation_correct () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in
  let s = Pg.load ~placement:(`By_molecule desc) ~page_size:4 ~buffer_pages:4 db in
  let direct = Mad.Derive.m_dom db desc in
  let paged = Pg.m_dom s desc in
  check "same molecules" true (List.equal Mad.Molecule.equal direct paged)

let test_clustering_reduces_faults () =
  (* the PRIMA clustering argument: with a small buffer, deriving all
     molecules faults less when atoms are placed in molecule order *)
  let g = Geo_gen.build { Geo_gen.default with Geo_gen.rows = 6; cols = 6 } in
  let db = g.Geo_grid.db in
  let desc = Geo_schema.mt_state_desc db in
  let faults placement =
    let s = Pg.load ~placement ~page_size:8 ~buffer_pages:4 db in
    ignore (Pg.m_dom s desc);
    s.Pg.pool.Pg.Pool.physical_reads
  in
  let scattered = faults `By_type in
  let clustered = faults (`By_molecule desc) in
  check "clustering faults less" true (clustered < scattered)

let test_large_buffer_no_thrash () =
  (* with a buffer larger than the database, faults = pages *)
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in
  let s = Pg.load ~placement:`By_type ~page_size:8 ~buffer_pages:1000 db in
  ignore (Pg.m_dom s desc);
  check "faults bounded by pages" true
    (s.Pg.pool.Pg.Pool.physical_reads <= s.Pg.pages)

let test_scan_fixes_each_page_once () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let s = Pg.load ~placement:`By_type ~page_size:8 ~buffer_pages:64 db in
  let before = s.Pg.pool.Pg.Pool.logical_reads in
  ignore (Pg.scan s "edge");
  let reads = s.Pg.pool.Pg.Pool.logical_reads - before in
  (* 27 edges at 8 per page: 4 pages (atoms packed contiguously) *)
  check "few page reads for a scan" true (reads <= 5)

let suite =
  [
    Alcotest.test_case "LRU pool mechanics" `Quick test_pool_lru;
    Alcotest.test_case "placement covers all atoms" `Quick
      test_placement_covers_all_atoms;
    Alcotest.test_case "paged derivation correct" `Quick
      test_paged_derivation_correct;
    Alcotest.test_case "molecule clustering reduces faults" `Quick
      test_clustering_reduces_faults;
    Alcotest.test_case "large buffer no thrash" `Quick
      test_large_buffer_no_thrash;
    Alcotest.test_case "scan fixes pages once" `Quick
      test_scan_fixes_each_page_once;
  ]
