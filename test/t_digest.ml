(* The workload digest: fingerprint stability, (fingerprint, plan)
   aggregation through the session, plan-change detection, the
   slow-query log, and digest.mad persistence. *)

open Workloads
module Err = Mad_store.Err
module Obs = Mad_obs.Obs
module Registry = Mad_obs.Registry
module Recorder = Mad_obs.Recorder
module Digest = Mad_obs.Digest
module Json = Mad_obs.Json
module Session = Mad_mql.Session
module Fingerprint = Mad_mql.Fingerprint

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let brazil () = Geo_brazil.db (Geo_brazil.build ())

let session () =
  Session.create ~obs:(Obs.create ~tracing:false ()) (brazil ())

(* run with both digest hooks saved and restored, so a test can install
   its own (or Prima.Adaptive's) without leaking into other suites *)
let with_hooks f =
  let old_plan = !Session.plan_hash_hook
  and old_analyze = !Session.analyze_hook in
  Fun.protect
    ~finally:(fun () ->
      Session.plan_hash_hook := old_plan;
      Session.analyze_hook := old_analyze)
    f

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                         *)

let fp_of s src = fst (Fingerprint.of_stmt (Session.parse s src))

let test_fingerprint_stability () =
  let s = session () in
  let base =
    fp_of s "SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.name = 'SP';"
  in
  (* whitespace and literal variations collapse onto one fingerprint *)
  check "whitespace-insensitive" true
    (base
    = fp_of s
        "SELECT   ALL\n  FROM mt_state(state-area-edge-point)\n\
         WHERE state.name    = 'SP';");
  check "literal-insensitive (string)" true
    (base
    = fp_of s
        "SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.name = 'Amazonas';");
  (* structure still matters *)
  check "different predicate shape differs" true
    (base
    <> fp_of s "SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.hectare > 3;");
  check "different structure differs" true
    (base
    <> fp_of s "SELECT ALL FROM mt_state(state-area-edge) WHERE state.name = 'SP';");
  (* numeric literals too *)
  check "numeric literal stripped" true
    (fp_of s "SELECT ALL FROM state WHERE state.hectare > 100;"
    = fp_of s "SELECT ALL FROM state WHERE state.hectare > 999;")

let test_fingerprint_dml () =
  let s = session () in
  check "insert values stripped" true
    (fp_of s "INSERT INTO state VALUES ('X', 1);"
    = fp_of s "INSERT INTO state VALUES ('Y', 2);");
  check "modify value stripped" true
    (fp_of s "MODIFY state.hectare = 5 FROM state WHERE state.name = 'SP';"
    = fp_of s "MODIFY state.hectare = 7 FROM state WHERE state.name = 'RJ';");
  check "insert and delete differ" true
    (fp_of s "INSERT INTO state VALUES ('X', 1);"
    <> fp_of s "DELETE FROM state WHERE state.name = 'X';")

(* ------------------------------------------------------------------ *)
(* Session aggregation                                                  *)

let test_session_aggregation () =
  with_hooks @@ fun () ->
  let s = session () in
  let dg = Session.enable_digest s in
  ignore
    (Session.run s
       "SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.name = 'SP';");
  ignore
    (Session.run s
       "SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.name = 'RJ';");
  ignore (Session.run s "SELECT ALL FROM state;");
  (try ignore (Session.run s "SELECT ALL FROM state WHERE state.nope = 1;")
   with Err.Mad_error _ -> ());
  let rows = Digest.report dg in
  check_int "three fingerprints" 3 (List.length rows);
  let restricted =
    List.find (fun r -> contains r.Digest.r_text "state.name") rows
  in
  check_int "two calls aggregated" 2 restricted.Digest.r_calls;
  check_int "rows accumulated" 2 restricted.Digest.r_rows;
  check "latency recorded" true (restricted.Digest.r_total_us > 0.0);
  let failed =
    List.find (fun r -> contains r.Digest.r_text "state.nope") rows
  in
  check_int "error counted" 1 failed.Digest.r_errors;
  check_int "errored call counted" 1 failed.Digest.r_calls;
  (* the digest rides the registry exposition *)
  let text = Registry.expose (Obs.registry s.Session.obs) in
  check "digest.calls exposed" true (contains text "digest_calls{");
  check "plan.switch exposed" true (contains text "plan_switch 0");
  (* satellite: the parse is timed as its own operator *)
  check "mql.parse histogram" true
    (contains text "op_latency_us_count{op=\"mql.parse\"}")

let test_repeated_source_uses_cache () =
  with_hooks @@ fun () ->
  let s = session () in
  let dg = Session.enable_digest s in
  let src = "SELECT ALL FROM state WHERE state.hectare > 100;" in
  for _ = 1 to 5 do
    ignore (Session.run s src)
  done;
  (* a literal variant goes through the cold path yet joins the row *)
  ignore (Session.run s "SELECT ALL FROM state WHERE state.hectare > 7;");
  match Digest.report dg with
  | [ r ] -> check_int "all six calls on one row" 6 r.Digest.r_calls
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Plan-change detection                                                *)

let test_plan_switch_detection () =
  with_hooks @@ fun () ->
  let s = session () in
  let dg = Session.enable_digest s in
  let forced = ref 111 in
  Session.plan_hash_hook := Some (fun _ ~fp:_ _ -> !forced);
  Recorder.set_enabled true;
  let g = Recorder.global () in
  let seq0 = Recorder.recorded g in
  let src = "SELECT ALL FROM state;" in
  ignore (Session.run s src);
  check_int "no switch on first plan" 0 (Digest.switch_count dg);
  forced := 222;
  ignore (Session.run s src);
  check_int "switch counted" 1 (Digest.switch_count dg);
  ignore (Session.run s src);
  check_int "stable plan adds no switch" 1 (Digest.switch_count dg);
  (* one row per (fingerprint, plan) *)
  let rows = Digest.report dg in
  check_int "two plan rows under one fingerprint" 2 (List.length rows);
  check "same fingerprint" true
    (match rows with
     | [ a; b ] -> a.Digest.r_fp = b.Digest.r_fp && a.Digest.r_plan <> b.Digest.r_plan
     | _ -> false);
  List.iter
    (fun r -> check_int "entry-level switch count" 1 r.Digest.r_switches)
    rows;
  (* and the journal has the Plan_switch instant with both hashes *)
  let evs =
    List.filter
      (fun e ->
        e.Recorder.e_seq >= seq0 && e.Recorder.e_kind = Recorder.Plan_switch)
      (Recorder.drain g)
  in
  match evs with
  | [ e ] ->
    check_int "old plan journaled" 111 e.Recorder.e_a;
    check_int "new plan journaled" 222 e.Recorder.e_b;
    check_str "event labeled with the fingerprint" e.Recorder.e_label
      (Digest.hex (List.hd rows).Digest.r_fp)
  | evs -> Alcotest.failf "expected one Plan_switch event, got %d" (List.length evs)

(* the physical plan hash itself: literals must not change it, residual
   conjunct order must *)
let test_plan_hash_identity () =
  let db = brazil () in
  let s = Session.create ~obs:(Obs.create ~tracing:false ()) db in
  let plan_of src =
    match Prima.Profile.query_of_stmt db (Session.parse s src) with
    | Some q -> Prima.Planner.plan ~optimize:true q
    | None -> Alcotest.fail "expected a physical query"
  in
  let p1 =
    plan_of
      "SELECT ALL FROM mt_state(state-area-edge-point) WHERE area.name = 'a1' \
       AND edge.name = 'e1';"
  in
  let p2 =
    plan_of
      "SELECT ALL FROM mt_state(state-area-edge-point) WHERE area.name = 'zz' \
       AND edge.name = 'qq';"
  in
  check "literals do not change the plan hash" true
    (Prima.Planner.plan_hash p1 = Prima.Planner.plan_hash p2);
  (match p1.Prima.Planner.residual with
   | Some q -> begin
     match Prima.Planner.conjuncts q with
     | [ a; b ] ->
       let swapped =
         { p1 with Prima.Planner.residual = Prima.Planner.conjoin [ b; a ] }
       in
       check "conjunct order changes the plan hash" true
         (Prima.Planner.plan_hash p1 <> Prima.Planner.plan_hash swapped)
     | cs -> Alcotest.failf "expected 2 residual conjuncts, got %d" (List.length cs)
   end
   | None -> Alcotest.fail "expected a residual predicate")

(* EXPLAIN ANALYZE under the adaptive hooks feeds estimate drift into
   the profiled statement's digest row *)
let test_analyze_feeds_drift () =
  with_hooks @@ fun () ->
  Prima.Adaptive.install ();
  let s = session () in
  let dg = Session.enable_digest s in
  ignore
    (Session.run s
       "EXPLAIN ANALYZE SELECT ALL FROM mt_state(state-area-edge-point);");
  let drifted =
    List.filter (fun r -> r.Digest.r_drift > 0.0) (Digest.report dg)
  in
  check "a drift reading landed" true (drifted <> []);
  check "keyed by the profiled statement" true
    (List.exists
       (fun r -> contains r.Digest.r_text "SELECT ALL FROM mt_state")
       drifted)

(* ------------------------------------------------------------------ *)
(* Slow-query log                                                       *)

let test_slow_query_log () =
  with_hooks @@ fun () ->
  Prima.Adaptive.install ();
  let s = session () in
  ignore (Session.enable_digest s);
  let path = Filename.temp_file "t_digest_slow" ".log" in
  Digest.set_slow_log ~path (Some 0.0);
  Fun.protect
    ~finally:(fun () ->
      Digest.set_slow_log ~path:"slow-query.log" None;
      Sys.remove path)
    (fun () ->
      Recorder.set_enabled true;
      ignore
        (Session.run s "SELECT ALL FROM mt_state(state-area-edge-point);");
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      check_int "one slow entry" 1 (List.length lines);
      match Json.of_string (List.hd lines) with
      | Error e -> Alcotest.failf "slow entry is not JSON: %s" e
      | Ok j ->
        check "full statement kept" true
          (match Json.member "statement" j with
           | Some (Json.Str s) -> contains s "SELECT ALL FROM mt_state"
           | _ -> false);
        check "analyze tree attached" true
          (match Json.member "analyze" j with
           | Some (Json.Str s) -> contains s "est=" && contains s "actual="
           | _ -> false);
        check "recorder window attached" true
          (match Json.member "events" j with
           | Some (Json.List (_ :: _)) -> true
           | _ -> false);
        check "threshold event journaled" true
          (List.exists
             (fun e -> e.Recorder.e_kind = Recorder.Slow_query)
             (Recorder.drain (Recorder.global ()))))

(* DML must not be re-executed by the slow-log capture *)
let test_slow_log_does_not_replay_dml () =
  with_hooks @@ fun () ->
  Prima.Adaptive.install ();
  let s = session () in
  ignore (Session.enable_digest s);
  let path = Filename.temp_file "t_digest_slow_dml" ".log" in
  Digest.set_slow_log ~path (Some 0.0);
  Fun.protect
    ~finally:(fun () ->
      Digest.set_slow_log ~path:"slow-query.log" None;
      Sys.remove path)
    (fun () ->
      let count () =
        match Session.run s "SELECT ALL FROM state;" with
        | Session.Result (Mad_mql.Translate.Molecules mt) ->
          List.length (Mad.Molecule_type.occ mt)
        | _ -> Alcotest.fail "expected molecules"
      in
      let before = count () in
      ignore (Session.run s "INSERT INTO state VALUES ('Slowland', 1);");
      check_int "insert applied exactly once" (before + 1) (count ());
      let entries =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter_map (fun l ->
               if String.trim l = "" then None
               else match Json.of_string l with Ok j -> Some j | Error _ -> None)
      in
      let is_insert j =
        match Json.member "statement" j with
        | Some (Json.Str s) -> contains s "INSERT"
        | _ -> false
      in
      match List.find_opt is_insert entries with
      | None -> Alcotest.fail "insert entry missing from the slow log"
      | Some j ->
        check "no analyze re-run for DML" true
          (Json.member "analyze" j = Some Json.Null))

(* ------------------------------------------------------------------ *)
(* Persistence (digest.mad)                                             *)

let test_persistence_roundtrip () =
  let dg = Digest.create (Registry.create ()) in
  ignore
    (Digest.record dg ~fp:0xabc ~text:"SELECT ALL FROM state;" ~plan:0x11
       ~latency_us:120.0 ~rows:5 ~error:false ());
  ignore
    (Digest.record dg ~fp:0xabc ~text:"SELECT ALL FROM state;" ~plan:0x11
       ~latency_us:480.0 ~rows:5 ~error:true ());
  Digest.note_drift dg ~fp:0xabc ~text:"SELECT ALL FROM state;" ~plan:0x11
    ~err:12.5;
  ignore
    (Digest.record dg ~fp:0xdef ~text:"INSERT state(...);" ~plan:0x22
       ~latency_us:40.0 ~rows:1 ~error:false ());
  let path = Filename.temp_file "t_digest" ".mad" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Digest.save dg path;
      let dg2 = Digest.create (Registry.create ()) in
      check "load merges" true (Digest.load dg2 path);
      let row fp d =
        List.find (fun r -> r.Digest.r_fp = fp) (Digest.report d)
      in
      let a = row 0xabc dg2 in
      check_int "calls round-trip" 2 a.Digest.r_calls;
      check_int "errors round-trip" 1 a.Digest.r_errors;
      check_int "rows round-trip" 10 a.Digest.r_rows;
      check "latency sum round-trips" true
        (Float.abs (a.Digest.r_total_us -. 600.0) < 1.0);
      check "max round-trips" true
        (Float.abs (a.Digest.r_max_us -. 480.0) < 1.0);
      check "drift round-trips" true
        (Float.abs (a.Digest.r_drift -. 12.5) < 1e-9);
      check_str "text round-trips" "SELECT ALL FROM state;" a.Digest.r_text;
      (* merging the same file again adds (counts accumulate) *)
      check "second merge" true (Digest.load dg2 path);
      check_int "calls doubled" 4 (row 0xabc dg2).Digest.r_calls;
      check "absent file is a no-op" true
        (not (Digest.load dg2 (path ^ ".nope"))))

(* a plan change across a restart still counts: the stored current
   plan seeds the switch detector *)
let test_persistence_switch_across_restart () =
  let dg = Digest.create (Registry.create ()) in
  ignore
    (Digest.record dg ~fp:0xabc ~text:"q" ~plan:0x11 ~latency_us:10.0 ~rows:0
       ~error:false ());
  let s = Digest.to_string dg in
  let dg2 = Digest.create (Registry.create ()) in
  (match Digest.merge_string dg2 s with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check_int "no switch after load" 0 (Digest.switch_count dg2);
  let switched =
    Digest.record dg2 ~fp:0xabc ~text:"q" ~plan:0x22 ~latency_us:10.0 ~rows:0
      ~error:false ()
  in
  check "switch detected against the stored plan" true switched;
  check_int "switch counted" 1 (Digest.switch_count dg2)

let test_merge_rejects_bad_header () =
  let dg = Digest.create (Registry.create ()) in
  check "bad header rejected" true
    (match Digest.merge_string dg "# not a digest\n" with
     | Error _ -> true
     | Ok () -> false);
  check "garbage lines under a good header are skipped" true
    (match
       Digest.merge_string dg "# MAD statement digest v1\nwat 1 2 3\nrow\n"
     with
     | Ok () -> true
     | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* JSON report                                                          *)

let test_to_json_shape () =
  with_hooks @@ fun () ->
  let s = session () in
  let dg = Session.enable_digest s in
  ignore (Session.run s "SELECT ALL FROM state;");
  ignore (Session.run s "SELECT ALL FROM area;");
  let j = Digest.to_json ~top:10 dg in
  let text = Json.to_string j in
  check "plan_switches present" true (contains text "\"plan_switches\":");
  match Json.member "fingerprints" j with
  | Some (Json.List fps) ->
    check_int "both fingerprints reported" 2 (List.length fps);
    List.iter
      (fun f ->
        check "fingerprint field" true (Json.member "fingerprint" f <> None);
        check "plans list" true
          (match Json.member "plans" f with
           | Some (Json.List (_ :: _)) -> true
           | _ -> false))
      fps
  | _ -> Alcotest.fail "expected a fingerprints list"

let suite =
  [
    Alcotest.test_case "fingerprint stability" `Quick test_fingerprint_stability;
    Alcotest.test_case "fingerprint DML" `Quick test_fingerprint_dml;
    Alcotest.test_case "session aggregation" `Quick test_session_aggregation;
    Alcotest.test_case "repeated source uses cache" `Quick
      test_repeated_source_uses_cache;
    Alcotest.test_case "plan switch detection" `Quick test_plan_switch_detection;
    Alcotest.test_case "plan hash identity" `Quick test_plan_hash_identity;
    Alcotest.test_case "analyze feeds drift" `Quick test_analyze_feeds_drift;
    Alcotest.test_case "slow query log" `Quick test_slow_query_log;
    Alcotest.test_case "slow log does not replay DML" `Quick
      test_slow_log_does_not_replay_dml;
    Alcotest.test_case "persistence round-trip" `Quick
      test_persistence_roundtrip;
    Alcotest.test_case "switch across restart" `Quick
      test_persistence_switch_across_restart;
    Alcotest.test_case "merge rejects bad header" `Quick
      test_merge_rejects_bad_header;
    Alcotest.test_case "json report shape" `Quick test_to_json_shape;
  ]
