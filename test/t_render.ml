(* Rendering, notation, DOT and table output: shape checks on the
   textual artifacts the figures are regenerated through. *)

open Mad_store
open Workloads

let check = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let setting () =
  let b = Geo_brazil.build () in
  let db = Geo_brazil.db b in
  let mt =
    Mad.Molecule_algebra.define db ~name:"mt_state" (Geo_brazil.mt_state_desc b)
  in
  (b, db, mt)

let test_molecule_tree () =
  let b, db, mt = setting () in
  let sp =
    match Mad.Molecule_type.find_by_root mt (Geo_brazil.state b "SP") with
    | Some m -> m
    | None -> assert false
  in
  let s = Format.asprintf "%a" (Mad.Render.pp_molecule db mt) sp in
  check "root shown" true (contains s "SP");
  check "area child" true (contains s "  area");
  check "edges indented deeper" true (contains s "    edge");
  check "points deepest" true (contains s "      point");
  check "pn appears" true (contains s "[pn]")

let test_projection_hides_attrs () =
  let _, db, mt = setting () in
  let proj =
    Mad.Molecule_algebra.project db
      [ ("state", Some [ "hectare" ]); ("area", None) ]
      mt
  in
  let m = List.hd (Mad.Molecule_type.occ proj) in
  let s = Format.asprintf "%a" (Mad.Render.pp_molecule db proj) m in
  (* the name attribute was projected away: labels fall back to ids *)
  check "no state name label" false (contains s "[GO]")

let test_shared_report () =
  let _, db, mt = setting () in
  let s = Format.asprintf "%a" (fun ppf () -> Mad.Render.pp_shared db ppf mt) () in
  check "mentions sharing" true (contains s "shared by molecules");
  (* disjoint set: no sharing *)
  let odb = Office_gen.build Office_gen.default in
  let omt =
    Mad.Molecule_algebra.define odb ~name:"docs" (Office_gen.document_desc odb)
  in
  let s' =
    Format.asprintf "%a" (fun ppf () -> Mad.Render.pp_shared odb ppf omt) ()
  in
  check "no sharing reported" true (contains s' "no shared subobjects")

let test_notation () =
  let _, db, _ = setting () in
  let s = Notation.database_to_string ~name:"GEO_DB" db in
  check "AT*" true (contains s "∈ AT*");
  check "LT*" true (contains s "∈ LT*");
  check "DB*" true (contains s "GEO_DB = <{");
  check "elision note" true (contains s "more)")

let test_dot_outputs () =
  let _, db, _ = setting () in
  let s = Dot.schema_to_string db in
  check "graph header" true (contains s "graph mad_schema");
  check "undirected edge" true (contains s "\"state\" -- \"area\"");
  let o = Dot.occurrence_to_string db in
  check "atoms as nodes" true (contains o "a1 [label=");
  check "links as edges" true (contains o " -- ")

let test_table () =
  let t = Table.create [ "col"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  let s = Format.asprintf "%a" Table.pp t in
  check "header" true (contains s "col");
  check "rule" true (contains s "------");
  check "row order" true (contains s "a");
  (match Table.add_row t [ "too"; "many"; "cells" ] with
   | _ -> Alcotest.fail "bad row accepted"
   | exception Err.Mad_error _ -> ())

let test_duplication_factor () =
  let _, _, mt = setting () in
  let f = Mad.Render.duplication_factor mt in
  check "between 1 and 3" true (f > 1.0 && f < 3.0)

let suite =
  [
    Alcotest.test_case "molecule tree" `Quick test_molecule_tree;
    Alcotest.test_case "projection hides attributes" `Quick
      test_projection_hides_attrs;
    Alcotest.test_case "shared-subobject report" `Quick test_shared_report;
    Alcotest.test_case "Fig. 4 notation" `Quick test_notation;
    Alcotest.test_case "DOT outputs" `Quick test_dot_outputs;
    Alcotest.test_case "text tables" `Quick test_table;
    Alcotest.test_case "duplication factor" `Quick test_duplication_factor;
  ]
