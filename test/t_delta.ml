(* Delta maintenance: a delta-applied snapshot (and a repaired closure
   memo) must be structurally identical to a from-scratch rebuild,
   across randomized DML sequences, cascading deletes, cyclic verdict
   transitions, and the patch-volume fallback. *)

open Mad_store
open Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dreg () = Mad_obs.Obs.registry (Mad_obs.Obs.default ())
let counter name = Mad_obs.Registry.counter_value (dreg ()) name
let delta_on () = Mad_kernel.Delta.enabled ()

let same_ids a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Aid.compare x y = 0) a b

(* Every entry the (possibly delta-applied) cached snapshot
   materialized must equal the from-scratch rebuild's. *)
let assert_snap_parity what db =
  let snap = Mad_kernel.Snapshot.of_db db in
  let fresh = Mad_kernel.Snapshot.rebuild db in
  let tis, csrs = Mad_kernel.Snapshot.materialized snap in
  List.iter
    (fun name ->
      let a = (Mad_kernel.Snapshot.tindex snap name).Mad_kernel.Snapshot.ids in
      let b = (Mad_kernel.Snapshot.tindex fresh name).Mad_kernel.Snapshot.ids in
      check (what ^ ": tindex " ^ name) true (same_ids a b))
    tis;
  List.iter
    (fun (lt, fwd) ->
      let dir = if fwd then `Fwd else `Bwd in
      let a = Mad_kernel.Snapshot.csr snap lt ~dir in
      let b = Mad_kernel.Snapshot.csr fresh lt ~dir in
      let tag = what ^ ": csr " ^ lt ^ if fwd then "" else "~" in
      check (tag ^ " offs") true
        (a.Mad_kernel.Snapshot.offs = b.Mad_kernel.Snapshot.offs);
      check (tag ^ " cols") true
        (a.Mad_kernel.Snapshot.cols = b.Mad_kernel.Snapshot.cols))
    csrs

(* force the snapshot entries the delta path will have to maintain *)
let warm db ~atypes ~links =
  let s = Mad_kernel.Snapshot.of_db db in
  List.iter (fun at -> ignore (Mad_kernel.Snapshot.tindex s at)) atypes;
  List.iter
    (fun lt ->
      ignore (Mad_kernel.Snapshot.csr s lt ~dir:`Fwd);
      ignore (Mad_kernel.Snapshot.csr s lt ~dir:`Bwd))
    links

(* ------------------------------------------------------------------ *)

let test_bom_randomized_dml () =
  Random.init 7;
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  Mad_kernel.Delta.track db;
  warm db ~atypes:[ "part" ] ~links:[ "composition" ];
  let live = ref (Aid.Set.elements (Database.atom_ids db "part")) in
  let pick l = List.nth l (Random.int (List.length l)) in
  let d0 = counter "snapshot.delta_applied" in
  for round = 1 to 8 do
    for _ = 1 to 12 do
      match Random.int 5 with
      | 0 | 1 ->
        (* add a composition link between two distinct live parts *)
        let l = pick !live and r = pick !live in
        if Aid.compare l r <> 0 && not (Database.link_exists db "composition" ~left:l ~right:r)
        then Database.add_link db "composition" ~left:l ~right:r
      | 2 -> begin
        match Database.links db "composition" with
        | [] -> ()
        | pairs ->
          let l, r = pick pairs in
          Database.remove_link db "composition" ~left:l ~right:r
      end
      | 3 ->
        let p =
          Database.insert_atom db ~atype:"part"
            [ Value.String "fresh"; Value.Int (Random.int 1000); Value.Int 1 ]
        in
        live := p.Atom.id :: !live;
        Database.add_link db "composition" ~left:(pick !live) ~right:p.Atom.id
      | _ ->
        (* cascading delete: the tap must see the link sub-removals *)
        if List.length !live > 4 then begin
          let v = pick !live in
          Database.delete_atom db v;
          live := List.filter (fun x -> Aid.compare x v <> 0) !live
        end
    done;
    assert_snap_parity (Printf.sprintf "bom round %d" round) db
  done;
  if delta_on () then
    check "delta applied at least once" true
      (counter "snapshot.delta_applied" > d0)

let test_geo_grid_dml () =
  let g = Geo_grid.build ~rows:4 ~cols:4 (List.init 16 (Printf.sprintf "G%02d")) in
  let db = g.Geo_grid.db in
  Mad_kernel.Delta.track db;
  let desc = Geo_schema.mt_state_desc db in
  (* warm the snapshot through the kernel derivation itself *)
  let before = Mad.Derive.m_dom ~kernel:true db desc in
  check_int "16 states" 16 (List.length before);
  ignore
    (Geo_grid.add_river g ~name:"R1" ~length:100
       [ g.Geo_grid.h_edges.(1).(1); g.Geo_grid.h_edges.(1).(2) ]);
  ignore (Geo_grid.add_private_river g ~name:"P1" ~length:50 3);
  assert_snap_parity "geo after rivers" db;
  let scalar = Mad.Derive.m_dom_scalar db desc in
  let kernel = Mad.Derive.m_dom ~kernel:true db desc in
  check_int "geo: cardinality" (List.length scalar) (List.length kernel);
  List.iter2
    (fun (e : Mad.Molecule.t) (a : Mad.Molecule.t) ->
      check "geo: molecule" true (Mad.Molecule.equal e a))
    scalar kernel

(* ------------------------------------------------------------------ *)

let same_closures what scalar kernel =
  check_int (what ^ ": cardinality") (List.length scalar) (List.length kernel);
  List.iter2
    (fun (a : Mad_recursive.Recursive.molecule)
         (b : Mad_recursive.Recursive.molecule) ->
      check (what ^ ": molecule") true
        (Mad_recursive.Recursive.equal_molecule a b);
      check (what ^ ": depths") true
        (Aid.Map.equal Int.equal a.depth_of b.depth_of))
    scalar kernel

let test_closure_repair_parity () =
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  Mad_kernel.Delta.track db;
  let d =
    Mad_recursive.Recursive.v db ~root_type:"part" ~link:"composition" ()
  in
  let base = Mad_recursive.Recursive.m_dom ~kernel:true db d in
  same_closures "bom warm" (Mad_recursive.Recursive.m_dom ~kernel:false db d) base;
  let r0 = counter "closure.repaired" in
  (* attribute-only mutation: the closure must be re-stamped, not
     recomputed *)
  let top = bom.Bom_gen.levels.(0).(0) in
  Database.set_attribute db ~atype:"part" top ~index:1 (Value.Int 4242);
  same_closures "bom restamp"
    (Mad_recursive.Recursive.m_dom ~kernel:false db d)
    (Mad_recursive.Recursive.m_dom ~kernel:true db d);
  if delta_on () then
    check "restamp counted as repair" true (counter "closure.repaired" > r0);
  (* structural mutation on the recursion link: partial repair *)
  let r1 = counter "closure.repaired" in
  let leaf =
    bom.Bom_gen.levels.(Array.length bom.Bom_gen.levels - 1).(0)
  in
  let extra =
    (Database.insert_atom db ~atype:"part"
       [ Value.String "bolt"; Value.Int 9; Value.Int 1 ])
      .Atom.id
  in
  ignore r1;
  Database.add_link db "composition" ~left:leaf ~right:extra;
  same_closures "bom partial repair"
    (Mad_recursive.Recursive.m_dom ~kernel:false db d)
    (Mad_recursive.Recursive.m_dom ~kernel:true db d);
  (* where-used view repairs independently under the same window
     discipline *)
  let du =
    Mad_recursive.Recursive.v db ~root_type:"part" ~link:"composition"
      ~view:Mad_recursive.Recursive.Super ()
  in
  same_closures "bom super"
    (Mad_recursive.Recursive.m_dom ~kernel:false db du)
    (Mad_recursive.Recursive.m_dom ~kernel:true db du)

let test_cyclic_verdict_transitions () =
  (* acyclic -> cyclic -> acyclic: the repaired memo must follow the
     verdict, and kernel/scalar parity must hold at every step *)
  let db = Database.create () in
  ignore (Database.declare_atom_type db "task" [ Schema.Attr.v "n" Domain.Int ]);
  ignore (Database.declare_link_type db "feeds" ("task", "task"));
  Mad_kernel.Delta.track db;
  let atom v = (Database.insert_atom db ~atype:"task" [ Value.Int v ]).Atom.id in
  let a = atom 1 and b = atom 2 and c = atom 3 and d0 = atom 4 in
  Database.add_link db "feeds" ~left:a ~right:b;
  Database.add_link db "feeds" ~left:b ~right:c;
  Database.add_link db "feeds" ~left:c ~right:d0;
  let d = Mad_recursive.Recursive.v db ~root_type:"task" ~link:"feeds" () in
  let step what =
    same_closures what
      (Mad_recursive.Recursive.m_dom ~kernel:false db d)
      (Mad_recursive.Recursive.m_dom ~kernel:true db d)
  in
  step "dag";
  (* close the cycle: partial repair must discover it and store the
     cyclic verdict *)
  Database.add_link db "feeds" ~left:c ~right:a;
  step "cycle closed";
  let m_a =
    List.find
      (fun (m : Mad_recursive.Recursive.molecule) -> Aid.compare m.root a = 0)
      (Mad_recursive.Recursive.m_dom ~kernel:true db d)
  in
  check_int "closure reaches every task" 4 (Aid.Set.cardinal m_a.members);
  (* break the cycle again: the cyclic verdict cannot be repaired, a
     recompute must restore the shared DAG memo *)
  Database.remove_link db "feeds" ~left:c ~right:a;
  step "cycle broken";
  (* attr-only window on top of a cyclic verdict re-stamps it *)
  Database.add_link db "feeds" ~left:c ~right:a;
  step "cycle re-closed";
  Database.set_attribute db ~atype:"task" a ~index:0 (Value.Int 99);
  step "cycle restamped"

(* ------------------------------------------------------------------ *)

let test_threshold_fallback () =
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  Mad_kernel.Delta.track db;
  warm db ~atypes:[ "part" ] ~links:[ "composition" ];
  Fun.protect
    ~finally:(fun () -> Mad_kernel.Delta.set_max_patches None)
    (fun () ->
      Mad_kernel.Delta.set_max_patches (Some 3);
      let r0 = counter "snapshot.rebuild" in
      let d0 = counter "snapshot.delta_applied" in
      (* four patches: over the forced threshold *)
      let l0 = bom.Bom_gen.levels.(0).(0) and l1 = bom.Bom_gen.levels.(0).(1) in
      let x =
        (Database.insert_atom db ~atype:"part"
           [ Value.String "x"; Value.Int 1; Value.Int 1 ])
          .Atom.id
      in
      Database.add_link db "composition" ~left:l0 ~right:x;
      Database.add_link db "composition" ~left:l1 ~right:x;
      Database.set_attribute db ~atype:"part" x ~index:1 (Value.Int 2);
      assert_snap_parity "over threshold" db;
      if delta_on () then begin
        check "fallback rebuilt" true (counter "snapshot.rebuild" > r0);
        check_int "no delta apply over threshold" d0
          (counter "snapshot.delta_applied")
      end;
      (* back under the threshold, the delta path resumes *)
      Database.set_attribute db ~atype:"part" x ~index:1 (Value.Int 3);
      assert_snap_parity "under threshold again" db;
      if delta_on () then
        check "delta resumed" true (counter "snapshot.delta_applied" > d0))

(* ------------------------------------------------------------------ *)

let test_refresh_gating () =
  (* two molecule types over disjoint structures: a mutation under one
     must not re-derive the other *)
  let db = Database.create () in
  List.iter
    (fun n ->
      ignore (Database.declare_atom_type db n [ Schema.Attr.v "v" Domain.Int ]))
    [ "a"; "b"; "c"; "d" ];
  ignore (Database.declare_link_type db "ab" ("a", "b"));
  ignore (Database.declare_link_type db "cd" ("c", "d"));
  let atom ty v = (Database.insert_atom db ~atype:ty [ Value.Int v ]).Atom.id in
  let a0 = atom "a" 1 and b0 = atom "b" 2 in
  let c0 = atom "c" 3 and d0 = atom "d" 4 in
  Database.add_link db "ab" ~left:a0 ~right:b0;
  Database.add_link db "cd" ~left:c0 ~right:d0;
  let t = Mad_mql.Session.create db in
  let define name nodes edges =
    let desc = Mad.Mdesc.v db ~nodes ~edges in
    Mad_mql.Session.define t name
      (Mad.Molecule_algebra.define db ~name desc)
  in
  define "mab" [ "a"; "b" ] [ ("ab", "a", "b") ];
  define "mcd" [ "c"; "d" ] [ ("cd", "c", "d") ];
  let get name = Hashtbl.find t.Mad_mql.Session.env name in
  let mab0 = get "mab" and mcd0 = get "mcd" in
  (* structural mutation under mab only *)
  let b1 = atom "b" 5 in
  Database.add_link db "ab" ~left:a0 ~right:b1;
  Mad_mql.Session.refresh t;
  check "mab re-derived" false (get "mab" == mab0);
  check "mab sees the new atom" true
    (List.exists
       (fun (m : Mad.Molecule.t) ->
         Aid.Set.mem b1 (Mad.Molecule.component m "b"))
       (Mad.Molecule_type.occ (get "mab")));
  if delta_on () then
    check "mcd untouched by disjoint mutation" true (get "mcd" == mcd0);
  (* attribute-only mutation: nothing structural, nothing re-derived *)
  let mab1 = get "mab" and mcd1 = get "mcd" in
  Database.set_attribute db ~atype:"a" a0 ~index:0 (Value.Int 42);
  Mad_mql.Session.refresh t;
  if delta_on () then begin
    check "mab survives attr-only refresh" true (get "mab" == mab1);
    check "mcd survives attr-only refresh" true (get "mcd" == mcd1)
  end;
  (* refresh at an unchanged epoch is a no-op *)
  let mab2 = get "mab" in
  Mad_mql.Session.refresh t;
  check "same-epoch refresh is free" true (get "mab" == mab2)

let suite =
  [
    Alcotest.test_case "bom randomized DML snapshot parity" `Quick
      test_bom_randomized_dml;
    Alcotest.test_case "geo grid delta parity through the kernel" `Quick
      test_geo_grid_dml;
    Alcotest.test_case "closure repair parity (restamp, partial, super)"
      `Quick test_closure_repair_parity;
    Alcotest.test_case "cyclic verdict transitions" `Quick
      test_cyclic_verdict_transitions;
    Alcotest.test_case "patch-volume threshold falls back to rebuild" `Quick
      test_threshold_fallback;
    Alcotest.test_case "session refresh is delta-gated" `Quick
      test_refresh_gating;
  ]
