(* Property-based tests (qcheck): algebraic laws, derivation vs. the
   Def. 6 specification, closure on random pipelines, cross-engine
   equivalence, nest/unnest inverses, recursion vs. reference closure,
   MOL print/parse round-trips. *)

open Mad_store
open Workloads
module Q = QCheck
module MA = Mad.Molecule_algebra
module MT = Mad.Molecule_type

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)

let geo_params_gen =
  Q.Gen.(
    map
      (fun (rows, cols, rivers, river_len, shared, seed) ->
        {
          Geo_gen.rows = 1 + rows;
          cols = 1 + cols;
          rivers;
          river_len = 1 + river_len;
          cities = 2;
          shared_rivers = shared;
          seed;
        })
      (tup6 (int_bound 3) (int_bound 3) (int_bound 3) (int_bound 3) bool
         (int_bound 1000)))

let geo_params =
  Q.make geo_params_gen
    ~print:(fun p ->
      Printf.sprintf "geo(%dx%d, rivers=%d, len=%d, shared=%b, seed=%d)"
        p.Geo_gen.rows p.Geo_gen.cols p.Geo_gen.rivers p.Geo_gen.river_len
        p.Geo_gen.shared_rivers p.Geo_gen.seed)

let bom_params_gen =
  Q.Gen.(
    map
      (fun (depth, width, fanout, share, seed) ->
        {
          Bom_gen.depth = 2 + depth;
          width = 2 + width;
          fanout = 1 + fanout;
          share = float_of_int share /. 10.0;
          seed;
        })
      (tup5 (int_bound 3) (int_bound 4) (int_bound 2) (int_bound 10)
         (int_bound 1000)))

let bom_params =
  Q.make bom_params_gen ~print:(fun p ->
      Printf.sprintf "bom(d=%d,w=%d,f=%d,s=%.1f,seed=%d)" p.Bom_gen.depth
        p.Bom_gen.width p.Bom_gen.fanout p.Bom_gen.share p.Bom_gen.seed)

(* random qualification over the mt_state structure *)
let pred_gen =
  let open Q.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Mad.Qual.(attr "state" "hectare" >% int (n * 100))) (int_bound 20);
        map (fun n -> Mad.Qual.(attr "state" "hectare" <=% int (n * 100))) (int_bound 20);
        map
          (fun i ->
            Mad.Qual.(
              attr "state" "name"
              =% str (List.nth [ "SP"; "MG"; "RS"; "GO"; "XX" ] i)))
          (int_bound 4);
        map (fun n -> Mad.Qual.(Count "edge" >=% int n)) (int_bound 6);
        map (fun n -> Mad.Qual.(attr "point" "x" =% int n)) (int_bound 3);
        return Mad.Qual.True;
        return Mad.Qual.False;
      ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 2,
            map2 (fun a b -> Mad.Qual.And (a, b)) (tree (depth - 1))
              (tree (depth - 1)) );
          ( 2,
            map2 (fun a b -> Mad.Qual.Or (a, b)) (tree (depth - 1))
              (tree (depth - 1)) );
          (1, map (fun a -> Mad.Qual.Not a) (tree (depth - 1)));
          ( 1,
            map
              (fun a -> Mad.Qual.Exists ("point", a))
              (map (fun n -> Mad.Qual.(attr "point" "y" =% int n)) (int_bound 3)) );
        ]
  in
  tree 3

let pred = Q.make pred_gen ~print:Mad.Qual.to_string

(* a fixed Brazil instance shared by the pure-logic properties *)
let brazil = Geo_brazil.build ()
let brazil_db = Geo_brazil.db brazil

let fresh_brazil () =
  let db = Database.copy brazil_db in
  let mt = MA.define db ~name:(MA.gen_name "b") (Geo_brazil.mt_state_desc brazil) in
  (db, mt)

let mset = MT.molecule_set

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)

let prop_derivation_satisfies_spec =
  Q.Test.make ~count:30 ~name:"derivation satisfies mv_graph (random geo)"
    geo_params (fun p ->
      let g = Geo_gen.build p in
      let db = g.Geo_grid.db in
      List.for_all
        (fun desc ->
          List.for_all
            (fun m -> Mad.Molecule.mv_graph db desc m)
            (Mad.Derive.m_dom db desc))
        [
          Geo_schema.mt_state_desc db;
          Geo_schema.mt_river_desc db;
          Geo_schema.point_neighborhood_desc db;
        ])

let prop_integrity_random_geo =
  Q.Test.make ~count:50 ~name:"generated databases are integrity-clean"
    geo_params (fun p ->
      Integrity.is_valid (Geo_gen.build p).Geo_grid.db)

let prop_sigma_commutes =
  Q.Test.make ~count:40 ~name:"Sigma_p . Sigma_q = Sigma_q . Sigma_p"
    (Q.pair pred pred) (fun (p, q) ->
      let db, mt = fresh_brazil () in
      let a = MA.restrict db q (MA.restrict db p mt) in
      let b = MA.restrict db p (MA.restrict db q mt) in
      Mad.Molecule.Set.equal (mset a) (mset b))

let prop_sigma_conjunction =
  Q.Test.make ~count:40 ~name:"Sigma_p . Sigma_q = Sigma_{p AND q}"
    (Q.pair pred pred) (fun (p, q) ->
      let db, mt = fresh_brazil () in
      let a = MA.restrict db q (MA.restrict db p mt) in
      let b = MA.restrict db (Mad.Qual.And (p, q)) mt in
      Mad.Molecule.Set.equal (mset a) (mset b))

let prop_union_laws =
  Q.Test.make ~count:30 ~name:"Omega commutative/idempotent, Delta(x,x)=0"
    (Q.pair pred pred) (fun (p, q) ->
      let db, mt = fresh_brazil () in
      let a = MA.restrict db p mt and b = MA.restrict db q mt in
      let u1 = MA.union db a b and u2 = MA.union db b a in
      Mad.Molecule.Set.equal (mset u1) (mset u2)
      && Mad.Molecule.Set.equal (mset (MA.union db a a)) (mset a)
      && MT.cardinality (MA.diff db a a) = 0)

let prop_psi_is_intersection =
  Q.Test.make ~count:30 ~name:"Psi = set intersection, symmetric"
    (Q.pair pred pred) (fun (p, q) ->
      let db, mt = fresh_brazil () in
      let a = MA.restrict db p mt and b = MA.restrict db q mt in
      let i1 = MA.intersect db a b and i2 = MA.intersect db b a in
      Mad.Molecule.Set.equal (mset i1) (mset i2)
      && Mad.Molecule.Set.equal (mset i1)
           (Mad.Molecule.Set.inter (mset a) (mset b)))

let prop_demorgan =
  Q.Test.make ~count:30 ~name:"Sigma_not(p) = Delta(all, Sigma_p)" pred
    (fun p ->
      let db, mt = fresh_brazil () in
      let not_p = MA.restrict db (Mad.Qual.Not p) mt in
      let complement = MA.diff db mt (MA.restrict db p mt) in
      Mad.Molecule.Set.equal (mset not_p) (mset complement))

let prop_closure_random_pipeline =
  Q.Test.make ~count:15 ~name:"random pipelines stay closed (Thm. 3)"
    (Q.pair pred pred) (fun (p, q) ->
      let db, mt = fresh_brazil () in
      let s = MA.restrict db p mt in
      let pr = MA.project db [ ("state", None); ("area", None) ] s in
      let u = MA.union db pr (MA.project db [ ("state", None); ("area", None) ] (MA.restrict db q mt)) in
      List.for_all
        (fun t -> Mad.Closure.ok (Mad.Closure.check_molecule_type db t))
        [ s; pr; u ]
      && Integrity.is_valid db)

let prop_relational_equals_mad =
  Q.Test.make ~count:20 ~name:"relational join plan = MAD derivation"
    geo_params (fun p ->
      let g = Geo_gen.build p in
      let db = g.Geo_grid.db in
      let map = Relational.Mapping.of_database db in
      List.for_all
        (fun desc ->
          let mad = Mad.Derive.m_dom db desc in
          let rel = Relational.Emulate.derive map db desc in
          List.length mad = List.length rel
          && List.for_all2
               (fun (m : Mad.Molecule.t) (root, comps) ->
                 Aid.equal m.Mad.Molecule.root root
                 && List.for_all
                      (fun node ->
                        Aid.Set.equal
                          (Mad.Molecule.component m node)
                          (Option.value ~default:Aid.Set.empty
                             (Relational.Emulate.Smap.find_opt node comps)))
                      (Mad.Mdesc.nodes desc))
               mad rel)
        [
          Geo_schema.mt_state_desc db;
          Geo_schema.point_neighborhood_desc db;
        ])

let prop_inlined_mapping_equiv =
  Q.Test.make ~count:15 ~name:"inlined 1:n mapping gives same derivation"
    geo_params (fun p ->
      let g = Geo_gen.build p in
      let db = g.Geo_grid.db in
      let m1 = Relational.Mapping.of_database db in
      let m2 = Relational.Mapping.of_database ~inline_1n:true db in
      let desc = Geo_schema.mt_state_desc db in
      let c1 = Relational.Emulate.derive m1 db desc in
      let c2 = Relational.Emulate.derive m2 db desc in
      List.for_all2
        (fun (r1, comps1) (r2, comps2) ->
          Aid.equal r1 r2
          && List.for_all
               (fun node ->
                 Aid.Set.equal
                   (Option.value ~default:Aid.Set.empty
                      (Relational.Emulate.Smap.find_opt node comps1))
                   (Option.value ~default:Aid.Set.empty
                      (Relational.Emulate.Smap.find_opt node comps2)))
               (Mad.Mdesc.nodes desc))
        c1 c2)

let prop_nest_unnest =
  Q.Test.make ~count:50 ~name:"unnest . nest = id (NF2)"
    Q.(list_of_size Q.Gen.(int_range 1 15) (pair (int_bound 5) (int_bound 5)))
    (fun pairs ->
      let r =
        Nf2.Nested.create
          [ ("a", Nf2.Nested.Scalar Domain.Int); ("b", Nf2.Nested.Scalar Domain.Int) ]
      in
      List.iter
        (fun (a, b) ->
          Nf2.Nested.insert r
            [ Nf2.Nested.Atom (Value.Int a); Nf2.Nested.Atom (Value.Int b) ])
        pairs;
      let back =
        Nf2.Nested.unnest (Nf2.Nested.nest r ~attrs:[ "b" ] ~as_name:"bs") ~attr:"bs"
      in
      Nf2.Nested.compare_rows r.Nf2.Nested.rows back.Nf2.Nested.rows = 0)

let prop_recursion_equals_closure =
  Q.Test.make ~count:25 ~name:"recursive derivation = transitive closure"
    bom_params (fun p ->
      let bom = Bom_gen.build p in
      let db = bom.Bom_gen.db in
      let d =
        Mad_recursive.Recursive.v db ~root_type:"part" ~link:"composition" ()
      in
      List.for_all
        (fun (m : Mad_recursive.Recursive.molecule) ->
          Aid.Set.equal m.Mad_recursive.Recursive.members
            (Bom_gen.explosion_reference bom m.Mad_recursive.Recursive.root))
        (Mad_recursive.Recursive.m_dom db d))

let prop_recursion_depth_monotone =
  Q.Test.make ~count:20 ~name:"recursion monotone in depth bound"
    bom_params (fun p ->
      let bom = Bom_gen.build p in
      let db = bom.Bom_gen.db in
      let root = bom.Bom_gen.levels.(0).(0) in
      let members k =
        (Mad_recursive.Recursive.derive_one db
           (Mad_recursive.Recursive.v db ~root_type:"part" ~link:"composition"
              ~max_depth:k ())
           root)
          .Mad_recursive.Recursive.members
      in
      let rec check k prev =
        if k > p.Bom_gen.depth + 1 then true
        else
          let cur = members k in
          Aid.Set.subset prev cur && check (k + 1) cur
      in
      check 1 (members 0))

let prop_rel_join_algorithms_agree =
  Q.Test.make ~count:40 ~name:"hash join = nested-loop join"
    Q.(
      pair
        (list_of_size Q.Gen.(int_range 0 20) (pair (int_bound 6) (int_bound 6)))
        (list_of_size Q.Gen.(int_range 0 20) (pair (int_bound 6) (int_bound 6))))
    (fun (ls, rs) ->
      let mk name pairs =
        let r =
          Relational.Relation.create name
            [ Schema.Attr.v "k" Domain.Int; Schema.Attr.v "v" Domain.Int ]
        in
        List.iter
          (fun (k, v) ->
            Relational.Relation.insert_list r [ Value.Int k; Value.Int v ])
          pairs;
        r
      in
      let l = mk "l" ls and r = mk "r" rs in
      let h = Relational.Rel_algebra.hash_join l r ~lkey:"k" ~rkey:"k" in
      let n =
        Relational.Rel_algebra.nl_join
          (fun t1 t2 -> Value.equal_sem t1.(0) t2.(0))
          l r
      in
      let m = Relational.Rel_algebra.merge_join l r ~lkey:"k" ~rkey:"k" in
      let same a b =
        List.equal
          (fun x y ->
            List.compare Value.compare (Array.to_list x) (Array.to_list y) = 0)
          (Relational.Relation.sorted_tuples a)
          (Relational.Relation.sorted_tuples b)
      in
      same h n && same m h)

let prop_mad_atom_ops_equal_relational =
  Q.Test.make ~count:25 ~name:"atom algebra = relational algebra (link-free)"
    (Q.pair (Q.list_of_size Q.Gen.(int_range 0 15) Q.(pair small_nat (int_bound 10)))
       Q.small_nat)
    (fun (rows, threshold) ->
      (* a single link-free atom type / relation with the same rows *)
      let db = Database.create () in
      ignore
        (Database.declare_atom_type db "t"
           [ Schema.Attr.v "a" Domain.Int; Schema.Attr.v "b" Domain.Int ]);
      let rel =
        Relational.Relation.create "t"
          [ Schema.Attr.v "a" Domain.Int; Schema.Attr.v "b" Domain.Int ]
      in
      List.iter
        (fun (a, b) ->
          ignore (Database.insert_atom db ~atype:"t" [ Value.Int a; Value.Int b ]);
          Relational.Relation.insert_list rel [ Value.Int a; Value.Int b ])
        rows;
      (* σ *)
      let mad_sigma =
        Mad.Atom_algebra.restrict db ~name:"s"
          ~pred:Mad.Qual.(attr "t" "a" >% int threshold)
          "t"
      in
      let rel_sigma =
        Relational.Rel_algebra.select
          (fun t -> Value.compare_sem t.(0) (Value.Int threshold) > 0)
          rel
      in
      let mad_values name =
        Database.atoms db name
        |> List.map (fun (a : Atom.t) -> Array.to_list a.values)
        |> List.sort (List.compare Value.compare)
      in
      let rel_values r =
        Relational.Relation.sorted_tuples r |> List.map Array.to_list
      in
      ignore mad_sigma;
      (* note: σ keeps duplicates 1-1 with source atoms; compare as sets *)
      let as_set l = List.sort_uniq (List.compare Value.compare) l in
      as_set (mad_values "s") = as_set (rel_values rel_sigma)
      &&
      (* π *)
      let _ = Mad.Atom_algebra.project db ~name:"p" ~attrs:[ "b" ] "t" in
      let rel_pi = Relational.Rel_algebra.project [ "b" ] rel in
      as_set (mad_values "p") = as_set (rel_values rel_pi))

let prop_mol_roundtrip =
  (* random SELECT statements print/parse to a fixed point *)
  let stmt_gen =
    Q.Gen.(
      map
        (fun (pred_opt, all) ->
          let select = if all then Mad_mql.Ast.All else Mad_mql.Ast.Items [ ("state", None); ("area", Some [ "name" ]) ] in
          Mad_mql.Ast.Query
            (Mad_mql.Ast.Q
               {
                 Mad_mql.Ast.select;
                 from =
                   Mad_mql.Ast.From_named_def
                     ( "m",
                       {
                         Mad_mql.Ast.s_nodes = [ "state"; "area"; "edge"; "point" ];
                         s_edges =
                           [
                             (Mad_mql.Ast.Auto, "state", "area");
                             (Mad_mql.Ast.Auto, "area", "edge");
                             (Mad_mql.Ast.Via "edge-point", "edge", "point");
                           ];
                       } );
                 where = pred_opt;
               }))
        (pair (opt pred_gen) bool))
  in
  let arb =
    Q.make stmt_gen ~print:(fun s -> Mad_mql.Ast.to_string s)
  in
  Q.Test.make ~count:60 ~name:"MOL print/parse round-trip" arb (fun stmt ->
      let printed = Mad_mql.Ast.to_string stmt in
      let reparsed = Mad_mql.Parser.parse printed in
      String.equal (Mad_mql.Ast.to_string reparsed) printed)

let vlsi_params_gen =
  Q.Gen.(
    map
      (fun (leaves, levels, mods, insts, seed) ->
        {
          Vlsi_gen.leaf_cells = 2 + leaves;
          levels = 1 + levels;
          modules_per_level = 1 + mods;
          instances_per_module = 1 + insts;
          pins_per_cell = 2;
          seed;
        })
      (tup5 (int_bound 4) (int_bound 2) (int_bound 3) (int_bound 3)
         (int_bound 1000)))

let vlsi_params =
  Q.make vlsi_params_gen ~print:(fun p ->
      Printf.sprintf "vlsi(l=%d,lv=%d,m=%d,i=%d,seed=%d)" p.Vlsi_gen.leaf_cells
        p.Vlsi_gen.levels p.Vlsi_gen.modules_per_level
        p.Vlsi_gen.instances_per_module p.Vlsi_gen.seed)

let prop_cycle_equals_reference =
  Q.Test.make ~count:20 ~name:"cycle recursion = composed closure (random VLSI)"
    vlsi_params (fun p ->
      let design = Vlsi_gen.build p in
      let db = design.Vlsi_gen.db in
      let module R = Mad_recursive.Recursive in
      let d =
        R.cycle db ~root_type:"cell"
          ~steps:
            [
              ("cell-pin", `Fwd); ("net-pin", `Bwd); ("net-pin", `Fwd);
              ("cell-pin", `Bwd);
            ]
          ()
      in
      let step frontier =
        let hop link dir s =
          Aid.Set.fold
            (fun id acc -> Aid.Set.union acc (Database.neighbors db link ~dir id))
            s Aid.Set.empty
        in
        frontier |> hop "cell-pin" `Fwd |> hop "net-pin" `Bwd
        |> hop "net-pin" `Fwd |> hop "cell-pin" `Bwd
      in
      let reference root =
        let rec go seen frontier =
          if Aid.Set.is_empty frontier then seen
          else
            let fresh = Aid.Set.diff (step frontier) seen in
            go (Aid.Set.union seen fresh) fresh
        in
        go (Aid.Set.singleton root) (Aid.Set.singleton root)
      in
      List.for_all
        (fun (m : R.cycle_molecule) ->
          Aid.Set.equal m.R.c_members (reference m.R.c_root_atom))
        (R.cycle_m_dom db d))

let prop_parser_total =
  (* the MOL front end must never crash: any input either parses or
     raises Mad_error *)
  let fragment_gen =
    Q.Gen.(
      map (String.concat " ")
        (list_size (int_bound 12)
           (oneofl
              [
                "SELECT"; "FROM"; "WHERE"; "ALL"; "AND"; "OR"; "state";
                "area"; "-"; "("; ")"; ","; ";"; "."; "'x'"; "42"; "3.5";
                "=%"; "="; "<"; "COUNT"; "SUM"; "RECURSIVE"; "BY"; "DEPTH";
                "WITH"; "DELETE"; "INSERT"; "INTO"; "VALUES"; "LINK"; "@7";
                "~"; "-[state-area]-"; "UNION"; "mt_state"; "--c"; "*";
              ])))
  in
  Q.Test.make ~count:300 ~name:"parser totality (fuzz)"
    (Q.make fragment_gen ~print:Fun.id) (fun src ->
      match Mad_mql.Parser.parse src with
      | _ -> true
      | exception Err.Mad_error _ -> true)

let prop_value_order_total =
  let value_gen =
    Q.Gen.(
      sized_size (int_bound 3) (fix (fun self n ->
          if n = 0 then
            oneof
              [
                map (fun i -> Value.Int i) small_int;
                map (fun f -> Value.Float (float_of_int f)) small_int;
                map (fun b -> Value.Bool b) bool;
                map (fun s -> Value.String s) (string_size (int_bound 4));
              ]
          else
            frequency
              [
                (3, self 0);
                (1, map (fun l -> Value.List l) (list_size (int_bound 3) (self 0)));
              ])))
  in
  let arb = Q.make value_gen ~print:Value.to_string in
  Q.Test.make ~count:100 ~name:"value ordering is a total order"
    (Q.triple arb arb arb) (fun (a, b, c) ->
      let sgn x = compare x 0 in
      (* antisymmetry *)
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && (* transitivity on a sorted triple *)
      (let l = List.sort Value.compare [ a; b; c ] in
       match l with
       | [ x; y; z ] ->
         Value.compare x y <= 0 && Value.compare y z <= 0
         && Value.compare x z <= 0
       | _ -> false))

let prop_serialize_roundtrip =
  Q.Test.make ~count:25 ~name:"dump/load round-trip (random geo)" geo_params
    (fun p ->
      let db = (Geo_gen.build p).Geo_grid.db in
      let db' = Serialize.load (Serialize.dump db) in
      String.equal (Serialize.dump db) (Serialize.dump db')
      && Integrity.is_valid db')

let prop_delete_preserves_validity =
  Q.Test.make ~count:25 ~name:"random deletes keep the database valid"
    (Q.pair pred Q.bool) (fun (p, detach) ->
      let db, mt = fresh_brazil () in
      let victims =
        List.filter
          (fun m -> MA.molecule_satisfies db mt m p)
          (MT.occ mt)
      in
      let mode = if detach then `Unlink_only else `Shared_safe in
      let _ = Mad.Manipulate.delete_molecules ~mode db mt victims in
      Integrity.is_valid db)

let prop_delete_survivors_unchanged =
  Q.Test.make ~count:25 ~name:"shared-safe delete leaves survivors intact"
    pred (fun p ->
      let db, mt = fresh_brazil () in
      let victims, survivors =
        List.partition (fun m -> MA.molecule_satisfies db mt m p) (MT.occ mt)
      in
      let _ = Mad.Manipulate.delete_molecules db mt victims in
      (* every survivor's molecule re-derives to exactly its old self *)
      List.for_all
        (fun (m : Mad.Molecule.t) ->
          let m' =
            Mad.Derive.derive_one db (MT.desc mt) m.Mad.Molecule.root
          in
          Mad.Molecule.equal m m')
        survivors)

let prop_paged_equals_direct =
  Q.Test.make ~count:15 ~name:"paged derivation = direct derivation"
    (Q.pair geo_params (Q.make Q.Gen.(int_range 1 16) ~print:string_of_int))
    (fun (p, buffer_pages) ->
      let db = (Geo_gen.build p).Geo_grid.db in
      let desc = Geo_schema.mt_state_desc db in
      let direct = Mad.Derive.m_dom db desc in
      List.for_all
        (fun placement ->
          let s =
            Prima.Paged.load ~placement ~page_size:4 ~buffer_pages db
          in
          List.equal Mad.Molecule.equal direct (Prima.Paged.m_dom s desc))
        [ `By_type; `By_molecule desc ])

let prop_recursive_setop_laws =
  Q.Test.make ~count:25 ~name:"recursive set-operation laws" bom_params
    (fun p ->
      let bom = Bom_gen.build p in
      let db = bom.Bom_gen.db in
      let module R = Mad_recursive.Recursive in
      let t = R.define db ~name:"t" (R.v db ~root_type:"part" ~link:"composition" ()) in
      let half =
        R.restrict db
          Mad.Qual.(Exists ("part", attr "part" "level" >=% int 1))
          t ~name:"h"
      in
      let u = R.union ~name:"u" half t in
      let i = R.intersect ~name:"i" half t in
      let d = R.diff ~name:"d" t half in
      List.length u.R.occ = List.length t.R.occ
      && List.length i.R.occ = List.length half.R.occ
      && List.length d.R.occ + List.length half.R.occ = List.length t.R.occ)

let prop_estimates_rank_plans =
  Q.Test.make ~count:25 ~name:"optimizer estimates rank optimized <= naive"
    pred (fun p ->
      let db = Database.copy brazil_db in
      let t = Prima.Stats.collect db in
      let q =
        {
          Prima.Planner.name = "q";
          desc = Geo_brazil.mt_state_desc brazil;
          where = Some p;
          select = None;
        }
      in
      let naive = Prima.Stats.estimate t (Prima.Planner.plan ~optimize:false q) in
      let opt = Prima.Stats.estimate t (Prima.Planner.plan ~optimize:true q) in
      opt.Prima.Stats.est_links <= naive.Prima.Stats.est_links +. 1e-9)

let suite =
  List.map to_alcotest
    [
      prop_serialize_roundtrip;
      prop_delete_preserves_validity;
      prop_delete_survivors_unchanged;
      prop_paged_equals_direct;
      prop_recursive_setop_laws;
      prop_estimates_rank_plans;
      prop_parser_total;
      prop_cycle_equals_reference;
      prop_derivation_satisfies_spec;
      prop_integrity_random_geo;
      prop_sigma_commutes;
      prop_sigma_conjunction;
      prop_union_laws;
      prop_psi_is_intersection;
      prop_demorgan;
      prop_closure_random_pipeline;
      prop_relational_equals_mad;
      prop_inlined_mapping_equiv;
      prop_nest_unnest;
      prop_recursion_equals_closure;
      prop_recursion_depth_monotone;
      prop_rel_join_algorithms_agree;
      prop_mad_atom_ops_equal_relational;
      prop_mol_roundtrip;
      prop_value_order_total;
    ]
