(* The durability engine: WAL framing and torn tails, logical record
   codec, recovery (snapshot + replay + integrity), snapshot rolling,
   fault injection, catalog persistence, and the crash-recovery
   property (every crash point of a seeded workload converges). *)

open Mad_store
open Mad_durable

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* every test works in its own throwaway directory *)
let in_tmp name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("t_durable_" ^ name)
  in
  Harness.rm_rf dir;
  Fun.protect ~finally:(fun () -> Harness.rm_rf dir) (fun () -> f dir)

let wal_file dir =
  Unix.mkdir dir 0o755;
  Filename.concat dir Durable.wal_basename

(* --- WAL framing ---------------------------------------------------- *)

let test_wal_roundtrip () =
  in_tmp "roundtrip" @@ fun dir ->
  let path = wal_file dir in
  let payloads = [ "alpha"; ""; "two words"; String.make 300 'x' ] in
  let obs = Mad_obs.Obs.create () in
  let w = Wal.create ~obs ~truncate:true path in
  List.iter (Wal.append w) payloads;
  check_int "writer count" (List.length payloads) (Wal.records w);
  Wal.close w;
  let got, tail = Wal.read path in
  Alcotest.(check (list string)) "payloads survive" payloads got;
  check "clean tail" true (tail = Wal.Clean);
  let bytes =
    List.fold_left (fun n p -> n + Wal.header_bytes + String.length p) 0 payloads
  in
  check_int "wal.append_bytes counts frames" bytes
    (Mad_obs.Metric.value (Mad_obs.Obs.counter obs "wal.append_bytes"));
  (* appending to an existing log keeps the prefix *)
  let w2 = Wal.create ~truncate:false path in
  Wal.append w2 "tail";
  Wal.close w2;
  let got2, _ = Wal.read path in
  Alcotest.(check (list string)) "append mode" (payloads @ [ "tail" ]) got2

let test_wal_torn_tail () =
  in_tmp "torn" @@ fun dir ->
  let path = wal_file dir in
  let w = Wal.create ~truncate:true path in
  List.iter (Wal.append w) [ "one"; "two"; "three" ];
  Wal.close w;
  (* tear the last record: drop its final byte *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 1);
  Unix.close fd;
  let got, tail = Wal.read path in
  Alcotest.(check (list string)) "durable prefix" [ "one"; "two" ] got;
  (match tail with
   | Wal.Torn { bytes_dropped } ->
     check_int "dropped the torn frame" (Wal.header_bytes + 5 - 1) bytes_dropped
   | Wal.Clean -> Alcotest.fail "expected a torn tail");
  (* a lone partial header is also just a torn tail *)
  let oc = open_out_bin path in
  output_string oc "abc";
  close_out oc;
  let got, tail = Wal.read path in
  check_int "no records" 0 (List.length got);
  check "short header torn" true (tail <> Wal.Clean)

let test_wal_corrupt_record () =
  in_tmp "corrupt" @@ fun dir ->
  let path = wal_file dir in
  let w = Wal.create ~truncate:true path in
  List.iter (Wal.append w) [ "one"; "two"; "three" ];
  Wal.close w;
  (* flip a payload byte of the middle record: scanning must stop
     before it, even though the last record is intact *)
  let off = (2 * Wal.header_bytes) + 3 + 1 in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write_substring fd "X" 0 1);
  Unix.close fd;
  let got, tail = Wal.read path in
  Alcotest.(check (list string)) "stops at the bad checksum" [ "one" ] got;
  check "torn" true (tail <> Wal.Clean)

(* --- the logical record codec ---------------------------------------- *)

let test_logrec_roundtrip () =
  let db = Harness.seed_db () in
  let ops = ref [] in
  Database.set_journal db (Some (fun op -> ops := op :: !ops));
  let a =
    Database.insert_atom db ~atype:"part"
      [
        Value.String "it's 'quoted'";
        Value.Int (-3);
        Value.List [ Value.Int 1; Value.Int 2 ];
      ]
  in
  let b = List.hd (Database.atoms db "box") in
  Database.add_link db "in" ~left:b.Atom.id ~right:a.Atom.id;
  Database.set_attribute db ~atype:"part" a.Atom.id ~index:1 (Value.Int 9);
  Database.remove_link db "in" ~left:b.Atom.id ~right:a.Atom.id;
  Database.delete_atom db a.Atom.id;
  ignore
    (Database.declare_atom_type db "extra" [ Schema.Attr.v "n" Domain.Int ]);
  Database.drop_atom_type db "extra";
  Database.set_journal db None;
  check "all kinds journaled" true (List.length !ops >= 7);
  List.iter
    (fun op ->
      let payload = Logrec.encode op in
      check_string
        ("round-trip of " ^ payload)
        payload
        (Logrec.encode (Logrec.decode ~recno:1 payload)))
    !ops;
  (* a damaged payload names its record *)
  match Logrec.decode ~recno:7 "frobnicate x" with
  | _ -> Alcotest.fail "expected decode failure"
  | exception Err.Mad_error msg ->
    check "names the record" true (contains ~affix:"record 7" msg)

(* --- recovery -------------------------------------------------------- *)

(* a short straight-line workload driven through the public mutators
   and the Manipulate layer (cascading delete is one logical record) *)
let mutate db =
  let part v w =
    (Database.insert_atom db ~atype:"part"
       [ Value.String v; Value.Int w; Value.List [] ])
      .Atom.id
  in
  let p1 = part "wheel" 4 and p2 = part "axle" 2 in
  let box = (List.hd (Database.atoms db "box")).Atom.id in
  Database.add_link db "in" ~left:box ~right:p1;
  Database.set_attribute db ~atype:"part" p1 ~index:1 (Value.Int 5);
  let linked =
    Mad.Manipulate.insert_atom_linked db ~atype:"part"
      [ Value.String "rim"; Value.Int 1; Value.List [ Value.Int 8 ] ]
      ~links:[ ("in", box) ]
  in
  Database.delete_atom db p2;
  Database.delete_atom db linked.Atom.id (* cascades over the link *)

let test_reopen_replays () =
  in_tmp "reopen" @@ fun dir ->
  let h = Durable.open_or_seed ~seed:Harness.seed_db dir in
  check "fresh dir got a snapshot" true
    (Sys.file_exists (Filename.concat dir Durable.snapshot_basename));
  mutate (Durable.db h);
  let written = Durable.wal_records h in
  check "journaled" true (written > 0);
  let want = Serialize.dump (Durable.db h) in
  Durable.close h;
  let obs = Mad_obs.Obs.create () in
  let h2 = Durable.open_dir ~obs dir in
  let r = Durable.recovery h2 in
  check "snapshot loaded" true r.Durable.snapshot_loaded;
  check_int "all records replayed" written r.Durable.replayed_records;
  check_int "clean tail" 0 r.Durable.torn_tail_bytes;
  check_int "metric recovery.replayed_records" written
    (Mad_obs.Metric.value
       (Mad_obs.Obs.counter obs "recovery.replayed_records"));
  check_string "recovered state" want (Serialize.dump (Durable.db h2));
  check "recovered db valid" true (Integrity.is_valid (Durable.db h2));
  Durable.close h2

let test_torn_final_record_skipped () =
  in_tmp "torn-skip" @@ fun dir ->
  let h = Durable.open_or_seed ~seed:Harness.seed_db dir in
  mutate (Durable.db h);
  let written = Durable.wal_records h in
  let want = Serialize.dump (Durable.db h) in
  Durable.close h;
  (* a crash mid-append: garbage after the last whole record *)
  let oc =
    open_out_gen
      [ Open_wronly; Open_append; Open_binary ]
      0o644
      (Filename.concat dir Durable.wal_basename)
  in
  output_string oc "\x40\x00\x00\x00 half a frame";
  close_out oc;
  let h2 = Durable.open_dir dir in
  let r = Durable.recovery h2 in
  check "torn tail detected" true (r.Durable.torn_tail_bytes > 0);
  check_int "durable records replayed" written r.Durable.replayed_records;
  check_string "torn tail dropped, state intact" want
    (Serialize.dump (Durable.db h2));
  Durable.close h2;
  (* recovery rewrote the log to its durable prefix *)
  let h3 = Durable.open_dir dir in
  check_int "log healed" 0 (Durable.recovery h3).Durable.torn_tail_bytes;
  check_int "same records" written
    (Durable.recovery h3).Durable.replayed_records;
  Durable.close h3

let test_snapshot_truncates () =
  in_tmp "snapshot" @@ fun dir ->
  let h = Durable.open_or_seed ~seed:Harness.seed_db dir in
  mutate (Durable.db h);
  let want = Serialize.dump (Durable.db h) in
  Durable.snapshot h;
  check_int "log truncated" 0 (Durable.wal_records h);
  Durable.close h;
  let h2 = Durable.open_dir dir in
  check_int "nothing to replay" 0 (Durable.recovery h2).Durable.replayed_records;
  check_string "snapshot carries the state" want
    (Serialize.dump (Durable.db h2));
  Durable.close h2

let test_snapshot_every () =
  in_tmp "snapshot-every" @@ fun dir ->
  let h = Durable.open_or_seed ~snapshot_every:3 ~seed:Harness.seed_db dir in
  let db = Durable.db h in
  for i = 1 to 7 do
    ignore
      (Database.insert_atom db ~atype:"part"
         [ Value.String (Printf.sprintf "p%d" i); Value.Int i; Value.List [] ])
  done;
  (* 7 inserts with a roll at every 3rd record: 1 left in the log *)
  check_int "auto-rolled" 1 (Durable.wal_records h);
  let want = Serialize.dump db in
  Durable.close h;
  let h2 = Durable.open_dir dir in
  check_int "replays only the tail" 1
    (Durable.recovery h2).Durable.replayed_records;
  check_string "converged" want (Serialize.dump (Durable.db h2));
  Durable.close h2

(* --- fault injection -------------------------------------------------- *)

let test_fail_append_is_clean () =
  in_tmp "fail-append" @@ fun dir ->
  let faults = Faults.create ~after:2 Faults.Fail_append in
  let h = Durable.open_or_seed ~faults ~seed:Harness.seed_db dir in
  let db = Durable.db h in
  let ins name =
    ignore
      (Database.insert_atom db ~atype:"part"
         [ Value.String name; Value.Int 1; Value.List [] ])
  in
  ins "a";
  ins "b";
  (* the third append fails cleanly: Mad_error, process survives *)
  (match ins "c" with
   | () -> Alcotest.fail "expected an injected append failure"
   | exception Err.Mad_error msg ->
     check "names the log" true (contains ~affix:Durable.wal_basename msg));
  check "plan fired" true (Faults.fired faults);
  ins "d" (* the plan fires once; later appends succeed *);
  Durable.close h;
  (* the un-logged mutation is simply not durable *)
  let h2 = Durable.open_dir dir in
  check_int "two records before, one after the failure" 3
    (Durable.recovery h2).Durable.replayed_records;
  let names =
    List.map
      (fun (a : Atom.t) ->
        match a.Atom.values.(0) with Value.String s -> s | _ -> "?")
      (Database.atoms (Durable.db h2) "part")
  in
  check "survivors logged" true
    (List.mem "a" names && List.mem "b" names && List.mem "d" names);
  check "failed append lost" false (List.mem "c" names);
  Durable.close h2

let test_crash_property seed =
  in_tmp (Printf.sprintf "harness-%d" seed) @@ fun dir ->
  let r = Harness.run ~seed ~ops:15 ~dir () in
  check "converged" true (Harness.converged r);
  check_int "every crash point plus the clean run"
    ((2 * r.Harness.records) + 1)
    r.Harness.scenarios;
  check "torn tails exercised" true (r.Harness.torn_recoveries > 0)

(* --- damaged state names its file ------------------------------------ *)

let test_recovery_errors_name_files () =
  in_tmp "damage" @@ fun dir ->
  let h = Durable.open_or_seed ~seed:Harness.seed_db dir in
  mutate (Durable.db h);
  Durable.close h;
  (* a whole, checksummed record whose payload is garbage is
     corruption, not a torn tail: recovery must refuse and say where *)
  let w =
    Wal.create ~truncate:false (Filename.concat dir Durable.wal_basename)
  in
  Wal.append w "frobnicate x";
  Wal.close w;
  (match Durable.open_dir dir with
   | _ -> Alcotest.fail "expected recovery failure on a corrupt record"
   | exception Err.Mad_error msg ->
     check "names wal.log" true (contains ~affix:Durable.wal_basename msg));
  (* a damaged snapshot is named too *)
  let oc = open_out (Filename.concat dir Durable.snapshot_basename) in
  output_string oc "frobnicate x y\n";
  close_out oc;
  match Durable.open_dir dir with
  | _ -> Alcotest.fail "expected recovery failure on a corrupt snapshot"
  | exception Err.Mad_error msg ->
    check "names snapshot.mad" true
      (contains ~affix:Durable.snapshot_basename msg)

(* --- queries never journal ------------------------------------------- *)

(* Query evaluation enlarges the database with derived result types
   (Propagate.prop, the atom algebra, molecule products).  All of that
   is scratch state rebuilt on demand — none of it may reach the WAL. *)
let test_queries_do_not_journal () =
  in_tmp "query-nolog" @@ fun dir ->
  let h = Durable.open_or_seed ~seed:Harness.seed_db dir in
  let before = Durable.wal_records h in
  let session = Mad_mql.Session.create (Durable.db h) in
  ignore
    (Mad_mql.Session.add_on_commit session (fun () -> Durable.commit h));
  ignore (Mad_mql.Session.run_to_string session "SELECT ALL FROM box-part;");
  ignore
    (Mad_mql.Session.run_to_string session
       "SELECT ALL FROM box-part WHERE part.weight >= 2;");
  check_int "queries journaled nothing" before (Durable.wal_records h);
  (* DML through the same session still journals *)
  ignore
    (Mad_mql.Session.run_to_string session "INSERT INTO box VALUES ('s', 1);");
  check_int "DML journaled one record" (before + 1) (Durable.wal_records h);
  Durable.close h;
  let h2 = Durable.open_dir dir in
  check_int "replay sees only the DML" (before + 1)
    (Durable.recovery h2).Durable.replayed_records;
  Durable.close h2

(* --- the learned-catalog file ---------------------------------------- *)

let test_catalog_roundtrip () =
  let db = Harness.seed_db () in
  let s = Prima.Stats.collect db in
  let s' = Prima.Catalog_io.of_string (Prima.Catalog_io.to_string s) in
  let module Smap = Prima.Stats.Smap in
  check "atom counts" true
    (Smap.equal ( = ) s.Prima.Stats.atom_counts s'.Prima.Stats.atom_counts);
  check "distinct" true
    (Smap.equal ( = ) s.Prima.Stats.distinct s'.Prima.Stats.distinct);
  check "link stats" true
    (Smap.equal ( = ) s.Prima.Stats.link_stats s'.Prima.Stats.link_stats);
  (* malformed input is located *)
  match Prima.Catalog_io.of_string "count part 3\nfrobnicate" with
  | _ -> Alcotest.fail "expected catalog parse failure"
  | exception Err.Mad_error msg ->
    check "names file and line" true
      (contains ~affix:"stats.mad: line 2" msg)

let suite =
  [
    Alcotest.test_case "WAL round-trip and append mode" `Quick
      test_wal_roundtrip;
    Alcotest.test_case "WAL torn tail" `Quick test_wal_torn_tail;
    Alcotest.test_case "WAL checksum corruption" `Quick
      test_wal_corrupt_record;
    Alcotest.test_case "log record codec round-trip" `Quick
      test_logrec_roundtrip;
    Alcotest.test_case "reopen replays the journal" `Quick test_reopen_replays;
    Alcotest.test_case "torn final record skipped" `Quick
      test_torn_final_record_skipped;
    Alcotest.test_case "snapshot truncates the log" `Quick
      test_snapshot_truncates;
    Alcotest.test_case "snapshot_every auto-rolls" `Quick test_snapshot_every;
    Alcotest.test_case "injected append failure is clean" `Quick
      test_fail_append_is_clean;
    Alcotest.test_case "crash recovery converges (seed 0)" `Quick (fun () ->
        test_crash_property 0);
    Alcotest.test_case "crash recovery converges (seed 3)" `Quick (fun () ->
        test_crash_property 3);
    Alcotest.test_case "recovery errors name their file" `Quick
      test_recovery_errors_name_files;
    Alcotest.test_case "queries never journal" `Quick
      test_queries_do_not_journal;
    Alcotest.test_case "learned catalog round-trip" `Quick
      test_catalog_roundtrip;
  ]
