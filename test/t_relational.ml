(* The relational baseline: algebra correctness, the MAD-to-relational
   transformation, and the equivalence of relational join plans with
   MAD molecule derivation. *)

open Mad_store
open Workloads
module R = Relational.Relation
module RA = Relational.Rel_algebra
module M = Relational.Mapping
module E = Relational.Emulate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let people () =
  let r =
    R.create "people"
      [ Schema.Attr.v "name" Domain.String; Schema.Attr.v "age" Domain.Int ]
  in
  List.iter
    (fun (n, a) -> R.insert_list r [ Value.String n; Value.Int a ])
    [ ("ann", 30); ("bob", 20); ("cec", 40); ("dan", 20) ];
  r

let test_set_semantics () =
  let r = people () in
  check_int "4 tuples" 4 (R.cardinality r);
  R.insert_list r [ Value.String "ann"; Value.Int 30 ];
  check_int "duplicate ignored" 4 (R.cardinality r)

let test_select_project () =
  let r = people () in
  let old = RA.select (fun t -> Value.compare_sem t.(1) (Value.Int 25) > 0) r in
  check_int "two older" 2 (R.cardinality old);
  let ages = RA.project [ "age" ] r in
  check_int "ages deduped" 3 (R.cardinality ages)

let test_union_diff () =
  let r = people () in
  let old = RA.select (fun t -> Value.compare_sem t.(1) (Value.Int 25) > 0) r in
  let young = RA.select (fun t -> Value.compare_sem t.(1) (Value.Int 25) <= 0) r in
  check_int "union back to all" 4 (R.cardinality (RA.union old young));
  check_int "difference" 2 (R.cardinality (RA.diff r old));
  check_int "intersect" 0 (R.cardinality (RA.intersect old young))

let test_joins_agree () =
  let l =
    R.create "l" [ Schema.Attr.v "k" Domain.Int; Schema.Attr.v "a" Domain.String ]
  in
  let r =
    R.create "r" [ Schema.Attr.v "k2" Domain.Int; Schema.Attr.v "b" Domain.String ]
  in
  List.iter
    (fun (k, a) -> R.insert_list l [ Value.Int k; Value.String a ])
    [ (1, "x"); (2, "y"); (3, "z"); (2, "y2") ];
  List.iter
    (fun (k, b) -> R.insert_list r [ Value.Int k; Value.String b ])
    [ (2, "u"); (3, "v"); (3, "w"); (9, "q") ];
  let h = RA.hash_join l r ~lkey:"k" ~rkey:"k2" in
  let n =
    RA.nl_join (fun t1 t2 -> Value.equal_sem t1.(0) t2.(0)) l r
  in
  let m = RA.merge_join l r ~lkey:"k" ~rkey:"k2" in
  check_int "hash join size" 4 (R.cardinality h);
  let same a b =
    List.equal
      (fun x y -> List.compare Value.compare (Array.to_list x) (Array.to_list y) = 0)
      (R.sorted_tuples a) (R.sorted_tuples b)
  in
  check "hash = nested loop" true (same h n);
  check "merge = hash" true (same m h)

let test_semi_join () =
  let l = R.create "l" [ Schema.Attr.v "k" Domain.Int ] in
  let r = R.create "r" [ Schema.Attr.v "k" Domain.Int ] in
  List.iter (fun k -> R.insert_list l [ Value.Int k ]) [ 1; 2; 3 ];
  List.iter (fun k -> R.insert_list r [ Value.Int k ]) [ 2; 3; 4 ];
  check_int "semijoin" 2 (R.cardinality (RA.semi_join l r ~lkey:"k" ~rkey:"k"))

let test_mapping_shapes () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let map = M.of_database db in
  (* 7 entity relations + 6 auxiliary link relations *)
  check_int "13 relations" 13 (List.length (M.relation_names map));
  check_int "6 auxiliary relations" 6 (M.auxiliary_count db map);
  let st = M.relation map "state" in
  check_int "id column added" 3 (R.arity st);
  check_int "state rows" 10 (R.cardinality st);
  let ae = M.relation map "area-edge" in
  check_int "area-edge rows" (Database.count_links db "area-edge")
    (R.cardinality ae)

let test_mapping_inline_1n () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let map = M.of_database ~inline_1n:true db in
  (* state-area, river-net (1:1) and city-point (n:1) inline; the three
     n:m stay auxiliary *)
  check_int "3 auxiliary relations" 3 (M.auxiliary_count db map);
  check "city holds fk" true
    (List.exists
       (fun a -> String.length a > 3 && String.sub a (String.length a - 3) 3 = "_fk")
       (R.attr_names (M.relation map "city"))
     || List.exists
          (fun a -> String.length a > 3 && String.sub a (String.length a - 3) 3 = "_fk")
          (R.attr_names (M.relation map "area")))

let components_equal (m : Mad.Molecule.t) comps desc =
  List.for_all
    (fun node ->
      let mad_set = Mad.Molecule.component m node in
      let rel_set =
        Option.value ~default:Aid.Set.empty
          (Relational.Emulate.Smap.find_opt node comps)
      in
      (* the relational frontier for the root includes the root *)
      Aid.Set.equal mad_set rel_set)
    (Mad.Mdesc.nodes desc)

let test_emulation_matches_mad () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in
  let map = M.of_database db in
  let mad_occ = Mad.Derive.m_dom db desc in
  let rel_occ = E.derive map db desc in
  check_int "same molecule count" (List.length mad_occ) (List.length rel_occ);
  List.iter2
    (fun (m : Mad.Molecule.t) (root, comps) ->
      check "same root" true (Aid.equal m.Mad.Molecule.root root);
      check "same components" true (components_equal m comps desc))
    mad_occ rel_occ

let test_emulation_matches_mad_diamond () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.point_neighborhood_desc brazil in
  let map = M.of_database db in
  let mad_occ = Mad.Derive.m_dom db desc in
  let rel_occ = E.derive map db desc in
  List.iter2
    (fun (m : Mad.Molecule.t) (root, comps) ->
      check "same root" true (Aid.equal m.Mad.Molecule.root root);
      check "same components" true (components_equal m comps desc))
    mad_occ rel_occ

let test_flat_join_blowup () =
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in
  let map = M.of_database db in
  let flat = E.flat_join map db desc in
  (* each state: 1 area x 4 edges x 2 points = 8 rows *)
  check_int "80 flat rows" 80 (R.cardinality flat);
  (* versus 10 molecules over 10+10+27+18 distinct atoms *)
  check "redundant" true (R.cardinality flat > Database.count_atoms db "state")

let test_relational_work_exceeds_mad () =
  (* the paper's efficiency claim, in counters: deriving all state
     molecules costs the relational engine more tuple work than the MAD
     engine costs link traversals *)
  let brazil = Geo_brazil.build () in
  let db = Geo_brazil.db brazil in
  let desc = Geo_brazil.mt_state_desc brazil in
  let map = M.of_database db in
  let rstats = RA.stats () in
  ignore (E.derive ~stats:rstats map db desc);
  let mstats = Mad.Derive.stats () in
  ignore (Mad.Derive.m_dom ~stats:mstats db desc);
  check "relational scans more" true
    (rstats.RA.tuples_scanned > Mad.Derive.links_traversed mstats)

let suite =
  [
    Alcotest.test_case "set semantics" `Quick test_set_semantics;
    Alcotest.test_case "select/project" `Quick test_select_project;
    Alcotest.test_case "union/diff" `Quick test_union_diff;
    Alcotest.test_case "hash join = nested loop" `Quick test_joins_agree;
    Alcotest.test_case "semi join" `Quick test_semi_join;
    Alcotest.test_case "MAD->relational mapping" `Quick test_mapping_shapes;
    Alcotest.test_case "1:n inlining" `Quick test_mapping_inline_1n;
    Alcotest.test_case "join plan = MAD derivation (path)" `Quick
      test_emulation_matches_mad;
    Alcotest.test_case "join plan = MAD derivation (diamond)" `Quick
      test_emulation_matches_mad_diamond;
    Alcotest.test_case "flat join blowup" `Quick test_flat_join_blowup;
    Alcotest.test_case "relational work exceeds MAD" `Quick
      test_relational_work_exceeds_mad;
  ]
