(* Molecule-type descriptions and the md_graph predicate (Def. 5):
   validation diagnostics, topological order, induced sub-structures. *)

open Mad_store
open Workloads

let check = Alcotest.(check bool)

let expect_invalid db ~nodes ~edges msg_part =
  match Mad.Mdesc.v db ~nodes ~edges with
  | _ -> Alcotest.failf "expected invalid structure (%s)" msg_part
  | exception Err.Mad_error m ->
    if
      not
        (let nh = String.length m and nn = String.length msg_part in
         let rec go i = i + nn <= nh && (String.sub m i nn = msg_part || go (i + 1)) in
         nn = 0 || go 0)
    then Alcotest.failf "diagnostic %S does not mention %S" m msg_part

let brazil_db () = Geo_brazil.db (Geo_brazil.build ())

let test_valid_structures () =
  let db = brazil_db () in
  let d = Geo_schema.mt_state_desc db in
  Alcotest.(check string) "root" "state" (Mad.Mdesc.root d);
  Alcotest.(check (list string))
    "topological order"
    [ "state"; "area"; "edge"; "point" ]
    (Mad.Mdesc.topo_order d);
  let pn = Geo_schema.point_neighborhood_desc db in
  Alcotest.(check string) "pn root" "point" (Mad.Mdesc.root pn)

let test_rejects_cycle () =
  let db = brazil_db () in
  expect_invalid db
    ~nodes:[ "area"; "edge" ]
    ~edges:[ ("area-edge", "area", "edge"); ("area-edge", "edge", "area") ]
    "cyclic"

let test_rejects_incoherent () =
  let db = brazil_db () in
  expect_invalid db
    ~nodes:[ "state"; "area"; "net"; "river" ]
    ~edges:[ ("state-area", "state", "area"); ("river-net", "river", "net") ]
    "coherent"

let test_rejects_multiple_roots () =
  (* two sources pointing at the same sink *)
  let db = brazil_db () in
  expect_invalid db
    ~nodes:[ "area"; "net"; "edge" ]
    ~edges:[ ("area-edge", "area", "edge"); ("net-edge", "net", "edge") ]
    "multiple root"

let test_rejects_unknown_link_or_type () =
  let db = brazil_db () in
  (match
     Mad.Mdesc.v db ~nodes:[ "state"; "area" ]
       ~edges:[ ("nolink", "state", "area") ]
   with
  | _ -> Alcotest.fail "unknown link accepted"
  | exception Err.Mad_error _ -> ());
  match
    Mad.Mdesc.v db ~nodes:[ "nostate" ] ~edges:[]
  with
  | _ -> Alcotest.fail "unknown type accepted"
  | exception Err.Mad_error _ -> ()

let test_rejects_wrong_link_endpoints () =
  let db = brazil_db () in
  expect_invalid db
    ~nodes:[ "state"; "edge" ]
    ~edges:[ ("area-edge", "state", "edge") ]
    "connects"

let test_rejects_reflexive () =
  let bom = Bom_gen.build Bom_gen.default in
  expect_invalid bom.Bom_gen.db ~nodes:[ "part" ]
    ~edges:[ ("composition", "part", "part") ]
    "reflexive"

let test_single_node_structure () =
  let db = brazil_db () in
  let d = Mad.Mdesc.v db ~nodes:[ "state" ] ~edges:[] in
  Alcotest.(check string) "its own root" "state" (Mad.Mdesc.root d)

let test_direction_inference () =
  let db = brazil_db () in
  (* same link type used top-down in mt_state and bottom-up in the
     point neighborhood: orientations must differ *)
  let top = Geo_schema.mt_state_desc db in
  let bottom = Geo_schema.point_neighborhood_desc db in
  let dir_of d link =
    (List.find (fun (e : Mad.Mdesc.edge) -> String.equal e.link link)
       (Mad.Mdesc.edges d))
      .dir
  in
  check "area-edge fwd in mt_state" true (dir_of top "area-edge" = `Fwd);
  check "area-edge bwd in pn" true (dir_of bottom "area-edge" = `Bwd)

let test_induced () =
  let db = brazil_db () in
  let d = Geo_schema.mt_state_desc db in
  let sub = Mad.Mdesc.induced d [ "state"; "area" ] in
  Alcotest.(check (list string)) "nodes" [ "state"; "area" ] (Mad.Mdesc.nodes sub);
  (* dropping the middle disconnects *)
  (match Mad.Mdesc.induced d [ "state"; "edge"; "point" ] with
  | _ -> Alcotest.fail "disconnected projection accepted"
  | exception Err.Mad_error _ -> ());
  (* dropping the root re-roots: rejected *)
  match Mad.Mdesc.induced d [ "area"; "edge"; "point" ] with
  | _ -> Alcotest.fail "root change accepted"
  | exception Err.Mad_error _ -> ()

let suite =
  [
    Alcotest.test_case "valid structures" `Quick test_valid_structures;
    Alcotest.test_case "rejects cycle" `Quick test_rejects_cycle;
    Alcotest.test_case "rejects incoherent" `Quick test_rejects_incoherent;
    Alcotest.test_case "rejects multiple roots" `Quick
      test_rejects_multiple_roots;
    Alcotest.test_case "rejects unknown names" `Quick
      test_rejects_unknown_link_or_type;
    Alcotest.test_case "rejects wrong endpoints" `Quick
      test_rejects_wrong_link_endpoints;
    Alcotest.test_case "rejects reflexive links" `Quick test_rejects_reflexive;
    Alcotest.test_case "single-node structure" `Quick
      test_single_node_structure;
    Alcotest.test_case "direction inference" `Quick test_direction_inference;
    Alcotest.test_case "induced sub-structure" `Quick test_induced;
  ]
