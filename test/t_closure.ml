(* Closure corner cases: the Def. 9 exactness check and its
   per-molecule-copies fallback, operator chains over enlarged
   databases, and closure after X. *)

open Mad_store
module MA = Mad.Molecule_algebra
module MT = Mad.Molecule_type

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The diamond that breaks shared propagation of a projection:
     r -> x, r -> y, x -> z, y -> z
   with two molecules m1 (root r1) and m2 (root r2) sharing a y atom,
   where a z atom belongs to m2 only (its x-parent is in m2).  After
   projecting away x, re-derivation over shared propagated types would
   grow m1 by that z atom (the x-constraint is gone and the shared y
   supplies a link); the fallback must kick in. *)
let diamond_db () =
  let db = Database.create () in
  List.iter
    (fun n ->
      ignore (Database.declare_atom_type db n [ Schema.Attr.v "v" Domain.Int ]))
    [ "r"; "x"; "y"; "z" ];
  ignore (Database.declare_link_type db "rx" ("r", "x"));
  ignore (Database.declare_link_type db "ry" ("r", "y"));
  ignore (Database.declare_link_type db "xz" ("x", "z"));
  ignore (Database.declare_link_type db "yz" ("y", "z"));
  let atom t v = (Database.insert_atom db ~atype:t [ Value.Int v ]).Atom.id in
  let r1 = atom "r" 1 and r2 = atom "r" 2 in
  let x1 = atom "x" 1 and x2 = atom "x" 2 in
  let y = atom "y" 1 in
  (* y shared by both molecules *)
  let z1 = atom "z" 1 and z2 = atom "z" 2 in
  Database.add_link db "rx" ~left:r1 ~right:x1;
  Database.add_link db "rx" ~left:r2 ~right:x2;
  Database.add_link db "ry" ~left:r1 ~right:y;
  Database.add_link db "ry" ~left:r2 ~right:y;
  Database.add_link db "xz" ~left:x1 ~right:z1;
  Database.add_link db "xz" ~left:x2 ~right:z2;
  Database.add_link db "yz" ~left:y ~right:z1;
  Database.add_link db "yz" ~left:y ~right:z2;
  (db, r1, r2, z1, z2)

let desc_of db =
  Mad.Mdesc.v db ~nodes:[ "r"; "x"; "y"; "z" ]
    ~edges:[ ("rx", "r", "x"); ("ry", "r", "y"); ("xz", "x", "z"); ("yz", "y", "z") ]

let test_projection_triggers_copy_fallback () =
  let db, r1, _, z1, z2 = diamond_db () in
  let mt = MA.define db ~name:"dia" (desc_of db) in
  check_int "two molecules" 2 (MT.cardinality mt);
  (* m1 holds z1 only, m2 holds z2 only (each z has one x-parent) *)
  let m1 =
    match MT.find_by_root mt r1 with Some m -> m | None -> assert false
  in
  check "m1 has z1" true (Aid.Set.mem z1 (Mad.Molecule.component m1 "z"));
  check "m1 lacks z2" false (Aid.Set.mem z2 (Mad.Molecule.component m1 "z"));
  (* project away x: the diamond constraint disappears *)
  let proj = MA.project db [ ("r", None); ("y", None); ("z", None) ] mt in
  (match proj.MT.materialized with
   | None -> Alcotest.fail "projection must propagate"
   | Some m ->
     check "fallback to per-molecule copies" true (m.MT.strategy = `Copied);
     check "still exact (Def. 9)" true
       (Mad.Propagate.exact db m.MT.mdesc m.MT.mocc));
  (* the projected occurrence itself is unchanged in content *)
  check_int "still two molecules" 2 (MT.cardinality proj);
  let p1 =
    match MT.find_by_root proj r1 with Some m -> m | None -> assert false
  in
  check "projection kept m1's z only" true
    (Aid.Set.equal (Mad.Molecule.component p1 "z") (Aid.Set.singleton z1));
  check "closure report clean" true
    (Mad.Closure.ok (Mad.Closure.check_molecule_type db proj))

let test_sigma_stays_shared_on_diamond () =
  (* restriction of the same diamond keeps maximality, so shared
     propagation remains exact *)
  let db, _, _, _, _ = diamond_db () in
  let mt = MA.define db ~name:"dia2" (desc_of db) in
  let s = MA.restrict db Mad.Qual.(attr "r" "v" =% int 1) mt in
  match s.MT.materialized with
  | Some m -> check "shared suffices for Sigma" true (m.MT.strategy = `Shared)
  | None -> Alcotest.fail "expected materialization"

let test_product_result_is_derivable () =
  (* X output is an ordinary molecule type: define over the enlarged
     database and compare *)
  let db, _, _, _, _ = diamond_db () in
  let mt = MA.define db ~name:"dia3" (desc_of db) in
  let x = MA.product ~name:"xx" db mt mt in
  check_int "2x2 pairs" 4 (MT.cardinality x);
  let re = MA.define db ~name:"re_x" (MT.desc x) in
  check "re-derivation gives the same occurrence" true
    (Mad.Molecule.Set.equal (MT.molecule_set x) (MT.molecule_set re))

let test_operator_chain_over_propagated_types () =
  (* keep operating on materialized results: Σ over the propagated type
     of a previous Σ, three levels deep *)
  let b = Workloads.Geo_brazil.build () in
  let db = Workloads.Geo_brazil.db b in
  let mt = MA.define db ~name:"c0" (Workloads.Geo_brazil.mt_state_desc b) in
  let s1 = MA.restrict db Mad.Qual.(attr "state" "hectare" >=% int 400) mt in
  let m1 = Option.get s1.MT.materialized in
  let mt1 = MA.define db ~name:"c1" m1.MT.mdesc in
  check_int "as many molecules as s1" (MT.cardinality s1) (MT.cardinality mt1);
  (* the propagated root type name differs; restrict on it *)
  let root1 = Mad.Mdesc.root m1.MT.mdesc in
  let s2 = MA.restrict db Mad.Qual.(attr root1 "hectare" >=% int 900) mt1 in
  let m2 = Option.get s2.MT.materialized in
  let mt2 = MA.define db ~name:"c2" m2.MT.mdesc in
  check_int "four states at >=900" 4 (MT.cardinality mt2);
  check "integrity after three levels" true (Integrity.is_valid db)

let test_atom_op_chain_closure () =
  (* Theorem 1 chains: op results feed further ops indefinitely *)
  let b = Workloads.Geo_brazil.build () in
  let db = Workloads.Geo_brazil.db b in
  let module AA = Mad.Atom_algebra in
  let r1 =
    AA.restrict db ~name:"t1"
      ~pred:Mad.Qual.(attr "state" "hectare" >% int 300)
      "state"
  in
  let r2 = AA.project db ~name:"t2" ~attrs:[ "name" ] "t1" in
  let r3 = AA.product db ~name:"t3" "t2" "river" in
  let r4 =
    AA.restrict db ~name:"t4"
      ~pred:Mad.Qual.(attr "t3" "length" >% int 2000)
      "t3"
  in
  List.iter
    (fun r ->
      check "closure" true (Mad.Closure.ok (Mad.Closure.check_atom_result db r)))
    [ r1; r2; r3; r4 ];
  (* 8 states > 300 ha x 2 rivers longer than 2000 *)
  check_int "chained result" 16 (Database.count_atoms db "t4")

let suite =
  [
    Alcotest.test_case "projection triggers copy fallback (Def. 9)" `Quick
      test_projection_triggers_copy_fallback;
    Alcotest.test_case "sigma stays shared on diamond" `Quick
      test_sigma_stays_shared_on_diamond;
    Alcotest.test_case "X result derivable" `Quick
      test_product_result_is_derivable;
    Alcotest.test_case "operator chain over propagated types" `Quick
      test_operator_chain_over_propagated_types;
    Alcotest.test_case "atom-op chain closure (Thm 1)" `Quick
      test_atom_op_chain_closure;
  ]
