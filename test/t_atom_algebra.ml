(* The atom-type algebra (Def. 4, Theorem 1): π σ × ω δ with link-type
   inheritance, compared point-for-point with the paper's relational
   'equivalents'. *)

open Mad_store
open Workloads
module AA = Mad.Atom_algebra

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let brazil_db () = Geo_brazil.db (Geo_brazil.build ())

let test_projection () =
  let db = brazil_db () in
  let r = AA.project db ~name:"state_names" ~attrs:[ "name" ] "state" in
  check_int "ten names" 10 (Database.count_atoms db "state_names");
  check_int "one attribute" 1 (Schema.Atom_type.arity r.AA.at);
  check "closure (Thm 1)" true (Mad.Closure.ok (Mad.Closure.check_atom_result db r))

let test_projection_dedupes () =
  let db = brazil_db () in
  (* all edges have length 1: projecting onto length yields one atom *)
  let r = AA.project db ~name:"edge_lengths" ~attrs:[ "length" ] "edge" in
  check_int "single distinct value" 1 (Database.count_atoms db "edge_lengths");
  (* provenance collects every source atom *)
  let _, srcs = Aid.Map.min_binding r.AA.provenance in
  check_int "all edges behind it" (Database.count_atoms db "edge")
    (List.length srcs)

let test_restriction_matches_relational_sigma () =
  let db = brazil_db () in
  let r =
    AA.restrict db ~name:"big"
      ~pred:Mad.Qual.(attr "state" "hectare" >% int 1000)
      "state"
  in
  (* SP 2000, RS 1500 *)
  check_int "two states" 2 (Database.count_atoms db "big");
  check "closure" true (Mad.Closure.ok (Mad.Closure.check_atom_result db r))

let test_product_inherits_links () =
  (* the paper's example: x(area, edge) = border, inheriting all link
     types of both operands; the result is reusable *)
  let db = brazil_db () in
  let r = AA.product db ~name:"border" "area" "edge" in
  check_int "|area| * |edge|"
    (Database.count_atoms db "area" * Database.count_atoms db "edge")
    (Database.count_atoms db "border");
  (* inherited link types: area's (state-area, area-edge) + edge's
     (area-edge, net-edge, edge-point) *)
  check_int "five inherited link types" 5 (List.length r.AA.inherited);
  (* the inherited state-area link type connects border atoms to states *)
  let st_lt =
    List.find (fun (orig, _) -> String.equal orig "state-area") r.AA.inherited
  in
  let lt : Schema.Link_type.t = snd st_lt in
  check "end replaced by result type" true
    (String.equal (snd lt.ends) "border" || String.equal (fst lt.ends) "border");
  check "closure" true (Mad.Closure.ok (Mad.Closure.check_atom_result db r))

let test_restriction_after_product () =
  (* σ[hectare>1000](border) chains on the inherited structures *)
  let db = brazil_db () in
  let _ = AA.product db ~name:"border2" "state" "area" in
  let r =
    AA.restrict db ~name:"big_border"
      ~pred:Mad.Qual.(attr "border2" "hectare" >% int 1000)
      "border2"
  in
  (* 2 big states x 10 areas *)
  check_int "restricted product" 20 (Database.count_atoms db "big_border");
  check "closure" true (Mad.Closure.ok (Mad.Closure.check_atom_result db r))

let test_union_requires_same_description () =
  let db = brazil_db () in
  match AA.union db ~name:"bad" "state" "edge" with
  | _ -> Alcotest.fail "union of different descriptions must fail"
  | exception Err.Mad_error _ -> ()

let test_union_and_difference () =
  let db = brazil_db () in
  ignore
    (AA.restrict db ~name:"big3"
       ~pred:Mad.Qual.(attr "state" "hectare" >% int 900)
       "state");
  ignore
    (AA.restrict db ~name:"small3"
       ~pred:Mad.Qual.(attr "state" "hectare" <=% int 900)
       "state");
  let u = AA.union db ~name:"all3" "big3" "small3" in
  check_int "union is whole extension" 10 (Database.count_atoms db "all3");
  let d = AA.diff db ~name:"not_big" "all3" "big3" in
  check_int "difference" 7 (Database.count_atoms db "not_big");
  check "closure u" true (Mad.Closure.ok (Mad.Closure.check_atom_result db u));
  check "closure d" true (Mad.Closure.ok (Mad.Closure.check_atom_result db d))

let test_union_dedupes_by_value () =
  let db = Database.create () in
  ignore (Database.declare_atom_type db "a" [ Schema.Attr.v "n" Domain.Int ]);
  ignore (Database.declare_atom_type db "b" [ Schema.Attr.v "n" Domain.Int ]);
  List.iter
    (fun n -> ignore (Database.insert_atom db ~atype:"a" [ Value.Int n ]))
    [ 1; 2 ];
  List.iter
    (fun n -> ignore (Database.insert_atom db ~atype:"b" [ Value.Int n ]))
    [ 2; 3 ];
  ignore (AA.union db ~name:"u" "a" "b");
  check_int "set union" 3 (Database.count_atoms db "u")

let test_derived_type_usable_in_molecule () =
  (* Theorem 1's point: results feed molecule operations.  Restrict the
     states, then derive mt_state over the restricted type via the
     inherited link type. *)
  let db = brazil_db () in
  let r =
    AA.restrict db ~name:"bigst"
      ~pred:Mad.Qual.(attr "state" "hectare" >% int 900)
      "state"
  in
  let inherited_sa =
    List.assoc "state-area" r.AA.inherited
  in
  let desc =
    Mad.Mdesc.v db
      ~nodes:[ "bigst"; "area"; "edge"; "point" ]
      ~edges:
        [
          (inherited_sa.Schema.Link_type.name, "bigst", "area");
          ("area-edge", "area", "edge");
          ("edge-point", "edge", "point");
        ]
  in
  let mt = Mad.Molecule_algebra.define db ~name:"big_mt_state" desc in
  check_int "three molecules" 3 (Mad.Molecule_type.cardinality mt);
  List.iter
    (fun m -> check "spec holds" true (Mad.Molecule.mv_graph db desc m))
    (Mad.Molecule_type.occ mt)

let suite =
  [
    Alcotest.test_case "projection" `Quick test_projection;
    Alcotest.test_case "projection dedupes (set semantics)" `Quick
      test_projection_dedupes;
    Alcotest.test_case "restriction = relational sigma" `Quick
      test_restriction_matches_relational_sigma;
    Alcotest.test_case "product inherits links (border example)" `Quick
      test_product_inherits_links;
    Alcotest.test_case "restriction after product" `Quick
      test_restriction_after_product;
    Alcotest.test_case "union type mismatch rejected" `Quick
      test_union_requires_same_description;
    Alcotest.test_case "union and difference" `Quick test_union_and_difference;
    Alcotest.test_case "union dedupes by value" `Quick
      test_union_dedupes_by_value;
    Alcotest.test_case "derived type usable in molecule (Thm 1)" `Quick
      test_derived_type_usable_in_molecule;
  ]
