(* Recursive molecule types over the reflexive composition link type
   (ch. 5 outlook, [Schö89]): parts explosion, where-used, depth
   bounds, cycle termination. *)

open Mad_store
open Workloads
module R = Mad_recursive.Recursive

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_explosion_equals_reference () =
  let bom = Bom_gen.build Bom_gen.default in
  let d = R.v bom.Bom_gen.db ~root_type:"part" ~link:"composition" () in
  let occ = R.m_dom bom.Bom_gen.db d in
  check_int "one molecule per part"
    (Database.count_atoms bom.Bom_gen.db "part")
    (List.length occ);
  List.iter
    (fun (m : R.molecule) ->
      let expected = Bom_gen.explosion_reference bom m.R.root in
      check "members = transitive closure" true
        (Aid.Set.equal m.R.members expected))
    occ

let test_where_used_equals_reference () =
  let bom = Bom_gen.build Bom_gen.default in
  let d =
    R.v bom.Bom_gen.db ~root_type:"part" ~link:"composition" ~view:R.Super ()
  in
  List.iter
    (fun (m : R.molecule) ->
      check "members = reverse closure" true
        (Aid.Set.equal m.R.members (Bom_gen.where_used_reference bom m.R.root)))
    (R.m_dom bom.Bom_gen.db d)

let test_sub_and_super_are_converses () =
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  let sub = R.m_dom db (R.v db ~root_type:"part" ~link:"composition" ()) in
  let super =
    R.m_dom db (R.v db ~root_type:"part" ~link:"composition" ~view:R.Super ())
  in
  let mem occ root x =
    let m = List.find (fun (m : R.molecule) -> Aid.equal m.R.root root) occ in
    Aid.Set.mem x m.R.members
  in
  (* y in explosion(x) iff x in where-used(y): the symmetric link pair *)
  List.iter
    (fun (m : R.molecule) ->
      Aid.Set.iter
        (fun y -> check "converse" true (mem super y m.R.root))
        m.R.members)
    sub

let test_depth_bound () =
  let bom =
    Bom_gen.build { Bom_gen.default with Bom_gen.depth = 5; share = 0.0 }
  in
  let db = bom.Bom_gen.db in
  let root = bom.Bom_gen.levels.(0).(0) in
  let at_depth k =
    let d = R.v db ~root_type:"part" ~link:"composition" ~max_depth:k () in
    (R.derive_one db d root).R.members
  in
  check_int "depth 0 = root only" 1 (Aid.Set.cardinal (at_depth 0));
  check "monotone in depth" true
    (Aid.Set.subset (at_depth 1) (at_depth 2)
     && Aid.Set.subset (at_depth 2) (at_depth 3));
  let full =
    (R.derive_one db (R.v db ~root_type:"part" ~link:"composition" ()) root)
      .R.members
  in
  check "large depth = full closure" true
    (Aid.Set.equal (at_depth 100) full)

let test_cycle_terminates () =
  (* a cyclic composition: a -> b -> c -> a.  Data cycles must not
     diverge; the closure is the whole cycle from any root. *)
  let db = Database.create () in
  Bom_gen.define_schema db;
  let part name =
    (Database.insert_atom db ~atype:"part"
       [ Value.String name; Value.Int 0; Value.Int 1 ])
      .id
  in
  let a = part "a" and b = part "b" and c = part "c" in
  Database.add_link db "composition" ~left:a ~right:b;
  Database.add_link db "composition" ~left:b ~right:c;
  Database.add_link db "composition" ~left:c ~right:a;
  let d = R.v db ~root_type:"part" ~link:"composition" () in
  let m = R.derive_one db d a in
  check_int "whole cycle" 3 (Aid.Set.cardinal m.R.members);
  (* rendering terminates and marks the cycle *)
  let rendered = Format.asprintf "%a" (R.pp_molecule db { R.name = "t"; desc = d; occ = [ m ] }) m in
  check "cycle marked" true
    (String.length rendered > 0)

let test_depth_of_is_shortest () =
  let db = Database.create () in
  Bom_gen.define_schema db;
  let part name =
    (Database.insert_atom db ~atype:"part"
       [ Value.String name; Value.Int 0; Value.Int 1 ])
      .id
  in
  (* a -> b -> d and a -> d : d reachable at depth 1 and 2 *)
  let a = part "a" and b = part "b" and d_ = part "d" in
  Database.add_link db "composition" ~left:a ~right:b;
  Database.add_link db "composition" ~left:b ~right:d_;
  Database.add_link db "composition" ~left:a ~right:d_;
  let d = R.v db ~root_type:"part" ~link:"composition" () in
  let m = R.derive_one db d a in
  check_int "shortest depth" 1 (Aid.Map.find d_ m.R.depth_of)

let test_restrict_by_depth_pseudo_attr () =
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  let t = R.define db ~name:"expl" (R.v db ~root_type:"part" ~link:"composition" ()) in
  (* the root node is pre-bound, so member-level conditions use an
     explicit quantifier *)
  let restricted =
    R.restrict db
      Mad.Qual.(Exists ("part", attr "part" "DEPTH" >=% int 2))
      t ~name:"deep"
  in
  (* keeps molecules that reach at least depth 2 *)
  check "some survive" true (List.length restricted.R.occ > 0);
  check "fewer than all" true
    (List.length restricted.R.occ < List.length t.R.occ)

let test_with_component_structure () =
  (* Schöning's full recursive molecule types: each part of the
     explosion expands its supplier sub-structure *)
  let db = Database.create () in
  Bom_gen.define_schema db;
  ignore
    (Database.declare_atom_type db "supplier"
       [ Schema.Attr.v "sname" Domain.String ]);
  ignore (Database.declare_link_type db "part-supplier" ("part", "supplier"));
  let part name =
    (Database.insert_atom db ~atype:"part"
       [ Value.String name; Value.Int 0; Value.Int 1 ])
      .id
  in
  let supplier name =
    (Database.insert_atom db ~atype:"supplier" [ Value.String name ]).id
  in
  let a = part "a" and b = part "b" and c = part "c" in
  let acme = supplier "acme" and bolt = supplier "boltco" in
  Database.add_link db "composition" ~left:a ~right:b;
  Database.add_link db "composition" ~left:b ~right:c;
  Database.add_link db "part-supplier" ~left:a ~right:acme;
  Database.add_link db "part-supplier" ~left:c ~right:bolt;
  let cdesc =
    Mad.Mdesc.v db ~nodes:[ "part"; "supplier" ]
      ~edges:[ ("part-supplier", "part", "supplier") ]
  in
  let d =
    R.v db ~root_type:"part" ~link:"composition" ~component:cdesc ()
  in
  let m = R.derive_one db d a in
  check_int "three members" 3 (Aid.Set.cardinal m.R.members);
  check_int "component per member" 3 (Aid.Map.cardinal m.R.components);
  let sub_of id = Aid.Map.find id m.R.components in
  check "a supplied by acme" true
    (Aid.Set.mem acme (Mad.Molecule.component (sub_of a) "supplier"));
  check "b has no supplier" true
    (Aid.Set.is_empty (Mad.Molecule.component (sub_of b) "supplier"));
  (* restriction over the component node *)
  let t = R.define db ~name:"expl" d in
  let restricted =
    R.restrict db
      Mad.Qual.(Exists ("supplier", attr "supplier" "sname" =% str "boltco"))
      t ~name:"r"
  in
  (* boltco supplies c, which is in the closure of a, b and c *)
  check_int "three qualifying roots" 3 (List.length restricted.R.occ);
  let none =
    R.restrict db
      Mad.Qual.(Exists ("supplier", attr "supplier" "sname" =% str "acme"))
      t ~name:"r2"
  in
  (* acme supplies a only; a is in its own closure only *)
  check_int "one qualifying root" 1 (List.length none.R.occ)

let test_with_component_validation () =
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  (* component rooted elsewhere rejected: build one rooted at a
     different type *)
  ignore
    (Database.declare_atom_type db "warehouse"
       [ Schema.Attr.v "wname" Domain.String ]);
  ignore (Database.declare_link_type db "stocked" ("warehouse", "part"));
  let bad =
    Mad.Mdesc.v db ~nodes:[ "warehouse"; "part" ]
      ~edges:[ ("stocked", "warehouse", "part") ]
  in
  match R.v db ~root_type:"part" ~link:"composition" ~component:bad () with
  | _ -> Alcotest.fail "component rooted elsewhere must be rejected"
  | exception Err.Mad_error _ -> ()

let test_with_via_mql () =
  let design = Vlsi_gen.build Vlsi_gen.default in
  let s = Mad_mql.Session.create design.Vlsi_gen.db in
  match
    Mad_mql.Session.run s
      "SELECT ALL FROM cell RECURSIVE BY instantiates WITH cell-pin WHERE \
       cell.cname = 'TOP';"
  with
  | Mad_mql.Session.Result (Mad_mql.Translate.Recursive r) ->
    check_int "one molecule" 1 (List.length r.R.occ);
    let m = List.hd r.R.occ in
    (* every member cell carries its pins *)
    check "components populated" true (Aid.Map.cardinal m.R.components > 0);
    let total_pins =
      Aid.Map.fold
        (fun _ sub acc ->
          acc + Aid.Set.cardinal (Mad.Molecule.component sub "pin"))
        m.R.components 0
    in
    check "pins reached through the recursion" true (total_pins > 0)
  | _ -> Alcotest.fail "expected recursive result"

let test_recursive_set_ops () =
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  let t = R.define db ~name:"all" (R.v db ~root_type:"part" ~link:"composition" ()) in
  let deep =
    R.restrict db
      Mad.Qual.(Exists ("part", attr "part" "DEPTH" >=% int 2))
      t ~name:"deep"
  in
  let shallow = R.diff ~name:"shallow" t deep in
  check_int "partition" (List.length t.R.occ)
    (List.length deep.R.occ + List.length shallow.R.occ);
  let u = R.union ~name:"u" deep shallow in
  check_int "union restores" (List.length t.R.occ) (List.length u.R.occ);
  check_int "intersection of partition empty" 0
    (List.length (R.intersect ~name:"i" deep shallow).R.occ);
  (* incompatible descs rejected *)
  let super = R.define db ~name:"sup" (R.v db ~root_type:"part" ~link:"composition" ~view:R.Super ()) in
  match R.union ~name:"bad" t super with
  | _ -> Alcotest.fail "incompatible recursive union must fail"
  | exception Err.Mad_error _ -> ()

let test_recursive_set_ops_via_mql () =
  let bom = Bom_gen.build Bom_gen.default in
  let s = Mad_mql.Session.create bom.Bom_gen.db in
  match
    Mad_mql.Session.run s
      "SELECT ALL FROM part RECURSIVE BY composition DIFF SELECT ALL FROM \
       part RECURSIVE BY composition WHERE part.pname = 'P0_0';"
  with
  | Mad_mql.Session.Result (Mad_mql.Translate.Recursive r) ->
    check_int "all but one root"
      (Database.count_atoms bom.Bom_gen.db "part" - 1)
      (List.length r.R.occ)
  | _ -> Alcotest.fail "expected recursive result"

let test_non_reflexive_rejected () =
  let b = Geo_brazil.build () in
  let db = Geo_brazil.db b in
  match R.v db ~root_type:"edge" ~link:"edge-point" () with
  | _ -> Alcotest.fail "non-reflexive link must be rejected"
  | exception Err.Mad_error _ -> ()

(* reference closure over a composed neighbour function *)
let reference_closure step root =
  let rec go seen frontier =
    if Aid.Set.is_empty frontier then seen
    else
      let next = step frontier in
      let fresh = Aid.Set.diff next seen in
      go (Aid.Set.union seen fresh) fresh
  in
  go (Aid.Set.singleton root) (Aid.Set.singleton root)

let test_cycle_recursion_vlsi_connectivity () =
  let design = Vlsi_gen.build Vlsi_gen.default in
  let db = design.Vlsi_gen.db in
  (* cell -> pin -> net -> pin -> cell: cells connected through nets *)
  let d =
    R.cycle db ~root_type:"cell"
      ~steps:
        [
          ("cell-pin", `Fwd); ("net-pin", `Bwd); ("net-pin", `Fwd);
          ("cell-pin", `Bwd);
        ]
      ()
  in
  let occ = R.cycle_m_dom db d in
  check_int "one closure per cell"
    (Database.count_atoms db "cell")
    (List.length occ);
  (* reference: compose the neighbour functions directly *)
  let step frontier =
    let hop link dir s =
      Aid.Set.fold
        (fun id acc -> Aid.Set.union acc (Database.neighbors db link ~dir id))
        s Aid.Set.empty
    in
    frontier |> hop "cell-pin" `Fwd |> hop "net-pin" `Bwd |> hop "net-pin" `Fwd
    |> hop "cell-pin" `Bwd
  in
  List.iter
    (fun (m : R.cycle_molecule) ->
      check "matches reference closure" true
        (Aid.Set.equal m.R.c_members (reference_closure step m.R.c_root_atom)))
    occ;
  (* connectivity is symmetric: b in closure(a) iff a in closure(b) *)
  let mem root x =
    let m =
      List.find (fun (m : R.cycle_molecule) -> Aid.equal m.R.c_root_atom root) occ
    in
    Aid.Set.mem x m.R.c_members
  in
  List.iter
    (fun (m : R.cycle_molecule) ->
      Aid.Set.iter
        (fun x -> check "symmetric" true (mem x m.R.c_root_atom))
        m.R.c_members)
    occ;
  (* intermediates recorded per type *)
  let some = List.find (fun (m : R.cycle_molecule) -> Aid.Set.cardinal m.R.c_members > 1) occ in
  check "pins recorded" true (R.Smap.mem "pin" some.R.c_intermediates);
  check "nets recorded" true (R.Smap.mem "net" some.R.c_intermediates)

let test_cycle_validation () =
  let design = Vlsi_gen.build Vlsi_gen.default in
  let db = design.Vlsi_gen.db in
  (* does not return to the root type *)
  (match R.cycle db ~root_type:"cell" ~steps:[ ("cell-pin", `Fwd) ] () with
  | _ -> Alcotest.fail "non-returning cycle accepted"
  | exception Err.Mad_error _ -> ());
  (* wrong step direction *)
  (match R.cycle db ~root_type:"cell" ~steps:[ ("cell-pin", `Bwd) ] () with
  | _ -> Alcotest.fail "mismatched step accepted"
  | exception Err.Mad_error _ -> ());
  match R.cycle db ~root_type:"cell" ~steps:[] () with
  | _ -> Alcotest.fail "empty cycle accepted"
  | exception Err.Mad_error _ -> ()

let test_cycle_depth_bound () =
  let design = Vlsi_gen.build Vlsi_gen.default in
  let db = design.Vlsi_gen.db in
  let steps =
    [ ("cell-pin", `Fwd); ("net-pin", `Bwd); ("net-pin", `Fwd); ("cell-pin", `Bwd) ]
  in
  let root = design.Vlsi_gen.leaves.(0) in
  let members k =
    (R.derive_cycle db (R.cycle db ~root_type:"cell" ~steps ?max_depth:k ()) root)
      .R.c_members
  in
  check "monotone" true
    (Aid.Set.subset (members (Some 1)) (members (Some 2))
     && Aid.Set.subset (members (Some 2)) (members None));
  check_int "depth 0 = root" 1 (Aid.Set.cardinal (members (Some 0)))

let suite =
  [
    Alcotest.test_case "cycle recursion (VLSI connectivity)" `Quick
      test_cycle_recursion_vlsi_connectivity;
    Alcotest.test_case "cycle validation" `Quick test_cycle_validation;
    Alcotest.test_case "cycle depth bound" `Quick test_cycle_depth_bound;
    Alcotest.test_case "explosion = transitive closure" `Quick
      test_explosion_equals_reference;
    Alcotest.test_case "where-used = reverse closure" `Quick
      test_where_used_equals_reference;
    Alcotest.test_case "sub/super converses" `Quick
      test_sub_and_super_are_converses;
    Alcotest.test_case "depth bound" `Quick test_depth_bound;
    Alcotest.test_case "data cycle terminates" `Quick test_cycle_terminates;
    Alcotest.test_case "depth_of is shortest" `Quick
      test_depth_of_is_shortest;
    Alcotest.test_case "DEPTH pseudo-attribute" `Quick
      test_restrict_by_depth_pseudo_attr;
    Alcotest.test_case "non-reflexive rejected" `Quick
      test_non_reflexive_rejected;
    Alcotest.test_case "WITH component structure" `Quick
      test_with_component_structure;
    Alcotest.test_case "WITH validation" `Quick
      test_with_component_validation;
    Alcotest.test_case "WITH via MOL (VLSI pins)" `Quick test_with_via_mql;
    Alcotest.test_case "recursive set operations" `Quick
      test_recursive_set_ops;
    Alcotest.test_case "recursive set ops via MOL" `Quick
      test_recursive_set_ops_via_mql;
  ]
