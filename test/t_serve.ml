(* The network service: wire framing round trips, handshake version
   negotiation, admission control (typed busy), concurrent writers
   converging through the cross-session group-commit coordinator, and
   clean shutdown draining in-flight requests. *)

open Mad_serve

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let in_tmp name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("t_serve_" ^ name)
  in
  Mad_durable.Harness.rm_rf dir;
  Fun.protect
    ~finally:(fun () -> Mad_durable.Harness.rm_rf dir)
    (fun () -> f dir)

let brazil () = Workloads.Geo_brazil.db (Workloads.Geo_brazil.build ())
let wait_forever ~started:_ = true

(* --- wire framing --------------------------------------------------- *)

let test_wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      (* every opcode survives the frame codec *)
      let reqs =
        [
          Wire.Query "SELECT ALL FROM state;";
          Wire.Exec "INSERT INTO state VALUES ('X', 1);";
          Wire.Explain "SELECT ALL FROM state;";
          Wire.Stats;
          Wire.Health;
          Wire.Ping;
          Wire.Quit;
        ]
      in
      List.iter
        (fun r ->
          Wire.write_req a r;
          match Wire.read_req ~keep_waiting:wait_forever b with
          | Wire.Msg got -> check "req round trip" true (got = r)
          | _ -> Alcotest.fail "request did not round trip")
        reqs;
      (* responses, including an empty payload *)
      Wire.write_resp b Wire.Error "boom";
      (match Wire.read_resp ~keep_waiting:wait_forever a with
       | Wire.Msg (Wire.Error, "boom") -> ()
       | _ -> Alcotest.fail "response did not round trip");
      Wire.write_resp b Wire.Pong "";
      (match Wire.read_resp ~keep_waiting:wait_forever a with
       | Wire.Msg (Wire.Pong, "") -> ()
       | _ -> Alcotest.fail "empty response did not round trip");
      (* hello round trip *)
      Wire.write_client_hello a ~version:7;
      (match Wire.read_client_hello ~keep_waiting:wait_forever b with
       | Wire.Msg 7 -> ()
       | _ -> Alcotest.fail "client hello");
      Wire.write_server_hello b ~version:Wire.version Wire.H_busy;
      match Wire.read_server_hello ~keep_waiting:wait_forever a with
      | Wire.Msg (v, Wire.H_busy) -> check_int "server hello version" Wire.version v
      | _ -> Alcotest.fail "server hello")

let test_wire_limits () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let closed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !closed then Unix.close a;
      Unix.close b)
    (fun () ->
      let cap = 64 * 1024 in
      (* a payload of exactly the cap passes...  (written from a domain:
         a socketpair buffer cannot hold 64 KiB unread) *)
      let big = String.make cap 'q' in
      let w = Stdlib.Domain.spawn (fun () -> Wire.write_req a (Wire.Query big)) in
      (match Wire.read_req ~max_len:cap ~keep_waiting:wait_forever b with
       | Wire.Msg (Wire.Query got) -> check_int "max-size frame" cap (String.length got)
       | _ -> Alcotest.fail "max-size frame rejected");
      Stdlib.Domain.join w;
      (* ...one byte more is rejected before the payload is read *)
      let over = String.make (cap + 1) 'q' in
      let w = Stdlib.Domain.spawn (fun () -> Wire.write_req a (Wire.Query over)) in
      (match Wire.read_req ~max_len:cap ~keep_waiting:wait_forever b with
       | Wire.Oversized n -> check_int "oversized declares its length" (cap + 1) n
       | _ -> Alcotest.fail "oversized frame accepted");
      Stdlib.Domain.join w;
      (* drain the oversized payload left in the stream *)
      let buf = Bytes.create 4096 in
      let rec drain n =
        if n > 0 then drain (n - Unix.read b buf 0 (min 4096 n))
      in
      drain (cap + 1);
      (* a frame whose sender dies mid-payload is Truncated, not Closed *)
      let hdr = Bytes.create 5 in
      Bytes.set_int32_le hdr 0 64l;
      Bytes.set_uint8 hdr 4 1;
      Wire.write_all a (Bytes.to_string hdr);
      Wire.write_all a "only-eight";
      Unix.close a;
      closed := true;
      (match Wire.read_req ~keep_waiting:wait_forever b with
       | Wire.Truncated -> ()
       | _ -> Alcotest.fail "mid-frame close should be Truncated");
      (* and a close at a message boundary is Closed *)
      match Wire.read_req ~keep_waiting:wait_forever b with
      | Wire.Closed -> ()
      | _ -> Alcotest.fail "boundary close should be Closed")

let test_wire_timeout () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.05;
      match Wire.read_req ~keep_waiting:(fun ~started:_ -> false) b with
      | Wire.Timeout -> ()
      | _ -> Alcotest.fail "empty socket should time out")

(* --- the coordinator ------------------------------------------------ *)

let test_coordinator_batches () =
  let syncs = Atomic.make 0 in
  let c =
    (* a private obs context: coordinators over the shared noop context
       would get the same metric instances and bleed counts across tests *)
    Mad_durable.Coordinator.create
      ~obs:(Mad_obs.Obs.create ())
      ~sync:(fun () ->
        Atomic.incr syncs;
        Unix.sleepf 0.3)
      ()
  in
  (* the leader's fsync is deliberately slow: the three committers that
     publish while it is in flight must share the NEXT fsync *)
  let leader =
    Stdlib.Domain.spawn (fun () -> Mad_durable.Coordinator.wait_durable c 1)
  in
  Unix.sleepf 0.05;
  let late =
    List.init 3 (fun i ->
        Stdlib.Domain.spawn (fun () ->
            Mad_durable.Coordinator.wait_durable c (2 + i)))
  in
  Stdlib.Domain.join leader;
  List.iter Stdlib.Domain.join late;
  check_int "four commits" 4 (Mad_durable.Coordinator.commits c);
  check_int "two fsync batches cover them" 2 (Mad_durable.Coordinator.fsyncs c);
  check_int "sync ran once per batch" 2 (Atomic.get syncs);
  (* an already-covered position is acknowledged without an fsync *)
  Mad_durable.Coordinator.wait_durable c 3;
  check_int "covered position is free" 2 (Mad_durable.Coordinator.fsyncs c)

let test_coordinator_leader_failure () =
  let armed = ref true in
  let c =
    Mad_durable.Coordinator.create
      ~obs:(Mad_obs.Obs.create ())
      ~sync:(fun () -> if !armed then failwith "disk on fire")
      ()
  in
  (match Mad_durable.Coordinator.wait_durable c 1 with
   | () -> Alcotest.fail "leader failure must propagate"
   | exception Failure msg -> check_string "leader sees the failure" "disk on fire" msg);
  (* the next committer retries as a fresh leader and succeeds *)
  armed := false;
  Mad_durable.Coordinator.wait_durable c 1;
  check_int "retry fsynced" 1 (Mad_durable.Coordinator.fsyncs c)

(* --- server lifecycle ----------------------------------------------- *)

let with_server ?durable ?(config = Serve.default_config) db f =
  let srv = Serve.start ~config ?durable db in
  Fun.protect ~finally:(fun () -> Serve.stop srv) (fun () -> f srv)

let connect_ok srv =
  match Client.connect ~host:"127.0.0.1" (Serve.port srv) with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %a" Client.pp_connect_error e

let test_basic_requests () =
  with_server (brazil ()) @@ fun srv ->
  let c = connect_ok srv in
  check "ping" true (Client.ping c);
  (match Client.query c "SELECT ALL FROM state WHERE state.name = 'SP';" with
   | Ok out -> check "query renders molecules" true (contains ~affix:"state" out)
   | Error msg -> Alcotest.failf "query: %s" msg);
  (match Client.exec c "INSERT INTO state VALUES ('Wireland', 9);" with
   | Ok out -> check "exec summarizes" true (contains ~affix:"insert" out)
   | Error msg -> Alcotest.failf "exec: %s" msg);
  (match Client.explain c "SELECT ALL FROM state;" with
   | Ok out -> check "explain shows a plan" true (String.length out > 0)
   | Error msg -> Alcotest.failf "explain: %s" msg);
  (* statement errors are typed Error responses, not hangups *)
  (match Client.query c "THIS IS NOT MOL;" with
   | Error msg -> check "parse error travels" true (contains ~affix:"parse" msg)
   | Ok _ -> Alcotest.fail "garbage should fail");
  check "still alive after an error" true (Client.ping c);
  let stats = Client.stats c in
  check "stats exposes serve counters" true
    (contains ~affix:"serve_connections" stats);
  check "stats exposes request labels" true (contains ~affix:"op=\"query\"" stats);
  let doc = Client.health c in
  check "health is a verdict document" true (contains ~affix:"\"state\"" doc);
  Client.close c;
  check_int "one connection admitted" 1 (Serve.connections srv)

let test_version_mismatch () =
  with_server (brazil ()) @@ fun srv ->
  (match Client.connect ~version:99 ~host:"127.0.0.1" (Serve.port srv) with
   | Error (Client.Version_mismatch v) ->
     check_int "server states its version" Wire.version v
   | Ok _ -> Alcotest.fail "version 99 must be rejected"
   | Error e -> Alcotest.failf "wrong rejection: %a" Client.pp_connect_error e);
  (* the rejection did not wedge the server *)
  let c = connect_ok srv in
  check "server still serves" true (Client.ping c);
  Client.close c

let test_admission_busy () =
  let config = { Serve.default_config with Serve.workers = 1; max_pending = 1 } in
  with_server ~config (brazil ()) @@ fun srv ->
  (* c1 holds the only worker... *)
  let c1 = connect_ok srv in
  check "c1 served" true (Client.ping c1);
  (* ...c2 fills the pending queue (its handshake stays unanswered
     until a worker frees, so connect runs in its own domain)... *)
  let c2 =
    Stdlib.Domain.spawn (fun () ->
        Client.connect ~timeout:10.0 ~host:"127.0.0.1" (Serve.port srv))
  in
  Unix.sleepf 0.3;
  (* ...and c3 is over capacity: a typed busy verdict, not a reset *)
  (match Client.connect ~host:"127.0.0.1" (Serve.port srv) with
   | Error Client.Busy -> ()
   | Ok _ -> Alcotest.fail "third connection must be refused"
   | Error e -> Alcotest.failf "wrong refusal: %a" Client.pp_connect_error e);
  (* closing c1 frees the worker; the queued c2 is then served *)
  Client.close c1;
  (match Stdlib.Domain.join c2 with
   | Ok c2 ->
     check "queued connection eventually served" true (Client.ping c2);
     Client.close c2
   | Error e -> Alcotest.failf "queued connect failed: %a" Client.pp_connect_error e);
  check "admission rejections counted" true
    (Mad_obs.Registry.counter_value
       (Mad_obs.Obs.registry (Serve.obs srv))
       "serve.busy"
     >= 1)

let test_concurrent_writers () =
  in_tmp "writers" @@ fun dir ->
  let writers = 8 and per_writer = 5 in
  let h = Mad_durable.Durable.open_dir ~seed:(brazil ()) dir in
  let before = Mad_store.Database.total_atoms (Mad_durable.Durable.db h) in
  let commits, fsyncs =
    Fun.protect
      ~finally:(fun () -> Mad_durable.Durable.close h)
      (fun () ->
        let config = { Serve.default_config with Serve.workers = 4 } in
        with_server ~config ~durable:h (Mad_durable.Durable.db h) @@ fun srv ->
        let spawn w =
          Stdlib.Domain.spawn (fun () ->
              let c = connect_ok srv in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  for j = 1 to per_writer do
                    match
                      Client.exec c
                        (Printf.sprintf
                           "INSERT INTO state VALUES ('W%d_%d', %d);" w j
                           (100 + w))
                    with
                    | Ok _ -> ()
                    | Error msg -> Alcotest.failf "writer %d: %s" w msg
                  done))
        in
        let doms = List.init writers (fun w -> spawn (w + 1)) in
        List.iter Stdlib.Domain.join doms;
        let coord = Option.get (Serve.coordinator srv) in
        ( Mad_durable.Coordinator.commits coord,
          Mad_durable.Coordinator.fsyncs coord ))
  in
  check_int "every statement committed" (writers * per_writer) commits;
  check "at least one fsync" true (fsyncs >= 1);
  check "fsyncs never exceed commits" true (fsyncs <= commits);
  (* convergence: recovery sees the serial-equivalent state — every
     insert from every writer, and an integrity-clean database *)
  let h2 = Mad_durable.Durable.open_dir dir in
  Fun.protect
    ~finally:(fun () -> Mad_durable.Durable.close h2)
    (fun () ->
      check_int "all inserts durable"
        (before + (writers * per_writer))
        (Mad_store.Database.total_atoms (Mad_durable.Durable.db h2)))

let test_shutdown_drains () =
  let srv = Serve.start (brazil ()) in
  let c = connect_ok srv in
  check "served before stop" true (Client.ping c);
  (* a statement that is genuinely in flight when stop arrives: the
     fault spin keeps it executing while the stopper runs *)
  Mad_mql.Session.fault_spin_ms := Some 600.0;
  Fun.protect
    ~finally:(fun () -> Mad_mql.Session.fault_spin_ms := None)
    (fun () ->
      let stopper =
        Stdlib.Domain.spawn (fun () ->
            Unix.sleepf 0.15;
            Serve.stop srv)
      in
      (match Client.query c "SELECT ALL FROM state WHERE state.name = 'SP';" with
       | Ok out ->
         check "in-flight request completed through shutdown" true
           (contains ~affix:"state" out)
       | Error msg -> Alcotest.failf "drained request failed: %s" msg);
      Stdlib.Domain.join stopper);
  check "server reports stopped" true (Serve.stopped srv);
  (* the drained connection was closed by the shutdown *)
  (match Client.ping c with
   | exception Client.Remote _ -> ()
   | alive -> check "connection closed after drain" false alive);
  Client.close ~quit:false c

(* --- typed data-directory errors ------------------------------------ *)

(* root ignores permission bits, so provoke the failures with ENOTDIR
   (a path through a regular file) — those fail for any uid *)
let test_data_dir_errors () =
  in_tmp "baddir" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let file = Filename.concat dir "plain" in
  let oc = open_out file in
  output_string oc "not a directory\n";
  close_out oc;
  (match Mad_durable.Durable.open_dir file with
   | _ -> Alcotest.fail "opening a file as a data dir must fail"
   | exception Mad_store.Err.Mad_error msg ->
     check "names the path" true (contains ~affix:file msg);
     check "says why" true (contains ~affix:"not a directory" msg));
  let nested = Filename.concat file "sub" in
  match Mad_durable.Durable.open_dir nested with
  | _ -> Alcotest.fail "a path through a file must fail"
  | exception Mad_store.Err.Mad_error msg ->
    check "typed creation error" true (contains ~affix:"cannot create" msg)

let suite =
  [
    Alcotest.test_case "wire round trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire size limits and truncation" `Quick test_wire_limits;
    Alcotest.test_case "wire timeout" `Quick test_wire_timeout;
    Alcotest.test_case "coordinator batches commits" `Quick test_coordinator_batches;
    Alcotest.test_case "coordinator leader failure" `Quick
      test_coordinator_leader_failure;
    Alcotest.test_case "basic requests" `Quick test_basic_requests;
    Alcotest.test_case "handshake version mismatch" `Quick test_version_mismatch;
    Alcotest.test_case "admission control says busy" `Quick test_admission_busy;
    Alcotest.test_case "concurrent writers converge" `Quick
      test_concurrent_writers;
    Alcotest.test_case "shutdown drains in-flight requests" `Quick
      test_shutdown_drains;
    Alcotest.test_case "typed data-dir errors" `Quick test_data_dir_errors;
  ]
