(* The network service: wire framing round trips, handshake version
   negotiation, admission control (typed busy), concurrent writers
   converging through the cross-session group-commit coordinator, and
   clean shutdown draining in-flight requests. *)

open Mad_serve

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let in_tmp name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("t_serve_" ^ name)
  in
  Mad_durable.Harness.rm_rf dir;
  Fun.protect
    ~finally:(fun () -> Mad_durable.Harness.rm_rf dir)
    (fun () -> f dir)

let brazil () = Workloads.Geo_brazil.db (Workloads.Geo_brazil.build ())
let wait_forever ~started:_ = true

(* --- wire framing --------------------------------------------------- *)

let test_wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      (* every opcode survives the frame codec *)
      let reqs =
        [
          Wire.Query "SELECT ALL FROM state;";
          Wire.Exec "INSERT INTO state VALUES ('X', 1);";
          Wire.Explain "SELECT ALL FROM state;";
          Wire.Stats;
          Wire.Health;
          Wire.Ping;
          Wire.Quit;
        ]
      in
      List.iter
        (fun r ->
          Wire.write_req a r;
          match Wire.read_req ~keep_waiting:wait_forever b with
          | Wire.Msg (got, None) -> check "req round trip" true (got = r)
          | Wire.Msg (_, Some _) -> Alcotest.fail "v1 request carried metadata"
          | _ -> Alcotest.fail "request did not round trip")
        reqs;
      (* responses, including an empty payload *)
      Wire.write_resp b Wire.Error "boom";
      (match Wire.read_resp ~keep_waiting:wait_forever a with
       | Wire.Msg (Wire.Error, "boom") -> ()
       | _ -> Alcotest.fail "response did not round trip");
      Wire.write_resp b Wire.Pong "";
      (match Wire.read_resp ~keep_waiting:wait_forever a with
       | Wire.Msg (Wire.Pong, "") -> ()
       | _ -> Alcotest.fail "empty response did not round trip");
      (* hello round trip *)
      Wire.write_client_hello a ~version:7;
      (match Wire.read_client_hello ~keep_waiting:wait_forever b with
       | Wire.Msg 7 -> ()
       | _ -> Alcotest.fail "client hello");
      Wire.write_server_hello b ~version:Wire.version Wire.H_busy;
      match Wire.read_server_hello ~keep_waiting:wait_forever a with
      | Wire.Msg (v, Wire.H_busy) -> check_int "server hello version" Wire.version v
      | _ -> Alcotest.fail "server hello")

let test_wire_limits () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let closed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !closed then Unix.close a;
      Unix.close b)
    (fun () ->
      let cap = 64 * 1024 in
      (* a payload of exactly the cap passes...  (written from a domain:
         a socketpair buffer cannot hold 64 KiB unread) *)
      let big = String.make cap 'q' in
      let w = Stdlib.Domain.spawn (fun () -> Wire.write_req a (Wire.Query big)) in
      (match Wire.read_req ~max_len:cap ~keep_waiting:wait_forever b with
       | Wire.Msg (Wire.Query got, _) ->
         check_int "max-size frame" cap (String.length got)
       | _ -> Alcotest.fail "max-size frame rejected");
      Stdlib.Domain.join w;
      (* ...one byte more is rejected before the payload is read *)
      let over = String.make (cap + 1) 'q' in
      let w = Stdlib.Domain.spawn (fun () -> Wire.write_req a (Wire.Query over)) in
      (match Wire.read_req ~max_len:cap ~keep_waiting:wait_forever b with
       | Wire.Oversized n -> check_int "oversized declares its length" (cap + 1) n
       | _ -> Alcotest.fail "oversized frame accepted");
      Stdlib.Domain.join w;
      (* drain the oversized payload left in the stream *)
      let buf = Bytes.create 4096 in
      let rec drain n =
        if n > 0 then drain (n - Unix.read b buf 0 (min 4096 n))
      in
      drain (cap + 1);
      (* a frame whose sender dies mid-payload is Truncated, not Closed *)
      let hdr = Bytes.create 5 in
      Bytes.set_int32_le hdr 0 64l;
      Bytes.set_uint8 hdr 4 1;
      Wire.write_all a (Bytes.to_string hdr);
      Wire.write_all a "only-eight";
      Unix.close a;
      closed := true;
      (match Wire.read_req ~keep_waiting:wait_forever b with
       | Wire.Truncated -> ()
       | _ -> Alcotest.fail "mid-frame close should be Truncated");
      (* and a close at a message boundary is Closed *)
      match Wire.read_req ~keep_waiting:wait_forever b with
      | Wire.Closed -> ()
      | _ -> Alcotest.fail "boundary close should be Closed")

let test_wire_timeout () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.05;
      match Wire.read_req ~keep_waiting:(fun ~started:_ -> false) b with
      | Wire.Timeout -> ()
      | _ -> Alcotest.fail "empty socket should time out")

(* --- wire v2: request metadata and phase payloads ------------------- *)

let test_wire_v2_codec () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      (* a v2 statement always carries the 9-byte metadata prefix *)
      let meta = { Wire.want_phases = true; span = 42 } in
      Wire.write_req ~version:2 ~meta a (Wire.Query "SELECT ALL FROM state;");
      (match Wire.read_req ~version:2 ~keep_waiting:wait_forever b with
       | Wire.Msg (Wire.Query s, Some m) ->
         check_string "v2 statement text" "SELECT ALL FROM state;" s;
         check "v2 meta wants phases" true m.Wire.want_phases;
         check_int "v2 meta span" 42 m.Wire.span
       | _ -> Alcotest.fail "v2 statement did not round trip");
      (* metadata defaults to no_meta when the writer supplies none *)
      Wire.write_req ~version:2 a (Wire.Exec "INSERT;");
      (match Wire.read_req ~version:2 ~keep_waiting:wait_forever b with
       | Wire.Msg (Wire.Exec _, Some m) ->
         check "default meta is inert" false m.Wire.want_phases;
         check_int "default meta span" 0 m.Wire.span
       | _ -> Alcotest.fail "v2 default meta did not round trip");
      (* non-statement opcodes never carry metadata, any version *)
      Wire.write_req ~version:2 a Wire.Ping;
      (match Wire.read_req ~version:2 ~keep_waiting:wait_forever b with
       | Wire.Msg (Wire.Ping, None) -> ()
       | _ -> Alcotest.fail "ping must stay meta-free");
      (* the v2 statement is meta_bytes bigger on the wire, and the
         byte accounting knows *)
      check_int "req_bytes counts the prefix"
        (Wire.req_bytes (Wire.Query "x") + Wire.meta_bytes)
        (Wire.req_bytes ~version:2 (Wire.Query "x"));
      (* the frame cap applies to the whole payload, prefix included *)
      let cap = 64 in
      let text = String.make (cap - Wire.meta_bytes + 1) 'q' in
      let w =
        Stdlib.Domain.spawn (fun () ->
            Wire.write_req ~version:2 a (Wire.Query text))
      in
      (match Wire.read_req ~version:2 ~max_len:cap ~keep_waiting:wait_forever b with
       | Wire.Oversized n -> check_int "v2 oversized includes prefix" (cap + 1) n
       | _ -> Alcotest.fail "v2 oversized frame accepted");
      Stdlib.Domain.join w;
      let buf = Bytes.create 256 in
      let rec drain n = if n > 0 then drain (n - Unix.read b buf 0 (min 256 n)) in
      drain (cap + 1);
      (* a v2 statement payload shorter than the prefix is a protocol
         violation, same as an unknown opcode *)
      let hdr = Bytes.create 5 in
      Bytes.set_int32_le hdr 0 4l;
      Bytes.set_uint8 hdr 4 1;
      Wire.write_all a (Bytes.to_string hdr ^ "abcd");
      (match Wire.read_req ~version:2 ~keep_waiting:wait_forever b with
       | Wire.Bad_magic -> ()
       | _ -> Alcotest.fail "short v2 payload must be rejected");
      (* phase codec round trip, including the empty list *)
      let phases = [ ("lock", 12.5); ("exec", 0.0); ("fsync", 3250.125) ] in
      (match
         Wire.decode_result_with_phases
           (Wire.encode_result_with_phases "result text" phases)
       with
       | Some (r, got) ->
         check_string "result survives" "result text" r;
         check_int "phase count" 3 (List.length got);
         check "phase values survive" true
           (List.assoc "fsync" got = 3250.125 && List.assoc "lock" got = 12.5)
       | None -> Alcotest.fail "phase payload did not decode");
      (match
         Wire.decode_result_with_phases (Wire.encode_result_with_phases "" [])
       with
       | Some ("", []) -> ()
       | _ -> Alcotest.fail "empty phase payload");
      (* malformed phase payloads are rejected, not misread *)
      check "truncated payload rejected" true
        (Wire.decode_result_with_phases "ab" = None);
      check "inconsistent length rejected" true
        (Wire.decode_result_with_phases "\255\255\255\127rest" = None))

(* --- the coordinator ------------------------------------------------ *)

let test_coordinator_batches () =
  let syncs = Atomic.make 0 in
  let c =
    (* a private obs context: coordinators over the shared noop context
       would get the same metric instances and bleed counts across tests *)
    Mad_durable.Coordinator.create
      ~obs:(Mad_obs.Obs.create ())
      ~sync:(fun () ->
        Atomic.incr syncs;
        Unix.sleepf 0.3)
      ()
  in
  (* the leader's fsync is deliberately slow: the three committers that
     publish while it is in flight must share the NEXT fsync *)
  let leader =
    Stdlib.Domain.spawn (fun () -> Mad_durable.Coordinator.wait_durable c 1)
  in
  Unix.sleepf 0.05;
  let late =
    List.init 3 (fun i ->
        Stdlib.Domain.spawn (fun () ->
            Mad_durable.Coordinator.wait_durable c (2 + i)))
  in
  Stdlib.Domain.join leader;
  List.iter Stdlib.Domain.join late;
  check_int "four commits" 4 (Mad_durable.Coordinator.commits c);
  check_int "two fsync batches cover them" 2 (Mad_durable.Coordinator.fsyncs c);
  check_int "sync ran once per batch" 2 (Atomic.get syncs);
  (* an already-covered position is acknowledged without an fsync *)
  Mad_durable.Coordinator.wait_durable c 3;
  check_int "covered position is free" 2 (Mad_durable.Coordinator.fsyncs c)

let test_coordinator_leader_failure () =
  let armed = ref true in
  let c =
    Mad_durable.Coordinator.create
      ~obs:(Mad_obs.Obs.create ())
      ~sync:(fun () -> if !armed then failwith "disk on fire")
      ()
  in
  (match Mad_durable.Coordinator.wait_durable c 1 with
   | () -> Alcotest.fail "leader failure must propagate"
   | exception Failure msg -> check_string "leader sees the failure" "disk on fire" msg);
  (* the next committer retries as a fresh leader and succeeds *)
  armed := false;
  Mad_durable.Coordinator.wait_durable c 1;
  check_int "retry fsynced" 1 (Mad_durable.Coordinator.fsyncs c)

(* --- server lifecycle ----------------------------------------------- *)

let with_server ?durable ?(config = Serve.default_config) db f =
  let srv = Serve.start ~config ?durable db in
  Fun.protect ~finally:(fun () -> Serve.stop srv) (fun () -> f srv)

let connect_ok srv =
  match Client.connect ~host:"127.0.0.1" (Serve.port srv) with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %a" Client.pp_connect_error e

let test_basic_requests () =
  with_server (brazil ()) @@ fun srv ->
  let c = connect_ok srv in
  check "ping" true (Client.ping c);
  (match Client.query c "SELECT ALL FROM state WHERE state.name = 'SP';" with
   | Ok out -> check "query renders molecules" true (contains ~affix:"state" out)
   | Error msg -> Alcotest.failf "query: %s" msg);
  (match Client.exec c "INSERT INTO state VALUES ('Wireland', 9);" with
   | Ok out -> check "exec summarizes" true (contains ~affix:"insert" out)
   | Error msg -> Alcotest.failf "exec: %s" msg);
  (match Client.explain c "SELECT ALL FROM state;" with
   | Ok out -> check "explain shows a plan" true (String.length out > 0)
   | Error msg -> Alcotest.failf "explain: %s" msg);
  (* statement errors are typed Error responses, not hangups *)
  (match Client.query c "THIS IS NOT MOL;" with
   | Error msg -> check "parse error travels" true (contains ~affix:"parse" msg)
   | Ok _ -> Alcotest.fail "garbage should fail");
  check "still alive after an error" true (Client.ping c);
  let stats = Client.stats c in
  check "stats exposes serve counters" true
    (contains ~affix:"serve_connections" stats);
  check "stats exposes request labels" true (contains ~affix:"op=\"query\"" stats);
  check "stats exposes phase histograms" true
    (contains ~affix:"serve_phase_us" stats);
  check "stats exposes the lock profile by class" true
    (contains ~affix:"serve_lock_wait_us" stats
     && contains ~affix:"class=\"query\"" stats);
  check "stats exposes the saturation gauge" true
    (contains ~affix:"serve_queue_peak_pct" stats);
  let doc = Client.health c in
  check "health is a verdict document" true (contains ~affix:"\"state\"" doc);
  Client.close c;
  check_int "one connection admitted" 1 (Serve.connections srv)

let test_version_mismatch () =
  with_server (brazil ()) @@ fun srv ->
  (match Client.connect ~version:99 ~host:"127.0.0.1" (Serve.port srv) with
   | Error (Client.Version_mismatch v) ->
     check_int "server states its version" Wire.version v
   | Ok _ -> Alcotest.fail "version 99 must be rejected"
   | Error e -> Alcotest.failf "wrong rejection: %a" Client.pp_connect_error e);
  (* the rejection did not wedge the server *)
  let c = connect_ok srv in
  check "server still serves" true (Client.ping c);
  Client.close c

(* --- version negotiation (v1 ↔ v2 interop) -------------------------- *)

let test_v1_client_v2_server () =
  with_server (brazil ()) @@ fun srv ->
  match Client.connect ~version:1 ~host:"127.0.0.1" (Serve.port srv) with
  | Error e -> Alcotest.failf "v1 connect: %a" Client.pp_connect_error e
  | Ok c ->
    check_int "negotiated down to 1" 1 (Client.version c);
    check "v1 ping" true (Client.ping c);
    (match Client.query c "SELECT ALL FROM state WHERE state.name = 'SP';" with
     | Ok out ->
       check "v1 query works on a v2 server" true (contains ~affix:"state" out)
     | Error msg -> Alcotest.failf "v1 query: %s" msg);
    (* phase tracing degrades gracefully on a v1 connection *)
    (match Client.query_traced c "SELECT ALL FROM state;" with
     | Ok (_, phases) -> check "no phases over v1" true (phases = [])
     | Error msg -> Alcotest.failf "v1 traced query: %s" msg);
    Client.close c

(* a minimal v1-only peer: refuses a v2 hello naming version 1, then
   accepts the downgraded retry and answers pings — what a pre-v2
   [madql serve] does on the wire *)
let test_v2_client_v1_server () =
  let lst = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lst Unix.SO_REUSEADDR true;
  Unix.bind lst (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lst 4;
  let port =
    match Unix.getsockname lst with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let server =
    Stdlib.Domain.spawn (fun () ->
        let serve_one () =
          let fd, _ = Unix.accept lst in
          (match Wire.read_client_hello ~keep_waiting:wait_forever fd with
           | Wire.Msg 1 ->
             Wire.write_server_hello fd ~version:1 Wire.H_ok;
             let rec loop () =
               match Wire.read_req ~keep_waiting:wait_forever fd with
               | Wire.Msg (Wire.Ping, _) ->
                 Wire.write_resp fd Wire.Pong "";
                 loop ()
               | Wire.Msg (Wire.Quit, _) -> Wire.write_resp fd Wire.Bye ""
               | _ -> ()
             in
             loop ()
           | Wire.Msg _ -> Wire.write_server_hello fd ~version:1 Wire.H_version
           | _ -> ());
          Unix.close fd
        in
        serve_one ();
        (* the refused v2 proposal... *)
        serve_one ())
    (* ...and the downgraded retry *)
  in
  Fun.protect
    ~finally:(fun () ->
      Stdlib.Domain.join server;
      Unix.close lst)
    (fun () ->
      match Client.connect ~host:"127.0.0.1" port with
      | Ok c ->
        check_int "auto-downgraded to v1" 1 (Client.version c);
        check "ping over the downgraded link" true (Client.ping c);
        Client.close c
      | Error e -> Alcotest.failf "downgrade failed: %a" Client.pp_connect_error e)

(* --- request phases -------------------------------------------------- *)

let test_phase_breakdown () =
  with_server (brazil ()) @@ fun srv ->
  let c = connect_ok srv in
  check_int "negotiated v2" 2 (Client.version c);
  (match
     Client.query_traced ~span:7 c
       "SELECT ALL FROM state WHERE state.name = 'SP';"
   with
   | Ok (out, phases) ->
     check "traced query renders" true (contains ~affix:"state" out);
     List.iter
       (fun n ->
         match List.assoc_opt n phases with
         | Some v -> check (n ^ " phase is non-negative") true (v >= 0.0)
         | None -> Alcotest.failf "missing %s phase" n)
       [ "lock"; "exec"; "wal"; "fsync"; "other" ]
   | Error msg -> Alcotest.failf "traced query: %s" msg);
  (* a few more requests of each flavor, then let the connection close
     so every in-flight observation lands *)
  (match Client.exec c "INSERT INTO state VALUES ('Phase', 77);" with
   | Ok _ -> ()
   | Error m -> Alcotest.failf "exec: %s" m);
  ignore (Client.ping c);
  (match Client.query c "SELECT ALL FROM state;" with
   | Ok _ -> ()
   | Error m -> Alcotest.failf "query: %s" m);
  Client.close c;
  (* the worker observes metrics after writing the response, so wait
     for the connection teardown (active gauge back to zero) before
     auditing the histograms *)
  let obs = Serve.obs srv in
  let g_active = Mad_obs.Obs.gauge obs "serve.active" in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Mad_obs.Metric.get g_active > 0.0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  (* sum consistency: the six per-request phases partition request_us
     — equal counts, sums matching within float rounding *)
  let h_req =
    Mad_obs.Obs.histogram ~bounds:Mad_obs.Metric.latency_bounds_us obs
      "serve.request_us"
  in
  let phase n =
    Mad_obs.Obs.histogram
      ~labels:[ ("phase", n) ]
      ~bounds:Mad_obs.Metric.latency_bounds_us obs "serve.phase_us"
  in
  let names = [ "lock"; "exec"; "wal"; "fsync"; "write"; "other" ] in
  let n_req = Mad_obs.Metric.count h_req in
  check "requests were measured" true (n_req >= 4);
  List.iter
    (fun n ->
      check_int
        (n ^ " phase count partitions requests")
        n_req
        (Mad_obs.Metric.count (phase n)))
    names;
  let phase_sum =
    List.fold_left (fun acc n -> acc +. Mad_obs.Metric.sum (phase n)) 0.0 names
  in
  let total = Mad_obs.Metric.sum h_req in
  check "phase sums partition request_us" true
    (Float.abs (phase_sum -. total)
     <= (0.001 *. Float.max 1.0 total) +. (0.01 *. float_of_int n_req))

let test_admission_busy () =
  let config = { Serve.default_config with Serve.workers = 1; max_pending = 1 } in
  with_server ~config (brazil ()) @@ fun srv ->
  (* c1 holds the only worker... *)
  let c1 = connect_ok srv in
  check "c1 served" true (Client.ping c1);
  (* ...c2 fills the pending queue (its handshake stays unanswered
     until a worker frees, so connect runs in its own domain)... *)
  let c2 =
    Stdlib.Domain.spawn (fun () ->
        Client.connect ~timeout:10.0 ~host:"127.0.0.1" (Serve.port srv))
  in
  Unix.sleepf 0.3;
  (* ...and c3 is over capacity: a typed busy verdict, not a reset *)
  (match Client.connect ~host:"127.0.0.1" (Serve.port srv) with
   | Error Client.Busy -> ()
   | Ok _ -> Alcotest.fail "third connection must be refused"
   | Error e -> Alcotest.failf "wrong refusal: %a" Client.pp_connect_error e);
  (* closing c1 frees the worker; the queued c2 is then served *)
  Client.close c1;
  (match Stdlib.Domain.join c2 with
   | Ok c2 ->
     check "queued connection eventually served" true (Client.ping c2);
     Client.close c2
   | Error e -> Alcotest.failf "queued connect failed: %a" Client.pp_connect_error e);
  check "admission rejections counted" true
    (Mad_obs.Registry.counter_value
       (Mad_obs.Obs.registry (Serve.obs srv))
       "serve.busy"
     >= 1)

let test_concurrent_writers () =
  in_tmp "writers" @@ fun dir ->
  let writers = 8 and per_writer = 5 in
  let h = Mad_durable.Durable.open_dir ~seed:(brazil ()) dir in
  let before = Mad_store.Database.total_atoms (Mad_durable.Durable.db h) in
  let commits, fsyncs =
    Fun.protect
      ~finally:(fun () -> Mad_durable.Durable.close h)
      (fun () ->
        let config = { Serve.default_config with Serve.workers = 4 } in
        with_server ~config ~durable:h (Mad_durable.Durable.db h) @@ fun srv ->
        let spawn w =
          Stdlib.Domain.spawn (fun () ->
              let c = connect_ok srv in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  for j = 1 to per_writer do
                    match
                      Client.exec c
                        (Printf.sprintf
                           "INSERT INTO state VALUES ('W%d_%d', %d);" w j
                           (100 + w))
                    with
                    | Ok _ -> ()
                    | Error msg -> Alcotest.failf "writer %d: %s" w msg
                  done))
        in
        let doms = List.init writers (fun w -> spawn (w + 1)) in
        List.iter Stdlib.Domain.join doms;
        let coord = Option.get (Serve.coordinator srv) in
        ( Mad_durable.Coordinator.commits coord,
          Mad_durable.Coordinator.fsyncs coord ))
  in
  check_int "every statement committed" (writers * per_writer) commits;
  check "at least one fsync" true (fsyncs >= 1);
  check "fsyncs never exceed commits" true (fsyncs <= commits);
  (* convergence: recovery sees the serial-equivalent state — every
     insert from every writer, and an integrity-clean database *)
  let h2 = Mad_durable.Durable.open_dir dir in
  Fun.protect
    ~finally:(fun () -> Mad_durable.Durable.close h2)
    (fun () ->
      check_int "all inserts durable"
        (before + (writers * per_writer))
        (Mad_store.Database.total_atoms (Mad_durable.Durable.db h2)))

let test_shutdown_drains () =
  let srv = Serve.start (brazil ()) in
  let c = connect_ok srv in
  check "served before stop" true (Client.ping c);
  (* a statement that is genuinely in flight when stop arrives: the
     fault spin keeps it executing while the stopper runs *)
  Mad_mql.Session.fault_spin_ms := Some 600.0;
  Fun.protect
    ~finally:(fun () -> Mad_mql.Session.fault_spin_ms := None)
    (fun () ->
      let stopper =
        Stdlib.Domain.spawn (fun () ->
            Unix.sleepf 0.15;
            Serve.stop srv)
      in
      (match Client.query c "SELECT ALL FROM state WHERE state.name = 'SP';" with
       | Ok out ->
         check "in-flight request completed through shutdown" true
           (contains ~affix:"state" out)
       | Error msg -> Alcotest.failf "drained request failed: %s" msg);
      Stdlib.Domain.join stopper);
  check "server reports stopped" true (Serve.stopped srv);
  (* the drained connection was closed by the shutdown *)
  (match Client.ping c with
   | exception Client.Remote _ -> ()
   | alive -> check "connection closed after drain" false alive);
  Client.close ~quit:false c

(* --- typed data-directory errors ------------------------------------ *)

(* root ignores permission bits, so provoke the failures with ENOTDIR
   (a path through a regular file) — those fail for any uid *)
let test_data_dir_errors () =
  in_tmp "baddir" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let file = Filename.concat dir "plain" in
  let oc = open_out file in
  output_string oc "not a directory\n";
  close_out oc;
  (match Mad_durable.Durable.open_dir file with
   | _ -> Alcotest.fail "opening a file as a data dir must fail"
   | exception Mad_store.Err.Mad_error msg ->
     check "names the path" true (contains ~affix:file msg);
     check "says why" true (contains ~affix:"not a directory" msg));
  let nested = Filename.concat file "sub" in
  match Mad_durable.Durable.open_dir nested with
  | _ -> Alcotest.fail "a path through a file must fail"
  | exception Mad_store.Err.Mad_error msg ->
    check "typed creation error" true (contains ~affix:"cannot create" msg)

let suite =
  [
    Alcotest.test_case "wire round trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire size limits and truncation" `Quick test_wire_limits;
    Alcotest.test_case "wire timeout" `Quick test_wire_timeout;
    Alcotest.test_case "wire v2 metadata and phase codec" `Quick
      test_wire_v2_codec;
    Alcotest.test_case "coordinator batches commits" `Quick test_coordinator_batches;
    Alcotest.test_case "coordinator leader failure" `Quick
      test_coordinator_leader_failure;
    Alcotest.test_case "basic requests" `Quick test_basic_requests;
    Alcotest.test_case "handshake version mismatch" `Quick test_version_mismatch;
    Alcotest.test_case "v1 client against a v2 server" `Quick
      test_v1_client_v2_server;
    Alcotest.test_case "v2 client auto-downgrades to a v1 server" `Quick
      test_v2_client_v1_server;
    Alcotest.test_case "request phases partition latency" `Quick
      test_phase_breakdown;
    Alcotest.test_case "admission control says busy" `Quick test_admission_busy;
    Alcotest.test_case "concurrent writers converge" `Quick
      test_concurrent_writers;
    Alcotest.test_case "shutdown drains in-flight requests" `Quick
      test_shutdown_drains;
    Alcotest.test_case "typed data-dir errors" `Quick test_data_dir_errors;
  ]
