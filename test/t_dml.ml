(* Manipulation facilities: shared-subobject-safe deletion, detach
   mode, attribute modification, insertion with links — at the library
   level and through MOL DML statements. *)

open Mad_store
open Workloads
module S = Mad_mql.Session
module MA = Mad.Molecule_algebra
module MT = Mad.Molecule_type

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setting () =
  let b = Geo_brazil.build () in
  let db = Geo_brazil.db b in
  let mt = MA.define db ~name:"mt_state" (Geo_brazil.mt_state_desc b) in
  (b, db, mt)

let test_shared_safe_delete () =
  let b, db, mt = setting () in
  (* delete the SP molecule: its private geometry goes; the border
     edges/points shared with MG, MS, PR, SC must survive *)
  let sp = Geo_brazil.state b "SP" in
  let victim =
    match MT.find_by_root mt sp with Some m -> m | None -> assert false
  in
  let shared_before =
    (* atoms of SP also held by other state molecules *)
    List.fold_left
      (fun s (m : Mad.Molecule.t) ->
        if Aid.equal m.Mad.Molecule.root sp then s
        else Aid.Set.union s (Mad.Molecule.shared victim m))
      Aid.Set.empty (MT.occ mt)
  in
  let report = Mad.Manipulate.delete_molecules db mt [ victim ] in
  check_int "one molecule deleted" 1 report.Mad.Manipulate.molecules_deleted;
  check_int "shared atoms kept"
    (Aid.Set.cardinal shared_before)
    report.Mad.Manipulate.atoms_kept_shared;
  (* the shared atoms are still there *)
  Aid.Set.iter
    (fun id -> ignore (Database.atom db id))
    shared_before;
  (* SP itself is gone *)
  (match Database.find_atom db sp with
   | None -> ()
   | Some _ -> Alcotest.fail "SP must be deleted");
  check "database still valid" true (Integrity.is_valid db);
  (* remaining molecules unchanged *)
  let mt' = MA.define db ~name:"after" (Geo_brazil.mt_state_desc b) in
  check_int "nine molecules left" 9 (MT.cardinality mt')

let test_delete_all_is_total () =
  let b, db, mt = setting () in
  ignore b;
  let report = Mad.Manipulate.delete_molecules db mt (MT.occ mt) in
  check_int "everything deleted, nothing shared-protected" 0
    report.Mad.Manipulate.atoms_kept_shared;
  check_int "states empty" 0 (Database.count_atoms db "state");
  check_int "areas empty" 0 (Database.count_atoms db "area");
  check_int "edges empty" 0 (Database.count_atoms db "edge");
  check_int "points empty" 0 (Database.count_atoms db "point");
  (* rivers/cities were not part of the structure: untouched *)
  check_int "rivers untouched" 3 (Database.count_atoms db "river");
  check "valid" true (Integrity.is_valid db)

let test_detach_mode () =
  let b, db, mt = setting () in
  let sp = Geo_brazil.state b "SP" in
  let victim =
    match MT.find_by_root mt sp with Some m -> m | None -> assert false
  in
  let atoms_before = Database.total_atoms db in
  let report =
    Mad.Manipulate.delete_molecules ~mode:`Unlink_only db mt [ victim ]
  in
  check_int "only the root atom deleted" 1 report.Mad.Manipulate.atoms_deleted;
  check_int "one atom fewer" (atoms_before - 1) (Database.total_atoms db);
  check "valid" true (Integrity.is_valid db)

let test_modify () =
  let b, db, mt = setting () in
  ignore b;
  let victims =
    List.filter
      (fun m ->
        MA.molecule_satisfies db mt m
          Mad.Qual.(attr "state" "hectare" >% int 900))
      (MT.occ mt)
  in
  let n =
    Mad.Manipulate.modify_attribute db ~node:"state" ~attr:"hectare"
      (Value.Int 1) victims
  in
  check_int "three states modified" 3 n;
  let mt' = MA.define db ~name:"after_mod" (Mad.Molecule_type.desc mt) in
  let still_big =
    List.filter
      (fun m ->
        MA.molecule_satisfies db mt' m
          Mad.Qual.(attr "state" "hectare" >% int 900))
      (MT.occ mt')
  in
  check_int "none big anymore" 0 (List.length still_big)

let test_modify_domain_checked () =
  let _, db, mt = setting () in
  match
    Mad.Manipulate.modify_attribute db ~node:"state" ~attr:"hectare"
      (Value.String "oops") (MT.occ mt)
  with
  | _ -> Alcotest.fail "domain violation must be rejected"
  | exception Err.Mad_error _ -> ()

let test_insert_linked () =
  let b, db, _ = setting () in
  let pn = b.Geo_brazil.pn in
  let city =
    Mad.Manipulate.insert_atom_linked db ~atype:"city"
      [ Value.String "Pn City"; Value.Int 1234 ]
      ~links:[ ("city-point", pn) ]
  in
  check "linked" true
    (Aid.Set.mem pn (Database.neighbors db "city-point" ~dir:`Fwd city.Atom.id));
  check "valid" true (Integrity.is_valid db)

(* --- the same through MOL ------------------------------------------ *)

let mql_session () =
  let b = Geo_brazil.build () in
  (b, S.create (Geo_brazil.db b))

let test_mql_delete () =
  let _, s = mql_session () in
  match
    S.run s
      "DELETE FROM mts(state-area-edge-point) WHERE state.name = 'SP';"
  with
  | S.Dml msg ->
    check "mentions kept shared atoms" true
      (String.length msg > 0);
    check_int "nine states left" 9 (Database.count_atoms s.S.db "state");
    check "valid" true (Integrity.is_valid s.S.db)
  | _ -> Alcotest.fail "expected Dml outcome"

let test_mql_delete_refreshes_catalog () =
  let _, s = mql_session () in
  ignore (S.run s "SELECT ALL FROM mts(state-area-edge-point);");
  ignore (S.run s "DELETE FROM mts WHERE state.name = 'SP';");
  match S.run s "SELECT ALL FROM mts;" with
  | S.Result (Mad_mql.Translate.Molecules mt) ->
    check_int "catalog refreshed" 9 (Mad.Molecule_type.cardinality mt)
  | _ -> Alcotest.fail "expected molecules"

let test_mql_insert_and_link () =
  let _, s = mql_session () in
  (match S.run s "INSERT INTO city VALUES ('New City', 42);" with
   | S.Inserted a ->
     check_int "city count" 7 (Database.count_atoms s.S.db "city");
     (match
        S.run s (Printf.sprintf "LINK city-point @%d @1;" a.Atom.id)
      with
      | S.Dml _ ->
        check "link exists" true (Database.linked s.S.db "city-point" a.Atom.id 1)
      | _ -> Alcotest.fail "expected Dml")
   | _ -> Alcotest.fail "expected Inserted");
  (* link accepts either role order *)
  match S.run s "INSERT INTO city VALUES ('Other', 1) LINK city-point @2;" with
  | S.Inserted a ->
    check "linked at insert" true (Database.linked s.S.db "city-point" a.Atom.id 2)
  | _ -> Alcotest.fail "expected Inserted"

let test_mql_modify () =
  let _, s = mql_session () in
  match
    S.run s
      "MODIFY state.hectare = 5 FROM state-area-edge-point WHERE point.name \
       = 'pn';"
  with
  | S.Dml msg ->
    check "four modified" true
      (let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
         go 0
       in
       contains msg "4 atom");
    ()
  | _ -> Alcotest.fail "expected Dml"

let test_mql_unlink () =
  let _, s = mql_session () in
  ignore (S.run s "UNLINK city-point @72 @1;");
  check "unlinked" false (Database.linked s.S.db "city-point" 72 1)

let test_aggregates () =
  let _, db, mt = setting () in
  let count pred =
    List.length
      (List.filter (fun m -> MA.molecule_satisfies db mt m pred) (MT.occ mt))
  in
  (* every state has 4 edges of length 1: SUM = 4, AVG = 1 *)
  check_int "sum of edge lengths" 10
    (count Mad.Qual.(Agg (Sum, "edge", "length") =% int 4));
  check_int "avg edge length" 10
    (count Mad.Qual.(Agg (Avg, "edge", "length") =% flt 1.0));
  check_int "min x of points" 10
    (count Mad.Qual.(Agg (Min, "point", "x") >=% int 0));
  (* MAX x distinguishes the two grid columns *)
  let west = count Mad.Qual.(Agg (Max, "point", "x") =% int 1) in
  let east = count Mad.Qual.(Agg (Max, "point", "x") =% int 2) in
  check_int "west column states" 5 west;
  check_int "east column states" 5 east

let test_aggregates_via_mql () =
  let _, s = mql_session () in
  match
    S.run s
      "SELECT ALL FROM mts(state-area-edge-point) WHERE SUM(edge.length) = \
       4 AND MAX(point.x) = 2;"
  with
  | S.Result (Mad_mql.Translate.Molecules mt) ->
    check_int "east column via MOL" 5 (Mad.Molecule_type.cardinality mt)
  | _ -> Alcotest.fail "expected molecules"

let test_agg_empty_component () =
  (* MIN/MAX/AVG over an empty component make the comparison false;
     SUM over it is 0 *)
  let db = Database.create () in
  ignore (Database.declare_atom_type db "a" [ Schema.Attr.v "n" Domain.Int ]);
  ignore (Database.declare_atom_type db "b" [ Schema.Attr.v "m" Domain.Int ]);
  ignore (Database.declare_link_type db "ab" ("a", "b"));
  ignore (Database.insert_atom db ~atype:"a" [ Value.Int 1 ]);
  let desc = Mad.Mdesc.v db ~nodes:[ "a"; "b" ] ~edges:[ ("ab", "a", "b") ] in
  let mt = MA.define db ~name:"t" desc in
  let count pred =
    List.length
      (List.filter (fun m -> MA.molecule_satisfies db mt m pred) (MT.occ mt))
  in
  check_int "MIN over empty is undefined" 0
    (count Mad.Qual.(Agg (Min, "b", "m") >=% int 0));
  check_int "SUM over empty is 0" 1
    (count Mad.Qual.(Agg (Sum, "b", "m") =% int 0))

let suite =
  [
    Alcotest.test_case "shared-safe delete" `Quick test_shared_safe_delete;
    Alcotest.test_case "delete all" `Quick test_delete_all_is_total;
    Alcotest.test_case "detach mode" `Quick test_detach_mode;
    Alcotest.test_case "modify" `Quick test_modify;
    Alcotest.test_case "modify domain-checked" `Quick
      test_modify_domain_checked;
    Alcotest.test_case "insert linked" `Quick test_insert_linked;
    Alcotest.test_case "MOL DELETE" `Quick test_mql_delete;
    Alcotest.test_case "MOL DELETE refreshes catalog" `Quick
      test_mql_delete_refreshes_catalog;
    Alcotest.test_case "MOL INSERT/LINK" `Quick test_mql_insert_and_link;
    Alcotest.test_case "MOL MODIFY" `Quick test_mql_modify;
    Alcotest.test_case "MOL UNLINK" `Quick test_mql_unlink;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "aggregates via MOL" `Quick test_aggregates_via_mql;
    Alcotest.test_case "aggregates on empty component" `Quick
      test_agg_empty_component;
  ]
