(* Workload generators: determinism, structural shapes, sharing
   properties. *)

open Mad_store
open Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then differs := true
  done;
  check "different seeds differ" true !differs

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    check "in range" true (x >= 0 && x < 17)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_sample () =
  let r = Rng.create 7 in
  let xs = List.init 20 Fun.id in
  let s = Rng.sample r 5 xs in
  check_int "five" 5 (List.length s);
  check "subset" true (List.for_all (fun x -> List.mem x xs) s);
  check_int "no dup" 5 (List.length (List.sort_uniq compare s));
  check "oversample = all" true (List.length (Rng.sample r 50 xs) = 20)

let test_geo_gen_deterministic () =
  let g1 = Geo_gen.build Geo_gen.default in
  let g2 = Geo_gen.build Geo_gen.default in
  check_int "same atoms"
    (Database.total_atoms g1.Geo_grid.db)
    (Database.total_atoms g2.Geo_grid.db);
  check_int "same links"
    (Database.total_links g1.Geo_grid.db)
    (Database.total_links g2.Geo_grid.db);
  check "identical dumps" true
    (String.equal
       (Serialize.dump g1.Geo_grid.db)
       (Serialize.dump g2.Geo_grid.db))

let test_geo_grid_shapes () =
  let g = Geo_gen.build { Geo_gen.default with Geo_gen.rows = 3; cols = 5; rivers = 0; cities = 0 } in
  let db = g.Geo_grid.db in
  check_int "states" 15 (Database.count_atoms db "state");
  check_int "areas" 15 (Database.count_atoms db "area");
  (* edges: (rows+1)*cols + (cols+1)*rows = 4*5 + 6*3 = 38 *)
  check_int "edges" 38 (Database.count_atoms db "edge");
  (* points: (cols+1)*(rows+1) = 24 *)
  check_int "points" 24 (Database.count_atoms db "point");
  (* every area has exactly 4 border edges *)
  List.iter
    (fun (a : Atom.t) ->
      check_int "4 borders" 4
        (Aid.Set.cardinal (Database.neighbors db "area-edge" ~dir:`Fwd a.id)))
    (Database.atoms db "area");
  (* every edge has exactly 2 endpoints *)
  List.iter
    (fun (e : Atom.t) ->
      check_int "2 endpoints" 2
        (Aid.Set.cardinal (Database.neighbors db "edge-point" ~dir:`Fwd e.id)))
    (Database.atoms db "edge");
  (* interior edges are shared by exactly 2 areas *)
  let shared =
    List.filter
      (fun (e : Atom.t) ->
        Aid.Set.cardinal (Database.neighbors db "area-edge" ~dir:`Bwd e.id) = 2)
      (Database.atoms db "edge")
  in
  (* interior: rows*(cols-1) vertical + (rows-1)*cols horizontal = 3*4 + 2*5 = 22 *)
  check_int "interior edges shared" 22 (List.length shared)

let test_shared_vs_private_rivers () =
  let shared =
    Geo_gen.build { Geo_gen.default with Geo_gen.shared_rivers = true }
  in
  let priv =
    Geo_gen.build { Geo_gen.default with Geo_gen.shared_rivers = false }
  in
  check "private build is bigger" true
    (Database.total_atoms priv.Geo_grid.db
     > Database.total_atoms shared.Geo_grid.db);
  check "both valid" true
    (Integrity.is_valid shared.Geo_grid.db
     && Integrity.is_valid priv.Geo_grid.db)

let test_bom_shapes () =
  let p = { Bom_gen.default with Bom_gen.depth = 3; width = 4; fanout = 2; share = 0.0 } in
  let bom = Bom_gen.build p in
  check_int "parts" 12 (Database.count_atoms bom.Bom_gen.db "part");
  (* with share = 0 every super links to fanout distinct neighbours *)
  Array.iteri
    (fun lvl row ->
      if lvl < 2 then
        Array.iter
          (fun part ->
            check "fanout bounded" true
              (Aid.Set.cardinal
                 (Database.neighbors bom.Bom_gen.db "composition" ~dir:`Fwd part)
               <= p.Bom_gen.fanout))
          row)
    bom.Bom_gen.levels;
  check "valid" true (Integrity.is_valid bom.Bom_gen.db)

let test_vlsi_shapes () =
  let d = Vlsi_gen.build Vlsi_gen.default in
  let db = d.Vlsi_gen.db in
  check "valid" true (Integrity.is_valid db);
  (* every cell has pins_per_cell pins, each owned by exactly one cell *)
  List.iter
    (fun (c : Atom.t) ->
      check_int "pins per cell" Vlsi_gen.default.Vlsi_gen.pins_per_cell
        (Aid.Set.cardinal (Database.neighbors db "cell-pin" ~dir:`Fwd c.id)))
    (Database.atoms db "cell");
  List.iter
    (fun (p : Atom.t) ->
      check_int "one owner" 1
        (Aid.Set.cardinal (Database.neighbors db "cell-pin" ~dir:`Bwd p.id)))
    (Database.atoms db "pin");
  (* TOP reaches every module of the highest level *)
  check_int "top instantiates top-level modules"
    Vlsi_gen.default.Vlsi_gen.modules_per_level
    (Aid.Set.cardinal
       (Database.neighbors db "instantiates" ~dir:`Fwd d.Vlsi_gen.top))

let test_office_strict_tree () =
  let db = Office_gen.build Office_gen.default in
  (* every section has exactly one document, every paragraph one section *)
  List.iter
    (fun (s : Atom.t) ->
      Alcotest.(check int)
        "one doc" 1
        (Aid.Set.cardinal (Database.neighbors db "doc-sec" ~dir:`Bwd s.id)))
    (Database.atoms db "section");
  List.iter
    (fun (p : Atom.t) ->
      Alcotest.(check int)
        "one section" 1
        (Aid.Set.cardinal (Database.neighbors db "sec-para" ~dir:`Bwd p.id)))
    (Database.atoms db "paragraph")

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng sample" `Quick test_rng_sample;
    Alcotest.test_case "geo_gen deterministic" `Quick
      test_geo_gen_deterministic;
    Alcotest.test_case "geo grid shapes" `Quick test_geo_grid_shapes;
    Alcotest.test_case "shared vs private rivers" `Quick
      test_shared_vs_private_rivers;
    Alcotest.test_case "bom shapes" `Quick test_bom_shapes;
    Alcotest.test_case "vlsi shapes" `Quick test_vlsi_shapes;
    Alcotest.test_case "office strict tree" `Quick test_office_strict_tree;
  ]
