(* Kernel/scalar parity: the bitset derivation kernel (CSR snapshots,
   domain pool) must produce exactly the molecules — and exactly the
   work accounting — of the scalar walk, on every workload shape:
   hierarchical grids, diamonds, reflexive closures; sequentially and
   chunked across domains; and across mutation epochs. *)

open Mad_store
open Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let same_molecules what expected actual =
  check_int (what ^ ": cardinality") (List.length expected) (List.length actual);
  List.iter2
    (fun (e : Mad.Molecule.t) (a : Mad.Molecule.t) ->
      check (what ^ ": molecule " ^ Aid.to_string e.root) true
        (Mad.Molecule.equal e a);
      (* Molecule.equal compares the atom union; the node partition
         must match too (explicitly empty components included) *)
      check (what ^ ": partition " ^ Aid.to_string e.root) true
        (Mad.Molecule.Smap.equal Aid.Set.equal e.Mad.Molecule.by_node
           a.Mad.Molecule.by_node))
    expected actual

(* scalar vs kernel (par=1) vs kernel (par=4): same molecules, same
   stats *)
let parity_on what db desc =
  let s_scalar = Mad.Derive.stats () in
  let scalar = Mad.Derive.m_dom_scalar ~stats:s_scalar db desc in
  let s_k1 = Mad.Derive.stats () in
  let k1 = Mad.Derive.m_dom ~stats:s_k1 ~kernel:true ~par:1 db desc in
  let s_k4 = Mad.Derive.stats () in
  let k4 = Mad.Derive.m_dom ~stats:s_k4 ~kernel:true ~par:4 db desc in
  same_molecules (what ^ " par=1") scalar k1;
  same_molecules (what ^ " par=4") scalar k4;
  List.iter
    (fun (p, s) ->
      check_int
        (what ^ " " ^ p ^ ": atoms_visited")
        (Mad.Derive.atoms_visited s_scalar)
        (Mad.Derive.atoms_visited s);
      check_int
        (what ^ " " ^ p ^ ": links_traversed")
        (Mad.Derive.links_traversed s_scalar)
        (Mad.Derive.links_traversed s))
    [ ("par=1", s_k1); ("par=4", s_k4) ]

let grid () =
  Geo_grid.build ~rows:6 ~cols:6
    (List.init 36 (Printf.sprintf "S%02d"))

let test_geo_grid_parity () =
  let g = grid () in
  let db = g.Geo_grid.db in
  ignore
    (Geo_grid.add_river g ~name:"R" ~length:120
       [ g.Geo_grid.h_edges.(1).(1); g.Geo_grid.h_edges.(1).(2) ]);
  ignore (Geo_grid.add_private_river g ~name:"P" ~length:80 3);
  parity_on "mt_state" db (Geo_schema.mt_state_desc db);
  parity_on "point_neighborhood" db (Geo_schema.point_neighborhood_desc db)

let test_vlsi_parity () =
  let v = Vlsi_gen.build Vlsi_gen.default in
  let db = v.Vlsi_gen.db in
  let desc =
    Mad.Mdesc.v db ~nodes:[ "cell"; "pin"; "net" ]
      ~edges:[ ("cell-pin", "cell", "pin"); ("net-pin", "pin", "net") ]
  in
  parity_on "vlsi cell-pin-net" db desc

let diamond_db () =
  let db = Database.create () in
  List.iter
    (fun n ->
      ignore (Database.declare_atom_type db n [ Schema.Attr.v "v" Domain.Int ]))
    [ "r"; "x"; "y"; "z" ];
  ignore (Database.declare_link_type db "rx" ("r", "x"));
  ignore (Database.declare_link_type db "ry" ("r", "y"));
  ignore (Database.declare_link_type db "xz" ("x", "z"));
  ignore (Database.declare_link_type db "yz" ("y", "z"));
  let atom ty v = (Database.insert_atom db ~atype:ty [ Value.Int v ]).Atom.id in
  (* several roots, z atoms with 0/1/2 supplying parents *)
  for i = 0 to 7 do
    let r = atom "r" (10 * i) in
    let x = atom "x" (10 * i + 1) in
    let y = atom "y" (10 * i + 2) in
    let z_both = atom "z" (10 * i + 3) in
    let z_x = atom "z" (10 * i + 4) in
    Database.add_link db "rx" ~left:r ~right:x;
    Database.add_link db "ry" ~left:r ~right:y;
    Database.add_link db "xz" ~left:x ~right:z_both;
    Database.add_link db "yz" ~left:y ~right:z_both;
    Database.add_link db "xz" ~left:x ~right:z_x
  done;
  let desc =
    Mad.Mdesc.v db ~nodes:[ "r"; "x"; "y"; "z" ]
      ~edges:
        [ ("rx", "r", "x"); ("ry", "r", "y"); ("xz", "x", "z"); ("yz", "y", "z") ]
  in
  (db, desc)

let test_diamond_parity () =
  let db, desc = diamond_db () in
  parity_on "diamond" db desc;
  (* the conjunctive rule itself, through the kernel *)
  let m = List.hd (Mad.Derive.m_dom ~kernel:true db desc) in
  check_int "z has only the both-parents atom" 1
    (Aid.Set.cardinal (Mad.Molecule.component m "z"))

let test_derive_one_warm_path () =
  let db, desc = diamond_db () in
  let roots = Database.atoms db "r" in
  let root = (List.hd roots).Atom.id in
  let cold = Mad.Derive.derive_one db desc root in
  (* warm a snapshot, then the default one-shot path goes kernel *)
  ignore (Mad.Derive.m_dom ~kernel:true db desc);
  let warm = Mad.Derive.derive_one db desc root in
  check "cold (scalar) = warm (kernel)" true (Mad.Molecule.equal cold warm);
  (* with MAD_KERNEL=off the warm path stays scalar — only assert the
     fast path when the kernel is actually enabled *)
  let kernel_off =
    match Sys.getenv_opt "MAD_KERNEL" with
    | Some ("off" | "0" | "scalar" | "no" | "false") -> true
    | _ -> false
  in
  if not kernel_off then
    check "path reports warm snapshot" true
      (let s = Mad.Derive.describe_path db in
       String.length s >= 6 && String.sub s 0 6 = "kernel")

let test_epoch_invalidation () =
  let db, desc = diamond_db () in
  let k0 = Mad.Derive.m_dom ~kernel:true db desc in
  same_molecules "before mutation" (Mad.Derive.m_dom_scalar db desc) k0;
  let e0 = Database.epoch db in
  (* grow one molecule: a fresh z under both x and y of root 0 *)
  let m0 = List.hd k0 in
  let x = Aid.Set.min_elt (Mad.Molecule.component m0 "x") in
  let y = Aid.Set.min_elt (Mad.Molecule.component m0 "y") in
  let z = (Database.insert_atom db ~atype:"z" [ Value.Int 999 ]).Atom.id in
  Database.add_link db "xz" ~left:x ~right:z;
  Database.add_link db "yz" ~left:y ~right:z;
  check "epoch moved" true (Database.epoch db > e0);
  check "stale snapshot not peekable" true
    (match Mad_kernel.Snapshot.peek db with None -> true | Some _ -> false);
  let k1 = Mad.Derive.m_dom ~kernel:true db desc in
  same_molecules "after mutation" (Mad.Derive.m_dom_scalar db desc) k1;
  check "new atom derived" true
    (Aid.Set.mem z (Mad.Molecule.component (List.hd k1) "z"))

(* reflexive link types (no plain-structure coverage) go through the
   closure kernel of the recursive extension *)
let test_bom_closure_parity () =
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  List.iter
    (fun (view, max_depth) ->
      let d =
        Mad_recursive.Recursive.v db ~root_type:"part" ~link:"composition"
          ~view ?max_depth ()
      in
      let s_s = Mad.Derive.stats () and s_k = Mad.Derive.stats () in
      let scalar = Mad_recursive.Recursive.m_dom ~stats:s_s ~kernel:false db d in
      let kernel = Mad_recursive.Recursive.m_dom ~stats:s_k ~kernel:true db d in
      let what =
        Format.asprintf "bom %a depth=%a" Mad_recursive.Recursive.pp_view view
          Fmt.(option ~none:(any "inf") int)
          max_depth
      in
      check_int (what ^ ": cardinality") (List.length scalar)
        (List.length kernel);
      List.iter2
        (fun (a : Mad_recursive.Recursive.molecule)
             (b : Mad_recursive.Recursive.molecule) ->
          check (what ^ ": molecule") true
            (Mad_recursive.Recursive.equal_molecule a b);
          check (what ^ ": depths") true
            (Aid.Map.equal Int.equal a.depth_of b.depth_of))
        scalar kernel;
      check_int (what ^ ": atoms_visited") (Mad.Derive.atoms_visited s_s)
        (Mad.Derive.atoms_visited s_k);
      check_int (what ^ ": links_traversed") (Mad.Derive.links_traversed s_s)
        (Mad.Derive.links_traversed s_k))
    [ (Mad_recursive.Recursive.Sub, None);
      (Mad_recursive.Recursive.Super, None);
      (Mad_recursive.Recursive.Sub, Some 2) ]

let test_closure_memo_invalidation () =
  (* the recursive kernel path memoizes shared member/link sets per
     (db, epoch); a mutation must invalidate them like the snapshot *)
  let bom = Bom_gen.build Bom_gen.default in
  let db = bom.Bom_gen.db in
  let d =
    Mad_recursive.Recursive.v db ~root_type:"part" ~link:"composition" ()
  in
  ignore (Mad_recursive.Recursive.m_dom ~kernel:true db d);
  let top = bom.Bom_gen.levels.(0).(0) in
  let extra =
    (Database.insert_atom db ~atype:"part"
       [ Value.String "extra"; Value.Int 99; Value.Int 1 ])
      .Atom.id
  in
  Database.add_link db "composition" ~left:top ~right:extra;
  let scalar = Mad_recursive.Recursive.m_dom ~kernel:false db d in
  let kernel = Mad_recursive.Recursive.m_dom ~kernel:true db d in
  List.iter2
    (fun a b ->
      check "post-mutation molecule" true
        (Mad_recursive.Recursive.equal_molecule a b))
    scalar kernel;
  check "new part expanded under top" true
    (List.exists
       (fun (m : Mad_recursive.Recursive.molecule) ->
         m.root = top && Aid.Set.mem extra m.members)
       kernel)

let test_cyclic_closure_fallback () =
  (* a cycle defeats the DAG memo; the kernel must fall back to the
     per-root BFS and still agree with the scalar fixpoint *)
  let db = Database.create () in
  ignore
    (Database.declare_atom_type db "task" [ Schema.Attr.v "n" Domain.Int ]);
  ignore (Database.declare_link_type db "feeds" ("task", "task"));
  let atom v = (Database.insert_atom db ~atype:"task" [ Value.Int v ]).Atom.id in
  let a = atom 1 and b = atom 2 and c = atom 3 and d0 = atom 4 in
  Database.add_link db "feeds" ~left:a ~right:b;
  Database.add_link db "feeds" ~left:b ~right:c;
  Database.add_link db "feeds" ~left:c ~right:a;
  Database.add_link db "feeds" ~left:c ~right:d0;
  let d = Mad_recursive.Recursive.v db ~root_type:"task" ~link:"feeds" () in
  let scalar = Mad_recursive.Recursive.m_dom ~kernel:false db d in
  let kernel = Mad_recursive.Recursive.m_dom ~kernel:true db d in
  check_int "cycle: cardinality" (List.length scalar) (List.length kernel);
  List.iter2
    (fun (x : Mad_recursive.Recursive.molecule)
         (y : Mad_recursive.Recursive.molecule) ->
      check "cycle: molecule" true (Mad_recursive.Recursive.equal_molecule x y);
      check "cycle: depths" true (Aid.Map.equal Int.equal x.depth_of y.depth_of))
    scalar kernel;
  let m_a =
    List.find (fun (m : Mad_recursive.Recursive.molecule) -> m.root = a) kernel
  in
  check_int "cycle closure reaches every task" 4 (Aid.Set.cardinal m_a.members)

let test_vlsi_instantiates_closure () =
  let v = Vlsi_gen.build Vlsi_gen.default in
  let db = v.Vlsi_gen.db in
  let d =
    Mad_recursive.Recursive.v db ~root_type:"cell" ~link:"instantiates" ()
  in
  let scalar = Mad_recursive.Recursive.m_dom ~kernel:false db d in
  let kernel = Mad_recursive.Recursive.m_dom ~kernel:true db d in
  check_int "vlsi instantiates: cardinality" (List.length scalar)
    (List.length kernel);
  List.iter2
    (fun a b ->
      check "vlsi instantiates: molecule" true
        (Mad_recursive.Recursive.equal_molecule a b))
    scalar kernel

let test_restrict_parallel_parity () =
  let g = grid () in
  let db = g.Geo_grid.db in
  let desc = Geo_schema.mt_state_desc db in
  let mt = Mad.Molecule_algebra.define db ~name:"mt36" desc in
  let pred = Mad.Qual.(attr "state" "hectare" >=% int 400) in
  let seq = Mad.Molecule_algebra.restrict ~par:1 ~name:"seq" db pred mt in
  let par = Mad.Molecule_algebra.restrict ~par:4 ~name:"par" db pred mt in
  same_molecules "sigma par=4"
    (Mad.Molecule_type.occ seq)
    (Mad.Molecule_type.occ par)

let test_pool_counters_across_domains () =
  (* Metric counters are Atomic: concurrent adds from pool workers must
     not tear or drop *)
  let c = Mad_obs.Metric.counter "t.atomic" in
  Mad_kernel.Pool.run_chunks ~par:4 4000 (fun lo hi ->
      for _ = lo to hi - 1 do
        Mad_obs.Metric.incr c
      done);
  check_int "4000 increments survive" 4000 (Mad_obs.Metric.value c);
  (* chunk boundaries partition the range exactly *)
  let seen = Array.make 100 0 in
  Mad_kernel.Pool.run_chunks ~par:3 100 (fun lo hi ->
      for i = lo to hi - 1 do
        seen.(i) <- seen.(i) + 1
      done);
  Array.iteri (fun i n -> check_int (Printf.sprintf "index %d" i) 1 n) seen

let test_registry_stats_parity () =
  (* registry-backed handles: per-node accounting must agree between
     the scalar walk and the kernel flush *)
  let db, desc = diamond_db () in
  let reg_s = Mad_obs.Registry.create () and reg_k = Mad_obs.Registry.create () in
  ignore (Mad.Derive.m_dom_scalar ~stats:(Mad.Derive.stats_in reg_s) db desc);
  ignore
    (Mad.Derive.m_dom ~stats:(Mad.Derive.stats_in reg_k) ~kernel:true ~par:4 db
       desc);
  List.iter
    (fun node ->
      let labels = [ ("node", node) ] in
      check_int ("derive.atoms node=" ^ node)
        (Mad_obs.Registry.counter_value reg_s ~labels "derive.atoms")
        (Mad_obs.Registry.counter_value reg_k ~labels "derive.atoms");
      check_int ("derive.links node=" ^ node)
        (Mad_obs.Registry.counter_value reg_s ~labels "derive.links")
        (Mad_obs.Registry.counter_value reg_k ~labels "derive.links"))
    [ "r"; "x"; "y"; "z" ];
  check "kernel.runs accounted" true
    (Mad_obs.Registry.counter_value reg_k "kernel.runs" >= 1)

let suite =
  [
    Alcotest.test_case "geo grid parity (scalar/kernel, par 1 and 4)" `Quick
      test_geo_grid_parity;
    Alcotest.test_case "vlsi cell-pin-net parity" `Quick test_vlsi_parity;
    Alcotest.test_case "diamond parity (conjunctive AND)" `Quick
      test_diamond_parity;
    Alcotest.test_case "derive_one uses warm snapshot" `Quick
      test_derive_one_warm_path;
    Alcotest.test_case "epoch invalidation on mutation" `Quick
      test_epoch_invalidation;
    Alcotest.test_case "bom closure parity (reflexive, depths)" `Quick
      test_bom_closure_parity;
    Alcotest.test_case "closure memo invalidated by mutation" `Quick
      test_closure_memo_invalidation;
    Alcotest.test_case "cyclic link graph falls back to BFS" `Quick
      test_cyclic_closure_fallback;
    Alcotest.test_case "vlsi instantiates closure parity" `Quick
      test_vlsi_instantiates_closure;
    Alcotest.test_case "sigma restriction parallel parity" `Quick
      test_restrict_parallel_parity;
    Alcotest.test_case "atomic counters across pool domains" `Quick
      test_pool_counters_across_domains;
    Alcotest.test_case "registry per-node stats parity" `Quick
      test_registry_stats_parity;
  ]
