(* Unit tests for the storage substrate: values, domains, schemas,
   database occurrence and integrity. *)

open Mad_store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let expect_error f =
  match f () with
  | _ -> Alcotest.fail "expected Mad_error"
  | exception Err.Mad_error _ -> ()

(* a tiny two-type database used by several cases *)
let tiny () =
  let db = Database.create () in
  ignore
    (Database.declare_atom_type db "a"
       [ Schema.Attr.v "name" Domain.String; Schema.Attr.v "n" Domain.Int ]);
  ignore (Database.declare_atom_type db "b" [ Schema.Attr.v "m" Domain.Int ]);
  ignore (Database.declare_link_type db "ab" ("a", "b"));
  db

let test_value_order () =
  check "int eq" true (Value.equal (Value.Int 3) (Value.Int 3));
  check "semantic int/float" true
    (Value.equal_sem (Value.Int 2) (Value.Float 2.0));
  check "structural int/float differ" false
    (Value.equal (Value.Int 2) (Value.Float 2.0));
  check "string order" true (Value.compare (Value.String "a") (Value.String "b") < 0);
  check "list order" true
    (Value.compare (Value.List [ Value.Int 1 ]) (Value.List [ Value.Int 2 ]) < 0)

let test_domain_mem () =
  check "int in INT" true (Domain.mem (Value.Int 1) Domain.Int);
  check "string not in INT" false (Domain.mem (Value.String "x") Domain.Int);
  check "enum member" true
    (Domain.mem (Value.String "red") (Domain.Enum [ "red"; "blue" ]));
  check "enum non-member" false
    (Domain.mem (Value.String "green") (Domain.Enum [ "red"; "blue" ]));
  check "list of int" true
    (Domain.mem (Value.List [ Value.Int 1; Value.Int 2 ]) (Domain.List_of Domain.Int));
  check "heterogeneous list rejected" false
    (Domain.mem
       (Value.List [ Value.Int 1; Value.String "x" ])
       (Domain.List_of Domain.Int))

let test_atom_type_dup_attr () =
  expect_error (fun () ->
      Schema.Atom_type.v "bad"
        [ Schema.Attr.v "x" Domain.Int; Schema.Attr.v "x" Domain.Int ])

let test_insert_and_fetch () =
  let db = tiny () in
  let a = Database.insert_atom db ~atype:"a" [ Value.String "one"; Value.Int 1 ] in
  let at = Database.atom_type db "a" in
  check_str "attr by name" "one"
    (match Atom.value a at "name" with Value.String s -> s | _ -> "?");
  check_int "count" 1 (Database.count_atoms db "a");
  expect_error (fun () ->
      Database.insert_atom db ~atype:"a" [ Value.Int 1; Value.Int 1 ]);
  expect_error (fun () -> Database.insert_atom db ~atype:"a" [ Value.Int 1 ])

let test_links_and_neighbors () =
  let db = tiny () in
  let a1 = Database.insert_atom db ~atype:"a" [ Value.String "a1"; Value.Int 1 ] in
  let a2 = Database.insert_atom db ~atype:"a" [ Value.String "a2"; Value.Int 2 ] in
  let b1 = Database.insert_atom db ~atype:"b" [ Value.Int 10 ] in
  let b2 = Database.insert_atom db ~atype:"b" [ Value.Int 20 ] in
  Database.add_link db "ab" ~left:a1.id ~right:b1.id;
  Database.add_link db "ab" ~left:a1.id ~right:b2.id;
  Database.add_link db "ab" ~left:a2.id ~right:b1.id;
  check_int "a1 partners" 2
    (Aid.Set.cardinal (Database.neighbors db "ab" ~dir:`Fwd a1.id));
  check_int "b1 partners (symmetric)" 2
    (Aid.Set.cardinal (Database.neighbors db "ab" ~dir:`Bwd b1.id));
  check "linked unsorted" true (Database.linked db "ab" b1.id a1.id);
  (* duplicate add is idempotent *)
  Database.add_link db "ab" ~left:a1.id ~right:b1.id;
  check_int "no dup link" 3 (Database.count_links db "ab");
  Database.remove_link db "ab" ~left:a1.id ~right:b1.id;
  check_int "removed" 2 (Database.count_links db "ab");
  check "neighbor gone" false
    (Aid.Set.mem b1.id (Database.neighbors db "ab" ~dir:`Fwd a1.id))

let test_wrong_endpoint_type () =
  let db = tiny () in
  let a1 = Database.insert_atom db ~atype:"a" [ Value.String "a1"; Value.Int 1 ] in
  let b1 = Database.insert_atom db ~atype:"b" [ Value.Int 10 ] in
  (* left must be of type a *)
  expect_error (fun () -> Database.add_link db "ab" ~left:b1.id ~right:a1.id)

let test_cardinality_enforced () =
  let db = Database.create () in
  ignore (Database.declare_atom_type db "a" [ Schema.Attr.v "n" Domain.Int ]);
  ignore (Database.declare_atom_type db "b" [ Schema.Attr.v "m" Domain.Int ]);
  ignore
    (Database.declare_link_type db ~card:(Some 1, Some 2) "ab" ("a", "b"));
  let a1 = Database.insert_atom db ~atype:"a" [ Value.Int 1 ] in
  let b1 = Database.insert_atom db ~atype:"b" [ Value.Int 1 ] in
  let b2 = Database.insert_atom db ~atype:"b" [ Value.Int 2 ] in
  let b3 = Database.insert_atom db ~atype:"b" [ Value.Int 3 ] in
  Database.add_link db "ab" ~left:a1.id ~right:b1.id;
  Database.add_link db "ab" ~left:a1.id ~right:b2.id;
  (* a1 may carry at most 2 links (right bound) *)
  expect_error (fun () -> Database.add_link db "ab" ~left:a1.id ~right:b3.id);
  (* each b at most 1 link (left bound) *)
  let a2 = Database.insert_atom db ~atype:"a" [ Value.Int 2 ] in
  expect_error (fun () -> Database.add_link db "ab" ~left:a2.id ~right:b1.id)

let test_delete_cascades () =
  let db = tiny () in
  let a1 = Database.insert_atom db ~atype:"a" [ Value.String "a1"; Value.Int 1 ] in
  let b1 = Database.insert_atom db ~atype:"b" [ Value.Int 10 ] in
  Database.add_link db "ab" ~left:a1.id ~right:b1.id;
  Database.delete_atom db b1.id;
  check_int "link cascaded" 0 (Database.count_links db "ab");
  check_int "atom gone" 0 (Database.count_atoms db "b");
  check "still valid" true (Integrity.is_valid db)

let test_integrity_detects_corruption () =
  let db = tiny () in
  let a1 = Database.insert_atom db ~atype:"a" [ Value.String "a1"; Value.Int 1 ] in
  let b1 = Database.insert_atom db ~atype:"b" [ Value.Int 10 ] in
  Database.add_link db "ab" ~left:a1.id ~right:b1.id;
  check "valid before corruption" true (Integrity.is_valid db);
  (* corrupt behind the API's back: remove the atom record directly *)
  let tbl = Database.atom_table db "b" in
  Hashtbl.remove tbl.Database.atoms b1.id;
  tbl.Database.ids <- Aid.Set.remove b1.id tbl.Database.ids;
  let violations = Integrity.check db in
  check "dangling link detected" true
    (List.exists
       (function Integrity.Dangling_link _ -> true | _ -> false)
       violations)

let test_integrity_detects_cardinality () =
  let db = Database.create () in
  ignore (Database.declare_atom_type db "a" [ Schema.Attr.v "n" Domain.Int ]);
  ignore (Database.declare_atom_type db "b" [ Schema.Attr.v "m" Domain.Int ]);
  (* declared without cardinality, then retro-fitted: simulate corruption *)
  ignore (Database.declare_link_type db "ab" ("a", "b"));
  let a1 = Database.insert_atom db ~atype:"a" [ Value.Int 1 ] in
  let b1 = Database.insert_atom db ~atype:"b" [ Value.Int 1 ] in
  let b2 = Database.insert_atom db ~atype:"b" [ Value.Int 2 ] in
  Database.add_link db "ab" ~left:a1.id ~right:b1.id;
  Database.add_link db "ab" ~left:a1.id ~right:b2.id;
  let st = Database.link_store db "ab" in
  let st' =
    {
      st with
      Database.lt = Schema.Link_type.v ~card:(None, Some 1) "ab" ("a", "b");
    }
  in
  Hashtbl.replace db.Database.link_stores "ab" st';
  let violations = Integrity.check db in
  check "cardinality violation detected" true
    (List.exists
       (function Integrity.Cardinality _ -> true | _ -> false)
       violations)

let test_copy_isolation () =
  let db = tiny () in
  let a1 = Database.insert_atom db ~atype:"a" [ Value.String "a1"; Value.Int 1 ] in
  let db' = Database.copy db in
  let b1 = Database.insert_atom db' ~atype:"b" [ Value.Int 10 ] in
  Database.add_link db' "ab" ~left:a1.id ~right:b1.id;
  check_int "original untouched (atoms)" 0 (Database.count_atoms db "b");
  check_int "original untouched (links)" 0 (Database.count_links db "ab");
  check_int "copy has them" 1 (Database.count_links db' "ab")

let test_link_types_between () =
  let db = tiny () in
  check_int "one link type between a,b" 1
    (List.length (Database.link_types_between db "a" "b"));
  check_int "symmetric lookup" 1
    (List.length (Database.link_types_between db "b" "a"));
  check_int "none between a,a" 0
    (List.length (Database.link_types_between db "a" "a"))

let test_neighbors_scan_agrees () =
  let db = tiny () in
  let a1 = Database.insert_atom db ~atype:"a" [ Value.String "a1"; Value.Int 1 ] in
  let a2 = Database.insert_atom db ~atype:"a" [ Value.String "a2"; Value.Int 2 ] in
  let b1 = Database.insert_atom db ~atype:"b" [ Value.Int 10 ] in
  let b2 = Database.insert_atom db ~atype:"b" [ Value.Int 20 ] in
  Database.add_link db "ab" ~left:a1.id ~right:b1.id;
  Database.add_link db "ab" ~left:a1.id ~right:b2.id;
  Database.add_link db "ab" ~left:a2.id ~right:b2.id;
  List.iter
    (fun id ->
      List.iter
        (fun dir ->
          check "scan = index" true
            (Aid.Set.equal
               (Database.neighbors db "ab" ~dir id)
               (Database.neighbors_scan db "ab" ~dir id)))
        [ `Fwd; `Bwd; `Both ])
    [ a1.id; a2.id; b1.id; b2.id ]

let test_reflexive_roles () =
  let db = Database.create () in
  ignore (Database.declare_atom_type db "part" [ Schema.Attr.v "n" Domain.Int ]);
  ignore (Database.declare_link_type db "comp" ("part", "part"));
  let p1 = Database.insert_atom db ~atype:"part" [ Value.Int 1 ] in
  let p2 = Database.insert_atom db ~atype:"part" [ Value.Int 2 ] in
  Database.add_link db "comp" ~left:p1.id ~right:p2.id;
  check "fwd = sub-components" true
    (Aid.Set.mem p2.id (Database.neighbors db "comp" ~dir:`Fwd p1.id));
  check "bwd = super-components" true
    (Aid.Set.mem p1.id (Database.neighbors db "comp" ~dir:`Bwd p2.id));
  check "no fwd from child" false
    (Aid.Set.mem p1.id (Database.neighbors db "comp" ~dir:`Fwd p2.id))

let suite =
  [
    Alcotest.test_case "value ordering" `Quick test_value_order;
    Alcotest.test_case "domain membership" `Quick test_domain_mem;
    Alcotest.test_case "duplicate attribute rejected" `Quick
      test_atom_type_dup_attr;
    Alcotest.test_case "insert and fetch" `Quick test_insert_and_fetch;
    Alcotest.test_case "links and neighbors" `Quick test_links_and_neighbors;
    Alcotest.test_case "wrong endpoint type rejected" `Quick
      test_wrong_endpoint_type;
    Alcotest.test_case "cardinality enforced" `Quick test_cardinality_enforced;
    Alcotest.test_case "delete cascades links" `Quick test_delete_cascades;
    Alcotest.test_case "integrity detects dangling link" `Quick
      test_integrity_detects_corruption;
    Alcotest.test_case "integrity detects cardinality" `Quick
      test_integrity_detects_cardinality;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    Alcotest.test_case "link_types_between" `Quick test_link_types_between;
    Alcotest.test_case "reflexive link roles" `Quick test_reflexive_roles;
    Alcotest.test_case "neighbors scan = index" `Quick
      test_neighbors_scan_agrees;
  ]
