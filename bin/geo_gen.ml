(* geo_gen — generate synthetic cartographic databases (the SHARE
   workload) and report their structure. *)

open Mad_store
open Cmdliner

let run rows cols rivers river_len cities shared seed dot =
  let p =
    {
      Workloads.Geo_gen.rows;
      cols;
      rivers;
      river_len;
      cities;
      shared_rivers = shared;
      seed;
    }
  in
  let g = Workloads.Geo_gen.build p in
  let db = g.Workloads.Geo_grid.db in
  if dot then print_string (Dot.occurrence_to_string db)
  else begin
    Format.printf "%a@." Database.pp_summary db;
    List.iter
      (fun at ->
        Format.printf "  %-6s: %5d atoms@." at (Database.count_atoms db at))
      (Database.atom_type_names db);
    List.iter
      (fun lt ->
        Format.printf "  %-12s: %5d links@." lt (Database.count_links db lt))
      (Database.link_type_names db);
    (* sharing report: how many edges serve more than one owner *)
    let shared_edges =
      List.length
        (List.filter
           (fun (e : Atom.t) ->
             let owners =
               Aid.Set.cardinal (Database.neighbors db "area-edge" ~dir:`Bwd e.id)
               + Aid.Set.cardinal (Database.neighbors db "net-edge" ~dir:`Bwd e.id)
             in
             owners > 1)
           (Database.atoms db "edge"))
    in
    Format.printf "edges with more than one owner (shared subobjects): %d@."
      shared_edges
  end;
  0

let () =
  let rows = Arg.(value & opt int 4 & info [ "rows" ] ~doc:"Grid rows.") in
  let cols = Arg.(value & opt int 4 & info [ "cols" ] ~doc:"Grid columns.") in
  let rivers = Arg.(value & opt int 4 & info [ "rivers" ] ~doc:"River count.") in
  let river_len =
    Arg.(value & opt int 4 & info [ "river-len" ] ~doc:"Edges per river.")
  in
  let cities = Arg.(value & opt int 8 & info [ "cities" ] ~doc:"City count.") in
  let shared =
    Arg.(value & opt bool true & info [ "shared" ] ~doc:"Rivers reuse border edges.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT.") in
  let term =
    Term.(
      const run $ rows $ cols $ rivers $ river_len $ cities $ shared $ seed
      $ dot)
  in
  exit (Cmd.eval' (Cmd.v (Cmd.info "geo_gen" ~version:"1.0") term))
