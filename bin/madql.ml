(* madql — the MOL command-line processor.

   Subcommands:
     repl     interactive MOL session against a built-in database
     query    evaluate one MOL statement
     explain  show the algebra plan and PRIMA's optimized plan
     schema   print the schema (MAD diagram) or the formal Fig. 4 view
     dot      emit Graphviz for the schema or the atom networks
     digest   run statements and report the workload digest
     trace    run statements and dump the flight recorder (Chrome trace)
     timeline run statements, sampling telemetry frames; export JSON/CSV
     health   run statements and report the health verdict (exit 0/1/2)
     top      live terminal view: health, runtime gauges, counter rates
     recovery run the crash-recovery fault-injection suite
     serve    TCP server multiplexing MOL sessions (group commit)
     connect  client for a running serve endpoint

   repl, query, explain and script take --data DIR to run against a
   durable store (snapshot + write-ahead log) instead of a transient
   in-memory database.  query takes --trace FILE (and the repl
   :trace) to dump the engine's flight-recorder ring as Chrome
   trace-event JSON, loadable in Perfetto. *)

open Mad_store
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Built-in databases                                                   *)

let load_db = function
  | "brazil" -> Workloads.Geo_brazil.db (Workloads.Geo_brazil.build ())
  | "geo" -> (Workloads.Geo_gen.build Workloads.Geo_gen.default).Workloads.Geo_grid.db
  | "bom" -> (Workloads.Bom_gen.build Workloads.Bom_gen.default).Workloads.Bom_gen.db
  | "office" -> Workloads.Office_gen.build Workloads.Office_gen.default
  | path when Sys.file_exists path -> Serialize.load_file path
  | other ->
    Err.failf
      "unknown database %s (expected brazil, geo, bom, office or a .mad file)"
      other

let db_arg =
  let doc =
    "Database: brazil (Fig. 1), geo (synthetic cartography), bom (bill of \
     material), office (documents), or the path of a .mad dump."
  in
  Arg.(value & opt string "brazil" & info [ "d"; "db" ] ~docv:"DB" ~doc)

let handle f =
  match f () with
  | () -> 0
  | exception Err.Mad_error msg ->
    Format.eprintf "error: %s@." msg;
    1

(* ------------------------------------------------------------------ *)
(* Durable sessions                                                     *)

let data_arg =
  let doc =
    "Durable data directory: open (or create, seeded from $(b,--db)) a \
     snapshot + write-ahead-log store.  Manipulation statements are \
     journaled and group-committed at each statement boundary, and the \
     learned statistics catalog persists beside the log as stats.mad."
  in
  Arg.(value & opt (some string) None & info [ "data" ] ~docv:"DIR" ~doc)

let slow_arg =
  let doc =
    "Slow-query threshold in milliseconds: any statement at least this \
     slow appends a JSON line (full statement, plan, EXPLAIN ANALYZE \
     tree, flight-recorder window) to the slow-query log.  The log path \
     defaults to slow-query.log; MAD_SLOW_LOG=MS:FILE sets both at once."
  in
  Arg.(value & opt (some float) None & info [ "slow-log" ] ~docv:"MS" ~doc)

(* [None] leaves the MAD_SLOW_LOG configuration alone *)
let apply_slow = function
  | None -> ()
  | Some ms -> Mad_obs.Digest.set_slow_log (Some ms)

(** Run [f session durable] against either a transient session over a
    built-in database or, with [--data], a durable one: recovery on
    open, statement-level group commit, and the adaptive catalog and
    workload digest loaded from (and saved back to) the directory's
    [stats.mad] / [digest.mad].  Every CLI session records a workload
    digest ([madql digest], repl [:digest]). *)
let with_session ?obs db_name data f =
  match data with
  | None ->
    let session = Mad_mql.Session.create ?obs (load_db db_name) in
    ignore (Mad_mql.Session.enable_digest session);
    f session None
  | Some dirname ->
    let h =
      Mad_durable.Durable.open_or_seed ?obs ~snapshot_every:1000
        ~seed:(fun () -> load_db db_name)
        dirname
    in
    Fun.protect
      ~finally:(fun () -> Mad_durable.Durable.close h)
      (fun () ->
        let session = Mad_mql.Session.create ?obs (Mad_durable.Durable.db h) in
        let dg = Mad_mql.Session.enable_digest session in
        ignore
          (Mad_mql.Session.add_on_commit session (fun () ->
               Mad_durable.Durable.commit h));
        ignore
          (Prima.Adaptive.load_session session (Mad_durable.Durable.stats_path h));
        ignore (Mad_obs.Digest.load dg (Mad_durable.Durable.digest_path h));
        (* when a timeline is live (MAD_OBS_TICK or a timeline-aware
           subcommand), its frames and probe baselines persist beside
           the WAL as timeline.mad *)
        (match Mad_obs.Timeline.active () with
         | Some tl ->
           ignore (Mad_obs.Timeline.load tl (Mad_durable.Durable.timeline_path h))
         | None -> ());
        Fun.protect
          ~finally:(fun () ->
            ignore
              (Prima.Adaptive.save_session session
                 (Mad_durable.Durable.stats_path h));
            Mad_obs.Digest.save dg (Mad_durable.Durable.digest_path h);
            match Mad_obs.Timeline.active () with
            | Some tl ->
              Mad_obs.Timeline.save tl (Mad_durable.Durable.timeline_path h)
            | None -> ())
          (fun () -> f session (Some h)))

(* ------------------------------------------------------------------ *)
(* Flight recorder dumps                                                *)

let write_trace path =
  Mad_obs.Recorder.dump (Mad_obs.Recorder.global ()) path;
  Format.eprintf "trace written to %s (%d event(s) recorded)@." path
    (Mad_obs.Recorder.recorded (Mad_obs.Recorder.global ()))

(* ------------------------------------------------------------------ *)
(* Timeline helpers                                                     *)

(* get-or-configure the global timeline and take a frame against the
   session's registry, so :top / :health and the timeline-aware
   subcommands work without MAD_OBS_TICK in the environment *)
let tick_timeline session =
  let tl = Mad_obs.Timeline.configure () in
  ignore
    (Mad_obs.Timeline.tick
       ~epoch:(Database.epoch session.Mad_mql.Session.db)
       tl
       (Mad_obs.Obs.registry session.Mad_mql.Session.obs));
  tl

let pp_health ppf tl =
  let h = Mad_obs.Timeline.health tl in
  Format.fprintf ppf "health: %s (exit %d), %d frame(s)@."
    (Mad_obs.Timeline.health_name h)
    (Mad_obs.Timeline.health_exit h)
    (Mad_obs.Timeline.sampled tl);
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-28s %s (fired %d)@." (Mad_obs.Probe.id p)
        (if Mad_obs.Probe.firing p then "FIRING" else "ok")
        p.Mad_obs.Probe.p_fired)
    (Mad_obs.Timeline.probes tl)

(* ------------------------------------------------------------------ *)
(* repl                                                                 *)

let repl db_name data slow =
  handle @@ fun () ->
  apply_slow slow;
  with_session db_name data @@ fun session durable ->
  let db = session.Mad_mql.Session.db in
  (match durable with
   | None -> Format.printf "madql: %s loaded (%a)@." db_name Database.pp_summary db
   | Some h ->
     Format.printf "madql: %s durable in %s (%a; %a)@." db_name
       (Mad_durable.Durable.dir h) Database.pp_summary db
       Mad_durable.Durable.pp_recovery
       (Mad_durable.Durable.recovery h));
  Format.printf "Type MOL statements ending in ';'. Commands: :quit :schema :types :stats :metrics :digest :drift :top :health :save :trace [FILE] :explain <stmt>@.";
  let buf = Buffer.create 256 in
  let rec loop () =
    if Buffer.length buf = 0 then print_string "MOL> " else print_string "...> ";
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
      let trimmed = String.trim line in
      if String.equal trimmed ":quit" || String.equal trimmed ":q" then ()
      else if String.equal trimmed ":schema" then begin
        Format.printf "%s@." (Notation.database_to_string db);
        loop ()
      end
      else if String.equal trimmed ":types" then begin
        List.iter
          (fun at -> Format.printf "  %a@." Schema.Atom_type.pp (Database.atom_type db at))
          (Database.atom_type_names db);
        List.iter
          (fun lt -> Format.printf "  %a@." Schema.Link_type.pp (Database.link_type db lt))
          (Database.link_type_names db);
        loop ()
      end
      else if String.equal trimmed ":stats" then begin
        let s = session.Mad_mql.Session.stats in
        Format.printf "atoms visited: %d, links traversed: %d@."
          (Mad.Derive.atoms_visited s)
          (Mad.Derive.links_traversed s);
        loop ()
      end
      else if String.equal trimmed ":metrics" then begin
        let registry = Mad_obs.Obs.registry session.Mad_mql.Session.obs in
        Mad_obs.Timeline.update_runtime ~epoch:(Database.epoch db) registry;
        print_string (Mad_obs.Registry.expose registry);
        loop ()
      end
      else if String.equal trimmed ":digest" then begin
        (match session.Mad_mql.Session.digest with
         | None -> Format.printf "no digest recorded@."
         | Some dg ->
           Format.printf "%a" Mad_obs.Digest.pp_table
             (Mad_obs.Digest.top 20 dg);
           let sw = Mad_obs.Digest.switch_count dg in
           if sw > 0 then Format.printf "plan switches: %d@." sw);
        loop ()
      end
      else if String.equal trimmed ":drift" then begin
        Format.printf "%s@." (Prima.Adaptive.report session);
        loop ()
      end
      else if String.equal trimmed ":top" then begin
        Format.printf "%a" Mad_obs.Timeline.pp_dashboard (tick_timeline session);
        loop ()
      end
      else if String.equal trimmed ":health" then begin
        Format.printf "%a" pp_health (tick_timeline session);
        loop ()
      end
      else if String.equal trimmed ":save" then begin
        (match durable with
         | None -> Format.printf "not a durable session (run with --data DIR)@."
         | Some h ->
           Mad_durable.Durable.snapshot h;
           let stats_saved =
             Prima.Adaptive.save_session session (Mad_durable.Durable.stats_path h)
           in
           Format.printf "snapshot rolled in %s%s@."
             (Mad_durable.Durable.dir h)
             (if stats_saved then " (learned catalog saved)" else ""));
        loop ()
      end
      else if String.equal trimmed ":trace"
              || (String.length trimmed >= 7
                  && String.sub trimmed 0 7 = ":trace ") then begin
        let path =
          if String.equal trimmed ":trace" then "trace.json"
          else String.trim (String.sub trimmed 7 (String.length trimmed - 7))
        in
        (try write_trace path
         with Sys_error msg -> Format.printf "error: %s@." msg);
        loop ()
      end
      else if String.length trimmed >= 9 && String.sub trimmed 0 9 = ":explain " then begin
        let stmt = String.sub trimmed 9 (String.length trimmed - 9) in
        (try Format.printf "%s@." (Mad_mql.Session.explain session stmt)
         with Err.Mad_error msg -> Format.printf "error: %s@." msg);
        loop ()
      end
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.contains line ';' then begin
          let src = Buffer.contents buf in
          Buffer.clear buf;
          (try Format.printf "%s@." (Mad_mql.Session.run_to_string session src)
           with Err.Mad_error msg -> Format.printf "error: %s@." msg)
        end;
        loop ()
      end
  in
  loop ()

let repl_cmd =
  Cmd.v (Cmd.info "repl" ~doc:"Interactive MOL session")
    Term.(const repl $ db_arg $ data_arg $ slow_arg)

(* ------------------------------------------------------------------ *)
(* query / explain                                                      *)

let stmt_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"STATEMENT")

let profile_arg =
  let doc =
    "Also profile the statement (EXPLAIN ANALYZE): estimated vs. actual \
     work per plan node.  $(docv) is pretty (default) or json."
  in
  Arg.(
    value
    & opt ~vopt:(Some "pretty") (some string) None
    & info [ "profile" ] ~docv:"FORMAT" ~doc)

let profile_report session fmt stmt =
  let db = session.Mad_mql.Session.db in
  match (fmt, Prima.Profile.query_of_stmt db stmt) with
  | "json", Some q ->
    Format.printf "%s@."
      (Mad_obs.Json.to_string (Prima.Profile.to_json (Prima.Profile.analyze db q)))
  | "pretty", Some q ->
    Format.printf "%a" Prima.Profile.pp (Prima.Profile.analyze db q)
  | ("pretty" | "json"), None ->
    (* no physical plan (DML, set combinators, recursion): the textual
       fallback reports session-level actuals *)
    Format.printf "%s@." (Prima.Profile.analyze_stmt session stmt)
  | other, _ ->
    Err.failf "unknown profile format %s (expected pretty or json)" other

let trace_arg =
  let doc =
    "Dump the engine's flight recorder (ring-buffered spans, WAL, kernel \
     and snapshot events) to $(docv) as Chrome trace-event JSON after the \
     statement ran — open it in Perfetto or about://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let query db_name data profile trace slow stmt =
  handle @@ fun () ->
  apply_slow slow;
  (with_session db_name data @@ fun session _durable ->
   print_string (Mad_mql.Session.run_to_string session stmt);
   match profile with
   | None -> ()
   | Some fmt -> profile_report session fmt (Mad_mql.Session.parse session stmt));
  (* dump after the session closed so the final group commit's fsync is
     part of the trace *)
  match trace with None -> () | Some path -> write_trace path

let query_cmd =
  Cmd.v (Cmd.info "query" ~doc:"Evaluate one MOL statement")
    Term.(
      const query $ db_arg $ data_arg $ profile_arg $ trace_arg $ slow_arg
      $ stmt_arg)

let analyze_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Execute the statement and report estimated vs. actual roots, \
           atoms and links per plan node (EXPLAIN ANALYZE).")

let explain db_name data analyze stmt =
  handle @@ fun () ->
  with_session db_name data @@ fun session _durable ->
  let db = session.Mad_mql.Session.db in
  if analyze then
    Format.printf "%s@."
      (Prima.Profile.analyze_stmt session (Mad_mql.Session.parse session stmt))
  else begin
    Format.printf "algebra: %s@." (Mad_mql.Session.explain session stmt);
    (* if the statement is a plain restricted query, also show PRIMA's
       physical plan *)
    match Prima.Profile.query_of_stmt db (Mad_mql.Session.parse session stmt) with
    | Some q -> Format.printf "%s" (Prima.Stats.explain_with_estimates db q)
    | None -> ()
  end

let explain_cmd =
  Cmd.v (Cmd.info "explain" ~doc:"Show the algebra and PRIMA plans")
    Term.(const explain $ db_arg $ data_arg $ analyze_arg $ stmt_arg)

(* ------------------------------------------------------------------ *)
(* schema / dot                                                         *)

let schema db_name formal =
  handle @@ fun () ->
  let db = load_db db_name in
  if formal then Format.printf "%s@." (Notation.database_to_string db)
  else begin
    Format.printf "%a@." Database.pp_summary db;
    List.iter
      (fun at -> Format.printf "  %a@." Schema.Atom_type.pp (Database.atom_type db at))
      (Database.atom_type_names db);
    List.iter
      (fun lt -> Format.printf "  %a@." Schema.Link_type.pp (Database.link_type db lt))
      (Database.link_type_names db)
  end

let formal_arg =
  Arg.(value & flag & info [ "formal" ] ~doc:"Print the Fig. 4 formal notation.")

let schema_cmd =
  Cmd.v (Cmd.info "schema" ~doc:"Print the database schema")
    Term.(const schema $ db_arg $ formal_arg)

let dot db_name occurrence =
  handle @@ fun () ->
  let db = load_db db_name in
  if occurrence then print_string (Dot.occurrence_to_string db)
  else print_string (Dot.schema_to_string db)

let occurrence_arg =
  Arg.(value & flag & info [ "occurrence" ] ~doc:"Emit the atom networks instead of the schema.")

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Emit Graphviz DOT")
    Term.(const dot $ db_arg $ occurrence_arg)

(* split a MOL script into statements at top-level ';' (strings may
   contain semicolons) *)
let split_statements src =
  let out = ref [] in
  let buf = Buffer.create 256 in
  let n = String.length src in
  let rec go i in_string =
    if i >= n then begin
      if String.trim (Buffer.contents buf) <> "" then
        out := Buffer.contents buf :: !out
    end
    else begin
      let c = src.[i] in
      Buffer.add_char buf c;
      if in_string then go (i + 1) (c <> '\'')
      else if c = '\'' then go (i + 1) true
      else if c = ';' then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf;
        go (i + 1) false
      end
      else go (i + 1) false
    end
  in
  go 0 false;
  List.rev !out

let script db_name data slow path =
  handle @@ fun () ->
  apply_slow slow;
  with_session db_name data @@ fun session _durable ->
  let src =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)
  in
  List.iter
    (fun stmt ->
      let trimmed = String.trim stmt in
      Format.printf "MOL> %s@." trimmed;
      Format.printf "%s@." (Mad_mql.Session.run_to_string session trimmed))
    (split_statements src)

let script_path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT.mql")

let script_cmd =
  Cmd.v (Cmd.info "script" ~doc:"Execute a file of MOL statements")
    Term.(const script $ db_arg $ data_arg $ slow_arg $ script_path_arg)

(* ------------------------------------------------------------------ *)
(* stats — run statements, expose the session registry                  *)

let run_all session stmts =
  List.iter
    (fun src ->
      List.iter
        (fun stmt -> ignore (Mad_mql.Session.run session (String.trim stmt)))
        (split_statements src))
    stmts

(* "\027[2J" clears, "\027[H" homes the cursor: re-render in place *)
let clear_screen () = print_string "\027[2J\027[H"

let stats db_name watch count stmts =
  handle @@ fun () ->
  let db = load_db db_name in
  (* a private tracing context: spans drive the op.latency_us
     histograms; nothing is emitted, the registry is the product *)
  let obs = Mad_obs.Obs.create ~tracing:true () in
  let session = Mad_mql.Session.create ~obs db in
  ignore (Mad_mql.Session.enable_digest session);
  (* refresh the runtime.* gauges right before rendering, so the
     exposition reflects the process now, not Obs-creation time *)
  let expose () =
    let registry = Mad_obs.Obs.registry obs in
    Mad_obs.Timeline.update_runtime ~epoch:(Database.epoch db) registry;
    Mad_obs.Registry.expose registry
  in
  match watch with
  | None ->
    run_all session stmts;
    print_string (expose ())
  | Some secs ->
    (* watch mode: re-run the statements and re-render the registry in
       place every SECS seconds ([--count] bounds the iterations) *)
    let i = ref 0 in
    while count = 0 || !i < count do
      run_all session stmts;
      clear_screen ();
      Format.printf "madql stats --watch %g  (iteration %d)@." secs (!i + 1);
      print_string (expose ());
      flush stdout;
      incr i;
      if count = 0 || !i < count then Unix.sleepf (Float.max 0.01 secs)
    done

let stats_stmts_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"STATEMENTS"
        ~doc:"MOL statements to execute before exposing the metrics.")

let watch_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "watch" ] ~docv:"SECS"
        ~doc:
          "Re-run the statements and re-render the metrics table in place \
           every $(docv) seconds.")

let count_arg =
  Arg.(
    value & opt int 0
    & info [ "count" ] ~docv:"N"
        ~doc:"With $(b,--watch), stop after $(docv) iterations (0 = forever).")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Execute MOL statements and print the session's metrics registry \
          as Prometheus text (counters, gauges, op.latency_us histograms \
          with flight-recorder exemplars).  With $(b,--watch) the table \
          re-renders in place.")
    Term.(const stats $ db_arg $ watch_arg $ count_arg $ stats_stmts_arg)

(* ------------------------------------------------------------------ *)
(* digest — run statements, report the workload digest                  *)

let digest db_name data top_k by json slow stmts =
  handle @@ fun () ->
  apply_slow slow;
  with_session db_name data @@ fun session _durable ->
  List.iter
    (fun src ->
      List.iter
        (fun stmt ->
          (* keep going on statement errors: failed calls are part of
             the digest (the errors column), not a reason to stop *)
          try ignore (Mad_mql.Session.run session (String.trim stmt))
          with Err.Mad_error msg -> Format.eprintf "error: %s@." msg)
        (split_statements src))
    stmts;
  let dg =
    match session.Mad_mql.Session.digest with
    | Some dg -> dg
    | None -> Mad_mql.Session.enable_digest session
  in
  let by =
    match by with
    | "total" -> `Total
    | "mean" -> `Mean
    | "calls" -> `Calls
    | other -> Err.failf "unknown order %s (expected total, mean or calls)" other
  in
  if json then
    Format.printf "%s@."
      (Mad_obs.Json.to_string (Mad_obs.Digest.to_json ~by ~top:top_k dg))
  else begin
    Format.printf "%a" Mad_obs.Digest.pp_table (Mad_obs.Digest.top ~by top_k dg);
    let sw = Mad_obs.Digest.switch_count dg in
    if sw > 0 then Format.printf "plan switches: %d@." sw
  end

let top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"K" ~doc:"Show the top $(docv) digest rows.")

let by_arg =
  Arg.(
    value & opt string "total"
    & info [ "by" ] ~docv:"ORDER"
        ~doc:"Rank rows by $(docv): total (latency), mean or calls.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the digest as JSON instead of a table.")

let digest_stmts_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"STATEMENTS"
        ~doc:"MOL statements to execute before reporting the digest.")

let digest_cmd =
  Cmd.v
    (Cmd.info "digest"
       ~doc:
         "Execute MOL statements and report the workload digest: one row \
          per (statement fingerprint, plan hash) with calls, errors, rows, \
          latency (mean/p95/max), EXPLAIN ANALYZE drift, and plan \
          switches.  With $(b,--data) the digest merges with (and persists \
          to) the directory's digest.mad, so the report spans sessions.")
    Term.(
      const digest $ db_arg $ data_arg $ top_arg $ by_arg $ json_arg
      $ slow_arg $ digest_stmts_arg)

(* ------------------------------------------------------------------ *)
(* trace — run statements, dump the flight recorder                     *)

let trace db_name data out stmts =
  handle @@ fun () ->
  (with_session db_name data @@ fun session _durable ->
   List.iter
     (fun src ->
       List.iter
         (fun stmt -> ignore (Mad_mql.Session.run session (String.trim stmt)))
         (split_statements src))
     stmts);
  write_trace out

let trace_out_arg =
  Arg.(
    value & opt string "trace.json"
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the Chrome trace to $(docv) (default trace.json).")

let trace_stmts_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"STATEMENTS"
        ~doc:"MOL statements to execute before dumping the recorder.")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Execute MOL statements (against $(b,--db) or a durable \
          $(b,--data) store) and dump the engine's flight recorder as \
          Chrome trace-event JSON: one track per domain plus WAL and \
          planner tracks, loadable in Perfetto or about://tracing.")
    Term.(const trace $ db_arg $ data_arg $ trace_out_arg $ trace_stmts_arg)

(* ------------------------------------------------------------------ *)
(* timeline / health / top — the telemetry timeline                     *)

(* run the statements with one explicit frame per statement, so probe
   behaviour is deterministic regardless of the wall-clock interval;
   [inject = Some (k, ms)] turns on the slow-statement fault after the
   first [k] statements (the health-smoke fault injection) *)
let run_ticked session tl ~inject ~repeat stmts =
  let registry = Mad_obs.Obs.registry session.Mad_mql.Session.obs in
  let i = ref 0 in
  Fun.protect
    ~finally:(fun () -> Mad_mql.Session.fault_spin_ms := None)
    (fun () ->
      for _ = 1 to max 1 repeat do
        List.iter
          (fun src ->
            List.iter
              (fun stmt ->
                (match inject with
                 | Some (k, ms) when !i >= k ->
                   Mad_mql.Session.fault_spin_ms := Some ms
                 | Some _ | None -> ());
                (* statement errors feed the frame (error storms are
                   exactly what a probe should see), not stop the run *)
                (try ignore (Mad_mql.Session.run session (String.trim stmt))
                 with Err.Mad_error msg -> Format.eprintf "error: %s@." msg);
                incr i;
                ignore
                  (Mad_obs.Timeline.tick
                     ~epoch:(Database.epoch session.Mad_mql.Session.db)
                     tl registry))
              (split_statements src))
          stmts
      done)

let write_timeline_json tl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Mad_obs.Json.to_string (Mad_obs.Timeline.to_json tl));
      output_char oc '\n');
  Format.eprintf "timeline written to %s (%d frame(s))@." path
    (Mad_obs.Timeline.sampled tl)

let repeat_arg =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"N"
        ~doc:"Run the statement list $(docv) times (one frame per statement).")

let timeline_stmts_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"STATEMENTS"
        ~doc:"MOL statements to execute, one timeline frame each.")

let timeline db_name data repeat json csv out stmts =
  handle @@ fun () ->
  if json && csv then Err.failf "--json and --csv are mutually exclusive";
  let tl = Mad_obs.Timeline.configure () in
  with_session db_name data @@ fun session _durable ->
  run_ticked session tl ~inject:None ~repeat stmts;
  if csv then print_string (Mad_obs.Timeline.to_csv tl)
  else
    match out with
    | Some path -> write_timeline_json tl path
    | None ->
      print_string (Mad_obs.Json.to_string (Mad_obs.Timeline.to_json tl));
      print_newline ()

let timeline_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the timeline as JSON (default).")

let timeline_csv_arg =
  Arg.(
    value & flag
    & info [ "csv" ]
        ~doc:
          "Emit the timeline as long-format CSV \
           (frame,unix,ticks,kind,name,labels,value,sum).")

let timeline_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the JSON export to $(docv) instead of stdout.")

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Execute MOL statements, sampling one telemetry frame per \
          statement (registry counters and gauges, histogram summaries, \
          runtime.* GC/heap gauges), and export the frame ring as JSON or \
          CSV.  With $(b,--data), frames and probe baselines merge with \
          (and persist to) the directory's timeline.mad.")
    Term.(
      const timeline $ db_arg $ data_arg $ repeat_arg $ timeline_json_arg
      $ timeline_csv_arg $ timeline_out_arg $ timeline_stmts_arg)

(* --inject-slow K:MS — after the first K statements, every statement
   busy-waits MS milliseconds inside its timed block *)
let parse_inject spec =
  match String.index_opt spec ':' with
  | Some i -> begin
    match
      ( int_of_string_opt (String.sub spec 0 i),
        float_of_string_opt
          (String.sub spec (i + 1) (String.length spec - i - 1)) )
    with
    | Some k, Some ms when k >= 0 && ms >= 0.0 -> (k, ms)
    | _ -> Err.failf "invalid --inject-slow %s (expected K:MS)" spec
  end
  | None -> Err.failf "invalid --inject-slow %s (expected K:MS)" spec

let health db_name data repeat json export inject stmts =
  match
    (fun () ->
      let inject = Option.map parse_inject inject in
      let tl = Mad_obs.Timeline.configure () in
      (with_session db_name data @@ fun session _durable ->
       run_ticked session tl ~inject ~repeat stmts);
      (match export with Some path -> write_timeline_json tl path | None -> ());
      if json then begin
        print_string (Mad_obs.Json.to_string (Mad_obs.Timeline.health_json tl));
        print_newline ()
      end
      else Format.printf "%a" pp_health tl;
      (* the health exit-code contract: 0 ok, 1 degraded, 2 unhealthy *)
      Mad_obs.Timeline.health_exit (Mad_obs.Timeline.health tl))
      ()
  with
  | code -> code
  (* every failure mode maps to the documented exit 3, not cmdliner's
     generic 125 — CI asserts the 0/1/2/3 contract *)
  | exception Err.Mad_error msg ->
    Format.eprintf "error: %s@." msg;
    3
  | exception Sys_error msg ->
    Format.eprintf "error: %s@." msg;
    3
  | exception e ->
    Format.eprintf "error: %s@." (Printexc.to_string e);
    3

let health_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the health document (state, exit, probes) as JSON.")

let health_export_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "export" ] ~docv:"FILE"
        ~doc:"Also write the full timeline (frames and probes) as JSON.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-slow" ] ~docv:"K:MS"
        ~doc:
          "Fault injection for smoke tests: after the first $(i,K) \
           statements, every statement spins $(i,MS) milliseconds inside \
           its timed block, which the latency probe should flag.")

let health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Execute MOL statements (one telemetry frame each) and report the \
          process health verdict from the anomaly probes (latency \
          regression per statement fingerprint, plan-switch storms, \
          snapshot-invalidation thrash, heap growth).  Exit code: 0 ok, 1 \
          degraded (one probe firing), 2 unhealthy (two or more), 3 on \
          errors."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"healthy: no probe firing";
           Cmd.Exit.info 1 ~doc:"degraded: one probe firing";
           Cmd.Exit.info 2 ~doc:"unhealthy: two or more probes firing";
           Cmd.Exit.info 3 ~doc:"the statements or options failed";
         ])
    Term.(
      const health $ db_arg $ data_arg $ repeat_arg $ health_json_arg
      $ health_export_arg $ inject_arg $ timeline_stmts_arg)

let top db_name data interval count stmts =
  handle @@ fun () ->
  let tl = Mad_obs.Timeline.configure () in
  with_session db_name data @@ fun session _durable ->
  let i = ref 0 in
  while count = 0 || !i < count do
    (* each refresh re-runs the statement list (the observed workload)
       and takes a frame; with no statements the runtime gauges still
       move *)
    run_ticked session tl ~inject:None ~repeat:1 stmts;
    if stmts = [] then ignore (tick_timeline session);
    clear_screen ();
    Format.printf "madql top — refresh %gs  (q: Ctrl-C)@." interval;
    Format.printf "%a" Mad_obs.Timeline.pp_dashboard tl;
    flush stdout;
    incr i;
    if count = 0 || !i < count then Unix.sleepf (Float.max 0.05 interval)
  done

let top_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "interval" ] ~docv:"SECS" ~doc:"Seconds between refreshes.")

let top_count_arg =
  Arg.(
    value & opt int 0
    & info [ "count" ] ~docv:"N" ~doc:"Stop after $(docv) refreshes (0 = forever).")

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of the telemetry timeline: health verdict, \
          runtime GC/heap gauges, the busiest counters over the last frame \
          window, and the anomaly-probe table, re-rendered in place.  \
          Positional statements are re-run at each refresh as the observed \
          workload.")
    Term.(
      const top $ db_arg $ data_arg $ top_interval_arg $ top_count_arg
      $ timeline_stmts_arg)

let dump db_name out =
  handle @@ fun () ->
  let db = load_db db_name in
  match out with
  | None -> print_string (Serialize.dump db)
  | Some path ->
    Serialize.dump_file db path;
    Format.printf "wrote %s (%d atoms, %d links)@." path
      (Database.total_atoms db) (Database.total_links db)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")

let dump_cmd =
  Cmd.v (Cmd.info "dump" ~doc:"Dump a database as a .mad text file")
    Term.(const dump $ db_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* recovery — the fault-injection suite (CI's recovery-smoke job)       *)

let recovery_report_json (r : Mad_durable.Harness.report) =
  Mad_obs.Json.(
    Obj
      [
        ("seed", Num (float_of_int r.Mad_durable.Harness.seed));
        ("ops", Num (float_of_int r.ops));
        ("records", Num (float_of_int r.records));
        ("scenarios", Num (float_of_int r.scenarios));
        ("torn_recoveries", Num (float_of_int r.torn_recoveries));
        ("converged", Bool (Mad_durable.Harness.converged r));
        ("failures", List (List.map (fun f -> Str f) r.failures));
      ])

let recovery seed ops dir report_file =
  handle @@ fun () ->
  let dir, cleanup =
    match dir with
    | Some d -> (d, false)
    | None ->
      ( Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "madql-recovery-seed%d" seed),
        true )
  in
  let r = Mad_durable.Harness.run ~seed ~ops ~dir () in
  if cleanup then Mad_durable.Harness.rm_rf dir;
  Format.printf "%a@." Mad_durable.Harness.pp_report r;
  (match report_file with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (Mad_obs.Json.to_string (recovery_report_json r));
         output_char oc '\n');
     Format.printf "report written to %s@." path);
  if not (Mad_durable.Harness.converged r) then
    Err.failf "recovery diverged in %d scenario(s)"
      (List.length r.Mad_durable.Harness.failures)

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N" ~doc:"Workload seed (one suite per seed).")

let ops_arg =
  Arg.(
    value & opt int 60
    & info [ "ops" ] ~docv:"N" ~doc:"DML decisions in the workload.")

let dir_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "Run the scenarios under $(docv) and keep them (default: a \
           throwaway directory under the system temp dir).")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE" ~doc:"Also write the report as JSON.")

let recovery_cmd =
  Cmd.v
    (Cmd.info "recovery"
       ~doc:
         "Run the crash-recovery fault-injection suite: a seeded DML \
          workload killed (process death and torn final record) at every \
          WAL record boundary, with recovery convergence asserted at each \
          crash point.  Exits non-zero on any divergence.")
    Term.(const recovery $ seed_arg $ ops_arg $ dir_opt_arg $ report_arg)

(* ------------------------------------------------------------------ *)
(* serve / connect — the network service                                *)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind (serve) or connect address.")

let serve_port_arg =
  Arg.(
    value & opt int 0
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port; 0 (the default) picks an ephemeral port, printed on startup.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains — the maximum connections served concurrently \
           (default: MAD_PAR, else the machine's recommended domain count).")

let pending_arg =
  Arg.(
    value & opt int 16
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "Accepted connections allowed to wait for a worker; beyond this \
           the handshake answers busy and the connection is closed \
           (admission control).")

let idle_arg =
  Arg.(
    value & opt float 300.0
    & info [ "idle-timeout" ] ~docv:"SECS"
        ~doc:"Close a connection idle for $(docv) seconds (a Bye is sent).")

let serve_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Dump the flight recorder as Chrome trace JSON on shutdown.")

let serve db_name data port host workers max_pending idle slow trace =
  handle @@ fun () ->
  apply_slow slow;
  let base = Mad_serve.Serve.default_config in
  let config =
    {
      base with
      Mad_serve.Serve.host;
      port;
      workers = (match workers with Some w -> w | None -> base.Mad_serve.Serve.workers);
      max_pending;
      idle_timeout = idle;
    }
  in
  (* the serve.* metrics and the coordinator's serve.group.* land here;
     this registry is what the Stats request exposes *)
  let obs = Mad_obs.Obs.create ~tracing:true () in
  let run_server srv =
    let stop_signal _ = Mad_serve.Serve.request_stop srv in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
    (* CI and scripts parse this line for the ephemeral port; "@." flushes *)
    Format.printf "listening on %s:%d (%d worker(s), %d pending)@." host
      (Mad_serve.Serve.port srv)
      (Mad_serve.Serve.config srv).Mad_serve.Serve.workers max_pending;
    (* the signal handler only flips an atomic (Domain.join would block
       delivery); this loop notices it and does the real shutdown *)
    while not (Mad_serve.Serve.stopped srv) do
      Unix.sleepf 0.2
    done;
    Mad_serve.Serve.stop srv;
    Format.eprintf "server stopped (%d connection(s) served)@."
      (Mad_serve.Serve.connections srv);
    (match Mad_obs.Timeline.active () with
     | Some tl -> (
       match data with
       | Some dirname ->
         Mad_obs.Timeline.save tl
           (Mad_durable.Durable.timeline_path_of_dir dirname)
       | None -> ())
     | None -> ());
    match trace with Some path -> write_trace path | None -> ()
  in
  match data with
  | None -> run_server (Mad_serve.Serve.start ~obs ~config (load_db db_name))
  | Some dirname ->
    (* no snapshot_every: auto-rolling truncates the WAL mid-stream,
       which would break the coordinator's monotone positions — the
       shutdown snapshot below bounds recovery instead *)
    let h =
      Mad_durable.Durable.open_or_seed ~obs
        ~seed:(fun () -> load_db db_name)
        dirname
    in
    Fun.protect
      ~finally:(fun () -> Mad_durable.Durable.close ~snapshot:true h)
      (fun () ->
        run_server
          (Mad_serve.Serve.start ~obs ~config ~durable:h
             (Mad_durable.Durable.db h)))

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the database over TCP (see doc/SERVING.md for the wire \
          protocol): one MOL session per connection, bounded worker pool \
          with typed-busy admission control, and — with $(b,--data) — \
          cross-session group commit: concurrent writers are acknowledged \
          by shared batched fsyncs.  SIGINT/SIGTERM drain in-flight \
          requests and, for durable stores, roll a shutdown snapshot."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"clean shutdown";
           Cmd.Exit.info 1
             ~doc:
               "startup or shutdown failed: unresolvable or unbindable \
                address, or a $(b,--data) directory that cannot be created, \
                is not a directory, or is not writable";
         ])
    Term.(
      const serve $ db_arg $ data_arg $ serve_port_arg $ host_arg
      $ workers_arg $ pending_arg $ idle_arg $ slow_arg $ serve_trace_arg)

(* pull "exit": N out of the health JSON document — the client passes
   the server's health exit-code contract through *)
let health_exit_of_json doc =
  let key = "\"exit\":" in
  let n = String.length doc and k = String.length key in
  let rec find i =
    if i + k > n then None
    else if String.equal (String.sub doc i k) key then Some (i + k)
    else find (i + 1)
  in
  match find 0 with
  | None -> 0
  | Some j ->
    let j = ref j in
    while !j < n && doc.[!j] = ' ' do
      incr j
    done;
    let e = ref !j in
    while !e < n && doc.[!e] >= '0' && doc.[!e] <= '9' do
      incr e
    done;
    if !e > !j then int_of_string (String.sub doc !j (!e - !j)) else 0

let connect_port_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Port of the running serve endpoint.")

let exec_flag_arg =
  Arg.(
    value & flag
    & info [ "exec" ]
        ~doc:
          "Send statements as Exec (effect summaries) instead of Query \
           (rendered results) — the DML-friendly mode.")

let client_timeout_arg =
  Arg.(
    value & opt float 30.0
    & info [ "timeout" ] ~docv:"SECS" ~doc:"Per-request response timeout.")

let ping_flag_arg =
  Arg.(value & flag & info [ "ping" ] ~doc:"Ping the server after the statements.")

let client_stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the server's metrics registry (Prometheus text).")

let client_health_arg =
  Arg.(
    value & flag
    & info [ "health" ]
        ~doc:
          "Print the server's health verdict (JSON) and exit with its \
           0/1/2 health code.")

let connect_stmts_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"STATEMENTS" ~doc:"MOL statements to send, in order.")

let connect_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a merged client/server Chrome trace: one slice per \
           request as the client saw it, and — against a wire v2 server \
           — the server-reported phase breakdown (lock, exec, wal, \
           fsync, other) nested inside each request's window.")

(* One traced request as the client observed it: the statement, its
   client-side window (ticks + duration), and the server-reported phase
   breakdown (µs) when the connection negotiated wire v2. *)
type traced_req = {
  tr_name : string;
  tr_ticks : int;
  tr_dur_ns : int;
  tr_phases : (string * float) list;
}

(* Merged trace export: the client's request windows on one track, the
   server's phase slices laid out sequentially inside each window on a
   second track, so both sides of the wire line up in one timeline. *)
let write_connect_trace path reqs =
  let reqs = List.rev reqs in
  let base =
    List.fold_left (fun acc r -> min acc r.tr_ticks) max_int reqs
  in
  let base = if base = max_int then 0 else base in
  let us ticks = float_of_int (max 0 (ticks - base)) /. 1e3 in
  let slice ~name ~cat ~ts ~dur ~tid args =
    Mad_obs.Json.Obj
      [
        ("name", Mad_obs.Json.Str name);
        ("cat", Mad_obs.Json.Str cat);
        ("ph", Mad_obs.Json.Str "X");
        ("ts", Mad_obs.Json.Num ts);
        ("dur", Mad_obs.Json.Num dur);
        ("pid", Mad_obs.Json.Num 1.0);
        ("tid", Mad_obs.Json.Num (float_of_int tid));
        ("args", Mad_obs.Json.Obj args);
      ]
  in
  let thread_meta tid name =
    Mad_obs.Json.Obj
      [
        ("name", Mad_obs.Json.Str "thread_name");
        ("ph", Mad_obs.Json.Str "M");
        ("pid", Mad_obs.Json.Num 1.0);
        ("tid", Mad_obs.Json.Num (float_of_int tid));
        ("args", Mad_obs.Json.Obj [ ("name", Mad_obs.Json.Str name) ]);
      ]
  in
  let events = ref [] in
  let n_phases = ref 0 in
  List.iteri
    (fun i r ->
      let ts = us r.tr_ticks in
      events :=
        slice ~name:r.tr_name ~cat:"client.request" ~ts
          ~dur:(float_of_int r.tr_dur_ns /. 1e3)
          ~tid:1
          [ ("request", Mad_obs.Json.Num (float_of_int (i + 1))) ]
        :: !events;
      (* the server reports per-phase durations, not offsets: lay the
         slices out back to back from the request's start, which matches
         their true order (lock -> exec -> wal -> fsync) *)
      let off = ref ts in
      List.iter
        (fun (phase, dur_us) ->
          if dur_us > 0.0 then begin
            incr n_phases;
            events :=
              slice ~name:phase ~cat:"serve.phase" ~ts:!off ~dur:dur_us
                ~tid:2
                [
                  ("request", Mad_obs.Json.Num (float_of_int (i + 1)));
                  ("us", Mad_obs.Json.Num dur_us);
                ]
              :: !events;
            off := !off +. dur_us
          end)
        r.tr_phases)
    reqs;
  let doc =
    Mad_obs.Json.Obj
      [
        ( "traceEvents",
          Mad_obs.Json.List
            (Mad_obs.Json.Obj
               [
                 ("name", Mad_obs.Json.Str "process_name");
                 ("ph", Mad_obs.Json.Str "M");
                 ("pid", Mad_obs.Json.Num 1.0);
                 ( "args",
                   Mad_obs.Json.Obj
                     [ ("name", Mad_obs.Json.Str "madql connect") ] );
               ]
            :: thread_meta 1 "client requests"
            :: thread_meta 2 "server phases"
            :: List.rev !events) );
        ("displayTimeUnit", Mad_obs.Json.Str "ms");
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () ->
      output_string oc (Mad_obs.Json.to_string doc);
      output_char oc '\n');
  Format.eprintf
    "trace written to %s (%d request(s), %d server phase slice(s))@." path
    (List.length reqs) !n_phases

let connect host port exec_mode timeout do_ping show_stats show_health trace
    stmts =
  match Mad_serve.Client.connect ~timeout ~host port with
  | Error e ->
    Format.eprintf "error: %a@." Mad_serve.Client.pp_connect_error e;
    1
  | exception Unix.Unix_error (e, _, _) ->
    Format.eprintf "error: cannot connect to %s:%d: %s@." host port
      (Unix.error_message e);
    1
  | Ok c ->
    let rc = ref 0 in
    let traced = ref [] in
    let span = ref 0 in
    Fun.protect
      ~finally:(fun () ->
        Mad_serve.Client.close c;
        match trace with
        | Some path -> write_connect_trace path !traced
        | None -> ())
      (fun () ->
        try
          List.iter
            (fun src ->
              List.iter
                (fun stmt ->
                  let stmt = String.trim stmt in
                  let r =
                    match trace with
                    | Some _ when not exec_mode ->
                      incr span;
                      let t0 = Mad_obs.Monotonic.ticks () in
                      let r =
                        Mad_serve.Client.query_traced ~span:!span c stmt
                      in
                      let t1 = Mad_obs.Monotonic.ticks () in
                      let phases =
                        match r with Ok (_, ph) -> ph | Error _ -> []
                      in
                      traced :=
                        {
                          tr_name = stmt;
                          tr_ticks = t0;
                          tr_dur_ns = t1 - t0;
                          tr_phases = phases;
                        }
                        :: !traced;
                      Result.map fst r
                    | _ ->
                      if exec_mode then Mad_serve.Client.exec c stmt
                      else Mad_serve.Client.query c stmt
                  in
                  match r with
                  | Ok out -> if out <> "" then Format.printf "%s@." out
                  | Error msg ->
                    rc := 1;
                    Format.eprintf "error: %s@." msg)
                (split_statements src))
            stmts;
          if do_ping then
            if Mad_serve.Client.ping c then Format.printf "pong@."
            else begin
              rc := 1;
              Format.eprintf "error: no pong@."
            end;
          if show_stats then print_string (Mad_serve.Client.stats c);
          if show_health then begin
            let doc = Mad_serve.Client.health c in
            Format.printf "%s@." doc;
            rc := max !rc (health_exit_of_json doc)
          end;
          !rc
        with Mad_serve.Client.Remote msg ->
          Format.eprintf "error: %s@." msg;
          1)

let connect_cmd =
  Cmd.v
    (Cmd.info "connect"
       ~doc:
         "Connect to a running $(b,madql serve) endpoint and send MOL \
          statements over the wire protocol; $(b,--stats), $(b,--health) \
          and $(b,--ping) query the server's observability surface, and \
          $(b,--trace) exports a merged client/server request timeline."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"all statements succeeded (health: ok)";
           Cmd.Exit.info 1
             ~doc:
               "connection refused/busy/mismatched, a statement failed, or \
                (with $(b,--health)) the server is degraded";
           Cmd.Exit.info 2 ~doc:"with $(b,--health): the server is unhealthy";
         ])
    Term.(
      const connect $ host_arg $ connect_port_arg $ exec_flag_arg
      $ client_timeout_arg $ ping_flag_arg $ client_stats_arg
      $ client_health_arg $ connect_trace_arg $ connect_stmts_arg)

let () =
  (* route the session layer's EXPLAIN ANALYZE to the learning PRIMA
     profiler: estimates come from (and actuals feed back into) each
     session's adaptive catalog *)
  Prima.Adaptive.install ();
  let info =
    Cmd.info "madql" ~version:"1.0"
      ~doc:"The MOL (molecule query language) processor over the MAD model"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            repl_cmd; query_cmd; explain_cmd; schema_cmd; dot_cmd; dump_cmd;
            script_cmd; stats_cmd; digest_cmd; trace_cmd; timeline_cmd;
            health_cmd; top_cmd; recovery_cmd; serve_cmd; connect_cmd;
          ]))
