(** The (binary) entity-relationship model of Fig. 1's upper part, and
    its two mappings:

    - ER → MAD (ch. 2: "there is a one-to-one mapping from the ER model
      to the MAD model associating each entity type with an atom type
      and each relationship type with a link type" — no auxiliary
      structures);
    - ER → relational (the classical mapping: entities become
      relations; every n:m relationship type needs an auxiliary
      relation; 1:n and 1:1 can be inlined as foreign keys).

    The FIG1 experiment counts the auxiliary structures each mapping
    needs. *)

open Mad_store

type side = One | Many

type entity = { e_name : string; e_attrs : Schema.Attr.t list }

type relationship = {
  r_name : string;
  r_from : string;
  r_to : string;
  r_card : side * side;  (** cardinality (from-side, to-side) *)
}

type t = { entities : entity list; relationships : relationship list }

let v ~entities ~relationships =
  let enames = List.map (fun e -> e.e_name) entities in
  if List.length (List.sort_uniq String.compare enames) <> List.length enames
  then Err.failf "ER schema: duplicate entity type";
  List.iter
    (fun r ->
      if not (List.mem r.r_from enames && List.mem r.r_to enames) then
        Err.failf "ER relationship %s references unknown entity type" r.r_name)
    relationships;
  { entities; relationships }

let pp ppf t =
  Fmt.pf ppf "@[<v>ER schema:@,";
  List.iter
    (fun e ->
      Fmt.pf ppf "  entity %s(%a)@," e.e_name
        Fmt.(list ~sep:(any ", ") Schema.Attr.pp)
        e.e_attrs)
    t.entities;
  List.iter
    (fun r ->
      let s = function One -> "1" | Many -> "n" in
      Fmt.pf ppf "  relationship %s: %s %s:%s %s@," r.r_name r.r_from
        (s (fst r.r_card))
        (s (snd r.r_card))
        r.r_to)
    t.relationships;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* ER -> MAD: one-to-one                                                *)

let card_to_link = function
  | One, One -> (Some 1, Some 1)
  | One, Many -> (Some 1, None)
  | Many, One -> (None, Some 1)
  | Many, Many -> (None, None)

(** Build an (empty) MAD database whose schema is the one-to-one image
    of the ER schema.  Entity type → atom type, relationship type →
    link type; nothing else. *)
let to_mad t =
  let db = Database.create () in
  List.iter
    (fun e -> ignore (Database.declare_atom_type db e.e_name e.e_attrs))
    t.entities;
  List.iter
    (fun r ->
      ignore
        (Database.declare_link_type db
           ~card:(card_to_link r.r_card)
           r.r_name (r.r_from, r.r_to)))
    t.relationships;
  db

(** Count of auxiliary structures the MAD mapping needs: always 0 —
    link types map relationships directly. *)
let mad_auxiliary_count (_ : t) = 0

(* ------------------------------------------------------------------ *)
(* ER -> relational: auxiliary relations for n:m                        *)

type rel_mapping = {
  schema : (string * Schema.Attr.t list) list;  (** relation name, attrs *)
  auxiliary : string list;  (** auxiliary relations created *)
  foreign_keys : (string * string) list;  (** (relation, fk attribute) *)
}

let to_relational t =
  let id = Schema.Attr.v "id" Domain.Int in
  let fk_targets =
    (* relationships inlined as FK: the Many side holds a key of the One
       side; n:m gets an auxiliary relation *)
    List.filter_map
      (fun r ->
        match r.r_card with
        | One, Many -> Some (r.r_to, r.r_from ^ "_fk", r.r_name)
        | Many, One -> Some (r.r_from, r.r_to ^ "_fk", r.r_name)
        | One, One -> Some (r.r_to, r.r_from ^ "_fk", r.r_name)
        | Many, Many -> None)
      t.relationships
  in
  let schema =
    List.map
      (fun e ->
        let fks =
          List.filter_map
            (fun (holder, fk, _) ->
              if String.equal holder e.e_name then
                Some (Schema.Attr.v fk Domain.Int)
              else None)
            fk_targets
        in
        (e.e_name, (id :: e.e_attrs) @ fks))
      t.entities
  in
  let auxiliary =
    List.filter_map
      (fun r ->
        match r.r_card with Many, Many -> Some r.r_name | _ -> None)
      t.relationships
  in
  let aux_schema =
    List.map
      (fun r ->
        ( r,
          [
            Schema.Attr.v "from_id" Domain.Int;
            Schema.Attr.v "to_id" Domain.Int;
          ] ))
      auxiliary
  in
  {
    schema = schema @ aux_schema;
    auxiliary;
    foreign_keys =
      List.map (fun (holder, fk, _) -> (holder, fk)) fk_targets;
  }

let relational_auxiliary_count t = List.length (to_relational t).auxiliary

(* ------------------------------------------------------------------ *)
(* DOT rendering of the ER diagram (Fig. 1 upper part)                  *)

let esc s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(** The classic ER diagram: entity types as boxes, relationship types
    as diamonds connected to both entity types, cardinalities as edge
    labels. *)
let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph er_diagram {\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [shape=box];\n" (esc e.e_name)))
    t.entities;
  List.iter
    (fun r ->
      let s = function One -> "1" | Many -> "n" in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [shape=diamond];\n" (esc r.r_name));
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -- \"%s\" [label=\"%s\"];\n" (esc r.r_from)
           (esc r.r_name)
           (s (fst r.r_card)));
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -- \"%s\" [label=\"%s\"];\n" (esc r.r_name)
           (esc r.r_to)
           (s (snd r.r_card))))
    t.relationships;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The geographic ER schema of Fig. 1                                   *)

let geographic () =
  let attr = Schema.Attr.v in
  v
    ~entities:
      [
        { e_name = "state";
          e_attrs = [ attr "name" Domain.String; attr "hectare" Domain.Int ] };
        { e_name = "city";
          e_attrs = [ attr "name" Domain.String; attr "population" Domain.Int ] };
        { e_name = "river";
          e_attrs = [ attr "name" Domain.String; attr "length" Domain.Int ] };
        { e_name = "area";
          e_attrs = [ attr "name" Domain.String; attr "size" Domain.Int ] };
        { e_name = "net"; e_attrs = [ attr "name" Domain.String ] };
        { e_name = "edge";
          e_attrs = [ attr "name" Domain.String; attr "length" Domain.Int ] };
        { e_name = "point";
          e_attrs =
            [ attr "name" Domain.String; attr "x" Domain.Int; attr "y" Domain.Int ] };
      ]
    ~relationships:
      [
        { r_name = "state-area"; r_from = "state"; r_to = "area"; r_card = (One, One) };
        { r_name = "river-net"; r_from = "river"; r_to = "net"; r_card = (One, One) };
        { r_name = "city-point"; r_from = "city"; r_to = "point"; r_card = (Many, One) };
        { r_name = "area-edge"; r_from = "area"; r_to = "edge"; r_card = (Many, Many) };
        { r_name = "net-edge"; r_from = "net"; r_to = "edge"; r_card = (Many, Many) };
        { r_name = "edge-point"; r_from = "edge"; r_to = "point"; r_card = (Many, Many) };
      ]
