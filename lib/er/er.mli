(** The binary ER model of Fig. 1 and its two mappings: one-to-one onto
    MAD (entity type -> atom type, relationship type -> link type, no
    auxiliary structures) and classical onto the relational model
    (auxiliary relations for n:m, foreign keys for 1:n/1:1). *)

open Mad_store

type side = One | Many

type entity = { e_name : string; e_attrs : Schema.Attr.t list }

type relationship = {
  r_name : string;
  r_from : string;
  r_to : string;
  r_card : side * side;
}

type t = { entities : entity list; relationships : relationship list }

val v : entities:entity list -> relationships:relationship list -> t
val pp : Format.formatter -> t -> unit

val card_to_link : side * side -> Schema.Link_type.cardinality

val to_mad : t -> Database.t
(** The (empty) MAD database whose schema is the one-to-one image. *)

val mad_auxiliary_count : t -> int
(** Always 0 — the claim of ch. 2, stated as code. *)

type rel_mapping = {
  schema : (string * Schema.Attr.t list) list;
  auxiliary : string list;
  foreign_keys : (string * string) list;
}

val to_relational : t -> rel_mapping
val relational_auxiliary_count : t -> int

val to_dot : t -> string
(** Graphviz rendering of the ER diagram (Fig. 1 upper part): entities
    as boxes, relationships as diamonds, cardinalities as labels. *)

val geographic : unit -> t
(** The cartographic ER schema of Fig. 1. *)
