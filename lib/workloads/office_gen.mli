(** Office/document workload: strictly hierarchical, disjoint complex
    objects (document -> section -> paragraph, 1:n) — the degenerate
    case NF² handles, used as the control group. *)

open Mad_store

type params = { docs : int; sections : int; paragraphs : int; seed : int }

val default : params
val define_schema : Database.t -> unit
val build : params -> Database.t
val document_desc : Database.t -> Mad.Mdesc.t
