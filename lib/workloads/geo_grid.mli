(** Grid-based cartography: states as cells sharing border edges and
    corner points (the paper's shared geographical model); rivers as
    nets reusing border edges or carrying private geometry. *)

open Mad_store

type t = {
  db : Database.t;
  rows : int;
  cols : int;
  states : (string * Aid.t) list;
  areas : Aid.t array array;
  h_edges : Aid.t array array;  (** h_edges.(y).(c), y in 0..rows *)
  v_edges : Aid.t array array;  (** v_edges.(x).(r), x in 0..cols *)
  points : Aid.t array array;  (** points.(x).(y) *)
}

val build : ?hectares:(int -> int) -> rows:int -> cols:int -> string list -> t
val add_river : t -> name:string -> length:int -> Aid.t list -> Aid.t
val add_private_river : t -> name:string -> length:int -> int -> Aid.t
val add_city : t -> name:string -> population:int -> int * int -> Aid.t
val state : t -> string -> Aid.t
val point : t -> int * int -> Aid.t
