(** Scalable synthetic cartography with a controllable sharing knob
    (the SHARE experiment): grid states, rivers reusing border edges
    ([shared_rivers]) or carrying private geometry. *)

type params = {
  rows : int;
  cols : int;
  rivers : int;
  river_len : int;
  cities : int;
  shared_rivers : bool;
  seed : int;
}

val default : params
val state_names : int -> string list
val all_border_edges : Geo_grid.t -> Mad_store.Aid.t list
val build : params -> Geo_grid.t
