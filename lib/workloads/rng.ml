(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Workload generation must be reproducible across runs and platforms,
    so we avoid [Stdlib.Random] and use an explicit-state SplitMix64:
    the same seed always yields the same database. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

(** An independent generator split off the current one. *)
let split t = { state = next_int64 t }

(** Pick a uniformly random element of a non-empty list. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

(** A random subset of size [k] (without replacement). *)
let sample t k xs =
  let n = List.length xs in
  if k >= n then xs
  else begin
    let arr = Array.of_list xs in
    for i = n - 1 downto 1 do
      let j = int t (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list (Array.sub arr 0 k)
  end
