(** The cartographic schema of Fig. 1: application atom types (state,
    city, river) over the shared geographical model (area, net, edge,
    point). *)

open Mad_store

val define : Database.t -> unit

val mt_state_desc : Database.t -> Mad.Mdesc.t
(** Fig. 2's [mt state]: state - area - edge - point. *)

val mt_river_desc : Database.t -> Mad.Mdesc.t
(** river - net - edge - point. *)

val point_neighborhood_desc : Database.t -> Mad.Mdesc.t
(** Fig. 2's [point neighborhood]:
    point - edge - (area - state, net - river). *)
