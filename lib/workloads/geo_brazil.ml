(** The exact geographic application of Figs. 1, 2 and 4: Brazil, its
    states, rivers and cities over the shared geographical model.

    The figures only show part of the occurrence ("Only the relevant
    data are shown"); the atoms they do show — the ten states BA, GO,
    MS, MG, ES, RJ, SP, PR, SC, RS, the rivers Paraná, Amazonas and
    Uruguai, the point [pn] whose neighbourhood Fig. 2 derives — are
    reproduced with the figure's structure: the states tile a 5x2 grid,
    GO/MG/MS/SP meet at the point [pn], and the Paraná's net shares
    border edges with MG, SP and PR (the sharing situation described in
    ch. 2). *)

open Mad_store

type t = {
  grid : Geo_grid.t;
  pn : Aid.t;  (** the point of Fig. 2's "point neighborhood" query *)
  parana : Aid.t;
  amazonas : Aid.t;
  uruguai : Aid.t;
}

let db t = t.grid.Geo_grid.db

(* Row-major 5x2 layout; GO MG / MS SP / RJ PR / SC ES / RS BA puts
   GO, MG, MS, SP around grid point (1,1) and makes MG-SP and SP-PR
   borders vertically adjacent in column 1. *)
let state_layout =
  [ "GO"; "MG"; "MS"; "SP"; "RJ"; "PR"; "SC"; "ES"; "RS"; "BA" ]

let hectare_of = function
  | "BA" -> 1000
  | "MG" -> 900
  | "SP" -> 2000
  | "RS" -> 1500
  | "GO" -> 800
  | "MS" -> 700
  | "RJ" -> 300
  | "PR" -> 600
  | "SC" -> 400
  | "ES" -> 200
  | s -> Err.failf "unknown state %s" s

let build () =
  let grid =
    Geo_grid.build ~rows:5 ~cols:2
      ~hectares:(fun i -> hectare_of (List.nth state_layout i))
      state_layout
  in
  (* Fig. 2's pn: the intersection shared by GO, MG, MS, SP. *)
  let pn = Geo_grid.point grid (1, 1) in
  let () =
    (* rename it to 'pn' (the grid names it positionally) *)
    let a = Database.atom grid.Geo_grid.db pn in
    a.Atom.values.(0) <- Value.String "pn"
  in
  (* Paraná: along the MG|SP border (h y=1 col 1) and the SP|PR border
     (h y=2 col 1): shares edges (and pn) with MG, SP and PR. *)
  let parana =
    Geo_grid.add_river grid ~name:"Parana" ~length:4880
      [ grid.Geo_grid.h_edges.(1).(1); grid.Geo_grid.h_edges.(2).(1) ]
  in
  (* Amazonas: along the northern borders of GO and MG. *)
  let amazonas =
    Geo_grid.add_river grid ~name:"Amazonas" ~length:6992
      [ grid.Geo_grid.h_edges.(0).(0); grid.Geo_grid.h_edges.(0).(1) ]
  in
  (* Uruguai: along the southern borders of RS and BA. *)
  let uruguai =
    Geo_grid.add_river grid ~name:"Uruguai" ~length:1838
      [ grid.Geo_grid.h_edges.(5).(0); grid.Geo_grid.h_edges.(5).(1) ]
  in
  List.iter
    (fun (name, population, xy) ->
      ignore (Geo_grid.add_city grid ~name ~population xy))
    [
      ("Brasilia", 2800000, (0, 0));
      ("Sao Paulo", 12300000, (1, 2));
      ("Rio de Janeiro", 6700000, (0, 3));
      ("Curitiba", 1900000, (1, 3));
      ("Porto Alegre", 1400000, (0, 5));
      ("Salvador", 2900000, (2, 5));
    ];
  { grid; pn; parana; amazonas; uruguai }

let mt_state_desc t = Geo_schema.mt_state_desc (db t)
let point_neighborhood_desc t = Geo_schema.point_neighborhood_desc (db t)
let state t name = Geo_grid.state t.grid name
