(** The exact geographic application of Figs. 1, 2 and 4: Brazil's ten
    states on a 5x2 grid with GO/MG/MS/SP meeting at the point [pn],
    the Paraná sharing border edges with MG, SP and PR, plus Amazonas,
    Uruguai and six cities. *)

open Mad_store

type t = {
  grid : Geo_grid.t;
  pn : Aid.t;  (** the point of Fig. 2's point-neighborhood query *)
  parana : Aid.t;
  amazonas : Aid.t;
  uruguai : Aid.t;
}

val db : t -> Database.t
val state_layout : string list
val hectare_of : string -> int
val build : unit -> t
val mt_state_desc : t -> Mad.Mdesc.t
val point_neighborhood_desc : t -> Mad.Mdesc.t
val state : t -> string -> Aid.t
