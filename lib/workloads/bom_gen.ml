(** Bill-of-material workload: the paper's motivating example for
    reflexive link types and recursive molecule types (ch. 3.1's
    [composition] link type on [part], ch. 5's parts-explosion
    outlook).

    Parts form a layered DAG: [depth] levels, [width] parts per level;
    each part links to [fanout] parts of the next level.  [share]
    controls subobject sharing: 0.0 gives a forest (each child has one
    parent, strictly hierarchical), larger values make children reused
    by several super-components (the non-disjoint, network case). *)

open Mad_store

type params = {
  depth : int;
  width : int;
  fanout : int;
  share : float;
  seed : int;
}

type t = {
  db : Database.t;
  levels : Aid.t array array;  (** levels.(d) = part atoms of level d *)
}

let default = { depth = 4; width = 8; fanout = 2; share = 0.5; seed = 7 }

let define_schema db =
  ignore
    (Database.declare_atom_type db "part"
       [
         Schema.Attr.v "pname" Domain.String;
         Schema.Attr.v "level" Domain.Int;
         Schema.Attr.v "cost" Domain.Int;
       ]);
  (* the reflexive link type: left role = super-component,
     right role = sub-component *)
  ignore (Database.declare_link_type db "composition" ("part", "part"))

let build p =
  let rng = Rng.create p.seed in
  let db = Database.create () in
  define_schema db;
  let levels =
    Array.init p.depth (fun d ->
        Array.init p.width (fun i ->
            (Database.insert_atom db ~atype:"part"
               [
                 Value.String (Printf.sprintf "P%d_%d" d i);
                 Value.Int d;
                 Value.Int (1 + Rng.int rng 100);
               ])
              .id))
  in
  for d = 0 to p.depth - 2 do
    for i = 0 to p.width - 1 do
      let super = levels.(d).(i) in
      for k = 0 to p.fanout - 1 do
        (* deterministic "own" child vs shared random child *)
        let child =
          if Rng.bool rng p.share then
            levels.(d + 1).(Rng.int rng p.width)
          else levels.(d + 1).((i + k) mod p.width)
        in
        Database.add_link db "composition" ~left:super ~right:child
      done
    done
  done;
  { db; levels }

(** Reference transitive closure (sub-component view) computed directly
    on the link store — the oracle against which recursive molecule
    derivation is tested. *)
let explosion_reference t root =
  let rec go seen frontier =
    if Aid.Set.is_empty frontier then seen
    else
      let next =
        Aid.Set.fold
          (fun p acc ->
            Aid.Set.union acc
              (Database.neighbors t.db "composition" ~dir:`Fwd p))
          frontier Aid.Set.empty
      in
      let fresh = Aid.Set.diff next seen in
      go (Aid.Set.union seen fresh) fresh
  in
  go (Aid.Set.singleton root) (Aid.Set.singleton root)

(** The where-used (super-component) view. *)
let where_used_reference t root =
  let rec go seen frontier =
    if Aid.Set.is_empty frontier then seen
    else
      let next =
        Aid.Set.fold
          (fun p acc ->
            Aid.Set.union acc
              (Database.neighbors t.db "composition" ~dir:`Bwd p))
          frontier Aid.Set.empty
      in
      let fresh = Aid.Set.diff next seen in
      go (Aid.Set.union seen fresh) fresh
  in
  go (Aid.Set.singleton root) (Aid.Set.singleton root)
