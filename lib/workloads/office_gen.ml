(** Office/document workload: strictly hierarchical, *disjoint* complex
    objects (document -> section -> paragraph, all 1:n).

    This is the degenerate case the paper says NF² models handle —
    "disjoint objects showing only hierarchical (graph) structures are
    just special cases" of molecules — and it is the workload on which
    MAD and the NF² baseline must coincide (example [design_office],
    experiment FIG2's control group). *)

open Mad_store

type params = { docs : int; sections : int; paragraphs : int; seed : int }

let default = { docs = 5; sections = 4; paragraphs = 3; seed = 11 }

let define_schema db =
  ignore
    (Database.declare_atom_type db "document"
       [
         Schema.Attr.v "title" Domain.String;
         Schema.Attr.v "year" Domain.Int;
       ]);
  ignore
    (Database.declare_atom_type db "section"
       [
         Schema.Attr.v "heading" Domain.String;
         Schema.Attr.v "number" Domain.Int;
       ]);
  ignore
    (Database.declare_atom_type db "paragraph"
       [
         Schema.Attr.v "text" Domain.String;
         Schema.Attr.v "words" Domain.Int;
       ]);
  ignore
    (Database.declare_link_type db ~card:(Some 1, None) "doc-sec"
       ("document", "section"));
  ignore
    (Database.declare_link_type db ~card:(Some 1, None) "sec-para"
       ("section", "paragraph"))

let build p =
  let rng = Rng.create p.seed in
  let db = Database.create () in
  define_schema db;
  for d = 1 to p.docs do
    let doc =
      Database.insert_atom db ~atype:"document"
        [ Value.String (Printf.sprintf "Doc%d" d); Value.Int (1980 + d) ]
    in
    for s = 1 to p.sections do
      let sec =
        Database.insert_atom db ~atype:"section"
          [ Value.String (Printf.sprintf "D%d.S%d" d s); Value.Int s ]
      in
      Database.add_link db "doc-sec" ~left:doc.id ~right:sec.id;
      for q = 1 to p.paragraphs do
        let para =
          Database.insert_atom db ~atype:"paragraph"
            [
              Value.String (Printf.sprintf "D%d.S%d.P%d" d s q);
              Value.Int (20 + Rng.int rng 200);
            ]
        in
        Database.add_link db "sec-para" ~left:sec.id ~right:para.id
      done
    done
  done;
  db

let document_desc db =
  Mad.Mdesc.v db
    ~nodes:[ "document"; "section"; "paragraph" ]
    ~edges:
      [ ("doc-sec", "document", "section"); ("sec-para", "section", "paragraph") ]
