(** VLSI design workload — the paper's motivating application area
    (ch. 1: "CAD/CAM and VLSI design").

    A cell library of leaf gates and a hierarchy of modules, each
    instantiating cells of the level below through the *reflexive* n:m
    link type [instantiates] — standard cells are shared by every
    module that uses them (non-disjoint complex objects), and the
    design hierarchy is queried recursively (cell explosion = flatten,
    where-used = library cross-reference).  Each cell carries pins;
    nets connect pins n:m. *)

open Mad_store

type params = {
  leaf_cells : int;  (** size of the standard-cell library *)
  levels : int;  (** hierarchy levels above the leaves *)
  modules_per_level : int;
  instances_per_module : int;
  pins_per_cell : int;
  seed : int;
}

let default =
  {
    leaf_cells = 6;
    levels = 3;
    modules_per_level = 4;
    instances_per_module = 4;
    pins_per_cell = 3;
    seed = 17;
  }

type t = {
  db : Database.t;
  leaves : Aid.t array;
  modules : Aid.t array array;  (** modules.(level) for level 1.. *)
  top : Aid.t;
}

let define_schema db =
  ignore
    (Database.declare_atom_type db "cell"
       [
         Schema.Attr.v "cname" Domain.String;
         Schema.Attr.v "kind" (Domain.Enum [ "leaf"; "module"; "top" ]);
         Schema.Attr.v "area" Domain.Int;
       ]);
  ignore
    (Database.declare_atom_type db "pin"
       [
         Schema.Attr.v "pname" Domain.String;
         Schema.Attr.v "dir" (Domain.Enum [ "in"; "out" ]);
       ]);
  ignore (Database.declare_atom_type db "net" [ Schema.Attr.v "nname" Domain.String ]);
  (* design hierarchy: reflexive, n:m — shared subcells *)
  ignore (Database.declare_link_type db "instantiates" ("cell", "cell"));
  ignore (Database.declare_link_type db ~card:(Some 1, None) "cell-pin" ("cell", "pin"));
  ignore (Database.declare_link_type db "net-pin" ("net", "pin"))

let leaf_names = [| "INV"; "NAND"; "NOR"; "XOR"; "DFF"; "BUF"; "MUX"; "AOI" |]

let build p =
  let rng = Rng.create p.seed in
  let db = Database.create () in
  define_schema db;
  let add_cell name kind area =
    let c =
      Database.insert_atom db ~atype:"cell"
        [ Value.String name; Value.String kind; Value.Int area ]
    in
    for k = 1 to p.pins_per_cell do
      let pin =
        Database.insert_atom db ~atype:"pin"
          [
            Value.String (Printf.sprintf "%s.p%d" name k);
            Value.String (if k = p.pins_per_cell then "out" else "in");
          ]
      in
      Database.add_link db "cell-pin" ~left:c.Atom.id ~right:pin.Atom.id
    done;
    c.Atom.id
  in
  let leaves =
    Array.init p.leaf_cells (fun i ->
        add_cell
          (leaf_names.(i mod Array.length leaf_names)
           ^ if i >= Array.length leaf_names then string_of_int i else "")
          "leaf"
          (1 + Rng.int rng 8))
  in
  let modules =
    Array.init p.levels (fun lvl ->
        Array.init p.modules_per_level (fun i ->
            add_cell (Printf.sprintf "M%d_%d" (lvl + 1) i) "module" 0))
  in
  (* wire the hierarchy: each module instantiates cells one level down *)
  Array.iteri
    (fun lvl row ->
      let below = if lvl = 0 then leaves else modules.(lvl - 1) in
      Array.iter
        (fun m ->
          for _ = 1 to p.instances_per_module do
            let child = below.(Rng.int rng (Array.length below)) in
            Database.add_link db "instantiates" ~left:m ~right:child
          done)
        row)
    modules;
  let top = add_cell "TOP" "top" 0 in
  Array.iter
    (fun m -> Database.add_link db "instantiates" ~left:top ~right:m)
    modules.(p.levels - 1);
  (* nets inside each module: connect random pins of its children *)
  let all_cells = top :: (Array.to_list leaves @ List.concat_map Array.to_list (Array.to_list modules)) in
  List.iteri
    (fun i c ->
      let child_pins =
        Aid.Set.fold
          (fun child acc ->
            Aid.Set.elements (Database.neighbors db "cell-pin" ~dir:`Fwd child)
            @ acc)
          (Database.neighbors db "instantiates" ~dir:`Fwd c)
          []
      in
      if List.length child_pins >= 2 then begin
        let net =
          Database.insert_atom db ~atype:"net"
            [ Value.String (Printf.sprintf "n%d" i) ]
        in
        List.iter
          (fun pin -> Database.add_link db "net-pin" ~left:net.Atom.id ~right:pin)
          (Rng.sample rng 3 child_pins)
      end)
    all_cells;
  { db; leaves; modules; top }
