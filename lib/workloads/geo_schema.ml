(** The cartographic schema of Fig. 1: the application atom types
    (state, city, river) over the common geographical model (area, net,
    edge, point), all relationships as bidirectional link types.

    Shared by the exact Brazil instance ({!Geo_brazil}) and the
    scalable generator ({!Geo_gen}). *)

open Mad_store

let define db =
  let attr = Schema.Attr.v in
  ignore
    (Database.declare_atom_type db "state"
       [ attr "name" Domain.String; attr "hectare" Domain.Int ]);
  ignore
    (Database.declare_atom_type db "city"
       [ attr "name" Domain.String; attr "population" Domain.Int ]);
  ignore
    (Database.declare_atom_type db "river"
       [ attr "name" Domain.String; attr "length" Domain.Int ]);
  ignore
    (Database.declare_atom_type db "area"
       [ attr "name" Domain.String; attr "size" Domain.Int ]);
  ignore (Database.declare_atom_type db "net" [ attr "name" Domain.String ]);
  ignore
    (Database.declare_atom_type db "edge"
       [ attr "name" Domain.String; attr "length" Domain.Int ]);
  ignore
    (Database.declare_atom_type db "point"
       [ attr "name" Domain.String; attr "x" Domain.Int; attr "y" Domain.Int ]);
  (* application object -> its geometry: 1:1 *)
  ignore
    (Database.declare_link_type db ~card:(Some 1, Some 1) "state-area"
       ("state", "area"));
  ignore
    (Database.declare_link_type db ~card:(Some 1, Some 1) "river-net"
       ("river", "net"));
  ignore
    (Database.declare_link_type db ~card:(None, Some 1) "city-point"
       ("city", "point"));
  (* geometry sharing: n:m *)
  ignore (Database.declare_link_type db "area-edge" ("area", "edge"));
  ignore (Database.declare_link_type db "net-edge" ("net", "edge"));
  ignore (Database.declare_link_type db "edge-point" ("edge", "point"))

(** The molecule structure of Fig. 2's [mt state]:
    state - area - edge - point. *)
let mt_state_desc db =
  Mad.Mdesc.v db
    ~nodes:[ "state"; "area"; "edge"; "point" ]
    ~edges:
      [
        ("state-area", "state", "area");
        ("area-edge", "area", "edge");
        ("edge-point", "edge", "point");
      ]

(** The river view: river - net - edge - point (a second application
    object family over the same geometry). *)
let mt_river_desc db =
  Mad.Mdesc.v db
    ~nodes:[ "river"; "net"; "edge"; "point" ]
    ~edges:
      [
        ("river-net", "river", "net");
        ("net-edge", "net", "edge");
        ("edge-point", "edge", "point");
      ]

(** The molecule structure of Fig. 2's [point neighborhood]:
    point - edge - (area - state, net - river) — the symmetric
    (bottom-up) use of the very same link types. *)
let point_neighborhood_desc db =
  Mad.Mdesc.v db
    ~nodes:[ "point"; "edge"; "area"; "state"; "net"; "river" ]
    ~edges:
      [
        ("edge-point", "point", "edge");
        ("area-edge", "edge", "area");
        ("state-area", "area", "state");
        ("net-edge", "edge", "net");
        ("river-net", "net", "river");
      ]
