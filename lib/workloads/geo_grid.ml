(** Grid-based cartography construction shared by {!Geo_brazil} and
    {!Geo_gen}.

    States are laid out as a [rows] x [cols] grid of unit cells.  Cell
    borders are edges; grid intersections are points.  Vertically or
    horizontally adjacent cells *share* their border edge, and edges
    meeting at an intersection share the point — this reproduces the
    paper's claim that "different complex objects are contained in one
    schema sharing common subobjects ... thereby avoiding any data
    redundancies".  Rivers are modelled as nets whose course reuses
    existing border edges (shared subobjects between rivers and states,
    the Paraná situation of ch. 2) or, optionally, private edges (the
    no-sharing baseline used by the SHARE experiment). *)

open Mad_store

type t = {
  db : Database.t;
  rows : int;
  cols : int;
  states : (string * Aid.t) list;  (** state name -> state atom *)
  areas : Aid.t array array;  (** areas.(r).(c) *)
  h_edges : Aid.t array array;  (** h_edges.(y).(c): horizontal edge at height y, column c; y in 0..rows *)
  v_edges : Aid.t array array;  (** v_edges.(x).(r): vertical edge at offset x, row r; x in 0..cols *)
  points : Aid.t array array;  (** points.(x).(y), x in 0..cols, y in 0..rows *)
}

(** Build the grid geometry for the given state names (row-major,
    [rows * cols] names).  Each state gets one area; every area links to
    its four border edges; every edge links to its two endpoints. *)
let build ?(hectares = fun _ -> 500) ~rows ~cols state_names =
  if List.length state_names <> rows * cols then
    Err.failf "geo grid: %d names for %d cells" (List.length state_names)
      (rows * cols);
  let db = Database.create () in
  Geo_schema.define db;
  let points =
    Array.init (cols + 1) (fun x ->
        Array.init (rows + 1) (fun y ->
            let name =
              Printf.sprintf "p%d_%d" x y
            in
            (Database.insert_atom db ~atype:"point"
               [ Value.String name; Value.Int x; Value.Int y ])
              .id))
  in
  let h_edges =
    Array.init (rows + 1) (fun y ->
        Array.init cols (fun c ->
            let e =
              Database.insert_atom db ~atype:"edge"
                [ Value.String (Printf.sprintf "eh%d_%d" y c); Value.Int 1 ]
            in
            Database.add_link db "edge-point" ~left:e.id ~right:points.(c).(y);
            Database.add_link db "edge-point" ~left:e.id
              ~right:points.(c + 1).(y);
            e.id))
  in
  let v_edges =
    Array.init (cols + 1) (fun x ->
        Array.init rows (fun r ->
            let e =
              Database.insert_atom db ~atype:"edge"
                [ Value.String (Printf.sprintf "ev%d_%d" x r); Value.Int 1 ]
            in
            Database.add_link db "edge-point" ~left:e.id ~right:points.(x).(r);
            Database.add_link db "edge-point" ~left:e.id
              ~right:points.(x).(r + 1);
            e.id))
  in
  let areas = Array.make_matrix rows cols 0 in
  let states =
    List.mapi
      (fun i name ->
        let r = i / cols and c = i mod cols in
        let area =
          Database.insert_atom db ~atype:"area"
            [ Value.String (Printf.sprintf "a%d" (i + 1)); Value.Int 1 ]
        in
        areas.(r).(c) <- area.id;
        (* four borders: top h(y=r), bottom h(y=r+1), left v(x=c), right v(x=c+1) *)
        Database.add_link db "area-edge" ~left:area.id ~right:h_edges.(r).(c);
        Database.add_link db "area-edge" ~left:area.id
          ~right:h_edges.(r + 1).(c);
        Database.add_link db "area-edge" ~left:area.id ~right:v_edges.(c).(r);
        Database.add_link db "area-edge" ~left:area.id
          ~right:v_edges.(c + 1).(r);
        let state =
          Database.insert_atom db ~atype:"state"
            [ Value.String name; Value.Int (hectares i) ]
        in
        Database.add_link db "state-area" ~left:state.id ~right:area.id;
        (name, state.id))
      state_names
  in
  { db; rows; cols; states; areas; h_edges; v_edges; points }

(** Add a river whose net's course is the given list of existing edge
    atoms (shared-subobject style). *)
let add_river g ~name ~length edge_ids =
  let river =
    Database.insert_atom g.db ~atype:"river"
      [ Value.String name; Value.Int length ]
  in
  let net =
    Database.insert_atom g.db ~atype:"net"
      [ Value.String ("n_" ^ name) ]
  in
  Database.add_link g.db "river-net" ~left:river.id ~right:net.id;
  List.iter
    (fun e -> Database.add_link g.db "net-edge" ~left:net.id ~right:e)
    edge_ids;
  river.id

(** Add a river with [n_edges] private (unshared) edges and points —
    the redundant representation a model without subobject sharing is
    forced into. *)
let add_private_river g ~name ~length n_edges =
  let mk_point i =
    (Database.insert_atom g.db ~atype:"point"
       [ Value.String (Printf.sprintf "rp_%s_%d" name i); Value.Int (-1);
         Value.Int i ])
      .id
  in
  let first = mk_point 0 in
  let edges =
    List.fold_left
      (fun (prev, acc) i ->
        let next = mk_point i in
        let e =
          Database.insert_atom g.db ~atype:"edge"
            [ Value.String (Printf.sprintf "re_%s_%d" name i); Value.Int 1 ]
        in
        Database.add_link g.db "edge-point" ~left:e.id ~right:prev;
        Database.add_link g.db "edge-point" ~left:e.id ~right:next;
        (next, e.id :: acc))
      (first, [])
      (List.init n_edges (fun i -> i + 1))
    |> snd |> List.rev
  in
  add_river g ~name ~length edges

(** Add a city located at grid intersection [(x, y)]. *)
let add_city g ~name ~population (x, y) =
  let city =
    Database.insert_atom g.db ~atype:"city"
      [ Value.String name; Value.Int population ]
  in
  Database.add_link g.db "city-point" ~left:city.id ~right:g.points.(x).(y);
  city.id

let state g name = List.assoc name g.states
let point g (x, y) = g.points.(x).(y)
