(** VLSI design workload (the paper's motivating domain): a standard-
    cell library and a module hierarchy over the reflexive n:m
    [instantiates] link type — cells shared by every module using them —
    plus pins and nets. *)

open Mad_store

type params = {
  leaf_cells : int;
  levels : int;
  modules_per_level : int;
  instances_per_module : int;
  pins_per_cell : int;
  seed : int;
}

type t = {
  db : Database.t;
  leaves : Aid.t array;
  modules : Aid.t array array;
  top : Aid.t;
}

val default : params
val leaf_names : string array
val define_schema : Database.t -> unit
val build : params -> t
