(** Bill-of-material workload: a layered part DAG over the reflexive
    [composition] link type (ch. 3.1, ch. 5's recursion outlook), with
    a sharing knob, plus reference closures used as test oracles. *)

open Mad_store

type params = {
  depth : int;
  width : int;
  fanout : int;
  share : float;  (** 0.0: forest; higher: more shared sub-components *)
  seed : int;
}

type t = { db : Database.t; levels : Aid.t array array }

val default : params
val define_schema : Database.t -> unit
val build : params -> t

val explosion_reference : t -> Aid.t -> Aid.Set.t
(** Transitive closure, sub-component view (oracle). *)

val where_used_reference : t -> Aid.t -> Aid.Set.t
(** Reverse closure, super-component view (oracle). *)
