(** Scalable synthetic cartography with a controllable sharing factor —
    the workload of the SHARE experiment (the paper's ch. 1-2 claim that
    n:m sharing makes the relational transformation cumbersome and its
    queries "perhaps less efficient").

    [rows * cols] states on a grid (borders shared between neighbours),
    [rivers] rivers of [river_len] edges each.  With [shared_rivers]
    each river's net reuses random border edges (MAD-style shared
    subobjects); without, each river carries private edges and points
    (the redundant representation forced on models without sharing). *)

type params = {
  rows : int;
  cols : int;
  rivers : int;
  river_len : int;
  cities : int;
  shared_rivers : bool;
  seed : int;
}

let default =
  {
    rows = 4;
    cols = 4;
    rivers = 4;
    river_len = 4;
    cities = 8;
    shared_rivers = true;
    seed = 42;
  }

let state_names n = List.init n (fun i -> Printf.sprintf "S%03d" (i + 1))

let all_border_edges (g : Geo_grid.t) =
  let h =
    List.concat
      (List.init (g.rows + 1) (fun y ->
           List.init g.cols (fun c -> g.h_edges.(y).(c))))
  in
  let v =
    List.concat
      (List.init (g.cols + 1) (fun x ->
           List.init g.rows (fun r -> g.v_edges.(x).(r))))
  in
  h @ v

let build p =
  let rng = Rng.create p.seed in
  let g =
    Geo_grid.build ~rows:p.rows ~cols:p.cols
      ~hectares:(fun i -> 100 + ((i * 37) mod 1900))
      (state_names (p.rows * p.cols))
  in
  let borders = all_border_edges g in
  for i = 1 to p.rivers do
    let name = Printf.sprintf "R%03d" i in
    if p.shared_rivers then
      let course = Rng.sample rng (min p.river_len (List.length borders)) borders in
      ignore (Geo_grid.add_river g ~name ~length:(100 * p.river_len) course)
    else
      ignore
        (Geo_grid.add_private_river g ~name ~length:(100 * p.river_len)
           p.river_len)
  done;
  for i = 1 to p.cities do
    let x = Rng.int rng (p.cols + 1) and y = Rng.int rng (p.rows + 1) in
    ignore
      (Geo_grid.add_city g
         ~name:(Printf.sprintf "C%03d" i)
         ~population:(10_000 + Rng.int rng 1_000_000)
         (x, y))
  done;
  g
