(** Deterministic explicit-state pseudo-random numbers (SplitMix64);
    the same seed always yields the same workload. *)

type t

val create : int -> t
val next_int64 : t -> int64
val int : t -> int -> int
(** Uniform in [0, bound). *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** True with the given probability. *)

val split : t -> t
val choose : t -> 'a list -> 'a
val sample : t -> int -> 'a list -> 'a list
(** A random subset of size [k] (without replacement). *)
