(** Molecule derivation emulated on the transformed relational schema —
    the join plans a relational system runs to assemble the same
    complex objects MAD derives by link traversal. *)

open Mad_store
module Smap : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

val frontier : string -> (Aid.t * Aid.t) list -> Relation.t
(** A (root, member) frontier relation. *)

val derive :
  ?stats:Rel_algebra.stats ->
  Mapping.t ->
  Database.t ->
  Mad.Mdesc.t ->
  (Aid.t * Aid.Set.t Smap.t) list
(** Per root id, the member sets per node — directly comparable with
    {!Mad.Derive.m_dom}. *)

val derive_filtered :
  ?stats:Rel_algebra.stats ->
  Mapping.t ->
  Database.t ->
  Mad.Mdesc.t ->
  root_pred:(Value.t array -> bool) ->
  Aid.t list
(** Derivation restricted to qualifying roots (the relational
    counterpart of the pushdown ablation). *)

val flat_join :
  ?stats:Rel_algebra.stats ->
  Mapping.t ->
  Database.t ->
  Mad.Mdesc.t ->
  Relation.t
(** The fully joined wide relation over a tree structure; its
    cardinality measures the flat answer's redundancy.  Fails on
    diamonds. *)
