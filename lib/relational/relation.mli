(** Relations: the baseline data structure of the relational model the
    paper extends.  Set semantics (insertion de-duplicates). *)

open Mad_store

module Vmap : Map.S with type key = Value.t list

type t = {
  name : string;
  attrs : Schema.Attr.t list;
  mutable tuples : Value.t array list;  (** newest first *)
  mutable index : unit Vmap.t;
}

val create : string -> Schema.Attr.t list -> t
val arity : t -> int
val cardinality : t -> int
val attr_index : t -> string -> int
val attr_names : t -> string list

val insert : t -> Value.t array -> bool
(** Set-semantics insert; returns whether the tuple was new. *)

val insert_list : t -> Value.t list -> unit
val mem : t -> Value.t array -> bool
val iter : (Value.t array -> unit) -> t -> unit
val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a
val same_description : t -> t -> bool

val sorted_tuples : t -> Value.t array list
(** Deterministic order for tests and printing. *)

val pp : Format.formatter -> t -> unit
val pp_full : Format.formatter -> t -> unit
