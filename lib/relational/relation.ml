(** Relations: the baseline data structure of the relational model the
    paper extends.  Tuples are value arrays over an ordered attribute
    list; occurrences follow set semantics (insertion de-duplicates).

    This library is a *real* baseline, not a mock: the benchmark
    experiments run the same logical queries through this engine and
    through the MAD engine, so joins, set operations and the
    MAD-to-relational schema transformation are implemented in full. *)

open Mad_store

module Vmap = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

type t = {
  name : string;
  attrs : Schema.Attr.t list;
  mutable tuples : Value.t array list;  (** newest first *)
  mutable index : unit Vmap.t;  (** set-semantics membership *)
}

let create name attrs =
  let names = List.map (fun (a : Schema.Attr.t) -> a.name) attrs in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then Err.failf "relation %s: duplicate attribute" name;
  { name; attrs; tuples = []; index = Vmap.empty }

let arity r = List.length r.attrs
let cardinality r = List.length r.tuples

let attr_index r aname =
  let rec go i = function
    | [] -> Err.failf "relation %s has no attribute %s" r.name aname
    | (a : Schema.Attr.t) :: rest ->
      if String.equal a.name aname then i else go (i + 1) rest
  in
  go 0 r.attrs

let attr_names r = List.map (fun (a : Schema.Attr.t) -> a.name) r.attrs

(** Set-semantics insert: duplicates are ignored; returns whether the
    tuple was new. *)
let insert r tuple =
  if Array.length tuple <> arity r then
    Err.failf "relation %s: tuple arity %d, schema arity %d" r.name
      (Array.length tuple) (arity r);
  let key = Array.to_list tuple in
  if Vmap.mem key r.index then false
  else begin
    r.index <- Vmap.add key () r.index;
    r.tuples <- tuple :: r.tuples;
    true
  end

let insert_list r values = ignore (insert r (Array.of_list values))

let mem r tuple = Vmap.mem (Array.to_list tuple) r.index

let iter f r = List.iter f r.tuples
let fold f init r = List.fold_left f init r.tuples

let same_description a b =
  List.equal Schema.Attr.equal a.attrs b.attrs

(** Tuples in a deterministic order (for tests and printing). *)
let sorted_tuples r =
  List.sort (fun a b -> List.compare Value.compare (Array.to_list a) (Array.to_list b)) r.tuples

let pp ppf r =
  Fmt.pf ppf "@[<v>%s(%a): %d tuples@]" r.name
    Fmt.(list ~sep:(any ", ") Schema.Attr.pp)
    r.attrs (cardinality r)

let pp_full ppf r =
  pp ppf r;
  List.iter
    (fun t ->
      Fmt.pf ppf "@.  (%a)" Fmt.(array ~sep:(any ", ") Value.pp) t)
    (sorted_tuples r)
