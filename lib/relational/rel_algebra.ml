(** The relational algebra baseline: σ π ρ × ∪ − plus real join
    algorithms (hash and nested-loop).  [stats] counters expose the
    tuple work done, which is what the SHARE/FIG2 experiments compare
    against the MAD engine's link traversals. *)

open Mad_store

type stats = {
  mutable tuples_scanned : int;
  mutable tuples_emitted : int;
  mutable probes : int;
}

let stats () = { tuples_scanned = 0; tuples_emitted = 0; probes = 0 }

let no_stats = stats ()

let fresh_name =
  let k = ref 0 in
  fun base ->
    incr k;
    Printf.sprintf "%s_%d" base !k

(** σ — selection by an arbitrary tuple predicate. *)
let select ?(stats = no_stats) ?name pred r =
  let out =
    Relation.create
      (Option.value name ~default:(fresh_name (r.Relation.name ^ "_s")))
      r.Relation.attrs
  in
  Relation.iter
    (fun t ->
      stats.tuples_scanned <- stats.tuples_scanned + 1;
      if pred t then begin
        stats.tuples_emitted <- stats.tuples_emitted + 1;
        ignore (Relation.insert out t)
      end)
    r;
  out

(** Selection on one attribute. *)
let select_eq ?stats ?name r aname v =
  let i = Relation.attr_index r aname in
  select ?stats ?name (fun t -> Value.equal_sem t.(i) v) r

(** π — projection onto named attributes (set semantics). *)
let project ?(stats = no_stats) ?name attrs r =
  let idxs = List.map (Relation.attr_index r) attrs in
  let out_attrs = List.map (fun i -> List.nth r.Relation.attrs i) idxs in
  let out =
    Relation.create
      (Option.value name ~default:(fresh_name (r.Relation.name ^ "_p")))
      out_attrs
  in
  Relation.iter
    (fun t ->
      stats.tuples_scanned <- stats.tuples_scanned + 1;
      if Relation.insert out (Array.of_list (List.map (fun i -> t.(i)) idxs))
      then stats.tuples_emitted <- stats.tuples_emitted + 1)
    r;
  out

(** ρ — rename attributes through an association list. *)
let rename ?name mapping r =
  let attrs =
    List.map
      (fun (a : Schema.Attr.t) ->
        match List.assoc_opt a.name mapping with
        | Some n' -> { a with Schema.Attr.name = n' }
        | None -> a)
      r.Relation.attrs
  in
  let out =
    Relation.create
      (Option.value name ~default:(fresh_name (r.Relation.name ^ "_r")))
      attrs
  in
  Relation.iter (fun t -> ignore (Relation.insert out t)) r;
  out

(** × — cartesian product (second operand's colliding attributes are
    qualified, mirroring the MAD atom algebra). *)
let product ?(stats = no_stats) ?name r1 r2 =
  let taken = ref (Relation.attr_names r1) in
  let attrs2 =
    List.map
      (fun (a : Schema.Attr.t) ->
        let rec fresh c =
          if List.mem c !taken then fresh (r2.Relation.name ^ "_" ^ c) else c
        in
        let n = fresh a.name in
        taken := n :: !taken;
        { a with Schema.Attr.name = n })
      r2.Relation.attrs
  in
  let out =
    Relation.create
      (Option.value name
         ~default:(fresh_name (r1.Relation.name ^ "_x_" ^ r2.Relation.name)))
      (r1.Relation.attrs @ attrs2)
  in
  Relation.iter
    (fun t1 ->
      Relation.iter
        (fun t2 ->
          stats.tuples_scanned <- stats.tuples_scanned + 1;
          stats.tuples_emitted <- stats.tuples_emitted + 1;
          ignore (Relation.insert out (Array.append t1 t2)))
        r2)
    r1;
  out

let check_union_compatible op r1 r2 =
  if not (Relation.same_description r1 r2) then
    Err.failf "%s: %s and %s are not union-compatible" op r1.Relation.name
      r2.Relation.name

(** ∪ *)
let union ?(stats = no_stats) ?name r1 r2 =
  check_union_compatible "union" r1 r2;
  let out =
    Relation.create
      (Option.value name ~default:(fresh_name (r1.Relation.name ^ "_u")))
      r1.Relation.attrs
  in
  List.iter
    (fun r ->
      Relation.iter
        (fun t ->
          stats.tuples_scanned <- stats.tuples_scanned + 1;
          ignore (Relation.insert out t))
        r)
    [ r1; r2 ];
  out

(** − *)
let diff ?(stats = no_stats) ?name r1 r2 =
  check_union_compatible "difference" r1 r2;
  let out =
    Relation.create
      (Option.value name ~default:(fresh_name (r1.Relation.name ^ "_d")))
      r1.Relation.attrs
  in
  Relation.iter
    (fun t ->
      stats.tuples_scanned <- stats.tuples_scanned + 1;
      if not (Relation.mem r2 t) then ignore (Relation.insert out t))
    r1;
  out

let intersect ?stats ?name r1 r2 = diff ?stats ?name r1 (diff ?stats r1 r2)

(* ------------------------------------------------------------------ *)
(* Joins                                                                *)

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash v = Hashtbl.hash (Value.to_string v)
end)

(** Equi-join via hash join: build on the smaller side, probe the
    larger.  [lkey]/[rkey] are attribute names. *)
let hash_join ?(stats = no_stats) ?name r1 r2 ~lkey ~rkey =
  let i1 = Relation.attr_index r1 lkey and i2 = Relation.attr_index r2 rkey in
  let build_left = Relation.cardinality r1 <= Relation.cardinality r2 in
  let build, probe, bi, pi =
    if build_left then (r1, r2, i1, i2) else (r2, r1, i2, i1)
  in
  let tbl = Vtbl.create (max 16 (Relation.cardinality build)) in
  Relation.iter
    (fun t ->
      stats.tuples_scanned <- stats.tuples_scanned + 1;
      Vtbl.add tbl t.(bi) t)
    build;
  let taken = ref (Relation.attr_names r1) in
  let attrs2 =
    List.map
      (fun (a : Schema.Attr.t) ->
        let rec fresh c =
          if List.mem c !taken then fresh (r2.Relation.name ^ "_" ^ c) else c
        in
        let n = fresh a.name in
        taken := n :: !taken;
        { a with Schema.Attr.name = n })
      r2.Relation.attrs
  in
  let out =
    Relation.create
      (Option.value name
         ~default:(fresh_name (r1.Relation.name ^ "_j_" ^ r2.Relation.name)))
      (r1.Relation.attrs @ attrs2)
  in
  Relation.iter
    (fun t ->
      stats.tuples_scanned <- stats.tuples_scanned + 1;
      stats.probes <- stats.probes + 1;
      List.iter
        (fun t' ->
          stats.tuples_emitted <- stats.tuples_emitted + 1;
          let t1, t2 = if build_left then (t', t) else (t, t') in
          ignore (Relation.insert out (Array.append t1 t2)))
        (Vtbl.find_all tbl t.(pi)))
    probe;
  out

(** General theta join by nested loops (quadratic; kept as the honest
    fallback and for the join-algorithm ablation). *)
let nl_join ?(stats = no_stats) ?name pred r1 r2 =
  let taken = ref (Relation.attr_names r1) in
  let attrs2 =
    List.map
      (fun (a : Schema.Attr.t) ->
        let rec fresh c =
          if List.mem c !taken then fresh (r2.Relation.name ^ "_" ^ c) else c
        in
        let n = fresh a.name in
        taken := n :: !taken;
        { a with Schema.Attr.name = n })
      r2.Relation.attrs
  in
  let out =
    Relation.create
      (Option.value name
         ~default:(fresh_name (r1.Relation.name ^ "_nj_" ^ r2.Relation.name)))
      (r1.Relation.attrs @ attrs2)
  in
  Relation.iter
    (fun t1 ->
      Relation.iter
        (fun t2 ->
          stats.tuples_scanned <- stats.tuples_scanned + 1;
          if pred t1 t2 then begin
            stats.tuples_emitted <- stats.tuples_emitted + 1;
            ignore (Relation.insert out (Array.append t1 t2))
          end)
        r2)
    r1;
  out

(** Equi-join via sort-merge: both inputs sorted on the key, then a
    single merge pass with duplicate-group products. *)
let merge_join ?(stats = no_stats) ?name r1 r2 ~lkey ~rkey =
  let i1 = Relation.attr_index r1 lkey and i2 = Relation.attr_index r2 rkey in
  let sort r i =
    List.sort
      (fun (a : Value.t array) b -> Value.compare_sem a.(i) b.(i))
      r.Relation.tuples
  in
  let left = sort r1 i1 and right = sort r2 i2 in
  stats.tuples_scanned <-
    stats.tuples_scanned + List.length left + List.length right;
  let taken = ref (Relation.attr_names r1) in
  let attrs2 =
    List.map
      (fun (a : Schema.Attr.t) ->
        let rec fresh c =
          if List.mem c !taken then fresh (r2.Relation.name ^ "_" ^ c) else c
        in
        let n = fresh a.name in
        taken := n :: !taken;
        { a with Schema.Attr.name = n })
      r2.Relation.attrs
  in
  let out =
    Relation.create
      (Option.value name
         ~default:(fresh_name (r1.Relation.name ^ "_m_" ^ r2.Relation.name)))
      (r1.Relation.attrs @ attrs2)
  in
  (* split off the run of tuples sharing the head's key *)
  let run key i = List.partition (fun t -> Value.equal_sem t.(i) key) in
  let rec merge left right =
    match (left, right) with
    | [], _ | _, [] -> ()
    | l :: _, r :: _ ->
      let c = Value.compare_sem l.(i1) r.(i2) in
      if c < 0 then merge (List.tl left) right
      else if c > 0 then merge left (List.tl right)
      else begin
        let lrun, lrest = run l.(i1) i1 left in
        let rrun, rrest = run l.(i1) i2 right in
        List.iter
          (fun lt ->
            List.iter
              (fun rt ->
                stats.tuples_emitted <- stats.tuples_emitted + 1;
                ignore (Relation.insert out (Array.append lt rt)))
              rrun)
          lrun;
        merge lrest rrest
      end
  in
  merge left right;
  out

(** Semi-join: tuples of [r1] with a partner in [r2]. *)
let semi_join ?(stats = no_stats) ?name r1 r2 ~lkey ~rkey =
  let i1 = Relation.attr_index r1 lkey and i2 = Relation.attr_index r2 rkey in
  let tbl = Vtbl.create (max 16 (Relation.cardinality r2)) in
  Relation.iter
    (fun t ->
      stats.tuples_scanned <- stats.tuples_scanned + 1;
      Vtbl.replace tbl t.(i2) ())
    r2;
  select ~stats
    ?name
    (fun t -> Vtbl.mem tbl t.(i1))
    r1
