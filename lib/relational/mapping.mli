(** The MAD-to-relational schema transformation (ch. 2's "quite
    cumbersome" mapping): atom types become relations with a surrogate
    [id]; link types become auxiliary relations over the endpoint keys,
    except 1:n/1:1 link types inlined as foreign keys when
    [~inline_1n:true]. *)

open Mad_store

type t = {
  rels : (string, Relation.t) Hashtbl.t;
  inlined : (string, string) Hashtbl.t;
      (** link type -> FK attribute on the n-side relation *)
}

val relation : t -> string -> Relation.t
val relation_names : t -> string list

val auxiliary_count : Database.t -> t -> int
(** Number of auxiliary (link) relations — the paper's complaint,
    measured. *)

val id_attr : Schema.Attr.t
val left_attr : Schema.Link_type.t -> Schema.Attr.t
val right_attr : Schema.Link_type.t -> Schema.Attr.t

val of_database : ?inline_1n:bool -> Database.t -> t
