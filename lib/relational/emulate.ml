(** Molecule derivation emulated on the transformed relational schema:
    the join plans a relational system must run to assemble the same
    complex objects MAD derives by link traversal.

    [derive] computes, per structure edge in topological order, the
    frontier relation (root id, member id) by joining the parent
    frontier with the edge's auxiliary relation (or inlined FK); a node
    with several incoming edges intersects its frontiers (the diamond
    conjunction of Def. 6).  The result is directly comparable with
    {!Mad.Derive.m_dom} and the [stats] expose the tuple work.

    [flat_join] materializes the fully joined wide relation over a
    *tree* structure — the redundant representation ch. 2 warns about;
    its cardinality measures the duplication a flat relational answer
    carries. *)

open Mad_store
module Smap = Map.Make (String)

let frontier_attrs =
  [ Schema.Attr.v "root" Domain.Int; Schema.Attr.v "member" Domain.Int ]

let frontier name pairs =
  let r = Relation.create name frontier_attrs in
  List.iter
    (fun (root, m) -> ignore (Relation.insert r [| Value.Int root; Value.Int m |]))
    pairs;
  r

let pairs_of r =
  Relation.fold
    (fun acc t ->
      match t.(0), t.(1) with
      | Value.Int a, Value.Int b -> (a, b) :: acc
      | _ -> acc)
    [] r

(* Join a frontier with one structure edge, yielding the child frontier
   contributed by that edge. *)
let step ?stats (map : Mapping.t) db (e : Mad.Mdesc.edge) parent =
  match Hashtbl.find_opt map.Mapping.inlined e.link with
  | Some fk ->
    let child_rel = Mapping.relation map e.to_at in
    let joined =
      Rel_algebra.hash_join ?stats parent child_rel ~lkey:"member" ~rkey:fk
    in
    Rel_algebra.project ?stats [ "root"; "id" ] joined
    |> Rel_algebra.rename [ ("id", "member") ]
  | None ->
    let aux = Mapping.relation map e.link in
    let lt = Database.link_type db e.link in
    let la = (Mapping.left_attr lt).Schema.Attr.name in
    let ra = (Mapping.right_attr lt).Schema.Attr.name in
    let pkey, ckey = match e.dir with `Fwd -> (la, ra) | `Bwd -> (ra, la) in
    let joined =
      Rel_algebra.hash_join ?stats parent aux ~lkey:"member" ~rkey:pkey
    in
    Rel_algebra.project ?stats [ "root"; ckey ] joined
    |> Rel_algebra.rename [ (ckey, "member") ]

(** Run the derivation plan; returns, per root id, the per-node member
    sets. *)
let derive ?(stats = Rel_algebra.stats ()) (map : Mapping.t) db desc =
  let root_node = Mad.Mdesc.root desc in
  let root_rel = Mapping.relation map root_node in
  let roots =
    Relation.fold
      (fun acc t -> match t.(0) with Value.Int id -> id :: acc | _ -> acc)
      [] root_rel
    |> List.sort_uniq Int.compare
  in
  stats.Rel_algebra.tuples_scanned <-
    stats.Rel_algebra.tuples_scanned + List.length roots;
  let init =
    Smap.singleton root_node
      (frontier "f_root" (List.map (fun r -> (r, r)) roots))
  in
  let frontiers =
    List.fold_left
      (fun acc node ->
        if String.equal node root_node then acc
        else
          let per_edge =
            List.map
              (fun (e : Mad.Mdesc.edge) ->
                step ~stats map db e (Smap.find e.from_at acc))
              (Mad.Mdesc.in_edges desc node)
          in
          let merged =
            match per_edge with
            | [] -> frontier ("f_" ^ node) []
            | [ f ] -> f
            | f :: rest ->
              List.fold_left
                (fun a b -> Rel_algebra.intersect ~stats a b)
                f rest
          in
          Smap.add node merged acc)
      init (Mad.Mdesc.topo_order desc)
  in
  let by_root = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace by_root r Smap.empty) roots;
  Smap.iter
    (fun node f ->
      List.iter
        (fun (root, m) ->
          let cur =
            Option.value ~default:Smap.empty (Hashtbl.find_opt by_root root)
          in
          let s =
            Option.value ~default:Aid.Set.empty (Smap.find_opt node cur)
          in
          Hashtbl.replace by_root root (Smap.add node (Aid.Set.add m s) cur))
        (pairs_of f))
    frontiers;
  List.map
    (fun r ->
      (r, Option.value ~default:Smap.empty (Hashtbl.find_opt by_root r)))
    roots

(** Derivation restricted to roots satisfying a predicate on the root
    relation — the relational counterpart of a root-attribute
    restriction, used by the pushdown ablation. *)
let derive_filtered ?(stats = Rel_algebra.stats ()) (map : Mapping.t) db desc
    ~root_pred =
  let root_node = Mad.Mdesc.root desc in
  let root_rel = Mapping.relation map root_node in
  let filtered = Rel_algebra.select ~stats root_pred root_rel in
  let roots =
    Relation.fold
      (fun acc t -> match t.(0) with Value.Int id -> id :: acc | _ -> acc)
      [] filtered
    |> List.sort_uniq Int.compare
  in
  let init =
    Smap.singleton root_node
      (frontier "f_root" (List.map (fun r -> (r, r)) roots))
  in
  let _frontiers =
    List.fold_left
      (fun acc node ->
        if String.equal node root_node then acc
        else
          let per_edge =
            List.map
              (fun (e : Mad.Mdesc.edge) ->
                step ~stats map db e (Smap.find e.from_at acc))
              (Mad.Mdesc.in_edges desc node)
          in
          let merged =
            match per_edge with
            | [] -> frontier ("f_" ^ node) []
            | [ f ] -> f
            | f :: rest ->
              List.fold_left
                (fun a b -> Rel_algebra.intersect ~stats a b)
                f rest
          in
          Smap.add node merged acc)
      init (Mad.Mdesc.topo_order desc)
  in
  roots

(** The fully joined wide relation over a tree structure: one column
    [k_<node>] per node; cardinality = number of root-to-leaf
    combinations (the flat answer's redundancy). *)
let flat_join ?(stats = Rel_algebra.stats ()) (map : Mapping.t) db desc =
  List.iter
    (fun node ->
      if List.length (Mad.Mdesc.in_edges desc node) > 1 then
        Err.failf
          "flat join requires a tree structure; node %s has several parents"
          node)
    (Mad.Mdesc.nodes desc);
  let root_node = Mad.Mdesc.root desc in
  let kcol n = "k_" ^ n in
  let start =
    Rel_algebra.project ~stats [ "id" ] (Mapping.relation map root_node)
    |> Rel_algebra.rename [ ("id", kcol root_node) ]
  in
  List.fold_left
    (fun wide node ->
      if String.equal node root_node then wide
      else
        match Mad.Mdesc.in_edges desc node with
        | [ e ] -> begin
          match Hashtbl.find_opt map.Mapping.inlined e.link with
          | Some fk ->
            let child = Mapping.relation map node in
            let joined =
              Rel_algebra.hash_join ~stats wide child ~lkey:(kcol e.from_at)
                ~rkey:fk
            in
            let keep =
              List.filter
                (fun a -> String.length a > 2 && String.sub a 0 2 = "k_")
                (Relation.attr_names joined)
              @ [ "id" ]
            in
            Rel_algebra.project ~stats keep joined
            |> Rel_algebra.rename [ ("id", kcol node) ]
          | None ->
            let aux = Mapping.relation map e.link in
            let lt = Database.link_type db e.link in
            let la = (Mapping.left_attr lt).Schema.Attr.name in
            let ra = (Mapping.right_attr lt).Schema.Attr.name in
            let pkey, ckey =
              match e.dir with `Fwd -> (la, ra) | `Bwd -> (ra, la)
            in
            let joined =
              Rel_algebra.hash_join ~stats wide aux ~lkey:(kcol e.from_at)
                ~rkey:pkey
            in
            let keep =
              List.filter
                (fun a -> String.length a > 2 && String.sub a 0 2 = "k_")
                (Relation.attr_names joined)
              @ [ ckey ]
            in
            Rel_algebra.project ~stats keep joined
            |> Rel_algebra.rename [ (ckey, kcol node) ]
        end
        | _ -> assert false)
    start (Mad.Mdesc.topo_order desc)
