(** The MAD-to-relational schema transformation the paper's ch. 2 calls
    "quite cumbersome": every atom type becomes a relation with a
    surrogate key [id]; every link type becomes an *auxiliary relation*
    over the two endpoint keys (the general mapping that n:m
    relationship types force on the relational model — "all n:m
    relationship types have to be modeled by some auxiliary
    relations").  Optionally, 1:n link types are inlined as a foreign
    key on the n side ([~inline_1n:true]), saving their auxiliary
    relations; n:m link types can never be inlined. *)

open Mad_store

type t = {
  rels : (string, Relation.t) Hashtbl.t;
  inlined : (string, string) Hashtbl.t;
      (** link type -> FK attribute on the n-side relation *)
}

let relation t name =
  match Hashtbl.find_opt t.rels name with
  | Some r -> r
  | None -> Err.failf "no relation %s in the transformed schema" name

let relation_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rels [] |> List.sort String.compare

(** Number of auxiliary relations (the paper's complaint measured). *)
let auxiliary_count db t =
  List.length
    (List.filter (Hashtbl.mem t.rels) (Database.link_type_names db))

let id_attr = Schema.Attr.v "id" Domain.Int

let left_attr lt = Schema.Attr.v (fst lt.Schema.Link_type.ends ^ "_id") Domain.Int
let right_attr lt =
  let base = snd lt.Schema.Link_type.ends ^ "_id" in
  if String.equal (fst lt.Schema.Link_type.ends) (snd lt.Schema.Link_type.ends)
  then Schema.Attr.v (base ^ "2") Domain.Int
  else Schema.Attr.v base Domain.Int

(** Is this a 1:n link type whose n side is the second end? *)
let inlinable lt =
  match lt.Schema.Link_type.card with
  | Some 1, None | Some 1, Some 1 -> `On_right
  | None, Some 1 -> `On_left
  | _ -> `No

let of_database ?(inline_1n = false) db =
  let t = { rels = Hashtbl.create 16; inlined = Hashtbl.create 4 } in
  (* entity relations *)
  List.iter
    (fun atname ->
      let at = Database.atom_type db atname in
      let r = Relation.create atname (id_attr :: at.attrs) in
      Hashtbl.replace t.rels atname r)
    (Database.atom_type_names db);
  (* decide inlining before populating *)
  let fk_of = Hashtbl.create 4 in
  if inline_1n then
    List.iter
      (fun ltname ->
        let lt = Database.link_type db ltname in
        match inlinable lt with
        | `On_right when not (Schema.Link_type.reflexive lt) ->
          Hashtbl.replace fk_of ltname `Right
        | `On_left when not (Schema.Link_type.reflexive lt) ->
          Hashtbl.replace fk_of ltname `Left
        | `On_right | `On_left | `No -> ())
      (Database.link_type_names db);
  (* extend inlined relations with FK attributes *)
  Hashtbl.iter
    (fun ltname side ->
      let lt = Database.link_type db ltname in
      let holder, fk =
        match side with
        | `Right -> (snd lt.ends, fst lt.ends ^ "_fk")
        | `Left -> (fst lt.ends, snd lt.ends ^ "_fk")
      in
      let r = relation t holder in
      let r' =
        Relation.create holder (r.Relation.attrs @ [ Schema.Attr.v fk Domain.Int ])
      in
      Hashtbl.replace t.rels holder r';
      Hashtbl.replace t.inlined ltname fk)
    fk_of;
  (* populate entity relations *)
  List.iter
    (fun atname ->
      let r = relation t atname in
      let fk_links =
        (* inlined link types whose FK lives on this relation *)
        Hashtbl.fold
          (fun ltname side acc ->
            let lt = Database.link_type db ltname in
            let holder =
              match side with `Right -> snd lt.ends | `Left -> fst lt.ends
            in
            if String.equal holder atname then (ltname, side) :: acc else acc)
          fk_of []
        |> List.sort compare
      in
      List.iter
        (fun (a : Atom.t) ->
          let fks =
            List.map
              (fun (ltname, side) ->
                let dir = match side with `Right -> `Bwd | `Left -> `Fwd in
                match
                  Aid.Set.choose_opt (Database.neighbors db ltname ~dir a.id)
                with
                | Some partner -> Value.Int partner
                | None -> Value.Int (-1) (* relational NULL stand-in *))
              fk_links
          in
          ignore
            (Relation.insert r
               (Array.of_list
                  ((Value.Int a.id :: Array.to_list a.values) @ fks))))
        (Database.atoms db atname))
    (Database.atom_type_names db);
  (* auxiliary relations for the remaining link types *)
  List.iter
    (fun ltname ->
      if not (Hashtbl.mem fk_of ltname) then begin
        let lt = Database.link_type db ltname in
        let r = Relation.create ltname [ left_attr lt; right_attr lt ] in
        List.iter
          (fun (l, rgt) ->
            ignore (Relation.insert r [| Value.Int l; Value.Int rgt |]))
          (Database.links db ltname);
        Hashtbl.replace t.rels ltname r
      end)
    (Database.link_type_names db);
  t
