(** The relational algebra baseline: σ π ρ × ∪ − with real join
    algorithms (hash, nested-loop, semi); [stats] counters expose the
    tuple work the experiments compare against MAD's link
    traversals. *)

open Mad_store

type stats = {
  mutable tuples_scanned : int;
  mutable tuples_emitted : int;
  mutable probes : int;
}

val stats : unit -> stats

val select :
  ?stats:stats -> ?name:string -> (Value.t array -> bool) -> Relation.t -> Relation.t

val select_eq :
  ?stats:stats -> ?name:string -> Relation.t -> string -> Value.t -> Relation.t

val project :
  ?stats:stats -> ?name:string -> string list -> Relation.t -> Relation.t

val rename : ?name:string -> (string * string) list -> Relation.t -> Relation.t

val product :
  ?stats:stats -> ?name:string -> Relation.t -> Relation.t -> Relation.t

val union :
  ?stats:stats -> ?name:string -> Relation.t -> Relation.t -> Relation.t

val diff :
  ?stats:stats -> ?name:string -> Relation.t -> Relation.t -> Relation.t

val intersect :
  ?stats:stats -> ?name:string -> Relation.t -> Relation.t -> Relation.t

val hash_join :
  ?stats:stats ->
  ?name:string ->
  Relation.t ->
  Relation.t ->
  lkey:string ->
  rkey:string ->
  Relation.t
(** Equi-join; builds on the smaller side. *)

val nl_join :
  ?stats:stats ->
  ?name:string ->
  (Value.t array -> Value.t array -> bool) ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** General theta join by nested loops. *)

val merge_join :
  ?stats:stats ->
  ?name:string ->
  Relation.t ->
  Relation.t ->
  lkey:string ->
  rkey:string ->
  Relation.t
(** Equi-join via sort-merge. *)

val semi_join :
  ?stats:stats ->
  ?name:string ->
  Relation.t ->
  Relation.t ->
  lkey:string ->
  rkey:string ->
  Relation.t
