(** The molecule algebra (Defs. 8 and 10, Theorems 2 and 3).

    Operators: molecule-type definition α, restriction Σ, projection Π,
    cartesian product X, union Ω, difference Δ, and the derived
    intersection Ψ(mt1,mt2) = Δ(mt1, Δ(mt1,mt2)).

    Every operator follows the three-stage scheme of Fig. 5:
    operation-specific actions produce a result set over the operand's
    types; {!Propagate.prop} materializes it in the enlarged database;
    the result is again a molecule type (closure, Theorem 3). *)

open Mad_store
module Smap = Map.Make (String)

let counter = ref 0

let gen_name prefix =
  incr counter;
  Printf.sprintf "%s_%d" prefix !counter

(* One span per operator application; input/output are molecule
   cardinalities, and the derivation [stats] deltas (atoms visited,
   links traversed) are attached so the cost of propagation exactness
   checks is attributed to the operator that triggered them. *)
let op_span obs stats op ~name ~in_count f =
  Mad_obs.Obs.timed obs ("molecule_algebra." ^ op)
    ~attrs:
      [ ("result", Mad_obs.Span.Str name); ("in", Mad_obs.Span.Int in_count) ]
  @@ fun sp ->
  let a0, l0 =
    match stats with
    | None -> (0, 0)
    | Some s -> (Derive.atoms_visited s, Derive.links_traversed s)
  in
  let (mt : Molecule_type.t) = f () in
  Mad_obs.Span.set sp "out" (Mad_obs.Span.Int (List.length mt.occ));
  (match stats with
  | None -> ()
  | Some s ->
    Mad_obs.Span.set sp "atoms_visited"
      (Mad_obs.Span.Int (Derive.atoms_visited s - a0));
    Mad_obs.Span.set sp "links_traversed"
      (Mad_obs.Span.Int (Derive.links_traversed s - l0)));
  mt

(* ------------------------------------------------------------------ *)
(* α — molecule-type definition (Def. 8)                                *)

let define ?(obs = Mad_obs.Obs.noop) ?stats db ~name desc =
  op_span obs stats "define" ~name ~in_count:0 @@ fun () ->
  Molecule_type.v ~name ~desc (Derive.m_dom ?stats db desc)

(** Convenience: build and validate the description, then define.
    [edges] are triples [(link, from_at, to_at)]. *)
let define' ?obs ?stats db ~name ~nodes ~edges () =
  define ?obs ?stats db ~name (Mdesc.v db ~nodes ~edges)

(* ------------------------------------------------------------------ *)
(* Qualification over molecule types                                    *)

let typecheck_qual db (mt : Molecule_type.t) pred =
  Qual.typecheck ~allowed:(Mdesc.nodes mt.desc) db pred;
  (* attribute visibility after molecule projection *)
  let module Sset = Set.Make (String) in
  let rec check_expr = function
    | Qual.Const _ | Qual.Count _ -> ()
    | Qual.Attr { node; attr } | Qual.Agg (_, node, attr) ->
      if not (Molecule_type.attr_visible mt node attr) then
        Err.failf "attribute %s.%s was projected away" node attr
    | Qual.Add (a, b) | Qual.Sub (a, b) | Qual.Mul (a, b) | Qual.Div (a, b) ->
      check_expr a;
      check_expr b
  in
  let rec check = function
    | Qual.True | Qual.False -> ()
    | Qual.Cmp (_, a, b) -> check_expr a; check_expr b
    | Qual.And (a, b) | Qual.Or (a, b) -> check a; check b
    | Qual.Not a -> check a
    | Qual.Exists (_, p) | Qual.Forall (_, p) -> check p
  in
  check pred

(** [qual(m, restr(md))] of Def. 10: does molecule [m] satisfy the
    qualification? *)
let molecule_satisfies db (mt : Molecule_type.t) (m : Molecule.t) pred =
  let component node = Molecule.component_list m node in
  let fetch node id attr =
    let at = Database.atom_type db node in
    Atom.value (Database.get_atom db ~atype:node id) at attr
  in
  Qual.eval_molecule ~component ~fetch ~root_node:(Mdesc.root mt.desc)
    ~root_atom:m.root pred

(* ------------------------------------------------------------------ *)
(* Σ — molecule-type restriction (Def. 10)                              *)

(* Evaluating the qualification only reads the database, and each
   molecule is judged independently — so the filter chunks across the
   kernel's domain pool (contiguous chunks keep the occurrence order
   deterministic).  Small occurrence sets stay sequential; pool
   hand-off would dominate. *)
let par_filter ?par pred_of occ =
  let n = List.length occ in
  if n < 32 then List.filter pred_of occ
  else begin
    let arr = Array.of_list occ in
    let keep = Array.make n false in
    Mad_kernel.Pool.run_chunks ?par n (fun lo hi ->
        for i = lo to hi - 1 do
          keep.(i) <- pred_of arr.(i)
        done);
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if keep.(i) then acc := arr.(i) :: !acc
    done;
    !acc
  end

let restrict ?(obs = Mad_obs.Obs.noop) ?stats ?par ?name db pred
    (mt : Molecule_type.t) =
  let name = Option.value name ~default:(gen_name (mt.name ^ "_sigma")) in
  op_span obs stats "restrict" ~name ~in_count:(List.length mt.occ)
  @@ fun () ->
  typecheck_qual db mt pred;
  let rsv = par_filter ?par (fun m -> molecule_satisfies db mt m pred) mt.occ in
  let materialized =
    Propagate.prop ?stats db ~name ~desc:mt.desc ~attr_proj:mt.attr_proj rsv
  in
  Molecule_type.v ~attr_proj:mt.attr_proj ~materialized ~name ~desc:mt.desc rsv

(* ------------------------------------------------------------------ *)
(* Π — molecule-type projection                                         *)

(** [keep] lists the retained nodes, each with [None] (all visible
    attributes) or [Some attrs].  The retained node set must induce a
    coherent single-rooted sub-DAG containing the root. *)
let project ?(obs = Mad_obs.Obs.noop) ?stats ?name db keep
    (mt : Molecule_type.t) =
  let name = Option.value name ~default:(gen_name (mt.name ^ "_pi")) in
  op_span obs stats "project" ~name ~in_count:(List.length mt.occ)
  @@ fun () ->
  let kept_nodes = List.map fst keep in
  let desc' = Mdesc.induced mt.desc kept_nodes in
  let attr_proj =
    List.fold_left
      (fun acc (node, attrs) ->
        match attrs with
        | None -> begin
          (* inherit the operand's visibility for this node *)
          match Smap.find_opt node mt.attr_proj with
          | None -> acc
          | Some prev -> Smap.add node prev acc
        end
        | Some attrs ->
          let at = Database.atom_type db node in
          List.iter
            (fun a ->
              if not (Schema.Atom_type.has_attr at a) then
                Err.failf "atom type %s has no attribute %s" node a;
              if not (Molecule_type.attr_visible mt node a) then
                Err.failf "attribute %s.%s was already projected away" node a)
            attrs;
          Smap.add node attrs acc)
      Smap.empty keep
  in
  let kept_edges = Mdesc.edges desc' in
  let rsv =
    List.map
      (fun (m : Molecule.t) ->
        let by_node =
          Smap.filter (fun node _ -> List.mem node kept_nodes) m.by_node
        in
        let links =
          Link.Set.filter
            (fun (l : Link.t) ->
              List.exists
                (fun (e : Mdesc.edge) -> String.equal e.link l.lt)
                kept_edges)
            m.links
        in
        Molecule.v ~root:m.root ~by_node ~links)
      mt.occ
  in
  let materialized = Propagate.prop ?stats db ~name ~desc:desc' ~attr_proj rsv in
  Molecule_type.v ~attr_proj ~materialized ~name ~desc:desc' rsv

(* ------------------------------------------------------------------ *)
(* Ω / Δ / Ψ — union, difference, intersection                          *)

let check_compatible op (a : Molecule_type.t) (b : Molecule_type.t) =
  if not (Molecule_type.compatible a b) then
    Err.failf "%s requires identically described molecule types (%s vs %s)" op
      a.name b.name

let union ?(obs = Mad_obs.Obs.noop) ?stats ?name db (mt1 : Molecule_type.t)
    (mt2 : Molecule_type.t) =
  let name =
    Option.value name ~default:(gen_name (mt1.name ^ "_omega"))
  in
  op_span obs stats "union" ~name
    ~in_count:(List.length mt1.occ + List.length mt2.occ)
  @@ fun () ->
  check_compatible "molecule-type union" mt1 mt2;
  let rsv =
    Molecule.Set.elements
      (Molecule.Set.union (Molecule_type.molecule_set mt1)
         (Molecule_type.molecule_set mt2))
  in
  let materialized =
    Propagate.prop ?stats db ~name ~desc:mt1.desc ~attr_proj:mt1.attr_proj rsv
  in
  Molecule_type.v ~attr_proj:mt1.attr_proj ~materialized ~name ~desc:mt1.desc
    rsv

let diff ?(obs = Mad_obs.Obs.noop) ?stats ?name db (mt1 : Molecule_type.t)
    (mt2 : Molecule_type.t) =
  let name =
    Option.value name ~default:(gen_name (mt1.name ^ "_delta"))
  in
  op_span obs stats "diff" ~name
    ~in_count:(List.length mt1.occ + List.length mt2.occ)
  @@ fun () ->
  check_compatible "molecule-type difference" mt1 mt2;
  let rsv =
    Molecule.Set.elements
      (Molecule.Set.diff (Molecule_type.molecule_set mt1)
         (Molecule_type.molecule_set mt2))
  in
  let materialized =
    Propagate.prop ?stats db ~name ~desc:mt1.desc ~attr_proj:mt1.attr_proj rsv
  in
  Molecule_type.v ~attr_proj:mt1.attr_proj ~materialized ~name ~desc:mt1.desc
    rsv

(** Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)) — the paper's worked example of
    operator composition under closure. *)
let intersect ?(obs = Mad_obs.Obs.noop) ?stats ?name db mt1 mt2 =
  let name =
    Option.value name ~default:(gen_name (mt1.Molecule_type.name ^ "_psi"))
  in
  op_span obs stats "intersect" ~name
    ~in_count:
      (List.length mt1.Molecule_type.occ + List.length mt2.Molecule_type.occ)
  @@ fun () -> diff ~obs ?stats ~name db mt1 (diff ~obs ?stats db mt1 mt2)

(* ------------------------------------------------------------------ *)
(* X — molecule-type cartesian product                                  *)

(** X pairs every molecule of [mt1] with every molecule of [mt2].  The
    two operands are first propagated onto fresh (disjoint) types; a
    synthetic pair root (atom type [name.pair], one atom per pair, with
    link types to both operand roots) keeps the combined structure a
    single-rooted DAG, so the result is an ordinary molecule type over
    the enlarged database. *)
let product ?(obs = Mad_obs.Obs.noop) ?stats ?name db (mt1 : Molecule_type.t)
    (mt2 : Molecule_type.t) =
  let name = Option.value name ~default:(gen_name (mt1.name ^ "_x")) in
  op_span obs stats "product" ~name
    ~in_count:(List.length mt1.occ + List.length mt2.occ)
  @@ fun () ->
  (* the synthetic pair root and its link types are enlarged-database
     scratch, like everything [Propagate.prop] builds: keep them out of
     any journal the database carries *)
  Database.unjournaled db @@ fun () ->
  let p1 =
    Propagate.prop ?stats db ~name:(name ^ ".1") ~desc:mt1.desc
      ~attr_proj:mt1.attr_proj mt1.occ
  in
  let p2 =
    Propagate.prop ?stats db ~name:(name ^ ".2") ~desc:mt2.desc
      ~attr_proj:mt2.attr_proj mt2.occ
  in
  let pair_type = Propagate.fresh_name db (name ^ ".pair") in
  ignore
    (Database.declare_atom_type db pair_type
       [ Schema.Attr.v "pairno" Domain.Int ]);
  let root1 = Mdesc.root p1.mdesc and root2 = Mdesc.root p2.mdesc in
  let left_lt = Propagate.fresh_name db (name ^ ".left") in
  let right_lt = Propagate.fresh_name db (name ^ ".right") in
  ignore (Database.declare_link_type db left_lt (pair_type, root1));
  ignore (Database.declare_link_type db right_lt (pair_type, root2));
  let k = ref 0 in
  List.iter
    (fun (m1 : Molecule.t) ->
      List.iter
        (fun (m2 : Molecule.t) ->
          incr k;
          let pair =
            Database.insert_atom db ~atype:pair_type [ Value.Int !k ]
          in
          Database.add_link db left_lt ~left:pair.id ~right:m1.root;
          Database.add_link db right_lt ~left:pair.id ~right:m2.root)
        p2.mocc)
    p1.mocc;
  let nodes = (pair_type :: Mdesc.nodes p1.mdesc) @ Mdesc.nodes p2.mdesc in
  let edges =
    [ (left_lt, pair_type, root1); (right_lt, pair_type, root2) ]
    @ List.map
        (fun (e : Mdesc.edge) -> (e.link, e.from_at, e.to_at))
        (Mdesc.edges p1.mdesc)
    @ List.map
        (fun (e : Mdesc.edge) -> (e.link, e.from_at, e.to_at))
        (Mdesc.edges p2.mdesc)
  in
  let desc = Mdesc.v db ~nodes ~edges in
  define ?stats db ~name desc
