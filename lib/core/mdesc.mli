(** Molecule-type descriptions (Def. 5): a directed, acyclic, coherent,
    single-rooted type graph over atom types and link types, validated
    by the [md_graph] predicate.

    Def. 5 makes the node collection a set, so each atom type occurs at
    most once per structure; consequently plain descriptions cannot use
    reflexive link types (see [Mad_recursive] for the recursive
    extension). *)

open Mad_store

type edge = {
  link : string;
  from_at : string;
  to_at : string;
  dir : [ `Fwd | `Bwd ];
      (** traversal orientation w.r.t. the link type's ends: [`Fwd]
          when [from_at] plays the first-end (left) role *)
}

type t = { nodes : string list; edges : edge list; root : string }
(** Build values with {!v} (validated); the representation is exposed
    for the propagation machinery, which re-orients renamed edges. *)

val nodes : t -> string list
val edges : t -> edge list
val root : t -> string
val in_edges : t -> string -> edge list
val out_edges : t -> string -> edge list

val pp_edge : Format.formatter -> edge -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val md_graph : nodes:string list -> edges:edge list -> (string, string) result
(** The pure graph conditions of [md_graph]; [Ok root] on success. *)

val v :
  Database.t ->
  nodes:string list ->
  edges:(string * string * string) list ->
  t
(** Build and validate against a database; edges are
    [(link, from, to)] triples, orientations derived from the link
    types' ends.  Fails with a precise diagnostic otherwise. *)

val topo_order : t -> string list
(** Nodes in topological order, root first; deterministic. *)

val induced : t -> string list -> t
(** The sub-description induced by a node subset (molecule projection
    Π); fails unless it still satisfies [md_graph] with the same
    root. *)

val rename : t -> f_node:(string -> string) -> f_link:(edge -> string) -> t
(** Rename nodes and edge link types (propagation, Def. 9). *)

val equal : t -> t -> bool
