(** Manipulation facilities on molecules (the paper's "powerful
    manipulation facilities"): insertion with links, shared-subobject-
    safe deletion, attribute modification. *)

open Mad_store

val insert_atom_linked :
  Database.t ->
  atype:string ->
  Value.t list ->
  links:(string * Aid.t) list ->
  Atom.t
(** Insert a fresh atom and link it to existing partners (role inferred
    from the atom's type). *)

type delete_mode =
  [ `Shared_safe  (** delete atoms only when no surviving molecule holds them *)
  | `Unlink_only  (** keep components; remove the roots and the used links *)
  ]

type delete_report = {
  molecules_deleted : int;
  atoms_deleted : int;
  atoms_kept_shared : int;  (** spared by the shared-subobject rule *)
}

val delete_molecules :
  ?mode:delete_mode ->
  Database.t ->
  Molecule_type.t ->
  Molecule.t list ->
  delete_report
(** Delete the given molecules (a subset of the type's occurrence).
    With [`Shared_safe] an atom dies only when every molecule of the
    occurrence containing it is itself deleted. *)

val modify_attribute :
  Database.t ->
  node:string ->
  attr:string ->
  Value.t ->
  Molecule.t list ->
  int
(** Set one attribute on every atom of [node] inside the molecules
    (domain-checked); returns the number of atoms modified. *)
