(** The atom-type algebra (Def. 4, Theorem 1): projection π,
    restriction σ, cartesian product ×, union ω, difference δ, each
    producing a new atom type registered in the (enlarged) database
    with inherited link types — every link type incident to an operand
    is re-created on the result and re-pointed through the operation's
    provenance, which is what makes results reusable (the closure of
    Theorem 1).

    Occurrences follow the paper's set semantics: π, ω and δ
    de-duplicate by attribute values. *)

open Mad_store

type t = {
  at : Schema.Atom_type.t;  (** the result atom type (registered) *)
  inherited : (string * Schema.Link_type.t) list;
      (** (original link-type name, inherited link type) *)
  provenance : Aid.t list Aid.Map.t;
      (** result atom -> source atom(s) it was built from *)
}

val result_ids : t -> Aid.Set.t

(** Each operator takes an optional observability context [obs]
    (default: the shared no-op) and emits one span per application,
    named [atom_algebra.<op>], carrying the result-type name and
    input/output atom cardinalities. *)

val project :
  ?obs:Mad_obs.Obs.t ->
  Database.t ->
  name:string ->
  attrs:string list ->
  string ->
  t
(** π — keeps (and orders) the named attributes; de-duplicates. *)

val restrict :
  ?obs:Mad_obs.Obs.t -> Database.t -> name:string -> pred:Qual.t -> string -> t
(** σ — the predicate may reference only the operand type. *)

val product :
  ?obs:Mad_obs.Obs.t -> Database.t -> name:string -> string -> string -> t
(** × — concatenates descriptions and values; colliding attributes of
    the second operand are qualified [<operand>_<attr>]; links of both
    operands are inherited. *)

val union :
  ?obs:Mad_obs.Obs.t -> Database.t -> name:string -> string -> string -> t
(** ω — requires identically described operands. *)

val diff :
  ?obs:Mad_obs.Obs.t -> Database.t -> name:string -> string -> string -> t
(** δ — atoms of the first operand whose values do not occur in the
    second. *)
