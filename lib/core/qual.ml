(** Qualification formulas — the [qual-formulas(ad)] of Def. 4 and the
    [restr(md)] of Def. 10.

    A formula is a boolean combination of comparisons over attribute
    references.  An attribute reference names a *node* (an atom-type
    name: the operand type for atom-type restriction, a structure node
    for molecule restriction) and one of its attributes.

    Molecule semantics: the root node binds its single root atom;
    a comparison whose references are not bound by an enclosing
    [Exists]/[Forall] quantifier is evaluated with *implicit existential
    quantification* over the referenced nodes' component-atom sets —
    the natural reading of [WHERE point.name = 'pn'] style predicates
    and the standard choice for complex-object restriction. *)

open Mad_store

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type agg = Sum | Min | Max | Avg

type expr =
  | Const of Value.t
  | Attr of { node : string; attr : string }
  | Count of string  (** number of component atoms at a node *)
  | Agg of agg * string * string
      (** [Agg (Sum, node, attr)]: aggregate over the node's component
          atoms; MIN/MAX/AVG of an empty component are undefined (the
          enclosing comparison is false), SUM of it is 0 *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type t =
  | True
  | False
  | Cmp of cmp * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t
  | Exists of string * t  (** [Exists (node, p)]: some atom of [node] satisfies [p] *)
  | Forall of string * t

(* ------------------------------------------------------------------ *)
(* Constructors (a small embedded DSL used by examples and tests)      *)

let attr node attr = Attr { node; attr }
let int i = Const (Value.Int i)
let str s = Const (Value.String s)
let flt f = Const (Value.Float f)
let ( =% ) a b = Cmp (Eq, a, b)
let ( <>% ) a b = Cmp (Ne, a, b)
let ( <% ) a b = Cmp (Lt, a, b)
let ( <=% ) a b = Cmp (Le, a, b)
let ( >% ) a b = Cmp (Gt, a, b)
let ( >=% ) a b = Cmp (Ge, a, b)
let ( &&% ) a b = And (a, b)
let ( ||% ) a b = Or (a, b)

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                      *)

let pp_cmp ppf c =
  Fmt.string ppf
    (match c with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let pp_agg ppf a =
  Fmt.string ppf
    (match a with Sum -> "SUM" | Min -> "MIN" | Max -> "MAX" | Avg -> "AVG")

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Attr { node; attr } -> Fmt.pf ppf "%s.%s" node attr
  | Count n -> Fmt.pf ppf "COUNT(%s)" n
  | Agg (a, n, at) -> Fmt.pf ppf "%a(%s.%s)" pp_agg a n at
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_expr a pp_expr b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp_expr a pp_expr b

let rec pp ppf = function
  | True -> Fmt.string ppf "TRUE"
  | False -> Fmt.string ppf "FALSE"
  | Cmp (c, a, b) -> Fmt.pf ppf "%a %a %a" pp_expr a pp_cmp c pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp a pp b
  | Not a -> Fmt.pf ppf "(NOT %a)" pp a
  | Exists (n, p) -> Fmt.pf ppf "EXISTS %s (%a)" n pp p
  | Forall (n, p) -> Fmt.pf ppf "FORALL %s (%a)" n pp p

let to_string p = Format.asprintf "%a" pp p

(* ------------------------------------------------------------------ *)
(* Normalization                                                        *)

(* Every literal collapses to the same placeholder, so two formulas
   differing only in constants render (and hash) identically — the
   statement-fingerprinting basis. *)
let placeholder = Const (Value.String "?")

let rec strip_consts_expr = function
  | Const _ -> placeholder
  | (Attr _ | Count _ | Agg _) as e -> e
  | Add (a, b) -> Add (strip_consts_expr a, strip_consts_expr b)
  | Sub (a, b) -> Sub (strip_consts_expr a, strip_consts_expr b)
  | Mul (a, b) -> Mul (strip_consts_expr a, strip_consts_expr b)
  | Div (a, b) -> Div (strip_consts_expr a, strip_consts_expr b)

let rec strip_consts = function
  | (True | False) as p -> p
  | Cmp (c, a, b) -> Cmp (c, strip_consts_expr a, strip_consts_expr b)
  | And (a, b) -> And (strip_consts a, strip_consts b)
  | Or (a, b) -> Or (strip_consts a, strip_consts b)
  | Not a -> Not (strip_consts a)
  | Exists (n, p) -> Exists (n, strip_consts p)
  | Forall (n, p) -> Forall (n, strip_consts p)

(* ------------------------------------------------------------------ *)
(* Static analysis                                                      *)

module Sset = Set.Make (String)

let rec expr_nodes = function
  | Const _ -> Sset.empty
  | Attr { node; _ } -> Sset.singleton node
  | Count n -> Sset.singleton n
  | Agg (_, n, _) -> Sset.singleton n
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
    Sset.union (expr_nodes a) (expr_nodes b)

(* Node references that act as per-atom bindings (plain attribute
   references).  COUNT and the aggregates consume a whole component and
   must not trigger implicit existential quantification. *)
let rec expr_binding_nodes = function
  | Const _ | Count _ | Agg _ -> Sset.empty
  | Attr { node; _ } -> Sset.singleton node
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
    Sset.union (expr_binding_nodes a) (expr_binding_nodes b)

(** All node names referenced anywhere in the formula. *)
let rec nodes = function
  | True | False -> Sset.empty
  | Cmp (_, a, b) -> Sset.union (expr_nodes a) (expr_nodes b)
  | And (a, b) | Or (a, b) -> Sset.union (nodes a) (nodes b)
  | Not a -> nodes a
  | Exists (n, p) | Forall (n, p) -> Sset.add n (nodes p)

(** Type-check the formula against a database: every referenced node
    must be a known atom type and every attribute must exist on it.
    [allowed] restricts the usable node set (e.g. to a structure's
    nodes). *)
let typecheck ?allowed db p =
  let check_node n =
    (match allowed with
     | Some ns when not (List.mem n ns) ->
       Err.failf "qualification references node %s outside the structure" n
     | Some _ | None -> ());
    ignore (Database.atom_type db n)
  in
  let rec ck_expr = function
    | Const _ -> ()
    | Attr { node; attr } ->
      check_node node;
      let at = Database.atom_type db node in
      if not (Schema.Atom_type.has_attr at attr) then
        Err.failf "atom type %s has no attribute %s" node attr
    | Count n -> check_node n
    | Agg (_, node, attr) ->
      check_node node;
      let at = Database.atom_type db node in
      if not (Schema.Atom_type.has_attr at attr) then
        Err.failf "atom type %s has no attribute %s" node attr
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> ck_expr a; ck_expr b
  in
  let rec ck = function
    | True | False -> ()
    | Cmp (_, a, b) -> ck_expr a; ck_expr b
    | And (a, b) | Or (a, b) -> ck a; ck b
    | Not a -> ck a
    | Exists (n, p) | Forall (n, p) -> check_node n; ck p
  in
  ck p

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)

let cmp_holds c a b =
  let n = Value.compare_sem a b in
  match c with
  | Eq -> n = 0
  | Ne -> n <> 0
  | Lt -> n < 0
  | Le -> n <= 0
  | Gt -> n > 0
  | Ge -> n >= 0

let arith op a b =
  match a, b with
  | Value.Int x, Value.Int y -> begin
    match op with
    | `Add -> Value.Int (x + y)
    | `Sub -> Value.Int (x - y)
    | `Mul -> Value.Int (x * y)
    | `Div -> if y = 0 then Err.failf "division by zero" else Value.Int (x / y)
  end
  | _ -> begin
    match Value.as_float a, Value.as_float b with
    | Some x, Some y -> begin
      match op with
      | `Add -> Value.Float (x +. y)
      | `Sub -> Value.Float (x -. y)
      | `Mul -> Value.Float (x *. y)
      | `Div ->
        if y = 0. then Err.failf "division by zero" else Value.Float (x /. y)
    end
    | _ ->
      Err.failf "arithmetic on non-numeric values %s and %s"
        (Value.to_string a) (Value.to_string b)
  end

let aggregate agg values =
  match values, agg with
  | [], Sum -> Some (Value.Int 0)
  | [], (Min | Max | Avg) -> None
  | _ ->
    let all_int =
      List.for_all (function Value.Int _ -> true | _ -> false) values
    in
    let nums =
      List.map
        (fun v ->
          match Value.as_float v with
          | Some f -> f
          | None ->
            Err.failf "aggregate over non-numeric value %s" (Value.to_string v))
        values
    in
    let r =
      match agg with
      | Sum -> List.fold_left ( +. ) 0. nums
      | Min -> List.fold_left Float.min Float.infinity nums
      | Max -> List.fold_left Float.max Float.neg_infinity nums
      | Avg -> List.fold_left ( +. ) 0. nums /. float_of_int (List.length nums)
    in
    if all_int && agg <> Avg then Some (Value.Int (int_of_float r))
    else Some (Value.Float r)

(** Evaluation against a single atom (atom-type restriction, Def. 4).
    The only legal node reference is the operand atom type itself. *)
let eval_atom (at : Schema.Atom_type.t) (a : Atom.t) p =
  let rec ev_expr = function
    | Const v -> v
    | Attr { node; attr } ->
      if not (String.equal node at.name) then
        Err.failf
          "atom-type restriction over %s cannot reference node %s" at.name node;
      Atom.value a at attr
    | Count n ->
      if String.equal n at.name then Value.Int 1
      else Err.failf "atom-type restriction over %s cannot count node %s" at.name n
    | Agg (agg, node, attr) ->
      if not (String.equal node at.name) then
        Err.failf "atom-type restriction over %s cannot aggregate node %s"
          at.name node;
      (match aggregate agg [ Atom.value a at attr ] with
       | Some v -> v
       | None -> assert false)
    | Add (x, y) -> arith `Add (ev_expr x) (ev_expr y)
    | Sub (x, y) -> arith `Sub (ev_expr x) (ev_expr y)
    | Mul (x, y) -> arith `Mul (ev_expr x) (ev_expr y)
    | Div (x, y) -> arith `Div (ev_expr x) (ev_expr y)
  in
  let rec ev = function
    | True -> true
    | False -> false
    | Cmp (c, x, y) -> cmp_holds c (ev_expr x) (ev_expr y)
    | And (x, y) -> ev x && ev y
    | Or (x, y) -> ev x || ev y
    | Not x -> not (ev x)
    | Exists (n, q) | Forall (n, q) ->
      if String.equal n at.name then ev q
      else Err.failf "atom-type restriction over %s cannot quantify %s" at.name n
  in
  ev p

(** Molecule evaluation (Def. 10's [qual(m, restr(md))]).

    [component] yields the atoms of a node within the molecule;
    [fetch] resolves an atom id of a node to the atom value.  Bindings
    map node names to a concrete atom; the root node is pre-bound.
    A comparison with unbound node references is closed existentially
    over those nodes. *)
let eval_molecule ~component ~fetch ~root_node ~root_atom p =
  let module Smap = Map.Make (String) in
  let rec ev_expr env = function
    | Const v -> Some v
    | Attr { node; attr } -> begin
      match Smap.find_opt node env with
      | Some atom -> Some (fetch node atom attr)
      | None -> None
    end
    | Count n -> Some (Value.Int (List.length (component n)))
    | Agg (agg, node, attr) ->
      aggregate agg (List.map (fun a -> fetch node a attr) (component node))
    | Add (x, y) -> binop env `Add x y
    | Sub (x, y) -> binop env `Sub x y
    | Mul (x, y) -> binop env `Mul x y
    | Div (x, y) -> binop env `Div x y
  and binop env op x y =
    match ev_expr env x, ev_expr env y with
    | Some a, Some b -> Some (arith op a b)
    | _ -> None
  in
  let rec ev env = function
    | True -> true
    | False -> false
    | Cmp (c, x, y) as cmp -> begin
      (* close unbound per-atom references existentially, one at a time *)
      ignore cmp;
      let free =
        Sset.diff
          (Sset.union (expr_binding_nodes x) (expr_binding_nodes y))
          (Smap.fold (fun k _ s -> Sset.add k s) env Sset.empty)
      in
      match Sset.choose_opt free with
      | Some n ->
        List.exists (fun a -> ev (Smap.add n a env) cmp) (component n)
      | None -> begin
        match ev_expr env x, ev_expr env y with
        | Some a, Some b -> cmp_holds c a b
        | _ -> false
      end
    end
    | And (x, y) -> ev env x && ev env y
    | Or (x, y) -> ev env x || ev env y
    | Not x -> not (ev env x)
    | Exists (n, q) -> List.exists (fun a -> ev (Smap.add n a env) q) (component n)
    | Forall (n, q) -> List.for_all (fun a -> ev (Smap.add n a env) q) (component n)
  in
  let env0 = Smap.singleton root_node root_atom in
  ev env0 p
