(** Qualification formulas — [qual-formulas(ad)] of Def. 4 and
    [restr(md)] of Def. 10.

    Molecule semantics: the root node binds its single root atom; a
    comparison whose plain attribute references are not bound by an
    enclosing quantifier is closed with implicit existential
    quantification over the referenced nodes' component atoms.  COUNT
    and the aggregates consume a whole component and never trigger
    implicit binding. *)

open Mad_store

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type agg = Sum | Min | Max | Avg

type expr =
  | Const of Value.t
  | Attr of { node : string; attr : string }
  | Count of string  (** number of component atoms at a node *)
  | Agg of agg * string * string
      (** aggregate over a node's component atoms; MIN/MAX/AVG of an
          empty component are undefined (the enclosing comparison is
          false), SUM of it is 0 *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type t =
  | True
  | False
  | Cmp of cmp * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t
  | Exists of string * t
  | Forall of string * t

(** {1 Constructors (embedded DSL)} *)

val attr : string -> string -> expr
val int : int -> expr
val str : string -> expr
val flt : float -> expr
val ( =% ) : expr -> expr -> t
val ( <>% ) : expr -> expr -> t
val ( <% ) : expr -> expr -> t
val ( <=% ) : expr -> expr -> t
val ( >% ) : expr -> expr -> t
val ( >=% ) : expr -> expr -> t
val ( &&% ) : t -> t -> t
val ( ||% ) : t -> t -> t

(** {1 Printing} *)

val pp_cmp : Format.formatter -> cmp -> unit
val pp_agg : Format.formatter -> agg -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val strip_consts_expr : expr -> expr
val strip_consts : t -> t
(** Replace every literal with the placeholder constant ['?'], so two
    formulas differing only in constants render identically — the
    basis of statement fingerprinting and lifted plan identity. *)

(** {1 Static analysis} *)

module Sset :
  Set.S with type elt = string and type t = Set.Make(String).t

val expr_nodes : expr -> Sset.t
val nodes : t -> Sset.t
(** All node names referenced anywhere in the formula. *)

val typecheck : ?allowed:string list -> Database.t -> t -> unit
(** Every referenced node must be a known atom type (within [allowed]
    when given) and every attribute must exist on it. *)

(** {1 Evaluation} *)

val cmp_holds : cmp -> Value.t -> Value.t -> bool
val aggregate : agg -> Value.t list -> Value.t option

val eval_atom : Schema.Atom_type.t -> Atom.t -> t -> bool
(** Single-atom context (atom-type restriction); the only legal node
    reference is the operand atom type itself. *)

val eval_molecule :
  component:(string -> 'atom list) ->
  fetch:(string -> 'atom -> string -> Value.t) ->
  root_node:string ->
  root_atom:'atom ->
  t ->
  bool
(** Molecule context ([qual(m, restr(md))] of Def. 10): [component]
    yields a node's atoms, [fetch] an atom's attribute value. *)
