(** The atom-type algebra (Def. 4, Theorem 1).

    Five operations — projection π, restriction σ, cartesian product ×,
    union ω, difference δ — each consuming one or two atom types of a
    database and producing a *new atom type registered in the same
    (thereby enlarged) database*, together with *inherited link types*:
    every link type incident to an operand is re-created on the result
    atom type, its occurrence re-pointed at the result atoms via the
    provenance of the operation.  This inheritance is what makes result
    atom types reusable by subsequent (in particular molecule)
    operations, and it is the substance of Theorem 1's closure claim.

    Occurrences follow the paper's set semantics (an atom-type
    occurrence is a subset of the description's domain): π, ω and δ
    de-duplicate result atoms by attribute values. *)

open Mad_store

module Vmap = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

type t = {
  at : Schema.Atom_type.t;  (** the result atom type (registered in the db) *)
  inherited : (string * Schema.Link_type.t) list;
      (** (original link-type name, inherited link type) *)
  provenance : Aid.t list Aid.Map.t;
      (** result atom id -> source atom id(s) it was built from *)
}

let result_ids r =
  Aid.Map.fold (fun id _ s -> Aid.Set.add id s) r.provenance Aid.Set.empty

(* ------------------------------------------------------------------ *)
(* Link-type inheritance                                                *)

(* Reverse the provenance: source atom id -> result atom ids. *)
let reverse_provenance provenance =
  Aid.Map.fold
    (fun res srcs acc ->
      List.fold_left
        (fun acc src ->
          let cur = Option.value ~default:[] (Aid.Map.find_opt src acc) in
          Aid.Map.add src (res :: cur) acc)
        acc srcs)
    provenance Aid.Map.empty

(** Inherit every link type incident to [operands] (a list of source
    atom-type names, one entry per operand side) onto the result type
    [res_name].  For each inherited link type, the operand end is
    replaced by the result type and each link is re-pointed through the
    provenance.  Cardinality restrictions are dropped on inherited link
    types: a result atom may legitimately aggregate several sources. *)
let inherit_links db ~res_name ~operands ~provenance =
  let rev = reverse_provenance provenance in
  let results_of src = Option.value ~default:[] (Aid.Map.find_opt src rev) in
  let mk_name base side =
    let candidate =
      if List.length operands > 1 then
        Printf.sprintf "%s~%s.%d" base res_name side
      else Printf.sprintf "%s~%s" base res_name
    in
    candidate
  in
  (* snapshot the incident link types of every operand before creating
     any inherited ones (they would otherwise feed back into later
     operands' incident lists) *)
  let plans =
    List.mapi
      (fun side src_at -> (side, src_at, Database.incident_link_types db src_at))
      operands
  in
  List.concat
    (List.map
       (fun (side, src_at, incident) ->
         List.map
           (fun (lt : Schema.Link_type.t) ->
             let e1, e2 = lt.ends in
             let new_name = mk_name lt.name (side + 1) in
             let reflexive = Schema.Link_type.reflexive lt in
             let ends' =
               if reflexive then (res_name, res_name)
               else if String.equal e1 src_at then (res_name, e2)
               else (e1, res_name)
             in
             let lt' = Schema.Link_type.v new_name ends' in
             let lt' = Database.define_link_type db lt' in
             List.iter
               (fun (l, r) ->
                 if reflexive then
                   List.iter
                     (fun l' ->
                       List.iter
                         (fun r' ->
                           Database.add_link db new_name ~left:l' ~right:r')
                         (results_of r))
                     (results_of l)
                 else if String.equal e1 src_at then
                   List.iter
                     (fun l' -> Database.add_link db new_name ~left:l' ~right:r)
                     (results_of l)
                 else
                   List.iter
                     (fun r' -> Database.add_link db new_name ~left:l ~right:r')
                     (results_of r))
               (Database.links db lt.name);
             (lt.name, lt'))
           incident)
       plans)

(* ------------------------------------------------------------------ *)
(* The five operations                                                  *)

(* One span per operator application, with input/output cardinalities
   as attributes, plus an op.latency_us histogram record — the
   operator-level accounting the observability layer is built around. *)
(* every operator materializes its result type in the enlarged
   database — scratch state rebuilt on demand, kept out of any journal
   (write-ahead log) the database carries *)
let op_span obs db op ~name ~in_count f =
  Mad_obs.Obs.timed obs ("atom_algebra." ^ op)
    ~attrs:
      [ ("result", Mad_obs.Span.Str name); ("in", Mad_obs.Span.Int in_count) ]
  @@ fun sp ->
  let r = Database.unjournaled db f in
  Mad_obs.Span.set sp "out" (Mad_obs.Span.Int (Aid.Map.cardinal r.provenance));
  r

(** π — atom-type projection. [attrs] selects (and orders) the kept
    attribute descriptions; result atoms are de-duplicated by their
    projected values, provenance collects every source atom that
    projected onto them. *)
let project ?(obs = Mad_obs.Obs.noop) db ~name ~attrs src =
  op_span obs db "project" ~name ~in_count:(List.length (Database.atoms db src))
  @@ fun () ->
  let at = Database.atom_type db src in
  let kept =
    List.map
      (fun a ->
        (a, Schema.Atom_type.attr_index at a))
      attrs
  in
  if kept = [] then Err.failf "projection of %s onto no attributes" src;
  let desc =
    List.map (fun (a, i) -> ignore a; List.nth at.attrs i) kept
  in
  let res_at = Database.declare_atom_type db name desc in
  let groups =
    List.fold_left
      (fun acc (a : Atom.t) ->
        let tuple = List.map (fun (_, i) -> a.values.(i)) kept in
        let cur = Option.value ~default:[] (Vmap.find_opt tuple acc) in
        Vmap.add tuple (a.id :: cur) acc)
      Vmap.empty (Database.atoms db src)
  in
  let provenance =
    Vmap.fold
      (fun tuple srcs acc ->
        let atom = Database.insert_atom db ~atype:name tuple in
        Aid.Map.add atom.id (List.rev srcs) acc)
      groups Aid.Map.empty
  in
  let inherited = inherit_links db ~res_name:name ~operands:[ src ] ~provenance in
  { at = res_at; inherited; provenance }

(** σ — atom-type restriction by a qualification formula. *)
let restrict ?(obs = Mad_obs.Obs.noop) db ~name ~pred src =
  op_span obs db "restrict" ~name ~in_count:(List.length (Database.atoms db src))
  @@ fun () ->
  let at = Database.atom_type db src in
  Qual.typecheck ~allowed:[ src ] db pred;
  let res_at = Database.declare_atom_type db name at.attrs in
  let provenance =
    List.fold_left
      (fun acc (a : Atom.t) ->
        if Qual.eval_atom at a pred then begin
          let atom =
            Database.insert_atom db ~atype:name (Array.to_list a.values)
          in
          Aid.Map.add atom.id [ a.id ] acc
        end
        else acc)
      Aid.Map.empty (Database.atoms db src)
  in
  let inherited = inherit_links db ~res_name:name ~operands:[ src ] ~provenance in
  { at = res_at; inherited; provenance }

(** × — cartesian product; attribute descriptions are concatenated,
    result atoms concatenate the operand values ('&'), links of both
    operands are inherited.  Def. 4 requires the descriptions pairwise
    disjoint; attributes of the second operand that would collide are
    qualified as [<operand>_<attr>] to restore disjointness (the
    relational rename ρ folded into ×). *)
let product ?(obs = Mad_obs.Obs.noop) db ~name src1 src2 =
  op_span obs db "product" ~name
    ~in_count:
      (List.length (Database.atoms db src1)
      + List.length (Database.atoms db src2))
  @@ fun () ->
  let at1 = Database.atom_type db src1 and at2 = Database.atom_type db src2 in
  let taken =
    ref (List.map (fun (a : Schema.Attr.t) -> a.name) at1.attrs)
  in
  let attrs2 =
    List.map
      (fun (a : Schema.Attr.t) ->
        let rec fresh candidate =
          if List.mem candidate !taken then fresh (src2 ^ "_" ^ candidate)
          else candidate
        in
        let name' = fresh a.name in
        taken := name' :: !taken;
        { a with Schema.Attr.name = name' })
      at2.attrs
  in
  let res_at = Database.declare_atom_type db name (at1.attrs @ attrs2) in
  let provenance =
    List.fold_left
      (fun acc (a1 : Atom.t) ->
        List.fold_left
          (fun acc (a2 : Atom.t) ->
            let values = Array.to_list a1.values @ Array.to_list a2.values in
            let atom = Database.insert_atom db ~atype:name values in
            Aid.Map.add atom.id [ a1.id; a2.id ] acc)
          acc (Database.atoms db src2))
      Aid.Map.empty (Database.atoms db src1)
  in
  let inherited =
    inherit_links db ~res_name:name ~operands:[ src1; src2 ] ~provenance
  in
  { at = res_at; inherited; provenance }

let check_same_description op at1 at2 =
  if not (Schema.Atom_type.same_description at1 at2) then
    Err.failf "%s requires identically described operands (%s vs %s)" op
      at1.Schema.Atom_type.name at2.Schema.Atom_type.name

(** ω — atom-type union (identical descriptions required); result
    de-duplicated by values. *)
let union ?(obs = Mad_obs.Obs.noop) db ~name src1 src2 =
  op_span obs db "union" ~name
    ~in_count:
      (List.length (Database.atoms db src1)
      + List.length (Database.atoms db src2))
  @@ fun () ->
  let at1 = Database.atom_type db src1 and at2 = Database.atom_type db src2 in
  check_same_description "union" at1 at2;
  let res_at = Database.declare_atom_type db name at1.attrs in
  let groups =
    List.fold_left
      (fun acc (a : Atom.t) ->
        let tuple = Array.to_list a.values in
        let cur = Option.value ~default:[] (Vmap.find_opt tuple acc) in
        Vmap.add tuple (a.id :: cur) acc)
      Vmap.empty
      (Database.atoms db src1 @ Database.atoms db src2)
  in
  let provenance =
    Vmap.fold
      (fun tuple srcs acc ->
        let atom = Database.insert_atom db ~atype:name tuple in
        Aid.Map.add atom.id (List.rev srcs) acc)
      groups Aid.Map.empty
  in
  let inherited =
    inherit_links db ~res_name:name ~operands:[ src1; src2 ] ~provenance
  in
  { at = res_at; inherited; provenance }

(** δ — atom-type difference (identical descriptions required):
    atoms of the first operand whose values do not occur in the second. *)
let diff ?(obs = Mad_obs.Obs.noop) db ~name src1 src2 =
  op_span obs db "diff" ~name
    ~in_count:
      (List.length (Database.atoms db src1)
      + List.length (Database.atoms db src2))
  @@ fun () ->
  let at1 = Database.atom_type db src1 and at2 = Database.atom_type db src2 in
  check_same_description "difference" at1 at2;
  let res_at = Database.declare_atom_type db name at1.attrs in
  let right =
    List.fold_left
      (fun acc (a : Atom.t) -> Vmap.add (Array.to_list a.values) () acc)
      Vmap.empty (Database.atoms db src2)
  in
  let groups =
    List.fold_left
      (fun acc (a : Atom.t) ->
        let tuple = Array.to_list a.values in
        if Vmap.mem tuple right then acc
        else
          let cur = Option.value ~default:[] (Vmap.find_opt tuple acc) in
          Vmap.add tuple (a.id :: cur) acc)
      Vmap.empty (Database.atoms db src1)
  in
  let provenance =
    Vmap.fold
      (fun tuple srcs acc ->
        let atom = Database.insert_atom db ~atype:name tuple in
        Aid.Map.add atom.id (List.rev srcs) acc)
      groups Aid.Map.empty
  in
  let inherited = inherit_links db ~res_name:name ~operands:[ src1 ] ~provenance in
  { at = res_at; inherited; provenance }
