(** Rendering of molecules in the hierarchical style of Fig. 2's lower
    part, plus shared-subobject reporting. *)

open Mad_store

val atom_label : Database.t -> Molecule_type.t -> string -> Aid.t -> string

val pp_molecule :
  Database.t -> Molecule_type.t -> Format.formatter -> Molecule.t -> unit

val pp_molecule_type : Database.t -> Format.formatter -> Molecule_type.t -> unit

val shared_subobjects : Molecule_type.t -> (Aid.t * Aid.t list) list
(** Atoms belonging to more than one molecule, with the sharing roots. *)

val pp_shared : Database.t -> Format.formatter -> Molecule_type.t -> unit

val duplication_factor : Molecule_type.t -> float
(** Atom slots across molecules / distinct atoms: the cost of a
    representation without shared subobjects. *)
