(** Machine checks of the closure theorems.

    Theorem 1: every atom-type operation yields a valid atom type with
    well-defined inherited link types, all inside the database domain —
    checked by re-validating the enlarged database's integrity and the
    result type's registration.

    Theorems 2/3: every molecule-type operation yields a valid molecule
    type over the enlarged database — checked by (a) validating the
    propagated description with [md_graph], (b) verifying every result
    molecule against the specification predicate [mv_graph], and (c)
    verifying the Def. 9 bijection (re-derivation returns exactly the
    propagated occurrence). *)

open Mad_store

type report = { checks : int; failures : string list }

let ok r = r.failures = []

let pp_report ppf r =
  if ok r then Fmt.pf ppf "closure: %d checks, all passed" r.checks
  else
    Fmt.pf ppf "closure: %d checks, %d FAILED:@.%a" r.checks
      (List.length r.failures)
      Fmt.(list ~sep:(any "@.") string)
      r.failures

let empty = { checks = 0; failures = [] }

let add r name cond =
  {
    checks = r.checks + 1;
    failures = (if cond then r.failures else name :: r.failures);
  }

(** Theorem 1 instance: the database (enlarged by atom-type operations)
    is still a member of the database domain, and the result type is a
    registered, integrity-clean atom type. *)
let check_atom_result ?(obs = Mad_obs.Obs.noop) db (r : Atom_algebra.t) =
  Mad_obs.Obs.timed obs "closure.check_atom_result"
    ~attrs:[ ("type", Mad_obs.Span.Str r.at.name) ]
  @@ fun sp ->
  let rep = empty in
  let rep =
    add rep
      (Printf.sprintf "result type %s registered" r.at.name)
      (Database.has_atom_type db r.at.name)
  in
  let rep =
    List.fold_left
      (fun rep (_, (lt : Schema.Link_type.t)) ->
        add rep
          (Printf.sprintf "inherited link type %s registered" lt.name)
          (Database.has_link_type db lt.name))
      rep r.inherited
  in
  let rep = add rep "database integrity" (Integrity.is_valid db) in
  Mad_obs.Span.set sp "checks" (Mad_obs.Span.Int rep.checks);
  rep

(** Theorem 2/3 instance for a molecule type carrying a
    materialization.

    The Def. 9 bijection check *re-derives the whole occurrence* — by
    far the most expensive step of the closure machinery — so the
    [stats] handle (and the span emitted under [obs]) make that work
    visible instead of letting profiles under-report it. *)
let check_molecule_type ?(obs = Mad_obs.Obs.noop) ?stats db
    (mt : Molecule_type.t) =
  Mad_obs.Obs.timed obs "closure.check_molecule_type"
    ~attrs:[ ("type", Mad_obs.Span.Str mt.name) ]
  @@ fun sp ->
  let stats = match stats with Some s -> s | None -> Derive.stats_in (Mad_obs.Obs.registry obs) in
  let a0 = Derive.atoms_visited stats and l0 = Derive.links_traversed stats in
  let rep =
    match mt.materialized with
    | None ->
      (* α results are directly derivable; check mv_graph of each molecule *)
      List.fold_left
        (fun rep (m : Molecule.t) ->
          add rep
            (Printf.sprintf "%s: molecule rooted %s satisfies mv_graph" mt.name
               (Aid.to_string m.root))
            (Molecule.mv_graph db mt.desc m))
        empty mt.occ
    | Some mat ->
      let rep =
        add empty
          (Printf.sprintf "%s: propagated description satisfies md_graph" mt.name)
          (match
             Mdesc.md_graph ~nodes:(Mdesc.nodes mat.mdesc)
               ~edges:(Mdesc.edges mat.mdesc)
           with
           | Ok root -> String.equal root (Mdesc.root mat.mdesc)
           | Error _ -> false)
      in
      let rep =
        add rep
          (Printf.sprintf "%s: Def. 9 bijection (re-derivation)" mt.name)
          (Propagate.exact ~stats db mat.mdesc mat.mocc)
      in
      let rep =
        List.fold_left
          (fun rep (m : Molecule.t) ->
            add rep
              (Printf.sprintf "%s: propagated molecule %s satisfies mv_graph"
                 mt.name (Aid.to_string m.root))
              (Molecule.mv_graph db mat.mdesc m))
          rep mat.mocc
      in
      add rep
        (Printf.sprintf "%s: database integrity" mt.name)
        (Integrity.is_valid db)
  in
  Mad_obs.Span.set sp "checks" (Mad_obs.Span.Int rep.checks);
  Mad_obs.Span.set sp "atoms_visited"
    (Mad_obs.Span.Int (Derive.atoms_visited stats - a0));
  Mad_obs.Span.set sp "links_traversed"
    (Mad_obs.Span.Int (Derive.links_traversed stats - l0));
  rep
