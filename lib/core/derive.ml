(** Molecule derivation — the function [m_dom] of Def. 6, implemented
    as the paper's operational reading: the molecule structure is laid
    over the atom networks as a template; for each atom of the root
    atom type one molecule is derived by hierarchical join along the
    specified branches, children before grandchildren, until the leaves
    are reached.

    A node with several incoming edges (a diamond in the type DAG)
    includes an atom only if *every* incoming edge supplies a linked,
    already-contained parent — the conjunctive reading of Def. 6's
    [contained].

    Two implementations produce identical molecules and identical work
    accounting:

    - the {e scalar} path walks the store's adjacency index with
      [Aid.Set] per node — always available, no preparation;
    - the {e kernel} path ({!Mad_kernel}) lowers the description to a
      plan over a CSR snapshot of the database and evaluates it with
      bitsets, optionally chunking the roots across a domain pool.

    Selection: bulk derivations ([m_dom], [derive_roots]) default to
    the kernel unless [MAD_KERNEL] is set to [off]/[0]/[scalar]/[no]/
    [false]; a one-shot [derive_one] uses the kernel only when a
    snapshot is already warm at the database's current epoch (building
    one for a single molecule would cost more than it saves).  The
    [?kernel] argument overrides either way.

    The [stats] handle counts the work done (atoms visited, links
    traversed); it is a thin shim over {!Mad_obs} counters, so the same
    numbers feed the PRIMA engine, the benchmarks, and — when the
    handle is registry-backed ({!stats_in}) — the per-structure-node
    accounting that EXPLAIN ANALYZE compares against the planner's
    estimates. *)

open Mad_store
module Smap = Map.Make (String)

type stats = {
  atoms_visited : Mad_obs.Metric.counter;
  links_traversed : Mad_obs.Metric.counter;
  registry : Mad_obs.Registry.t option;
      (** when present, derivation also accounts atoms/links per
          structure node under ["derive.atoms"]/["derive.links"] with a
          [node] label, and kernel runs under ["kernel.*"] *)
}

let stats () =
  {
    atoms_visited = Mad_obs.Metric.counter "derive.atoms_visited";
    links_traversed = Mad_obs.Metric.counter "derive.links_traversed";
    registry = None;
  }

(** A stats handle whose counters live in (and whose per-node
    accounting goes to) the given registry. *)
let stats_in reg =
  {
    atoms_visited = Mad_obs.Registry.counter reg "derive.atoms_visited";
    links_traversed = Mad_obs.Registry.counter reg "derive.links_traversed";
    registry = Some reg;
  }

let atoms_visited s = Mad_obs.Metric.value s.atoms_visited
let links_traversed s = Mad_obs.Metric.value s.links_traversed

let node_counter s metric node =
  match s.registry with
  | None -> None
  | Some reg ->
    Some (Mad_obs.Registry.counter ~labels:[ ("node", node) ] reg metric)

let opt_add c n = match c with None -> () | Some c -> Mad_obs.Metric.add c n

(* ------------------------------------------------------------------ *)
(* Scalar path                                                          *)

(** Derive the molecule rooted at [root_atom] (an atom of the
    description's root type) by walking the adjacency index. *)
let derive_one_scalar ?(stats = stats ()) db desc root_atom =
  let order = Mdesc.topo_order desc in
  let by_node = ref (Smap.singleton (Mdesc.root desc) (Aid.Set.singleton root_atom)) in
  let links = ref Link.Set.empty in
  Mad_obs.Metric.incr stats.atoms_visited;
  opt_add (node_counter stats "derive.atoms" (Mdesc.root desc)) 1;
  List.iter
    (fun node ->
      if not (String.equal node (Mdesc.root desc)) then begin
        let ins = Mdesc.in_edges desc node in
        let node_links = node_counter stats "derive.links" node in
        (* candidate set per incoming edge, remembering each parent's
           partner row so the link recording below reuses it instead of
           re-querying the adjacency index *)
        let reach (e : Mdesc.edge) =
          let parents =
            Option.value ~default:Aid.Set.empty (Smap.find_opt e.from_at !by_node)
          in
          Aid.Set.fold
            (fun p (acc, rows) ->
              let partners =
                Database.neighbors db e.link
                  ~dir:(match e.dir with `Fwd -> `Fwd | `Bwd -> `Bwd)
                  p
              in
              let k = Aid.Set.cardinal partners in
              Mad_obs.Metric.add stats.links_traversed k;
              opt_add node_links k;
              (Aid.Set.union partners acc, (p, partners) :: rows))
            parents (Aid.Set.empty, [])
        in
        let reached = List.map (fun e -> (e, reach e)) ins in
        (* conjunction over the incoming edges *)
        let included =
          match reached with
          | [] -> Aid.Set.empty (* unreachable on a coherent single-root DAG *)
          | (_, (first, _)) :: rest ->
            List.fold_left
              (fun acc (_, (s, _)) -> Aid.Set.inter acc s)
              first rest
        in
        let n_included = Aid.Set.cardinal included in
        Mad_obs.Metric.add stats.atoms_visited n_included;
        opt_add (node_counter stats "derive.atoms" node) n_included;
        by_node := Smap.add node included !by_node;
        (* record the links actually used, in role orientation, from
           the rows gathered above *)
        List.iter
          (fun ((e : Mdesc.edge), (_, rows)) ->
            List.iter
              (fun (p, partners) ->
                Aid.Set.iter
                  (fun c ->
                    if Aid.Set.mem c included then
                      let left, right =
                        match e.dir with `Fwd -> (p, c) | `Bwd -> (c, p)
                      in
                      links := Link.Set.add (Link.v e.link left right) !links)
                  partners)
              rows)
          reached
      end)
    order;
  Molecule.v ~root:root_atom ~by_node:!by_node ~links:!links

let m_dom_scalar ?stats db desc =
  Database.atoms db (Mdesc.root desc)
  |> List.map (fun (a : Atom.t) -> derive_one_scalar ?stats db desc a.id)

(* ------------------------------------------------------------------ *)
(* Kernel path                                                          *)

let kernel_enabled () =
  match Sys.getenv_opt "MAD_KERNEL" with
  | Some ("off" | "0" | "scalar" | "no" | "false") -> false
  | Some _ | None -> true

(* lower a description to the kernel's dense plan (topo order, root
   node 0, in-edges by source node index) *)
let compile desc =
  let order = Mdesc.topo_order desc in
  let index_of =
    let tbl = List.mapi (fun i n -> (n, i)) order in
    fun n -> List.assoc n tbl
  in
  {
    Mad_kernel.Kernel.p_nodes =
      Array.of_list
        (List.map
           (fun node ->
             {
               Mad_kernel.Kernel.n_type = node;
               n_ins =
                 Array.of_list
                   (List.map
                      (fun (e : Mdesc.edge) ->
                        {
                          Mad_kernel.Kernel.e_link = e.link;
                          e_from = index_of e.from_at;
                          e_fwd = (match e.dir with `Fwd -> true | `Bwd -> false);
                        })
                      (Mdesc.in_edges desc node));
             })
           order);
  }

let molecule_of_mol order (m : Mad_kernel.Kernel.mol) =
  let by_node, _ =
    List.fold_left
      (fun (acc, j) node ->
        (Smap.add node (Aid.Set.of_list (Array.to_list m.m_atoms.(j))) acc, j + 1))
      (Smap.empty, 0) order
  in
  let links =
    List.fold_left
      (fun s (lt, l, r) -> Link.Set.add (Link.v lt l r) s)
      Link.Set.empty m.m_links
  in
  Molecule.v ~root:m.m_root ~by_node ~links

(* the kernel accounts per-node work into plain arrays (worker domains
   must not touch the registry); flush them here, on the caller *)
let flush_kernel_stats stats order (st : Mad_kernel.Kernel.node_stats) =
  Mad_obs.Metric.add stats.atoms_visited (Array.fold_left ( + ) 0 st.st_atoms);
  Mad_obs.Metric.add stats.links_traversed (Array.fold_left ( + ) 0 st.st_links);
  match stats.registry with
  | None -> ()
  | Some _ ->
    List.iteri
      (fun j node ->
        opt_add (node_counter stats "derive.atoms" node) st.st_atoms.(j);
        if j > 0 then
          opt_add (node_counter stats "derive.links" node) st.st_links.(j))
      order

let account_kernel stats n_roots =
  match stats.registry with
  | None -> ()
  | Some reg ->
    Mad_obs.Metric.incr (Mad_obs.Registry.counter reg "kernel.runs");
    Mad_obs.Metric.add (Mad_obs.Registry.counter reg "kernel.roots") n_roots

let derive_roots_kernel ?(stats = stats ()) ?par db desc roots =
  let snap = Mad_kernel.Snapshot.of_db db in
  let order = Mdesc.topo_order desc in
  let mols, kst =
    Mad_kernel.Kernel.run_roots ?par snap (compile desc) (Array.of_list roots)
  in
  flush_kernel_stats stats order kst;
  account_kernel stats (List.length roots);
  Array.to_list (Array.map (molecule_of_mol order) mols)

(* ------------------------------------------------------------------ *)
(* Selection                                                            *)

let snapshot_warm db =
  match Mad_kernel.Snapshot.peek db with Some _ -> true | None -> false

(** Derive molecules for an explicit list of root atoms, kernel by
    default. *)
let derive_roots ?stats ?kernel ?par db desc roots =
  let use = match kernel with Some b -> b | None -> kernel_enabled () in
  if use then derive_roots_kernel ?stats ?par db desc roots
  else List.map (derive_one_scalar ?stats db desc) roots

(** Derive the molecule rooted at [root_atom].  One-shot: the kernel is
    used only when already warm (or forced). *)
let derive_one ?stats ?kernel db desc root_atom =
  let use =
    match kernel with
    | Some b -> b
    | None -> kernel_enabled () && snapshot_warm db
  in
  if use then
    match derive_roots_kernel ?stats ~par:1 db desc [ root_atom ] with
    | [ m ] -> m
    | _ -> assert false
  else derive_one_scalar ?stats db desc root_atom

(** The full molecule-type occurrence: one molecule per root-type atom,
    in deterministic (id) order. *)
let m_dom ?stats ?kernel ?par db desc =
  let roots =
    Database.atoms db (Mdesc.root desc) |> List.map (fun (a : Atom.t) -> a.id)
  in
  derive_roots ?stats ?kernel ?par db desc roots

(** Human-readable account of the path [m_dom] would take on this
    database right now (EXPLAIN ANALYZE reports it). *)
let describe_path db =
  if not (kernel_enabled ()) then "scalar (MAD_KERNEL=off)"
  else
    Printf.sprintf "kernel (par=%d, epoch=%d, snapshot=%s)"
      (Mad_kernel.Pool.parallelism ())
      (Database.epoch db)
      (if snapshot_warm db then "warm" else "cold")
