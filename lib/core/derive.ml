(** Molecule derivation — the function [m_dom] of Def. 6, implemented
    as the paper's operational reading: the molecule structure is laid
    over the atom networks as a template; for each atom of the root
    atom type one molecule is derived by hierarchical join along the
    specified branches, children before grandchildren, until the leaves
    are reached.

    A node with several incoming edges (a diamond in the type DAG)
    includes an atom only if *every* incoming edge supplies a linked,
    already-contained parent — the conjunctive reading of Def. 6's
    [contained].

    [trace] counters expose the work done (atoms visited, links
    traversed); the PRIMA engine and the benchmarks read them. *)

open Mad_store
module Smap = Map.Make (String)

type stats = { mutable atoms_visited : int; mutable links_traversed : int }

let stats () = { atoms_visited = 0; links_traversed = 0 }

(** Derive the molecule rooted at [root_atom] (an atom of the
    description's root type). *)
let derive_one ?(stats = stats ()) db desc root_atom =
  let order = Mdesc.topo_order desc in
  let by_node = ref (Smap.singleton (Mdesc.root desc) (Aid.Set.singleton root_atom)) in
  let links = ref Link.Set.empty in
  stats.atoms_visited <- stats.atoms_visited + 1;
  List.iter
    (fun node ->
      if not (String.equal node (Mdesc.root desc)) then begin
        let ins = Mdesc.in_edges desc node in
        (* candidate sets per incoming edge, then conjunction *)
        let reach (e : Mdesc.edge) =
          let parents =
            Option.value ~default:Aid.Set.empty (Smap.find_opt e.from_at !by_node)
          in
          Aid.Set.fold
            (fun p acc ->
              let partners =
                Database.neighbors db e.link
                  ~dir:(match e.dir with `Fwd -> `Fwd | `Bwd -> `Bwd)
                  p
              in
              stats.links_traversed <-
                stats.links_traversed + Aid.Set.cardinal partners;
              Aid.Set.union partners acc)
            parents Aid.Set.empty
        in
        let included =
          match ins with
          | [] -> Aid.Set.empty (* unreachable on a coherent single-root DAG *)
          | e :: rest ->
            List.fold_left
              (fun acc e -> Aid.Set.inter acc (reach e))
              (reach e) rest
        in
        stats.atoms_visited <- stats.atoms_visited + Aid.Set.cardinal included;
        by_node := Smap.add node included !by_node;
        (* record the links actually used, in role orientation *)
        List.iter
          (fun (e : Mdesc.edge) ->
            let parents =
              Option.value ~default:Aid.Set.empty
                (Smap.find_opt e.from_at !by_node)
            in
            Aid.Set.iter
              (fun p ->
                let partners =
                  Database.neighbors db e.link
                    ~dir:(match e.dir with `Fwd -> `Fwd | `Bwd -> `Bwd)
                    p
                in
                Aid.Set.iter
                  (fun c ->
                    if Aid.Set.mem c included then
                      let left, right =
                        match e.dir with `Fwd -> (p, c) | `Bwd -> (c, p)
                      in
                      links := Link.Set.add (Link.v e.link left right) !links)
                  partners)
              parents)
          ins
      end)
    order;
  Molecule.v ~root:root_atom ~by_node:!by_node ~links:!links

(** The full molecule-type occurrence: one molecule per root-type atom,
    in deterministic (id) order. *)
let m_dom ?stats db desc =
  Database.atoms db (Mdesc.root desc)
  |> List.map (fun (a : Atom.t) -> derive_one ?stats db desc a.id)
