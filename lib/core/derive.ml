(** Molecule derivation — the function [m_dom] of Def. 6, implemented
    as the paper's operational reading: the molecule structure is laid
    over the atom networks as a template; for each atom of the root
    atom type one molecule is derived by hierarchical join along the
    specified branches, children before grandchildren, until the leaves
    are reached.

    A node with several incoming edges (a diamond in the type DAG)
    includes an atom only if *every* incoming edge supplies a linked,
    already-contained parent — the conjunctive reading of Def. 6's
    [contained].

    The [stats] handle counts the work done (atoms visited, links
    traversed); it is a thin shim over {!Mad_obs} counters, so the same
    numbers feed the PRIMA engine, the benchmarks, and — when the
    handle is registry-backed ({!stats_in}) — the per-structure-node
    accounting that EXPLAIN ANALYZE compares against the planner's
    estimates. *)

open Mad_store
module Smap = Map.Make (String)

type stats = {
  atoms_visited : Mad_obs.Metric.counter;
  links_traversed : Mad_obs.Metric.counter;
  registry : Mad_obs.Registry.t option;
      (** when present, derivation also accounts atoms/links per
          structure node under ["derive.atoms"]/["derive.links"] with a
          [node] label *)
}

let stats () =
  {
    atoms_visited = Mad_obs.Metric.counter "derive.atoms_visited";
    links_traversed = Mad_obs.Metric.counter "derive.links_traversed";
    registry = None;
  }

(** A stats handle whose counters live in (and whose per-node
    accounting goes to) the given registry. *)
let stats_in reg =
  {
    atoms_visited = Mad_obs.Registry.counter reg "derive.atoms_visited";
    links_traversed = Mad_obs.Registry.counter reg "derive.links_traversed";
    registry = Some reg;
  }

let atoms_visited s = Mad_obs.Metric.value s.atoms_visited
let links_traversed s = Mad_obs.Metric.value s.links_traversed

let node_counter s metric node =
  match s.registry with
  | None -> None
  | Some reg ->
    Some (Mad_obs.Registry.counter ~labels:[ ("node", node) ] reg metric)

let opt_add c n = match c with None -> () | Some c -> Mad_obs.Metric.add c n

(** Derive the molecule rooted at [root_atom] (an atom of the
    description's root type). *)
let derive_one ?(stats = stats ()) db desc root_atom =
  let order = Mdesc.topo_order desc in
  let by_node = ref (Smap.singleton (Mdesc.root desc) (Aid.Set.singleton root_atom)) in
  let links = ref Link.Set.empty in
  Mad_obs.Metric.incr stats.atoms_visited;
  opt_add (node_counter stats "derive.atoms" (Mdesc.root desc)) 1;
  List.iter
    (fun node ->
      if not (String.equal node (Mdesc.root desc)) then begin
        let ins = Mdesc.in_edges desc node in
        let node_links = node_counter stats "derive.links" node in
        (* candidate sets per incoming edge, then conjunction *)
        let reach (e : Mdesc.edge) =
          let parents =
            Option.value ~default:Aid.Set.empty (Smap.find_opt e.from_at !by_node)
          in
          Aid.Set.fold
            (fun p acc ->
              let partners =
                Database.neighbors db e.link
                  ~dir:(match e.dir with `Fwd -> `Fwd | `Bwd -> `Bwd)
                  p
              in
              let k = Aid.Set.cardinal partners in
              Mad_obs.Metric.add stats.links_traversed k;
              opt_add node_links k;
              Aid.Set.union partners acc)
            parents Aid.Set.empty
        in
        let included =
          match ins with
          | [] -> Aid.Set.empty (* unreachable on a coherent single-root DAG *)
          | e :: rest ->
            List.fold_left
              (fun acc e -> Aid.Set.inter acc (reach e))
              (reach e) rest
        in
        let n_included = Aid.Set.cardinal included in
        Mad_obs.Metric.add stats.atoms_visited n_included;
        opt_add (node_counter stats "derive.atoms" node) n_included;
        by_node := Smap.add node included !by_node;
        (* record the links actually used, in role orientation *)
        List.iter
          (fun (e : Mdesc.edge) ->
            let parents =
              Option.value ~default:Aid.Set.empty
                (Smap.find_opt e.from_at !by_node)
            in
            Aid.Set.iter
              (fun p ->
                let partners =
                  Database.neighbors db e.link
                    ~dir:(match e.dir with `Fwd -> `Fwd | `Bwd -> `Bwd)
                    p
                in
                Aid.Set.iter
                  (fun c ->
                    if Aid.Set.mem c included then
                      let left, right =
                        match e.dir with `Fwd -> (p, c) | `Bwd -> (c, p)
                      in
                      links := Link.Set.add (Link.v e.link left right) !links)
                  partners)
              parents)
          ins
      end)
    order;
  Molecule.v ~root:root_atom ~by_node:!by_node ~links:!links

(** The full molecule-type occurrence: one molecule per root-type atom,
    in deterministic (id) order. *)
let m_dom ?stats db desc =
  Database.atoms db (Mdesc.root desc)
  |> List.map (fun (a : Atom.t) -> derive_one ?stats db desc a.id)
