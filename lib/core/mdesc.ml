(** Molecule-type descriptions (Def. 5) and the [md_graph] predicate.

    A description [md = <C,G>] is a type graph: nodes [C] are atom-type
    names, edges [G] are *directed* uses of link types.  [md_graph]
    demands the graph be directed, acyclic, coherent (weakly connected)
    and single-rooted; Def. 5 makes [C] a set, so each atom type occurs
    at most once per structure — consequently a *reflexive* link type
    cannot appear in a plain description (it would be a self-loop);
    reflexive traversal is the business of the recursive extension
    (ch. 5 outlook, implemented in [Mad_recursive]). *)

open Mad_store

type edge = {
  link : string;  (** link-type name *)
  from_at : string;  (** start node *)
  to_at : string;  (** end node *)
  dir : [ `Fwd | `Bwd ];
      (** traversal orientation w.r.t. the link type's ends:
          [`Fwd] when [from_at] plays the first-end (left) role *)
}

type t = { nodes : string list; edges : edge list; root : string }

let nodes t = t.nodes
let edges t = t.edges
let root t = t.root

let in_edges t node = List.filter (fun e -> String.equal e.to_at node) t.edges
let out_edges t node = List.filter (fun e -> String.equal e.from_at node) t.edges

let pp_edge ppf e = Fmt.pf ppf "<%s,%s,%s>" e.link e.from_at e.to_at

let pp ppf t =
  Fmt.pf ppf "@[<h>md = <{%a}, {%a}> (root %s)@]"
    Fmt.(list ~sep:(any ",") string)
    t.nodes
    Fmt.(list ~sep:(any ",") pp_edge)
    t.edges t.root

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Validation: the md_graph predicate                                   *)

module Sset = Set.Make (String)
module Smap = Map.Make (String)

let find_roots ~nodes ~edges =
  let with_in =
    List.fold_left (fun s (e : edge) -> Sset.add e.to_at s) Sset.empty edges
  in
  List.filter (fun n -> not (Sset.mem n with_in)) nodes

let is_acyclic ~nodes ~edges =
  (* Kahn's algorithm *)
  let indeg =
    List.fold_left
      (fun m (e : edge) ->
        Smap.add e.to_at (1 + Option.value ~default:0 (Smap.find_opt e.to_at m)) m)
      (List.fold_left (fun m n -> Smap.add n 0 m) Smap.empty nodes)
      edges
  in
  let rec go indeg queue seen =
    match queue with
    | [] -> seen = List.length nodes
    | n :: rest ->
      let indeg, ready =
        List.fold_left
          (fun (indeg, ready) (e : edge) ->
            if String.equal e.from_at n then
              let d = Smap.find e.to_at indeg - 1 in
              let indeg = Smap.add e.to_at d indeg in
              if d = 0 then (indeg, e.to_at :: ready) else (indeg, ready)
            else (indeg, ready))
          (indeg, []) edges
      in
      go indeg (ready @ rest) (seen + 1)
  in
  let initial = Smap.fold (fun n d acc -> if d = 0 then n :: acc else acc) indeg [] in
  go indeg initial 0

let is_coherent ~nodes ~edges =
  match nodes with
  | [] -> false
  | first :: _ ->
    let adj n =
      List.concat_map
        (fun (e : edge) ->
          if String.equal e.from_at n then [ e.to_at ]
          else if String.equal e.to_at n then [ e.from_at ]
          else [])
        edges
    in
    let rec bfs seen = function
      | [] -> seen
      | n :: rest ->
        if Sset.mem n seen then bfs seen rest
        else bfs (Sset.add n seen) (adj n @ rest)
    in
    Sset.cardinal (bfs Sset.empty [ first ]) = List.length nodes

(** Check the pure graph conditions of [md_graph] on (nodes, edges):
    set-ness of C, directedness/acyclicity, coherence, unique root. *)
let md_graph ~nodes ~edges =
  let sorted = List.sort_uniq String.compare nodes in
  if List.length sorted <> List.length nodes then
    Error "node set contains duplicates"
  else if nodes = [] then Error "empty node set"
  else if
    List.exists
      (fun (e : edge) ->
        not (List.mem e.from_at nodes) || not (List.mem e.to_at nodes))
      edges
  then Error "edge references a node outside C"
  else if List.exists (fun (e : edge) -> String.equal e.from_at e.to_at) edges
  then Error "self-loop (reflexive link types need the recursive extension)"
  else if not (is_acyclic ~nodes ~edges) then Error "type graph is cyclic"
  else if not (is_coherent ~nodes ~edges) then Error "type graph is not coherent"
  else
    match find_roots ~nodes ~edges with
    | [ r ] -> Ok r
    | [] -> Error "no root node"
    | rs ->
      Error
        (Printf.sprintf "multiple root nodes: %s" (String.concat ", " rs))

(** Build and validate a description against a database: all nodes must
    be atom types, every edge's link type must exist and connect the
    two nodes; the orientation is derived from the link type's ends. *)
let v db ~nodes ~edges =
  List.iter (fun n -> ignore (Database.atom_type db n)) nodes;
  let edges =
    List.map
      (fun (link, from_at, to_at) ->
        let lt = Database.link_type db link in
        let e1, e2 = lt.ends in
        if Schema.Link_type.reflexive lt then
          Err.failf
            "link type %s is reflexive; plain molecule structures cannot \
             use it (see the recursive extension)"
            link
        else if String.equal e1 from_at && String.equal e2 to_at then
          { link; from_at; to_at; dir = `Fwd }
        else if String.equal e2 from_at && String.equal e1 to_at then
          { link; from_at; to_at; dir = `Bwd }
        else
          Err.failf "link type %s connects {%s,%s}, not <%s,%s>" link e1 e2
            from_at to_at)
      edges
  in
  match md_graph ~nodes ~edges with
  | Ok root -> { nodes; edges; root }
  | Error msg -> Err.failf "invalid molecule structure: %s" msg

(** Nodes in topological order, root first.  Deterministic (ties broken
    by name). *)
let topo_order t =
  let rec go placed acc =
    if List.length placed = List.length t.nodes then List.rev acc
    else
      let ready =
        List.filter
          (fun n ->
            (not (List.mem n placed))
            && List.for_all (fun e -> List.mem e.from_at placed) (in_edges t n))
          t.nodes
        |> List.sort String.compare
      in
      match ready with
      | [] -> assert false (* impossible on a validated DAG *)
      | n :: _ -> go (n :: placed) (n :: acc)
  in
  go [] []

(** The sub-description induced by a subset of nodes (used by molecule
    projection Π).  Fails unless the induced graph still satisfies
    [md_graph] with the same root. *)
let induced t keep =
  let nodes = List.filter (fun n -> List.mem n keep) t.nodes in
  List.iter
    (fun k ->
      if not (List.mem k t.nodes) then
        Err.failf "projection keeps unknown node %s" k)
    keep;
  let edges =
    List.filter
      (fun e -> List.mem e.from_at nodes && List.mem e.to_at nodes)
      t.edges
  in
  match md_graph ~nodes ~edges with
  | Ok root when String.equal root t.root -> { nodes; edges; root }
  | Ok root ->
    Err.failf "projection changes the root from %s to %s" t.root root
  | Error msg -> Err.failf "projection breaks the structure: %s" msg

(** Rename nodes and edge link types through [f_node]/[f_link]
    (used by propagation, Def. 9: same graph structure over renamed
    types). *)
let rename t ~f_node ~f_link =
  {
    nodes = List.map f_node t.nodes;
    edges =
      List.map
        (fun e ->
          {
            link = f_link e;
            from_at = f_node e.from_at;
            to_at = f_node e.to_at;
            dir = e.dir;
          })
        t.edges;
    root = f_node t.root;
  }

let equal a b =
  List.equal String.equal
    (List.sort String.compare a.nodes)
    (List.sort String.compare b.nodes)
  && String.equal a.root b.root
  && List.equal
       (fun (x : edge) (y : edge) ->
         String.equal x.link y.link
         && String.equal x.from_at y.from_at
         && String.equal x.to_at y.to_at)
       (List.sort compare a.edges) (List.sort compare b.edges)
