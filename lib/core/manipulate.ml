(** Manipulation facilities on molecules.

    The paper demands "powerful manipulation facilities" next to the
    query side (ch. 1), and MOL is introduced as a "query and
    manipulation language" (ch. 4).  The interesting semantics is
    deletion in the presence of shared subobjects: removing a molecule
    must not tear atoms out of the *other* molecules that share them.

    [delete_molecules] therefore deletes a component atom only when
    every molecule of the occurrence containing it is itself being
    deleted (the shared-subobject-safe rule); links incident to deleted
    atoms cascade in the store.  [`Unlink_only] instead detaches the
    root atoms from their components without deleting any component —
    the non-destructive variant. *)

open Mad_store
module Smap = Map.Make (String)

(** Insert a fresh atom plus links to existing partners in one step —
    the primitive molecule-building operation. *)
let insert_atom_linked db ~atype values ~links =
  let atom = Database.insert_atom db ~atype values in
  List.iter
    (fun (ltname, partner) ->
      let lt = Database.link_type db ltname in
      match Schema.Link_type.role_of lt atype with
      | `Left -> Database.add_link db ltname ~left:atom.Atom.id ~right:partner
      | `Right -> Database.add_link db ltname ~left:partner ~right:atom.Atom.id
      | `Both -> Database.add_link db ltname ~left:atom.Atom.id ~right:partner
      | `None ->
        Err.failf "link type %s does not touch atom type %s" ltname atype)
    links;
  atom

type delete_mode =
  [ `Shared_safe  (** delete atoms only when no surviving molecule holds them *)
  | `Unlink_only  (** keep all component atoms; remove the roots and their links *)
  ]

type delete_report = {
  molecules_deleted : int;
  atoms_deleted : int;
  atoms_kept_shared : int;  (** atoms spared by the shared-subobject rule *)
}

(** Delete the molecules of [victims] (a subset of [mt]'s occurrence,
    e.g. a Σ result over it) from the database. *)
let delete_molecules ?(mode = `Shared_safe) db (mt : Molecule_type.t)
    (victims : Molecule.t list) =
  let victim_roots =
    List.fold_left
      (fun s (m : Molecule.t) -> Aid.Set.add m.Molecule.root s)
      Aid.Set.empty victims
  in
  (* atoms held by surviving molecules of the same occurrence *)
  let survivors =
    List.filter
      (fun (m : Molecule.t) -> not (Aid.Set.mem m.Molecule.root victim_roots))
      mt.Molecule_type.occ
  in
  let protected_atoms =
    List.fold_left
      (fun s m -> Aid.Set.union s (Molecule.atoms m))
      Aid.Set.empty survivors
  in
  let victim_atoms =
    List.fold_left
      (fun s m -> Aid.Set.union s (Molecule.atoms m))
      Aid.Set.empty victims
  in
  let to_delete =
    match mode with
    | `Unlink_only -> victim_roots
    | `Shared_safe -> Aid.Set.diff victim_atoms protected_atoms
  in
  (match mode with
   | `Unlink_only ->
     (* also drop the links the victim molecules used, detaching kept
        components from each other along this structure *)
     List.iter
       (fun (m : Molecule.t) ->
         Link.Set.iter
           (fun (l : Link.t) ->
             Database.remove_link db l.Link.lt ~left:l.Link.left
               ~right:l.Link.right)
           m.Molecule.links)
       victims
   | `Shared_safe -> ());
  Aid.Set.iter (fun id -> Database.delete_atom db id) to_delete;
  {
    molecules_deleted = List.length victims;
    atoms_deleted = Aid.Set.cardinal to_delete;
    atoms_kept_shared =
      Aid.Set.cardinal (Aid.Set.inter victim_atoms protected_atoms);
  }

(** Update one attribute on every atom of [node] inside the given
    molecules.  Returns the number of atoms modified (each shared atom
    is modified once). *)
let modify_attribute db ~node ~attr value (molecules : Molecule.t list) =
  let at = Database.atom_type db node in
  let i = Schema.Atom_type.attr_index at attr in
  let dom = (List.nth at.Schema.Atom_type.attrs i).Schema.Attr.domain in
  if not (Domain.mem value dom) then
    Err.failf "value %s outside domain %s of %s.%s" (Value.to_string value)
      (Domain.to_string dom) node attr;
  let targets =
    List.fold_left
      (fun s m -> Aid.Set.union s (Molecule.component m node))
      Aid.Set.empty molecules
  in
  Aid.Set.iter
    (fun id -> Database.set_attribute db ~atype:node id ~index:i value)
    targets;
  Aid.Set.cardinal targets
