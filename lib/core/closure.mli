(** Machine checks of the closure theorems: Theorem 1 for atom-type
    operations, Theorems 2-3 (validity, the Def. 9 bijection, and the
    mv_graph predicate per molecule) for molecule-type operations. *)

open Mad_store

type report = { checks : int; failures : string list }

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val check_atom_result :
  ?obs:Mad_obs.Obs.t -> Database.t -> Atom_algebra.t -> report

val check_molecule_type :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Derive.stats ->
  Database.t ->
  Molecule_type.t ->
  report
(** The Def. 9 bijection check re-derives the whole occurrence;
    [stats] (default: counters in [obs]'s registry) accounts that
    work so profiles stop under-reporting it. *)
