(** The molecule algebra (Defs. 8 and 10, Theorems 2-3): definition α,
    restriction Σ, projection Π, product X, union Ω, difference Δ and
    the derived intersection Ψ(a,b) = Δ(a, Δ(a,b)).  Every operator
    follows Fig. 5's scheme: operation-specific actions, propagation
    ({!Propagate.prop}), molecule-type definition. *)

open Mad_store

val gen_name : string -> string
(** A fresh result-type name with the given prefix. *)

(** Each operator takes an optional observability context [obs]
    (default: the shared no-op) and emits one span per application,
    named [molecule_algebra.<op>], carrying the result-type name,
    input/output molecule cardinalities and — when [stats] is given —
    the derivation-work deltas attributable to the operator (including
    the propagation exactness re-derivation). *)

val define :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Derive.stats ->
  Database.t ->
  name:string ->
  Mdesc.t ->
  Molecule_type.t
(** α — molecule-type definition (Def. 8). *)

val define' :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Derive.stats ->
  Database.t ->
  name:string ->
  nodes:string list ->
  edges:(string * string * string) list ->
  unit ->
  Molecule_type.t
(** Convenience: validate the description, then α. *)

val typecheck_qual : Database.t -> Molecule_type.t -> Qual.t -> unit
(** Structure-scoped typecheck including attribute visibility after
    molecule projection. *)

val molecule_satisfies : Database.t -> Molecule_type.t -> Molecule.t -> Qual.t -> bool
(** [qual(m, restr(md))] of Def. 10. *)

val restrict :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Derive.stats ->
  ?par:int ->
  ?name:string ->
  Database.t ->
  Qual.t ->
  Molecule_type.t ->
  Molecule_type.t
(** Σ.  Qualification evaluation chunks across the kernel's domain
    pool when the occurrence set is large ([par] caps the chunks,
    default [MAD_PAR]); the result order is deterministic either way. *)

val project :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Derive.stats ->
  ?name:string ->
  Database.t ->
  (string * string list option) list ->
  Molecule_type.t ->
  Molecule_type.t
(** Π — retained nodes (with [None] = all visible attributes or
    [Some attrs]); the retained set must induce a coherent
    single-rooted sub-DAG containing the root. *)

val union :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Derive.stats ->
  ?name:string ->
  Database.t ->
  Molecule_type.t ->
  Molecule_type.t ->
  Molecule_type.t
(** Ω — requires {!Molecule_type.compatible} operands. *)

val diff :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Derive.stats ->
  ?name:string ->
  Database.t ->
  Molecule_type.t ->
  Molecule_type.t ->
  Molecule_type.t
(** Δ *)

val intersect :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Derive.stats ->
  ?name:string ->
  Database.t ->
  Molecule_type.t ->
  Molecule_type.t ->
  Molecule_type.t
(** Ψ = Δ(a, Δ(a,b)) — the paper's worked composition example. *)

val product :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Derive.stats ->
  ?name:string ->
  Database.t ->
  Molecule_type.t ->
  Molecule_type.t ->
  Molecule_type.t
(** X — operands are propagated onto fresh types; a synthetic pair root
    keeps the combined structure single-rooted. *)
