(** Molecule types (Def. 7): a name, a molecule-type description and the
    corresponding molecule-type occurrence.

    A molecule type carries its occurrence in the coordinates of the
    database types its description mentions (the "result set" [rst] view
    of Def. 9/10); the [materialized] field holds the outcome of
    propagation — the renamed atom types, inherited link types and the
    re-derived occurrence over the enlarged database — which is what
    Theorems 2/3 quantify over.  Operators compose on the result-set
    view and re-materialize, mirroring Fig. 5's three-stage scheme
    (operation-specific actions, propagation, molecule-type
    definition). *)

open Mad_store
module Smap = Map.Make (String)

type materialization = {
  mdesc : Mdesc.t;  (** description over the propagated (renamed) types *)
  node_map : string Smap.t;  (** source node -> propagated atom-type name *)
  link_map : string Smap.t;  (** source link -> propagated link-type name *)
  atom_map : Aid.t Aid.Map.t;  (** source atom -> propagated copy *)
  mocc : Molecule.t list;  (** the occurrence over the propagated types *)
  strategy : [ `Shared | `Copied ];
      (** [`Shared]: one propagated copy per distinct source atom
          (sharing preserved); [`Copied]: per-molecule copies (the
          fallback that guarantees Def. 9's exactness). *)
}

type t = {
  name : string;
  desc : Mdesc.t;
  attr_proj : string list Smap.t;
      (** node -> attribute names visible after molecule projection;
          nodes absent from the map expose all attributes *)
  occ : Molecule.t list;
  materialized : materialization option;
}

let v ?(attr_proj = Smap.empty) ?materialized ~name ~desc occ =
  { name; desc; attr_proj; occ; materialized }

let name t = t.name
let desc t = t.desc
let occ t = t.occ
let cardinality t = List.length t.occ

let visible_attrs db t node =
  match Smap.find_opt node t.attr_proj with
  | Some attrs -> attrs
  | None ->
    let at = Database.atom_type db node in
    List.map (fun (a : Schema.Attr.t) -> a.name) at.attrs

let attr_visible t node attr =
  match Smap.find_opt node t.attr_proj with
  | Some attrs -> List.mem attr attrs
  | None -> true

let find_by_root t root =
  List.find_opt (fun (m : Molecule.t) -> Aid.equal m.root root) t.occ

(** Structural compatibility in the sense of Def. 4/10's "same
    description" requirement, lifted to molecule types: same structure
    graph over the same database types and the same visible
    attributes. *)
let compatible a b =
  Mdesc.equal a.desc b.desc
  && List.for_all
       (fun node ->
         (match (Smap.find_opt node a.attr_proj, Smap.find_opt node b.attr_proj) with
          | None, None -> true
          | Some xs, Some ys -> List.equal String.equal xs ys
          | Some _, None | None, Some _ -> false))
       (Mdesc.nodes a.desc)

let molecule_set t = Molecule.Set.of_list t.occ

let pp_summary ppf t =
  Fmt.pf ppf "molecule type %s: %a, %d molecules" t.name Mdesc.pp t.desc
    (List.length t.occ)
