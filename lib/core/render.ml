(** Rendering of molecules and molecule sets in the hierarchical style
    of Fig. 2's lower part: each molecule as an indented tree from its
    root atom, components labelled with node names and a key attribute,
    shared atoms flagged. *)

open Mad_store
module Smap = Map.Make (String)

(** The label of an atom: its first visible string-valued attribute if
    any, else its id. *)
let atom_label db (mt : Molecule_type.t) node id =
  let at = Database.atom_type db node in
  let a = Database.get_atom db ~atype:node id in
  let visible = Molecule_type.visible_attrs db mt node in
  let labelled =
    List.find_map
      (fun attr ->
        match Atom.value a at attr with
        | Value.String s -> Some s
        | Value.Int _ | Value.Float _ | Value.Bool _ | Value.Id _
        | Value.List _ ->
          None)
      visible
  in
  match labelled with
  | Some s -> Printf.sprintf "%s[%s]" (Aid.to_string id) s
  | None -> Aid.to_string id

let pp_molecule db (mt : Molecule_type.t) ppf (m : Molecule.t) =
  let desc = mt.desc in
  let rec walk indent node id =
    Fmt.pf ppf "%s%s %s@." indent node (atom_label db mt node id);
    List.iter
      (fun (e : Mdesc.edge) ->
        let children =
          Link.Set.fold
            (fun (l : Link.t) acc ->
              if not (String.equal l.lt e.link) then acc
              else
                let p, c =
                  match e.dir with
                  | `Fwd -> (l.left, l.right)
                  | `Bwd -> (l.right, l.left)
                in
                if Aid.equal p id && Aid.Set.mem c (Molecule.component m e.to_at)
                then Aid.Set.add c acc
                else acc)
            m.links Aid.Set.empty
        in
        Aid.Set.iter (fun c -> walk (indent ^ "  ") e.to_at c) children)
      (Mdesc.out_edges desc node)
  in
  walk "" (Mdesc.root desc) m.root

let pp_molecule_type db ppf (mt : Molecule_type.t) =
  Fmt.pf ppf "molecule type %s (%d molecules)@." mt.name (List.length mt.occ);
  List.iter (fun m -> pp_molecule db mt ppf m; Fmt.pf ppf "@.") mt.occ

(** Report the shared subobjects across a molecule set: every atom that
    belongs to more than one molecule, with the roots sharing it. *)
let shared_subobjects (mt : Molecule_type.t) =
  let owners = Hashtbl.create 64 in
  List.iter
    (fun (m : Molecule.t) ->
      Aid.Set.iter
        (fun id ->
          Hashtbl.replace owners id
            (m.root :: Option.value ~default:[] (Hashtbl.find_opt owners id)))
        (Molecule.atoms m))
    mt.occ;
  Hashtbl.fold
    (fun id roots acc ->
      if List.length roots > 1 then (id, List.sort Aid.compare roots) :: acc
      else acc)
    owners []
  |> List.sort compare

let pp_shared db ppf (mt : Molecule_type.t) =
  match shared_subobjects mt with
  | [] -> Fmt.pf ppf "no shared subobjects@."
  | shared ->
    Fmt.pf ppf "shared subobjects (%d atoms):@." (List.length shared);
    List.iter
      (fun (id, roots) ->
        let a = Database.atom db id in
        Fmt.pf ppf "  %s atom %s shared by molecules rooted {%s}@." a.atype
          (Aid.to_string id)
          (String.concat "," (List.map Aid.to_string roots)))
      shared

(** Duplication factor if the molecule set were represented without
    shared subobjects (the NF² comparison of EXPeriment FIG2): total
    atom slots across molecules / distinct atoms. *)
let duplication_factor (mt : Molecule_type.t) =
  let slots =
    List.fold_left (fun n m -> n + Molecule.atom_count m) 0 mt.occ
  in
  let distinct =
    List.fold_left
      (fun s (m : Molecule.t) -> Aid.Set.union s (Molecule.atoms m))
      Aid.Set.empty mt.occ
    |> Aid.Set.cardinal
  in
  if distinct = 0 then 1.0 else float_of_int slots /. float_of_int distinct
