(** Propagation of result sets (Def. 9): enlarge the database by
    renamed atom types (occurrences restricted to the result set's
    atoms, optionally attribute-projected) and inherited link types
    (restricted to its links) such that the result set is exactly
    derivable as a molecule type over the enlarged database.

    Exactness (the Def. 9 bijection) is verified after shared
    propagation; on failure (molecule projection can provoke it on
    diamonds) the per-molecule-copies fallback guarantees it. *)

open Mad_store
module Smap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

val fresh_name : Database.t -> string -> string
(** An atom-/link-type name not yet used in the database. *)

val prop :
  ?stats:Derive.stats ->
  ?strategy:[ `Auto | `Shared | `Copied ] ->
  Database.t ->
  name:string ->
  desc:Mdesc.t ->
  attr_proj:string list Smap.t ->
  Molecule.t list ->
  Molecule_type.materialization
(** The propagation function.  [`Auto] (default) tries shared
    propagation, checks exactness and falls back to copies.  [stats]
    accounts the exactness re-derivation. *)

val exact : ?stats:Derive.stats -> Database.t -> Mdesc.t -> Molecule.t list -> bool
(** Does re-derivation over the propagated types return exactly the
    propagated occurrence?  The re-derivation is real work; [stats]
    makes it visible to profiles. *)
