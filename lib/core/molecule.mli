(** Molecules (Def. 6): a set of atoms partitioned by structure node
    plus the set of links connecting them, together with the paper's
    specification predicates [contained], [total] and [mv_graph]
    implemented verbatim and independently of the derivation algorithm
    (so derivation can be property-tested against the spec). *)

open Mad_store
module Smap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type t = {
  root : Aid.t;
  by_node : Aid.Set.t Smap.t;  (** node (atom-type name) -> atoms *)
  links : Link.Set.t;
}

val v : root:Aid.t -> by_node:Aid.Set.t Smap.t -> links:Link.Set.t -> t

val component : t -> string -> Aid.Set.t
val component_list : t -> string -> Aid.t list
val atoms : t -> Aid.Set.t
val atom_count : t -> int
val link_count : t -> int
val mem_atom : t -> Aid.t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

module Set : Set.S with type elt = t

val shared : t -> t -> Aid.Set.t
(** Atoms common to two molecules — the paper's shared subobjects. *)

val pp : Format.formatter -> t -> unit

(** {1 Specification predicates (Def. 6)} *)

val contained : Database.t -> Mdesc.t -> t -> string -> Aid.t -> bool
(** [contained db desc m node id]: the root atom is contained; a
    non-root atom is contained iff for {e every} incoming edge of its
    node some contained parent links to it within [m]. *)

val total : Database.t -> Mdesc.t -> t -> bool
(** Every atom contained, no outside atom would be (maximality judged
    against the database's links), and [m.links] holds exactly the
    database links between contained atoms along the structure. *)

val instance_md_graph : Mdesc.t -> t -> bool
(** [md_graph] on the molecule's own graph: acyclic, coherent, single
    root. *)

val mv_graph : Database.t -> Mdesc.t -> t -> bool
(** The full correctness predicate: [instance_md_graph] and [total]. *)
