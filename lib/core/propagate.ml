(** Propagation of result sets (Def. 9).

    [prop(rst, DB) = <mt, DB'>]: the database is enlarged by renamed
    atom types (same descriptions, occurrences restricted to the atoms
    occurring in the result set — optionally attribute-projected for
    molecule projection) and by inherited link types (restricted to the
    links used by the result set), such that the result set is exactly
    derivable as a molecule type over the enlarged database.

    Def. 9 promises a bijection between the result set and the derived
    occurrence.  With one propagated copy per *distinct* source atom
    ([`Shared] — sharing of subobjects preserved), the bijection holds
    for the operators whose result molecules stay maximal w.r.t. the
    restricted occurrence (restriction, union, difference; the proof of
    Theorem 2 rides on rsv ⊆ mv).  Molecule projection can break it:
    dropping a diamond branch drops a containment constraint, so
    re-derivation may grow a molecule beyond its projected image.  This
    implementation therefore *checks* exactness after shared
    propagation and falls back to per-molecule copies ([`Copied]),
    which makes the bijection unconditional.  The check doubles as a
    machine-verified instance of Theorem 2/3. *)

open Mad_store
module Smap = Map.Make (String)

let fresh_name db base =
  let rec go k =
    let candidate = if k = 0 then base else Printf.sprintf "%s#%d" base k in
    if Database.has_atom_type db candidate || Database.has_link_type db candidate
    then go (k + 1)
    else candidate
  in
  go 0

(* Collect, per node, the source atoms occurring in the result set, and
   the set of links used. *)
let footprint desc (occ : Molecule.t list) =
  let atoms_by_node =
    List.fold_left
      (fun acc node ->
        let s =
          List.fold_left
            (fun s m -> Aid.Set.union s (Molecule.component m node))
            Aid.Set.empty occ
        in
        Smap.add node s acc)
      Smap.empty (Mdesc.nodes desc)
  in
  let links =
    List.fold_left (fun s (m : Molecule.t) -> Link.Set.union s m.links)
      Link.Set.empty occ
  in
  (atoms_by_node, links)

let project_values db attr_proj node (a : Atom.t) =
  match Smap.find_opt node attr_proj with
  | None -> Array.to_list a.values
  | Some attrs ->
    let at = Database.atom_type db node in
    List.map (fun attr -> Atom.value a at attr) attrs

let node_description db attr_proj node =
  let at = Database.atom_type db node in
  match Smap.find_opt node attr_proj with
  | None -> at.attrs
  | Some attrs ->
    List.map
      (fun attr -> List.nth at.attrs (Schema.Atom_type.attr_index at attr))
      attrs

(* Create the renamed (propagated) atom types and link types for [desc]
   in [db]; returns the node and link name maps and the new Mdesc. *)
let create_types db ~name ~desc ~attr_proj =
  let node_map =
    List.fold_left
      (fun acc node ->
        let tname = fresh_name db (Printf.sprintf "%s.%s" name node) in
        let attrs = node_description db attr_proj node in
        ignore (Database.declare_atom_type db tname attrs);
        Smap.add node tname acc)
      Smap.empty (Mdesc.nodes desc)
  in
  let link_map =
    List.fold_left
      (fun acc (e : Mdesc.edge) ->
        let lname = fresh_name db (Printf.sprintf "%s.%s" name e.link) in
        let ends = (Smap.find e.from_at node_map, Smap.find e.to_at node_map) in
        ignore (Database.declare_link_type db lname ends);
        Smap.add e.link lname acc)
      Smap.empty (Mdesc.edges desc)
  in
  let mdesc =
    Mdesc.rename desc
      ~f_node:(fun n -> Smap.find n node_map)
      ~f_link:(fun e -> Smap.find e.Mdesc.link link_map)
  in
  (* renamed edges are oriented ends = (from, to), i.e. `Fwd *)
  let mdesc =
    {
      mdesc with
      Mdesc.edges =
        List.map (fun e -> { e with Mdesc.dir = `Fwd }) mdesc.Mdesc.edges;
    }
  in
  (node_map, link_map, mdesc)

let remap_molecule ~node_map ~link_map ~atom_of desc (m : Molecule.t) =
  let by_node =
    Smap.fold
      (fun node s acc ->
        match Smap.find_opt node node_map with
        | None -> acc
        | Some tname ->
          Smap.add tname
            (Aid.Set.map (fun id -> atom_of node id) s)
            acc)
      m.by_node Smap.empty
  in
  let links =
    Link.Set.fold
      (fun (l : Link.t) acc ->
        match
          List.find_opt
            (fun (e : Mdesc.edge) -> String.equal e.link l.lt)
            (Mdesc.edges desc)
        with
        | None -> acc
        | Some e ->
          let p, c =
            match e.dir with `Fwd -> (l.left, l.right) | `Bwd -> (l.right, l.left)
          in
          let p' = atom_of e.from_at p and c' = atom_of e.to_at c in
          Link.Set.add (Link.v (Smap.find e.link link_map) p' c') acc)
      m.links Link.Set.empty
  in
  Molecule.v ~root:(atom_of (Mdesc.root desc) m.root) ~by_node ~links

(* Shared propagation: one copy per distinct source atom. *)
let propagate_shared db ~name ~desc ~attr_proj occ =
  let atoms_by_node, links = footprint desc occ in
  let node_map, link_map, mdesc = create_types db ~name ~desc ~attr_proj in
  let atom_map = ref Aid.Map.empty in
  Smap.iter
    (fun node s ->
      let tname = Smap.find node node_map in
      Aid.Set.iter
        (fun id ->
          let a = Database.get_atom db ~atype:node id in
          let values = project_values db attr_proj node a in
          let copy = Database.insert_atom db ~atype:tname values in
          atom_map := Aid.Map.add id copy.id !atom_map)
        s)
    atoms_by_node;
  let atom_of _node id = Aid.Map.find id !atom_map in
  Link.Set.iter
    (fun (l : Link.t) ->
      match
        List.find_opt
          (fun (e : Mdesc.edge) -> String.equal e.link l.lt)
          (Mdesc.edges desc)
      with
      | None -> ()
      | Some e ->
        let p, c =
          match e.dir with `Fwd -> (l.left, l.right) | `Bwd -> (l.right, l.left)
        in
        Database.add_link db (Smap.find e.link link_map)
          ~left:(atom_of e.from_at p) ~right:(atom_of e.to_at c))
    links;
  let mocc = List.map (remap_molecule ~node_map ~link_map ~atom_of desc) occ in
  (node_map, link_map, !atom_map, mdesc, mocc)

(* Per-molecule copies: unconditional exactness. *)
let propagate_copied db ~name ~desc ~attr_proj occ =
  let node_map, link_map, mdesc = create_types db ~name ~desc ~attr_proj in
  let global_map = ref Aid.Map.empty in
  let mocc =
    List.map
      (fun (m : Molecule.t) ->
        let local = Hashtbl.create 16 in
        let atom_of node id =
          match Hashtbl.find_opt local (node, id) with
          | Some copy -> copy
          | None ->
            let a = Database.get_atom db ~atype:node id in
            let values = project_values db attr_proj node a in
            let copy =
              Database.insert_atom db ~atype:(Smap.find node node_map) values
            in
            Hashtbl.replace local (node, id) copy.id;
            global_map := Aid.Map.add id copy.id !global_map;
            copy.id
        in
        let m' = remap_molecule ~node_map ~link_map ~atom_of desc m in
        Link.Set.iter
          (fun (l : Link.t) -> Database.add_link db l.lt ~left:l.left ~right:l.right)
          m'.links;
        m')
      occ
  in
  (node_map, link_map, !global_map, mdesc, mocc)

(** Does re-derivation over the propagated types return exactly the
    propagated occurrence (Def. 9's bijection)? *)
let exact ?stats db mdesc mocc =
  let derived = Derive.m_dom ?stats db mdesc in
  Molecule.Set.equal (Molecule.Set.of_list derived) (Molecule.Set.of_list mocc)

let cleanup db node_map link_map =
  Smap.iter (fun _ l -> Database.drop_link_type db l) link_map;
  Smap.iter (fun _ t -> Database.drop_atom_type db t) node_map

(** The propagation function of Def. 9.  [strategy] defaults to
    [`Auto]: try shared propagation, verify exactness, fall back to
    per-molecule copies if the bijection fails.

    Everything materialized here is the {e enlarged database} — scratch
    result types a query rebuilds on demand — so the whole propagation
    runs with the journal detached: derived types never reach a
    write-ahead log. *)
let prop ?stats ?(strategy = `Auto) db ~name ~desc ~attr_proj occ =
  Database.unjournaled db @@ fun () ->
  let shared () = propagate_shared db ~name ~desc ~attr_proj occ in
  let copied () = propagate_copied db ~name ~desc ~attr_proj occ in
  let node_map, link_map, atom_map, mdesc, mocc, used =
    match strategy with
    | `Shared ->
      let n, l, a, d, o = shared () in
      (n, l, a, d, o, `Shared)
    | `Copied ->
      let n, l, a, d, o = copied () in
      (n, l, a, d, o, `Copied)
    | `Auto ->
      let n, l, a, d, o = shared () in
      if exact ?stats db d o then (n, l, a, d, o, `Shared)
      else begin
        cleanup db n l;
        let n, l, a, d, o = copied () in
        (n, l, a, d, o, `Copied)
      end
  in
  {
    Molecule_type.mdesc;
    node_map;
    link_map;
    atom_map;
    mocc;
    strategy = used;
  }
