(** Molecules: occurrence-level complex objects (Def. 6).

    A molecule [m = <c,g>] is a set of atoms [c] plus a set of links
    [g], adhering to a molecule-type description.  We store [c]
    partitioned by structure node ([by_node]) — nodes are atom-type
    names and, by Def. 5, each occurs at most once per structure, so
    the partition is canonical.

    This module also implements the paper's specification predicates
    ([contained], [total], [mv_graph]) *verbatim and independently of
    the derivation algorithm*, so that derivation can be checked against
    the specification (property tests).  Two operational readings are
    fixed where the paper's text underdetermines them:
    - the base case of [contained] anchors at *the molecule's root
      atom* (the derivation "for each atom of the root atom type one
      molecule is derived");
    - maximality ([total]) is judged against the *database's* link
      occurrence (hierarchical join along the branches picks up every
      linked partner), and [g] carries exactly the database links
      between contained atoms along the structure's edges. *)

open Mad_store
module Smap = Map.Make (String)

type t = {
  root : Aid.t;
  by_node : Aid.Set.t Smap.t;  (** node (atom-type name) -> component atoms *)
  links : Link.Set.t;
}

let v ~root ~by_node ~links = { root; by_node; links }

let component m node =
  Option.value ~default:Aid.Set.empty (Smap.find_opt node m.by_node)

let component_list m node = Aid.Set.elements (component m node)

let atoms m =
  Smap.fold (fun _ s acc -> Aid.Set.union s acc) m.by_node Aid.Set.empty

let atom_count m = Aid.Set.cardinal (atoms m)
let link_count m = Link.Set.cardinal m.links

let mem_atom m id = Aid.Set.mem id (atoms m)

let compare a b =
  let c = Aid.compare a.root b.root in
  if c <> 0 then c
  else
    let c = Aid.Set.compare (atoms a) (atoms b) in
    if c <> 0 then c else Link.Set.compare a.links b.links

let equal a b = compare a b = 0

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

(** Atoms shared between two molecules — the paper's shared subobjects
    (Fig. 2: "molecules can overlap having non-disjoint atom sets"). *)
let shared a b = Aid.Set.inter (atoms a) (atoms b)

let pp ppf m =
  Fmt.pf ppf "@[<v>molecule(root %a)@," Aid.pp m.root;
  Smap.iter
    (fun node s -> Fmt.pf ppf "  %s: %a@," node Aid.pp_set s)
    m.by_node;
  Fmt.pf ppf "  links: %a@]" Link.pp_set m.links

(* ------------------------------------------------------------------ *)
(* Specification predicates (Def. 6), used to validate derivations      *)

(** [contained db desc m a_node a] — the recursive predicate of Def. 6:
    the root atom is contained; a non-root atom is contained iff *for
    every* incoming edge of its node there is a contained parent atom
    linked to it within [m.links]. *)
let contained db desc m =
  let memo = Hashtbl.create 64 in
  let rec go node id =
    match Hashtbl.find_opt memo (node, id) with
    | Some b -> b
    | None ->
      let b =
        if String.equal node (Mdesc.root desc) then Aid.equal id m.root
        else
          let ins = Mdesc.in_edges desc node in
          ins <> []
          && List.for_all
               (fun (e : Mdesc.edge) ->
                 Aid.Set.exists
                   (fun p ->
                     go e.from_at p
                     &&
                     let l, r =
                       match e.dir with `Fwd -> (p, id) | `Bwd -> (id, p)
                     in
                     Link.Set.mem (Link.v e.link l r) m.links)
                   (component m e.from_at))
               ins
      in
      Hashtbl.replace memo (node, id) b;
      ignore db;
      b
  in
  go

(** [total db desc m]: every atom of [m] is contained, and no database
    atom outside [m] would be contained if added (maximality judged
    against the database's links, with [m]'s links extended by the
    candidate's own links). *)
let total db desc m =
  let cont = contained db desc m in
  let all_in =
    List.for_all
      (fun node ->
        Aid.Set.for_all (fun id -> cont node id) (component m node))
      (Mdesc.nodes desc)
  in
  let none_out =
    List.for_all
      (fun node ->
        let comp = component m node in
        let would_be_contained id =
          if String.equal node (Mdesc.root desc) then Aid.equal id m.root
          else
            let ins = Mdesc.in_edges desc node in
            ins <> []
            && List.for_all
                 (fun (e : Mdesc.edge) ->
                   Aid.Set.exists
                     (fun p ->
                       cont e.from_at p
                       &&
                       let left, right =
                         match e.dir with `Fwd -> (p, id) | `Bwd -> (id, p)
                       in
                       Database.link_exists db e.link ~left ~right)
                     (component m e.from_at))
                 ins
        in
        Aid.Set.for_all
          (fun id -> (not (would_be_contained id)) || Aid.Set.mem id comp)
          (Database.atom_ids db node))
      (Mdesc.nodes desc)
  in
  (* link completeness: g holds exactly the database links between
     contained atoms along the structure's edges *)
  let links_complete =
    List.for_all
      (fun (e : Mdesc.edge) ->
        let parents = component m e.from_at and children = component m e.to_at in
        Aid.Set.for_all
          (fun p ->
            Aid.Set.for_all
              (fun c ->
                let left, right =
                  match e.dir with `Fwd -> (p, c) | `Bwd -> (c, p)
                in
                (not (Database.link_exists db e.link ~left ~right))
                || Link.Set.mem (Link.v e.link left right) m.links)
              children)
          parents)
      (Mdesc.edges desc)
    && Link.Set.for_all
         (fun (l : Link.t) ->
           List.exists
             (fun (e : Mdesc.edge) ->
               String.equal e.link l.lt
               &&
               let p, c =
                 match e.dir with
                 | `Fwd -> (l.left, l.right)
                 | `Bwd -> (l.right, l.left)
               in
               Aid.Set.mem p (component m e.from_at)
               && Aid.Set.mem c (component m e.to_at))
             (Mdesc.edges desc))
         m.links
  in
  all_in && none_out && links_complete

(** [md_graph] on the molecule's own graph (atoms as nodes, links as
    directed edges in structure orientation): acyclic, coherent, single
    root — Def. 6 demands the same graph properties for type and
    occurrence. *)
let instance_md_graph desc m =
  let directed_edges =
    Link.Set.fold
      (fun (l : Link.t) acc ->
        match
          List.find_opt
            (fun (e : Mdesc.edge) -> String.equal e.link l.lt)
            (Mdesc.edges desc)
        with
        | Some e ->
          let p, c =
            match e.dir with `Fwd -> (l.left, l.right) | `Bwd -> (l.right, l.left)
          in
          (p, c) :: acc
        | None -> acc)
      m.links []
  in
  let nodes = Aid.Set.elements (atoms m) in
  (* acyclicity via DFS colouring *)
  let adj = Hashtbl.create 64 in
  List.iter
    (fun (p, c) ->
      Hashtbl.replace adj p (c :: Option.value ~default:[] (Hashtbl.find_opt adj p)))
    directed_edges;
  let colour = Hashtbl.create 64 in
  let rec acyclic_from n =
    match Hashtbl.find_opt colour n with
    | Some `Done -> true
    | Some `Active -> false
    | None ->
      Hashtbl.replace colour n `Active;
      let ok =
        List.for_all acyclic_from
          (Option.value ~default:[] (Hashtbl.find_opt adj n))
      in
      Hashtbl.replace colour n `Done;
      ok
  in
  let acyclic = List.for_all acyclic_from nodes in
  (* coherence on the undirected view *)
  let uadj = Hashtbl.create 64 in
  List.iter
    (fun (p, c) ->
      Hashtbl.replace uadj p (c :: Option.value ~default:[] (Hashtbl.find_opt uadj p));
      Hashtbl.replace uadj c (p :: Option.value ~default:[] (Hashtbl.find_opt uadj c)))
    directed_edges;
  let coherent =
    match nodes with
    | [] -> false
    | first :: _ ->
      let seen = Hashtbl.create 64 in
      let rec bfs = function
        | [] -> ()
        | n :: rest ->
          if Hashtbl.mem seen n then bfs rest
          else begin
            Hashtbl.replace seen n ();
            bfs (Option.value ~default:[] (Hashtbl.find_opt uadj n) @ rest)
          end
      in
      bfs [ first ];
      Hashtbl.length seen = List.length nodes
  in
  (* unique root: exactly one atom without incoming edge, and it is m.root *)
  let with_in =
    List.fold_left (fun s (_, c) -> Aid.Set.add c s) Aid.Set.empty directed_edges
  in
  let roots = List.filter (fun n -> not (Aid.Set.mem n with_in)) nodes in
  acyclic && coherent && roots = [ m.root ]

(** The full correctness predicate [mv_graph(m, md)] of Def. 6. *)
let mv_graph db desc m = instance_md_graph desc m && total db desc m
