(** Molecule derivation — the function [m_dom] of Def. 6 read
    operationally: the structure is a template laid over the atom
    networks; per root atom, hierarchical join along the branches until
    the leaves; diamonds include an atom only if every incoming edge
    supplies a contained, linked parent. *)

open Mad_store

type stats = { mutable atoms_visited : int; mutable links_traversed : int }

val stats : unit -> stats

val derive_one : ?stats:stats -> Database.t -> Mdesc.t -> Aid.t -> Molecule.t
(** The molecule rooted at the given root-type atom. *)

val m_dom : ?stats:stats -> Database.t -> Mdesc.t -> Molecule.t list
(** One molecule per root-type atom, in identity order. *)
