(** Molecule derivation — the function [m_dom] of Def. 6 read
    operationally: the structure is a template laid over the atom
    networks; per root atom, hierarchical join along the branches until
    the leaves; diamonds include an atom only if every incoming edge
    supplies a contained, linked parent.

    Two equivalent implementations: the {e scalar} walk over the
    adjacency index, and the {e bitset kernel} ({!Mad_kernel}) over a
    CSR snapshot, optionally parallel across root atoms.  Bulk
    derivations default to the kernel ([MAD_KERNEL=off] disables);
    single-molecule derivation uses it only when a snapshot is already
    warm.  Both produce identical molecules and identical stats. *)

open Mad_store

type stats = {
  atoms_visited : Mad_obs.Metric.counter;
  links_traversed : Mad_obs.Metric.counter;
  registry : Mad_obs.Registry.t option;
}
(** The derivation work counters.  Historically a pair of mutable ints;
    now a shim over {!Mad_obs.Metric} counters so the same numbers flow
    into the observability registry.  Read them with {!atoms_visited} /
    {!links_traversed}. *)

val stats : unit -> stats
(** Fresh standalone counters (not attached to any registry). *)

val stats_in : Mad_obs.Registry.t -> stats
(** Counters registered as ["derive.atoms_visited"] /
    ["derive.links_traversed"], plus per-structure-node accounting
    under ["derive.atoms"]/["derive.links"] with a [node] label —
    the actuals side of EXPLAIN ANALYZE.  Kernel runs additionally
    account ["kernel.runs"] / ["kernel.roots"]. *)

val atoms_visited : stats -> int
val links_traversed : stats -> int

val derive_one :
  ?stats:stats -> ?kernel:bool -> Database.t -> Mdesc.t -> Aid.t -> Molecule.t
(** The molecule rooted at the given root-type atom.  Kernel path only
    when a snapshot is warm at the current epoch, or [~kernel:true]. *)

val derive_roots :
  ?stats:stats ->
  ?kernel:bool ->
  ?par:int ->
  Database.t ->
  Mdesc.t ->
  Aid.t list ->
  Molecule.t list
(** One molecule per given root atom, in input order.  [par] chunks the
    roots across the domain pool (default {!Mad_kernel.Pool.parallelism},
    i.e. [MAD_PAR]); merge order is deterministic. *)

val m_dom :
  ?stats:stats ->
  ?kernel:bool ->
  ?par:int ->
  Database.t ->
  Mdesc.t ->
  Molecule.t list
(** One molecule per root-type atom, in identity order. *)

val derive_one_scalar :
  ?stats:stats -> Database.t -> Mdesc.t -> Aid.t -> Molecule.t
(** The scalar walk, unconditionally — parity baseline and fallback. *)

val m_dom_scalar : ?stats:stats -> Database.t -> Mdesc.t -> Molecule.t list

val describe_path : Database.t -> string
(** The path [m_dom] would take on this database right now, e.g.
    ["kernel (par=4, epoch=17, snapshot=warm)"] — EXPLAIN ANALYZE
    includes it. *)
