(** Molecule derivation — the function [m_dom] of Def. 6 read
    operationally: the structure is a template laid over the atom
    networks; per root atom, hierarchical join along the branches until
    the leaves; diamonds include an atom only if every incoming edge
    supplies a contained, linked parent. *)

open Mad_store

type stats = {
  atoms_visited : Mad_obs.Metric.counter;
  links_traversed : Mad_obs.Metric.counter;
  registry : Mad_obs.Registry.t option;
}
(** The derivation work counters.  Historically a pair of mutable ints;
    now a shim over {!Mad_obs.Metric} counters so the same numbers flow
    into the observability registry.  Read them with {!atoms_visited} /
    {!links_traversed}. *)

val stats : unit -> stats
(** Fresh standalone counters (not attached to any registry). *)

val stats_in : Mad_obs.Registry.t -> stats
(** Counters registered as ["derive.atoms_visited"] /
    ["derive.links_traversed"], plus per-structure-node accounting
    under ["derive.atoms"]/["derive.links"] with a [node] label —
    the actuals side of EXPLAIN ANALYZE. *)

val atoms_visited : stats -> int
val links_traversed : stats -> int

val derive_one : ?stats:stats -> Database.t -> Mdesc.t -> Aid.t -> Molecule.t
(** The molecule rooted at the given root-type atom. *)

val m_dom : ?stats:stats -> Database.t -> Mdesc.t -> Molecule.t list
(** One molecule per root-type atom, in identity order. *)
