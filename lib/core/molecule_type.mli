(** Molecule types (Def. 7): name, molecule-type description and
    occurrence, carried in the coordinates of the database types the
    description mentions (the result-set view of Defs. 9-10); the
    [materialized] field holds the propagation outcome that Theorems
    2-3 quantify over. *)

open Mad_store
module Smap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type materialization = {
  mdesc : Mdesc.t;  (** description over the propagated types *)
  node_map : string Smap.t;  (** source node -> propagated atom type *)
  link_map : string Smap.t;  (** source link -> propagated link type *)
  atom_map : Aid.t Aid.Map.t;  (** source atom -> propagated copy *)
  mocc : Molecule.t list;  (** occurrence over the propagated types *)
  strategy : [ `Shared | `Copied ];
      (** [`Shared]: one copy per distinct source atom (sharing
          preserved); [`Copied]: per-molecule copies (the unconditional
          Def. 9 fallback) *)
}

type t = {
  name : string;
  desc : Mdesc.t;
  attr_proj : string list Smap.t;
      (** node -> attributes visible after molecule projection; absent
          nodes expose all attributes *)
  occ : Molecule.t list;
  materialized : materialization option;
}

val v :
  ?attr_proj:string list Smap.t ->
  ?materialized:materialization ->
  name:string ->
  desc:Mdesc.t ->
  Molecule.t list ->
  t

val name : t -> string
val desc : t -> Mdesc.t
val occ : t -> Molecule.t list
val cardinality : t -> int

val visible_attrs : Database.t -> t -> string -> string list
val attr_visible : t -> string -> string -> bool

val find_by_root : t -> Aid.t -> Molecule.t option

val compatible : t -> t -> bool
(** Def. 10's "same description" lifted to molecule types: same
    structure over the same types with the same visible attributes. *)

val molecule_set : t -> Molecule.Set.t
val pp_summary : Format.formatter -> t -> unit
