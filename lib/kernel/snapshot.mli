(** CSR adjacency snapshots of a {!Mad_store.Database}.

    The store's adjacency index ([Aid.Set.t] per atom per link type) is
    ideal for mutation but pointer-chasing for traversal.  A snapshot
    freezes it into flat arrays:

    - a {e type index} per atom type — the ascending identity array,
      giving every atom a dense index [0..n-1];
    - per link type and direction, a compressed-sparse-row matrix over
      those dense indices ([offs]/[cols] int arrays, rows and row
      contents ascending).

    Snapshots are immutable and safe to read from any domain.  They are
    built lazily (a type index or CSR materialises on first use) and
    cached per database keyed on the {!Mad_store.Database.epoch}: any
    mutation moves the epoch, so a stale snapshot can never be
    observed.

    When the database is delta-tracked ({!Delta.track}) the next
    {!of_db} after a mutation {e repairs} the prior snapshot instead
    of rebuilding it: untouched type indices and CSR matrices are
    shared outright, touched ones are patched with the window's
    compacted link/atom verdicts (counted by [snapshot.delta_applied]
    and journaled as [snapshot.delta] recorder events).  When no
    window is available — untracked database, schema op, patch volume
    over {!Delta.max_patches} — it falls back to the full lazy
    rebuild (counted by [snapshot.rebuild]).  The cache holds at most
    one snapshot per live database (the latest epoch; superseded
    epochs are evicted on insert) in a small LRU. *)

open Mad_store

type csr = {
  offs : int array;  (** row start offsets, length [rows + 1] *)
  cols : int array;  (** dense partner indices, ascending per row *)
}

type tindex = private {
  ids : Aid.t array;  (** ascending; position = dense index *)
}

type t

val of_db : Database.t -> t
(** The snapshot of [db] at its current epoch — cached (small LRU keyed
    on physical database identity), built fresh after any mutation.
    Call from the orchestrating domain only; the returned snapshot may
    then be shared with workers. *)

val peek : Database.t -> t option
(** The cached snapshot at the current epoch, if one exists — never
    builds.  The one-shot derivation paths use this: a kernel run is
    only worth a snapshot when one is already warm. *)

val epoch : t -> int
(** The database epoch the snapshot was taken at. *)

val tindex : t -> string -> tindex
(** Type index of the named atom type (memoised). *)

val cardinal : tindex -> int

val idx_of : tindex -> Aid.t -> int
(** Dense index of an identity (binary search), [-1] when absent. *)

val csr : t -> string -> dir:[ `Fwd | `Bwd ] -> csr
(** CSR matrix of a link type (memoised).  [`Fwd]: rows are the left
    end's type index, columns the right end's; [`Bwd] the transpose. *)

val invalidate : Database.t -> unit
(** Drop any cached snapshot of [db] (epoch movement already prevents
    stale reads; this just releases memory early — and with it the
    delta-apply source, so the next {!of_db} rebuilds). *)

val rebuild : Database.t -> t
(** A fresh, lazily-built snapshot at the current epoch, bypassing the
    cache and the delta path entirely — the from-scratch baseline the
    delta parity tests compare against. *)

val materialized : t -> string list * (string * bool) list
(** The entries this snapshot has materialised (sorted): type-index
    atom types and [(link type, fwd?)] CSR keys.  Delta-applied
    snapshots materialise exactly their predecessor's entries. *)
