(** The domain pool — see the interface for the contract. *)

let max_workers = 7

(* Requests above the hardware's recommended domain count are clamped:
   extra domains only contend for the same cores (on the single-core
   CI sandbox, MAD_PAR=4 made the kernel ~3x slower than scalar).
   Each clamped request bumps [pool.clamped] in the default registry
   so the capping is visible in exported metrics. *)
let clamp_counter =
  Mad_obs.Once.make (fun () ->
      Mad_obs.Registry.counter
        (Mad_obs.Obs.registry (Mad_obs.Obs.default ()))
        "pool.clamped")

let clamp requested =
  let cap = Domain.recommended_domain_count () in
  if requested > cap then begin
    Mad_obs.Metric.incr (Mad_obs.Once.force clamp_counter);
    cap
  end
  else requested

let parallelism () =
  match Sys.getenv_opt "MAD_PAR" with
  | Some s -> begin
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> clamp n
    | Some _ | None -> Domain.recommended_domain_count ()
  end
  | None -> Domain.recommended_domain_count ()

type pool = {
  m : Mutex.t;
  work_cv : Condition.t;  (** signalled when a job is queued / shutdown *)
  jobs : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable n_workers : int;
}

(* set inside workers so a parallel operation reached from within one
   (e.g. a derivation inside a parallel restriction) runs sequentially
   instead of deadlocking on its own pool; 0 = not a pool worker,
   1..max_workers = stable worker slot (the per-domain busy-time
   gauges and trace tracks key on it) *)
let worker_ix = Domain.DLS.new_key (fun () -> 0)
let worker_index () = Domain.DLS.get worker_ix
let in_worker () = worker_index () > 0

let worker p ix () =
  Domain.DLS.set worker_ix ix;
  let rec loop () =
    Mutex.lock p.m;
    let rec next () =
      if p.stop then None
      else
        match Queue.take_opt p.jobs with
        | Some j -> Some j
        | None ->
          Condition.wait p.work_cv p.m;
          next ()
    in
    let job = next () in
    Mutex.unlock p.m;
    match job with
    | None -> ()
    | Some j ->
      (* jobs carry their own exception capture; this is a backstop *)
      (try j () with _ -> ());
      loop ()
  in
  loop ()

let the_pool =
  lazy
    (let p =
       {
         m = Mutex.create ();
         work_cv = Condition.create ();
         jobs = Queue.create ();
         stop = false;
         domains = [];
         n_workers = 0;
       }
     in
     at_exit (fun () ->
         Mutex.lock p.m;
         p.stop <- true;
         Condition.broadcast p.work_cv;
         Mutex.unlock p.m;
         List.iter Domain.join p.domains);
     p)

(* under p.m *)
let ensure_workers p wanted =
  let wanted = min wanted max_workers in
  while p.n_workers < wanted do
    p.domains <- Domain.spawn (worker p (p.n_workers + 1)) :: p.domains;
    p.n_workers <- p.n_workers + 1
  done

let run_chunks ?par n f =
  let par = match par with Some k -> clamp k | None -> parallelism () in
  let par = min par n in
  if par <= 1 || in_worker () then begin
    if n > 0 then f 0 n
  end
  else begin
    let p = Lazy.force the_pool in
    Mutex.lock p.m;
    ensure_workers p (par - 1);
    let par = min par (p.n_workers + 1) in
    Mutex.unlock p.m;
    if par <= 1 then f 0 n
    else begin
      let base = n / par and rem = n mod par in
      let chunk i =
        let lo = (i * base) + min i rem in
        (lo, lo + base + if i < rem then 1 else 0)
      in
      let pending = ref (par - 1) in
      let failed = ref None in
      let done_cv = Condition.create () in
      let run lo hi =
        try f lo hi
        with e ->
          Mutex.lock p.m;
          (match !failed with None -> failed := Some e | Some _ -> ());
          Mutex.unlock p.m
      in
      for i = 1 to par - 1 do
        let lo, hi = chunk i in
        let job () =
          run lo hi;
          Mutex.lock p.m;
          decr pending;
          if !pending = 0 then Condition.broadcast done_cv;
          Mutex.unlock p.m
        in
        Mutex.lock p.m;
        Queue.add job p.jobs;
        Condition.signal p.work_cv;
        Mutex.unlock p.m
      done;
      let lo, hi = chunk 0 in
      run lo hi;
      Mutex.lock p.m;
      while !pending > 0 do
        Condition.wait done_cv p.m
      done;
      Mutex.unlock p.m;
      match !failed with Some e -> raise e | None -> ()
    end
  end
