(** Delta-maintenance patch log — see the interface for the contract. *)

open Mad_store

let enabled () =
  match Sys.getenv_opt "MAD_DELTA" with
  | Some ("off" | "0" | "no" | "false") -> false
  | Some _ | None -> true

let forced_max : int option ref = ref None

let max_patches () =
  match !forced_max with
  | Some n -> n
  | None -> begin
    match Sys.getenv_opt "MAD_DELTA_MAX" with
    | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 4096
    end
    | None -> 4096
  end

let set_max_patches n = forced_max := n

(* One raw patch, in op order.  [Attr] is kept only so the buffer
   length reflects the raw op volume; it never dirties a structure. *)
type patch =
  | P_link of { lt : string; left : Aid.t; right : Aid.t; add : bool }
  | P_atom of { atype : string; id : Aid.t; add : bool }
  | P_attr
  | P_schema

(* The per-database log: a bounded FIFO of (epoch, patch).  Epochs are
   contiguous — the tap fires on every emit — so the buffer covers
   exactly (base, last].  Overflow drops the oldest entries and
   advances [base]: old windows become unanswerable (None), recent
   ones stay exact. *)
type log = {
  mutable base : int;  (** epochs <= base are not covered *)
  buf : (int * patch) Queue.t;
}

(* Buffer bound: large enough that a log survives a burst well past
   the delta threshold (so the threshold verdict, not the overflow,
   decides), small enough to bound memory per live database. *)
let buf_cap = 16384

let patch_of_op (op : Database.op) =
  match op with
  | Database.Op_add_link { lt; left; right } ->
    P_link { lt; left; right; add = true }
  | Database.Op_remove_link { lt; left; right } ->
    P_link { lt; left; right; add = false }
  | Database.Op_insert_atom { atype; id; _ } -> P_atom { atype; id; add = true }
  | Database.Op_delete_atom { atype; id } -> P_atom { atype; id; add = false }
  | Database.Op_set_attr _ -> P_attr
  | Database.Op_define_atom_type _ | Database.Op_define_link_type _
  | Database.Op_drop_atom_type _ | Database.Op_drop_link_type _ ->
    P_schema

let record l epoch op =
  Queue.add (epoch, patch_of_op op) l.buf;
  while Queue.length l.buf > buf_cap do
    let e, _ = Queue.pop l.buf in
    l.base <- max l.base e
  done

(* Tracked databases: a small assoc list keyed on physical identity.
   The tap closure owns the log, so the log lives and dies with its
   database; this list only answers [tracked]/[window] lookups and is
   bounded so a test suite churning through databases cannot grow it
   (an evicted database keeps feeding its orphaned log — bounded by
   [buf_cap] — and is simply no longer delta-maintained). *)
let tracked_cap = 8
let tracked_logs : (Database.t * log) list ref = ref []

let find_log db =
  List.find_opt (fun (db', _) -> db' == db) !tracked_logs |> Option.map snd

let tracked db = find_log db <> None

let track db =
  if enabled () && not (tracked db) then begin
    let l = { base = Database.epoch db; buf = Queue.create () } in
    Database.add_tap db (fun epoch op -> record l epoch op);
    tracked_logs :=
      (db, l)
      :: List.filteri (fun i _ -> i < tracked_cap - 1) !tracked_logs
  end

(* ------------------------------------------------------------------ *)
(* Windows: compaction on read                                          *)

type window = {
  w_links : (string, (Aid.t * Aid.t, bool) Hashtbl.t) Hashtbl.t;
  w_atoms : (string, (Aid.t, bool) Hashtbl.t) Hashtbl.t;
  w_count : int;  (** raw patches in the range *)
}

let window db ~from_epoch ~to_epoch =
  if not (enabled ()) then None
  else
    match find_log db with
    | None -> None
    | Some l ->
      if from_epoch < l.base || to_epoch < from_epoch then None
      else begin
        let w_links = Hashtbl.create 8 and w_atoms = Hashtbl.create 8 in
        let count = ref 0 in
        let schema = ref false in
        (* last-wins compaction: Queue iterates oldest first, and
           [Hashtbl.replace] keeps the final verdict per key *)
        Queue.iter
          (fun (e, p) ->
            if e > from_epoch && e <= to_epoch then begin
              incr count;
              match p with
              | P_link { lt; left; right; add } ->
                let tbl =
                  match Hashtbl.find_opt w_links lt with
                  | Some t -> t
                  | None ->
                    let t = Hashtbl.create 16 in
                    Hashtbl.replace w_links lt t;
                    t
                in
                Hashtbl.replace tbl (left, right) add
              | P_atom { atype; id; add } ->
                let tbl =
                  match Hashtbl.find_opt w_atoms atype with
                  | Some t -> t
                  | None ->
                    let t = Hashtbl.create 16 in
                    Hashtbl.replace w_atoms atype t;
                    t
                in
                Hashtbl.replace tbl id add
              | P_attr -> ()
              | P_schema -> schema := true
            end)
          l.buf;
        if !schema || !count > max_patches () then None
        else Some { w_links; w_atoms; w_count = !count }
      end

let touches_link w lt = Hashtbl.mem w.w_links lt
let touches_atype w at = Hashtbl.mem w.w_atoms at

let link_patches w lt =
  match Hashtbl.find_opt w.w_links lt with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let atom_patches w at =
  match Hashtbl.find_opt w.w_atoms at with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let patch_count w = w.w_count
