(** Fixed-capacity bitsets over dense atom indices.

    The derivation kernel works in the index space of a
    {!Snapshot.tindex}, where a set of atoms of one type is a set of
    small integers — a [Bytes] of bits.  Membership and insertion are
    single byte operations, and the conjunctive diamond rule of Def. 6
    becomes a bytewise AND ({!inter_into}). *)

type t

val create : int -> t
(** [create n] is the empty set over capacity [n] (indices [0..n-1]). *)

val capacity : t -> int
(** Rounded up to the allocation granularity (whole bytes). *)

val set : t -> int -> unit
val unset : t -> int -> unit
val mem : t -> int -> bool

val inter_into : t -> t -> unit
(** [inter_into dst src] replaces [dst] with [dst ∩ src] — the bitwise
    AND realising the "every incoming edge" conjunction on diamond
    nodes.  Both sets must have the same capacity. *)

val count : t -> int
(** Population count (table-driven, one lookup per byte). *)

val iter : t -> (int -> unit) -> unit
(** Members in ascending order; skips empty bytes. *)

val clear : t -> unit
(** Remove every member.  O(capacity/8) — the kernel prefers unsetting
    just the members it tracked when the set is sparse. *)
