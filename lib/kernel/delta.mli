(** The delta-maintenance patch log: the layer between the store's op
    stream and the kernel's derived caches.

    Any mutation bumps [Database.epoch], which invalidates every CSR
    snapshot and memoized closure — fine for read-mostly traffic,
    fatal for write-heavy serving, where each commit forces full
    rebuilds on the next read.  This module taps the op stream
    ({!Mad_store.Database.add_tap} — the same stream the WAL journal
    hook sees, plus the cascade sub-ops and scratch mutations the
    journal is spared) and accumulates per-epoch patches, so that on
    the next read the consumers can {e repair} their caches:

    - {!Snapshot.of_db} applies compacted link/atom patches to the
      prior CSR in place of a full rebuild;
    - the recursive closure memo re-stamps or partially repairs
      memoized closures whose reachable sets the window misses
      ([Mad_recursive]);
    - MOL session catalogs skip re-deriving molecule types whose
      structure the window does not touch ([Mad_mql.Session.refresh]).

    A {!window} is the compacted view of the patches between two
    epochs.  It is [None] — consumers must rebuild — when the log does
    not cover the range (tracking started later, or the bounded buffer
    overflowed), when the range contains a schema-shaped op, or when
    the patch volume crosses {!max_patches} (past that point replaying
    patches costs more than rebuilding).

    Tracking is per-database and idempotent; the log lives exactly as
    long as its database (the tap closure is owned by the database).
    [MAD_DELTA=off] disables the whole layer. *)

open Mad_store

type window
(** Compacted patches over an epoch range (exclusive-inclusive): per
    link type the last-wins verdict per (left, right) pair, per atom
    type the last-wins verdict per identity. *)

val enabled : unit -> bool
(** False when [MAD_DELTA] is [off]/[0]/[no]/[false]: {!track} is a
    no-op and {!window} always returns [None] (every consumer falls
    back to its rebuild path). *)

val track : Database.t -> unit
(** Start accumulating patches for [db] (idempotent; installs one op
    tap).  Epochs before the call are not covered: a window reaching
    below the tracking start is [None]. *)

val tracked : Database.t -> bool

val window : Database.t -> from_epoch:int -> to_epoch:int -> window option
(** The compacted patches moving [db] from [from_epoch] to [to_epoch]
    (patches with epoch in [(from_epoch, to_epoch]]).  [None] when the
    log cannot prove it saw every op in the range, when the range
    contains a schema op, or when it holds more than {!max_patches}
    raw patches.  [from_epoch = to_epoch] yields an empty window. *)

val touches_link : window -> string -> bool
(** Some link of the named type was added or removed in the window. *)

val touches_atype : window -> string -> bool
(** Some atom of the named type was inserted or deleted in the window
    (attribute updates do not count: they cannot change any derived
    {e structure}). *)

val link_patches : window -> string -> ((Aid.t * Aid.t) * bool) list
(** Per (left, right) pair of the named link type, the compacted
    verdict: [true] = present after the window, [false] = absent.
    Pairs the window did not touch are not listed. *)

val atom_patches : window -> string -> (Aid.t * bool) list
(** Per identity of the named atom type, the compacted verdict. *)

val patch_count : window -> int
(** Raw (pre-compaction) patches in the window — the volume the
    threshold compares against. *)

val max_patches : unit -> int
(** The patch-volume threshold: [MAD_DELTA_MAX] when set to a positive
    integer (default 4096), overridden by {!set_max_patches}. *)

val set_max_patches : int option -> unit
(** Test hook: force the threshold ([None] restores the environment
    default). *)
