(** The bitset derivation kernel: [m_dom] (Def. 6) over a CSR
    {!Snapshot}, optionally chunked across the {!Pool}.

    The kernel is schema-agnostic: it takes a {e plan} — the molecule
    structure lowered to dense node/edge indices — and returns raw
    identity arrays; the core library compiles descriptions down and
    lifts results back into molecules, keeping this layer free of any
    dependency on the algebra.

    Semantics replicate the scalar derivation exactly, including the
    work accounting: per molecule, one visited atom for the root plus
    the included-set cardinality per non-root node, and one traversed
    link per CSR row element scanned during the reach pass. *)

open Mad_store

type edge_plan = {
  e_link : string;
  e_from : int;  (** plan index of the source node *)
  e_fwd : bool;  (** true when the source plays the link's left role *)
}

type node_plan = {
  n_type : string;  (** atom-type name *)
  n_ins : edge_plan array;  (** empty exactly for the root (index 0) *)
}

type plan = { p_nodes : node_plan array }
(** Topological order, root first — each edge's [e_from] precedes its
    node. *)

type mol = {
  m_root : Aid.t;
  m_atoms : Aid.t array array;
      (** per plan node (root included), ascending identities;
          explicitly empty components stay present *)
  m_links : (string * Aid.t * Aid.t) list;
      (** links actually used, as (link type, left, right) *)
}

type node_stats = {
  st_atoms : int array;  (** per plan node, aggregated over all roots *)
  st_links : int array;
}

val run_roots :
  ?par:int -> Snapshot.t -> plan -> Aid.t array -> mol array * node_stats
(** One molecule per root identity (atoms of the root node's type), in
    input order.  [par > 1] chunks the roots across the {!Pool};
    results and stats are merged deterministically, identical to the
    sequential run.  Unknown root identities are an [Invalid_argument]
    error. *)

(** {1 Closure kernel}

    Reflexive link types cannot appear in a plain structure (Def. 5);
    their transitive expansion — parts explosion / where-used — is the
    recursive extension's fixpoint, which the kernel runs as a BFS by
    level over one CSR matrix with a bitset member set. *)

type closure = {
  c_atoms : Aid.t array;  (** members in first-reach order, root first *)
  c_depths : int array;  (** expansion depth per member, root 0 *)
  c_pairs : (Aid.t * Aid.t) list;
      (** (expanded atom, partner) per traversed row element, in
          traversal orientation; partners already contained included,
          exactly like the scalar fixpoint *)
  c_visited : int;  (** scalar-parity atoms-visited count *)
  c_traversed : int;  (** scalar-parity links-traversed count *)
}

val closure :
  ?max_depth:int ->
  ?with_pairs:bool ->
  Snapshot.t ->
  link:string ->
  fwd:bool ->
  atype:string ->
  Aid.t ->
  closure
(** Least fixpoint of one-step expansion from the root atom along the
    reflexive link type ([fwd]: left-to-right role, the sub-component
    view). *)

val closure_roots :
  ?max_depth:int ->
  ?with_pairs:bool ->
  Snapshot.t ->
  link:string ->
  fwd:bool ->
  atype:string ->
  Aid.t array ->
  closure array
(** [closure] for every root, in input order, sharing one set of
    scratch buffers (bitset, frontier queues) across all roots — the
    batched form [m_dom] uses so per-root allocation does not dominate
    small closures.  [~with_pairs:false] leaves [c_pairs] empty for
    callers that obtain the used links elsewhere (the memoized DAG
    path) and only need members, depths, and the work counts. *)
