(** Bytes-backed bitsets — see the interface for the design notes. *)

type t = Bytes.t

let create n = Bytes.make ((n + 7) lsr 3) '\000'
let capacity t = Bytes.length t lsl 3

let set t i =
  let j = i lsr 3 in
  Bytes.unsafe_set t j
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t j) lor (1 lsl (i land 7))))

let unset t i =
  let j = i lsr 3 in
  Bytes.unsafe_set t j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t j) land lnot (1 lsl (i land 7)) land 0xff))

let mem t i =
  Char.code (Bytes.unsafe_get t (i lsr 3)) land (1 lsl (i land 7)) <> 0

let inter_into dst src =
  if Bytes.length dst <> Bytes.length src then
    invalid_arg "Mad_kernel.Bitset.inter_into: capacity mismatch";
  for j = 0 to Bytes.length dst - 1 do
    Bytes.unsafe_set dst j
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst j)
         land Char.code (Bytes.unsafe_get src j)))
  done

let popcount =
  let tbl = Bytes.create 256 in
  for b = 0 to 255 do
    let rec bits n = if n = 0 then 0 else (n land 1) + bits (n lsr 1) in
    Bytes.set tbl b (Char.chr (bits b))
  done;
  tbl

let count t =
  let n = ref 0 in
  for j = 0 to Bytes.length t - 1 do
    n :=
      !n + Char.code (Bytes.unsafe_get popcount (Char.code (Bytes.unsafe_get t j)))
  done;
  !n

let iter t f =
  for j = 0 to Bytes.length t - 1 do
    let b = Char.code (Bytes.unsafe_get t j) in
    if b <> 0 then
      for k = 0 to 7 do
        if b land (1 lsl k) <> 0 then f ((j lsl 3) lor k)
      done
  done

let clear t = Bytes.fill t 0 (Bytes.length t) '\000'
