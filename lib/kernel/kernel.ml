(** The bitset derivation kernel — see the interface for semantics. *)

open Mad_store

type edge_plan = { e_link : string; e_from : int; e_fwd : bool }
type node_plan = { n_type : string; n_ins : edge_plan array }
type plan = { p_nodes : node_plan array }

type mol = {
  m_root : Aid.t;
  m_atoms : Aid.t array array;
  m_links : (string * Aid.t * Aid.t) list;
}

type node_stats = { st_atoms : int array; st_links : int array }

(* ------------------------------------------------------------------ *)
(* Plan preparation: resolve every type index and CSR once, on the
   calling domain — snapshots memoise through (non-thread-safe) hash
   tables, so workers must only ever see the resolved arrays.          *)

type pedge = {
  pe_link : string;
  pe_from : int;
  pe_fwd : bool;
  pe_csr : Snapshot.csr;
  pe_from_ids : Aid.t array;
}

type pnode = { pn_ids : Aid.t array; pn_ins : pedge array }

let prepare snap plan =
  Array.map
    (fun n ->
      let ids = (Snapshot.tindex snap n.n_type).ids in
      let ins =
        Array.map
          (fun e ->
            {
              pe_link = e.e_link;
              pe_from = e.e_from;
              pe_fwd = e.e_fwd;
              pe_csr =
                Snapshot.csr snap e.e_link ~dir:(if e.e_fwd then `Fwd else `Bwd);
              pe_from_ids =
                (Snapshot.tindex snap plan.p_nodes.(e.e_from).n_type).ids;
            })
          n.n_ins
      in
      { pn_ids = ids; pn_ins = ins })
    plan.p_nodes

(* ------------------------------------------------------------------ *)
(* Per-chunk work state, reused across the chunk's roots               *)

type work = {
  w_sets : int array array;  (** per node: included dense indices *)
  w_lens : int array;
  w_bits : Bitset.t array;  (** membership companion of [w_sets] *)
  w_bsets : int array array;  (** diamond nodes: per-edge candidate list *)
  w_bbits : Bitset.t option array;
}

let make_work pnodes =
  let n = Array.length pnodes in
  {
    w_sets = Array.map (fun pn -> Array.make (max 1 (Array.length pn.pn_ids)) 0) pnodes;
    w_lens = Array.make n 0;
    w_bits = Array.map (fun pn -> Bitset.create (Array.length pn.pn_ids)) pnodes;
    w_bsets =
      Array.map
        (fun pn ->
          if Array.length pn.pn_ins >= 2 then
            Array.make (max 1 (Array.length pn.pn_ids)) 0
          else [||])
        pnodes;
    w_bbits =
      Array.map
        (fun pn ->
          if Array.length pn.pn_ins >= 2 then
            Some (Bitset.create (Array.length pn.pn_ids))
          else None)
        pnodes;
  }

(* evaluate one root; fills w_sets/w_lens, appends to [out_links],
   accumulates reach-pass stats into [st_atoms]/[st_links] *)
let eval pnodes work root_idx out_links st_atoms st_links =
  work.w_sets.(0).(0) <- root_idx;
  work.w_lens.(0) <- 1;
  for j = 1 to Array.length pnodes - 1 do
    let pn = pnodes.(j) in
    let ins = pn.pn_ins in
    let bits = work.w_bits.(j) in
    let cand = work.w_sets.(j) in
    let single = Array.length ins = 1 in
    let na = ref 0 in
    let scanned = ref 0 in
    (* reach along the first edge; with a single in-edge the included
       set is exactly the union of the rows, so the used links can be
       recorded in the same scan *)
    let e0 = ins.(0) in
    let parents = work.w_sets.(e0.pe_from) in
    for pi = 0 to work.w_lens.(e0.pe_from) - 1 do
      let p = parents.(pi) in
      let lo = e0.pe_csr.offs.(p) and hi = e0.pe_csr.offs.(p + 1) in
      scanned := !scanned + (hi - lo);
      let p_raw = e0.pe_from_ids.(p) in
      for k = lo to hi - 1 do
        let c = e0.pe_csr.cols.(k) in
        if single then begin
          let c_raw = pn.pn_ids.(c) in
          let left, right =
            if e0.pe_fwd then (p_raw, c_raw) else (c_raw, p_raw)
          in
          out_links := (e0.pe_link, left, right) :: !out_links
        end;
        if not (Bitset.mem bits c) then begin
          Bitset.set bits c;
          cand.(!na) <- c;
          incr na
        end
      done
    done;
    if not single then begin
      (* diamond: AND in every further in-edge's reach set (Def. 6's
         conjunctive [contained]) *)
      let bbits = Option.get work.w_bbits.(j) in
      let bcand = work.w_bsets.(j) in
      for ei = 1 to Array.length ins - 1 do
        let e = ins.(ei) in
        let nb = ref 0 in
        let parents = work.w_sets.(e.pe_from) in
        for pi = 0 to work.w_lens.(e.pe_from) - 1 do
          let p = parents.(pi) in
          let lo = e.pe_csr.offs.(p) and hi = e.pe_csr.offs.(p + 1) in
          scanned := !scanned + (hi - lo);
          for k = lo to hi - 1 do
            let c = e.pe_csr.cols.(k) in
            if not (Bitset.mem bbits c) then begin
              Bitset.set bbits c;
              bcand.(!nb) <- c;
              incr nb
            end
          done
        done;
        Bitset.inter_into bits bbits;
        for i = 0 to !nb - 1 do
          Bitset.unset bbits bcand.(i)
        done
      done;
      (* compact the candidate list to the survivors *)
      let k = ref 0 in
      for i = 0 to !na - 1 do
        let c = cand.(i) in
        if Bitset.mem bits c then begin
          cand.(!k) <- c;
          incr k
        end
      done;
      na := !k;
      (* one membership-filtered rescan records the used links (the
         reach pass above already accounted the traversals) *)
      Array.iter
        (fun e ->
          let parents = work.w_sets.(e.pe_from) in
          for pi = 0 to work.w_lens.(e.pe_from) - 1 do
            let p = parents.(pi) in
            let p_raw = e.pe_from_ids.(p) in
            for k = e.pe_csr.offs.(p) to e.pe_csr.offs.(p + 1) - 1 do
              let c = e.pe_csr.cols.(k) in
              if Bitset.mem bits c then begin
                let c_raw = pn.pn_ids.(c) in
                let left, right =
                  if e.pe_fwd then (p_raw, c_raw) else (c_raw, p_raw)
                in
                out_links := (e.pe_link, left, right) :: !out_links
              end
            done
          done)
        ins
    end;
    work.w_lens.(j) <- !na;
    st_atoms.(j) <- st_atoms.(j) + !na;
    st_links.(j) <- st_links.(j) + !scanned
  done

let build_mol pnodes work root_raw links =
  let m_atoms =
    Array.mapi
      (fun j pn ->
        if j = 0 then [| root_raw |]
        else begin
          let a =
            Array.init work.w_lens.(j) (fun i -> pn.pn_ids.(work.w_sets.(j).(i)))
          in
          Array.sort Int.compare a;
          a
        end)
      pnodes
  in
  { m_root = root_raw; m_atoms; m_links = links }

(* unset exactly the bits this root's included sets own; diamond ANDs
   already cleared the dropped candidates *)
let reset_work pnodes work =
  for j = 1 to Array.length pnodes - 1 do
    let bits = work.w_bits.(j) and cand = work.w_sets.(j) in
    for i = 0 to work.w_lens.(j) - 1 do
      Bitset.unset bits cand.(i)
    done;
    work.w_lens.(j) <- 0
  done;
  work.w_lens.(0) <- 0

let dummy_mol = { m_root = -1; m_atoms = [||]; m_links = [] }

(* Per-domain pool utilization: [pool.busy_us{domain=i}] gauges in the
   default registry, written from worker domains via the atomic
   [Metric.add_gauge].  Created once from a non-worker domain — the
   registry's hash table is not thread-safe, so workers only ever see
   the published array (and skip recording in the unlikely event they
   run before the first main-domain kernel run publishes it). *)
let pool_busy : Mad_obs.Metric.gauge array option Atomic.t = Atomic.make None

let pool_busy_gauges () =
  match Atomic.get pool_busy with
  | Some a -> Some a
  | None ->
    if Pool.worker_index () = 0 then begin
      let reg = Mad_obs.Obs.registry (Mad_obs.Obs.default ()) in
      let a =
        Array.init (Pool.max_workers + 1) (fun i ->
            Mad_obs.Registry.gauge reg
              ~labels:[ ("domain", string_of_int i) ]
              "pool.busy_us")
      in
      Atomic.set pool_busy (Some a);
      Some a
    end
    else None

let run_roots ?par snap plan roots =
  let n_nodes = Array.length plan.p_nodes in
  let pnodes = prepare snap plan in
  let root_ti = Snapshot.tindex snap plan.p_nodes.(0).n_type in
  let n = Array.length roots in
  let out = Array.make (max 1 n) dummy_mol in
  let stats = { st_atoms = Array.make n_nodes 0; st_links = Array.make n_nodes 0 } in
  let merge = Mutex.create () in
  let busy = pool_busy_gauges () in
  let t_run = Mad_obs.Monotonic.ticks () in
  Pool.run_chunks ?par n (fun lo hi ->
      let t_chunk = Mad_obs.Monotonic.ticks () in
      let work = make_work pnodes in
      let atoms = Array.make n_nodes 0 and links = Array.make n_nodes 0 in
      for i = lo to hi - 1 do
        let root_raw = roots.(i) in
        let ri = Snapshot.idx_of root_ti root_raw in
        if ri < 0 then
          invalid_arg
            (Printf.sprintf "Mad_kernel.Kernel.run_roots: %s has no atom %d"
               plan.p_nodes.(0).n_type root_raw);
        atoms.(0) <- atoms.(0) + 1;
        let mol_links = ref [] in
        eval pnodes work ri mol_links atoms links;
        out.(i) <- build_mol pnodes work root_raw !mol_links;
        reset_work pnodes work
      done;
      Mutex.lock merge;
      for j = 0 to n_nodes - 1 do
        stats.st_atoms.(j) <- stats.st_atoms.(j) + atoms.(j);
        stats.st_links.(j) <- stats.st_links.(j) + links.(j)
      done;
      Mutex.unlock merge;
      let dur_ns = Mad_obs.Monotonic.ticks () - t_chunk in
      (match busy with
       | Some a ->
         Mad_obs.Metric.add_gauge
           a.(Pool.worker_index ())
           (float_of_int dur_ns /. 1e3)
       | None -> ());
      Mad_obs.Recorder.note Kernel_chunk ~dur_ns ~a:lo ~b:hi ());
  Mad_obs.Recorder.note Kernel_run
    ~dur_ns:(Mad_obs.Monotonic.ticks () - t_run)
    ~label:plan.p_nodes.(0).n_type ~a:n ~b:n_nodes ();
  ((if n = 0 then [||] else out), stats)

(* ------------------------------------------------------------------ *)
(* Closure kernel: BFS by level with a bitset member set               *)

type closure = {
  c_atoms : Aid.t array;
  c_depths : int array;
  c_pairs : (Aid.t * Aid.t) list;
  c_visited : int;
  c_traversed : int;
}

let closure_roots ?max_depth ?(with_pairs = true) snap ~link ~fwd ~atype roots
    =
  let ti = Snapshot.tindex snap atype in
  let m = Snapshot.csr snap link ~dir:(if fwd then `Fwd else `Bwd) in
  let n = Snapshot.cardinal ti in
  (* scratch shared across roots: per-root allocation would dominate
     the many small closures an [m_dom] runs *)
  let bits = Bitset.create n in
  let members = Array.make (max 1 n) 0 in
  let depths = Array.make (max 1 n) 0 in
  let fa = ref (Array.make (max 1 n) 0) in
  let nb = ref (Array.make (max 1 n) 0) in
  let within d = match max_depth with None -> true | Some k -> d <= k in
  let t_run = Mad_obs.Monotonic.ticks () in
  let one root_raw =
    let ri = Snapshot.idx_of ti root_raw in
    if ri < 0 then
      invalid_arg
        (Printf.sprintf "Mad_kernel.Kernel.closure: %s has no atom %d" atype
           root_raw);
    let count = ref 1 in
    members.(0) <- ri;
    depths.(0) <- 0;
    Bitset.set bits ri;
    !fa.(0) <- ri;
    let flen = ref 1 in
    let pairs = ref [] in
    let traversed = ref 0 in
    let visited = ref 1 in
    let depth = ref 1 in
    while !flen > 0 && within !depth do
      let nlen = ref 0 in
      let front = !fa and nxt = !nb in
      for fi = 0 to !flen - 1 do
        let p = front.(fi) in
        let lo = m.offs.(p) and hi = m.offs.(p + 1) in
        traversed := !traversed + (hi - lo);
        let p_raw = ti.ids.(p) in
        for k = lo to hi - 1 do
          let c = m.cols.(k) in
          if with_pairs then pairs := (p_raw, ti.ids.(c)) :: !pairs;
          if not (Bitset.mem bits c) then begin
            Bitset.set bits c;
            members.(!count) <- c;
            depths.(!count) <- !depth;
            incr count;
            incr visited;
            nxt.(!nlen) <- c;
            incr nlen
          end
        done
      done;
      fa := nxt;
      nb := front;
      flen := !nlen;
      incr depth
    done;
    (* reset only the bits this root touched *)
    for i = 0 to !count - 1 do
      Bitset.unset bits members.(i)
    done;
    {
      c_atoms = Array.init !count (fun i -> ti.ids.(members.(i)));
      c_depths = Array.sub depths 0 !count;
      c_pairs = !pairs;
      c_visited = !visited;
      c_traversed = !traversed;
    }
  in
  let out = Array.map one roots in
  Mad_obs.Recorder.note Kernel_run
    ~dur_ns:(Mad_obs.Monotonic.ticks () - t_run)
    ~label:"closure" ~a:(Array.length roots) ~b:1 ();
  out

let closure ?max_depth ?with_pairs snap ~link ~fwd ~atype root_raw =
  (closure_roots ?max_depth ?with_pairs snap ~link ~fwd ~atype [| root_raw |]).(0)
