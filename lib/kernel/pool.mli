(** A fixed pool of worker domains for data-parallel derivation.

    Spawning a domain costs milliseconds, so the kernel keeps a small
    pool alive for the life of the process (joined via [at_exit]) and
    feeds it chunk jobs.  Work is always split into {e contiguous}
    chunks of the input range so that merged results keep the
    deterministic ascending-identity order of the scalar paths. *)

val parallelism : unit -> int
(** Requested parallelism: [MAD_PAR] when set to a positive integer,
    else [Domain.recommended_domain_count ()].  Requests above the
    recommended domain count are clamped to it — extra domains only
    contend for the same cores — and each clamped request bumps the
    [pool.clamped] counter in the default metrics registry. *)

val run_chunks : ?par:int -> int -> (int -> int -> unit) -> unit
(** [run_chunks ~par n f] partitions [\[0, n)] into at most [par]
    contiguous chunks and runs [f lo hi] once per chunk: chunk 0 on the
    calling domain, the others on pool workers.  Blocks until every
    chunk finished; the first chunk exception (if any) is re-raised.

    Runs sequentially when [par <= 1], [n <= 1], or when called from
    inside a pool worker (no nested parallelism).  [par] defaults to
    {!parallelism}[ ()]; explicit values are clamped to
    [Domain.recommended_domain_count ()] (logged via [pool.clamped])
    and capped by the pool size ({!max_workers}[ + 1]). *)

val max_workers : int
(** Upper bound on pool size; workers are spawned on demand up to it. *)

val worker_index : unit -> int
(** Stable slot of the calling domain in the pool: [0] for any domain
    that is not a pool worker (the caller runs chunk 0), [1..]
    {!max_workers} for workers.  The kernel keys its per-domain
    busy-time gauges on it. *)
