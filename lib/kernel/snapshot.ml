(** CSR snapshots — see the interface for the representation. *)

open Mad_store

type csr = { offs : int array; cols : int array }
type tindex = { ids : Aid.t array }

type t = {
  db : Database.t;
  snap_epoch : int;
  tindexes : (string, tindex) Hashtbl.t;
  csrs : (string * bool, csr) Hashtbl.t;  (** key: (link type, fwd?) *)
}

let epoch t = t.snap_epoch
let cardinal (ti : tindex) = Array.length ti.ids

let idx_of (ti : tindex) id =
  let lo = ref 0 and hi = ref (Array.length ti.ids - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = Array.unsafe_get ti.ids mid in
    if v = id then begin
      found := mid;
      lo := !hi + 1
    end
    else if v < id then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let tindex t atname =
  match Hashtbl.find_opt t.tindexes atname with
  | Some ti -> ti
  | None ->
    (* [atom_ids] is an ordered set: elements come out ascending, so
       the dense index is monotone in the identity *)
    let t0 = Mad_obs.Monotonic.ticks () in
    let ids = Array.of_list (Aid.Set.elements (Database.atom_ids t.db atname)) in
    let ti = { ids } in
    Hashtbl.replace t.tindexes atname ti;
    Mad_obs.Recorder.note Snapshot_build
      ~dur_ns:(Mad_obs.Monotonic.ticks () - t0)
      ~label:atname ~a:(Array.length ids) ();
    ti

let build_csr t ltname fwd =
  let st = Database.link_store t.db ltname in
  let e1, e2 = st.lt.Schema.Link_type.ends in
  let rows_t = tindex t (if fwd then e1 else e2) in
  let cols_t = tindex t (if fwd then e2 else e1) in
  let nrows = cardinal rows_t in
  let offs = Array.make (nrows + 1) 0 in
  (* count pass: pairs are ordered by (left, right), so for either
     direction each row's columns are filled in ascending order *)
  Database.Pair_set.iter
    (fun (l, r) ->
      let row = idx_of rows_t (if fwd then l else r) in
      offs.(row + 1) <- offs.(row + 1) + 1)
    st.pairs;
  for i = 1 to nrows do
    offs.(i) <- offs.(i) + offs.(i - 1)
  done;
  let cols = Array.make offs.(nrows) 0 in
  let cursor = Array.copy offs in
  Database.Pair_set.iter
    (fun (l, r) ->
      let row = idx_of rows_t (if fwd then l else r) in
      cols.(cursor.(row)) <- idx_of cols_t (if fwd then r else l);
      cursor.(row) <- cursor.(row) + 1)
    st.pairs;
  { offs; cols }

let csr t ltname ~dir =
  let fwd = match dir with `Fwd -> true | `Bwd -> false in
  match Hashtbl.find_opt t.csrs (ltname, fwd) with
  | Some m -> m
  | None ->
    let t0 = Mad_obs.Monotonic.ticks () in
    let m = build_csr t ltname fwd in
    Hashtbl.replace t.csrs (ltname, fwd) m;
    Mad_obs.Recorder.note Snapshot_build
      ~dur_ns:(Mad_obs.Monotonic.ticks () - t0)
      ~label:(if fwd then ltname else ltname ^ "~")
      ~a:(Array.length m.offs - 1)
      ~b:(Array.length m.cols) ();
    m

(* ------------------------------------------------------------------ *)
(* Cache: a small LRU keyed on physical database identity.  An entry
   whose epoch no longer matches its database is stale and replaced on
   the next [of_db]; [peek] never returns it. *)

let cache_cap = 8
let cache : t list ref = ref []

let of_db db =
  let e = Database.epoch db in
  match List.find_opt (fun s -> s.db == db && s.snap_epoch = e) !cache with
  | Some s ->
    cache := s :: List.filter (fun s' -> s' != s) !cache;
    s
  | None ->
    let s =
      {
        db;
        snap_epoch = e;
        tindexes = Hashtbl.create 8;
        csrs = Hashtbl.create 8;
      }
    in
    let keep = List.filter (fun s' -> s'.db != db) !cache in
    cache := s :: List.filteri (fun i _ -> i < cache_cap - 1) keep;
    s

let peek db =
  let e = Database.epoch db in
  List.find_opt (fun s -> s.db == db && s.snap_epoch = e) !cache

let invalidate db =
  Mad_obs.Recorder.note Snapshot_invalidate ~a:(Database.epoch db) ();
  cache := List.filter (fun s -> s.db != db) !cache
