(** CSR snapshots — see the interface for the representation. *)

open Mad_store

type csr = { offs : int array; cols : int array }
type tindex = { ids : Aid.t array }

type t = {
  db : Database.t;
  snap_epoch : int;
  tindexes : (string, tindex) Hashtbl.t;
  csrs : (string * bool, csr) Hashtbl.t;  (** key: (link type, fwd?) *)
}

let epoch t = t.snap_epoch
let cardinal (ti : tindex) = Array.length ti.ids

let idx_of (ti : tindex) id =
  let lo = ref 0 and hi = ref (Array.length ti.ids - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = Array.unsafe_get ti.ids mid in
    if v = id then begin
      found := mid;
      lo := !hi + 1
    end
    else if v < id then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let tindex t atname =
  match Hashtbl.find_opt t.tindexes atname with
  | Some ti -> ti
  | None ->
    (* [atom_ids] is an ordered set: elements come out ascending, so
       the dense index is monotone in the identity *)
    let t0 = Mad_obs.Monotonic.ticks () in
    let ids = Array.of_list (Aid.Set.elements (Database.atom_ids t.db atname)) in
    let ti = { ids } in
    Hashtbl.replace t.tindexes atname ti;
    Mad_obs.Recorder.note Snapshot_build
      ~dur_ns:(Mad_obs.Monotonic.ticks () - t0)
      ~label:atname ~a:(Array.length ids) ();
    ti

let build_csr t ltname fwd =
  let st = Database.link_store t.db ltname in
  let e1, e2 = st.lt.Schema.Link_type.ends in
  let rows_t = tindex t (if fwd then e1 else e2) in
  let cols_t = tindex t (if fwd then e2 else e1) in
  let nrows = cardinal rows_t in
  let offs = Array.make (nrows + 1) 0 in
  (* count pass: pairs are ordered by (left, right), so for either
     direction each row's columns are filled in ascending order *)
  Database.Pair_set.iter
    (fun (l, r) ->
      let row = idx_of rows_t (if fwd then l else r) in
      offs.(row + 1) <- offs.(row + 1) + 1)
    st.pairs;
  for i = 1 to nrows do
    offs.(i) <- offs.(i) + offs.(i - 1)
  done;
  let cols = Array.make offs.(nrows) 0 in
  let cursor = Array.copy offs in
  Database.Pair_set.iter
    (fun (l, r) ->
      let row = idx_of rows_t (if fwd then l else r) in
      cols.(cursor.(row)) <- idx_of cols_t (if fwd then r else l);
      cursor.(row) <- cursor.(row) + 1)
    st.pairs;
  { offs; cols }

let csr t ltname ~dir =
  let fwd = match dir with `Fwd -> true | `Bwd -> false in
  match Hashtbl.find_opt t.csrs (ltname, fwd) with
  | Some m -> m
  | None ->
    let t0 = Mad_obs.Monotonic.ticks () in
    let m = build_csr t ltname fwd in
    Hashtbl.replace t.csrs (ltname, fwd) m;
    Mad_obs.Recorder.note Snapshot_build
      ~dur_ns:(Mad_obs.Monotonic.ticks () - t0)
      ~label:(if fwd then ltname else ltname ^ "~")
      ~a:(Array.length m.offs - 1)
      ~b:(Array.length m.cols) ();
    m

(* ------------------------------------------------------------------ *)
(* Delta maintenance: apply a compacted patch window to the prior
   snapshot's materialized entries instead of rebuilding them. *)

let delta_metrics =
  Mad_obs.Once.make (fun () ->
      let reg = Mad_obs.Obs.registry (Mad_obs.Obs.default ()) in
      ( Mad_obs.Registry.counter reg "snapshot.delta_applied",
        Mad_obs.Registry.counter reg "snapshot.rebuild" ))

(* Old dense index -> new dense index over two ascending id arrays,
   [-1] for ids the new index dropped.  Monotone (both inputs
   ascending), so a CSR row mapped through it stays ascending. *)
let index_map (old_ids : Aid.t array) (new_ids : Aid.t array) =
  let n_old = Array.length old_ids and n_new = Array.length new_ids in
  let map = Array.make (max 1 n_old) (-1) in
  let j = ref 0 in
  for i = 0 to n_old - 1 do
    while !j < n_new && new_ids.(!j) < old_ids.(i) do
      incr j
    done;
    if !j < n_new && new_ids.(!j) = old_ids.(i) then map.(i) <- !j
  done;
  map

(* Patch one CSR: map the old rows/columns through the new type
   indices, drop the window's removed pairs, merge in the added ones
   (dedup — a pair dropped and re-added inside the window is in both
   the old matrix and the add list). *)
let patch_csr (old : csr) ~fwd ~verdicts ~(rt_old : tindex) ~(ct_old : tindex)
    ~(rt_new : tindex) ~(ct_new : tindex) =
  let row_map = index_map rt_old.ids rt_new.ids in
  let col_map = index_map ct_old.ids ct_new.ids in
  let n_old = Array.length rt_old.ids and n_new = Array.length rt_new.ids in
  let adds : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let drops : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ((l, r), add) ->
      let row_raw, col_raw = if fwd then (l, r) else (r, l) in
      let j = idx_of rt_new row_raw and c = idx_of ct_new col_raw in
      (* an endpoint absent from the new index means the atom is gone;
         its pairs cannot survive in either direction, so the verdict
         is moot (the row/column mapping already drops them) *)
      if j >= 0 && c >= 0 then
        if add then
          Hashtbl.replace adds j
            (c :: Option.value ~default:[] (Hashtbl.find_opt adds j))
        else Hashtbl.replace drops (j, c) ())
    verdicts;
  let rows = Array.make (max 1 n_new) None in
  (* rows surviving from the old matrix: map, filter drops, merge adds *)
  for i = 0 to n_old - 1 do
    let j = row_map.(i) in
    if j >= 0 then begin
      let mapped = ref [] in
      for k = old.offs.(i + 1) - 1 downto old.offs.(i) do
        let c = col_map.(old.cols.(k)) in
        if c >= 0 && not (Hashtbl.mem drops (j, c)) then mapped := c :: !mapped
      done;
      let add_l =
        List.sort_uniq compare
          (Option.value ~default:[] (Hashtbl.find_opt adds j))
      in
      (* merge-dedup two ascending lists *)
      let rec merge a b acc =
        match (a, b) with
        | [], rest | rest, [] -> List.rev_append acc rest
        | x :: a', y :: b' ->
          if x < y then merge a' b (x :: acc)
          else if y < x then merge a b' (y :: acc)
          else merge a' b' (x :: acc)
      in
      rows.(j) <- Some (merge !mapped add_l [])
    end
  done;
  (* brand-new rows (atoms inserted in the window): adds only *)
  for j = 0 to n_new - 1 do
    if rows.(j) = None then
      rows.(j) <-
        Some
          (List.sort_uniq compare
             (Option.value ~default:[] (Hashtbl.find_opt adds j)))
  done;
  let offs = Array.make (n_new + 1) 0 in
  for j = 0 to n_new - 1 do
    offs.(j + 1) <-
      offs.(j) + (match rows.(j) with Some l -> List.length l | None -> 0)
  done;
  let cols = Array.make offs.(n_new) 0 in
  for j = 0 to n_new - 1 do
    match rows.(j) with
    | None -> ()
    | Some l -> List.iteri (fun k c -> cols.(offs.(j) + k) <- c) l
  done;
  { offs; cols }

let fresh_tindex db atname =
  { ids = Array.of_list (Aid.Set.elements (Database.atom_ids db atname)) }

(* The delta path: a new snapshot whose materialized entries are the
   prior snapshot's, shared where the window misses them, patched
   where it touches them.  Lazy entries stay lazy. *)
let delta_apply (prior : t) db e w =
  let t0 = Mad_obs.Monotonic.ticks () in
  let snap =
    { db; snap_epoch = e; tindexes = Hashtbl.create 8; csrs = Hashtbl.create 8 }
  in
  Hashtbl.iter
    (fun name ti ->
      Hashtbl.replace snap.tindexes name
        (if Delta.touches_atype w name then fresh_tindex db name else ti))
    prior.tindexes;
  let entries = ref 0 in
  Hashtbl.iter
    (fun (ltname, fwd) m ->
      incr entries;
      let st = Database.link_store db ltname in
      let e1, e2 = st.lt.Schema.Link_type.ends in
      let rt_name = if fwd then e1 else e2 in
      let ct_name = if fwd then e2 else e1 in
      if
        (not (Delta.touches_link w ltname))
        && (not (Delta.touches_atype w rt_name))
        && not (Delta.touches_atype w ct_name)
      then Hashtbl.replace snap.csrs (ltname, fwd) m
      else begin
        let old_ti name =
          match Hashtbl.find_opt prior.tindexes name with
          | Some ti -> ti
          | None -> fresh_tindex db name  (* unreachable: build_csr forces both *)
        in
        let m' =
          patch_csr m ~fwd
            ~verdicts:(Delta.link_patches w ltname)
            ~rt_old:(old_ti rt_name) ~ct_old:(old_ti ct_name)
            ~rt_new:(tindex snap rt_name) ~ct_new:(tindex snap ct_name)
        in
        Hashtbl.replace snap.csrs (ltname, fwd) m'
      end)
    prior.csrs;
  let applied, _ = Mad_obs.Once.force delta_metrics in
  Mad_obs.Metric.incr applied;
  Mad_obs.Recorder.note Snapshot_delta
    ~dur_ns:(Mad_obs.Monotonic.ticks () - t0)
    ~label:"*" ~a:(Delta.patch_count w) ~b:!entries ();
  snap

(* ------------------------------------------------------------------ *)
(* Cache: a small LRU keyed on physical database identity, holding at
   most ONE snapshot per live database — the latest-epoch one.  A
   fresh snapshot evicts its superseded predecessor on insert (after
   consuming it as the delta-apply source), and the LRU bound caps
   what closed databases can retain. *)

let cache_cap = 8
let cache : t list ref = ref []

let rebuild db =
  {
    db;
    snap_epoch = Database.epoch db;
    tindexes = Hashtbl.create 8;
    csrs = Hashtbl.create 8;
  }

let of_db db =
  let e = Database.epoch db in
  let hit = List.find_opt (fun s -> s.db == db) !cache in
  match hit with
  | Some s when s.snap_epoch = e ->
    cache := s :: List.filter (fun s' -> s' != s) !cache;
    s
  | _ ->
    let s =
      match hit with
      | Some prior -> begin
        match Delta.window db ~from_epoch:prior.snap_epoch ~to_epoch:e with
        | Some w -> delta_apply prior db e w
        | None ->
          let _, rebuilt = Mad_obs.Once.force delta_metrics in
          Mad_obs.Metric.incr rebuilt;
          rebuild db
      end
      | None -> rebuild db
    in
    let keep = List.filter (fun s' -> s'.db != db) !cache in
    cache := s :: List.filteri (fun i _ -> i < cache_cap - 1) keep;
    s

let peek db =
  let e = Database.epoch db in
  List.find_opt (fun s -> s.db == db && s.snap_epoch = e) !cache

let invalidate db =
  Mad_obs.Recorder.note Snapshot_invalidate ~a:(Database.epoch db) ();
  cache := List.filter (fun s -> s.db != db) !cache

let materialized t =
  ( Hashtbl.fold (fun k _ acc -> k :: acc) t.tindexes [] |> List.sort compare,
    Hashtbl.fold (fun k _ acc -> k :: acc) t.csrs [] |> List.sort compare )
