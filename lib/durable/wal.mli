(** The write-ahead log file: length-prefixed, CRC-32-checksummed
    records.  A record is durable iff its full frame is on disk and
    the checksum matches; anything else at the end of the file is a
    torn tail that {!read} reports (and recovery drops) instead of
    failing. *)

val crc32 : string -> int
(** CRC-32 (IEEE polynomial) of the string. *)

val header_bytes : int
(** Frame overhead per record: u32 length + u32 checksum. *)

val frame : string -> string
(** A payload's on-disk frame. *)

type writer

val create :
  ?faults:Faults.t ->
  ?obs:Mad_obs.Obs.t ->
  ?sync:bool ->
  truncate:bool ->
  string ->
  writer
(** Open the log at the path for appending ([truncate] starts it
    over).  [sync] (default false) fsyncs after every append.  Bytes
    written land in the context's [wal.append_bytes] counter, fsync
    durations in its [wal.fsync_us] histogram; every append is routed
    through the optional fault plan. *)

val append : writer -> string -> unit
(** Append one record.  May raise [Err.Mad_error] ([Faults.Fail_append]
    injected — nothing written) or [Faults.Crash] (simulated death,
    possibly after a partial write). *)

val fsync : writer -> unit
(** Flush and fsync, recording the duration. *)

val flush_writer : writer -> unit
val close : writer -> unit

val records : writer -> int
(** Records appended through this writer. *)

type tail =
  | Clean
  | Torn of { bytes_dropped : int }
      (** trailing bytes that do not form a whole checksummed record *)

val read : string -> string list * tail
(** All durable records of the log at the path, in append order, plus
    the state of its tail.  A missing file is an empty clean log. *)
