(** The write-ahead log file: length-prefixed, checksummed records.

    Framing, per record:
    {v
    +----------------+----------------+------------------+
    | length (u32 LE)| crc32 (u32 LE) | payload bytes    |
    +----------------+----------------+------------------+
    v}
    The CRC-32 (IEEE polynomial) covers the payload only; the length
    field is validated against the remaining file size.  A record is
    durable iff its full frame is on disk and the checksum matches —
    anything else at the end of the file is a {e torn tail}, which
    {!read} reports (and recovery drops) instead of failing.

    The writer appends each frame with a single [output] call followed
    by a channel flush — an appended record reaches the OS and so
    survives process death; {!fsync} (group commit, or [sync] mode) is
    the separate power-loss boundary.  Appended bytes count into the
    [wal.append_bytes] counter and fsync durations into the
    [wal.fsync_us] histogram of the observability context the writer
    was given, and every append routes through an optional
    fault-injection plan ({!Faults}). *)

open Mad_store

(* --- CRC-32 (IEEE), table-driven ------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* --- framing -------------------------------------------------------- *)

let header_bytes = 8

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

(* --- writer --------------------------------------------------------- *)

type writer = {
  path : string;
  tag : string;  (** [basename path]; labels flight-recorder events *)
  oc : out_channel;
  sync : bool;  (** fsync after every append *)
  faults : Faults.t option;
  append_bytes : Mad_obs.Metric.counter;
  fsync_us : Mad_obs.Metric.histogram;
  mutable records : int;  (** records appended through this writer *)
}

let create ?faults ?(obs = Mad_obs.Obs.noop) ?(sync = false) ~truncate path =
  let flags =
    Open_wronly :: Open_creat :: Open_binary
    :: (if truncate then [ Open_trunc ] else [ Open_append ])
  in
  {
    path;
    tag = Filename.basename path;
    oc = open_out_gen flags 0o644 path;
    sync;
    faults;
    append_bytes = Mad_obs.Obs.counter obs "wal.append_bytes";
    fsync_us =
      Mad_obs.Obs.histogram ~bounds:Mad_obs.Metric.latency_bounds_us obs
        "wal.fsync_us";
    records = 0;
  }

let fsync w =
  flush w.oc;
  let t0 = !Mad_obs.Span.clock () in
  Unix.fsync (Unix.descr_of_out_channel w.oc);
  let dt = !Mad_obs.Span.clock () -. t0 in
  Mad_obs.Metric.observe w.fsync_us (dt *. 1e6);
  Mad_obs.Recorder.note Wal_fsync
    ~dur_ns:(int_of_float (dt *. 1e9))
    ~label:w.tag ()

let append w payload =
  let framed = frame payload in
  let write_all () =
    output_string w.oc framed;
    (* hand the frame to the OS at once: an appended record must
       survive process death (crash = lost channel buffer); fsync is
       the separate power-loss boundary *)
    flush w.oc;
    Mad_obs.Metric.add w.append_bytes (String.length framed);
    Mad_obs.Recorder.note Wal_append ~label:w.tag ~a:(String.length framed) ();
    w.records <- w.records + 1;
    if w.sync then fsync w
  in
  match w.faults with
  | None -> write_all ()
  | Some f -> begin
    match Faults.next f ~len:(String.length framed) with
    | `Write ->
      write_all ();
      Faults.wrote f
    | `Fail -> Err.failf "%s: injected append failure (record not written)"
                 (Filename.basename w.path)
    | `Short n ->
      (* a torn record: a prefix of the frame reaches the file, then
         the process dies *)
      output_substring w.oc framed 0 n;
      flush w.oc;
      raise (Faults.Crash (Printf.sprintf "short write (%d of %d bytes)"
                             n (String.length framed)))
    | `Crash -> raise (Faults.Crash "crash between appends")
  end

let flush_writer w = flush w.oc

let close w =
  flush w.oc;
  close_out w.oc

let records w = w.records

(* --- reader --------------------------------------------------------- *)

type tail =
  | Clean
  | Torn of { bytes_dropped : int }
      (** trailing bytes that do not form a whole checksummed record *)

(** All durable records of the log at [path] plus the state of its
    tail.  A missing file is an empty, clean log.  Scanning stops at
    the first frame that is incomplete or fails its checksum: that
    frame and everything after it is the torn tail. *)
let read path =
  if not (Sys.file_exists path) then ([], Clean)
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> In_channel.input_all ic)
    in
    let total = String.length data in
    let rec go off acc =
      if off = total then (List.rev acc, Clean)
      else if total - off < header_bytes then
        (List.rev acc, Torn { bytes_dropped = total - off })
      else
        let len = Int32.to_int (String.get_int32_le data off) in
        if len < 0 || off + header_bytes + len > total then
          (List.rev acc, Torn { bytes_dropped = total - off })
        else
          let payload = String.sub data (off + header_bytes) len in
          let crc =
            Int32.to_int (String.get_int32_le data (off + 4)) land 0xffffffff
          in
          if crc32 payload <> crc then
            (List.rev acc, Torn { bytes_dropped = total - off })
          else go (off + header_bytes + len) (payload :: acc)
    in
    go 0 []
  end
