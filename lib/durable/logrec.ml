(** Logical DML records: the payload codec between {!Database.op} and
    the write-ahead log.

    One op is one single-line payload, in the word syntax of
    [Serialize] (quoted strings, bracketed lists, [@n] identities), so
    a WAL is as greppable as a .mad dump:
    {v
    defatom part name:STRING weight:INT
    deflink in box part n:m
    insert part @17 'axle' 3
    link in @2 @17
    unlink in @2 @17
    set part @17 1 4
    delete part @17
    dropatom part
    droplink in
    v}
    Replay applies ops through the public [Database] mutators, so the
    same eager checks that guarded the original operation guard its
    replay — a record that no longer applies is a corruption, not a
    silent skip. *)

open Mad_store

let encode (op : Database.op) =
  let buf = Buffer.create 64 in
  let word s = Buffer.add_char buf ' '; Buffer.add_string buf s in
  let id i = word ("@" ^ string_of_int i) in
  (match op with
   | Database.Op_define_atom_type at ->
     Buffer.add_string buf "defatom";
     word at.Schema.Atom_type.name;
     List.iter
       (fun (a : Schema.Attr.t) ->
         word (a.name ^ ":" ^ Serialize.domain_to_string a.domain))
       at.Schema.Atom_type.attrs
   | Database.Op_define_link_type lt ->
     Buffer.add_string buf "deflink";
     word lt.Schema.Link_type.name;
     word (fst lt.Schema.Link_type.ends);
     word (snd lt.Schema.Link_type.ends);
     word (Serialize.card_to_string lt.Schema.Link_type.card)
   | Database.Op_drop_atom_type name ->
     Buffer.add_string buf "dropatom";
     word name
   | Database.Op_drop_link_type name ->
     Buffer.add_string buf "droplink";
     word name
   | Database.Op_insert_atom { atype; id = aid; values } ->
     Buffer.add_string buf "insert";
     word atype;
     id aid;
     List.iter (fun v -> word (Serialize.value_to_string v)) values
   | Database.Op_delete_atom { atype; id = aid } ->
     Buffer.add_string buf "delete";
     word atype;
     id aid
   | Database.Op_add_link { lt; left; right } ->
     Buffer.add_string buf "link";
     word lt;
     id left;
     id right
   | Database.Op_remove_link { lt; left; right } ->
     Buffer.add_string buf "unlink";
     word lt;
     id left;
     id right
   | Database.Op_set_attr { atype; id = aid; index; value } ->
     Buffer.add_string buf "set";
     word atype;
     id aid;
     word (string_of_int index);
     word (Serialize.value_to_string value));
  Buffer.contents buf

let parse_attr recno spec =
  match String.index_opt spec ':' with
  | Some i ->
    Schema.Attr.v
      (String.sub spec 0 i)
      (Serialize.parse_domain recno
         (String.sub spec (i + 1) (String.length spec - i - 1)))
  | None -> Err.failf "record %d: bad attribute spec %s" recno spec

(** Decode record number [recno] (quoted in error messages). *)
let decode ~recno payload : Database.op =
  match Serialize.split_line payload recno with
  | "defatom" :: name :: attrs ->
    Database.Op_define_atom_type
      (Schema.Atom_type.v name (List.map (parse_attr recno) attrs))
  | [ "deflink"; name; e1; e2; card ] ->
    Database.Op_define_link_type
      (Schema.Link_type.v ~card:(Serialize.parse_card recno card) name (e1, e2))
  | [ "dropatom"; name ] -> Database.Op_drop_atom_type name
  | [ "droplink"; name ] -> Database.Op_drop_link_type name
  | "insert" :: atype :: aid :: values ->
    Database.Op_insert_atom
      {
        atype;
        id = Serialize.parse_id recno aid;
        values = List.map (Serialize.parse_value recno) values;
      }
  | [ "delete"; atype; aid ] ->
    Database.Op_delete_atom { atype; id = Serialize.parse_id recno aid }
  | [ "delete"; aid ] ->
    (* legacy record (pre atype): replay only needs the identity — the
       cascade resolves the type itself — so decode with it blank *)
    Database.Op_delete_atom { atype = ""; id = Serialize.parse_id recno aid }
  | [ "link"; lt; l; r ] ->
    Database.Op_add_link
      { lt; left = Serialize.parse_id recno l;
        right = Serialize.parse_id recno r }
  | [ "unlink"; lt; l; r ] ->
    Database.Op_remove_link
      { lt; left = Serialize.parse_id recno l;
        right = Serialize.parse_id recno r }
  | [ "set"; atype; aid; index; value ] ->
    Database.Op_set_attr
      {
        atype;
        id = Serialize.parse_id recno aid;
        index =
          (match int_of_string_opt index with
           | Some i when i >= 0 -> i
           | Some _ | None ->
             Err.failf "record %d: bad attribute index %s" recno index);
        value = Serialize.parse_value recno value;
      }
  | word :: _ -> Err.failf "record %d: unknown log record %s" recno word
  | [] -> Err.failf "record %d: empty log record" recno

(** Apply one decoded op, re-running the same checked store mutation
    that produced it. *)
let apply db (op : Database.op) =
  match op with
  | Database.Op_define_atom_type at -> ignore (Database.define_atom_type db at)
  | Database.Op_define_link_type lt -> ignore (Database.define_link_type db lt)
  | Database.Op_drop_atom_type name -> Database.drop_atom_type db name
  | Database.Op_drop_link_type name -> Database.drop_link_type db name
  | Database.Op_insert_atom { atype; id; values } ->
    ignore (Database.insert_atom_exact db ~atype ~id values)
  | Database.Op_delete_atom { id; _ } -> Database.delete_atom db id
  | Database.Op_add_link { lt; left; right } ->
    Database.add_link db lt ~left ~right
  | Database.Op_remove_link { lt; left; right } ->
    Database.remove_link db lt ~left ~right
  | Database.Op_set_attr { atype; id; index; value } ->
    Database.set_attribute db ~atype id ~index value
