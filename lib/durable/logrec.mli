(** Logical DML records: the payload codec between {!Database.op} and
    the write-ahead log.  One op is one single-line payload in the
    word syntax of [Serialize]. *)

open Mad_store

val encode : Database.op -> string

val decode : recno:int -> string -> Database.op
(** Parse a payload; [recno] is quoted in [Err.Mad_error] messages. *)

val apply : Database.t -> Database.op -> unit
(** Re-run the op through the public [Database] mutators, under the
    same eager checks that guarded the original operation.  A record
    that no longer applies raises — corruption, not a silent skip. *)
