(** The durability engine: snapshot + write-ahead log + recovery.

    A data directory holds at most three files:
    {v
    DIR/snapshot.mad   latest snapshot (Serialize dump)
    DIR/wal.log        checksummed log of DML since that snapshot
    DIR/stats.mad      learned optimizer catalog (written by PRIMA)
    v}
    Every store mutation of an opened database is appended to the WAL
    as one logical record {e after} it succeeds in memory (the journal
    hook of {!Database.set_journal}); a snapshot rewrites
    [snapshot.mad] atomically (temp file + fsync + rename) and
    truncates the log.  {!open_dir} is the recovery path: load the
    snapshot, replay the WAL, tolerate a torn final record, and
    re-verify the MAD model's structural invariants ({!Integrity})
    before handing the database back — a recovered database is a
    member of the database domain or the open fails.

    Metrics land in the observability context: [wal.append_bytes] and
    [wal.fsync_us] (from the log writer), [recovery.replayed_records]
    (from recovery). *)

open Mad_store

let snapshot_basename = "snapshot.mad"
let wal_basename = "wal.log"
let stats_basename = "stats.mad"
let digest_basename = "digest.mad"
let timeline_basename = "timeline.mad"

let snapshot_path dir = Filename.concat dir snapshot_basename
let wal_path dir = Filename.concat dir wal_basename
let stats_path_of_dir dir = Filename.concat dir stats_basename
let digest_path_of_dir dir = Filename.concat dir digest_basename
let timeline_path_of_dir dir = Filename.concat dir timeline_basename

(** Does the directory hold durable state already? *)
let exists dir =
  Sys.file_exists (snapshot_path dir) || Sys.file_exists (wal_path dir)

type recovery = {
  snapshot_loaded : bool;
  replayed_records : int;
  torn_tail_bytes : int;  (** 0 = the log ended on a record boundary *)
}

let pp_recovery ppf r =
  Fmt.pf ppf "snapshot %s, %d record(s) replayed%s"
    (if r.snapshot_loaded then "loaded" else "absent")
    r.replayed_records
    (if r.torn_tail_bytes > 0 then
       Printf.sprintf ", torn tail (%d byte(s) dropped)" r.torn_tail_bytes
     else "")

type t = {
  dir : string;
  db : Database.t;
  obs : Mad_obs.Obs.t;
  sync : bool;
  snapshot_every : int option;
  faults : Faults.t option;
  mutable wal : Wal.writer;
  mutable wal_records : int;  (** records in the log since the snapshot *)
  mutable closed : bool;
  recovery : recovery;
}

let db t = t.db
let dir t = t.dir
let recovery t = t.recovery
let stats_path t = stats_path_of_dir t.dir
let digest_path t = digest_path_of_dir t.dir
let timeline_path t = timeline_path_of_dir t.dir
let wal_records t = t.wal_records

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* write [text] to [path] atomically: temp file in the same directory,
   fsync, rename over the target *)
let write_atomically path text =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.of_string text in
      let n = Unix.write fd b 0 (Bytes.length b) in
      if n <> Bytes.length b then
        Err.failf "%s: short write (%d of %d bytes)" tmp n (Bytes.length b);
      Unix.fsync fd);
  Sys.rename tmp path

(* --- recovery ------------------------------------------------------- *)

let replay_wal db dirname =
  let payloads, tail = Wal.read (wal_path dirname) in
  List.iteri
    (fun i payload ->
      let recno = i + 1 in
      (try Logrec.apply db (Logrec.decode ~recno payload)
       with Err.Mad_error msg -> Err.failf "%s: %s" wal_basename msg);
      (* a recovery timeline in the flight recorder: one instant per
         replayed record, so a stalled replay shows where it stopped *)
      Mad_obs.Recorder.note Recovery_replay ~label:wal_basename ~a:recno
        ~b:(String.length payload) ())
    payloads;
  let torn =
    match tail with Wal.Clean -> 0 | Wal.Torn { bytes_dropped } -> bytes_dropped
  in
  (payloads, torn)

let verify dirname db =
  match Integrity.check db with
  | [] -> ()
  | v :: _ ->
    Err.failf "recovery of %s left an invalid database: %a" dirname
      Integrity.pp_violation v

(* roll the log over: close the writer, truncate the file, reopen *)
let restart_wal t =
  Wal.close t.wal;
  t.wal <-
    Wal.create ?faults:t.faults ~obs:t.obs ~sync:t.sync ~truncate:true
      (wal_path t.dir);
  t.wal_records <- 0

let check_open t = if t.closed then Err.failf "durable store %s is closed" t.dir

(** Force a snapshot now: rewrite [snapshot.mad] atomically from the
    live database and truncate the log. *)
let snapshot t =
  check_open t;
  let t0 = Mad_obs.Monotonic.ticks () in
  let records = t.wal_records in
  write_atomically (snapshot_path t.dir) (Serialize.dump t.db);
  restart_wal t;
  Mad_obs.Recorder.note Snapshot_build
    ~dur_ns:(Mad_obs.Monotonic.ticks () - t0)
    ~label:snapshot_basename ~a:records ()

(** Open (or create) the data directory and recover its database.

    Recovery: load [snapshot.mad] if present (else start from a copy
    of [seed], else empty), replay every durable [wal.log] record — a
    torn final record is dropped, not fatal — and re-verify
    {!Integrity} over the result.  A fresh directory is seeded with an
    initial snapshot, so the seed state is durable before the first
    append.  The returned handle journals every subsequent mutation to
    the log; [sync] fsyncs each append (default: the caller groups
    syncs via {!commit}), and [snapshot_every] rolls a snapshot
    automatically once the log holds that many records. *)
let open_dir ?(obs = Mad_obs.Obs.noop) ?(sync = false) ?snapshot_every ?faults
    ?seed dirname =
  (* a bad --data argument must surface as a typed, file-named error
     (the CLI maps [Mad_error] to its documented exit code), not as a
     raw [Unix_error]/[Sys_error] backtrace from deep inside setup *)
  (try mkdirs dirname
   with Unix.Unix_error (e, _, arg) ->
     Err.failf "data directory %s: cannot create%s: %s" dirname
       (if String.equal arg dirname || String.equal arg "" then ""
        else Printf.sprintf " (%s)" arg)
       (Unix.error_message e));
  if not (try Sys.is_directory dirname with Sys_error _ -> false) then
    Err.failf "data directory %s is not a directory" dirname;
  (try Unix.access dirname [ Unix.W_OK; Unix.X_OK ]
   with Unix.Unix_error (e, _, _) ->
     Err.failf "data directory %s is not writable: %s" dirname
       (Unix.error_message e));
  let snap = snapshot_path dirname in
  let fresh = not (exists dirname) in
  let db, snapshot_loaded =
    if Sys.file_exists snap then (Serialize.load_file snap, true)
    else
      match seed with
      | Some d when fresh -> (Database.copy d, false)
      | Some _ | None -> (Database.create (), false)
  in
  if fresh then write_atomically snap (Serialize.dump db);
  let payloads, torn = replay_wal db dirname in
  let replayed = List.length payloads in
  verify dirname db;
  Mad_obs.Metric.add
    (Mad_obs.Obs.counter obs "recovery.replayed_records")
    replayed;
  let t =
    {
      dir = dirname;
      db;
      obs;
      sync;
      snapshot_every;
      faults;
      wal = Wal.create ?faults ~obs ~sync ~truncate:false (wal_path dirname);
      wal_records = replayed;
      closed = false;
      recovery =
        { snapshot_loaded; replayed_records = replayed; torn_tail_bytes = torn };
    }
  in
  (* a torn tail means the file ends in garbage: rewrite the log as
     the durable prefix so new records are not appended after it *)
  if torn > 0 then begin
    restart_wal t;
    List.iter (Wal.append t.wal) payloads;
    Wal.fsync t.wal;
    t.wal_records <- replayed
  end;
  let journal op =
    Wal.append t.wal (Logrec.encode op);
    t.wal_records <- t.wal_records + 1;
    (* rolling a snapshot only reads the database (dump + truncate),
       so the journal cannot re-enter from here *)
    match t.snapshot_every with
    | Some k when t.wal_records >= k -> snapshot t
    | Some _ | None -> ()
  in
  Database.set_journal db (Some journal);
  t

(** Open [dirname] if it holds durable state; otherwise seed it from
    [seed ()] (forced only when needed). *)
let open_or_seed ?obs ?sync ?snapshot_every ?faults ~seed dirname =
  if exists dirname then open_dir ?obs ?sync ?snapshot_every ?faults dirname
  else open_dir ?obs ?sync ?snapshot_every ?faults ~seed:(seed ()) dirname

(* --- steady-state operations ---------------------------------------- *)

(** Group commit: flush and fsync the log.  The REPL calls this after
    every manipulation statement (statement-level durability without
    paying an fsync per record). *)
let commit t =
  check_open t;
  let t0 = Mad_obs.Monotonic.ticks () in
  Wal.fsync t.wal;
  Mad_obs.Recorder.note Group_commit
    ~dur_ns:(Mad_obs.Monotonic.ticks () - t0)
    ~a:t.wal_records ()

(** The raw durability boundary: flush and fsync the log without the
    [Group_commit] journal entry — the cross-session {!Coordinator}
    notes its own batch event around this. *)
let sync t =
  check_open t;
  Wal.fsync t.wal

(** Detach the journal and close the log.  [snapshot] (default false)
    rolls a final snapshot first, leaving an empty log behind. *)
let close ?snapshot:(with_snapshot = false) t =
  if not t.closed then begin
    if with_snapshot then snapshot t;
    Database.set_journal t.db None;
    (try Wal.fsync t.wal with Unix.Unix_error _ -> ());
    Wal.close t.wal;
    t.closed <- true
  end
