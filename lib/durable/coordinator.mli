(** The cross-session group-commit coordinator.

    The single-session autocommit path ([Session.add_on_commit] →
    [Durable.commit]) pays one fsync per statement.  A server running
    N concurrent writer sessions over one WAL can do better: every
    statement appends its records (already serialized by the engine
    lock), then {e waits} here until one batched fsync covers its
    records.  The first waiter becomes the leader and fsyncs; everyone
    who appended before the fsync started is acknowledged by it, so
    under concurrency the fsync count per commit drops below one.

    Positions are WAL record counts ([Durable.wal_records]) — strictly
    monotone while the log is not truncated.  Do not combine with
    [snapshot_every] auto-rolling (which truncates the log
    mid-stream); the server snapshots on shutdown instead.

    Metrics (created against [obs] under [prefix], default
    ["wal.group"]): [<p>.commits], [<p>.fsyncs] counters,
    [<p>.batch] (commits per fsync) and [<p>.wait_us] (commit
    acknowledgement latency) histograms, and a [<p>.waiters] gauge
    (committers currently blocked waiting for a covering fsync — the
    fsync-wait side of the server's contention panel).  Every batch
    also journals a [Recorder.Group_commit] event carrying the covered
    position and the batch size. *)

type t

val create : ?obs:Mad_obs.Obs.t -> ?prefix:string -> sync:(unit -> unit) -> unit -> t
(** [sync] is the physical flush+fsync; it is called outside the
    coordinator lock, by exactly one leader at a time. *)

val for_durable : ?obs:Mad_obs.Obs.t -> ?prefix:string -> Durable.t -> t
(** A coordinator over the store's log ({!Durable.sync}). *)

val wait_durable : t -> int -> unit
(** Block until an fsync covering WAL position [pos] has completed,
    becoming the leader (and fsyncing on everyone's behalf) if no
    fsync is in flight.  Returns immediately when [pos] is already
    durable.  Safe from any domain.  If the leader's [sync] raises,
    every current waiter is woken and the exception propagates to the
    leader's caller (waiters retry with a new leader). *)

val commits : t -> int
(** Commits acknowledged through {!wait_durable}. *)

val fsyncs : t -> int
(** Physical fsync batches issued. *)
