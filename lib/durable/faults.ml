(** Fault injection for the write-ahead log.

    A plan arms one failure at a chosen point in the append sequence:
    the first [after] appends succeed, the next one misbehaves.  Three
    behaviours cover the failure modes a log must survive:

    - [Fail_append]: the write fails cleanly (ENOSPC-style) — nothing
      reaches the file, the caller gets an {!Mad_store.Err.Mad_error},
      the process lives on and later appends succeed.
    - [Short_write]: a random prefix of the framed record reaches the
      file, then the process dies — the torn-record case recovery must
      skip.
    - [Crash_after]: the process dies between appends — the log ends
      on a record boundary.

    Simulated death is the {!Crash} exception: the harness catches it
    where a real deployment would re-exec, then re-opens the data
    directory.  The prefix length of a short write is drawn from an
    RNG seeded with [seed], so every run of a seeded plan tears the
    log at the same byte. *)

exception Crash of string
(** Simulated process death.  Deliberately not an
    [Mad_store.Err.Mad_error]: nothing in the engine catches it. *)

type action =
  | Fail_append  (** clean write failure, process survives *)
  | Short_write  (** partial record hits the disk, then death *)
  | Crash_after  (** death on a record boundary *)

type t = {
  action : action;
  after : int;  (** appends that succeed before the fault fires *)
  rng : Random.State.t;
  mutable appends : int;  (** records fully written so far *)
  mutable fired : bool;
  mutable dead : bool;
}

let create ?(seed = 0) ~after action =
  {
    action;
    after;
    rng = Random.State.make [| seed; after |];
    appends = 0;
    fired = false;
    dead = false;
  }

let durable_appends t = t.appends
let fired t = t.fired

(** Decide the fate of the next append of a [len]-byte framed record.
    Called by the log writer before touching the file. *)
let next t ~len =
  if t.dead then `Crash
  else if (not t.fired) && t.appends >= t.after then begin
    t.fired <- true;
    match t.action with
    | Fail_append -> `Fail
    | Short_write ->
      t.dead <- true;
      (* 0..len-1 bytes land: anything from nothing to all-but-one *)
      `Short (Random.State.int t.rng (max 1 len))
    | Crash_after ->
      t.dead <- true;
      `Crash
  end
  else `Write

(** Notify that a record was fully written. *)
let wrote t = t.appends <- t.appends + 1
