(** Fault injection for the write-ahead log: a seeded plan that makes
    one append fail cleanly ([Fail_append]), tear ([Short_write]) or
    die between records ([Crash_after]).  Simulated process death is
    the {!Crash} exception; the crash-recovery harness catches it and
    re-opens the data directory, as a supervisor would re-exec. *)

exception Crash of string
(** Simulated process death; deliberately not an [Err.Mad_error]. *)

type action =
  | Fail_append  (** clean write failure, process survives *)
  | Short_write  (** partial record hits the disk, then death *)
  | Crash_after  (** death on a record boundary *)

type t

val create : ?seed:int -> after:int -> action -> t
(** A plan whose fault fires on the append following [after]
    successful ones.  [seed] (default 0) fixes the short-write tear
    point, making every run byte-identical. *)

val durable_appends : t -> int
(** Records fully written under this plan — what recovery must
    replay. *)

val fired : t -> bool

(** {1 Writer-side hooks} (used by {!Wal}) *)

val next : t -> len:int -> [ `Write | `Fail | `Short of int | `Crash ]
(** Fate of the next append of a [len]-byte framed record. *)

val wrote : t -> unit
(** Notify that a record was fully written. *)
