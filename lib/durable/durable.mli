(** The durability engine: snapshot + write-ahead log + recovery.

    A data directory holds [snapshot.mad] (latest snapshot),
    [wal.log] (checksummed log of DML since that snapshot) and
    [stats.mad] (the learned optimizer catalog, written by PRIMA).
    {!open_dir} recovers — snapshot, WAL replay with torn-tail
    tolerance, {!Integrity} re-verification — and journals every
    subsequent store mutation back to the log. *)

open Mad_store

val snapshot_basename : string
val wal_basename : string
val stats_basename : string
val digest_basename : string
val timeline_basename : string

val exists : string -> bool
(** Does the directory hold durable state (a snapshot or a log)? *)

val stats_path_of_dir : string -> string
(** Where the learned catalog lives beside the WAL. *)

val digest_path_of_dir : string -> string
(** Where the workload digest store lives beside the WAL. *)

val timeline_path_of_dir : string -> string
(** Where the telemetry timeline ([timeline.mad]) lives beside the
    WAL. *)

type recovery = {
  snapshot_loaded : bool;
  replayed_records : int;
  torn_tail_bytes : int;  (** 0 = the log ended on a record boundary *)
}

val pp_recovery : Format.formatter -> recovery -> unit

type t

val open_dir :
  ?obs:Mad_obs.Obs.t ->
  ?sync:bool ->
  ?snapshot_every:int ->
  ?faults:Faults.t ->
  ?seed:Database.t ->
  string ->
  t
(** Open (or create) the data directory and recover its database:
    load [snapshot.mad] if present (else start from a copy of [seed],
    else empty — a fresh directory is seeded with an initial
    snapshot), replay every durable [wal.log] record (a torn final
    record is dropped, not fatal; the log is rewritten to its durable
    prefix), and re-verify {!Integrity} before handing the database
    back.  Fails with a file-named [Err.Mad_error] when the directory
    cannot be created or is not a writable directory, when the
    snapshot or a durable log record is damaged, or when the
    recovered database violates the model's structural invariants —
    never with a raw [Unix_error]/[Sys_error] backtrace.

    The returned handle journals every subsequent mutation.  [sync]
    (default false) fsyncs each append; [snapshot_every] rolls a
    snapshot automatically once the log holds that many records;
    [faults] arms a fault-injection plan on the log writer.  Metrics
    ([wal.append_bytes], [wal.fsync_us], [recovery.replayed_records])
    land in [obs] (default {!Mad_obs.Obs.noop}). *)

val open_or_seed :
  ?obs:Mad_obs.Obs.t ->
  ?sync:bool ->
  ?snapshot_every:int ->
  ?faults:Faults.t ->
  seed:(unit -> Database.t) ->
  string ->
  t
(** {!open_dir}, forcing the seed thunk only when the directory holds
    no durable state yet. *)

val db : t -> Database.t
val dir : t -> string
val recovery : t -> recovery
val stats_path : t -> string
val digest_path : t -> string
val timeline_path : t -> string

val wal_records : t -> int
(** Records currently in the log (replayed plus appended). *)

val snapshot : t -> unit
(** Rewrite [snapshot.mad] atomically (temp file + fsync + rename)
    from the live database and truncate the log. *)

val commit : t -> unit
(** Group commit: flush and fsync the log.  Statement-level
    durability without an fsync per record. *)

val sync : t -> unit
(** Flush and fsync the log without journaling a [Group_commit]
    recorder event — the cross-session {!Coordinator} wraps this and
    notes its own batch event. *)

val close : ?snapshot:bool -> t -> unit
(** Detach the journal and close the log; [snapshot] (default false)
    rolls a final snapshot first.  Idempotent. *)
