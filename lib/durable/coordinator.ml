(** Cross-session group commit — see the interface for the contract.

    Leader-based batching: committers publish the WAL position their
    statement reached, then wait for [synced] to cover it.  If no
    fsync is in flight the committer elects itself leader, snapshots
    the highest published position, fsyncs {e outside} the lock, and
    wakes everyone.  Statements that append while the leader's fsync
    is in flight queue up and are covered by the next batch — that is
    where the amortization comes from: the slower the disk, the bigger
    the batch. *)

type t = {
  m : Mutex.t;
  cv : Condition.t;  (** signalled when [synced] advances or the leader fails *)
  sync : unit -> unit;
  mutable appended : int;  (** highest WAL position published by a committer *)
  mutable synced : int;  (** highest position covered by a completed fsync *)
  mutable syncing : bool;  (** a leader's fsync is in flight *)
  mutable entered : int;  (** commits that entered {!wait_durable} *)
  mutable batch_base : int;  (** [entered] when the current/last batch formed *)
  commits : Mad_obs.Metric.counter;
  fsyncs : Mad_obs.Metric.counter;
  batch : Mad_obs.Metric.histogram;
  wait_us : Mad_obs.Metric.histogram;
  waiters : Mad_obs.Metric.gauge;
      (** committers currently blocked in {!wait_durable} *)
}

let create ?(obs = Mad_obs.Obs.noop) ?(prefix = "wal.group") ~sync () =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    sync;
    appended = 0;
    synced = 0;
    syncing = false;
    entered = 0;
    batch_base = 0;
    commits = Mad_obs.Obs.counter obs (prefix ^ ".commits");
    fsyncs = Mad_obs.Obs.counter obs (prefix ^ ".fsyncs");
    batch =
      Mad_obs.Obs.histogram obs (prefix ^ ".batch")
        ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |];
    wait_us =
      Mad_obs.Obs.histogram ~bounds:Mad_obs.Metric.latency_bounds_us obs
        (prefix ^ ".wait_us");
    waiters = Mad_obs.Obs.gauge obs (prefix ^ ".waiters");
  }

let for_durable ?obs ?prefix h =
  create ?obs ?prefix ~sync:(fun () -> Durable.sync h) ()

let commits t = Mad_obs.Metric.value t.commits
let fsyncs t = Mad_obs.Metric.value t.fsyncs

let wait_durable t pos =
  let t0 = !Mad_obs.Span.clock () in
  Mad_obs.Metric.add_gauge t.waiters 1.0;
  Mutex.lock t.m;
  t.entered <- t.entered + 1;
  Mad_obs.Metric.incr t.commits;
  if pos > t.appended then t.appended <- pos;
  let rec wait () =
    if t.synced >= pos then ()
    else if t.syncing then begin
      Condition.wait t.cv t.m;
      wait ()
    end
    else begin
      (* leader: fsync the batch published so far on everyone's behalf *)
      t.syncing <- true;
      let target = t.appended in
      let batch_n = t.entered - t.batch_base in
      t.batch_base <- t.entered;
      Mutex.unlock t.m;
      let result = try Ok (t.sync ()) with e -> Error e in
      Mutex.lock t.m;
      t.syncing <- false;
      match result with
      | Ok () ->
        t.synced <- max t.synced target;
        Mad_obs.Metric.incr t.fsyncs;
        Mad_obs.Metric.observe t.batch (float_of_int batch_n);
        Mad_obs.Recorder.note Group_commit ~a:target ~b:batch_n ();
        Condition.broadcast t.cv;
        wait ()
      | Error e ->
        (* wake the waiters so one of them retries as the new leader;
           the failed leader's caller sees the exception *)
        Condition.broadcast t.cv;
        Mutex.unlock t.m;
        raise e
    end
  in
  (match wait () with
   | () -> ()
   | exception e ->
     Mad_obs.Metric.add_gauge t.waiters (-1.0);
     raise e);
  Mutex.unlock t.m;
  Mad_obs.Metric.add_gauge t.waiters (-1.0);
  (* histograms are atomic now: observing outside the lock is safe *)
  Mad_obs.Metric.observe t.wait_us ((!Mad_obs.Span.clock () -. t0) *. 1e6)
