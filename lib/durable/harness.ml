(** The crash-recovery harness: random DML interleaved with simulated
    crashes, with a convergence check at every crash point.

    The workload is a seeded list of abstract DML decisions
    ({!wop}) over a small self-contained schema.  Decisions name their
    targets by {e rank} (the k-th atom of a type, the k-th pair of a
    link type), not by identity, so the same list replays identically
    against any database in the same state — which is what lets one
    dry run predict the exact WAL record sequence every faulted run
    must produce a prefix of.

    {!run} then exercises every crash point: for each [n] in
    [0..records] it re-runs the workload against a fresh data
    directory armed with a fault plan ([Crash_after] and [Short_write]
    alternatives both), catches the simulated death, re-opens the
    directory, and asserts that the recovered database (a) passes
    {!Integrity} (enforced by [open_dir] itself) and (b) equals the
    straight-line reference state after exactly [n] journal records —
    byte-for-byte, via [Serialize.dump].  One extra scenario per seed
    runs crash-free and must converge on the full final state. *)

open Mad_store

(* --- the self-contained workload schema ----------------------------- *)

(** Boxes hold parts (n:m); [next] chains parts 1:1 (cardinality
    rejections are part of the workload: a rejected op must journal
    nothing). *)
let seed_db () =
  let db = Database.create () in
  ignore
    (Database.declare_atom_type db "part"
       [
         Schema.Attr.v "name" Domain.String;
         Schema.Attr.v "weight" Domain.Int;
         Schema.Attr.v "tags" (Domain.List_of Domain.Int);
       ]);
  ignore
    (Database.declare_atom_type db "box"
       [
         Schema.Attr.v "label" (Domain.Enum [ "s"; "m"; "l" ]);
         Schema.Attr.v "cap" Domain.Int;
       ]);
  ignore (Database.declare_link_type db "in" ("box", "part"));
  ignore
    (Database.declare_link_type db ~card:(Some 1, Some 1) "next"
       ("part", "part"));
  let parts =
    List.init 10 (fun i ->
        (Database.insert_atom db ~atype:"part"
           [
             Value.String (Printf.sprintf "p%d" i);
             Value.Int (i * 3);
             Value.List [ Value.Int i ];
           ])
          .Atom.id)
  in
  let boxes =
    List.init 4 (fun i ->
        (Database.insert_atom db ~atype:"box"
           [ Value.String [| "s"; "m"; "l" |].(i mod 3); Value.Int (10 + i) ])
          .Atom.id)
  in
  List.iteri
    (fun i p ->
      Database.add_link db "in" ~left:(List.nth boxes (i mod 4)) ~right:p)
    parts;
  db

(* --- abstract DML decisions ------------------------------------------ *)

type wop =
  | W_insert of string * Value.t list
  | W_delete of string * int  (** rank into the type's occurrence *)
  | W_link of string * int * int  (** ranks into the two end types *)
  | W_unlink of string * int  (** rank into the link type's pairs *)
  | W_set of string * int * int * Value.t  (** type, atom rank, attr index *)

let nth_id db atype rank =
  let ids = Aid.Set.elements (Database.atom_ids db atype) in
  match ids with [] -> None | _ -> Some (List.nth ids (rank mod List.length ids))

(** Apply one decision; rejected operations (cardinality overflow) are
    skipped, exactly as an interactive session would report-and-go-on.
    Returns [true] if the op was attempted against the store. *)
let apply_wop db = function
  | W_insert (atype, values) ->
    ignore (Database.insert_atom db ~atype values);
    true
  | W_delete (atype, rank) -> begin
    match nth_id db atype rank with
    | None -> false
    | Some id ->
      Database.delete_atom db id;
      true
  end
  | W_link (lt, rl, rr) -> begin
    let e1, e2 = (Database.link_type db lt).Schema.Link_type.ends in
    match (nth_id db e1 rl, nth_id db e2 rr) with
    | Some l, Some r when not (Aid.equal l r) ->
      (try Database.add_link db lt ~left:l ~right:r
       with Err.Mad_error _ -> () (* cardinality rejection *));
      true
    | _ -> false
  end
  | W_unlink (lt, rank) -> begin
    match Database.links db lt with
    | [] -> false
    | pairs ->
      let l, r = List.nth pairs (rank mod List.length pairs) in
      Database.remove_link db lt ~left:l ~right:r;
      true
  end
  | W_set (atype, rank, index, value) -> begin
    match nth_id db atype rank with
    | None -> false
    | Some id ->
      Database.set_attribute db ~atype id ~index value;
      true
  end

let gen_ops rng n =
  List.init n (fun i ->
      let rank () = Random.State.int rng 1000 in
      match Random.State.int rng 100 with
      | k when k < 30 ->
        if Random.State.bool rng then
          W_insert
            ( "part",
              [
                Value.String (Printf.sprintf "n%d" i);
                Value.Int (Random.State.int rng 50);
                Value.List [ Value.Int i ];
              ] )
        else
          W_insert
            ( "box",
              [
                Value.String [| "s"; "m"; "l" |].(Random.State.int rng 3);
                Value.Int (Random.State.int rng 30);
              ] )
      | k when k < 60 ->
        W_link
          ((if Random.State.bool rng then "in" else "next"), rank (), rank ())
      | k when k < 75 ->
        if Random.State.bool rng then
          W_set ("part", rank (), 1, Value.Int (Random.State.int rng 99))
        else
          W_set
            ("box", rank (), 0,
             Value.String [| "s"; "m"; "l" |].(Random.State.int rng 3))
      | k when k < 88 ->
        W_unlink ((if Random.State.bool rng then "in" else "next"), rank ())
      | _ ->
        W_delete ((if Random.State.bool rng then "part" else "box"), rank ()))

(* --- the suite ------------------------------------------------------- *)

type report = {
  seed : int;
  ops : int;  (** workload decisions generated *)
  records : int;  (** WAL records the straight-line run produces *)
  scenarios : int;  (** recovery scenarios exercised *)
  torn_recoveries : int;  (** scenarios that recovered past a torn tail *)
  failures : string list;  (** divergence descriptions; [] = converged *)
}

let converged r = r.failures = []

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>crash-recovery: seed %d, %d op(s) -> %d record(s), %d scenario(s), \
     %d torn recover(ies): %s@,%a@]"
    r.seed r.ops r.records r.scenarios r.torn_recoveries
    (if converged r then "converged" else "DIVERGED")
    Fmt.(list ~sep:(any "@,") string)
    r.failures

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(** Run the suite in (a subdirectory per scenario of) [dir], which is
    created and cleaned as needed. *)
let run ?(seed = 0) ?(ops = 60) ~dir () =
  let wops = gen_ops (Random.State.make [| seed |]) ops in
  (* dry run: the straight-line record sequence and, per prefix
     length, the reference state a crash at that point must recover *)
  let records = ref [] in
  let dry = seed_db () in
  Database.set_journal dry
    (Some (fun op -> records := Logrec.encode op :: !records));
  List.iter (fun w -> ignore (apply_wop dry w)) wops;
  Database.set_journal dry None;
  let records = List.rev !records in
  let n_records = List.length records in
  let reference = Array.make (n_records + 1) "" in
  let ref_db = seed_db () in
  List.iteri
    (fun i payload ->
      reference.(i) <- Serialize.dump ref_db;
      Logrec.apply ref_db (Logrec.decode ~recno:(i + 1) payload))
    records;
  reference.(n_records) <- Serialize.dump ref_db;
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
  let scenarios = ref 0 in
  let torn_recoveries = ref 0 in
  let scenario ~label ~crash_at faults =
    incr scenarios;
    let sdir = Filename.concat dir label in
    rm_rf sdir;
    let h = Durable.open_dir ?faults ~seed:(seed_db ()) sdir in
    (match
       List.iter (fun w -> ignore (apply_wop (Durable.db h) w)) wops
     with
     | () -> Durable.close h
     | exception Faults.Crash _ -> () (* simulated death: no close *));
    match Durable.open_dir sdir with
    | exception Err.Mad_error msg -> fail "%s: recovery failed: %s" label msg
    | h2 ->
      let rec_info = Durable.recovery h2 in
      if rec_info.Durable.torn_tail_bytes > 0 then incr torn_recoveries;
      if rec_info.Durable.replayed_records <> crash_at then
        fail "%s: replayed %d record(s), expected %d" label
          rec_info.Durable.replayed_records crash_at;
      let got = Serialize.dump (Durable.db h2) in
      if not (String.equal got reference.(crash_at)) then
        fail "%s: recovered state diverges from the %d-record reference"
          label crash_at;
      Durable.close h2
  in
  for n = 0 to n_records - 1 do
    scenario
      ~label:(Printf.sprintf "kill-%d" n)
      ~crash_at:n
      (Some (Faults.create ~seed ~after:n Faults.Crash_after));
    scenario
      ~label:(Printf.sprintf "torn-%d" n)
      ~crash_at:n
      (Some (Faults.create ~seed ~after:n Faults.Short_write))
  done;
  (* the crash-free scenario: run to completion, close, recover *)
  scenario ~label:"clean" ~crash_at:n_records None;
  {
    seed;
    ops;
    records = n_records;
    scenarios = !scenarios;
    torn_recoveries = !torn_recoveries;
    failures = List.rev !failures;
  }
