(** The crash-recovery harness: a seeded random DML workload over a
    self-contained schema, re-run against a fault plan for {e every}
    crash point, with recovery convergence asserted at each — the
    recovered database must pass [Integrity] and equal the
    straight-line reference state after exactly the durable record
    prefix.  Used by the property tests and by [madql recovery] (the
    CI fault-injection job). *)

open Mad_store

val seed_db : unit -> Database.t
(** The workload's small parts-and-boxes schema, with seed atoms,
    links, and a 1:1 link type so cardinality rejections occur. *)

type wop
(** One abstract DML decision (targets named by rank, not identity, so
    a decision list replays identically against equal states). *)

val gen_ops : Random.State.t -> int -> wop list
val apply_wop : Database.t -> wop -> bool

type report = {
  seed : int;
  ops : int;  (** workload decisions generated *)
  records : int;  (** WAL records the straight-line run produces *)
  scenarios : int;  (** recovery scenarios exercised *)
  torn_recoveries : int;  (** scenarios that recovered past a torn tail *)
  failures : string list;  (** divergence descriptions; [] = converged *)
}

val converged : report -> bool
val pp_report : Format.formatter -> report -> unit

val run : ?seed:int -> ?ops:int -> dir:string -> unit -> report
(** Exercise every crash point of the seeded workload — [Crash_after]
    and [Short_write] at each record boundary, plus one crash-free
    scenario — inside per-scenario subdirectories of [dir]. *)

val rm_rf : string -> unit
(** Recursive delete (scenario-directory hygiene, exposed for the
    tests and the CLI). *)
