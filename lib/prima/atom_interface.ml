(** The atom-oriented interface — the lower of PRIMA's two main
    components (ch. 5: "the basic component provides an atom-oriented
    interface (similar to the functionality of atom-type algebra) for
    the second component that performs molecule processing").

    Every access is counted; the counters are the cost model of the
    benchmark experiments (the paper's prototype measured disk I/O; an
    in-memory reproduction measures the equivalent logical work). *)

open Mad_store

type counters = {
  mutable scans : int;  (** atom-type scans started *)
  mutable atoms_read : int;
  mutable fetches : int;  (** direct accesses by identifier *)
  mutable links_followed : int;
}

let counters () = { scans = 0; atoms_read = 0; fetches = 0; links_followed = 0 }

let reset c =
  c.scans <- 0;
  c.atoms_read <- 0;
  c.fetches <- 0;
  c.links_followed <- 0

let pp_counters ppf c =
  Fmt.pf ppf "scans=%d atoms_read=%d fetches=%d links_followed=%d" c.scans
    c.atoms_read c.fetches c.links_followed

type t = { db : Database.t; c : counters }

let v ?(c = counters ()) db = { db; c }

(** Scan an atom type, optionally filtering with a pushed-down
    qualification (evaluated per atom during the scan). *)
let scan ?pred t atype =
  t.c.scans <- t.c.scans + 1;
  let at = Database.atom_type t.db atype in
  List.filter
    (fun a ->
      t.c.atoms_read <- t.c.atoms_read + 1;
      match pred with None -> true | Some p -> Mad.Qual.eval_atom at a p)
    (Database.atoms t.db atype)

let fetch t ~atype id =
  t.c.fetches <- t.c.fetches + 1;
  Database.get_atom t.db ~atype id

let neighbors t link ~dir id =
  let s = Database.neighbors t.db link ~dir id in
  t.c.links_followed <- t.c.links_followed + Aid.Set.cardinal s;
  s
