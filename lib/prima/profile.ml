(** EXPLAIN ANALYZE for the molecule engine: run a query under a
    private observability context, then line the planner's estimates
    ({!Stats.estimate_detail}) up against the actuals the derivation
    recorded — per structure node, plus the stage timings captured by
    the executor's spans.

    The profiler also bridges the layering gap of [EXPLAIN ANALYZE] in
    MOL: {!Mad_mql.Session} sits below PRIMA and cannot call it, so
    {!install} registers {!analyze_stmt} in the session's hook. *)

module Obs = Mad_obs.Obs
module Span = Mad_obs.Span
module Registry = Mad_obs.Registry
module Json = Mad_obs.Json

type node_report = {
  nr_node : string;
  nr_est_atoms : float;
  nr_est_links : float;
  nr_atoms : int;  (** actual atoms included at this node *)
  nr_links : int;  (** actual link traversals arriving at this node *)
}

type t = {
  plan : Planner.plan;
  est : Stats.estimate;
  actual_roots : int;
  actual_atoms : int;
  actual_links : int;
  nodes : node_report list;
  stages : (string * float) list;  (** executor stage -> duration ms *)
  duration_ms : float;
  counters : Atom_interface.counters;
}

(** Run [q] in a fresh context (its own registry, so the actuals start
    at zero) and pair the recorded work with the plan's estimates.
    [stats] supplies the catalog the estimates come from (default: a
    fresh {!Stats.collect}); pass a refined catalog to see how much an
    adaptive run closed the gap. *)
let analyze ?(optimize = true) ?stats:catalog db (q : Planner.query) =
  let spans = ref [] in
  let sink =
    { Mad_obs.Sink.noop with emit_span = (fun sp -> spans := sp :: !spans) }
  in
  let obs = Obs.create ~tracing:true ~sink () in
  let reg = Obs.registry obs in
  let stats = Mad.Derive.stats_in reg in
  let catalog =
    match catalog with Some c -> c | None -> Stats.collect db
  in
  (* the executor plans under the same catalog the estimates come
     from, so the profiled plan (and its hash) is exactly the one a
     digest-recorded execution of this statement would run *)
  let outcome = Executor.run ~obs ~stats ~catalog ~optimize db q in
  let detail = Stats.estimate_detail catalog outcome.Executor.plan in
  let nodes =
    List.map
      (fun (ne : Stats.node_estimate) ->
        let labels = [ ("node", ne.Stats.ne_node) ] in
        {
          nr_node = ne.Stats.ne_node;
          nr_est_atoms = ne.Stats.ne_atoms;
          nr_est_links = ne.Stats.ne_links;
          nr_atoms = Registry.counter_value reg ~labels "derive.atoms";
          nr_links = Registry.counter_value reg ~labels "derive.links";
        })
      detail.Stats.d_nodes
  in
  let root_span =
    List.find_opt
      (fun (sp : Span.t) -> String.equal sp.Span.name "prima.execute")
      !spans
  in
  let stages, duration_ms =
    match root_span with
    | None -> ([], 0.0)
    | Some sp ->
      ( List.map
          (fun (c : Span.t) -> (c.Span.name, Span.duration_ms c))
          (Span.children sp),
        Span.duration_ms sp )
  in
  {
    plan = outcome.Executor.plan;
    est = detail.Stats.d_est;
    actual_roots =
      List.length (Mad.Molecule_type.occ outcome.Executor.mt);
    actual_atoms = Mad.Derive.atoms_visited stats;
    actual_links = Mad.Derive.links_traversed stats;
    nodes;
    stages;
    duration_ms;
    counters = outcome.Executor.counters;
  }

(* ------------------------------------------------------------------ *)
(* Estimate error, drift, and the feedback edge                         *)

(** Total absolute estimate error of a report: |est - actual| summed
    over roots, per-node atoms and per-node links.  The quantity
    {!Stats.refine} drives down. *)
let error (r : t) =
  List.fold_left
    (fun acc nr ->
      acc
      +. Float.abs (nr.nr_est_atoms -. float_of_int nr.nr_atoms)
      +. Float.abs (nr.nr_est_links -. float_of_int nr.nr_links))
    (Float.abs (r.est.Stats.est_roots -. float_of_int r.actual_roots))
    r.nodes

type drift = {
  dd_node : string;
  dd_metric : string;  (** ["atoms"] or ["links"] *)
  dd_est : float;
  dd_actual : int;
  dd_ratio : float;  (** how far off, as a >= 1 factor *)
}

let pp_drift ppf d =
  Fmt.pf ppf "%s %s est=%.1f actual=%d (%.1fx off)" d.dd_node d.dd_metric
    d.dd_est d.dd_actual d.dd_ratio

(* over/under-estimation factor; both sides are floored at 1 so a
   0-vs-small mismatch does not report an infinite ratio *)
let off_ratio est actual =
  let a = Float.max 1.0 est and b = Float.max 1.0 (float_of_int actual) in
  Float.max a b /. Float.min a b

(** The nodes whose estimate was off by more than [factor] — the
    statements worth re-planning once the catalog has been refined. *)
let drift ?(factor = 2.0) (r : t) =
  List.concat_map
    (fun nr ->
      let check metric est actual =
        let ratio = off_ratio est actual in
        if ratio >= factor then
          [ { dd_node = nr.nr_node; dd_metric = metric; dd_est = est;
              dd_actual = actual; dd_ratio = ratio } ]
        else []
      in
      check "atoms" nr.nr_est_atoms nr.nr_atoms
      @ check "links" nr.nr_est_links nr.nr_links)
    r.nodes

(** Feed this report's actuals back into a catalog
    ({!Stats.refine_actuals} on the per-node records). *)
let refine ?alpha catalog (r : t) =
  Stats.refine_actuals ?alpha catalog r.plan
    (List.map
       (fun nr ->
         { Stats.na_node = nr.nr_node; na_atoms = nr.nr_atoms;
           na_links = nr.nr_links })
       r.nodes)

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

(* the derive structure as an indented tree (diamond nodes appear once,
   at their first parent) with estimated vs. actual work per node *)
let pp_tree ppf (r : t) =
  let desc = r.plan.Planner.derive_desc in
  let report node =
    List.find_opt (fun nr -> String.equal nr.nr_node node) r.nodes
  in
  let seen = Hashtbl.create 8 in
  let rec walk indent via node =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.replace seen node ();
      let prefix = match via with None -> "" | Some l -> "-[" ^ l ^ "]- " in
      (match report node with
       | None -> Fmt.pf ppf "%s%s%s@." indent prefix node
       | Some nr ->
         if String.equal node (Mad.Mdesc.root desc) then
           Fmt.pf ppf
             "%s%s%s  (roots est=%.1f actual=%d; atoms est=%.1f actual=%d)@."
             indent prefix node r.est.Stats.est_roots r.actual_roots
             nr.nr_est_atoms nr.nr_atoms
         else
           Fmt.pf ppf
             "%s%s%s  (atoms est=%.1f actual=%d; links est=%.1f actual=%d)@."
             indent prefix node nr.nr_est_atoms nr.nr_atoms nr.nr_est_links
             nr.nr_links);
      List.iter
        (fun (e : Mad.Mdesc.edge) ->
          walk (indent ^ "  ") (Some e.Mad.Mdesc.link) e.Mad.Mdesc.to_at)
        (Mad.Mdesc.out_edges desc node)
    end
  in
  walk "" None (Mad.Mdesc.root desc)

let pp ppf (r : t) =
  Fmt.pf ppf "%a" Planner.pp r.plan;
  pp_tree ppf r;
  Fmt.pf ppf "totals: roots est=%.1f actual=%d; atoms est=%.1f actual=%d; \
              links est=%.1f actual=%d@."
    r.est.Stats.est_roots r.actual_roots r.est.Stats.est_atoms r.actual_atoms
    r.est.Stats.est_links r.actual_links;
  Fmt.pf ppf "access: %a@." Atom_interface.pp_counters r.counters;
  if r.stages <> [] then
    Fmt.pf ppf "stages: %a (total %.2f ms)@."
      Fmt.(
        list ~sep:(any ", ") (fun ppf (n, ms) -> Fmt.pf ppf "%s %.2f ms" n ms))
      r.stages r.duration_ms

let to_string r = Format.asprintf "%a" pp r

let to_json (r : t) =
  let node_json nr =
    Json.Obj
      [
        ("node", Json.Str nr.nr_node);
        ("est_atoms", Json.Num nr.nr_est_atoms);
        ("actual_atoms", Json.Num (float_of_int nr.nr_atoms));
        ("est_links", Json.Num nr.nr_est_links);
        ("actual_links", Json.Num (float_of_int nr.nr_links));
      ]
  in
  Json.Obj
    [
      ("query", Json.Str r.plan.Planner.query.Planner.name);
      ("est_roots", Json.Num r.est.Stats.est_roots);
      ("actual_roots", Json.Num (float_of_int r.actual_roots));
      ("est_atoms", Json.Num r.est.Stats.est_atoms);
      ("actual_atoms", Json.Num (float_of_int r.actual_atoms));
      ("est_links", Json.Num r.est.Stats.est_links);
      ("actual_links", Json.Num (float_of_int r.actual_links));
      ("nodes", Json.List (List.map node_json r.nodes));
      ( "stages",
        Json.Obj (List.map (fun (n, ms) -> (n, Json.Num ms)) r.stages) );
      ("duration_ms", Json.Num r.duration_ms);
    ]

(* ------------------------------------------------------------------ *)
(* The MOL hook                                                         *)

(** The physical query a plain restricted/projected SELECT maps to, if
    any (set combinators and recursion stay with the algebra layer). *)
let query_of_stmt db (stmt : Mad_mql.Ast.stmt) =
  match stmt with
  | Mad_mql.Ast.Query
      (Mad_mql.Ast.Q
         {
           select;
           from =
             ( Mad_mql.Ast.From_anon s
             | Mad_mql.Ast.From_named_def (_, s) );
           where;
         }) ->
    let desc = Mad_mql.Translate.resolve_structure db s in
    let select =
      match select with
      | Mad_mql.Ast.All -> None
      | Mad_mql.Ast.Items items -> Some items
    in
    Some { Planner.name = "q"; desc; where; select }
  | _ -> None

let analyze_stmt (session : Mad_mql.Session.t) stmt =
  match query_of_stmt session.Mad_mql.Session.db stmt with
  | Some q ->
    Format.asprintf "%a" pp
      (analyze session.Mad_mql.Session.db q)
  | None ->
    (* not a physical-plan query: report the algebra plan and the
       session-level actuals of executing it *)
    let s = session.Mad_mql.Session.stats in
    let a0 = Mad.Derive.atoms_visited s
    and l0 = Mad.Derive.links_traversed s in
    let t0 = !Span.clock () in
    ignore (Mad_mql.Session.eval_stmt session stmt);
    let ms = (!Span.clock () -. t0) *. 1000. in
    Format.asprintf
      "%s@.actual: %d atoms visited, %d links traversed (%.2f ms)"
      (Mad_mql.Session.explain_stmt session stmt)
      (Mad.Derive.atoms_visited s - a0)
      (Mad.Derive.links_traversed s - l0)
      ms

(** Register {!analyze_stmt} as the session layer's [EXPLAIN ANALYZE]
    engine. *)
let install () = Mad_mql.Session.analyze_hook := Some analyze_stmt
