(** A paged storage simulation beneath the atom-oriented interface.

    The paper's PRIMA prototype [HMMS87] was a real DBMS on real pages;
    its follow-up work made much of *molecule clustering* — placing the
    atoms of a molecule on the same pages so that derivation touches
    few of them.  This module reproduces the mechanism: atoms live in
    fixed-capacity pages behind an LRU buffer pool that counts logical
    and physical reads, and two placement strategies are offered:

    - [`By_type]: atoms of each atom type packed sequentially (the
      relational-style segment-per-relation layout);
    - [`By_molecule desc]: atoms assigned in molecule-derivation order
      for the given structure, so each molecule's atoms are
      co-located (shared atoms stay on the page of their first
      molecule).

    Link (adjacency) information is stored with the atom that owns it,
    as PRIMA stored links physically with their atoms: traversing an
    atom's links touches that atom's page only. *)

open Mad_store

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                          *)

module Pool = struct
  type t = {
    capacity : int;  (** frames *)
    frames : (int, unit) Hashtbl.t;
    mutable lru : int list;  (** most recent first *)
    mutable logical_reads : int;
    mutable physical_reads : int;
    mutable evictions : int;
    pins : Mad_obs.Metric.counter;  (** mirrors [logical_reads] *)
    faults : Mad_obs.Metric.counter;  (** mirrors [physical_reads] *)
  }

  let create ?(obs = Mad_obs.Obs.noop) capacity =
    if capacity < 1 then Err.failf "buffer pool needs at least one frame";
    let reg = Mad_obs.Obs.registry obs in
    {
      capacity;
      frames = Hashtbl.create capacity;
      lru = [];
      logical_reads = 0;
      physical_reads = 0;
      evictions = 0;
      pins = Mad_obs.Registry.counter reg "paged.page_pins";
      faults = Mad_obs.Registry.counter reg "paged.page_faults";
    }

  let touch t page =
    t.lru <- page :: List.filter (fun p -> p <> page) t.lru

  (** Fix a page: a logical read (a pin), plus a physical read (a page
      fault) on a miss, with LRU eviction when the pool is full. *)
  let fix t page =
    t.logical_reads <- t.logical_reads + 1;
    Mad_obs.Metric.incr t.pins;
    if Hashtbl.mem t.frames page then touch t page
    else begin
      t.physical_reads <- t.physical_reads + 1;
      Mad_obs.Metric.incr t.faults;
      if Hashtbl.length t.frames >= t.capacity then begin
        match List.rev t.lru with
        | victim :: _ ->
          Hashtbl.remove t.frames victim;
          t.lru <- List.filter (fun p -> p <> victim) t.lru;
          t.evictions <- t.evictions + 1
        | [] -> ()
      end;
      Hashtbl.replace t.frames page ();
      touch t page
    end

  let hit_ratio t =
    if t.logical_reads = 0 then 1.0
    else
      1.0
      -. (float_of_int t.physical_reads /. float_of_int t.logical_reads)

  let reset t =
    Hashtbl.reset t.frames;
    t.lru <- [];
    t.logical_reads <- 0;
    t.physical_reads <- 0;
    t.evictions <- 0

  let pp ppf t =
    Fmt.pf ppf "logical=%d physical=%d evictions=%d hit=%.2f"
      t.logical_reads t.physical_reads t.evictions (hit_ratio t)
end

(* ------------------------------------------------------------------ *)
(* Placement and the paged store                                        *)

type placement = [ `By_type | `By_molecule of Mad.Mdesc.t ]

type t = {
  db : Database.t;
  page_size : int;  (** atoms per page *)
  page_of : (Aid.t, int) Hashtbl.t;
  pages : int;  (** total pages allocated *)
  pool : Pool.t;
}

(* assign ids to pages in the given order, page_size atoms per page *)
let assign order page_size =
  let page_of = Hashtbl.create 256 in
  let page = ref 0 and filled = ref 0 in
  List.iter
    (fun id ->
      if not (Hashtbl.mem page_of id) then begin
        if !filled >= page_size then begin
          incr page;
          filled := 0
        end;
        Hashtbl.replace page_of id !page;
        incr filled
      end)
    order;
  (page_of, !page + 1)

let by_type_order db =
  List.concat_map
    (fun at -> List.map (fun (a : Atom.t) -> a.id) (Database.atoms db at))
    (Database.atom_type_names db)

let by_molecule_order db desc =
  let visited = Hashtbl.create 256 in
  let order = ref [] in
  let visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      order := id :: !order
    end
  in
  List.iter
    (fun (m : Mad.Molecule.t) ->
      visit m.Mad.Molecule.root;
      List.iter
        (fun node ->
          Aid.Set.iter visit (Mad.Molecule.component m node))
        (Mad.Mdesc.topo_order desc))
    (Mad.Derive.m_dom db desc);
  (* atoms not covered by any molecule of this structure *)
  List.iter (fun id -> visit id) (by_type_order db);
  List.rev !order

let load ?obs ?(placement = `By_type) ?(page_size = 8) ?(buffer_pages = 16) db
    =
  let order =
    match placement with
    | `By_type -> by_type_order db
    | `By_molecule desc -> by_molecule_order db desc
  in
  let page_of, pages = assign order page_size in
  { db; page_size; page_of; pages; pool = Pool.create ?obs buffer_pages }

let page_of t id =
  match Hashtbl.find_opt t.page_of id with
  | Some p -> p
  | None -> Err.failf "atom %s is not stored" (Aid.to_string id)

let fetch t ~atype id =
  Pool.fix t.pool (page_of t id);
  Database.get_atom t.db ~atype id

(** Adjacency is stored with the owning atom: traversal fixes the
    owner's page. *)
let neighbors t link ~dir id =
  Pool.fix t.pool (page_of t id);
  Database.neighbors t.db link ~dir id

let scan t atype =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (a : Atom.t) ->
      let p = page_of t a.id in
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.replace seen p ();
        Pool.fix t.pool p
      end;
      a)
    (Database.atoms t.db atype)

(* ------------------------------------------------------------------ *)
(* Molecule derivation against the paged store                          *)

(** Derive one molecule fetching everything through the buffer pool;
    same result as {!Mad.Derive.derive_one}, different cost model. *)
let derive_one t desc root =
  let module Smap = Map.Make (String) in
  let by_node = ref (Smap.singleton (Mad.Mdesc.root desc) (Aid.Set.singleton root)) in
  let links = ref Link.Set.empty in
  Pool.fix t.pool (page_of t root);
  List.iter
    (fun node ->
      if not (String.equal node (Mad.Mdesc.root desc)) then begin
        let ins = Mad.Mdesc.in_edges desc node in
        let reach (e : Mad.Mdesc.edge) =
          let parents =
            Option.value ~default:Aid.Set.empty (Smap.find_opt e.from_at !by_node)
          in
          Aid.Set.fold
            (fun p acc ->
              let dir = match e.dir with `Fwd -> `Fwd | `Bwd -> `Bwd in
              Aid.Set.union (neighbors t e.link ~dir p) acc)
            parents Aid.Set.empty
        in
        let included =
          match ins with
          | [] -> Aid.Set.empty
          | e :: rest ->
            List.fold_left (fun acc e -> Aid.Set.inter acc (reach e)) (reach e) rest
        in
        (* fetch the member atoms (their pages) *)
        Aid.Set.iter (fun id -> Pool.fix t.pool (page_of t id)) included;
        by_node := Smap.add node included !by_node;
        List.iter
          (fun (e : Mad.Mdesc.edge) ->
            let parents =
              Option.value ~default:Aid.Set.empty (Smap.find_opt e.from_at !by_node)
            in
            Aid.Set.iter
              (fun p ->
                let dir = match e.dir with `Fwd -> `Fwd | `Bwd -> `Bwd in
                Aid.Set.iter
                  (fun c ->
                    if Aid.Set.mem c included then
                      let left, right =
                        match e.dir with `Fwd -> (p, c) | `Bwd -> (c, p)
                      in
                      links := Link.Set.add (Link.v e.link left right) !links)
                  (Database.neighbors t.db e.link ~dir p))
              parents)
          ins
      end)
    (Mad.Mdesc.topo_order desc);
  Mad.Molecule.v ~root ~by_node:!by_node ~links:!links

let m_dom t desc =
  List.map
    (fun (a : Atom.t) -> derive_one t desc a.id)
    (Database.atoms t.db (Mad.Mdesc.root desc))
