(** Persistence of the learned statistics catalog ([stats.mad]).

    A {!Stats.t} is five string-keyed maps of scalars, so the format
    is line-oriented like the rest of the system's files:
    {v
    # MAD adaptive catalog v1
    count state 27
    distinct state.name 27
    link state-area 110 4.074 1.0
    learned state-area 3.9 - 3.2 -
    sel 0.037 state|state.name = 'SP'
    v}
    Floats are printed with ["%.17g"] (lossless round-trip); absent
    learned factors are [-].  A [sel] key is the tail of its line (it
    embeds the rendered predicate, spaces and quotes included).

    The durability engine stores this file beside the write-ahead log
    ([Durable.stats_path]), which is what lets a session's optimizer
    start from the estimates the previous session converged onto,
    instead of from the static catalog. *)

open Mad_store
module Smap = Stats.Smap

let float_str f = Printf.sprintf "%.17g" f

let opt_float_str = function None -> "-" | Some f -> float_str f

let to_string (s : Stats.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# MAD adaptive catalog v1\n";
  Smap.iter
    (fun k n -> Buffer.add_string buf (Printf.sprintf "count %s %d\n" k n))
    s.Stats.atom_counts;
  Smap.iter
    (fun k n -> Buffer.add_string buf (Printf.sprintf "distinct %s %d\n" k n))
    s.Stats.distinct;
  Smap.iter
    (fun k (ls : Stats.link_stat) ->
      Buffer.add_string buf
        (Printf.sprintf "link %s %d %s %s\n" k ls.Stats.pairs
           (float_str ls.Stats.fanout_fwd)
           (float_str ls.Stats.fanout_bwd)))
    s.Stats.link_stats;
  Smap.iter
    (fun k (l : Stats.learned_link) ->
      Buffer.add_string buf
        (Printf.sprintf "learned %s %s %s %s %s\n" k
           (opt_float_str l.Stats.lf_fwd)
           (opt_float_str l.Stats.lf_bwd)
           (opt_float_str l.Stats.lr_fwd)
           (opt_float_str l.Stats.lr_bwd)))
    s.Stats.learned;
  Smap.iter
    (fun k sel ->
      Buffer.add_string buf (Printf.sprintf "sel %s %s\n" (float_str sel) k))
    s.Stats.learned_sel;
  Buffer.contents buf

let save (s : Stats.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s))

(* --- reading -------------------------------------------------------- *)

let parse_int file lineno s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> Err.failf "%s: line %d: bad integer %s" file lineno s

let parse_float file lineno s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> Err.failf "%s: line %d: bad float %s" file lineno s

let parse_opt_float file lineno = function
  | "-" -> None
  | s -> Some (parse_float file lineno s)

let of_string ?(file = "stats.mad") text : Stats.t =
  let empty =
    {
      Stats.atom_counts = Smap.empty;
      distinct = Smap.empty;
      link_stats = Smap.empty;
      learned = Smap.empty;
      learned_sel = Smap.empty;
    }
  in
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun (s, lineno) line ->
      let lineno = lineno + 1 in
      let line = String.trim line in
      let s =
        if line = "" || line.[0] = '#' then s
        else
          match String.split_on_char ' ' line with
          | [ "count"; k; n ] ->
            { s with
              Stats.atom_counts =
                Smap.add k (parse_int file lineno n) s.Stats.atom_counts }
          | [ "distinct"; k; n ] ->
            { s with
              Stats.distinct =
                Smap.add k (parse_int file lineno n) s.Stats.distinct }
          | [ "link"; k; pairs; ff; fb ] ->
            { s with
              Stats.link_stats =
                Smap.add k
                  {
                    Stats.pairs = parse_int file lineno pairs;
                    fanout_fwd = parse_float file lineno ff;
                    fanout_bwd = parse_float file lineno fb;
                  }
                  s.Stats.link_stats }
          | [ "learned"; k; ff; fb; rf; rb ] ->
            { s with
              Stats.learned =
                Smap.add k
                  {
                    Stats.lf_fwd = parse_opt_float file lineno ff;
                    lf_bwd = parse_opt_float file lineno fb;
                    lr_fwd = parse_opt_float file lineno rf;
                    lr_bwd = parse_opt_float file lineno rb;
                  }
                  s.Stats.learned }
          | "sel" :: sel :: (_ :: _ as key_words) ->
            { s with
              Stats.learned_sel =
                Smap.add
                  (String.concat " " key_words)
                  (parse_float file lineno sel)
                  s.Stats.learned_sel }
          | word :: _ ->
            Err.failf "%s: line %d: unknown directive %s" file lineno word
          | [] -> s
      in
      (s, lineno))
    (empty, 0) lines
  |> fst

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      of_string ~file:(Filename.basename path) (In_channel.input_all ic))

let load_opt path = if Sys.file_exists path then Some (load path) else None
