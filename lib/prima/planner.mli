(** PRIMA's molecule-processing planner: algebraic rewrites whose
    soundness the molecule algebra guarantees — root-restriction
    pushdown into the root scan, and structure pruning to the
    ancestor-closure of the nodes the residual qualification and the
    projection need. *)

type query = {
  name : string;
  desc : Mad.Mdesc.t;
  where : Mad.Qual.t option;
  select : (string * string list option) list option;
}

type plan = {
  query : query;
  root_pred : Mad.Qual.t option;  (** pushed into the root scan *)
  residual : Mad.Qual.t option;  (** evaluated per derived molecule *)
  derive_desc : Mad.Mdesc.t;  (** possibly pruned *)
  notes : string list;
}

val conjuncts : Mad.Qual.t -> Mad.Qual.t list

val conjoin : Mad.Qual.t list -> Mad.Qual.t option
(** Right inverse of {!conjuncts}: [None] on the empty list. *)

val plan : ?optimize:bool -> query -> plan

val plan_hash : plan -> int
(** A stable non-negative hash of the plan's {e shape}: scan target,
    predicate skeletons (literals stripped, conjunct order kept),
    derivation structure, projection.  Two parameterizations of the
    same plan hash identically; a stats-driven conjunct reorder does
    not.  [Mad_obs.Digest] keys its rows on this. *)

val pp : Format.formatter -> plan -> unit
