(** The molecule-processing component's planner.

    The naive evaluation of [Σ[q](α[n,G](C))] derives *every* molecule
    and then filters — the letter of Def. 10.  The planner applies two
    algebraic rewrites whose correctness the molecule algebra
    guarantees (ch. 5: "we can conveniently exploit the algebra to
    considerably simplify and enhance query transformation and query
    optimization"):

    - {b root-restriction pushdown}: conjuncts of the qualification that
      reference only the root node are evaluated during the root scan,
      so non-qualifying molecules are never derived.  Sound because a
      molecule contains exactly one root atom and derivation is
      per-root.
    - {b structure pruning}: nodes needed neither by the residual
      qualification nor by the projection are removed from the
      derivation structure, together with their (now useless) subtrees
      — precisely the ancestor-closure of the needed nodes is kept.
      Sound because a node's component depends only on its ancestors'
      components. *)

module Sset = Set.Make (String)

type query = {
  name : string;
  desc : Mad.Mdesc.t;
  where : Mad.Qual.t option;
  select : (string * string list option) list option;
}

type plan = {
  query : query;
  root_pred : Mad.Qual.t option;  (** pushed into the root scan *)
  residual : Mad.Qual.t option;  (** evaluated per derived molecule *)
  derive_desc : Mad.Mdesc.t;  (** possibly pruned structure *)
  notes : string list;
}

let rec conjuncts = function
  | Mad.Qual.And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let conjoin = function
  | [] -> None
  | p :: rest -> Some (List.fold_left (fun a b -> Mad.Qual.And (a, b)) p rest)

(* Quantifier-free conjuncts that reference only the root node can be
   pushed: the root is always bound to the single root atom, so their
   molecule semantics coincides with atom semantics on the root. *)
let pushable root p =
  Sset.subset (Mad.Qual.nodes p) (Sset.singleton root)
  &&
  let rec quantifier_free = function
    | Mad.Qual.True | Mad.Qual.False | Mad.Qual.Cmp _ -> true
    | Mad.Qual.And (a, b) | Mad.Qual.Or (a, b) ->
      quantifier_free a && quantifier_free b
    | Mad.Qual.Not a -> quantifier_free a
    | Mad.Qual.Exists _ | Mad.Qual.Forall _ -> false
  in
  quantifier_free p

(* ancestor closure of [needed] in the structure DAG *)
let ancestor_closure desc needed =
  let rec grow set =
    let set' =
      List.fold_left
        (fun acc (e : Mad.Mdesc.edge) ->
          if Sset.mem e.to_at acc then Sset.add e.from_at acc else acc)
        set (Mad.Mdesc.edges desc)
    in
    if Sset.equal set set' then set else grow set'
  in
  grow needed

let plan ?(optimize = true) (q : query) =
  let root = Mad.Mdesc.root q.desc in
  if not optimize then
    {
      query = q;
      root_pred = None;
      residual = q.where;
      derive_desc = q.desc;
      notes = [ "naive: derive all molecules, then filter" ];
    }
  else begin
    let pushed, residual =
      match q.where with
      | None -> ([], [])
      | Some w -> List.partition (pushable root) (conjuncts w)
    in
    let notes = ref [] in
    if pushed <> [] then
      notes :=
        Printf.sprintf "pushdown: %d root conjunct(s) into the %s scan"
          (List.length pushed) root
        :: !notes;
    (* nodes needed by residual predicate and projection *)
    let needed =
      let from_residual =
        List.fold_left
          (fun acc p -> Sset.union acc (Mad.Qual.nodes p))
          Sset.empty residual
      in
      let from_select =
        match q.select with
        | None -> Sset.of_list (Mad.Mdesc.nodes q.desc)
        | Some items -> Sset.of_list (List.map fst items)
      in
      Sset.add root (Sset.union from_residual from_select)
    in
    let keep = ancestor_closure q.desc needed in
    let derive_desc =
      if Sset.cardinal keep = List.length (Mad.Mdesc.nodes q.desc) then q.desc
      else begin
        notes :=
          Printf.sprintf "pruning: derive over %d of %d nodes"
            (Sset.cardinal keep)
            (List.length (Mad.Mdesc.nodes q.desc))
          :: !notes;
        Mad.Mdesc.induced q.desc (Sset.elements keep)
      end
    in
    {
      query = q;
      root_pred = conjoin pushed;
      residual = conjoin residual;
      derive_desc;
      notes = List.rev !notes;
    }
  end

(* ------------------------------------------------------------------ *)
(* Plan identity                                                        *)

(* FNV-1a (same scheme as Mad_mql.Fingerprint); wraps modulo 2^63,
   masked non-negative *)
let fnv_basis = 0x03345778_9ABCDEF1
let fnv_prime = 0x100000001b3

let hash_string s =
  let h = ref fnv_basis in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) s;
  !h land max_int

(** The plan's {e shape}: scan target, pushed and residual predicate
    skeletons (literals stripped, conjunct {e order} kept — the
    stats-driven reorder must change the hash), derivation structure
    and projection.  Notes are advisory and excluded. *)
let plan_hash p =
  let pred_skeleton = function
    | None -> "-"
    | Some q -> Mad.Qual.to_string (Mad.Qual.strip_consts q)
  in
  let select =
    match p.query.select with
    | None -> "ALL"
    | Some items ->
      String.concat ","
        (List.map
           (fun (n, attrs) ->
             match attrs with
             | None -> n
             | Some attrs -> n ^ "(" ^ String.concat "," attrs ^ ")")
           items)
  in
  hash_string
    (String.concat "\x00"
       [
         "scan " ^ Mad.Mdesc.root p.derive_desc;
         "push " ^ pred_skeleton p.root_pred;
         "filter " ^ pred_skeleton p.residual;
         "derive " ^ Format.asprintf "%a" Mad.Mdesc.pp p.derive_desc;
         "project " ^ select;
       ])

let pp ppf p =
  Fmt.pf ppf "@[<v>plan for %s:@," p.query.name;
  Fmt.pf ppf "  scan %s%a@," (Mad.Mdesc.root p.derive_desc)
    Fmt.(option (fun ppf q -> Fmt.pf ppf " where %a" Mad.Qual.pp q))
    p.root_pred;
  Fmt.pf ppf "  derive %a@," Mad.Mdesc.pp p.derive_desc;
  (match p.residual with
   | None -> ()
   | Some q -> Fmt.pf ppf "  filter %a@," Mad.Qual.pp q);
  (match p.query.select with
   | None -> ()
   | Some items ->
     Fmt.pf ppf "  project %a@,"
       Fmt.(list ~sep:(any ", ") (fun ppf (n, _) -> Fmt.string ppf n))
       items);
  List.iter (fun n -> Fmt.pf ppf "  -- %s@," n) p.notes;
  Fmt.pf ppf "@]"
