(** PRIMA's lower layer: the atom-oriented interface [HMMS87] with
    access counters — the logical cost model of the benchmark
    experiments. *)

open Mad_store

type counters = {
  mutable scans : int;
  mutable atoms_read : int;
  mutable fetches : int;
  mutable links_followed : int;
}

val counters : unit -> counters
val reset : counters -> unit
val pp_counters : Format.formatter -> counters -> unit

type t = { db : Database.t; c : counters }

val v : ?c:counters -> Database.t -> t

val scan : ?pred:Mad.Qual.t -> t -> string -> Atom.t list
(** Atom-type scan with an optional pushed-down qualification. *)

val fetch : t -> atype:string -> Aid.t -> Atom.t
val neighbors : t -> string -> dir:[ `Fwd | `Bwd | `Both ] -> Aid.t -> Aid.Set.t
