(** The per-session adaptive statistics catalog: the feedback loop
    between [EXPLAIN ANALYZE] and {!Stats}.

    Each profiled statement's recorded actuals are fed back through
    {!Stats.refine}, so a session's estimates converge onto its
    workload (exponentially weighted — repeated queries dominate, one
    outlier run cannot wreck the catalog).  Nodes whose estimate was
    off by more than the drift factor are logged; the drift report is
    the optimizer-facing answer to "which plans were costed wrong?".

    [Mad_mql.Session] sits below PRIMA and cannot depend on this
    module, so the state rides in the session's extension slot
    ({!Mad_mql.Session.ext}) and {!install} registers the profiling
    hook, exactly like {!Profile.install} — but where [Profile]'s hook
    is stateless, this one learns. *)

module Session = Mad_mql.Session

type drift_entry = {
  de_stmt : string;  (** the statement kind/name the drift came from *)
  de_drift : Profile.drift;
}

type state = {
  mutable catalog : Stats.t option;  (** [None] until first profiled run *)
  mutable drifts : drift_entry list;  (** newest first *)
  mutable refinements : int;
  alpha : float;
  factor : float;  (** drift threshold, an off-by factor *)
  plan_memo : (int, int * int * int) Hashtbl.t;
      (** fingerprint -> (refinements, epoch, plan hash): the digest's
          plan-hash cache, stale once the catalog refines or the
          database mutates *)
  mutable plan_mru : int * int * int * int;
      (** (fingerprint, refinements, epoch, hash) of the last lookup —
          the steady-state hit skips even the memo probe *)
}

type Session.ext += Adaptive of state

let default_factor =
  match Option.map float_of_string_opt (Sys.getenv_opt "MAD_DRIFT_FACTOR") with
  | Some (Some f) when Float.is_finite f && f >= 1.0 -> f
  | _ -> 2.0

(** The session's adaptive state, created on first use.  [alpha] and
    [factor] only apply at creation; [MAD_DRIFT_FACTOR] overrides the
    default threshold. *)
let state ?(alpha = 0.5) ?(factor = default_factor) (session : Session.t) =
  match session.Session.ext with
  | Some (Adaptive st) -> st
  | _ ->
    let st =
      { catalog = None; drifts = []; refinements = 0; alpha; factor;
        plan_memo = Hashtbl.create 16; plan_mru = (-1, -1, -1, 0) }
    in
    session.Session.ext <- Some (Adaptive st);
    st

let catalog st db =
  match st.catalog with
  | Some c -> c
  | None ->
    let c = Stats.collect db in
    st.catalog <- Some c;
    c

(** Record one profiled run: log its drift against the threshold,
    refine the catalog with the actuals.  Returns the drift entries of
    this run. *)
let observe st ~stmt (r : Profile.t) =
  let drifted = Profile.drift ~factor:st.factor r in
  st.drifts <-
    List.rev_append
      (List.rev_map (fun d -> { de_stmt = stmt; de_drift = d }) drifted)
      st.drifts;
  (match st.catalog with
   | Some c -> st.catalog <- Some (Profile.refine ~alpha:st.alpha c r)
   | None -> ());
  st.refinements <- st.refinements + 1;
  drifted

(* ------------------------------------------------------------------ *)
(* Plan identity for the workload digest                                *)

(* the same fallback Session uses for statements without a physical
   plan: one pseudo plan per statement kind *)
let kind_plan stmt =
  Mad_mql.Fingerprint.hash ("kind:" ^ Session.stmt_kind stmt)

(** The hash of the plan the engine would choose for [stmt] right now:
    the algebraic rewrites plus the adaptive catalog's
    {!Stats.replan}.  Memoized per fingerprint and invalidated when
    the catalog refines or the database mutates, so steady-state
    digest recording costs one hashtable probe, not a planning
    pass. *)
let plan_hash_stmt (session : Session.t) ~fp stmt =
  let st = state session in
  let db = session.Session.db in
  let epoch = Mad_store.Database.epoch db in
  (* memo first: a hit must not pay structure resolution, which is why
     the probes happen before [query_of_stmt] *)
  match st.plan_mru with
  | f, r, e, h when f = fp && r = st.refinements && e = epoch -> h
  | _ ->
    let h =
      match Hashtbl.find st.plan_memo fp with
      | (r, e, h) when r = st.refinements && e = epoch -> h
      | _ | (exception Not_found) ->
        let h =
          match Profile.query_of_stmt db stmt with
          | None -> kind_plan stmt
          | Some q ->
            Planner.plan_hash
              (Stats.replan (catalog st db) (Planner.plan ~optimize:true q))
        in
        Hashtbl.replace st.plan_memo fp (st.refinements, epoch, h);
        h
    in
    st.plan_mru <- (fp, st.refinements, epoch, h);
    h

(* ------------------------------------------------------------------ *)
(* The session hook                                                     *)

(** [EXPLAIN ANALYZE] with learning: profile against the session's
    adaptive catalog, then feed the actuals back and log drift.  The
    report grows a trailing adaptive section naming the drifted nodes
    and the refinement count. *)
let analyze_stmt (session : Session.t) stmt =
  match Profile.query_of_stmt session.Session.db stmt with
  | Some q ->
    let st = state session in
    let stats = catalog st session.Session.db in
    let r = Profile.analyze ~stats session.Session.db q in
    let drifted = observe st ~stmt:q.Planner.name r in
    (* feed the estimate-vs-actual gap into the workload digest, keyed
       by the profiled statement's own fingerprint and plan *)
    (match session.Session.digest with
     | Some dg ->
       let fp, text = Mad_mql.Fingerprint.of_stmt stmt in
       Mad_obs.Digest.note_drift dg ~fp ~text
         ~plan:(Planner.plan_hash r.Profile.plan)
         ~err:(Profile.error r)
     | None -> ());
    Format.asprintf "%a%a" Profile.pp r
      (fun ppf -> function
        | [] ->
          Fmt.pf ppf "adaptive: catalog refined (%d run(s)); no drift over %.1fx@."
            st.refinements st.factor
        | ds ->
          Fmt.pf ppf
            "adaptive: catalog refined (%d run(s)); drift over %.1fx: %a@."
            st.refinements st.factor
            Fmt.(list ~sep:(any "; ") Profile.pp_drift)
            ds)
      drifted
  | None -> Profile.analyze_stmt session stmt

(** Register the learning profiler as the session layer's
    [EXPLAIN ANALYZE] engine (supersedes {!Profile.install}), and the
    plan hasher behind the workload digest. *)
let install () =
  Session.analyze_hook := Some analyze_stmt;
  Session.plan_hash_hook := Some plan_hash_stmt

(* ------------------------------------------------------------------ *)
(* Catalog persistence                                                  *)

(** Persist the session's refined catalog as a [stats.mad] file
    ({!Catalog_io}); [false] when the session has no adaptive state or
    the catalog was never collected (nothing learned, nothing saved). *)
let save_session (session : Session.t) path =
  match session.Session.ext with
  | Some (Adaptive { catalog = Some c; _ }) ->
    Catalog_io.save c path;
    true
  | _ -> false

(** Install a previously-saved catalog as the session's adaptive
    starting point, superseding the static collection of the first
    profiled run; [false] when the file does not exist. *)
let load_session ?alpha ?factor (session : Session.t) path =
  match Catalog_io.load_opt path with
  | None -> false
  | Some c ->
    let st = state ?alpha ?factor session in
    st.catalog <- Some c;
    true

(* ------------------------------------------------------------------ *)
(* The drift report                                                     *)

let pp_report ppf (session : Session.t) =
  match session.Session.ext with
  | Some (Adaptive st) ->
    Fmt.pf ppf "@[<v>adaptive catalog: %d refinement(s), drift threshold %.1fx@,"
      st.refinements st.factor;
    (match st.drifts with
     | [] -> Fmt.pf ppf "no drift recorded@]"
     | ds ->
       Fmt.pf ppf "%a@]"
         Fmt.(
           list ~sep:(any "@,") (fun ppf e ->
               Fmt.pf ppf "%s: %a" e.de_stmt Profile.pp_drift e.de_drift))
         (List.rev ds))
  | _ -> Fmt.pf ppf "adaptive catalog: no profiled runs yet"

let report session = Format.asprintf "%a" pp_report session
