(** PRIMA's executor: run a {!Planner} plan against the atom-oriented
    interface, with pipelined (non-materializing) projection. *)

open Mad_store

type outcome = {
  mt : Mad.Molecule_type.t;
  counters : Atom_interface.counters;
  plan : Planner.plan;
}

val run :
  ?optimize:bool -> ?materialize:bool -> Database.t -> Planner.query -> outcome
(** [materialize] routes the projection through the algebra's Π
    (propagation) instead of the pipelined restriction. *)

val compare_plans : Database.t -> Planner.query -> outcome * outcome
(** (naive, optimized) — the ablation harness. *)

val explain : ?optimize:bool -> Planner.query -> string
