(** PRIMA's executor: run a {!Planner} plan against the atom-oriented
    interface, with pipelined (non-materializing) projection. *)

open Mad_store

type outcome = {
  mt : Mad.Molecule_type.t;
  counters : Atom_interface.counters;
  plan : Planner.plan;
  stats : Mad.Derive.stats;  (** the derivation work of this run *)
}

val run :
  ?obs:Mad_obs.Obs.t ->
  ?stats:Mad.Derive.stats ->
  ?catalog:Stats.t ->
  ?optimize:bool ->
  ?materialize:bool ->
  Database.t ->
  Planner.query ->
  outcome
(** [materialize] routes the projection through the algebra's Π
    (propagation) instead of the pipelined restriction.  Under [obs]
    every plan stage (plan, scan, derive, filter, project) runs in its
    own span beneath one [prima.execute] root; [stats] (default:
    counters in [obs]'s registry, giving per-node actuals for
    [EXPLAIN ANALYZE]) accounts the derivation work.  [catalog] adds
    the statistics-driven pass ({!Stats.replan}) on top of the
    algebraic rewrites, so learned factors steer residual conjunct
    order. *)

val compare_plans : Database.t -> Planner.query -> outcome * outcome
(** (naive, optimized) — the ablation harness. *)

val explain : ?optimize:bool -> Planner.query -> string
