(** Persistence of the learned statistics catalog: {!Stats.t} as a
    line-oriented [stats.mad] file stored beside the write-ahead log,
    so a session's optimizer starts from the estimates the previous
    session converged onto. *)

val to_string : Stats.t -> string

val of_string : ?file:string -> string -> Stats.t
(** Parse; fails with a [file]- and line-named [Err.Mad_error] on
    malformed input. *)

val save : Stats.t -> string -> unit
val load : string -> Stats.t
val load_opt : string -> Stats.t option
(** [None] when the file does not exist. *)
