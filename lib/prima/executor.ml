(** The molecule-processing component's executor: runs a {!Planner}
    plan against the atom-oriented interface and returns a molecule
    type.  The counters in {!Atom_interface} record the logical work;
    the Q2 ablation compares naive vs. optimized plans on them.

    Each plan stage (scan, derive, filter, project) runs under its own
    tracing span so a profile shows where a query's time and logical
    work went; all spans nest under one [prima.execute] root. *)

open Mad_store
module Obs = Mad_obs.Obs
module Span = Mad_obs.Span

type outcome = {
  mt : Mad.Molecule_type.t;
  counters : Atom_interface.counters;
  plan : Planner.plan;
  stats : Mad.Derive.stats;  (** the derivation work of this run *)
}

(* molecule restriction against a throw-away molecule type wrapper *)
let satisfies db desc m pred =
  let mt = Mad.Molecule_type.v ~name:"tmp" ~desc [] in
  Mad.Molecule_algebra.molecule_satisfies db mt m pred

let run ?(obs = Obs.noop) ?stats ?catalog ?(optimize = true)
    ?(materialize = false) db (q : Planner.query) =
  Obs.timed obs "prima.execute"
    ~attrs:[ ("query", Span.Str q.Planner.name) ]
  @@ fun _ ->
  let stats =
    match stats with
    | Some s -> s
    | None -> Mad.Derive.stats_in (Obs.registry obs)
  in
  let plan =
    Obs.timed obs "prima.plan" (fun _ ->
        let p = Planner.plan ~optimize q in
        (* the catalog-driven pass on top of the algebraic rewrites:
           residual conjunct ordering from (possibly learned) stats *)
        match catalog with
        | Some c when optimize -> Stats.replan c p
        | Some _ | None -> p)
  in
  let iface = Atom_interface.v db in
  let root_node = Mad.Mdesc.root q.Planner.desc in
  let roots =
    Obs.timed obs "prima.scan"
      ~attrs:
        [
          ("node", Span.Str root_node);
          ( "pushdown",
            Span.Bool (Option.is_some plan.Planner.root_pred) );
        ]
    @@ fun sp ->
    let roots =
      Atom_interface.scan ?pred:plan.Planner.root_pred iface root_node
    in
    Span.set sp "out" (Span.Int (List.length roots));
    roots
  in
  let a0 = Mad.Derive.atoms_visited stats
  and l0 = Mad.Derive.links_traversed stats in
  let derived =
    Obs.timed obs "prima.derive"
      ~attrs:[ ("roots", Span.Int (List.length roots)) ]
    @@ fun sp ->
    let derived =
      Mad.Derive.derive_roots ~stats db plan.Planner.derive_desc
        (List.map (fun (a : Atom.t) -> a.id) roots)
    in
    Span.set sp "atoms_visited"
      (Span.Int (Mad.Derive.atoms_visited stats - a0));
    Span.set sp "links_traversed"
      (Span.Int (Mad.Derive.links_traversed stats - l0));
    derived
  in
  iface.Atom_interface.c.Atom_interface.links_followed <-
    iface.Atom_interface.c.Atom_interface.links_followed
    + (Mad.Derive.links_traversed stats - l0);
  iface.Atom_interface.c.Atom_interface.fetches <-
    iface.Atom_interface.c.Atom_interface.fetches
    + (Mad.Derive.atoms_visited stats - a0);
  let filtered =
    match plan.Planner.residual with
    | None -> derived
    | Some pred ->
      Obs.timed obs "prima.filter"
        ~attrs:[ ("in", Span.Int (List.length derived)) ]
      @@ fun sp ->
      let kept =
        List.filter
          (fun m -> satisfies db plan.Planner.derive_desc m pred)
          derived
      in
      Span.set sp "out" (Span.Int (List.length kept));
      kept
  in
  let mt =
    Mad.Molecule_type.v ~name:q.Planner.name ~desc:plan.Planner.derive_desc
      filtered
  in
  let mt =
    match q.Planner.select with
    | None -> mt
    | Some items ->
      Obs.timed obs "prima.project"
        ~attrs:[ ("materialize", Span.Bool materialize) ]
      @@ fun _ ->
      (* keep only selected nodes that survive in the derive structure *)
      let keep =
        List.filter
          (fun (n, _) -> List.mem n (Mad.Mdesc.nodes plan.Planner.derive_desc))
          items
      in
      if materialize then Mad.Molecule_algebra.project ~obs ~stats db keep mt
      else begin
        (* pipelined projection without propagation: restrict the
           molecules' visible structure *)
        let desc' = Mad.Mdesc.induced plan.Planner.derive_desc (List.map fst keep) in
        let kept_edges = Mad.Mdesc.edges desc' in
        let occ =
          List.map
            (fun (m : Mad.Molecule.t) ->
              let by_node =
                Mad.Molecule.Smap.filter
                  (fun node _ -> List.exists (fun (n, _) -> String.equal n node) keep)
                  m.Mad.Molecule.by_node
              in
              let links =
                Link.Set.filter
                  (fun (l : Link.t) ->
                    List.exists
                      (fun (e : Mad.Mdesc.edge) -> String.equal e.link l.lt)
                      kept_edges)
                  m.Mad.Molecule.links
              in
              Mad.Molecule.v ~root:m.Mad.Molecule.root ~by_node ~links)
            filtered
        in
        Mad.Molecule_type.v ~name:q.Planner.name ~desc:desc' occ
      end
  in
  { mt; counters = iface.Atom_interface.c; plan; stats }

(** Convenience wrapper: evaluate a molecule query naive vs. optimized
    and report both outcomes (the ablation harness). *)
let compare_plans db q =
  let naive = run ~optimize:false db q in
  let optimized = run ~optimize:true db q in
  (naive, optimized)

let explain ?(optimize = true) q =
  Format.asprintf "%a" Planner.pp (Planner.plan ~optimize q)
