(** The molecule-processing component's executor: runs a {!Planner}
    plan against the atom-oriented interface and returns a molecule
    type.  The counters in {!Atom_interface} record the logical work;
    the Q2 ablation compares naive vs. optimized plans on them. *)

open Mad_store

type outcome = {
  mt : Mad.Molecule_type.t;
  counters : Atom_interface.counters;
  plan : Planner.plan;
}

(* molecule restriction against a throw-away molecule type wrapper *)
let satisfies db desc m pred =
  let mt = Mad.Molecule_type.v ~name:"tmp" ~desc [] in
  Mad.Molecule_algebra.molecule_satisfies db mt m pred

let run ?(optimize = true) ?(materialize = false) db (q : Planner.query) =
  let plan = Planner.plan ~optimize q in
  let iface = Atom_interface.v db in
  let roots = Atom_interface.scan ?pred:plan.Planner.root_pred iface (Mad.Mdesc.root q.Planner.desc) in
  let stats = Mad.Derive.stats () in
  let derived =
    List.map
      (fun (a : Atom.t) -> Mad.Derive.derive_one ~stats db plan.Planner.derive_desc a.id)
      roots
  in
  iface.Atom_interface.c.Atom_interface.links_followed <-
    iface.Atom_interface.c.Atom_interface.links_followed
    + stats.Mad.Derive.links_traversed;
  iface.Atom_interface.c.Atom_interface.fetches <-
    iface.Atom_interface.c.Atom_interface.fetches
    + stats.Mad.Derive.atoms_visited;
  let filtered =
    match plan.Planner.residual with
    | None -> derived
    | Some pred ->
      List.filter (fun m -> satisfies db plan.Planner.derive_desc m pred) derived
  in
  let mt =
    Mad.Molecule_type.v ~name:q.Planner.name ~desc:plan.Planner.derive_desc
      filtered
  in
  let mt =
    match q.Planner.select with
    | None -> mt
    | Some items ->
      (* keep only selected nodes that survive in the derive structure *)
      let keep =
        List.filter
          (fun (n, _) -> List.mem n (Mad.Mdesc.nodes plan.Planner.derive_desc))
          items
      in
      if materialize then Mad.Molecule_algebra.project db keep mt
      else begin
        (* pipelined projection without propagation: restrict the
           molecules' visible structure *)
        let desc' = Mad.Mdesc.induced plan.Planner.derive_desc (List.map fst keep) in
        let kept_edges = Mad.Mdesc.edges desc' in
        let occ =
          List.map
            (fun (m : Mad.Molecule.t) ->
              let by_node =
                Mad.Molecule.Smap.filter
                  (fun node _ -> List.exists (fun (n, _) -> String.equal n node) keep)
                  m.Mad.Molecule.by_node
              in
              let links =
                Link.Set.filter
                  (fun (l : Link.t) ->
                    List.exists
                      (fun (e : Mad.Mdesc.edge) -> String.equal e.link l.lt)
                      kept_edges)
                  m.Mad.Molecule.links
              in
              Mad.Molecule.v ~root:m.Mad.Molecule.root ~by_node ~links)
            filtered
        in
        Mad.Molecule_type.v ~name:q.Planner.name ~desc:desc' occ
      end
  in
  { mt; counters = iface.Atom_interface.c; plan }

(** Convenience wrapper: evaluate a molecule query naive vs. optimized
    and report both outcomes (the ablation harness). *)
let compare_plans db q =
  let naive = run ~optimize:false db q in
  let optimized = run ~optimize:true db q in
  (naive, optimized)

let explain ?(optimize = true) q =
  Format.asprintf "%a" Planner.pp (Planner.plan ~optimize q)
