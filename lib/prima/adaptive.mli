(** Per-session adaptive statistics: every [EXPLAIN ANALYZE] run feeds
    its recorded actuals back into a session-private {!Stats.t}
    catalog ({!Stats.refine}), so estimates converge onto the
    session's workload; nodes off by more than the drift factor are
    logged.  The state rides in {!Mad_mql.Session.ext} (the session
    layer cannot depend on PRIMA); {!install} registers the learning
    profiler as the session's [EXPLAIN ANALYZE] engine. *)

open Mad_store
module Session = Mad_mql.Session

type drift_entry = {
  de_stmt : string;  (** the statement/query name the drift came from *)
  de_drift : Profile.drift;
}

type state = {
  mutable catalog : Stats.t option;  (** [None] until first profiled run *)
  mutable drifts : drift_entry list;  (** newest first *)
  mutable refinements : int;
  alpha : float;  (** EWMA weight of each new observation *)
  factor : float;  (** drift threshold, an off-by factor *)
  plan_memo : (int, int * int * int) Hashtbl.t;
      (** fingerprint -> (refinements, epoch, plan hash): the digest's
          plan-hash cache, stale once the catalog refines or the
          database mutates *)
  mutable plan_mru : int * int * int * int;
      (** (fingerprint, refinements, epoch, hash) of the last lookup *)
}

type Session.ext += Adaptive of state

val default_factor : float
(** 2.0, or the [MAD_DRIFT_FACTOR] environment variable. *)

val state : ?alpha:float -> ?factor:float -> Session.t -> state
(** The session's adaptive state, created on first use ([alpha]
    default 0.5, [factor] default {!default_factor}). *)

val catalog : state -> Database.t -> Stats.t
(** The adaptive catalog, collected from the database on first use. *)

val observe : state -> stmt:string -> Profile.t -> Profile.drift list
(** Log one profiled run's drift and refine the catalog with its
    actuals; returns the drift entries of this run. *)

val analyze_stmt : Session.t -> Mad_mql.Ast.stmt -> string
(** Like {!Profile.analyze_stmt}, but estimates come from (and the
    actuals are fed back into) the session's adaptive catalog; the
    report carries a trailing [adaptive:] section. *)

val plan_hash_stmt : Session.t -> fp:int -> Mad_mql.Ast.stmt -> int
(** The hash of the plan the engine would choose for the statement
    right now (algebraic rewrites + the adaptive catalog's
    {!Stats.replan}); statements without a physical plan map to a
    per-kind pseudo plan.  Memoized on [fp], invalidated by catalog
    refinement and database mutation.  This is the workload digest's
    plan identity ({!Mad_mql.Session.plan_hash_hook}). *)

val install : unit -> unit
(** Register {!analyze_stmt} in {!Mad_mql.Session.analyze_hook}
    (supersedes {!Profile.install}) and {!plan_hash_stmt} in
    {!Mad_mql.Session.plan_hash_hook} — the full workload-introspection
    wiring. *)

val save_session : Session.t -> string -> bool
(** Persist the session's refined catalog as a [stats.mad] file
    ({!Catalog_io}); [false] when nothing was learned yet. *)

val load_session : ?alpha:float -> ?factor:float -> Session.t -> string -> bool
(** Install a previously-saved catalog as the session's adaptive
    starting point (supersedes the static collection of the first
    profiled run); [false] when the file does not exist.  Closes the
    loop across sessions: estimates persist per data directory. *)

val pp_report : Format.formatter -> Session.t -> unit

val report : Session.t -> string
(** The session's drift report: refinement count, threshold, and
    every drifted node estimate recorded so far. *)
