(** EXPLAIN ANALYZE: execute a query under a private observability
    context and line the planner's estimates up against the recorded
    actuals, per structure node, with executor stage timings. *)

open Mad_store

type node_report = {
  nr_node : string;
  nr_est_atoms : float;
  nr_est_links : float;
  nr_atoms : int;  (** actual atoms included at this node *)
  nr_links : int;  (** actual link traversals arriving at this node *)
}

type t = {
  plan : Planner.plan;
  est : Stats.estimate;
  actual_roots : int;
  actual_atoms : int;
  actual_links : int;
  nodes : node_report list;
  stages : (string * float) list;  (** executor stage -> duration ms *)
  duration_ms : float;
  counters : Atom_interface.counters;
}

val analyze : ?optimize:bool -> ?stats:Stats.t -> Database.t -> Planner.query -> t
(** [stats] is the catalog the estimates come from (default: fresh
    {!Stats.collect}); pass a refined catalog to measure how much the
    feedback loop closed the gap. *)

val error : t -> float
(** Total absolute estimate error: |est - actual| over roots and the
    per-node atoms/links — the quantity {!Stats.refine} drives down. *)

type drift = {
  dd_node : string;
  dd_metric : string;  (** ["atoms"] or ["links"] *)
  dd_est : float;
  dd_actual : int;
  dd_ratio : float;  (** how far off, as a >= 1 factor *)
}

val pp_drift : Format.formatter -> drift -> unit

val drift : ?factor:float -> t -> drift list
(** The nodes whose estimate was off by at least [factor] (default 2). *)

val refine : ?alpha:float -> Stats.t -> t -> Stats.t
(** Feed this report's recorded actuals back into a catalog — the
    [EXPLAIN ANALYZE] end of the adaptive-statistics loop. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> Mad_obs.Json.t

val query_of_stmt : Database.t -> Mad_mql.Ast.stmt -> Planner.query option
(** The physical query a plain SELECT maps to, if any. *)

val analyze_stmt : Mad_mql.Session.t -> Mad_mql.Ast.stmt -> string
(** The [EXPLAIN ANALYZE] report for a parsed statement: the full
    per-node profile for physical-plan queries, algebra plan plus
    session-level actuals otherwise. *)

val install : unit -> unit
(** Register {!analyze_stmt} in {!Mad_mql.Session.analyze_hook}. *)
