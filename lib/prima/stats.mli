(** Catalog statistics and cost estimation for the planner (the
    query-optimization groundwork of ch. 5): per-type cardinalities,
    per-attribute distinct counts, per-link-type fanouts; textbook
    selectivity rules; fanout-product derivation estimates. *)

open Mad_store
module Smap : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type link_stat = { pairs : int; fanout_fwd : float; fanout_bwd : float }

type t = {
  atom_counts : int Smap.t;
  distinct : int Smap.t;  (** "type.attr" -> distinct values *)
  link_stats : link_stat Smap.t;
}

val collect : Database.t -> t
val selectivity : t -> Mad.Qual.t -> float

type estimate = { est_roots : float; est_atoms : float; est_links : float }

val pp_estimate : Format.formatter -> estimate -> unit
val estimate : t -> Planner.plan -> estimate

type node_estimate = {
  ne_node : string;
  ne_atoms : float;  (** atoms expected at this node, over all molecules *)
  ne_links : float;  (** link traversals arriving at this node *)
}

type detail = { d_est : estimate; d_nodes : node_estimate list }

val estimate_detail : t -> Planner.plan -> detail
(** Like {!estimate} but keeping the per-node totals — the "estimated"
    column of [EXPLAIN ANALYZE]. *)

val explain_with_estimates : Database.t -> Planner.query -> string
