(** Catalog statistics and cost estimation for the planner (the
    query-optimization groundwork of ch. 5): per-type cardinalities,
    per-attribute distinct counts, per-link-type fanouts; textbook
    selectivity rules; fanout-product derivation estimates. *)

open Mad_store
module Smap : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type link_stat = { pairs : int; fanout_fwd : float; fanout_bwd : float }

type learned_link = {
  lf_fwd : float option;  (** link traversals per parent atom, forward *)
  lf_bwd : float option;
  lr_fwd : float option;  (** distinct atoms reached per parent atom *)
  lr_bwd : float option;
}
(** Adaptive per-link-type factors learned by {!refine}: traversal
    fanout and distinct reach, kept separately because subobject
    sharing makes many traversals arrive at few distinct atoms. *)

type t = {
  atom_counts : int Smap.t;
  distinct : int Smap.t;  (** "type.attr" -> distinct values *)
  link_stats : link_stat Smap.t;
  learned : learned_link Smap.t;  (** link type -> refined factors *)
  learned_sel : float Smap.t;  (** "root|pred" -> observed selectivity *)
}

val collect : Database.t -> t
(** Static catalog statistics; the learned maps start empty. *)

val selectivity : t -> Mad.Qual.t -> float

type estimate = { est_roots : float; est_atoms : float; est_links : float }

val pp_estimate : Format.formatter -> estimate -> unit
val estimate : t -> Planner.plan -> estimate

type node_estimate = {
  ne_node : string;
  ne_atoms : float;  (** atoms expected at this node, over all molecules *)
  ne_links : float;  (** link traversals arriving at this node *)
}

type detail = { d_est : estimate; d_nodes : node_estimate list }

val estimate_detail : t -> Planner.plan -> detail
(** Like {!estimate} but keeping the per-node totals — the "estimated"
    column of [EXPLAIN ANALYZE].  Learned factors and selectivities
    (from {!refine}) take precedence over the static catalog. *)

type node_actual = {
  na_node : string;
  na_atoms : int;  (** atoms included at this node, over all molecules *)
  na_links : int;  (** link traversals arriving at this node *)
}

val actuals_of_registry : Mad_obs.Registry.t -> Mad.Mdesc.t -> node_actual list
(** The per-node ["derive.atoms"]/["derive.links"] counters a
    registry-backed derivation recorded. *)

val refine_actuals : ?alpha:float -> t -> Planner.plan -> node_actual list -> t
(** Feed one plan's recorded actuals back into the catalog:
    exponentially-weighted ([alpha], default 0.5) updates of
    per-link-type traversal fanouts, distinct-reach factors, and the
    root predicate's observed selectivity.  Repeated refinement on the
    same workload converges the estimates onto the actuals. *)

val refine : ?alpha:float -> t -> Planner.plan -> Mad_obs.Registry.t -> t
(** {!refine_actuals} over {!actuals_of_registry} — the direct
    feedback edge from an [EXPLAIN ANALYZE] run's registry. *)

val replan : t -> Planner.plan -> Planner.plan
(** The catalog-driven planning pass: reorder the residual
    qualification's conjuncts by estimated evaluation cost (expected
    component sizes of the referenced nodes, then selectivity; stable
    on ties).  Because the sizes flow from learned link factors,
    {!refine} can flip the order — a flip changes
    {!Planner.plan_hash} and surfaces as a [plan.switch] in the
    workload digest. *)

val explain_with_estimates : Database.t -> Planner.query -> string
