(** Paged storage simulation: fixed-capacity pages behind an LRU buffer
    pool, with the two physical placement strategies whose contrast the
    PRIMA line of work studied (segment-per-type vs molecule
    clustering).  Adjacency is stored with the owning atom. *)

open Mad_store

module Pool : sig
  type t = {
    capacity : int;
    frames : (int, unit) Hashtbl.t;
    mutable lru : int list;
    mutable logical_reads : int;
    mutable physical_reads : int;
    mutable evictions : int;
    pins : Mad_obs.Metric.counter;
        (** mirrors [logical_reads] into [obs]'s registry
            ([paged.page_pins]) *)
    faults : Mad_obs.Metric.counter;
        (** mirrors [physical_reads] ([paged.page_faults]) *)
  }

  val create : ?obs:Mad_obs.Obs.t -> int -> t
  val fix : t -> int -> unit
  val hit_ratio : t -> float
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

type placement = [ `By_type | `By_molecule of Mad.Mdesc.t ]

type t = {
  db : Database.t;
  page_size : int;  (** atoms per page *)
  page_of : (Aid.t, int) Hashtbl.t;
  pages : int;
  pool : Pool.t;
}

val load :
  ?obs:Mad_obs.Obs.t ->
  ?placement:placement ->
  ?page_size:int ->
  ?buffer_pages:int ->
  Database.t ->
  t

val page_of : t -> Aid.t -> int
val fetch : t -> atype:string -> Aid.t -> Atom.t
val neighbors : t -> string -> dir:[ `Fwd | `Bwd | `Both ] -> Aid.t -> Aid.Set.t
val scan : t -> string -> Atom.t list

val derive_one : t -> Mad.Mdesc.t -> Aid.t -> Mad.Molecule.t
(** Same result as {!Mad.Derive.derive_one}; cost counted in page
    reads. *)

val m_dom : t -> Mad.Mdesc.t -> Mad.Molecule.t list
