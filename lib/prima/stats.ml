(** Catalog statistics and cost estimation for the molecule-processing
    planner — the query-optimization groundwork ch. 5 announces ("we
    can conveniently exploit the algebra to considerably simplify and
    enhance query transformation and query optimization").

    Statistics: per atom type its cardinality and per-attribute
    distinct-value counts; per link type its average fanout in both
    directions (the symmetric link index makes both cheap to know).
    Estimation: textbook selectivity rules over the qualification and
    fanout products over the structure DAG. *)

open Mad_store
module Smap = Map.Make (String)

type link_stat = {
  pairs : int;
  fanout_fwd : float;  (** avg partners of a left-role atom *)
  fanout_bwd : float;
}

type t = {
  atom_counts : int Smap.t;
  distinct : int Smap.t;  (** "type.attr" -> distinct values *)
  link_stats : link_stat Smap.t;
}

let key atype attr = atype ^ "." ^ attr

let collect db =
  let atom_counts =
    List.fold_left
      (fun m at -> Smap.add at (Database.count_atoms db at) m)
      Smap.empty (Database.atom_type_names db)
  in
  let distinct =
    List.fold_left
      (fun m atname ->
        let at = Database.atom_type db atname in
        List.fold_left
          (fun m (a : Schema.Attr.t) ->
            let i = Schema.Atom_type.attr_index at a.name in
            let seen = Hashtbl.create 64 in
            List.iter
              (fun (atom : Atom.t) ->
                Hashtbl.replace seen (Value.to_string atom.values.(i)) ())
              (Database.atoms db atname);
            Smap.add (key atname a.name) (Hashtbl.length seen) m)
          m at.attrs)
      Smap.empty (Database.atom_type_names db)
  in
  let link_stats =
    List.fold_left
      (fun m ltname ->
        let lt = Database.link_type db ltname in
        let pairs = Database.count_links db ltname in
        let e1, e2 = lt.ends in
        let n1 = max 1 (Database.count_atoms db e1) in
        let n2 = max 1 (Database.count_atoms db e2) in
        Smap.add ltname
          {
            pairs;
            fanout_fwd = float_of_int pairs /. float_of_int n1;
            fanout_bwd = float_of_int pairs /. float_of_int n2;
          }
          m)
      Smap.empty (Database.link_type_names db)
  in
  { atom_counts; distinct; link_stats }

(* ------------------------------------------------------------------ *)
(* Selectivity of qualifications (textbook heuristics)                  *)

let rec selectivity t pred =
  match pred with
  | Mad.Qual.True -> 1.0
  | Mad.Qual.False -> 0.0
  | Mad.Qual.Cmp (op, a, b) -> begin
    let eq_sel =
      (* equality against an attribute: 1/ndv *)
      let of_attr = function
        | Mad.Qual.Attr { node; attr } ->
          Some
            (1.0
            /. float_of_int (max 1 (Option.value ~default:10 (Smap.find_opt (key node attr) t.distinct))))
        | _ -> None
      in
      match (of_attr a, of_attr b) with
      | Some s, _ | _, Some s -> s
      | None, None -> 0.5
    in
    match op with
    | Mad.Qual.Eq -> eq_sel
    | Mad.Qual.Ne -> 1.0 -. eq_sel
    | Mad.Qual.Lt | Mad.Qual.Le | Mad.Qual.Gt | Mad.Qual.Ge -> 1.0 /. 3.0
  end
  | Mad.Qual.And (a, b) -> selectivity t a *. selectivity t b
  | Mad.Qual.Or (a, b) ->
    let sa = selectivity t a and sb = selectivity t b in
    sa +. sb -. (sa *. sb)
  | Mad.Qual.Not a -> 1.0 -. selectivity t a
  | Mad.Qual.Exists (_, _) | Mad.Qual.Forall (_, _) -> 0.5

(* ------------------------------------------------------------------ *)
(* Derivation cost estimation                                           *)

type estimate = {
  est_roots : float;  (** molecules to derive *)
  est_atoms : float;  (** atoms fetched during derivation *)
  est_links : float;  (** link traversals *)
}

let pp_estimate ppf e =
  Fmt.pf ppf "est: %.1f molecules, %.1f atoms, %.1f link traversals"
    e.est_roots e.est_atoms e.est_links

type node_estimate = {
  ne_node : string;
  ne_atoms : float;  (** atoms expected at this node, over all molecules *)
  ne_links : float;  (** link traversals arriving at this node *)
}

type detail = { d_est : estimate; d_nodes : node_estimate list }

(** Estimate the work of executing a plan: qualifying roots, then per
    structure edge in topological order the expected component sizes
    (fanout products; diamonds take the min over incoming edges).
    The detail keeps the per-node totals — the "estimated" column of
    [EXPLAIN ANALYZE], matched against the per-node actuals recorded
    by {!Mad.Derive} under the same node names. *)
let estimate_detail t (p : Planner.plan) =
  let desc = p.Planner.derive_desc in
  let root = Mad.Mdesc.root desc in
  let root_count =
    float_of_int (Option.value ~default:0 (Smap.find_opt root t.atom_counts))
  in
  let roots =
    match p.Planner.root_pred with
    | None -> root_count
    | Some q -> root_count *. selectivity t q
  in
  (* sizes: expected atoms per molecule at each node; the root
     contributes exactly one *)
  let sizes = ref (Smap.singleton root 1.0) in
  let links = ref 0.0 in
  let atoms = ref 1.0 in
  let nodes = ref [ { ne_node = root; ne_atoms = roots; ne_links = 0.0 } ] in
  List.iter
    (fun node ->
      if not (String.equal node root) then begin
        let node_links = ref 0.0 in
        let per_edge =
          List.map
            (fun (e : Mad.Mdesc.edge) ->
              let parent = Option.value ~default:0.0 (Smap.find_opt e.from_at !sizes) in
              let st = Smap.find_opt e.link t.link_stats in
              let fanout =
                match (st, e.dir) with
                | Some s, `Fwd -> s.fanout_fwd
                | Some s, `Bwd -> s.fanout_bwd
                | None, (`Fwd | `Bwd) -> 1.0
              in
              let reached = parent *. fanout in
              links := !links +. reached;
              node_links := !node_links +. reached;
              reached)
            (Mad.Mdesc.in_edges desc node)
        in
        let size =
          match per_edge with
          | [] -> 0.0
          | xs -> List.fold_left Float.min Float.infinity xs
        in
        atoms := !atoms +. size;
        sizes := Smap.add node size !sizes;
        nodes :=
          {
            ne_node = node;
            ne_atoms = roots *. size;
            ne_links = roots *. !node_links;
          }
          :: !nodes
      end)
    (Mad.Mdesc.topo_order desc);
  {
    d_est =
      {
        est_roots = roots;
        est_atoms = roots *. !atoms;
        est_links = roots *. !links;
      };
    d_nodes = List.rev !nodes;
  }

let estimate t p = (estimate_detail t p).d_est

(** EXPLAIN with cost estimates: the naive and optimized plans side by
    side. *)
let explain_with_estimates db (q : Planner.query) =
  let t = collect db in
  let naive = Planner.plan ~optimize:false q in
  let optimized = Planner.plan ~optimize:true q in
  Format.asprintf "%a  naive     %a@.  optimized %a@." Planner.pp optimized
    pp_estimate (estimate t naive) pp_estimate (estimate t optimized)
