(** Catalog statistics and cost estimation for the molecule-processing
    planner — the query-optimization groundwork ch. 5 announces ("we
    can conveniently exploit the algebra to considerably simplify and
    enhance query transformation and query optimization").

    Statistics: per atom type its cardinality and per-attribute
    distinct-value counts; per link type its average fanout in both
    directions (the symmetric link index makes both cheap to know).
    Estimation: textbook selectivity rules over the qualification and
    fanout products over the structure DAG. *)

open Mad_store
module Smap = Map.Make (String)

type link_stat = {
  pairs : int;
  fanout_fwd : float;  (** avg partners of a left-role atom *)
  fanout_bwd : float;
}

type learned_link = {
  lf_fwd : float option;  (** link traversals per parent atom, forward *)
  lf_bwd : float option;
  lr_fwd : float option;  (** distinct atoms reached per parent atom *)
  lr_bwd : float option;
}
(** Adaptive per-link-type factors, learned by {!refine} from recorded
    actuals.  Traversal fanout (lf) and distinct reach (lr) are kept
    separately: the catalog fanout conflates them, but under subobject
    sharing many traversals reach few distinct atoms (Fig. 1's edges
    sharing corner points), so links and component sizes need
    different factors. *)

type t = {
  atom_counts : int Smap.t;
  distinct : int Smap.t;  (** "type.attr" -> distinct values *)
  link_stats : link_stat Smap.t;
  learned : learned_link Smap.t;  (** link type -> refined factors *)
  learned_sel : float Smap.t;  (** "root|pred" -> observed selectivity *)
}

let key atype attr = atype ^ "." ^ attr

let collect db =
  let atom_counts =
    List.fold_left
      (fun m at -> Smap.add at (Database.count_atoms db at) m)
      Smap.empty (Database.atom_type_names db)
  in
  let distinct =
    List.fold_left
      (fun m atname ->
        let at = Database.atom_type db atname in
        List.fold_left
          (fun m (a : Schema.Attr.t) ->
            let i = Schema.Atom_type.attr_index at a.name in
            let seen = Hashtbl.create 64 in
            List.iter
              (fun (atom : Atom.t) ->
                Hashtbl.replace seen (Value.to_string atom.values.(i)) ())
              (Database.atoms db atname);
            Smap.add (key atname a.name) (Hashtbl.length seen) m)
          m at.attrs)
      Smap.empty (Database.atom_type_names db)
  in
  let link_stats =
    List.fold_left
      (fun m ltname ->
        let lt = Database.link_type db ltname in
        let pairs = Database.count_links db ltname in
        let e1, e2 = lt.ends in
        let n1 = max 1 (Database.count_atoms db e1) in
        let n2 = max 1 (Database.count_atoms db e2) in
        Smap.add ltname
          {
            pairs;
            fanout_fwd = float_of_int pairs /. float_of_int n1;
            fanout_bwd = float_of_int pairs /. float_of_int n2;
          }
          m)
      Smap.empty (Database.link_type_names db)
  in
  { atom_counts; distinct; link_stats; learned = Smap.empty;
    learned_sel = Smap.empty }

(* ------------------------------------------------------------------ *)
(* Selectivity of qualifications (textbook heuristics)                  *)

let rec selectivity t pred =
  match pred with
  | Mad.Qual.True -> 1.0
  | Mad.Qual.False -> 0.0
  | Mad.Qual.Cmp (op, a, b) -> begin
    let eq_sel =
      (* equality against an attribute: 1/ndv *)
      let of_attr = function
        | Mad.Qual.Attr { node; attr } ->
          Some
            (1.0
            /. float_of_int (max 1 (Option.value ~default:10 (Smap.find_opt (key node attr) t.distinct))))
        | _ -> None
      in
      match (of_attr a, of_attr b) with
      | Some s, _ | _, Some s -> s
      | None, None -> 0.5
    in
    match op with
    | Mad.Qual.Eq -> eq_sel
    | Mad.Qual.Ne -> 1.0 -. eq_sel
    | Mad.Qual.Lt | Mad.Qual.Le | Mad.Qual.Gt | Mad.Qual.Ge -> 1.0 /. 3.0
  end
  | Mad.Qual.And (a, b) -> selectivity t a *. selectivity t b
  | Mad.Qual.Or (a, b) ->
    let sa = selectivity t a and sb = selectivity t b in
    sa +. sb -. (sa *. sb)
  | Mad.Qual.Not a -> 1.0 -. selectivity t a
  | Mad.Qual.Exists (_, _) | Mad.Qual.Forall (_, _) -> 0.5

(* ------------------------------------------------------------------ *)
(* Derivation cost estimation                                           *)

type estimate = {
  est_roots : float;  (** molecules to derive *)
  est_atoms : float;  (** atoms fetched during derivation *)
  est_links : float;  (** link traversals *)
}

let pp_estimate ppf e =
  Fmt.pf ppf "est: %.1f molecules, %.1f atoms, %.1f link traversals"
    e.est_roots e.est_atoms e.est_links

type node_estimate = {
  ne_node : string;
  ne_atoms : float;  (** atoms expected at this node, over all molecules *)
  ne_links : float;  (** link traversals arriving at this node *)
}

type detail = { d_est : estimate; d_nodes : node_estimate list }

(** Estimate the work of executing a plan: qualifying roots, then per
    structure edge in topological order the expected component sizes
    (fanout products; diamonds take the min over incoming edges).
    The detail keeps the per-node totals — the "estimated" column of
    [EXPLAIN ANALYZE], matched against the per-node actuals recorded
    by {!Mad.Derive} under the same node names. *)
let sel_key root pred = root ^ "|" ^ Mad.Qual.to_string pred

(* the per-edge factors the estimator multiplies with: traversal
   fanout (how many link traversals a parent atom causes) and distinct
   reach (how many distinct atoms they arrive at).  The static catalog
   knows only the former; [refine] learns both from actuals. *)
let edge_factors t (e : Mad.Mdesc.edge) =
  let static =
    match (Smap.find_opt e.link t.link_stats, e.dir) with
    | Some s, `Fwd -> s.fanout_fwd
    | Some s, `Bwd -> s.fanout_bwd
    | None, (`Fwd | `Bwd) -> 1.0
  in
  match Smap.find_opt e.link t.learned with
  | None -> (static, static)
  | Some l ->
    let lf, lr =
      match e.dir with
      | `Fwd -> (l.lf_fwd, l.lr_fwd)
      | `Bwd -> (l.lf_bwd, l.lr_bwd)
    in
    let trav = Option.value ~default:static lf in
    (trav, Option.value ~default:trav lr)

let estimate_detail t (p : Planner.plan) =
  let desc = p.Planner.derive_desc in
  let root = Mad.Mdesc.root desc in
  let root_count =
    float_of_int (Option.value ~default:0 (Smap.find_opt root t.atom_counts))
  in
  let roots =
    match p.Planner.root_pred with
    | None -> root_count
    | Some q ->
      let sel =
        match Smap.find_opt (sel_key root q) t.learned_sel with
        | Some s -> s
        | None -> selectivity t q
      in
      root_count *. sel
  in
  (* sizes: expected atoms per molecule at each node; the root
     contributes exactly one *)
  let sizes = ref (Smap.singleton root 1.0) in
  let links = ref 0.0 in
  let atoms = ref 1.0 in
  let nodes = ref [ { ne_node = root; ne_atoms = roots; ne_links = 0.0 } ] in
  List.iter
    (fun node ->
      if not (String.equal node root) then begin
        let node_links = ref 0.0 in
        let per_edge =
          List.map
            (fun (e : Mad.Mdesc.edge) ->
              let parent = Option.value ~default:0.0 (Smap.find_opt e.from_at !sizes) in
              let trav, reach = edge_factors t e in
              let traversed = parent *. trav in
              links := !links +. traversed;
              node_links := !node_links +. traversed;
              parent *. reach)
            (Mad.Mdesc.in_edges desc node)
        in
        let size =
          match per_edge with
          | [] -> 0.0
          | xs -> List.fold_left Float.min Float.infinity xs
        in
        atoms := !atoms +. size;
        sizes := Smap.add node size !sizes;
        nodes :=
          {
            ne_node = node;
            ne_atoms = roots *. size;
            ne_links = roots *. !node_links;
          }
          :: !nodes
      end)
    (Mad.Mdesc.topo_order desc);
  {
    d_est =
      {
        est_roots = roots;
        est_atoms = roots *. !atoms;
        est_links = roots *. !links;
      };
    d_nodes = List.rev !nodes;
  }

let estimate t p = (estimate_detail t p).d_est

(* ------------------------------------------------------------------ *)
(* Adaptive statistics: feeding recorded actuals back into the catalog *)

type node_actual = {
  na_node : string;
  na_atoms : int;  (** atoms included at this node, over all molecules *)
  na_links : int;  (** link traversals arriving at this node *)
}

(** The per-node actuals a registry-backed derivation recorded (the
    ["derive.atoms"]/["derive.links"] counters of an [EXPLAIN ANALYZE]
    or {!Profile} run). *)
let actuals_of_registry reg desc =
  List.map
    (fun node ->
      let labels = [ ("node", node) ] in
      {
        na_node = node;
        na_atoms = Mad_obs.Registry.counter_value reg ~labels "derive.atoms";
        na_links = Mad_obs.Registry.counter_value reg ~labels "derive.links";
      })
    (Mad.Mdesc.nodes desc)

(** Refine the catalog with one plan's recorded actuals,
    exponentially weighted: each learned factor moves [alpha] of the
    way from its previous value (or the static estimate, on first
    observation) toward the observed one, so repeated queries
    converge geometrically while one outlier run cannot wreck the
    catalog.  Learned per edge: traversal fanout (links per parent
    atom) and distinct reach (atoms per parent atom); per root
    predicate: observed selectivity.  Only nodes with a single
    incoming edge teach fanouts — a diamond's aggregate counters
    cannot be attributed to one edge. *)
let refine_actuals ?(alpha = 0.5) t (p : Planner.plan) actuals =
  let find node = List.find_opt (fun a -> String.equal a.na_node node) actuals in
  let desc = p.Planner.derive_desc in
  let root = Mad.Mdesc.root desc in
  let blend prev obs = ((1.0 -. alpha) *. prev) +. (alpha *. obs) in
  (* root selectivity: qualifying roots over the type's cardinality *)
  let learned_sel =
    match (p.Planner.root_pred, find root) with
    | Some q, Some na ->
      let root_count =
        float_of_int
          (Option.value ~default:0 (Smap.find_opt root t.atom_counts))
      in
      if root_count <= 0.0 then t.learned_sel
      else begin
        let k = sel_key root q in
        let obs = float_of_int na.na_atoms /. root_count in
        let prev =
          match Smap.find_opt k t.learned_sel with
          | Some s -> s
          | None -> selectivity t q
        in
        Smap.add k (blend prev obs) t.learned_sel
      end
    | (None | Some _), _ -> t.learned_sel
  in
  (* per-link-type factors from single-in-edge nodes *)
  let learned =
    List.fold_left
      (fun learned node ->
        if String.equal node root then learned
        else
          match Mad.Mdesc.in_edges desc node with
          | [ e ] -> begin
            match (find e.Mad.Mdesc.from_at, find node) with
            | Some pa, Some na when pa.na_atoms > 0 ->
              let parent = float_of_int pa.na_atoms in
              let obs_lf = float_of_int na.na_links /. parent in
              let obs_lr = float_of_int na.na_atoms /. parent in
              let static, _ = edge_factors t e in
              let prior =
                Option.value
                  ~default:{ lf_fwd = None; lf_bwd = None; lr_fwd = None; lr_bwd = None }
                  (Smap.find_opt e.Mad.Mdesc.link learned)
              in
              let upd prev obs =
                Some (blend (Option.value ~default:static prev) obs)
              in
              let prior =
                match e.Mad.Mdesc.dir with
                | `Fwd ->
                  { prior with
                    lf_fwd = upd prior.lf_fwd obs_lf;
                    lr_fwd = upd prior.lr_fwd obs_lr }
                | `Bwd ->
                  { prior with
                    lf_bwd = upd prior.lf_bwd obs_lf;
                    lr_bwd = upd prior.lr_bwd obs_lr }
              in
              Smap.add e.Mad.Mdesc.link prior learned
            | _, _ -> learned
          end
          | _ -> learned)
      t.learned (Mad.Mdesc.nodes desc)
  in
  { t with learned; learned_sel }

(** {!refine_actuals} over the per-node counters a registry recorded. *)
let refine ?alpha t (p : Planner.plan) reg =
  refine_actuals ?alpha t p (actuals_of_registry reg p.Planner.derive_desc)

(* ------------------------------------------------------------------ *)
(* Stats-driven replanning                                              *)

(** Reorder the residual qualification's conjuncts by estimated
    evaluation cost: a conjunct touching small expected components
    runs (and usually rejects) first, so the expensive quantified
    checks over large components only see survivors.  The component
    sizes flow from {!edge_factors}, so learned factors ({!refine})
    genuinely move the order — this is the stats-driven plan decision
    whose flips the workload digest surfaces as [plan.switch]. *)
let replan t (p : Planner.plan) =
  match p.Planner.residual with
  | None -> p
  | Some q -> begin
    match Planner.conjuncts q with
    | [] | [ _ ] -> p
    | cs ->
      let detail = estimate_detail t p in
      let size n =
        match
          List.find_opt (fun ne -> String.equal ne.ne_node n) detail.d_nodes
        with
        | Some ne -> ne.ne_atoms
        | None -> 0.0
      in
      let cost c =
        Mad.Qual.Sset.fold
          (fun n acc -> acc +. size n)
          (Mad.Qual.nodes c) 0.0
      in
      (* cheap first; equally cheap conjuncts run the more selective
         one first; the sort is stable so ties keep statement order *)
      let keyed = List.map (fun c -> ((cost c, selectivity t c), c)) cs in
      let sorted =
        List.stable_sort (fun (k1, _) (k2, _) -> compare k1 k2) keyed
      in
      let cs' = List.map snd sorted in
      if List.for_all2 ( == ) cs cs' then p
      else
        {
          p with
          Planner.residual = Planner.conjoin cs';
          notes =
            p.Planner.notes
            @ [ "reorder: residual conjuncts by estimated cost" ];
        }
  end

(** EXPLAIN with cost estimates: the naive and optimized plans side by
    side. *)
let explain_with_estimates db (q : Planner.query) =
  let t = collect db in
  let naive = Planner.plan ~optimize:false q in
  let optimized = Planner.plan ~optimize:true q in
  Format.asprintf "%a  naive     %a@.  optimized %a@." Planner.pp optimized
    pp_estimate (estimate t naive) pp_estimate (estimate t optimized)
