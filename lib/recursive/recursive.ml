(** Recursive molecule types — the ch. 5 outlook of the paper,
    following Schöning's extension ([Schö89]): reflexive link types
    (and other schema cycles) are queried recursively, e.g. the parts
    explosion (sub-component view) or where-used (super-component view)
    of a bill-of-material.

    A recursive molecule-type description names a root atom type and a
    reflexive link type on it, a view (which role to expand: [Sub]
    follows the left-to-right role, [Super] the converse — the paper's
    "super-component view or only the sub-component view" exploiting
    link symmetry), and an optional depth bound.  Derivation computes,
    per root atom, the least fixpoint of one-step expansion; cycles in
    the *data* terminate because expansion is monotone over a finite
    atom set. *)

open Mad_store

type view = Sub | Super

type desc = {
  root_type : string;
  link : string;
  view : view;
  max_depth : int option;  (** [None]: unbounded (full closure) *)
  component : Mad.Mdesc.t option;
      (** Schöning's full recursive molecule types: a plain molecule
          structure rooted at [root_type] that every reached atom
          expands (e.g. each part of an explosion with its supplier
          sub-structure, each cell of a flattened design with its
          pins) *)
}

type molecule = {
  root : Aid.t;
  members : Aid.Set.t;  (** includes the root *)
  links : Link.Set.t;  (** the composition links traversed *)
  depth_of : int Aid.Map.t;  (** shortest expansion depth per member *)
  components : Mad.Molecule.t Aid.Map.t;
      (** per member, the component sub-molecule (empty without a
          component structure) *)
}

type t = { name : string; desc : desc; occ : molecule list }

let pp_view ppf = function
  | Sub -> Fmt.string ppf "SUB"
  | Super -> Fmt.string ppf "SUPER"

let pp_desc ppf d =
  Fmt.pf ppf "%s RECURSIVE BY %s %a%a%a" d.root_type d.link pp_view d.view
    Fmt.(option (fmt " DEPTH %d"))
    d.max_depth
    Fmt.(option (fun ppf c -> Fmt.pf ppf " WITH %a" Mad.Mdesc.pp c))
    d.component

(** Validate the description: the link type must be reflexive on the
    root atom type; a component structure must be rooted there and must
    not use the recursion link. *)
let v db ~root_type ~link ?(view = Sub) ?max_depth ?component () =
  let lt = Database.link_type db link in
  if not (Schema.Link_type.reflexive lt) then
    Err.failf "recursive molecules need a reflexive link type; %s is not"
      link;
  if not (String.equal (fst lt.ends) root_type) then
    Err.failf "link type %s is not defined on atom type %s" link root_type;
  (match max_depth with
   | Some d when d < 0 -> Err.failf "negative recursion depth %d" d
   | Some _ | None -> ());
  (match component with
   | None -> ()
   | Some c ->
     if not (String.equal (Mad.Mdesc.root c) root_type) then
       Err.failf "component structure must be rooted at %s, not %s" root_type
         (Mad.Mdesc.root c);
     if
       List.exists
         (fun (e : Mad.Mdesc.edge) -> String.equal e.link link)
         (Mad.Mdesc.edges c)
     then
       Err.failf "component structure may not reuse the recursion link %s"
         link);
  { root_type; link; view; max_depth; component }

let dir_of_view = function Sub -> `Fwd | Super -> `Bwd

let kernel_enabled () =
  match Sys.getenv_opt "MAD_KERNEL" with
  | Some ("off" | "0" | "scalar" | "no" | "false") -> false
  | Some _ | None -> true

(* Post-order of the CSR graph (children before parents), or [None]
   when a cycle (including a self-loop) makes one impossible.
   Iterative DFS — recursion depth would track the longest chain. *)
let topo_postorder (m : Mad_kernel.Snapshot.csr) n =
  let state = Bytes.make (max 1 n) '\000' in
  (* '\000' unvisited, '\001' on the DFS stack, '\002' finished *)
  let order = Array.make (max 1 n) 0 in
  let onum = ref 0 in
  let cyclic = ref false in
  let stack = ref [] in
  for s = 0 to n - 1 do
    if Bytes.get state s = '\000' && not !cyclic then begin
      Bytes.set state s '\001';
      stack := [ (s, m.Mad_kernel.Snapshot.offs.(s)) ];
      while !stack <> [] && not !cyclic do
        match !stack with
        | [] -> ()
        | (v, k) :: rest ->
          if k < m.Mad_kernel.Snapshot.offs.(v + 1) then begin
            stack := (v, k + 1) :: rest;
            let c = m.Mad_kernel.Snapshot.cols.(k) in
            match Bytes.get state c with
            | '\000' ->
              Bytes.set state c '\001';
              stack := (c, m.Mad_kernel.Snapshot.offs.(c)) :: !stack
            | '\001' -> cyclic := true
            | _ -> ()
          end
          else begin
            Bytes.set state v '\002';
            order.(!onum) <- v;
            incr onum;
            stack := rest
          end
      done
    end
  done;
  if !cyclic then None else Some order

(* Unbounded closures over a DAG compose: members(p) = {p} ∪ the
   members of p's partners, likewise the used links.  Computing them
   bottom-up shares the persistent sub-sets across every root — the
   per-root BFS then only supplies depths and the work counts, which
   are root-relative and cannot be shared. *)
let memo_closures snap (d : desc) =
  let ti = Mad_kernel.Snapshot.tindex snap d.root_type in
  let n = Mad_kernel.Snapshot.cardinal ti in
  let dir = match d.view with Sub -> `Fwd | Super -> `Bwd in
  let m = Mad_kernel.Snapshot.csr snap d.link ~dir in
  match topo_postorder m n with
  | None -> None
  | Some order ->
    let members = Array.make (max 1 n) Aid.Set.empty in
    let links = Array.make (max 1 n) Link.Set.empty in
    for k = 0 to n - 1 do
      let p = order.(k) in
      let p_raw = ti.Mad_kernel.Snapshot.ids.(p) in
      let mem = ref (Aid.Set.singleton p_raw) in
      let lnk = ref Link.Set.empty in
      for j = m.Mad_kernel.Snapshot.offs.(p)
          to m.Mad_kernel.Snapshot.offs.(p + 1) - 1 do
        let c = m.Mad_kernel.Snapshot.cols.(j) in
        let c_raw = ti.Mad_kernel.Snapshot.ids.(c) in
        let left, right =
          match d.view with Sub -> (p_raw, c_raw) | Super -> (c_raw, p_raw)
        in
        mem := Aid.Set.union !mem members.(c);
        lnk := Link.Set.add (Link.v d.link left right) (Link.Set.union !lnk links.(c))
      done;
      members.(p) <- !mem;
      links.(p) <- !lnk
    done;
    Some (ti, members, links)

(* The memo is pure given (database, epoch, link, view) — exactly the
   snapshot-cache discipline, so it gets the same small keyed cache:
   repeated derivations of one recursive type between mutations reuse
   the shared sets outright.  A [None] value records a cyclic verdict,
   sparing the re-probe. *)
type memo_entry = {
  me_db : Database.t;
  me_epoch : int;
  me_link : string;
  me_view : view;
  me_val :
    (Mad_kernel.Snapshot.tindex * Aid.Set.t array * Link.Set.t array) option;
}

let memo_cache : memo_entry list ref = ref []
let memo_cache_cap = 8

let repair_counter =
  Mad_obs.Once.make (fun () ->
      Mad_obs.Registry.counter
        (Mad_obs.Obs.registry (Mad_obs.Obs.default ()))
        "closure.repaired")

(* Repair the prior memo entry across a delta window instead of
   recomputing it, at one of three levels:
   - the window touches neither the link type nor the root type's atom
     population: the memo (including a cyclic [None] verdict) is
     re-stamped at the new epoch wholesale;
   - the link changed but the root population did not: dense indices
     are stable, so only the patched parents and their ancestors can
     have different reachable sets — they are recomputed over the new
     CSR in a fresh postorder, every clean node reuses the prior sets;
   - anything else (root population changed, prior verdict cyclic, the
     arrays do not line up): no repair, caller recomputes.
   Returns [Some v] with the repaired value ([Some None] when the new
   graph turned cyclic), [None] when the caller must recompute. *)
let repair_closures snap (d : desc) w (prior : memo_entry) =
  let link_touched = Mad_kernel.Delta.touches_link w d.link in
  let roots_touched = Mad_kernel.Delta.touches_atype w d.root_type in
  if (not link_touched) && not roots_touched then begin
    (* nothing structural moved under this closure: re-stamp *)
    let n =
      match prior.me_val with
      | Some (_, members, _) -> Array.length members
      | None -> 0
    in
    Mad_obs.Metric.incr (Mad_obs.Once.force repair_counter);
    Mad_obs.Recorder.note Closure_repair ~label:d.link ~a:0 ~b:n ();
    Some prior.me_val
  end
  else
    match prior.me_val with
    | None -> None  (* the cycle may have been broken: recompute *)
    | Some _ when roots_touched -> None
    | Some (_, mem_old, lnk_old) ->
      let t0 = Mad_obs.Monotonic.ticks () in
      let ti = Mad_kernel.Snapshot.tindex snap d.root_type in
      let n = Mad_kernel.Snapshot.cardinal ti in
      if Array.length mem_old <> max 1 n then None
      else begin
        let dir = match d.view with Sub -> `Fwd | Super -> `Bwd in
        let m = Mad_kernel.Snapshot.csr snap d.link ~dir in
        match topo_postorder m n with
        | None ->
          (* the window introduced a cycle: the verdict is the repair *)
          Mad_obs.Metric.incr (Mad_obs.Once.force repair_counter);
          Mad_obs.Recorder.note Closure_repair
            ~dur_ns:(Mad_obs.Monotonic.ticks () - t0)
            ~label:d.link ~a:n ~b:n ();
          Some None
        | Some order ->
          let members = Array.copy mem_old in
          let links = Array.copy lnk_old in
          let dirty = Bytes.make (max 1 n) '\000' in
          List.iter
            (fun ((left, right), _add) ->
              (* the parent side of the patched pair is the CSR row
                 whose reachable set the patch can change *)
              let parent = match d.view with Sub -> left | Super -> right in
              let p = Mad_kernel.Snapshot.idx_of ti parent in
              if p >= 0 then Bytes.set dirty p '\001')
            (Mad_kernel.Delta.link_patches w d.link);
          let n_dirty = ref 0 in
          for k = 0 to n - 1 do
            let p = order.(k) in
            let isd = ref (Bytes.get dirty p = '\001') in
            let j = ref m.Mad_kernel.Snapshot.offs.(p) in
            while (not !isd) && !j < m.Mad_kernel.Snapshot.offs.(p + 1) do
              if Bytes.get dirty m.Mad_kernel.Snapshot.cols.(!j) = '\001' then
                isd := true;
              incr j
            done;
            if !isd then begin
              (* children precede parents in the postorder, so every
                 child entry read here is already repaired *)
              Bytes.set dirty p '\001';
              incr n_dirty;
              let p_raw = ti.Mad_kernel.Snapshot.ids.(p) in
              let mem = ref (Aid.Set.singleton p_raw) in
              let lnk = ref Link.Set.empty in
              for j = m.Mad_kernel.Snapshot.offs.(p)
                  to m.Mad_kernel.Snapshot.offs.(p + 1) - 1 do
                let c = m.Mad_kernel.Snapshot.cols.(j) in
                let c_raw = ti.Mad_kernel.Snapshot.ids.(c) in
                let left, right =
                  match d.view with
                  | Sub -> (p_raw, c_raw)
                  | Super -> (c_raw, p_raw)
                in
                mem := Aid.Set.union !mem members.(c);
                lnk :=
                  Link.Set.add (Link.v d.link left right)
                    (Link.Set.union !lnk links.(c))
              done;
              members.(p) <- !mem;
              links.(p) <- !lnk
            end
          done;
          Mad_obs.Metric.incr (Mad_obs.Once.force repair_counter);
          Mad_obs.Recorder.note Closure_repair
            ~dur_ns:(Mad_obs.Monotonic.ticks () - t0)
            ~label:d.link ~a:!n_dirty ~b:n ();
          Some (Some (ti, members, links))
      end

let memo_hit db ep (d : desc) e =
  e.me_db == db && e.me_epoch = ep
  && String.equal e.me_link d.link
  && e.me_view = d.view

(* probe only — a single-root derivation is not worth building the
   whole-graph memo, but reuses one a prior [m_dom] left behind *)
let memo_probe snap db (d : desc) =
  match d.max_depth with
  | Some _ -> None
  | None -> begin
    let ep = Mad_kernel.Snapshot.epoch snap in
    match List.find_opt (memo_hit db ep d) !memo_cache with
    | Some { me_val = Some v; _ } -> Some v
    | Some { me_val = None; _ } | None -> None
  end

let memo_closures_cached snap db (d : desc) =
  let ep = Mad_kernel.Snapshot.epoch snap in
  match List.find_opt (memo_hit db ep d) !memo_cache with
  | Some e -> e.me_val
  | None ->
    (* a stale same-key entry is the repair source, not garbage: try
       to carry it across the mutation window before recomputing *)
    let same_key e =
      e.me_db == db && String.equal e.me_link d.link && e.me_view = d.view
    in
    let repaired =
      match List.find_opt same_key !memo_cache with
      | None -> None
      | Some prior -> begin
        match
          Mad_kernel.Delta.window db ~from_epoch:prior.me_epoch ~to_epoch:ep
        with
        | None -> None
        | Some w -> repair_closures snap d w prior
      end
    in
    let v = match repaired with Some v -> v | None -> memo_closures snap d in
    let keep = List.filter (fun e -> not (same_key e)) !memo_cache in
    let keep = List.filteri (fun i _ -> i < memo_cache_cap - 1) keep in
    memo_cache :=
      { me_db = db; me_epoch = ep; me_link = d.link; me_view = d.view; me_val = v }
      :: keep;
    v

let depth_map (cl : Mad_kernel.Kernel.closure) =
  let depth_of = ref Aid.Map.empty in
  Array.iteri
    (fun i id -> depth_of := Aid.Map.add id cl.c_depths.(i) !depth_of)
    cl.c_atoms;
  !depth_of

(* Lift a kernel closure into the molecule's sets; work accounting
   matches the scalar loop below exactly.  [of_list] builds (sort +
   linear construction) beat element-wise [add] here, and at this
   point the closure output is complete, so batch construction is
   available. *)
let convert_closure ~stats (d : desc) (cl : Mad_kernel.Kernel.closure) =
  Mad_obs.Metric.add stats.Mad.Derive.atoms_visited cl.c_visited;
  Mad_obs.Metric.add stats.Mad.Derive.links_traversed cl.c_traversed;
  let members = Aid.Set.of_list (Array.to_list cl.c_atoms) in
  let links =
    Link.Set.of_list
      (List.rev_map
         (fun (p, c) ->
           let left, right = match d.view with Sub -> (p, c) | Super -> (c, p) in
           Link.v d.link left right)
         cl.c_pairs)
  in
  (members, links, depth_map cl)

(* the fixpoint as the kernel's BFS closure over the CSR snapshot *)
let closure_kernel ~stats db (d : desc) root =
  let snap = Mad_kernel.Snapshot.of_db db in
  let fwd = match d.view with Sub -> true | Super -> false in
  match memo_probe snap db d with
  | Some (ti, members, links) ->
    let cl =
      Mad_kernel.Kernel.closure ~with_pairs:false snap ~link:d.link ~fwd
        ~atype:d.root_type root
    in
    Mad_obs.Metric.add stats.Mad.Derive.atoms_visited cl.c_visited;
    Mad_obs.Metric.add stats.Mad.Derive.links_traversed cl.c_traversed;
    let ri = Mad_kernel.Snapshot.idx_of ti root in
    (members.(ri), links.(ri), depth_map cl)
  | None ->
    let cl =
      Mad_kernel.Kernel.closure ?max_depth:d.max_depth snap ~link:d.link ~fwd
        ~atype:d.root_type root
    in
    convert_closure ~stats d cl

(** Derive the recursive molecule rooted at [root].  [~kernel] forces
    the path; the default uses the kernel only when a snapshot is warm
    ({!m_dom} builds one up front). *)
(* components (if any) and the molecule record, shared by every path *)
let finish ~stats db (d : desc) root (members, links, depth_of) =
  let components =
    match d.component with
    | None -> Aid.Map.empty
    | Some cdesc ->
      Aid.Set.fold
        (fun member acc ->
          Aid.Map.add member (Mad.Derive.derive_one ~stats db cdesc member) acc)
        members Aid.Map.empty
  in
  { root; members; links; depth_of; components }

let derive_one ?(stats = Mad.Derive.stats ()) ?kernel db (d : desc) root =
  let dir = dir_of_view d.view in
  let within depth =
    match d.max_depth with None -> true | Some k -> depth <= k
  in
  let rec go members links depth_of frontier depth =
    if Aid.Set.is_empty frontier || not (within depth) then
      (members, links, depth_of)
    else
      let next, links =
        Aid.Set.fold
          (fun p (next, links) ->
            let next = ref next and links = ref links and seen = ref 0 in
            Database.iter_neighbors db d.link ~dir p (fun c ->
                incr seen;
                let left, right =
                  match d.view with Sub -> (p, c) | Super -> (c, p)
                in
                links := Link.Set.add (Link.v d.link left right) !links;
                next := Aid.Set.add c !next);
            Mad_obs.Metric.add stats.Mad.Derive.links_traversed !seen;
            (!next, !links))
          frontier (Aid.Set.empty, links)
      in
      let fresh = Aid.Set.diff next members in
      Mad_obs.Metric.add stats.Mad.Derive.atoms_visited
        (Aid.Set.cardinal fresh);
      let depth_of =
        Aid.Set.fold (fun id m -> Aid.Map.add id depth m) fresh depth_of
      in
      go (Aid.Set.union members fresh) links depth_of fresh (depth + 1)
  in
  let use =
    match kernel with
    | Some b -> b
    | None ->
      kernel_enabled ()
      && (match Mad_kernel.Snapshot.peek db with Some _ -> true | None -> false)
  in
  let members, links, depth_of =
    if use then closure_kernel ~stats db d root
    else begin
      Mad_obs.Metric.incr stats.Mad.Derive.atoms_visited;
      go (Aid.Set.singleton root) Link.Set.empty
        (Aid.Map.singleton root 0)
        (Aid.Set.singleton root) 1
    end
  in
  finish ~stats db d root (members, links, depth_of)

(** One recursive molecule per atom of the root type.  The kernel path
    runs every root's closure over one CSR snapshot with shared
    scratch buffers ({!Mad_kernel.Kernel.closure_roots}); unbounded
    closures over acyclic link graphs additionally share the member
    and link sets bottom-up ({!memo_closures}). *)
let m_dom ?(stats = Mad.Derive.stats ()) ?kernel db (d : desc) =
  let use = match kernel with Some b -> b | None -> kernel_enabled () in
  let atoms = Database.atoms db d.root_type in
  if not use then
    List.map
      (fun (a : Atom.t) -> derive_one ~stats ~kernel:false db d a.id)
      atoms
  else
    let snap = Mad_kernel.Snapshot.of_db db in
    let fwd = match d.view with Sub -> true | Super -> false in
    let roots = Array.of_list (List.map (fun (a : Atom.t) -> a.Atom.id) atoms) in
    let memo =
      match d.max_depth with
      | None -> memo_closures_cached snap db d
      | Some _ -> None
    in
    match memo with
    | Some (ti, members, links) ->
      let cls =
        Mad_kernel.Kernel.closure_roots ~with_pairs:false snap ~link:d.link
          ~fwd ~atype:d.root_type roots
      in
      List.init (Array.length roots) (fun i ->
          let cl = cls.(i) in
          Mad_obs.Metric.add stats.Mad.Derive.atoms_visited cl.c_visited;
          Mad_obs.Metric.add stats.Mad.Derive.links_traversed cl.c_traversed;
          let ri = Mad_kernel.Snapshot.idx_of ti roots.(i) in
          finish ~stats db d roots.(i)
            (members.(ri), links.(ri), depth_map cl))
    | None ->
      let cls =
        Mad_kernel.Kernel.closure_roots ?max_depth:d.max_depth snap
          ~link:d.link ~fwd ~atype:d.root_type roots
      in
      List.init (Array.length roots) (fun i ->
          finish ~stats db d roots.(i) (convert_closure ~stats d cls.(i)))

let define ?stats ?kernel db ~name (d : desc) =
  { name; desc = d; occ = m_dom ?stats ?kernel db d }

(* ------------------------------------------------------------------ *)
(* Restriction over recursive molecules                                 *)

(** A pseudo-node ["DEPTH"] is available in qualifications: the
    expansion depth of a member atom.  With a component structure, its
    non-root nodes are also addressable (the union of every member's
    component atoms). *)
let molecule_satisfies db (t : t) (m : molecule) pred =
  let component node =
    if String.equal node t.desc.root_type then Aid.Set.elements m.members
    else
      match t.desc.component with
      | Some cdesc when List.mem node (Mad.Mdesc.nodes cdesc) ->
        Aid.Map.fold
          (fun _ sub acc ->
            Aid.Set.elements (Mad.Molecule.component sub node) @ acc)
          m.components []
        |> List.sort_uniq Aid.compare
      | Some _ | None -> []
  in
  let fetch node id attr =
    if String.equal attr "DEPTH" then
      Value.Int (Option.value ~default:0 (Aid.Map.find_opt id m.depth_of))
    else
      let at = Database.atom_type db node in
      Atom.value (Database.get_atom db ~atype:node id) at attr
  in
  Mad.Qual.eval_molecule ~component ~fetch ~root_node:t.desc.root_type
    ~root_atom:m.root pred

let restrict db pred (t : t) ~name =
  { name; desc = t.desc; occ = List.filter (fun m -> molecule_satisfies db t m pred) t.occ }

(* ------------------------------------------------------------------ *)
(* Set operations: recursive molecule types are first-class data model
   objects ([Schö89]), so the set operators extend to them.            *)

let compare_molecule (a : molecule) (b : molecule) =
  let c = Aid.compare a.root b.root in
  if c <> 0 then c
  else
    let c = Aid.Set.compare a.members b.members in
    if c <> 0 then c else Link.Set.compare a.links b.links

let equal_molecule a b = compare_molecule a b = 0

let same_desc (a : desc) (b : desc) =
  String.equal a.root_type b.root_type
  && String.equal a.link b.link
  && a.view = b.view
  && a.max_depth = b.max_depth
  && (match (a.component, b.component) with
     | None, None -> true
     | Some x, Some y -> Mad.Mdesc.equal x y
     | Some _, None | None, Some _ -> false)

let check_compatible op (a : t) (b : t) =
  if not (same_desc a.desc b.desc) then
    Err.failf "%s requires identically described recursive molecule types" op

let dedup occ =
  List.sort_uniq compare_molecule occ

let union ~name (a : t) (b : t) =
  check_compatible "union" a b;
  { name; desc = a.desc; occ = dedup (a.occ @ b.occ) }

let diff ~name (a : t) (b : t) =
  check_compatible "difference" a b;
  {
    name;
    desc = a.desc;
    occ = List.filter (fun m -> not (List.exists (equal_molecule m) b.occ)) a.occ;
  }

let intersect ~name (a : t) (b : t) =
  check_compatible "intersection" a b;
  { name; desc = a.desc; occ = List.filter (fun m -> List.exists (equal_molecule m) b.occ) a.occ }

(* ------------------------------------------------------------------ *)
(* Cycle recursion: "the MAD model allows for reflexive link types and
   for other cycles in the database schema ... These cycles are
   normally queried in a recursive manner" (ch. 5).  A cycle is a
   composition of link-type steps leading from the root atom type back
   to itself (e.g. VLSI connectivity: cell -cell-pin-> pin <-net-pin-
   net -net-pin-> pin <-cell-pin- cell); derivation iterates the whole
   cycle as one macro-step to a fixpoint.                              *)

module Smap = Map.Make (String)

type step = { s_link : string; s_dir : [ `Fwd | `Bwd ] }

type cycle_desc = {
  c_root : string;
  steps : step list;
  c_max_depth : int option;  (** macro-steps; [None]: full closure *)
}

type cycle_molecule = {
  c_root_atom : Aid.t;
  c_members : Aid.Set.t;  (** root-type atoms reached (incl. the root) *)
  c_intermediates : Aid.Set.t Smap.t;  (** per intermediate atom type *)
  c_depth_of : int Aid.Map.t;
}

(** Validate a cycle: the steps' end types must compose from
    [root_type] back to [root_type]. *)
let cycle db ~root_type ~steps ?max_depth () =
  ignore (Database.atom_type db root_type);
  if steps = [] then Err.failf "a cycle needs at least one step";
  let final =
    List.fold_left
      (fun current (link, dir) ->
        let lt = Database.link_type db link in
        let e1, e2 = lt.Schema.Link_type.ends in
        match dir with
        | `Fwd ->
          if not (String.equal e1 current) then
            Err.failf
              "cycle step %s: expected to start at %s, link starts at %s"
              link current e1
          else e2
        | `Bwd ->
          if not (String.equal e2 current) then
            Err.failf
              "cycle step %s (backward): expected to start at %s, link ends \
               at %s"
              link current e2
          else e1)
      root_type steps
  in
  if not (String.equal final root_type) then
    Err.failf "cycle does not return to %s (ends at %s)" root_type final;
  (match max_depth with
   | Some d when d < 0 -> Err.failf "negative recursion depth %d" d
   | Some _ | None -> ());
  {
    c_root = root_type;
    steps = List.map (fun (s_link, s_dir) -> { s_link; s_dir }) steps;
    c_max_depth = max_depth;
  }

(* one macro-step: apply every step in sequence, collecting the
   intermediate atoms per type *)
let macro_step db (d : cycle_desc) frontier intermediates =
  let current, intermediates =
    List.fold_left
      (fun (current, inter) step ->
        let next =
          let dir = (step.s_dir :> [ `Fwd | `Bwd | `Both ]) in
          Aid.Set.fold
            (fun id acc ->
              let acc = ref acc in
              Database.iter_neighbors db step.s_link ~dir id (fun n ->
                  acc := Aid.Set.add n !acc);
              !acc)
            current Aid.Set.empty
        in
        let lt = Database.link_type db step.s_link in
        let target =
          match step.s_dir with
          | `Fwd -> snd lt.Schema.Link_type.ends
          | `Bwd -> fst lt.Schema.Link_type.ends
        in
        let inter =
          if String.equal target d.c_root then inter
          else
            Smap.update target
              (fun cur ->
                Some (Aid.Set.union next (Option.value ~default:Aid.Set.empty cur)))
              inter
        in
        (next, inter))
      (frontier, intermediates) d.steps
  in
  (current, intermediates)

(** Derive the cycle closure rooted at [root]. *)
let derive_cycle db (d : cycle_desc) root =
  let within depth =
    match d.c_max_depth with None -> true | Some k -> depth <= k
  in
  let rec go members intermediates depth_of frontier depth =
    if Aid.Set.is_empty frontier || not (within depth) then
      (members, intermediates, depth_of)
    else
      let next, intermediates = macro_step db d frontier intermediates in
      let fresh = Aid.Set.diff next members in
      let depth_of =
        Aid.Set.fold (fun id m -> Aid.Map.add id depth m) fresh depth_of
      in
      go (Aid.Set.union members fresh) intermediates depth_of fresh (depth + 1)
  in
  let members, intermediates, depth_of =
    go (Aid.Set.singleton root) Smap.empty
      (Aid.Map.singleton root 0)
      (Aid.Set.singleton root) 1
  in
  {
    c_root_atom = root;
    c_members = members;
    c_intermediates = intermediates;
    c_depth_of = depth_of;
  }

let cycle_m_dom db (d : cycle_desc) =
  Database.atoms db d.c_root
  |> List.map (fun (a : Atom.t) -> derive_cycle db d a.id)

type cycle_t = {
  cname : string;
  cdesc : cycle_desc;
  cocc : cycle_molecule list;
}

let cycle_define db ~name (d : cycle_desc) =
  { cname = name; cdesc = d; cocc = cycle_m_dom db d }

let pp_cycle_desc ppf (d : cycle_desc) =
  Fmt.pf ppf "%s RECURSIVE BY (%a)%a" d.c_root
    Fmt.(
      list ~sep:(any ", ") (fun ppf (s : step) ->
          Fmt.pf ppf "%s%s" (match s.s_dir with `Bwd -> "~" | `Fwd -> "") s.s_link))
    d.steps
    Fmt.(option (fmt " DEPTH %d"))
    d.c_max_depth

(** Qualification over a cycle molecule: the root type's node ranges
    over the members (with the [DEPTH] pseudo-attribute), intermediate
    atom types over the atoms passed through. *)
let cycle_satisfies db (t : cycle_t) (m : cycle_molecule) pred =
  let component node =
    if String.equal node t.cdesc.c_root then Aid.Set.elements m.c_members
    else
      Aid.Set.elements
        (Option.value ~default:Aid.Set.empty (Smap.find_opt node m.c_intermediates))
  in
  let fetch node id attr =
    if String.equal attr "DEPTH" then
      Value.Int (Option.value ~default:0 (Aid.Map.find_opt id m.c_depth_of))
    else
      let at = Database.atom_type db node in
      Atom.value (Database.get_atom db ~atype:node id) at attr
  in
  Mad.Qual.eval_molecule ~component ~fetch ~root_node:t.cdesc.c_root
    ~root_atom:m.c_root_atom pred

let cycle_restrict db pred (t : cycle_t) ~name =
  { t with cname = name; cocc = List.filter (fun m -> cycle_satisfies db t m pred) t.cocc }

(* ------------------------------------------------------------------ *)
(* Rendering: indented explosion with cycle/again marks                 *)

let atom_label db root_type id =
  let at = Database.atom_type db root_type in
  let a = Database.get_atom db ~atype:root_type id in
  match
    List.find_map
      (fun (attr : Schema.Attr.t) ->
        match Atom.value a at attr.name with
        | Value.String s -> Some s
        | Value.Int _ | Value.Float _ | Value.Bool _ | Value.Id _
        | Value.List _ ->
          None)
      at.attrs
  with
  | Some s -> Printf.sprintf "%s[%s]" (Aid.to_string id) s
  | None -> Aid.to_string id

(** Print a molecule as an explosion tree.  Atoms already printed on
    the current path are marked [cycle]; atoms printed elsewhere are
    expanded again only with [~expand_shared:true]. *)
let pp_molecule ?(expand_shared = false) db (t : t) ppf (m : molecule) =
  let dir = dir_of_view t.desc.view in
  let printed = Hashtbl.create 16 in
  let rec walk indent path id =
    let label = atom_label db t.desc.root_type id in
    if Aid.Set.mem id path then Fmt.pf ppf "%s%s (cycle)@." indent label
    else if Hashtbl.mem printed id && not expand_shared then
      Fmt.pf ppf "%s%s (shared, see above)@." indent label
    else begin
      Hashtbl.replace printed id ();
      Fmt.pf ppf "%s%s@." indent label;
      (* component sub-structure of this member, if any *)
      (match Aid.Map.find_opt id m.components with
       | None -> ()
       | Some sub ->
         (match t.desc.component with
          | None -> ()
          | Some cdesc ->
            List.iter
              (fun node ->
                if not (String.equal node t.desc.root_type) then
                  Aid.Set.iter
                    (fun cid ->
                      Fmt.pf ppf "%s| %s %s@." indent node
                        (atom_label db node cid))
                    (Mad.Molecule.component sub node))
              (Mad.Mdesc.nodes cdesc)));
      let children =
        Aid.Set.inter
          (Database.neighbors db t.desc.link ~dir id)
          m.members
      in
      Aid.Set.iter
        (fun c -> walk (indent ^ "  ") (Aid.Set.add id path) c)
        children
    end
  in
  walk "" Aid.Set.empty m.root

let pp ppf (db, t) =
  Fmt.pf ppf "recursive molecule type %s: %a (%d molecules)@." t.name pp_desc
    t.desc (List.length t.occ);
  List.iter (fun m -> pp_molecule db t ppf m; Fmt.pf ppf "@.") t.occ

let pp_cycle ppf ((db, t) : Database.t * cycle_t) =
  Fmt.pf ppf "cycle molecule type %s: %a (%d molecules)@." t.cname
    pp_cycle_desc t.cdesc (List.length t.cocc);
  List.iter
    (fun (m : cycle_molecule) ->
      Fmt.pf ppf "%s: {%s}@."
        (atom_label db t.cdesc.c_root m.c_root_atom)
        (String.concat ", "
           (List.map
              (atom_label db t.cdesc.c_root)
              (Aid.Set.elements m.c_members))))
    t.cocc
