(** Recursive molecule types (ch. 5 outlook, [Schö89]): reflexive link
    types queried recursively — the parts explosion (sub-component
    view) and where-used (super-component view) of a bill-of-material,
    both over the same symmetric link type.  Derivation is the least
    fixpoint of one-step expansion; data cycles terminate. *)

open Mad_store

type view = Sub | Super

type desc = {
  root_type : string;
  link : string;  (** a reflexive link type on [root_type] *)
  view : view;
  max_depth : int option;  (** [None]: full closure *)
  component : Mad.Mdesc.t option;
      (** Schöning's full recursive molecule types: a plain structure
          rooted at [root_type], expanded by every reached atom *)
}

type molecule = {
  root : Aid.t;
  members : Aid.Set.t;  (** includes the root *)
  links : Link.Set.t;
  depth_of : int Aid.Map.t;  (** shortest expansion depth per member *)
  components : Mad.Molecule.t Aid.Map.t;  (** per-member sub-molecule *)
}

type t = { name : string; desc : desc; occ : molecule list }

val pp_view : Format.formatter -> view -> unit
val pp_desc : Format.formatter -> desc -> unit

val v :
  Database.t ->
  root_type:string ->
  link:string ->
  ?view:view ->
  ?max_depth:int ->
  ?component:Mad.Mdesc.t ->
  unit ->
  desc
(** Validate: [link] must be reflexive on [root_type]; depth >= 0; a
    component structure must be rooted at [root_type] and must not
    reuse the recursion link. *)

val derive_one :
  ?stats:Mad.Derive.stats -> ?kernel:bool -> Database.t -> desc -> Aid.t -> molecule
(** The fixpoint from one root.  [~kernel] forces the path; by default
    the kernel's BFS closure runs only on a warm snapshot. *)

val m_dom :
  ?stats:Mad.Derive.stats -> ?kernel:bool -> Database.t -> desc -> molecule list
(** One molecule per root-type atom; builds the CSR snapshot once and
    runs every closure on it (unless [MAD_KERNEL=off]). *)

val define :
  ?stats:Mad.Derive.stats -> ?kernel:bool -> Database.t -> name:string -> desc -> t

val molecule_satisfies : Database.t -> t -> molecule -> Mad.Qual.t -> bool
(** Qualification over a recursive molecule; the pseudo-attribute
    [DEPTH] exposes the member's expansion depth. *)

val restrict : Database.t -> Mad.Qual.t -> t -> name:string -> t

(** {1 Set operations}

    Recursive molecule types are first-class data model objects
    ([Schö89]); the set operators require identically described
    operands. *)

val compare_molecule : molecule -> molecule -> int
val equal_molecule : molecule -> molecule -> bool
val same_desc : desc -> desc -> bool
val union : name:string -> t -> t -> t
val diff : name:string -> t -> t -> t
val intersect : name:string -> t -> t -> t

(** {1 Cycle recursion}

    Recursion over general schema cycles (ch. 5: reflexive link types
    "and other cycles in the database schema"): a composition of
    link-type steps from the root atom type back to itself, iterated
    as one macro-step to a fixpoint.  Example: VLSI connectivity
    [cell -cell-pin-> pin <-net-pin- net -net-pin-> pin <-cell-pin-
    cell]. *)

module Smap : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type step = { s_link : string; s_dir : [ `Fwd | `Bwd ] }

type cycle_desc = {
  c_root : string;
  steps : step list;
  c_max_depth : int option;
}

type cycle_molecule = {
  c_root_atom : Aid.t;
  c_members : Aid.Set.t;  (** root-type atoms reached (incl. the root) *)
  c_intermediates : Aid.Set.t Smap.t;
  c_depth_of : int Aid.Map.t;
}

val cycle :
  Database.t ->
  root_type:string ->
  steps:(string * [ `Fwd | `Bwd ]) list ->
  ?max_depth:int ->
  unit ->
  cycle_desc
(** Validates that the steps compose from [root_type] back to it. *)

val derive_cycle : Database.t -> cycle_desc -> Aid.t -> cycle_molecule
val cycle_m_dom : Database.t -> cycle_desc -> cycle_molecule list

type cycle_t = {
  cname : string;
  cdesc : cycle_desc;
  cocc : cycle_molecule list;
}

val cycle_define : Database.t -> name:string -> cycle_desc -> cycle_t
val pp_cycle_desc : Format.formatter -> cycle_desc -> unit

val cycle_satisfies : Database.t -> cycle_t -> cycle_molecule -> Mad.Qual.t -> bool
(** The root type's node ranges over the members (with [DEPTH]),
    intermediate atom types over the atoms passed through. *)

val cycle_restrict : Database.t -> Mad.Qual.t -> cycle_t -> name:string -> cycle_t
val pp_cycle : Format.formatter -> Database.t * cycle_t -> unit

val atom_label : Database.t -> string -> Aid.t -> string

val pp_molecule :
  ?expand_shared:bool ->
  Database.t ->
  t ->
  Format.formatter ->
  molecule ->
  unit
(** Indented explosion tree; cycles and already-printed shared atoms
    are marked. *)

val pp : Format.formatter -> Database.t * t -> unit
