(** The observability context: a metrics registry, a span stack, a
    sink and an optional span sampler.  Threaded through the engine
    layers; {!noop} is the shared disabled context for code that was
    not handed one.  [MAD_OBS] selects the sink: [off] (default) /
    [pretty] / [json] / [json:FILE] / [prom:FILE]; [MAD_OBS_SAMPLE],
    [MAD_OBS_SLOW_MS] and [MAD_OBS_SEED] configure sampling. *)

type t

val create :
  ?tracing:bool ->
  ?sink:Sink.t ->
  ?sample:float ->
  ?slow_ms:float ->
  ?seed:int ->
  unit ->
  t
(** [sample] is the head-based keep probability for root spans (drawn
    from an RNG seeded with [seed], default a fixed constant, so runs
    are reproducible); [slow_ms] always keeps root spans at least that
    slow.  Root spans carrying an [error] attribute are always kept.
    With neither [sample] nor [slow_ms], every span is kept.  Sampling
    only gates span {e emission}: metrics — including the
    [op.latency_us] histograms of {!timed} — stay exact. *)

val noop : t
(** Shared disabled context: spans are not recorded, the sink drops
    everything.  Counters created against it still count (cheaply)
    but are never exported. *)

val registry : t -> Registry.t
val sink : t -> Sink.t
val enabled : t -> bool

val last_seq : t -> int
(** Flight-recorder seq of the most recently closed span on this
    context, usable as a histogram exemplar; [-1] before any span
    closed or while the ring is disabled (a stale seq must not be
    attached to fresh observations). *)

val last_dur_us : t -> float
(** Duration of the most recently completed {!timed} operation on this
    context, [-1] before any.  Lets a caller that just ran work under
    {!timed} reuse its measurement instead of reading the clock
    again. *)

val is_noop : t -> bool
(** True for the shared {!noop} context (which never times, so
    {!last_dur_us} stays [-1] on it). *)

val with_span : t -> string -> ?attrs:(string * Span.value) list -> (Span.t -> 'a) -> 'a
(** Run the function inside a span nested under the current one; on
    completion of the outermost span, the tree is emitted to the sink.
    With tracing off the function simply receives {!Span.none}.
    Exception-safe; an escaping exception is recorded as an [error]
    attribute.

    Every span open/close (except on {!noop}) also journals to the
    global {!Recorder} ring regardless of tracing or sampling — that
    always-on record feeds [--trace] dumps and histogram exemplars.
    When an errored root span closes and [MAD_OBS_TRACE] is set, the
    ring is dumped automatically ({!Recorder.dump_on_error}). *)

val current_span : t -> Span.t option

val counter : ?labels:Metric.labels -> t -> string -> Metric.counter
val gauge : ?labels:Metric.labels -> t -> string -> Metric.gauge
val histogram : ?labels:Metric.labels -> ?bounds:float array -> t -> string -> Metric.histogram

val timed : t -> string -> ?attrs:(string * Span.value) list -> (Span.t -> 'a) -> 'a
(** {!with_span} plus a latency record: the wall-clock duration lands
    in the registry's [op.latency_us] histogram labeled [op=name],
    even when tracing is off or the sampler drops the span (the shared
    {!noop} context alone skips the clock).  The observation carries
    the span's flight-recorder seq as its bucket exemplar, so
    [madql stats] can link a latency bucket to a trace event.  The
    engine's operator instrumentation points use this. *)

val event : t -> string -> (string * Span.value) list -> unit
(** Emit a free-form event (kind, fields) to the sink. *)

val flush : t -> unit
(** Push every registered metric to the sink. *)

val pp_metrics : Format.formatter -> t -> unit

val of_env : ?var:string -> unit -> t
(** Build a context from the [MAD_OBS] (or [var]) environment
    variable; unknown values warn on stderr and disable.  [prom:FILE]
    records metrics only and writes the registry's Prometheus text to
    FILE on exit.  [<var>_SAMPLE], [<var>_SLOW_MS] and [<var>_SEED]
    configure the span sampler. *)

val default : unit -> t
(** The lazily-created process-wide context per {!of_env}. *)
