(** The observability context: a metrics registry, a span stack and a
    sink.  Threaded through the engine layers; {!noop} is the shared
    disabled context for code that was not handed one.  [MAD_OBS]
    selects the sink: [off] (default) / [pretty] / [json] /
    [json:FILE]. *)

type t

val create : ?tracing:bool -> ?sink:Sink.t -> unit -> t

val noop : t
(** Shared disabled context: spans are not recorded, the sink drops
    everything.  Counters created against it still count (cheaply)
    but are never exported. *)

val registry : t -> Registry.t
val sink : t -> Sink.t
val enabled : t -> bool

val with_span : t -> string -> ?attrs:(string * Span.value) list -> (Span.t -> 'a) -> 'a
(** Run the function inside a span nested under the current one; on
    completion of the outermost span, the tree is emitted to the sink.
    With tracing off the function simply receives {!Span.none}.
    Exception-safe; an escaping exception is recorded as an [error]
    attribute. *)

val current_span : t -> Span.t option

val counter : ?labels:Metric.labels -> t -> string -> Metric.counter
val gauge : ?labels:Metric.labels -> t -> string -> Metric.gauge
val histogram : ?labels:Metric.labels -> ?bounds:float array -> t -> string -> Metric.histogram

val event : t -> string -> (string * Span.value) list -> unit
(** Emit a free-form event (kind, fields) to the sink. *)

val flush : t -> unit
(** Push every registered metric to the sink. *)

val pp_metrics : Format.formatter -> t -> unit

val of_env : ?var:string -> unit -> t
(** Build a context from the [MAD_OBS] (or [var]) environment
    variable; unknown values warn on stderr and disable. *)

val default : unit -> t
(** The lazily-created process-wide context per {!of_env}. *)
