(** Anomaly probes: EWMA-baselined detectors with trip/clear
    hysteresis, fed one scalar observation per timeline frame.

    A probe learns a baseline as an exponentially-weighted moving
    average of its {e normal} observations and flags an observation as
    anomalous when it exceeds both an absolute floor ([min_fire]) and a
    multiple of the baseline ([factor]).  Hysteresis keeps the verdict
    stable: the probe only starts {e firing} after [trip] consecutive
    anomalous frames (a single spike never fires it) and only clears
    after [clear] consecutive normal frames (a single good frame never
    silences it).  Anomalous observations do not feed the baseline, so
    a sustained regression keeps firing instead of teaching the probe
    that slow is the new normal.

    Rate-style probes (events per frame: plan switches, snapshot
    invalidations) set [skip_zero]: a zero observation counts as a
    normal frame for hysteresis but does not feed the baseline — the
    baseline models the activity level {e when active}, so an idle
    stretch cannot drag it to zero and make ordinary load look like a
    storm. *)

type t = private {
  p_probe : string;  (** probe family, e.g. ["latency"] *)
  p_label : string;  (** instance label, e.g. a fingerprint hex; [""] *)
  p_factor : float;  (** anomalous when value > factor * baseline *)
  p_min_fire : float;  (** ... and value >= this absolute floor *)
  p_trip : int;  (** consecutive anomalies before firing *)
  p_clear : int;  (** consecutive normals before clearing *)
  p_alpha : float;  (** EWMA weight of a new normal observation *)
  p_skip_zero : bool;  (** zero observations bypass the baseline *)
  mutable p_baseline : float;  (** [nan] until the first normal sample *)
  mutable p_hot : int;  (** current anomalous streak *)
  mutable p_cool : int;  (** current normal streak while firing *)
  mutable p_firing : bool;
  mutable p_fired : int;  (** total ok->firing transitions *)
  mutable p_last : float;  (** most recent observation, [nan] before any *)
  mutable p_seen : int;  (** total observations *)
}

val create :
  ?factor:float ->
  ?min_fire:float ->
  ?trip:int ->
  ?clear:int ->
  ?alpha:float ->
  ?skip_zero:bool ->
  probe:string ->
  ?label:string ->
  unit ->
  t
(** Defaults: [factor] 3.0, [min_fire] 0.0, [trip] 3, [clear] 3,
    [alpha] 0.3, [skip_zero] false. *)

val observe : t -> float -> bool
(** Feed one observation; returns [true] exactly on the ok->firing
    transition (the caller journals it).  Non-finite observations are
    ignored. *)

val firing : t -> bool
val id : t -> string
(** ["probe"] or ["probe:label"] — the rendering used in reports and
    recorder events. *)

val restore : t -> baseline:float -> fired:int -> firing:bool -> unit
(** Adopt persisted state ([timeline.mad]); only applied while the
    probe has seen no live observations — live evidence outranks
    history. *)
