(** The telemetry timeline: a fixed-interval sampler that snapshots a
    metrics registry (counter values, gauge levels, histogram
    count/sum) plus the [runtime.*] GC/heap gauges into a ring of
    timestamped {e frames}, runs the {!Probe} anomaly detectors over
    frame-to-frame deltas, and folds the firing set into a process
    {e health} verdict.

    The global timeline ticks from [Mad_mql.Session.run] (interval
    gated) and, optionally, from a background domain, both configured
    by the [MAD_OBS_TICK] environment variable:
    {v
    MAD_OBS_TICK=SECS     enable: sample every SECS seconds, driven by
                          statement execution
    MAD_OBS_TICK=SECS:bg  also spawn a background sampler domain, so
                          frames keep arriving while the engine idles
    v}
    Frames persist as [timeline.mad] beside a durable store's WAL, so
    history (and probe baselines) survive restarts.

    Probes maintained by {!tick}:
    - [latency] per digest fingerprint — mean [digest.latency_us]
      per frame window regressing against its EWMA baseline
    - [plan-switch] — [plan.switch] counter delta per frame (a storm
      of replans)
    - [invalidation] — [runtime.db_epoch] delta per frame (snapshot
      invalidation thrash)
    - [heap] — [runtime.heap_words] level growing past its baseline
    - [queue-saturation] — the server's [serve.queue_peak_pct]
      admission-queue high watermark (read-and-rearmed every tick);
      trips on the first window past half capacity so health degrades
      {e before} typed-busy rejections start
    - [lock-contention] — engine-lock wait/hold ratio (%) aggregated
      over the [serve.lock.*_us] class histograms' window deltas
    - [fsync-stall] — the [runtime.wal_fsync_us] mean regressing
      against its baseline

    A probe's ok->firing transition journals a
    {!Recorder.Probe_fired} event and bumps the registry's
    [probe.fired] counter; the aggregate verdict lands in the
    [health.state] gauge (0 ok / 1 degraded / 2 unhealthy). *)

type kind = Counter | Gauge | Hist

type point = {
  p_name : string;
  p_labels : (string * string) list;
  p_kind : kind;
  p_value : float;
      (** counter value / gauge level / histogram observation count *)
  p_sum : float;  (** histogram sum; [0.0] for the other kinds *)
}

type frame = {
  f_seq : int;  (** monotonic frame number *)
  f_unix : float;  (** {!Span.clock} seconds at sample time *)
  f_ticks : int;  (** {!Monotonic.ticks} at sample time *)
  f_points : point array;
}

val flat_key : point -> string
(** ["name{k=v,...}"] — the frame-delta and persistence key. *)

(** {1 Health} *)

type health = Ok | Degraded | Unhealthy

val health_name : health -> string  (** "ok" / "degraded" / "unhealthy" *)

val health_exit : health -> int
(** The CLI exit-code contract: 0 ok, 1 degraded, 2 unhealthy. *)

(** {1 Timelines} *)

type t

val create : ?capacity:int -> ?interval:float -> unit -> t
(** [capacity] frames retained (default 512, minimum 2); [interval]
    seconds between interval-gated ticks (default 1.0). *)

val capacity : t -> int
val interval : t -> float

val frames : t -> frame list
(** Retained frames, oldest first.  Like every reader and export below,
    takes the timeline's lock, so a snapshot is consistent even while
    the background sampler domain ticks. *)

val sampled : t -> int
(** Total frames ever sampled (not the retained count). *)

val last : t -> frame option

val update_runtime : ?epoch:int -> Registry.t -> unit
(** Get-or-create the [runtime.*] gauges in the registry and set them
    from [Gc.quick_stat]: [runtime.heap_words], [runtime.top_heap_words],
    [runtime.minor_words], [runtime.promoted_words],
    [runtime.gc_minor_collections], [runtime.gc_major_collections],
    [runtime.gc_compactions], plus [runtime.db_epoch] when [epoch] is
    given.  [Obs.create] registers them at context creation so they
    ride [Registry.expose] even without a timeline. *)

val tick : ?epoch:int -> t -> Registry.t -> frame
(** Sample now: refresh the runtime gauges (including the
    [runtime.wal_fsync_us] window mean drawn from the flight
    recorder), snapshot the registry into a frame, push it onto the
    ring, run the probes over the delta to the previous frame, and
    publish [health.state].  Thread-safe (a mutex serializes ticks
    from the background domain and the statement path). *)

val maybe_tick : ?epoch:int -> t -> Registry.t -> bool
(** {!tick} if at least [interval] seconds passed since the last
    frame; [true] when a frame was taken. *)

val delta : prev:frame -> frame -> (string * float) list
(** Per-key increase of counters and histogram counts between two
    frames, keyed by {!flat_key}.  A monotonic value that went
    {e backwards} (instrument reset, process restart) contributes its
    current value — the delta is clamped the way Prometheus [rate()]
    handles counter resets, never negative. *)

val probes : t -> Probe.t list
(** All probes, creation order. *)

val health : t -> health
(** 0 firing probes = [Ok], 1 = [Degraded], 2+ = [Unhealthy]. *)

(** {1 The global timeline} *)

val configure :
  ?capacity:int -> ?interval:float -> ?background:bool -> unit -> t
(** Install (or return) the process-global timeline; [background]
    spawns the sampler domain.  Explicit configuration wins over
    [MAD_OBS_TICK]. *)

val active : unit -> t option
(** The global timeline, initializing it from [MAD_OBS_TICK] on first
    call; [None] while neither the env var nor {!configure} enabled
    it. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Pause/resume global ticking (the overhead benchmark toggles
    this); {!configure} re-enables. *)

val auto_tick : ?epoch:int -> Registry.t -> unit
(** The statement-path hook ([Session.run]): interval-gated tick of
    the global timeline against [registry]; near-free while the
    timeline is unconfigured or disabled.  Also remembers [registry]
    as the background domain's sampling source. *)

val stop_background : unit -> unit
(** Ask the background sampler domain (if any) to exit.  A later
    [configure ~background:true] spawns a fresh one. *)

(** {1 Export} *)

val to_json : t -> Json.t
(** [{"frames": [...], "health": ..., "probes": [...]}]. *)

val to_csv : t -> string
(** Long-format CSV: [frame,unix,ticks,kind,name,labels,value,sum]. *)

val health_json : t -> Json.t
(** [{"state", "exit", "frames", "probes": [...]}] — the
    [madql health --json] document. *)

val pp_dashboard : Format.formatter -> t -> unit
(** The [madql top] / repl [:top] rendering: health, runtime gauges,
    busiest counter rates over the last frame interval, probe table. *)

(** {1 Persistence ([timeline.mad])} *)

val to_string : t -> string
(** Metric names and label keys/values percent-encode the format's
    structural characters (space, comma, equals, '%', line breaks), so
    any registered name/label round-trips through
    {!merge_string}. *)

val merge_string : t -> string -> (unit, string) result
(** Merge serialized frames (appended behind any live frames, ring
    semantics apply) and probe baselines into [t].  Malformed lines
    are skipped; [Error] only on a bad header. *)

val save : t -> string -> unit

val load : t -> string -> bool
(** Merge the timeline file at [path] into [t]; [false] when
    absent. *)
