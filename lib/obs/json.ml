(** A minimal JSON value type with printer and parser.

    The observability sinks emit JSON lines and the tests parse them
    back; keeping both directions in one dependency-free module makes
    "the sink output is parseable" a checkable property rather than a
    hope.  Non-finite floats serialize as [null] (JSON has no NaN). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else Buffer.add_string buf (number f)
  | Str s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 >= n then fail "truncated \\u escape";
             let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
             pos := !pos + 4;
             (* keep it simple: code points below 0x80 verbatim, the
                rest as '?' — the sinks only escape control chars *)
             Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && numchar s.[!pos] do incr pos done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then (incr pos; Obj [])
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then (incr pos; List [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* accessors used by tests and the profiler *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
