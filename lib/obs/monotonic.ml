(** Monotonic ticks for the flight recorder.

    A tick is a nanosecond on the engine clock.  Reading goes through
    the pluggable {!Span.clock}, so the deterministic clocks tests
    install drive the recorder too, and a platform that swaps a true
    monotonic clock into [Span.clock] upgrades every consumer at once.
    Ticks fit a native [int] (63 bits outlast the epoch in
    nanoseconds); arithmetic on them is allocation-free, which is what
    lets recorder events be stamped on the hot path. *)

let ticks () = int_of_float (!Span.clock () *. 1e9)
