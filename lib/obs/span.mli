(** Hierarchical tracing spans with wall-clock timings.  A finished
    root span is a profile tree.  Use {!Obs.with_span} rather than
    driving [start]/[finish] by hand. *)

type value = Int of int | Float of float | Str of string | Bool of bool

val pp_value : Format.formatter -> value -> unit
val json_of_value : value -> Json.t

val clock : (unit -> float) ref
(** Pluggable clock in seconds; defaults to [Unix.gettimeofday].
    Tests install a deterministic clock; platforms with a true
    monotonic clock can install it here. *)

type t = private {
  name : string;
  recording : bool;
  start : float;
  mutable attrs : (string * value) list;
  mutable dur : float;
  mutable children : t list;
}

val none : t
(** Shared non-recording span: [set]/[add_child]/[finish] on it are
    no-ops, so instrumented code needs no tracing-enabled branch. *)

val start : string -> t
val set : t -> string -> value -> unit
val add_child : t -> t -> unit
val finish : t -> unit
val finished : t -> bool
val duration_ms : t -> float
val attrs : t -> (string * value) list
val children : t -> t list
val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
