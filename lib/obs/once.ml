(** Domain-safe lazy initialization — see the interface. *)

type 'a t = { m : Mutex.t; f : unit -> 'a; v : 'a option Atomic.t }

let make f = { m = Mutex.create (); f; v = Atomic.make None }

let force t =
  match Atomic.get t.v with
  | Some v -> v
  | None ->
    Mutex.lock t.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.m)
      (fun () ->
        match Atomic.get t.v with
        | Some v -> v
        | None ->
          let v = t.f () in
          Atomic.set t.v (Some v);
          v)
