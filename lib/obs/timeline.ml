(** The telemetry timeline: fixed-interval registry snapshots in a
    frame ring, runtime gauges, anomaly probes over frame deltas, and
    the aggregate health verdict.  See the interface for the model and
    the [MAD_OBS_TICK] contract. *)

type kind = Counter | Gauge | Hist

type point = {
  p_name : string;
  p_labels : (string * string) list;
  p_kind : kind;
  p_value : float;
  p_sum : float;
}

type frame = {
  f_seq : int;
  f_unix : float;
  f_ticks : int;
  f_points : point array;
}

let flat_key p =
  match p.p_labels with
  | [] -> p.p_name
  | labels ->
    p.p_name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

(* ------------------------------------------------------------------ *)
(* Health                                                               *)

type health = Ok | Degraded | Unhealthy

let health_name = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Unhealthy -> "unhealthy"

let health_exit = function Ok -> 0 | Degraded -> 1 | Unhealthy -> 2

(* ------------------------------------------------------------------ *)
(* Timelines                                                            *)

type t = {
  ring : frame option array;
  tl_interval : float;
  lock : Mutex.t;
  mutable count : int;  (** frames ever pushed into the ring *)
  mutable seq : int;  (** next frame seq to assign *)
  mutable last_tick : float;  (** {!Span.clock} of the last tick, [-inf] *)
  probe_tbl : (string, Probe.t) Hashtbl.t;
  mutable probe_order : Probe.t list;  (** creation order, reversed *)
  mutable wal_seen : int;  (** recorder seq bound of the fsync window *)
}

let create ?(capacity = 512) ?(interval = 1.0) () =
  {
    ring = Array.make (max 2 capacity) None;
    tl_interval = Float.max 0.001 interval;
    lock = Mutex.create ();
    count = 0;
    seq = 0;
    last_tick = neg_infinity;
    probe_tbl = Hashtbl.create 16;
    probe_order = [];
    wal_seen = 0;
  }

let capacity t = Array.length t.ring
let interval t = t.tl_interval

(* a single int field read; monotonic, never torn, safe without the
   lock (and [health_json] reads it while already holding the lock) *)
let sampled t = t.count

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* [*_u] variants assume [t.lock] is held; the public wrappers take it
   so readers never observe the ring or probe list mid-mutation while
   the background sampler domain is ticking *)

let frames_u t =
  let cap = capacity t in
  let lo = max 0 (t.count - cap) in
  let out = ref [] in
  for i = t.count - 1 downto lo do
    match t.ring.(i mod cap) with
    | Some f -> out := f :: !out
    | None -> ()
  done;
  !out

let frames t = with_lock t (fun () -> frames_u t)

let last_u t =
  if t.count = 0 then None else t.ring.((t.count - 1) mod capacity t)

let last t = with_lock t (fun () -> last_u t)

let push_raw t f =
  t.ring.(t.count mod capacity t) <- Some f;
  t.count <- t.count + 1;
  t.seq <- max t.seq (f.f_seq + 1)

let probes_u t = List.rev t.probe_order
let probes t = with_lock t (fun () -> probes_u t)

(* (factor, min_fire, trip, clear, alpha, skip_zero) per probe family;
   the floors keep quiet processes quiet (3 replans or 16
   invalidations in one frame, a 1 ms mean statement, a 16 MB heap),
   and the rate-style probes skip zero frames so idle stretches cannot
   teach them that any activity is a storm *)
let probe_spec = function
  | "latency" -> (3.0, 1000.0, 3, 3, 0.3, false)
  | "plan-switch" -> (2.0, 3.0, 2, 3, 0.3, true)
  | "invalidation" -> (2.0, 16.0, 3, 3, 0.3, true)
  | "heap" -> (1.5, 2.0e6, 3, 4, 0.2, false)
  (* saturation probes (the serving path).  Queue saturation and lock
     contention watch values that are zero on a healthy idle server,
     so they must NOT skip zero frames — idle ticks teach a ~0
     baseline, and the first saturated window then trips immediately
     (trip 1): the point is to degrade BEFORE admission control starts
     returning typed-busy, not after.  The floors keep them quiet
     under ordinary load: a queue under half capacity, or lock waits
     shorter than the holds they pay for, never fire. *)
  | "queue-saturation" -> (1.5, 50.0, 1, 2, 0.3, false)
  | "lock-contention" -> (1.5, 100.0, 1, 2, 0.3, false)
  | "fsync-stall" -> (3.0, 2000.0, 2, 3, 0.3, true)
  | _ -> (3.0, 0.0, 3, 3, 0.3, false)

let ensure_probe t ~probe ~label =
  let key = probe ^ ":" ^ label in
  match Hashtbl.find_opt t.probe_tbl key with
  | Some p -> p
  | None ->
    let factor, min_fire, trip, clear, alpha, skip_zero = probe_spec probe in
    let p =
      Probe.create ~factor ~min_fire ~trip ~clear ~alpha ~skip_zero ~probe
        ~label ()
    in
    Hashtbl.replace t.probe_tbl key p;
    t.probe_order <- p :: t.probe_order;
    p

let health_u t =
  match List.length (List.filter Probe.firing (probes_u t)) with
  | 0 -> Ok
  | 1 -> Degraded
  | _ -> Unhealthy

let health t = with_lock t (fun () -> health_u t)

(* ------------------------------------------------------------------ *)
(* Runtime gauges                                                       *)

let update_runtime ?epoch registry =
  let g = Gc.quick_stat () in
  let set name v = Metric.set (Registry.gauge registry name) v in
  set "runtime.heap_words" (float_of_int g.Gc.heap_words);
  set "runtime.top_heap_words" (float_of_int g.Gc.top_heap_words);
  set "runtime.minor_words" g.Gc.minor_words;
  set "runtime.promoted_words" g.Gc.promoted_words;
  set "runtime.gc_minor_collections" (float_of_int g.Gc.minor_collections);
  set "runtime.gc_major_collections" (float_of_int g.Gc.major_collections);
  set "runtime.gc_compactions" (float_of_int g.Gc.compactions);
  match epoch with
  | Some e -> set "runtime.db_epoch" (float_of_int e)
  | None -> ()

(* mean WAL fsync latency over the events recorded since the previous
   tick, drawn from the flight recorder's retained window *)
let update_fsync t registry =
  if Recorder.enabled () then begin
    let ring = Recorder.global () in
    let hi = Recorder.recorded ring in
    if hi > t.wal_seen then begin
      let sum = ref 0.0 and n = ref 0 in
      List.iter
        (fun ev ->
          if
            ev.Recorder.e_seq >= t.wal_seen
            && ev.Recorder.e_kind = Recorder.Wal_fsync
          then begin
            sum := !sum +. float_of_int ev.Recorder.e_dur_ns;
            incr n
          end)
        (Recorder.drain ring);
      t.wal_seen <- hi;
      if !n > 0 then
        Metric.set
          (Registry.gauge registry "runtime.wal_fsync_us")
          (!sum /. float_of_int !n /. 1e3)
    end
  end

(* ------------------------------------------------------------------ *)
(* Sampling and deltas                                                  *)

let snapshot registry =
  Registry.to_list registry
  |> List.map (fun sample ->
         match sample with
         | Metric.Counter c ->
           {
             p_name = c.Metric.c_name;
             p_labels = c.Metric.c_labels;
             p_kind = Counter;
             p_value = float_of_int (Metric.value c);
             p_sum = 0.0;
           }
         | Metric.Gauge g ->
           {
             p_name = g.Metric.g_name;
             p_labels = g.Metric.g_labels;
             p_kind = Gauge;
             p_value = Metric.get g;
             p_sum = 0.0;
           }
         | Metric.Histogram h ->
           {
             p_name = h.Metric.h_name;
             p_labels = h.Metric.h_labels;
             p_kind = Hist;
             p_value = float_of_int (Metric.count h);
             p_sum = Metric.sum h;
           })
  |> Array.of_list

(* monotonic increase with Prometheus-style reset handling: a value
   that went backwards restarted, so its increase is its current
   value, never a negative *)
let increase ~prev ~cur = if cur < prev then cur else cur -. prev

let prev_index prev =
  let tbl = Hashtbl.create (Array.length prev.f_points) in
  Array.iter (fun p -> Hashtbl.replace tbl (flat_key p) p) prev.f_points;
  tbl

let delta ~prev cur =
  let tbl = prev_index prev in
  Array.to_list cur.f_points
  |> List.filter_map (fun p ->
         match p.p_kind with
         | Gauge -> None
         | Counter | Hist ->
           let before =
             match Hashtbl.find_opt tbl (flat_key p) with
             | Some q -> q.p_value
             | None -> 0.0
           in
           Some (flat_key p, increase ~prev:before ~cur:p.p_value))

(* ------------------------------------------------------------------ *)
(* Probe evaluation                                                     *)

let feed t registry ~probe ~label v =
  let p = ensure_probe t ~probe ~label in
  if Probe.observe p v then begin
    Recorder.note Probe_fired ~label:(Probe.id p)
      ~a:(int_of_float (Float.min v 1e15))
      ~b:
        (if Float.is_nan p.Probe.p_baseline then 0
         else int_of_float (Float.min p.Probe.p_baseline 1e15))
      ();
    Metric.incr
      (Registry.counter ~labels:[ ("probe", Probe.id p) ] registry "probe.fired")
  end

let evaluate t registry ~prev ~cur =
  let tbl = prev_index prev in
  let before p =
    match Hashtbl.find_opt tbl (flat_key p) with
    | Some q -> (q.p_value, q.p_sum)
    | None -> (0.0, 0.0)
  in
  (* per-fingerprint mean statement latency over this frame window:
     deltas of the digest.latency_us histograms, aggregated across the
     fingerprint's plans *)
  let lat = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      match p.p_kind with
      | Hist when p.p_name = "digest.latency_us" -> begin
        match List.assoc_opt "fp" p.p_labels with
        | None -> ()
        | Some fp ->
          let n0, s0 = before p in
          let dn = increase ~prev:n0 ~cur:p.p_value in
          let ds = if p.p_value < n0 then p.p_sum else p.p_sum -. s0 in
          if dn > 0.0 then begin
            let n, s =
              Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt lat fp)
            in
            Hashtbl.replace lat fp (n +. dn, s +. ds)
          end
      end
      | Hist | Counter | Gauge -> ())
    cur.f_points;
  Hashtbl.iter
    (fun fp (n, s) -> feed t registry ~probe:"latency" ~label:fp (s /. n))
    lat;
  (* engine-lock contention over this window: wait-time vs hold-time
     sums aggregated across every statement class.  The fed value is
     the wait/hold ratio as a percentage — 100 means requests spent as
     long waiting for the engine as using it *)
  let lock_wait = ref 0.0 and lock_hold = ref 0.0 and lock_seen = ref false in
  Array.iter
    (fun p ->
      match p.p_kind with
      | Hist
        when p.p_name = "serve.lock.wait_us"
             || p.p_name = "serve.lock.hold_us" ->
        lock_seen := true;
        let n0, s0 = before p in
        let ds =
          Float.max 0.0
            (if p.p_value < n0 then p.p_sum else p.p_sum -. s0)
        in
        if p.p_name = "serve.lock.wait_us" then lock_wait := !lock_wait +. ds
        else lock_hold := !lock_hold +. ds
      | Hist | Counter | Gauge -> ())
    cur.f_points;
  if !lock_seen then
    feed t registry ~probe:"lock-contention" ~label:""
      (100.0 *. !lock_wait /. Float.max !lock_hold 1.0);
  Array.iter
    (fun p ->
      match (p.p_kind, p.p_name, p.p_labels) with
      | Counter, "plan.switch", [] ->
        feed t registry ~probe:"plan-switch" ~label:""
          (increase ~prev:(fst (before p)) ~cur:p.p_value)
      | Gauge, "runtime.db_epoch", [] ->
        (* the epoch only moves forward, so a gauge delta is the
           invalidation count of the window *)
        feed t registry ~probe:"invalidation" ~label:""
          (increase ~prev:(fst (before p)) ~cur:p.p_value)
      | Gauge, "runtime.heap_words", [] ->
        feed t registry ~probe:"heap" ~label:"" p.p_value
      | Gauge, "serve.queue_peak_pct", [] ->
        (* the server latches the admission-queue high watermark here;
           feeding it rearms the latch, making the gauge
           peak-since-last-tick *)
        feed t registry ~probe:"queue-saturation" ~label:"" p.p_value;
        Metric.set (Registry.gauge registry "serve.queue_peak_pct") 0.0
      | Gauge, "runtime.wal_fsync_us", [] ->
        feed t registry ~probe:"fsync-stall" ~label:"" p.p_value
      | _ -> ())
    cur.f_points

(* ------------------------------------------------------------------ *)
(* Tick                                                                 *)

let tick ?epoch t registry =
  with_lock t (fun () ->
      update_runtime ?epoch registry;
      update_fsync t registry;
      (* register the verdict gauge before snapshotting, so the frame
         carries last tick's verdict and expose always shows one *)
      let hg = Registry.gauge registry "health.state" in
      let now = !Span.clock () in
      let f =
        {
          f_seq = t.seq;
          f_unix = now;
          f_ticks = Monotonic.ticks ();
          f_points = snapshot registry;
        }
      in
      let prev = last_u t in
      push_raw t f;
      t.last_tick <- now;
      (match prev with
       | Some prev when prev.f_seq < f.f_seq ->
         evaluate t registry ~prev ~cur:f
       | Some _ | None -> ());
      Metric.set hg (float_of_int (health_exit (health_u t)));
      f)

let maybe_tick ?epoch t registry =
  if !Span.clock () -. t.last_tick >= t.tl_interval then begin
    ignore (tick ?epoch t registry);
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* The global timeline                                                  *)

let state : t option ref = ref None

(* [on] and [source] are read by the background sampler domain while
   the statement path writes them, so they must be Atomic *)
let on = Atomic.make true
let env_read = ref false
let source : Registry.t option Atomic.t = Atomic.make None

(* background-sampler generation token: each start hands the freshly
   incremented value to the loop it spawns, and each stop increments
   it again, so a stale loop sees the mismatch and exits while a later
   [configure ~background:true] can always respawn *)
let bg_gen = Atomic.make 0
let bg_running = ref false  (* main-domain bookkeeping only *)

let env_tick () =
  match Option.map String.trim (Sys.getenv_opt "MAD_OBS_TICK") with
  | None | Some "" | Some "off" | Some "0" -> None
  | Some s ->
    let secs, bg =
      match String.index_opt s ':' with
      | Some i ->
        ( String.sub s 0 i,
          String.equal (String.sub s (i + 1) (String.length s - i - 1)) "bg" )
      | None -> (s, false)
    in
    (match float_of_string_opt secs with
     | Some v when v > 0.0 && Float.is_finite v -> Some (v, bg)
     | Some _ | None ->
       Printf.eprintf
         "mad_obs: ignoring invalid MAD_OBS_TICK=%S (expected SECS or \
          SECS:bg)\n%!"
         s;
       None)

let rec background_loop t gen =
  if Atomic.get bg_gen = gen then begin
    Unix.sleepf t.tl_interval;
    if Atomic.get bg_gen = gen && Atomic.get on then
      (match Atomic.get source with
       | Some registry -> ( try ignore (tick t registry) with _ -> ())
       | None -> ());
    background_loop t gen
  end

let start_background t =
  if not !bg_running then begin
    bg_running := true;
    let gen = 1 + Atomic.fetch_and_add bg_gen 1 in
    ignore (Domain.spawn (fun () -> background_loop t gen))
  end

let stop_background () =
  if !bg_running then begin
    bg_running := false;
    ignore (Atomic.fetch_and_add bg_gen 1)
  end

let configure ?capacity ?interval ?(background = false) () =
  env_read := true;
  let t =
    match !state with
    | Some t -> t
    | None ->
      let t = create ?capacity ?interval () in
      state := Some t;
      t
  in
  Atomic.set on true;
  if background then start_background t;
  t

let init_from_env () =
  if not !env_read then begin
    env_read := true;
    match env_tick () with
    | Some (interval, background) ->
      ignore (configure ~interval ~background ())
    | None -> ()
  end

let active () =
  init_from_env ();
  !state

let enabled () = Atomic.get on && Option.is_some (active ())
let set_enabled b = Atomic.set on b

let auto_tick ?epoch registry =
  match active () with
  | None -> ()
  | Some t ->
    Atomic.set source (Some registry);
    if Atomic.get on then ignore (maybe_tick ?epoch t registry)

(* ------------------------------------------------------------------ *)
(* Export                                                               *)

let kind_tag = function Counter -> "c" | Gauge -> "g" | Hist -> "h"

let point_json p =
  Json.Obj
    ([
       ("name", Json.Str p.p_name);
       ( "labels",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) p.p_labels) );
       ("kind", Json.Str (kind_tag p.p_kind));
       ("value", Json.Num p.p_value);
     ]
    @ if p.p_kind = Hist then [ ("sum", Json.Num p.p_sum) ] else [])

let frame_json f =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int f.f_seq));
      ("unix", Json.Num f.f_unix);
      ("ticks", Json.Num (float_of_int f.f_ticks));
      ("points", Json.List (List.map point_json (Array.to_list f.f_points)));
    ]

let probe_json p =
  Json.Obj
    [
      ("probe", Json.Str p.Probe.p_probe);
      ("label", Json.Str p.Probe.p_label);
      ("firing", Json.Bool (Probe.firing p));
      ( "value",
        if Float.is_nan p.Probe.p_last then Json.Null
        else Json.Num p.Probe.p_last );
      ( "baseline",
        if Float.is_nan p.Probe.p_baseline then Json.Null
        else Json.Num p.Probe.p_baseline );
      ("fired", Json.Num (float_of_int p.Probe.p_fired));
      ("seen", Json.Num (float_of_int p.Probe.p_seen));
    ]

let health_json t =
  with_lock t (fun () ->
      let h = health_u t in
      Json.Obj
        [
          ("state", Json.Str (health_name h));
          ("exit", Json.Num (float_of_int (health_exit h)));
          ("frames", Json.Num (float_of_int (sampled t)));
          ("probes", Json.List (List.map probe_json (probes_u t)));
        ])

let to_json t =
  with_lock t (fun () ->
      Json.Obj
        [
          ("interval_s", Json.Num t.tl_interval);
          ("frames", Json.List (List.map frame_json (frames_u t)));
          ("health", Json.Str (health_name (health_u t)));
          ("probes", Json.List (List.map probe_json (probes_u t)));
        ])

let csv_labels labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

(* [frames t] takes the lock; frames are immutable once read, so
   serializing the snapshot outside the lock is safe *)
let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "frame,unix,ticks,kind,name,labels,value,sum\n";
  List.iter
    (fun f ->
      Array.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%.6f,%d,%s,%s,%s,%g,%g\n" f.f_seq f.f_unix
               f.f_ticks (kind_tag p.p_kind) p.p_name (csv_labels p.p_labels)
               p.p_value p.p_sum))
        f.f_points)
    (frames t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Dashboard ([madql top], repl [:top])                                 *)

let find_point f name =
  Array.to_list f.f_points
  |> List.find_opt (fun p -> p.p_name = name && p.p_labels = [])

let pp_dashboard ppf t =
  with_lock t @@ fun () ->
  let h = health_u t in
  Format.fprintf ppf "health: %s  (%d frame(s), %d probe(s)" (health_name h)
    (sampled t)
    (List.length (probes_u t));
  (match List.filter Probe.firing (probes_u t) with
   | [] -> Format.fprintf ppf ")@."
   | firing ->
     Format.fprintf ppf "; firing: %s)@."
       (String.concat ", " (List.map Probe.id firing)));
  match last_u t with
  | None -> Format.fprintf ppf "no frames yet@."
  | Some cur ->
    let gauge name =
      match find_point cur name with Some p -> Some p.p_value | None -> None
    in
    let num name = Option.value ~default:0.0 (gauge name) in
    Format.fprintf ppf
      "runtime: heap %.1f MB  minor GCs %.0f  major GCs %.0f  epoch %.0f  \
       wal fsync %.1f us@."
      (num "runtime.heap_words" *. 8.0 /. 1048576.0)
      (num "runtime.gc_minor_collections")
      (num "runtime.gc_major_collections")
      (num "runtime.db_epoch")
      (num "runtime.wal_fsync_us");
    let prev =
      let fs = frames_u t in
      let rec penultimate = function
        | [ p; _ ] -> Some p
        | _ :: rest -> penultimate rest
        | [] -> None
      in
      penultimate fs
    in
    (match prev with
     | None -> ()
     | Some prev ->
       let dt = Float.max 1e-9 (cur.f_unix -. prev.f_unix) in
       let moved =
         delta ~prev cur
         |> List.filter (fun (k, d) ->
                d > 0.0
                && not
                     (String.length k >= 8 && String.sub k 0 8 = "runtime."))
         |> List.sort (fun (_, a) (_, b) -> compare b a)
       in
       Format.fprintf ppf "last %.2fs window:@." dt;
       List.iteri
         (fun i (k, d) ->
           if i < 8 then
             Format.fprintf ppf "  %-56s +%-8.0f %.1f/s@." k d (d /. dt))
         moved;
       (* the contention panel: engine-lock profile per statement
          class over the window, plus the saturation gauges — only on
          registries that carry the serve metrics *)
       let tbl = prev_index prev in
       let before p =
         match Hashtbl.find_opt tbl (flat_key p) with
         | Some q -> (q.p_value, q.p_sum)
         | None -> (0.0, 0.0)
       in
       let lock = Hashtbl.create 8 in
       Array.iter
         (fun p ->
           if p.p_kind = Hist then
             match (p.p_name, List.assoc_opt "class" p.p_labels) with
             | ("serve.lock.wait_us" | "serve.lock.hold_us"), Some cls ->
               let n0, s0 = before p in
               let dn = increase ~prev:n0 ~cur:p.p_value in
               let ds =
                 Float.max 0.0
                   (if p.p_value < n0 then p.p_sum else p.p_sum -. s0)
               in
               let wn, ws, hn, hs =
                 Option.value ~default:(0.0, 0.0, 0.0, 0.0)
                   (Hashtbl.find_opt lock cls)
               in
               if p.p_name = "serve.lock.wait_us" then
                 Hashtbl.replace lock cls (wn +. dn, ws +. ds, hn, hs)
               else Hashtbl.replace lock cls (wn, ws, hn +. dn, hs +. ds)
             | _ -> ())
         cur.f_points;
       let rows =
         Hashtbl.fold (fun cls v acc -> (cls, v) :: acc) lock []
         |> List.filter (fun (_, (wn, _, hn, _)) -> wn > 0.0 || hn > 0.0)
         |> List.sort (fun (_, (_, _, _, a)) (_, (_, _, _, b)) ->
                compare b a)
       in
       if rows <> [] then begin
         Format.fprintf ppf "lock contention (window):@.";
         Format.fprintf ppf "  %-10s %8s %14s %14s@." "class" "stmts"
           "wait us/stmt" "hold us/stmt";
         List.iter
           (fun (cls, (wn, ws, hn, hs)) ->
             let per n s = if n > 0.0 then s /. n else 0.0 in
             Format.fprintf ppf "  %-10s %8.0f %14.1f %14.1f@." cls
               (Float.max wn hn) (per wn ws) (per hn hs))
           rows
       end;
       (match find_point cur "serve.lock.contended" with
        | None -> ()
        | Some c ->
          let c0 =
            match Hashtbl.find_opt tbl (flat_key c) with
            | Some q -> q.p_value
            | None -> 0.0
          in
          Format.fprintf ppf
            "contention: contended +%.0f  lock waiters %.0f  fsync waiters \
             %.0f  queue peak %.0f%%@."
            (increase ~prev:c0 ~cur:c.p_value)
            (num "serve.lock.waiters")
            (num "serve.group.waiters")
            (num "serve.queue_peak_pct")));
    (match probes_u t with
     | [] -> ()
     | ps ->
       Format.fprintf ppf "%-28s %-8s %12s %12s %6s@." "probe" "state"
         "value" "baseline" "fired";
       List.iter
         (fun p ->
           let fv v =
             if Float.is_nan v then "-" else Printf.sprintf "%.1f" v
           in
           Format.fprintf ppf "%-28s %-8s %12s %12s %6d@." (Probe.id p)
             (if Probe.firing p then "FIRING" else "ok")
             (fv p.Probe.p_last)
             (fv p.Probe.p_baseline)
             p.Probe.p_fired)
         ps)

(* ------------------------------------------------------------------ *)
(* Persistence: the line-oriented [timeline.mad] format                 *)

let format_header = "# MAD timeline v1"

(* the format uses space, comma and equals as structural separators,
   so names and label keys/values percent-encode those (plus '%' and
   line breaks); everything else — typically dotted metric names and
   hex fingerprints — stays readable *)
let enc_char c =
  match c with
  | '%' | ' ' | ',' | '=' | '\n' | '\r' | '\t' -> true
  | _ -> false

let enc_field s =
  if not (String.exists enc_char s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if enc_char c then
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let dec_field s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then
         match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
         | Some c when c >= 0 && c < 256 ->
           Buffer.add_char buf (Char.chr c);
           i := !i + 3
         | Some _ | None ->
           Buffer.add_char buf s.[!i];
           incr i
       else begin
         Buffer.add_char buf s.[!i];
         incr i
       end)
    done;
    Buffer.contents buf
  end

(* "-" marks an empty probe label; a literal "-" label encodes its
   dash so the two stay distinguishable *)
let label_tok l = if l = "" then "-" else if l = "-" then "%2D" else enc_field l

let to_string t =
  with_lock t @@ fun () ->
  let buf = Buffer.create 4096 in
  Buffer.add_string buf format_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "frame %d %.17g %d %d\n" f.f_seq f.f_unix f.f_ticks
           (Array.length f.f_points));
      Array.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "pt %s %.17g %.17g %s%s\n" (kind_tag p.p_kind)
               p.p_value p.p_sum (enc_field p.p_name)
               (match p.p_labels with
                | [] -> ""
                | l ->
                  " "
                  ^ String.concat ","
                      (List.map
                         (fun (k, v) -> enc_field k ^ "=" ^ enc_field v)
                         l))))
        f.f_points)
    (frames_u t);
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "probe %s %s %.17g %d %d\n"
           (enc_field p.Probe.p_probe)
           (label_tok p.Probe.p_label)
           p.Probe.p_baseline p.Probe.p_fired
           (if Probe.firing p then 1 else 0)))
    (probes_u t);
  Buffer.contents buf

let split_ws s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_labels s =
  String.split_on_char ',' s
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | Some i ->
           Some
             ( dec_field (String.sub kv 0 i),
               dec_field (String.sub kv (i + 1) (String.length kv - i - 1)) )
         | None -> None)

let merge_string t s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: rest when String.trim header = format_header ->
    with_lock t @@ fun () ->
    let flt s = Option.value ~default:0.0 (float_of_string_opt s) in
    let int_of s = Option.value ~default:0 (int_of_string_opt s) in
    (* points accumulate under the open frame header until the next
       frame (or a non-point line) flushes it *)
    let pending : (int * float * int) option ref = ref None in
    let pts = ref [] in
    let flush () =
      match !pending with
      | Some (seq, unix, ticks) ->
        push_raw t
          {
            f_seq = seq;
            f_unix = unix;
            f_ticks = ticks;
            f_points = Array.of_list (List.rev !pts);
          };
        pending := None;
        pts := []
      | None -> ()
    in
    List.iter
      (fun line ->
        match split_ws line with
        | [ "frame"; seq; unix; ticks; _n ] ->
          flush ();
          pending := Some (int_of seq, flt unix, int_of ticks)
        | "pt" :: kind :: value :: sum :: name :: rest
          when !pending <> None ->
          let kind =
            match kind with "c" -> Counter | "h" -> Hist | _ -> Gauge
          in
          let labels =
            match rest with [ l ] -> parse_labels l | _ -> []
          in
          pts :=
            {
              p_name = dec_field name;
              p_labels = labels;
              p_kind = kind;
              p_value = flt value;
              p_sum = flt sum;
            }
            :: !pts
        | [ "probe"; probe; label; baseline; fired; firing ] ->
          flush ();
          let probe = dec_field probe in
          let label = if label = "-" then "" else dec_field label in
          Probe.restore
            (ensure_probe t ~probe ~label)
            ~baseline:(flt baseline) ~fired:(int_of fired)
            ~firing:(int_of firing <> 0)
        | [] | _ -> flush ())
      rest;
    flush ();
    Result.Ok ()
  | header :: _ ->
    Result.Error
      (Printf.sprintf "timeline: unrecognized header %S" (String.trim header))
  | [] -> Result.Error "timeline: empty input"

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () -> output_string oc (to_string t))

let load t path =
  if not (Sys.file_exists path) then false
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match merge_string t s with
     | Result.Ok () -> ()
     | Result.Error e -> Printf.eprintf "mad_obs: %s: %s\n%!" path e);
    true
  end
