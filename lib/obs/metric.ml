(** Metric instruments.

    An instrument is a mutable cell; recording is a field update, so
    instruments can sit on hot paths (molecule derivation visits one
    counter per atom).  Aggregation, naming and export live in
    {!Registry} and {!Sink}; an unregistered instrument is just a
    cheap local accumulator (the [Derive.stats] shim uses that). *)

type labels = (string * string) list

type counter = {
  c_name : string;
  c_labels : labels;
  count : int Atomic.t;
      (** atomic so kernel workers on other domains can account
          atoms/links into the same counter without tearing *)
}

type gauge = {
  g_name : string;
  g_labels : labels;
  cell : float Atomic.t;
      (** atomic for the same reason as [count]: the pool-utilization
          gauges are bumped from kernel worker domains *)
}

type histogram = {
  h_name : string;
  h_labels : labels;
  bounds : float array;  (** inclusive upper bounds, strictly increasing *)
  counts : int array;  (** length = length bounds + 1 (overflow bucket) *)
  ex_seq : int array;
      (** per-bucket exemplar: recorder seq of the last span that
          landed in the bucket, [-1] while the bucket has none *)
  ex_val : float array;  (** the exemplar's observed value *)
  mutable sum : float;
  mutable n : int;
  mutable min_v : float;  (** [infinity] while empty *)
  mutable max_v : float;  (** [neg_infinity] while empty *)
}

type sample = Counter of counter | Gauge of gauge | Histogram of histogram

(* ------------------------------------------------------------------ *)

let counter ?(labels = []) name =
  { c_name = name; c_labels = labels; count = Atomic.make 0 }

let incr c = Atomic.incr c.count
let add c n = ignore (Atomic.fetch_and_add c.count n)
let value c = Atomic.get c.count

let gauge ?(labels = []) name =
  { g_name = name; g_labels = labels; cell = Atomic.make 0.0 }

let set g v = Atomic.set g.cell v
let get g = Atomic.get g.cell

(* [compare_and_set] on a boxed float compares the box physically; we
   retry with the freshly read box, so the loop is ABA-safe. *)
let rec add_gauge g d =
  let cur = Atomic.get g.cell in
  if not (Atomic.compare_and_set g.cell cur (cur +. d)) then add_gauge g d

(** Default histogram bounds: a 1-2-5 ladder covering microsecond to
    multi-second durations in milliseconds. *)
let default_bounds =
  [| 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0;
     10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0 |]

(** A 1-2-5 ladder for operator latencies in microseconds: 1 µs up to
    5 s — the bounds of the [op.latency_us] histograms. *)
let latency_bounds_us =
  [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1e3; 2e3; 5e3;
     1e4; 2e4; 5e4; 1e5; 2e5; 5e5; 1e6; 2e6; 5e6 |]

let histogram ?(labels = []) ?(bounds = default_bounds) name =
  {
    h_name = name;
    h_labels = labels;
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    ex_seq = Array.make (Array.length bounds + 1) (-1);
    ex_val = Array.make (Array.length bounds + 1) 0.0;
    sum = 0.0;
    n = 0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let observe ?(exemplar = -1) h v =
  let k = Array.length h.bounds in
  let rec bucket i = if i >= k || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  if exemplar >= 0 then begin
    h.ex_seq.(i) <- exemplar;
    h.ex_val.(i) <- v
  end;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
let min_value h = if h.n = 0 then 0.0 else h.min_v
let max_value h = if h.n = 0 then 0.0 else h.max_v

(** Approximate quantile ([q] in [0,1]): find the bucket holding the
    target rank, then interpolate linearly inside it.  The first
    bucket's lower edge is the tracked minimum and the overflow
    bucket's upper edge is the tracked maximum, so long-tail
    observations beyond the last bound report their true range instead
    of being capped at [bounds.(k-1)].  [None] while the histogram is
    empty — there is no rank to interpolate against, and the sentinels
    [min_v = infinity] / [max_v = neg_infinity] must not leak. *)
let quantile h q =
  if h.n = 0 then None
  else begin
    let target = int_of_float (Float.round (q *. float_of_int h.n)) in
    let target = max 1 (min h.n target) in
    let k = Array.length h.bounds in
    let rec go i before =
      let c = h.counts.(i) in
      if i < k && before + c < target then go (i + 1) (before + c)
      else begin
        let lower = if i = 0 then h.min_v else h.bounds.(i - 1) in
        let upper = if i < k then h.bounds.(i) else h.max_v in
        let v =
          if c = 0 then upper
          else
            lower
            +. (upper -. lower)
               *. (float_of_int (target - before) /. float_of_int c)
        in
        (* observed range always brackets the estimate *)
        Float.max h.min_v (Float.min h.max_v v)
      end
    in
    Some (go 0 0)
  end

(** Merge a persisted histogram snapshot into [h] (same bounds ladder
    assumed) — the digest store uses this to fold [digest.mad] counts
    back into live instruments. *)
let absorb h ~counts ~sum ~n ~min_v ~max_v =
  let k = min (Array.length h.counts) (Array.length counts) in
  for i = 0 to k - 1 do
    h.counts.(i) <- h.counts.(i) + counts.(i)
  done;
  h.sum <- h.sum +. sum;
  h.n <- h.n + n;
  if n > 0 then begin
    if min_v < h.min_v then h.min_v <- min_v;
    if max_v > h.max_v then h.max_v <- max_v
  end

let reset = function
  | Counter c -> Atomic.set c.count 0
  | Gauge g -> Atomic.set g.cell 0.0
  | Histogram h ->
    Array.fill h.counts 0 (Array.length h.counts) 0;
    Array.fill h.ex_seq 0 (Array.length h.ex_seq) (-1);
    Array.fill h.ex_val 0 (Array.length h.ex_val) 0.0;
    h.sum <- 0.0;
    h.n <- 0;
    h.min_v <- infinity;
    h.max_v <- neg_infinity

(* ------------------------------------------------------------------ *)

let name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let labels = function
  | Counter c -> c.c_labels
  | Gauge g -> g.g_labels
  | Histogram h -> h.h_labels

let pp_labels ppf = function
  | [] -> ()
  | labels ->
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:(any ",") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
      labels

let pp_quantile ppf = function
  | None -> Fmt.pf ppf "-"
  | Some v -> Fmt.pf ppf "%.3f" v

let pp ppf = function
  | Counter c ->
    Fmt.pf ppf "%s%a = %d" c.c_name pp_labels c.c_labels (Atomic.get c.count)
  | Gauge g ->
    Fmt.pf ppf "%s%a = %g" g.g_name pp_labels g.g_labels (Atomic.get g.cell)
  | Histogram h ->
    Fmt.pf ppf "%s%a: n=%d sum=%.3f min=%.3f mean=%.3f p50=%a p95=%a max=%.3f"
      h.h_name pp_labels h.h_labels h.n h.sum (min_value h) (mean h)
      pp_quantile (quantile h 0.5) pp_quantile (quantile h 0.95) (max_value h)
