(** Metric instruments.

    An instrument is a mutable cell; recording is a field update, so
    instruments can sit on hot paths (molecule derivation visits one
    counter per atom).  Aggregation, naming and export live in
    {!Registry} and {!Sink}; an unregistered instrument is just a
    cheap local accumulator (the [Derive.stats] shim uses that). *)

type labels = (string * string) list

type counter = {
  c_name : string;
  c_labels : labels;
  count : int Atomic.t;
      (** atomic so kernel workers on other domains can account
          atoms/links into the same counter without tearing *)
}

type gauge = {
  g_name : string;
  g_labels : labels;
  cell : float Atomic.t;
      (** atomic for the same reason as [count]: the pool-utilization
          gauges are bumped from kernel worker domains *)
}

(* Histograms are fully atomic: server worker domains observe into the
   same instrument concurrently (per-request phase timings, lock
   profiles), so every cell is an [Atomic.t] — bucket increments are
   [fetch_and_add], float accumulators are CAS retry loops.  A reader
   racing writers may see a bucket total and [h_n] momentarily out of
   step; exposition tolerates that (telemetry reads are snapshots, not
   transactions). *)
type histogram = {
  h_name : string;
  h_labels : labels;
  bounds : float array;  (** inclusive upper bounds, strictly increasing *)
  counts : int Atomic.t array;
      (** length = length bounds + 1 (overflow bucket) *)
  ex_seq : int Atomic.t array;
      (** per-bucket exemplar: recorder seq of the last span that
          landed in the bucket, [-1] while the bucket has none *)
  ex_val : float Atomic.t array;  (** the exemplar's observed value *)
  h_sum : float Atomic.t;
  h_n : int Atomic.t;
  h_min : float Atomic.t;  (** [infinity] while empty *)
  h_max : float Atomic.t;  (** [neg_infinity] while empty *)
}

type sample = Counter of counter | Gauge of gauge | Histogram of histogram

(* ------------------------------------------------------------------ *)

let counter ?(labels = []) name =
  { c_name = name; c_labels = labels; count = Atomic.make 0 }

let incr c = Atomic.incr c.count
let add c n = ignore (Atomic.fetch_and_add c.count n)
let value c = Atomic.get c.count

let gauge ?(labels = []) name =
  { g_name = name; g_labels = labels; cell = Atomic.make 0.0 }

let set g v = Atomic.set g.cell v
let get g = Atomic.get g.cell

(* [compare_and_set] on a boxed float compares the box physically; we
   retry with the freshly read box, so the loop is ABA-safe. *)
let rec add_float cell d =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. d)) then add_float cell d

let add_gauge g d = add_float g.cell d

let rec fold_float cell f v =
  let cur = Atomic.get cell in
  let next = f cur v in
  if next <> cur && not (Atomic.compare_and_set cell cur next) then
    fold_float cell f v

(** Default histogram bounds: a 1-2-5 ladder covering microsecond to
    multi-second durations in milliseconds. *)
let default_bounds =
  [| 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0;
     10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0 |]

(** A 1-2-5 ladder for operator latencies in microseconds: 1 µs up to
    5 s — the bounds of the [op.latency_us] histograms. *)
let latency_bounds_us =
  [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1e3; 2e3; 5e3;
     1e4; 2e4; 5e4; 1e5; 2e5; 5e5; 1e6; 2e6; 5e6 |]

let histogram ?(labels = []) ?(bounds = default_bounds) name =
  {
    h_name = name;
    h_labels = labels;
    bounds;
    counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
    ex_seq = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make (-1));
    ex_val = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0.0);
    h_sum = Atomic.make 0.0;
    h_n = Atomic.make 0;
    h_min = Atomic.make infinity;
    h_max = Atomic.make neg_infinity;
  }

let observe ?(exemplar = -1) h v =
  let k = Array.length h.bounds in
  let rec bucket i = if i >= k || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  ignore (Atomic.fetch_and_add h.counts.(i) 1);
  if exemplar >= 0 then begin
    (* value first, seq last: a racing exposition keyed on [seq >= 0]
       never reads the value of a half-written exemplar pair (the pair
       can mix two concurrent exemplars — diagnostic, tolerated) *)
    Atomic.set h.ex_val.(i) v;
    Atomic.set h.ex_seq.(i) exemplar
  end;
  add_float h.h_sum v;
  ignore (Atomic.fetch_and_add h.h_n 1);
  fold_float h.h_min Float.min v;
  fold_float h.h_max Float.max v

let count h = Atomic.get h.h_n
let sum h = Atomic.get h.h_sum
let bucket_count h i = Atomic.get h.counts.(i)
let exemplar_seq h i = Atomic.get h.ex_seq.(i)
let exemplar_value h i = Atomic.get h.ex_val.(i)

let min_raw h = Atomic.get h.h_min
let max_raw h = Atomic.get h.h_max

let mean h =
  let n = count h in
  if n = 0 then 0.0 else sum h /. float_of_int n

let min_value h = if count h = 0 then 0.0 else min_raw h
let max_value h = if count h = 0 then 0.0 else max_raw h

(** Approximate quantile ([q] in [0,1]): find the bucket holding the
    target rank, then interpolate linearly inside it.  The first
    bucket's lower edge is the tracked minimum and the overflow
    bucket's upper edge is the tracked maximum, so long-tail
    observations beyond the last bound report their true range instead
    of being capped at [bounds.(k-1)].  [None] while the histogram is
    empty — there is no rank to interpolate against, and the sentinels
    [h_min = infinity] / [h_max = neg_infinity] must not leak. *)
let quantile h q =
  let n = count h in
  if n = 0 then None
  else begin
    let min_v = min_raw h and max_v = max_raw h in
    let target = int_of_float (Float.round (q *. float_of_int n)) in
    let target = max 1 (min n target) in
    let k = Array.length h.bounds in
    let rec go i before =
      let c = bucket_count h i in
      if i < k && before + c < target then go (i + 1) (before + c)
      else begin
        let lower = if i = 0 then min_v else h.bounds.(i - 1) in
        let upper = if i < k then h.bounds.(i) else max_v in
        let v =
          if c = 0 then upper
          else
            lower
            +. (upper -. lower)
               *. (float_of_int (target - before) /. float_of_int c)
        in
        (* observed range always brackets the estimate *)
        Float.max min_v (Float.min max_v v)
      end
    in
    Some (go 0 0)
  end

(** Merge a persisted histogram snapshot into [h] (same bounds ladder
    assumed) — the digest store uses this to fold [digest.mad] counts
    back into live instruments. *)
let absorb h ~counts ~sum ~n ~min_v ~max_v =
  let k = min (Array.length h.counts) (Array.length counts) in
  for i = 0 to k - 1 do
    ignore (Atomic.fetch_and_add h.counts.(i) counts.(i))
  done;
  add_float h.h_sum sum;
  ignore (Atomic.fetch_and_add h.h_n n);
  if n > 0 then begin
    fold_float h.h_min Float.min min_v;
    fold_float h.h_max Float.max max_v
  end

let reset = function
  | Counter c -> Atomic.set c.count 0
  | Gauge g -> Atomic.set g.cell 0.0
  | Histogram h ->
    Array.iter (fun c -> Atomic.set c 0) h.counts;
    Array.iter (fun c -> Atomic.set c (-1)) h.ex_seq;
    Array.iter (fun c -> Atomic.set c 0.0) h.ex_val;
    Atomic.set h.h_sum 0.0;
    Atomic.set h.h_n 0;
    Atomic.set h.h_min infinity;
    Atomic.set h.h_max neg_infinity

(* ------------------------------------------------------------------ *)

let name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let labels = function
  | Counter c -> c.c_labels
  | Gauge g -> g.g_labels
  | Histogram h -> h.h_labels

let pp_labels ppf = function
  | [] -> ()
  | labels ->
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:(any ",") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
      labels

let pp_quantile ppf = function
  | None -> Fmt.pf ppf "-"
  | Some v -> Fmt.pf ppf "%.3f" v

let pp ppf = function
  | Counter c ->
    Fmt.pf ppf "%s%a = %d" c.c_name pp_labels c.c_labels (Atomic.get c.count)
  | Gauge g ->
    Fmt.pf ppf "%s%a = %g" g.g_name pp_labels g.g_labels (Atomic.get g.cell)
  | Histogram h ->
    Fmt.pf ppf "%s%a: n=%d sum=%.3f min=%.3f mean=%.3f p50=%a p95=%a max=%.3f"
      h.h_name pp_labels h.h_labels (count h) (sum h) (min_value h) (mean h)
      pp_quantile (quantile h 0.5) pp_quantile (quantile h 0.95) (max_value h)
