(** Metric instruments.

    An instrument is a mutable cell; recording is a field update, so
    instruments can sit on hot paths (molecule derivation visits one
    counter per atom).  Aggregation, naming and export live in
    {!Registry} and {!Sink}; an unregistered instrument is just a
    cheap local accumulator (the [Derive.stats] shim uses that). *)

type labels = (string * string) list

type counter = {
  c_name : string;
  c_labels : labels;
  mutable count : int;
}

type gauge = {
  g_name : string;
  g_labels : labels;
  mutable value : float;
}

type histogram = {
  h_name : string;
  h_labels : labels;
  bounds : float array;  (** inclusive upper bounds, strictly increasing *)
  counts : int array;  (** length = length bounds + 1 (overflow bucket) *)
  mutable sum : float;
  mutable n : int;
}

type sample = Counter of counter | Gauge of gauge | Histogram of histogram

(* ------------------------------------------------------------------ *)

let counter ?(labels = []) name = { c_name = name; c_labels = labels; count = 0 }
let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count

let gauge ?(labels = []) name = { g_name = name; g_labels = labels; value = 0.0 }
let set g v = g.value <- v
let get g = g.value

(** Default histogram bounds: a 1-2-5 ladder covering microsecond to
    multi-second durations in milliseconds. *)
let default_bounds =
  [| 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0;
     10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0 |]

let histogram ?(labels = []) ?(bounds = default_bounds) name =
  {
    h_name = name;
    h_labels = labels;
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    sum = 0.0;
    n = 0;
  }

let observe h v =
  let k = Array.length h.bounds in
  let rec bucket i = if i >= k || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1

let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

(** Approximate quantile from the bucket boundaries ([q] in [0,1]). *)
let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let target = int_of_float (Float.round (q *. float_of_int h.n)) in
    let target = max 1 (min h.n target) in
    let k = Array.length h.bounds in
    let rec go i acc =
      if i > k then h.bounds.(k - 1)
      else
        let acc = acc + h.counts.(i) in
        if acc >= target then
          if i >= k then h.bounds.(k - 1) else h.bounds.(i)
        else go (i + 1) acc
    in
    go 0 0
  end

let reset = function
  | Counter c -> c.count <- 0
  | Gauge g -> g.value <- 0.0
  | Histogram h ->
    Array.fill h.counts 0 (Array.length h.counts) 0;
    h.sum <- 0.0;
    h.n <- 0

(* ------------------------------------------------------------------ *)

let name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let labels = function
  | Counter c -> c.c_labels
  | Gauge g -> g.g_labels
  | Histogram h -> h.h_labels

let pp_labels ppf = function
  | [] -> ()
  | labels ->
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:(any ",") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
      labels

let pp ppf = function
  | Counter c -> Fmt.pf ppf "%s%a = %d" c.c_name pp_labels c.c_labels c.count
  | Gauge g -> Fmt.pf ppf "%s%a = %g" g.g_name pp_labels g.g_labels g.value
  | Histogram h ->
    Fmt.pf ppf "%s%a: n=%d mean=%.3f p50=%.3f p95=%.3f" h.h_name pp_labels
      h.h_labels h.n (mean h) (quantile h 0.5) (quantile h 0.95)
