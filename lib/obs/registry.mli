(** The metrics registry: get-or-create instruments by (name, labels).
    Each MOL session / EXPLAIN ANALYZE run owns one, isolating its
    actual counters.

    Registration and enumeration are thread-safe (a mutex guards the
    table), so the timeline's background sampler domain can snapshot
    while the statement path registers new instruments.  Instrument
    {e mutation} (Metric.incr etc.) is lock-free; cross-domain readers
    may observe slightly stale values, never torn ones. *)

type t

val create : unit -> t

val counter : ?labels:Metric.labels -> t -> string -> Metric.counter
(** Get or create; raises [Invalid_argument] if the name is already
    registered as a different instrument kind (same for the others). *)

val gauge : ?labels:Metric.labels -> t -> string -> Metric.gauge
val histogram : ?labels:Metric.labels -> ?bounds:float array -> t -> string -> Metric.histogram

val find : t -> ?labels:Metric.labels -> string -> Metric.sample option

val counter_value : t -> ?labels:Metric.labels -> string -> int
(** The counter's value, or 0 when absent (or not a counter). *)

val to_list : t -> Metric.sample list
(** All samples in registration order. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit

val expose : t -> string
(** Prometheus text exposition of every registered sample: [# TYPE]
    comments, counters and gauges as single lines, histograms as
    cumulative [_bucket{le=...}] lines plus [_sum] and [_count].
    Dotted metric names are mapped to underscores ([op.latency_us] →
    [op_latency_us]); label values are escaped per the format. *)
