(** Pluggable sinks for finished root spans, metric flushes and
    free-form events: silent no-op (default), pretty console, JSON
    lines. *)

type t = {
  emit_span : Span.t -> unit;
  emit_metrics : Metric.sample list -> unit;
  emit_event : string -> (string * Span.value) list -> unit;
}

val noop : t
val pretty : Format.formatter -> t

val json : out_channel -> t
(** One JSON object per line, flushed per line. *)

val json_to_buffer : Buffer.t -> t
val json_lines : (string -> unit) -> t

val json_of_sample : Metric.sample -> Json.t
val json_of_span : Span.t -> Json.t
val json_of_event : string -> (string * Span.value) list -> Json.t
