(** Minimal JSON values: printer (used by the sinks) and parser (used
    by the tests to assert the sink output is well-formed).  Non-finite
    floats print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] elsewhere. *)

val to_float : t -> float option
val to_str : t -> string option
