(** Pluggable sinks: where finished root spans, metric flushes and
    free-form events go.

    - {!noop}: the default — everything is dropped; instrumented code
      pays only for its local counter updates.
    - {!pretty}: human-readable rendering on a formatter.
    - {!json}: one JSON object per line (machine-comparable; the
      bench trajectories and [madql --profile=json] use it). *)

type t = {
  emit_span : Span.t -> unit;  (** called once per finished root span *)
  emit_metrics : Metric.sample list -> unit;  (** called by [Obs.flush] *)
  emit_event : string -> (string * Span.value) list -> unit;
      (** free-form event: kind, fields *)
}

let noop =
  {
    emit_span = (fun _ -> ());
    emit_metrics = (fun _ -> ());
    emit_event = (fun _ _ -> ());
  }

(* ------------------------------------------------------------------ *)

let pretty ppf =
  {
    emit_span = (fun sp -> Fmt.pf ppf "[obs] %a@." Span.pp sp);
    emit_metrics =
      (fun samples ->
        Fmt.pf ppf "@[<v>[obs] metrics:@,%a@]@."
          Fmt.(list ~sep:(any "@,") (fun ppf s -> Fmt.pf ppf "  %a" Metric.pp s))
          samples);
    emit_event =
      (fun kind fields ->
        Fmt.pf ppf "[obs] %s%a@." kind
          Fmt.(
            list ~sep:nop (fun ppf (k, v) ->
                Fmt.pf ppf " %s=%a" k Span.pp_value v))
          fields);
  }

(* ------------------------------------------------------------------ *)

let json_of_labels labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let json_of_sample = function
  | Metric.Counter c ->
    Json.Obj
      [
        ("kind", Json.Str "counter");
        ("name", Json.Str c.Metric.c_name);
        ("labels", json_of_labels c.Metric.c_labels);
        ("value", Json.Num (float_of_int (Metric.value c)));
      ]
  | Metric.Gauge g ->
    Json.Obj
      [
        ("kind", Json.Str "gauge");
        ("name", Json.Str g.Metric.g_name);
        ("labels", json_of_labels g.Metric.g_labels);
        ("value", Json.Num (Metric.get g));
      ]
  | Metric.Histogram h ->
    Json.Obj
      [
        ("kind", Json.Str "histogram");
        ("name", Json.Str h.Metric.h_name);
        ("labels", json_of_labels h.Metric.h_labels);
        ("n", Json.Num (float_of_int (Metric.count h)));
        ("sum", Json.Num (Metric.sum h));
        ("min", Json.Num (Metric.min_value h));
        ("mean", Json.Num (Metric.mean h));
        ( "p50",
          match Metric.quantile h 0.5 with
          | Some v -> Json.Num v
          | None -> Json.Null );
        ( "p95",
          match Metric.quantile h 0.95 with
          | Some v -> Json.Num v
          | None -> Json.Null );
        ("max", Json.Num (Metric.max_value h));
      ]

let json_of_span sp =
  match Span.to_json sp with
  | Json.Obj fields -> Json.Obj (("kind", Json.Str "span") :: fields)
  | other -> other

let json_of_event kind fields =
  Json.Obj
    (("kind", Json.Str kind)
    :: List.map (fun (k, v) -> (k, Span.json_of_value v)) fields)

(** JSON-lines through an arbitrary line writer. *)
let json_lines write =
  {
    emit_span = (fun sp -> write (Json.to_string (json_of_span sp)));
    emit_metrics =
      (fun samples ->
        List.iter (fun s -> write (Json.to_string (json_of_sample s))) samples);
    emit_event =
      (fun kind fields -> write (Json.to_string (json_of_event kind fields)));
  }

let json oc =
  json_lines (fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)

let json_to_buffer buf =
  json_lines (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
