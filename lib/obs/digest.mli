(** Workload digest: per-statement aggregation keyed by (fingerprint,
    plan hash) — the MAD analog of pg_stat_statements — plus the
    slow-query log.

    Fingerprints come from [Mad_mql.Fingerprint] (literals stripped,
    structure kept); plan hashes from [Prima.Planner.plan_hash].  Rows
    are backed by registry instruments ([digest.calls] /
    [digest.errors] / [digest.rows] / [digest.latency_us] labeled
    [fp]/[plan], and the global [plan.switch] counter), so the digest
    is exported by {!Registry.expose} with no extra plumbing.  A
    fingerprint arriving under a new plan hash journals a
    {!Recorder.Plan_switch} event and bumps [plan.switch]. *)

type t

val create : Registry.t -> t
(** A digest store registering its instruments (including the
    [plan.switch] counter) into [registry]. *)

val registry : t -> Registry.t

val switch_count : t -> int
(** Total plan switches observed (the [plan.switch] counter). *)

val record :
  t ->
  fp:int ->
  text:string ->
  plan:int ->
  latency_us:float ->
  rows:int ->
  error:bool ->
  ?exemplar:int ->
  unit ->
  bool
(** Record one statement execution under fingerprint [fp] (normalized
    text [text]) and plan hash [plan].  [exemplar] is a flight-recorder
    seq for the latency histogram bucket.  Returns [true] when the
    fingerprint switched plans (journaled and counted internally). *)

val note_drift : t -> fp:int -> text:string -> plan:int -> err:float -> unit
(** Fold one EXPLAIN ANALYZE estimate-vs-actual reading
    ([Prima.Profile.error]) into the (fingerprint, plan) row. *)

(** {1 Reporting} *)

type report_row = {
  r_fp : int;
  r_text : string;
  r_plan : int;
  r_calls : int;
  r_errors : int;
  r_rows : int;
  r_total_us : float;
  r_mean_us : float;
  r_p95_us : float;
  r_max_us : float;
  r_drift : float;  (** mean |estimate − actual| per ANALYZE run *)
  r_switches : int;  (** the owning fingerprint's plan switches *)
}

type order = [ `Total | `Mean | `Calls ]

val report : t -> report_row list
(** Every (fingerprint, plan) row, fingerprint insertion order. *)

val top : ?by:order -> int -> t -> report_row list
(** Top-K rows by total latency (default), mean latency, or calls. *)

val pp_table : Format.formatter -> report_row list -> unit

val to_json : ?by:order -> ?top:int -> t -> Json.t
(** Rows grouped under their fingerprints:
    [{"plan_switches": N, "fingerprints": [{"fingerprint", "text",
    "switches", "plans": [{"plan_hash", "calls", ...}]}]}]. *)

val hex : int -> string
(** The hex rendering used for fingerprint / plan-hash labels. *)

(** {1 Persistence ([digest.mad])} *)

val to_string : t -> string
(** Serialize in the line-oriented [digest.mad] format. *)

val merge_string : t -> string -> (unit, string) result
(** Merge a serialized digest into the live store (counts add,
    histograms absorb).  Malformed lines are skipped; [Error] only on
    a bad header. *)

val save : t -> string -> unit

val load : t -> string -> bool
(** Merge the digest file at [path] into [t]; [false] when absent. *)

(** {1 Slow-query log}

    Process-global configuration, seeded from [MAD_SLOW_LOG=MS] or
    [MAD_SLOW_LOG=MS:FILE] and overridden by [--slow-log] via
    {!set_slow_log}.  Entries are JSON lines appended to the log
    file. *)

val slow_threshold_ms : unit -> float option
(** The active threshold; [None] disables the slow log. *)

val slow_log_path : unit -> string
val set_slow_log : ?path:string -> float option -> unit

type slow_entry = {
  sl_stmt : string;  (** the full statement, literals intact *)
  sl_fp : int;
  sl_plan : int;
  sl_ms : float;
  sl_plan_text : string;  (** the algebra plan (EXPLAIN rendering) *)
  sl_analyze : string option;  (** EXPLAIN ANALYZE tree when executable *)
  sl_events : Recorder.event list;  (** flight-recorder window *)
}

val slow_entry_json : slow_entry -> Json.t

val log_slow : slow_entry -> unit
(** Append one JSON line to the slow log and journal a
    {!Recorder.Slow_query} instant. *)
