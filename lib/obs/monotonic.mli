(** Monotonic ticks (engine-clock nanoseconds) for event stamping. *)

val ticks : unit -> int
(** Nanoseconds on the engine clock, as a native [int].  Reads
    {!Span.clock}, so deterministic test clocks and installed
    monotonic clocks apply here as well. *)
