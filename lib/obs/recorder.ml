(** The flight recorder: a fixed-size, overwrite-oldest ring of typed
    engine events, always on at near-zero cost.

    Design: every slot is a preallocated mutable record; recording
    claims a unique sequence number with [Atomic.fetch_and_add] and
    writes the slot [seq land mask] — kernel worker domains and the
    main domain record concurrently without locks, and a ring at least
    as large as the burst loses nothing (each event gets its own
    slot).  Under wraparound the writer marks the slot torn ([e_seq <-
    -1]) before filling it and stamps the final [e_seq] last, so
    {!drain} can skip slots caught mid-write instead of emitting a
    franken-event.

    The journal is diagnostic, not transactional: a reader racing a
    wrapping writer may drop the oldest few events.  That is the
    flight-recorder trade — bounded memory, no backpressure on the
    engine — and it is why every exported event is self-contained
    (span ends carry their duration rather than pairing with a begin
    that may have been overwritten). *)

type kind =
  | Span_begin
  | Span_end
  | Metric_flush
  | Wal_append
  | Wal_fsync
  | Group_commit
  | Snapshot_build
  | Snapshot_invalidate
  | Snapshot_delta
  | Closure_repair
  | Kernel_run
  | Kernel_chunk
  | Recovery_replay
  | Plan_switch
  | Slow_query
  | Probe_fired
  | Serve_conn
  | Serve_request
  | Serve_phase

let kind_name = function
  | Span_begin -> "span.begin"
  | Span_end -> "span.end"
  | Metric_flush -> "metric.flush"
  | Wal_append -> "wal.append"
  | Wal_fsync -> "wal.fsync"
  | Group_commit -> "wal.group_commit"
  | Snapshot_build -> "snapshot.build"
  | Snapshot_invalidate -> "snapshot.invalidate"
  | Snapshot_delta -> "snapshot.delta"
  | Closure_repair -> "closure.repair"
  | Kernel_run -> "kernel.run"
  | Kernel_chunk -> "kernel.chunk"
  | Recovery_replay -> "recovery.replay"
  | Plan_switch -> "plan.switch"
  | Slow_query -> "slow.query"
  | Probe_fired -> "probe.fired"
  | Serve_conn -> "serve.conn"
  | Serve_request -> "serve.request"
  | Serve_phase -> "serve.phase"

type event = {
  mutable e_seq : int;  (** global sequence number; [-1] = empty/torn *)
  mutable e_kind : kind;
  mutable e_ticks : int;  (** {!Monotonic.ticks} at record time *)
  mutable e_dur_ns : int;  (** duration, 0 for instants *)
  mutable e_dom : int;  (** recording domain id *)
  mutable e_label : string;  (** span name / WAL tag / snapshot target *)
  mutable e_a : int;  (** kind-specific payload (bytes, roots, recno…) *)
  mutable e_b : int;  (** second payload (nodes, hi, error flag…) *)
}

type t = {
  events : event array;
  mask : int;  (** [Array.length events - 1]; the length is a power of two *)
  cursor : int Atomic.t;  (** total events ever recorded = next seq *)
  on : bool Atomic.t;
}

let empty_event () =
  {
    e_seq = -1;
    e_kind = Span_begin;
    e_ticks = 0;
    e_dur_ns = 0;
    e_dom = 0;
    e_label = "";
    e_a = 0;
    e_b = 0;
  }

let copy_event ev =
  {
    e_seq = ev.e_seq;
    e_kind = ev.e_kind;
    e_ticks = ev.e_ticks;
    e_dur_ns = ev.e_dur_ns;
    e_dom = ev.e_dom;
    e_label = ev.e_label;
    e_a = ev.e_a;
    e_b = ev.e_b;
  }

let create capacity =
  let capacity = max 2 capacity in
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let size = pow2 2 in
  {
    events = Array.init size (fun _ -> empty_event ());
    mask = size - 1;
    cursor = Atomic.make 0;
    on = Atomic.make true;
  }

let capacity t = Array.length t.events
let recorded t = Atomic.get t.cursor

let record t kind ?ticks ?(dur_ns = 0) ?(label = "") ?(a = 0) ?(b = 0) () =
  if not (Atomic.get t.on) then -1
  else begin
    let seq = Atomic.fetch_and_add t.cursor 1 in
    let ev = t.events.(seq land t.mask) in
    ev.e_seq <- -1;
    ev.e_kind <- kind;
    ev.e_ticks <-
      (match ticks with Some tk -> tk | None -> Monotonic.ticks ());
    ev.e_dur_ns <- dur_ns;
    ev.e_dom <- (Domain.self () :> int);
    ev.e_label <- label;
    ev.e_a <- a;
    ev.e_b <- b;
    ev.e_seq <- seq;
    seq
  end

(** Snapshot the retained window, oldest first.  Slots being rewritten
    while we read (the wraparound race) are skipped. *)
let drain t =
  let total = Atomic.get t.cursor in
  let lo = max 0 (total - Array.length t.events) in
  let out = ref [] in
  for seq = total - 1 downto lo do
    let ev = t.events.(seq land t.mask) in
    if ev.e_seq = seq then out := copy_event ev :: !out
  done;
  !out

(* ------------------------------------------------------------------ *)
(* The global ring                                                      *)

let default_capacity = 8192

let env_capacity () =
  match Option.map String.trim (Sys.getenv_opt "MAD_OBS_RING") with
  | None | Some "" -> Some default_capacity
  | Some s -> begin
    match int_of_string_opt s with
    | Some 0 -> None  (* MAD_OBS_RING=0 disables recording *)
    | Some n when n > 0 -> Some n
    | Some _ | None ->
      Printf.eprintf
        "mad_obs: ignoring invalid MAD_OBS_RING=%S (expected a size, 0=off)\n%!"
        s;
      Some default_capacity
  end

let trace_file () =
  match Option.map String.trim (Sys.getenv_opt "MAD_OBS_TRACE") with
  | None | Some "" -> None
  | some -> some

(* forward reference: [dump] is defined below, after the Chrome export *)
let dump_ref = ref (fun (_ : t) (_ : string) -> ())

(* the first recorder use can come from any domain — several server
   workers accepting their first connections at once — so the ring
   initializes through [Once], not a (domain-unsafe) lazy *)
let global_ring =
  Once.make (fun () ->
    let t =
       match env_capacity () with
       | Some n -> create n
       | None ->
         let t = create 2 in
         Atomic.set t.on false;
         t
     in
     (match trace_file () with
      | Some path ->
        at_exit (fun () ->
            if recorded t > 0 then
              try !dump_ref t path
              with Sys_error e ->
                Printf.eprintf "mad_obs: could not write %s: %s\n%!" path e)
      | None -> ());
     t)

let global () = Once.force global_ring
let enabled () = Atomic.get (global ()).on
let set_enabled b = Atomic.set (global ()).on b

let note kind ?dur_ns ?label ?a ?b () =
  ignore (record (global ()) kind ?dur_ns ?label ?a ?b ())

(* the caller passes its own clock reading so a journaled span costs
   two [Monotonic.ticks] reads in total, not four *)
let span_begin ~ticks name = record (global ()) Span_begin ~ticks ~label:name ()

let span_end ~ticks ~seq ~dur_ns ~error name =
  ignore
    (record (global ()) Span_end ~ticks ~dur_ns ~label:name ~a:seq
       ~b:(if error then 1 else 0)
       ())

(** Dump the global ring to [MAD_OBS_TRACE] (no-op when unset) — the
    error-autodump hook [Obs.with_span] fires when a root span fails. *)
let dump_on_error () =
  match trace_file () with
  | Some path -> begin
    try !dump_ref (global ()) path
    with Sys_error e ->
      Printf.eprintf "mad_obs: could not write %s: %s\n%!" path e
  end
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (Perfetto / about://tracing)               *)

(* synthetic track ids: real domains are small non-negative ints, so
   parking the WAL and planner tracks high up cannot collide *)
let wal_tid = 1000
let planner_tid = 1001

let is_planner_label l =
  String.length l >= 6 && String.sub l 0 6 = "prima."

let tid_of ev =
  match ev.e_kind with
  | Wal_append | Wal_fsync | Group_commit | Recovery_replay -> wal_tid
  | Plan_switch -> planner_tid
  | (Span_begin | Span_end) when is_planner_label ev.e_label -> planner_tid
  | _ -> ev.e_dom

let track_name tid =
  if tid = wal_tid then "wal"
  else if tid = planner_tid then "planner"
  else Printf.sprintf "domain %d" tid

(* "X" = complete event (ts + dur); everything else is an instant *)
let is_complete ev =
  match ev.e_kind with
  | Span_end | Wal_fsync | Group_commit | Snapshot_build | Snapshot_delta
  | Closure_repair | Kernel_run | Kernel_chunk ->
    true
  | Serve_request | Serve_phase -> true
  | Span_begin | Metric_flush | Wal_append | Snapshot_invalidate
  | Recovery_replay | Plan_switch | Slow_query | Probe_fired | Serve_conn ->
    false

let start_ticks ev = if is_complete ev then ev.e_ticks - ev.e_dur_ns else ev.e_ticks

let display_name ev =
  match ev.e_kind with
  | (Span_begin | Span_end) when ev.e_label <> "" -> ev.e_label
  | k -> kind_name k

let args_of ev =
  let num n = Json.Num (float_of_int n) in
  let common = [ ("seq", num ev.e_seq) ] in
  let specific =
    match ev.e_kind with
    | Span_begin -> []
    | Span_end -> if ev.e_b <> 0 then [ ("error", Json.Bool true) ] else []
    | Metric_flush -> [ ("samples", num ev.e_a) ]
    | Wal_append -> [ ("wal", Json.Str ev.e_label); ("bytes", num ev.e_a) ]
    | Wal_fsync -> [ ("wal", Json.Str ev.e_label) ]
    | Group_commit -> [ ("wal_records", num ev.e_a) ]
    | Snapshot_build ->
      [ ("target", Json.Str ev.e_label); ("rows", num ev.e_a);
        ("cells", num ev.e_b) ]
    | Snapshot_invalidate -> [ ("epoch", num ev.e_a) ]
    | Snapshot_delta ->
      [ ("target", Json.Str ev.e_label); ("patches", num ev.e_a);
        ("entries", num ev.e_b) ]
    | Closure_repair ->
      [ ("link", Json.Str ev.e_label); ("dirty", num ev.e_a);
        ("nodes", num ev.e_b) ]
    | Kernel_run ->
      [ ("target", Json.Str ev.e_label); ("roots", num ev.e_a);
        ("nodes", num ev.e_b) ]
    | Kernel_chunk -> [ ("lo", num ev.e_a); ("hi", num ev.e_b) ]
    | Recovery_replay -> [ ("recno", num ev.e_a); ("bytes", num ev.e_b) ]
    | Plan_switch ->
      [ ("fingerprint", Json.Str ev.e_label);
        ("old_plan", Json.Str (Printf.sprintf "%x" ev.e_a));
        ("new_plan", Json.Str (Printf.sprintf "%x" ev.e_b)) ]
    | Slow_query ->
      [ ("fingerprint", Json.Str ev.e_label);
        ("ms", Json.Num (float_of_int ev.e_a)) ]
    | Probe_fired ->
      [ ("probe", Json.Str ev.e_label); ("value", num ev.e_a);
        ("baseline", num ev.e_b) ]
    | Serve_conn ->
      [ ("peer", Json.Str ev.e_label); ("conn", num ev.e_a);
        ("opened", Json.Bool (ev.e_b = 1)) ]
    | Serve_request ->
      [ ("op", Json.Str ev.e_label); ("conn", num ev.e_a);
        ("status", num ev.e_b) ]
    | Serve_phase ->
      [ ("phase", Json.Str ev.e_label); ("request", num ev.e_a);
        ("conn", num ev.e_b) ]
  in
  Json.Obj (common @ specific)

let to_chrome t =
  let events = drain t in
  let base =
    List.fold_left (fun acc ev -> min acc (start_ticks ev)) max_int events
  in
  let base = if base = max_int then 0 else base in
  let us ticks = float_of_int (max 0 (ticks - base)) /. 1e3 in
  let trace_event ev =
    let fields =
      [
        ("name", Json.Str (display_name ev));
        ("cat", Json.Str (kind_name ev.e_kind));
        ("ph", Json.Str (if is_complete ev then "X" else "i"));
        ("ts", Json.Num (us (start_ticks ev)));
        ("pid", Json.Num 1.0);
        ("tid", Json.Num (float_of_int (tid_of ev)));
        ("args", args_of ev);
      ]
    in
    let fields =
      if is_complete ev then
        fields @ [ ("dur", Json.Num (float_of_int ev.e_dur_ns /. 1e3)) ]
      else fields @ [ ("s", Json.Str "t") ]
    in
    Json.Obj fields
  in
  let tids =
    List.sort_uniq compare (List.map tid_of events)
  in
  let metadata tid =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num 1.0);
        ("tid", Json.Num (float_of_int tid));
        ("args", Json.Obj [ ("name", Json.Str (track_name tid)) ]);
      ]
  in
  let process_meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num 1.0);
        ("args", Json.Obj [ ("name", Json.Str "mad engine") ]);
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          ((process_meta :: List.map metadata tids)
          @ List.map trace_event events) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let dump t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () ->
      output_string oc (Json.to_string (to_chrome t));
      output_char oc '\n')

let () = dump_ref := dump
