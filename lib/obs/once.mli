(** Domain-safe lazy initialization.

    OCaml's [Lazy] is not domain-safe: two domains forcing the same
    unforced suspension concurrently fail with
    [CamlinternalLazy.Undefined] (or [RacyLazy]).  The process-wide
    singletons of the observability layer — the default context, the
    global flight-recorder ring, shared metric handles — can see their
    first use from any domain (e.g. several server workers accepting
    their first connections at once), so they initialize through this
    double-checked mutex instead. *)

type 'a t

val make : (unit -> 'a) -> 'a t
(** [make f] suspends [f] until the first {!force}. *)

val force : 'a t -> 'a
(** The value of the suspension.  [f] runs at most once; concurrent
    first forces block until it finished.  If [f] raises, the
    suspension stays unforced and the next force retries it. *)
