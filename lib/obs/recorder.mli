(** Flight recorder: a fixed-size, overwrite-oldest ring buffer of
    typed engine events, always on at near-zero cost.

    Slots are preallocated records; recording claims a unique sequence
    number with an atomic cursor, so kernel worker domains and the
    main domain record concurrently without locks.  The retained
    window drains on demand to Chrome trace-event JSON loadable in
    Perfetto or [about://tracing] ([madql query --trace FILE], repl
    [:trace], [madql trace], [MAD_OBS_TRACE=FILE], or automatically
    when a root span errors).

    Environment knobs:
    {v
    MAD_OBS_RING=N      ring capacity (rounded up to a power of two;
                        default 8192; 0 disables recording)
    MAD_OBS_TRACE=FILE  dump the Chrome trace to FILE at exit and
                        whenever a root span errors
    v} *)

type kind =
  | Span_begin  (** a span opened; [label] = span name *)
  | Span_end
      (** a span closed; [label] = name, [dur_ns] = duration, [a] =
          the matching begin's seq, [b] = 1 when the span errored *)
  | Metric_flush  (** [Obs.flush] ran; [a] = samples flushed *)
  | Wal_append  (** a WAL record hit the OS; [label] = wal tag, [a] = framed bytes *)
  | Wal_fsync  (** [dur_ns] = fsync latency; [label] = wal tag *)
  | Group_commit  (** statement commit; [a] = WAL records so far *)
  | Snapshot_build
      (** a kernel CSR / type index / durable snapshot was built;
          [label] = target, [a]/[b] = rows/cells *)
  | Snapshot_invalidate  (** mutation epoch bump; [a] = new epoch *)
  | Snapshot_delta
      (** a CSR snapshot was delta-repaired instead of rebuilt;
          [label] = atom/link-type target ("*" for the whole
          snapshot), [a] = raw patches applied, [b] = entries
          patched or shared *)
  | Closure_repair
      (** a memoized closure survived a mutation window; [label] =
          link type, [a] = dirty nodes recomputed (0 = re-stamped
          wholesale), [b] = total nodes *)
  | Kernel_run
      (** one kernel derivation; [label] = root type or ["closure"],
          [a] = roots, [b] = plan nodes *)
  | Kernel_chunk  (** one pool chunk; [a]/[b] = root range, [dur_ns] = busy time *)
  | Recovery_replay  (** one WAL record replayed; [a] = recno, [b] = bytes *)
  | Plan_switch
      (** a statement fingerprint changed plans; [label] = fingerprint
          hex, [a]/[b] = old/new plan hash *)
  | Slow_query
      (** a statement crossed the slow-log threshold; [label] =
          fingerprint hex, [a] = elapsed ms *)
  | Probe_fired
      (** a timeline anomaly probe started firing; [label] = probe id
          ("latency:fp" …), [a]/[b] = rounded value/baseline *)
  | Serve_conn
      (** a server connection opened or closed; [label] = peer
          address, [a] = connection id, [b] = 1 open / 0 close *)
  | Serve_request
      (** one served request; [label] = opcode name, [a] = connection
          id, [b] = response status, [dur_ns] = service time *)
  | Serve_phase
      (** one phase of a served request (lock wait, execution, fsync
          wait, …); [label] = phase name, [a] = the request's
          [Serve_request] seq, [b] = connection id, [dur_ns] = phase
          duration — together the phases partition the request's
          service time *)

val kind_name : kind -> string
(** Stable dotted name ("wal.fsync", "kernel.run", …) used as the
    Chrome-trace category. *)

type event = {
  mutable e_seq : int;  (** global sequence number; [-1] = empty/torn *)
  mutable e_kind : kind;
  mutable e_ticks : int;  (** {!Monotonic.ticks} at record time *)
  mutable e_dur_ns : int;  (** duration, 0 for instants *)
  mutable e_dom : int;  (** recording domain id *)
  mutable e_label : string;
  mutable e_a : int;  (** kind-specific payload *)
  mutable e_b : int;
}

type t

val create : int -> t
(** [create capacity] — capacity is rounded up to a power of two,
    minimum 2.  The ring starts enabled. *)

val capacity : t -> int
val recorded : t -> int
(** Total events ever recorded (not the retained count). *)

val record :
  t ->
  kind ->
  ?ticks:int ->
  ?dur_ns:int ->
  ?label:string ->
  ?a:int ->
  ?b:int ->
  unit ->
  int
(** Record one event; returns its sequence number, or [-1] when the
    ring is disabled.  Lock-free and safe from any domain.  [ticks]
    lets a caller that already read {!Monotonic.ticks} donate the
    reading instead of paying a second clock read. *)

val drain : t -> event list
(** Snapshot the retained window, oldest first.  Slots caught
    mid-write by a wrapping concurrent writer are skipped. *)

(** {1 The global ring}

    One process-wide ring, sized by [MAD_OBS_RING], shared by every
    subsystem.  All the engine instrumentation below records here. *)

val global : unit -> t
val enabled : unit -> bool
val set_enabled : bool -> unit
(** Toggle recording (the overhead benchmark uses this). *)

val note : kind -> ?dur_ns:int -> ?label:string -> ?a:int -> ?b:int -> unit -> unit
(** [record] on the global ring, discarding the seq. *)

val span_begin : ticks:int -> string -> int
(** Journal a span open; returns the seq threaded to {!span_end} and
    used as the histogram exemplar, [-1] when disabled.  [ticks] is
    the caller's clock reading (it needs one anyway for the
    duration). *)

val span_end :
  ticks:int -> seq:int -> dur_ns:int -> error:bool -> string -> unit

val dump_on_error : unit -> unit
(** Dump the global ring to [MAD_OBS_TRACE] if set (else no-op);
    called by [Obs.with_span] when a root span errors. *)

(** {1 Chrome trace-event export} *)

val to_chrome : t -> Json.t
(** Drain and render as a Chrome trace-event object
    ([{"traceEvents": [...]}]): one track per recording domain plus
    synthetic [wal] and [planner] tracks, complete ("X") events for
    everything carrying a duration, instants ("i") for the rest.
    Timestamps are microseconds relative to the oldest retained
    event. *)

val dump : t -> string -> unit
(** [dump t path] writes {!to_chrome} to [path] (truncating). *)
