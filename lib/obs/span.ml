(** Hierarchical tracing spans.

    A span is one timed region of work; children nest inside it, so a
    finished root span is a profile tree (statement -> plan nodes ->
    operators).  Timings use the best wall clock available to the
    platform through the pluggable [clock] (seconds; the default is
    [Unix.gettimeofday] — installers with access to a true monotonic
    clock can swap it in). *)

type value = Int of int | Float of float | Str of string | Bool of bool

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.string ppf s
  | Bool b -> Fmt.bool ppf b

let json_of_value = function
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let clock = ref Unix.gettimeofday

type t = {
  name : string;
  recording : bool;
  start : float;  (** clock seconds *)
  mutable attrs : (string * value) list;  (** reverse insertion order *)
  mutable dur : float;  (** seconds; negative while the span is open *)
  mutable children : t list;  (** reverse order *)
}

(** A shared non-recording span: handed to instrumented code when
    tracing is off so the instrumentation points stay unconditional. *)
let none =
  { name = ""; recording = false; start = 0.0; attrs = []; dur = 0.0; children = [] }

let start name =
  { name; recording = true; start = !clock (); attrs = []; dur = -1.0; children = [] }

let set sp key v = if sp.recording then sp.attrs <- (key, v) :: sp.attrs

let add_child parent child =
  if parent.recording then parent.children <- child :: parent.children

let finish sp = if sp.recording && sp.dur < 0.0 then sp.dur <- !clock () -. sp.start

let finished sp = sp.dur >= 0.0
let duration_ms sp = (if sp.dur < 0.0 then 0.0 else sp.dur) *. 1000.0
let attrs sp = List.rev sp.attrs
let children sp = List.rev sp.children

(* ------------------------------------------------------------------ *)

let rec pp ppf sp =
  Fmt.pf ppf "@[<v>%s  %.3f ms%a%a@]" sp.name (duration_ms sp)
    Fmt.(
      list ~sep:nop (fun ppf (k, v) -> Fmt.pf ppf " %s=%a" k pp_value v))
    (attrs sp)
    Fmt.(list ~sep:nop (fun ppf c -> Fmt.pf ppf "@,  @[<v>%a@]" pp c))
    (children sp)

let rec to_json sp =
  Json.Obj
    ([ ("name", Json.Str sp.name); ("dur_ms", Json.Num (duration_ms sp)) ]
    @ (match attrs sp with
       | [] -> []
       | attrs ->
         [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)) ])
    @
    match children sp with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map to_json cs)) ])
