(** The metrics registry: get-or-create instruments by (name, labels).

    A registry is the unit of aggregation and isolation — each MOL
    session and each EXPLAIN ANALYZE run owns one, so actual counters
    can be compared against a plan's estimates without cross-talk. *)

type key = string * Metric.labels

(* the lock serializes every Hashtbl / [order] access: the timeline's
   background sampler domain snapshots ([to_list]) while the statement
   path registers new instruments, and stdlib Hashtbl is not safe
   under unsynchronized multi-domain use.  Instrument mutation
   (Metric.incr and friends) stays lock-free — word-sized fields never
   tear, and telemetry tolerates a stale read. *)
type t = {
  metrics : (key, Metric.sample) Hashtbl.t;
  lock : Mutex.t;
  mutable order : key list;  (** registration order, reversed *)
}

let create () =
  { metrics = Hashtbl.create 32; lock = Mutex.create (); order = [] }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let canon labels = List.sort compare labels

let get_or_create t name labels build cast kind =
  let key = (name, canon labels) in
  locked t @@ fun () ->
  match Hashtbl.find_opt t.metrics key with
  | Some sample -> begin
    match cast sample with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Mad_obs.Registry: %s already registered as a non-%s"
           name kind)
  end
  | None ->
    let m, sample = build () in
    Hashtbl.replace t.metrics key sample;
    t.order <- key :: t.order;
    m

let counter ?(labels = []) t name =
  get_or_create t name labels
    (fun () ->
      let c = Metric.counter ~labels:(canon labels) name in
      (c, Metric.Counter c))
    (function Metric.Counter c -> Some c | _ -> None)
    "counter"

let gauge ?(labels = []) t name =
  get_or_create t name labels
    (fun () ->
      let g = Metric.gauge ~labels:(canon labels) name in
      (g, Metric.Gauge g))
    (function Metric.Gauge g -> Some g | _ -> None)
    "gauge"

let histogram ?(labels = []) ?bounds t name =
  get_or_create t name labels
    (fun () ->
      let h = Metric.histogram ~labels:(canon labels) ?bounds name in
      (h, Metric.Histogram h))
    (function Metric.Histogram h -> Some h | _ -> None)
    "histogram"

let find t ?(labels = []) name =
  let key = (name, canon labels) in
  locked t (fun () -> Hashtbl.find_opt t.metrics key)

let counter_value t ?labels name =
  match find t ?labels name with
  | Some (Metric.Counter c) -> Metric.value c
  | Some (Metric.Gauge _ | Metric.Histogram _) | None -> 0

let to_list t =
  locked t (fun () ->
      List.rev_map (fun key -> Hashtbl.find t.metrics key) t.order)

let reset t = List.iter Metric.reset (to_list t)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,") Metric.pp) (to_list t)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                           *)

(* metric names may only use [a-zA-Z0-9_:]; the engine's dotted names
   ("op.latency_us") map onto underscores *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels buf = function
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (prom_name k);
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (prom_escape v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let expose t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 8 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  let line name labels value =
    Buffer.add_string buf name;
    prom_labels buf labels;
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun sample ->
      match sample with
      | Metric.Counter c ->
        let name = prom_name c.Metric.c_name in
        type_line name "counter";
        line name c.Metric.c_labels (string_of_int (Metric.value c))
      | Metric.Gauge g ->
        let name = prom_name g.Metric.g_name in
        type_line name "gauge";
        line name g.Metric.g_labels (prom_float (Metric.get g))
      | Metric.Histogram h ->
        let name = prom_name h.Metric.h_name in
        type_line name "histogram";
        (* OpenMetrics exemplar: the flight-recorder seq of the last
           span that landed in the bucket, so a histogram outlier links
           back to a concrete trace event.  When the ring is disabled
           (MAD_OBS_RING=0, or toggled off mid-run) the seqs cannot be
           chased into a trace, so no exemplar is rendered — a stale
           seq pointing at an overwritten or never-recorded event is
           worse than none. *)
        let ring_on = Recorder.enabled () in
        let exemplar i value =
          let seq = Metric.exemplar_seq h i in
          if (not ring_on) || seq < 0 then value
          else
            Printf.sprintf "%s # {span_seq=\"%d\"} %s" value seq
              (prom_float (Metric.exemplar_value h i))
        in
        let acc = ref 0 in
        Array.iteri
          (fun i bound ->
            acc := !acc + Metric.bucket_count h i;
            line (name ^ "_bucket")
              (h.Metric.h_labels @ [ ("le", prom_float bound) ])
              (exemplar i (string_of_int !acc)))
          h.Metric.bounds;
        line (name ^ "_bucket")
          (h.Metric.h_labels @ [ ("le", "+Inf") ])
          (exemplar (Array.length h.Metric.bounds)
             (string_of_int (Metric.count h)));
        line (name ^ "_sum") h.Metric.h_labels (prom_float (Metric.sum h));
        line (name ^ "_count") h.Metric.h_labels
          (string_of_int (Metric.count h)))
    (to_list t);
  Buffer.contents buf
