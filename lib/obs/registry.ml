(** The metrics registry: get-or-create instruments by (name, labels).

    A registry is the unit of aggregation and isolation — each MOL
    session and each EXPLAIN ANALYZE run owns one, so actual counters
    can be compared against a plan's estimates without cross-talk. *)

type key = string * Metric.labels

type t = {
  metrics : (key, Metric.sample) Hashtbl.t;
  mutable order : key list;  (** registration order, reversed *)
}

let create () = { metrics = Hashtbl.create 32; order = [] }

let canon labels = List.sort compare labels

let get_or_create t name labels build cast kind =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.metrics key with
  | Some sample -> begin
    match cast sample with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Mad_obs.Registry: %s already registered as a non-%s"
           name kind)
  end
  | None ->
    let m, sample = build () in
    Hashtbl.replace t.metrics key sample;
    t.order <- key :: t.order;
    m

let counter ?(labels = []) t name =
  get_or_create t name labels
    (fun () ->
      let c = Metric.counter ~labels:(canon labels) name in
      (c, Metric.Counter c))
    (function Metric.Counter c -> Some c | _ -> None)
    "counter"

let gauge ?(labels = []) t name =
  get_or_create t name labels
    (fun () ->
      let g = Metric.gauge ~labels:(canon labels) name in
      (g, Metric.Gauge g))
    (function Metric.Gauge g -> Some g | _ -> None)
    "gauge"

let histogram ?(labels = []) ?bounds t name =
  get_or_create t name labels
    (fun () ->
      let h = Metric.histogram ~labels:(canon labels) ?bounds name in
      (h, Metric.Histogram h))
    (function Metric.Histogram h -> Some h | _ -> None)
    "histogram"

let find t ?(labels = []) name =
  Hashtbl.find_opt t.metrics (name, canon labels)

let counter_value t ?labels name =
  match find t ?labels name with
  | Some (Metric.Counter c) -> Metric.value c
  | Some (Metric.Gauge _ | Metric.Histogram _) | None -> 0

let to_list t =
  List.rev_map (fun key -> Hashtbl.find t.metrics key) t.order

let reset t = List.iter Metric.reset (to_list t)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,") Metric.pp) (to_list t)
