(** Anomaly probes: EWMA baselines with trip/clear hysteresis (see the
    interface for the model).  Probes are plain single-domain state —
    the timeline tick that feeds them is already serialized. *)

type t = {
  p_probe : string;
  p_label : string;
  p_factor : float;
  p_min_fire : float;
  p_trip : int;
  p_clear : int;
  p_alpha : float;
  p_skip_zero : bool;
  mutable p_baseline : float;
  mutable p_hot : int;
  mutable p_cool : int;
  mutable p_firing : bool;
  mutable p_fired : int;
  mutable p_last : float;
  mutable p_seen : int;
}

let create ?(factor = 3.0) ?(min_fire = 0.0) ?(trip = 3) ?(clear = 3)
    ?(alpha = 0.3) ?(skip_zero = false) ~probe ?(label = "") () =
  {
    p_probe = probe;
    p_label = label;
    p_factor = factor;
    p_min_fire = min_fire;
    p_trip = max 1 trip;
    p_clear = max 1 clear;
    p_alpha = Float.max 0.01 (Float.min 1.0 alpha);
    p_skip_zero = skip_zero;
    p_baseline = nan;
    p_hot = 0;
    p_cool = 0;
    p_firing = false;
    p_fired = 0;
    p_last = nan;
    p_seen = 0;
  }

let firing t = t.p_firing
let id t = if t.p_label = "" then t.p_probe else t.p_probe ^ ":" ^ t.p_label

let observe t v =
  if not (Float.is_finite v) then false
  else begin
    t.p_last <- v;
    t.p_seen <- t.p_seen + 1;
    (* an unseeded probe cannot call anything anomalous: the first
       observation becomes the baseline *)
    let anomalous =
      v >= t.p_min_fire
      && (not (Float.is_nan t.p_baseline))
      && v > t.p_factor *. t.p_baseline
    in
    if anomalous then begin
      t.p_hot <- t.p_hot + 1;
      t.p_cool <- 0
    end
    else begin
      t.p_hot <- 0;
      (* only normal observations teach the baseline: a sustained
         regression keeps firing rather than redefining normal.  A
         zero under [skip_zero] is normal for hysteresis but teaches
         nothing — idle frames must not drag a rate baseline to 0 *)
      if not (t.p_skip_zero && v = 0.0) then
        t.p_baseline <-
          (if Float.is_nan t.p_baseline then v
           else (t.p_alpha *. v) +. ((1.0 -. t.p_alpha) *. t.p_baseline));
      if t.p_firing then t.p_cool <- t.p_cool + 1
    end;
    let fired_now = (not t.p_firing) && t.p_hot >= t.p_trip in
    if fired_now then begin
      t.p_firing <- true;
      t.p_fired <- t.p_fired + 1
    end;
    if t.p_firing && t.p_cool >= t.p_clear then begin
      t.p_firing <- false;
      t.p_cool <- 0
    end;
    fired_now
  end

let restore t ~baseline ~fired ~firing =
  if t.p_seen = 0 then begin
    if Float.is_finite baseline then t.p_baseline <- baseline;
    t.p_fired <- max t.p_fired fired;
    t.p_firing <- firing
  end
