(** Metric instruments: counters, gauges, histograms.  An instrument
    is a mutable cell; recording is a field update.  Naming and export
    live in {!Registry} and {!Sink}. *)

type labels = (string * string) list

type counter = private {
  c_name : string;
  c_labels : labels;
  count : int Atomic.t;
      (** atomic so counters shared with kernel worker domains stay
          exact; read through {!value} *)
}

type gauge = private {
  g_name : string;
  g_labels : labels;
  cell : float Atomic.t;
      (** atomic — the pool-utilization gauges are written from kernel
          worker domains; read through {!get} *)
}

(** Histograms are lock-free: every cell is atomic, so server worker
    domains observe into one shared instrument (request phases, lock
    profiles) without a guarding mutex.  Read the aggregates through
    the accessors below ({!count}, {!sum}, {!bucket_count}, …). *)
type histogram = private {
  h_name : string;
  h_labels : labels;
  bounds : float array;
  counts : int Atomic.t array;
  ex_seq : int Atomic.t array;
      (** per-bucket exemplar: flight-recorder seq of the last span
          that landed in the bucket, [-1] while the bucket has none *)
  ex_val : float Atomic.t array;  (** the exemplar's observed value *)
  h_sum : float Atomic.t;
  h_n : int Atomic.t;
  h_min : float Atomic.t;  (** [infinity] while empty *)
  h_max : float Atomic.t;  (** [neg_infinity] while empty *)
}

type sample = Counter of counter | Gauge of gauge | Histogram of histogram

val counter : ?labels:labels -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val get : gauge -> float

val add_gauge : gauge -> float -> unit
(** Atomically add a delta; safe from any domain (CAS retry loop). *)

val default_bounds : float array

val latency_bounds_us : float array
(** 1-2-5 ladder from 1 µs to 5 s, the bounds of the per-operator
    [op.latency_us] histograms. *)

val histogram : ?labels:labels -> ?bounds:float array -> string -> histogram

val observe : ?exemplar:int -> histogram -> float -> unit
(** Record an observation — lock-free, safe from any domain.
    [exemplar] is a flight-recorder event seq ({!Recorder.record});
    when [>= 0] the target bucket remembers it (last-writer-wins) and
    {!Registry.expose} renders it as an OpenMetrics exemplar. *)

val count : histogram -> int
(** Observations recorded so far. *)

val sum : histogram -> float

val bucket_count : histogram -> int -> int
(** Count in bucket [i] (non-cumulative); bucket [length bounds] is
    the overflow bucket. *)

val exemplar_seq : histogram -> int -> int
(** Bucket [i]'s exemplar recorder seq, [-1] while the bucket has
    none. *)

val exemplar_value : histogram -> int -> float

val min_raw : histogram -> float
(** Tracked minimum, [infinity] while empty (the raw sentinel — the
    digest persistence round-trips it; display code wants
    {!min_value}). *)

val max_raw : histogram -> float
(** Tracked maximum, [neg_infinity] while empty. *)

val mean : histogram -> float

val min_value : histogram -> float
(** Smallest observation, 0 while empty. *)

val max_value : histogram -> float
(** Largest observation, 0 while empty. *)

val quantile : histogram -> float -> float option
(** Approximate quantile: linear interpolation inside the bucket
    holding the target rank, with the tracked min/max as the outermost
    bucket edges (so a long tail beyond the last bound reports its
    true maximum).  [None] while the histogram is empty. *)

val absorb :
  histogram ->
  counts:int array ->
  sum:float ->
  n:int ->
  min_v:float ->
  max_v:float ->
  unit
(** Merge a persisted snapshot (bucket counts over the same bounds
    ladder, plus sum/n/min/max) into a live histogram.  Exemplars are
    untouched — a merged-in count has no recorder event behind it. *)

val reset : sample -> unit
val name : sample -> string
val labels : sample -> labels
val pp_labels : Format.formatter -> labels -> unit
val pp : Format.formatter -> sample -> unit
