(** Metric instruments: counters, gauges, histograms.  An instrument
    is a mutable cell; recording is a field update.  Naming and export
    live in {!Registry} and {!Sink}. *)

type labels = (string * string) list

type counter = private {
  c_name : string;
  c_labels : labels;
  mutable count : int;
}

type gauge = private {
  g_name : string;
  g_labels : labels;
  mutable value : float;
}

type histogram = private {
  h_name : string;
  h_labels : labels;
  bounds : float array;
  counts : int array;
  mutable sum : float;
  mutable n : int;
}

type sample = Counter of counter | Gauge of gauge | Histogram of histogram

val counter : ?labels:labels -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val get : gauge -> float

val default_bounds : float array
val histogram : ?labels:labels -> ?bounds:float array -> string -> histogram
val observe : histogram -> float -> unit
val mean : histogram -> float

val quantile : histogram -> float -> float
(** Approximate quantile from the bucket boundaries. *)

val reset : sample -> unit
val name : sample -> string
val labels : sample -> labels
val pp_labels : Format.formatter -> labels -> unit
val pp : Format.formatter -> sample -> unit
