(** The workload digest: per-statement aggregation keyed by
    (fingerprint, plan hash) — the MAD analog of pg_stat_statements.

    A fingerprint identifies a statement's shape (literals stripped,
    structure kept; computed by [Mad_mql.Fingerprint]); a plan hash
    identifies the physical plan Prima chose for it.  The store keeps
    one row per (fingerprint, plan) pair, each row backed by real
    registry instruments ([digest.calls] / [digest.errors] /
    [digest.rows] counters and a [digest.latency_us] histogram with
    flight-recorder exemplars), so the whole digest rides
    {!Registry.expose} for free.

    The store also watches for {b plan changes}: when a fingerprint
    that previously ran under one plan hash arrives under another —
    typically because {!Prima.Adaptive} refinement moved the learned
    catalog — it bumps the [plan.switch] counter and journals a
    {!Recorder.Plan_switch} event, so a regression introduced by
    learned statistics is visible in both the metrics and the trace.

    Persistence is the line-oriented [digest.mad] format (same family
    as the adaptive catalog's [stats.mad]); loading {e merges} into the
    live store so workload history accumulates across restarts. *)

let hex h = Printf.sprintf "%x" (h land max_int)

(* ------------------------------------------------------------------ *)
(* Store                                                                *)

type prow = {
  pr_plan : int;
  pr_calls : Metric.counter;
  pr_errors : Metric.counter;
  pr_rows : Metric.counter;
  pr_lat : Metric.histogram;
  mutable pr_drift_sum : float;  (** Σ |estimate − actual| over runs *)
  mutable pr_drift_n : int;  (** EXPLAIN ANALYZE runs feeding the sum *)
}

type entry = {
  en_fp : int;
  en_text : string;  (** normalized statement text *)
  mutable en_plan : int;  (** current plan hash, [-1] before the first call *)
  mutable en_switches : int;
  mutable en_rows : prow list;  (** insertion order *)
  mutable en_cur : prow option;  (** the [en_plan] row, probe-free *)
}

type t = {
  registry : Registry.t;
  entries : (int, entry) Hashtbl.t;
  mutable order : int list;  (** fingerprint insertion order, reversed *)
  switches : Metric.counter;  (** the [plan.switch] counter *)
  mutable last : entry option;  (** {!record}'s most recent entry *)
}

let create registry =
  {
    registry;
    entries = Hashtbl.create 32;
    order = [];
    switches = Registry.counter registry "plan.switch";
    last = None;
  }

let registry t = t.registry
let switch_count t = Metric.value t.switches

let entry t ~fp ~text =
  match Hashtbl.find_opt t.entries fp with
  | Some e -> e
  | None ->
    let e =
      { en_fp = fp; en_text = text; en_plan = -1; en_switches = 0;
        en_rows = []; en_cur = None }
    in
    Hashtbl.replace t.entries fp e;
    t.order <- fp :: t.order;
    e

let prow t e plan =
  match List.find_opt (fun r -> r.pr_plan = plan) e.en_rows with
  | Some r -> r
  | None ->
    let labels = [ ("fp", hex e.en_fp); ("plan", hex plan) ] in
    let r =
      {
        pr_plan = plan;
        pr_calls = Registry.counter ~labels t.registry "digest.calls";
        pr_errors = Registry.counter ~labels t.registry "digest.errors";
        pr_rows = Registry.counter ~labels t.registry "digest.rows";
        pr_lat =
          Registry.histogram ~labels ~bounds:Metric.latency_bounds_us
            t.registry "digest.latency_us";
        pr_drift_sum = 0.0;
        pr_drift_n = 0;
      }
    in
    e.en_rows <- e.en_rows @ [ r ];
    r

(** Record one execution.  Returns [true] when the fingerprint changed
    plans (the switch is journaled and counted here). *)
let record t ~fp ~text ~plan ~latency_us ~rows ~error ?(exemplar = -1) () =
  let e =
    match t.last with
    | Some e when e.en_fp = fp -> e
    | _ ->
      (* exception-style probe: the steady-state hit allocates nothing *)
      let e =
        match Hashtbl.find t.entries fp with
        | e -> e
        | exception Not_found -> entry t ~fp ~text
      in
      t.last <- Some e;
      e
  in
  let switched = e.en_plan >= 0 && e.en_plan <> plan in
  if switched then begin
    e.en_switches <- e.en_switches + 1;
    Metric.incr t.switches;
    Recorder.note Plan_switch ~label:(hex fp) ~a:e.en_plan ~b:plan ()
  end;
  e.en_plan <- plan;
  let r =
    match e.en_cur with
    | Some r when r.pr_plan = plan -> r
    | Some _ | None ->
      let r = prow t e plan in
      e.en_cur <- Some r;
      r
  in
  Metric.incr r.pr_calls;
  Metric.add r.pr_rows rows;
  if error then Metric.incr r.pr_errors;
  Metric.observe ~exemplar r.pr_lat latency_us;
  switched

(** Fold one EXPLAIN ANALYZE drift reading ([Prima.Profile.error]) into
    the row, creating it if the profiled plan was never executed
    through {!record}. *)
let note_drift t ~fp ~text ~plan ~err =
  let e = entry t ~fp ~text in
  let r = prow t e plan in
  r.pr_drift_sum <- r.pr_drift_sum +. err;
  r.pr_drift_n <- r.pr_drift_n + 1

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)

type report_row = {
  r_fp : int;
  r_text : string;
  r_plan : int;
  r_calls : int;
  r_errors : int;
  r_rows : int;
  r_total_us : float;
  r_mean_us : float;
  r_p95_us : float;
  r_max_us : float;
  r_drift : float;  (** mean |estimate − actual|, 0 with no ANALYZE runs *)
  r_switches : int;  (** the fingerprint's plan switches (entry-level) *)
}

type order = [ `Total | `Mean | `Calls ]

let entries t =
  List.rev_map (fun fp -> Hashtbl.find t.entries fp) t.order

let report t =
  List.concat_map
    (fun e ->
      List.map
        (fun r ->
          let n = Metric.count r.pr_lat in
          {
            r_fp = e.en_fp;
            r_text = e.en_text;
            r_plan = r.pr_plan;
            r_calls = Metric.value r.pr_calls;
            r_errors = Metric.value r.pr_errors;
            r_rows = Metric.value r.pr_rows;
            r_total_us = Metric.sum r.pr_lat;
            r_mean_us = Metric.mean r.pr_lat;
            r_p95_us =
              (if n = 0 then 0.0
               else Option.value ~default:0.0 (Metric.quantile r.pr_lat 0.95));
            r_max_us = Metric.max_value r.pr_lat;
            r_drift =
              (if r.pr_drift_n = 0 then 0.0
               else r.pr_drift_sum /. float_of_int r.pr_drift_n);
            r_switches = e.en_switches;
          })
        e.en_rows)
    (entries t)

let sort_key by r =
  match by with
  | `Total -> r.r_total_us
  | `Mean -> r.r_mean_us
  | `Calls -> float_of_int r.r_calls

let top ?(by = `Total) k t =
  let rows =
    List.stable_sort
      (fun a b -> compare (sort_key by b) (sort_key by a))
      (report t)
  in
  List.filteri (fun i _ -> i < k) rows

let trim width s =
  if String.length s <= width then s else String.sub s 0 (width - 1) ^ "…"

let pp_table ppf rows =
  Fmt.pf ppf "%-12s %-12s %6s %4s %7s %10s %9s %9s %7s %3s@."
    "fingerprint" "plan" "calls" "err" "rows" "total_us" "mean_us" "p95_us"
    "drift" "sw";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-12s %-12s %6d %4d %7d %10.0f %9.1f %9.1f %7.1f %3d@."
        (trim 12 (hex r.r_fp))
        (trim 12 (hex r.r_plan))
        r.r_calls r.r_errors r.r_rows r.r_total_us r.r_mean_us r.r_p95_us
        r.r_drift r.r_switches;
      Fmt.pf ppf "  %s@." (trim 100 r.r_text))
    rows

let row_json r =
  Json.Obj
    [
      ("plan_hash", Json.Str (hex r.r_plan));
      ("calls", Json.Num (float_of_int r.r_calls));
      ("errors", Json.Num (float_of_int r.r_errors));
      ("rows", Json.Num (float_of_int r.r_rows));
      ("total_us", Json.Num r.r_total_us);
      ("mean_us", Json.Num r.r_mean_us);
      ("p95_us", Json.Num r.r_p95_us);
      ("max_us", Json.Num r.r_max_us);
      ("drift", Json.Num r.r_drift);
    ]

let to_json ?by ?top:k t =
  let rows =
    match k with Some k -> top ?by k t | None -> report t
  in
  (* group the (possibly truncated) row list back under fingerprints,
     preserving rank order of first appearance *)
  let seen = Hashtbl.create 8 in
  let fps =
    List.filter_map
      (fun r ->
        if Hashtbl.mem seen r.r_fp then None
        else begin
          Hashtbl.replace seen r.r_fp ();
          Some r.r_fp
        end)
      rows
  in
  let fp_obj fp =
    let mine = List.filter (fun r -> r.r_fp = fp) rows in
    let first = List.hd mine in
    Json.Obj
      [
        ("fingerprint", Json.Str (hex fp));
        ("text", Json.Str first.r_text);
        ("switches", Json.Num (float_of_int first.r_switches));
        ("plans", Json.List (List.map row_json mine));
      ]
  in
  Json.Obj
    [
      ("plan_switches", Json.Num (float_of_int (switch_count t)));
      ("fingerprints", Json.List (List.map fp_obj fps));
    ]

(* ------------------------------------------------------------------ *)
(* Persistence: the line-oriented [digest.mad] format                   *)

let format_header = "# MAD statement digest v1"

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf format_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "fp %s %s\n" (hex e.en_fp) (String.escaped e.en_text));
      List.iter
        (fun r ->
          let h = r.pr_lat in
          let counts =
            String.concat ","
              (List.init (Array.length h.Metric.counts) (fun i ->
                   string_of_int (Metric.bucket_count h i)))
          in
          Buffer.add_string buf
            (Printf.sprintf "row %s %s %d %d %d %.17g %d %.17g %d %.17g %.17g %s\n"
               (hex e.en_fp) (hex r.pr_plan) (Metric.value r.pr_calls)
               (Metric.value r.pr_errors) (Metric.value r.pr_rows)
               r.pr_drift_sum r.pr_drift_n (Metric.sum h) (Metric.count h)
               (Metric.min_raw h) (Metric.max_raw h) counts))
        e.en_rows;
      if e.en_plan >= 0 then
        Buffer.add_string buf
          (Printf.sprintf "cur %s %s %d\n" (hex e.en_fp) (hex e.en_plan)
             e.en_switches))
    (entries t);
  Buffer.contents buf

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let hex_int s = int_of_string_opt ("0x" ^ s)

(** Merge a serialized digest into [t].  Tolerant of malformed lines
    (skipped); [Error] only on a wrong or missing header. *)
let merge_string t s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: rest when String.trim header = format_header ->
    List.iter
      (fun line ->
        match split_ws line with
        | "fp" :: fp :: text_words -> begin
          match hex_int fp with
          | Some fp ->
            let text =
              try Scanf.unescaped (String.concat " " text_words)
              with Scanf.Scan_failure _ | Failure _ ->
                String.concat " " text_words
            in
            ignore (entry t ~fp ~text)
          | None -> ()
        end
        | [ "row"; fp; plan; calls; errors; rows; dsum; dn; sum; n; mn; mx;
            counts ] -> begin
          match (hex_int fp, hex_int plan) with
          | Some fp, Some plan -> begin
            match Hashtbl.find_opt t.entries fp with
            | None -> ()
            | Some e ->
              let r = prow t e plan in
              let int_of s = Option.value ~default:0 (int_of_string_opt s) in
              let flt_of s =
                Option.value ~default:0.0 (float_of_string_opt s)
              in
              Metric.add r.pr_calls (int_of calls);
              Metric.add r.pr_errors (int_of errors);
              Metric.add r.pr_rows (int_of rows);
              r.pr_drift_sum <- r.pr_drift_sum +. flt_of dsum;
              r.pr_drift_n <- r.pr_drift_n + int_of dn;
              let bucket_counts =
                String.split_on_char ',' counts
                |> List.map int_of |> Array.of_list
              in
              Metric.absorb r.pr_lat ~counts:bucket_counts ~sum:(flt_of sum)
                ~n:(int_of n) ~min_v:(flt_of mn) ~max_v:(flt_of mx)
          end
          | _ -> ()
        end
        | [ "cur"; fp; plan; switches ] -> begin
          match (hex_int fp, hex_int plan) with
          | Some fp, Some plan -> begin
            match Hashtbl.find_opt t.entries fp with
            | Some e ->
              (* only adopt the stored current plan while the live
                 entry has not executed yet this session — a live plan
                 observation outranks history *)
              if e.en_plan < 0 then e.en_plan <- plan;
              e.en_switches <-
                e.en_switches
                + Option.value ~default:0 (int_of_string_opt switches)
            | None -> ()
          end
          | _ -> ()
        end
        | [] | _ -> ())
      rest;
    Ok ()
  | header :: _ ->
    Error (Printf.sprintf "digest: unrecognized header %S" (String.trim header))
  | [] -> Error "digest: empty input"

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () -> output_string oc (to_string t))

(** Merge [path] into [t]; [false] when the file does not exist.
    A malformed file is reported on stderr and otherwise ignored. *)
let load t path =
  if not (Sys.file_exists path) then false
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match merge_string t s with
     | Ok () -> ()
     | Error e -> Printf.eprintf "mad_obs: %s: %s\n%!" path e);
    true
  end

(* ------------------------------------------------------------------ *)
(* Slow-query log                                                       *)

(** Configuration is process-global (like the recorder ring): one
    threshold, one log file.  [MAD_SLOW_LOG=MS] or [MAD_SLOW_LOG=MS:FILE]
    seeds it; {!set_slow_log} (the [--slow-log] flag) overrides. *)

let default_slow_path = "slow-query.log"

let env_slow () =
  match Option.map String.trim (Sys.getenv_opt "MAD_SLOW_LOG") with
  | None | Some "" -> (None, default_slow_path)
  | Some s ->
    let ms, path =
      match String.index_opt s ':' with
      | Some i ->
        ( String.sub s 0 i,
          String.sub s (i + 1) (String.length s - i - 1) )
      | None -> (s, default_slow_path)
    in
    let path = if path = "" then default_slow_path else path in
    (match float_of_string_opt ms with
     | Some v when v >= 0.0 -> (Some v, path)
     | Some _ | None ->
       Printf.eprintf
         "mad_obs: ignoring invalid MAD_SLOW_LOG=%S (expected MS or MS:FILE)\n%!"
         s;
       (None, path))

let slow_config = Once.make (fun () -> ref (env_slow ()))

let slow_threshold_ms () = fst !(Once.force slow_config)
let slow_log_path () = snd !(Once.force slow_config)

let set_slow_log ?path ms =
  let cfg = Once.force slow_config in
  let path = match path with Some p -> p | None -> snd !cfg in
  cfg := (ms, path)

type slow_entry = {
  sl_stmt : string;  (** the full statement, literals intact *)
  sl_fp : int;
  sl_plan : int;
  sl_ms : float;
  sl_plan_text : string;  (** the algebra plan (EXPLAIN rendering) *)
  sl_analyze : string option;  (** EXPLAIN ANALYZE tree when executable *)
  sl_events : Recorder.event list;  (** flight-recorder window *)
}

let event_json (ev : Recorder.event) =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int ev.Recorder.e_seq));
      ("kind", Json.Str (Recorder.kind_name ev.Recorder.e_kind));
      ("dur_ns", Json.Num (float_of_int ev.Recorder.e_dur_ns));
      ("dom", Json.Num (float_of_int ev.Recorder.e_dom));
      ("label", Json.Str ev.Recorder.e_label);
      ("a", Json.Num (float_of_int ev.Recorder.e_a));
      ("b", Json.Num (float_of_int ev.Recorder.e_b));
    ]

let slow_entry_json e =
  Json.Obj
    [
      ("statement", Json.Str e.sl_stmt);
      ("fingerprint", Json.Str (hex e.sl_fp));
      ("plan_hash", Json.Str (hex e.sl_plan));
      ("ms", Json.Num e.sl_ms);
      ("plan", Json.Str e.sl_plan_text);
      ( "analyze",
        match e.sl_analyze with Some s -> Json.Str s | None -> Json.Null );
      ("events", Json.List (List.map event_json e.sl_events));
    ]

(** Append one JSON line to the slow log and journal a
    {!Recorder.Slow_query} instant. *)
let log_slow e =
  Recorder.note Slow_query ~label:(hex e.sl_fp)
    ~a:(int_of_float (Float.round e.sl_ms))
    ();
  let path = slow_log_path () in
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc ->
    Fun.protect
      ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
      (fun () ->
        output_string oc (Json.to_string (slow_entry_json e));
        output_char oc '\n')
  | exception Sys_error err ->
    Printf.eprintf "mad_obs: could not append %s: %s\n%!" path err
