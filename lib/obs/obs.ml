(** The observability context: one metrics registry, one span stack,
    one sink.

    The engine threads a context through its layers (session ->
    executor -> derivation); code that was not handed one records
    against {!noop}, whose counters nobody reads and whose sink drops
    everything — the instrumentation points stay unconditional while
    the disabled cost stays at a few field updates.

    Configuration comes from the [MAD_OBS] environment variable (see
    {!of_env}):
    {v
    MAD_OBS=           (unset, "", "off", "none")  silent no-op
    MAD_OBS=pretty     human-readable rendering on stderr
    MAD_OBS=json       JSON lines on stderr
    MAD_OBS=json:FILE  JSON lines appended to FILE
    MAD_OBS=prom:FILE  Prometheus text written to FILE on exit
    v}
    plus the sampling knobs [MAD_OBS_SAMPLE] (root-span keep
    probability), [MAD_OBS_SLOW_MS] (always keep roots at least this
    slow) and [MAD_OBS_SEED] (the sampler's RNG seed). *)

(** Head-based probabilistic span sampling.  The keep/drop decision is
    drawn from a seeded RNG when a root span opens (so a run is
    reproducible), and overridden at emission time for root spans that
    carry an [error] attribute or exceed the slow threshold — errors
    and outliers always trace.  Metrics are recorded independently of
    the decision, so aggregates stay exact while trace volume scales
    down. *)
type sampler = {
  rate : float;  (** keep probability in [0,1] *)
  slow_ms : float option;  (** always keep roots at least this slow *)
  rng : Random.State.t;
}

let default_seed = 0x6d6164 (* "mad" *)

type t = {
  registry : Registry.t;
  sink : Sink.t;
  tracing : bool;  (** are spans recorded? *)
  mutable stack : Span.t list;  (** open spans, innermost first *)
  sampler : sampler option;
  mutable keep_root : bool;  (** head decision for the open root span *)
  mutable last_closed : int;
      (** flight-recorder seq of the most recently closed span, [-1]
          before any; {!timed} reads it as the histogram exemplar.
          Deliberately non-atomic: a context belongs to one session on
          one domain (the kernel records to the ring directly). *)
  mutable last_dur_us : float;
      (** duration of the most recently completed {!timed} operation,
          [-1] before any.  The workload digest reads it instead of
          taking its own clock pair around a statement. *)
}

let create ?(tracing = true) ?(sink = Sink.noop) ?sample ?slow_ms
    ?(seed = default_seed) () =
  let sampler =
    match (sample, slow_ms) with
    | None, None -> None
    | rate, slow_ms ->
      Some
        {
          rate = Float.max 0.0 (Float.min 1.0 (Option.value ~default:1.0 rate));
          slow_ms;
          rng = Random.State.make [| seed |];
        }
  in
  let t =
    { registry = Registry.create (); sink; tracing; stack = []; sampler;
      keep_root = true; last_closed = -1; last_dur_us = -1.0 }
  in
  (* register the runtime.* GC/heap gauges up front so they ride
     [Registry.expose] and [madql stats] even without a timeline *)
  Timeline.update_runtime t.registry;
  t

(** The shared disabled context. *)
let noop = create ~tracing:false ~sink:Sink.noop ()

let registry t = t.registry
let sink t = t.sink
let enabled t = t.tracing

let last_seq t = if Recorder.enabled () then t.last_closed else -1
let last_dur_us t = t.last_dur_us
let is_noop t = t == noop

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

let current_span t = match t.stack with sp :: _ -> Some sp | [] -> None

let errored sp = List.mem_assoc "error" (Span.attrs sp)

(* the always-keep rule: errored or slow-over-threshold root spans
   trace regardless of the head decision *)
let keep_span t sp =
  match t.sampler with
  | None -> true
  | Some s ->
    t.keep_root || errored sp
    || (match s.slow_ms with
        | Some th -> Span.duration_ms sp >= th
        | None -> false)

let with_span t name ?(attrs = []) f =
  if t == noop then f Span.none
  else if not t.tracing then begin
    (* tracing off (the default context, prom-mode, …): no Span is
       built, but the span still journals to the flight recorder — the
       always-on record the trace dump and exemplars draw from *)
    if not (Recorder.enabled ()) then f Span.none
    else begin
      let t0 = Monotonic.ticks () in
      let seq = Recorder.span_begin ~ticks:t0 name in
      match f Span.none with
      | v ->
        let t1 = Monotonic.ticks () in
        Recorder.span_end ~ticks:t1 ~seq ~dur_ns:(t1 - t0) ~error:false name;
        t.last_closed <- seq;
        v
      | exception e ->
        let t1 = Monotonic.ticks () in
        Recorder.span_end ~ticks:t1 ~seq ~dur_ns:(t1 - t0) ~error:true name;
        t.last_closed <- seq;
        raise e
    end
  end
  else begin
    (match (t.stack, t.sampler) with
     | [], Some s ->
       (* head decision: drawn exactly once per root span, so a seeded
          run keeps a reproducible subset *)
       t.keep_root <- Random.State.float s.rng 1.0 < s.rate
     | _, _ -> ());
    let sp = Span.start name in
    let seq = Recorder.span_begin ~ticks:(Monotonic.ticks ()) name in
    List.iter (fun (k, v) -> Span.set sp k v) attrs;
    (match t.stack with
     | parent :: _ -> Span.add_child parent sp
     | [] -> ());
    t.stack <- sp :: t.stack;
    let finish () =
      Span.finish sp;
      let err = errored sp in
      Recorder.span_end
        ~ticks:(Monotonic.ticks ())
        ~seq
        ~dur_ns:(int_of_float (Span.duration_ms sp *. 1e6))
        ~error:err name;
      t.last_closed <- seq;
      (match t.stack with
       | top :: rest when top == sp -> t.stack <- rest
       | _ -> t.stack <- List.filter (fun s -> not (s == sp)) t.stack);
      if t.stack = [] then begin
        if keep_span t sp then t.sink.Sink.emit_span sp;
        (* an errored root is exactly when a post-mortem wants the
           flight recorder: dump to MAD_OBS_TRACE if configured *)
        if err then Recorder.dump_on_error ()
      end
    in
    match f sp with
    | v ->
      finish ();
      v
    | exception e ->
      Span.set sp "error" (Span.Str (Printexc.to_string e));
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Metrics and events                                                   *)

let counter ?labels t name = Registry.counter ?labels t.registry name
let gauge ?labels t name = Registry.gauge ?labels t.registry name
let histogram ?labels ?bounds t name = Registry.histogram ?labels ?bounds t.registry name

(** Like {!with_span}, but also record the wall-clock duration into
    the [op.latency_us] histogram labeled [op=name].  The histogram is
    updated even when tracing is off or the sampler drops the span —
    latency aggregates stay exact while trace volume scales down.
    Only the shared {!noop} context skips the clock reads entirely. *)
let timed t name ?attrs f =
  if t == noop then f Span.none
  else begin
    let h =
      Registry.histogram
        ~labels:[ ("op", name) ]
        ~bounds:Metric.latency_bounds_us t.registry "op.latency_us"
    in
    let t0 = !Span.clock () in
    (* [with_span] sets [t.last_closed] to our span's recorder seq in
       its finish (children close earlier), so the observation links
       back to the right flight-recorder event as its exemplar.  With
       the ring off [last_closed] goes stale (no new seqs are issued),
       so it must not be attached. *)
    let record () =
      let exemplar = if Recorder.enabled () then t.last_closed else -1 in
      let dur = (!Span.clock () -. t0) *. 1e6 in
      t.last_dur_us <- dur;
      Metric.observe ~exemplar h dur
    in
    match with_span t name ?attrs f with
    | v ->
      record ();
      v
    | exception e ->
      record ();
      raise e
  end

let event t kind fields = t.sink.Sink.emit_event kind fields

(** Push every registered metric to the sink. *)
let flush t =
  let samples = Registry.to_list t.registry in
  if t != noop then Recorder.note Metric_flush ~a:(List.length samples) ();
  t.sink.Sink.emit_metrics samples

let pp_metrics ppf t = Registry.pp ppf t.registry

(* ------------------------------------------------------------------ *)
(* Environment configuration                                            *)

let env_float var =
  match Option.map String.trim (Sys.getenv_opt var) with
  | None | Some "" -> None
  | Some s -> begin
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> Some f
    | Some _ | None ->
      Printf.eprintf "mad_obs: ignoring invalid %s=%S (expected a number)\n%!"
        var s;
      None
  end

let env_int var =
  match Option.map String.trim (Sys.getenv_opt var) with
  | None | Some "" -> None
  | Some s -> begin
    match int_of_string_opt s with
    | Some i -> Some i
    | None ->
      Printf.eprintf
        "mad_obs: ignoring invalid %s=%S (expected an integer)\n%!" var s;
      None
  end

let of_env ?(var = "MAD_OBS") () =
  let sample = env_float (var ^ "_SAMPLE") in
  let slow_ms = env_float (var ^ "_SLOW_MS") in
  let seed = Option.value ~default:default_seed (env_int (var ^ "_SEED")) in
  let sampled ?tracing sink = create ?tracing ~sink ?sample ?slow_ms ~seed () in
  let file_suffix prefix spec =
    let n = String.length prefix in
    if String.length spec > n && String.sub spec 0 n = prefix then
      Some (String.sub spec n (String.length spec - n))
    else None
  in
  match Option.map String.trim (Sys.getenv_opt var) with
  | None | Some "" | Some "off" | Some "none" | Some "0" -> create ~tracing:false ()
  | Some "pretty" -> sampled (Sink.pretty Fmt.stderr)
  | Some "json" -> sampled (Sink.json stderr)
  | Some spec when file_suffix "json:" spec <> None ->
    let path = Option.get (file_suffix "json:" spec) in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    at_exit (fun () -> try close_out oc with Sys_error _ -> ());
    sampled (Sink.json oc)
  | Some spec when file_suffix "prom:" spec <> None ->
    (* metrics-only mode: spans are not recorded (the [timed]
       histograms are), and the registry is flushed as Prometheus text
       when the process exits *)
    let path = Option.get (file_suffix "prom:" spec) in
    let t = sampled ~tracing:false Sink.noop in
    at_exit (fun () ->
        try
          let oc = open_out path in
          output_string oc (Registry.expose t.registry);
          close_out oc
        with Sys_error e ->
          Printf.eprintf "mad_obs: could not write %s: %s\n%!" path e);
    t
  | Some other ->
    Printf.eprintf
      "mad_obs: unknown %s value %S (expected off, pretty, json, json:FILE \
       or prom:FILE); observability disabled\n%!"
      var other;
    create ~tracing:false ()

(* domain-safe: the first [default] call can come from any domain *)
let default = Once.make of_env
let default () = Once.force default
