(** The observability context: one metrics registry, one span stack,
    one sink.

    The engine threads a context through its layers (session ->
    executor -> derivation); code that was not handed one records
    against {!noop}, whose counters nobody reads and whose sink drops
    everything — the instrumentation points stay unconditional while
    the disabled cost stays at a few field updates.

    Configuration comes from the [MAD_OBS] environment variable (see
    {!of_env}):
    {v
    MAD_OBS=           (unset, "", "off", "none")  silent no-op
    MAD_OBS=pretty     human-readable rendering on stderr
    MAD_OBS=json       JSON lines on stderr
    MAD_OBS=json:FILE  JSON lines appended to FILE
    v} *)

type t = {
  registry : Registry.t;
  sink : Sink.t;
  tracing : bool;  (** are spans recorded? *)
  mutable stack : Span.t list;  (** open spans, innermost first *)
}

let create ?(tracing = true) ?(sink = Sink.noop) () =
  { registry = Registry.create (); sink; tracing; stack = [] }

(** The shared disabled context. *)
let noop = create ~tracing:false ~sink:Sink.noop ()

let registry t = t.registry
let sink t = t.sink
let enabled t = t.tracing

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

let current_span t = match t.stack with sp :: _ -> Some sp | [] -> None

let with_span t name ?(attrs = []) f =
  if not t.tracing then f Span.none
  else begin
    let sp = Span.start name in
    List.iter (fun (k, v) -> Span.set sp k v) attrs;
    (match t.stack with
     | parent :: _ -> Span.add_child parent sp
     | [] -> ());
    t.stack <- sp :: t.stack;
    let finish () =
      Span.finish sp;
      (match t.stack with
       | top :: rest when top == sp -> t.stack <- rest
       | _ -> t.stack <- List.filter (fun s -> not (s == sp)) t.stack);
      if t.stack = [] then t.sink.Sink.emit_span sp
    in
    match f sp with
    | v ->
      finish ();
      v
    | exception e ->
      Span.set sp "error" (Span.Str (Printexc.to_string e));
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Metrics and events                                                   *)

let counter ?labels t name = Registry.counter ?labels t.registry name
let gauge ?labels t name = Registry.gauge ?labels t.registry name
let histogram ?labels ?bounds t name = Registry.histogram ?labels ?bounds t.registry name

let event t kind fields = t.sink.Sink.emit_event kind fields

(** Push every registered metric to the sink. *)
let flush t = t.sink.Sink.emit_metrics (Registry.to_list t.registry)

let pp_metrics ppf t = Registry.pp ppf t.registry

(* ------------------------------------------------------------------ *)
(* Environment configuration                                            *)

let of_env ?(var = "MAD_OBS") () =
  match Option.map String.trim (Sys.getenv_opt var) with
  | None | Some "" | Some "off" | Some "none" | Some "0" -> create ~tracing:false ()
  | Some "pretty" -> create ~sink:(Sink.pretty Fmt.stderr) ()
  | Some "json" -> create ~sink:(Sink.json stderr) ()
  | Some spec when String.length spec > 5 && String.sub spec 0 5 = "json:" ->
    let path = String.sub spec 5 (String.length spec - 5) in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    at_exit (fun () -> try close_out oc with Sys_error _ -> ());
    create ~sink:(Sink.json oc) ()
  | Some other ->
    Printf.eprintf
      "mad_obs: unknown %s value %S (expected off, pretty, json or json:FILE); \
       observability disabled\n%!"
      var other;
    create ~tracing:false ()

let default = lazy (of_env ())
let default () = Lazy.force default
