(** Paper-notation rendering: regenerates Fig. 4's formal specification
    — atom types in AT*, link types in LT*, the database in DB* — from
    a live catalog. *)

val pp_atom_type :
  ?max_atoms:int -> Format.formatter -> Database.t -> string -> unit

val pp_link_type :
  ?max_links:int -> Format.formatter -> Database.t -> string -> unit

val pp_database : ?name:string -> Format.formatter -> Database.t -> unit
val database_to_string : ?name:string -> Database.t -> string
