(** Occurrence-level links (Def. 2): [left] plays the link type's
    first-end role, [right] the second's.  For non-reflexive link types
    this normalisation realises the unsorted-pair semantics; for
    reflexive ones the roles carry the super-/sub-component
    distinction. *)

type t = { lt : string; left : Aid.t; right : Aid.t }

val v : string -> Aid.t -> Aid.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

val pp_set : Format.formatter -> Set.t -> unit
