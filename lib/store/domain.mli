(** Attribute domains (Def. 1: the description's domain is the
    cartesian product of the attribute domains used). *)

type t =
  | Int
  | Float
  | Bool
  | String
  | Id_of of string  (** references to atoms of the named atom type *)
  | Enum of string list  (** finite string domain *)
  | List_of of t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val mem : Value.t -> t -> bool
(** Domain membership.  [Id_of] checks only the value shape;
    referential validity is {!Integrity}'s business. *)

val default : t -> Value.t
(** A representative member, used by generators. *)
